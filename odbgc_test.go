package odbgc

import (
	"math"
	"testing"
)

func TestFacadeEndToEnd(t *testing.T) {
	tr, err := GenerateOO7Trace(OO7Options{Connectivity: 3, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(tr); err != nil {
		t.Fatalf("generated trace invalid: %v", err)
	}
	stats := ComputeTraceStats(tr)
	if stats.Overwrites == 0 || stats.GarbageBytes == 0 {
		t.Fatalf("degenerate trace: %+v", stats)
	}

	policy, err := NewSAIO(SAIOConfig{Frac: 0.15})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, policy, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.GCIOFrac-0.15) > 0.05 {
		t.Errorf("SAIO 15%%: achieved %.4f", res.GCIOFrac)
	}
}

func TestFacadeSAGAWithEstimators(t *testing.T) {
	tr, err := GenerateOO7Trace(OO7Options{Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	for _, estName := range []string{"oracle", "fgs-hb", "cgs-cb"} {
		est, err := NewEstimator(estName, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		policy, err := NewSAGA(SAGAConfig{Frac: 0.10}, est)
		if err != nil {
			t.Fatal(err)
		}
		res, err := Simulate(tr, policy, SimOptions{})
		if err != nil {
			t.Fatalf("%s: %v", estName, err)
		}
		if len(res.Collections) == 0 {
			t.Errorf("%s: no collections", estName)
		}
	}
}

func TestFacadeSimulateMany(t *testing.T) {
	traces, err := GenerateTraces(SmallPrime(3), 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := SimulateMany(traces, func(int) (RatePolicy, error) {
		return NewFixedRate(300)
	}, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Runs) != 2 || mr.Collections.N != 2 {
		t.Errorf("multi-run aggregation: %d runs, N=%d", len(mr.Runs), mr.Collections.N)
	}
}

func TestFacadeCustomParamsAndStorage(t *testing.T) {
	p := SmallPrime(3)
	p.NumCompPerModule = 20
	p.NumAssmLevels = 3
	tr, err := GenerateOO7Trace(OO7Options{Params: &p, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	policy, err := NewFixedRate(100)
	if err != nil {
		t.Fatal(err)
	}
	sc := DefaultStorage()
	sc.BufferPages = 24 // a buffer of two partitions
	sel, err := NewSelectionPolicy("round-robin", 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, policy, SimOptions{Storage: sc, Selection: sel})
	if err != nil {
		t.Fatal(err)
	}
	if res.SelectionName != "round-robin" {
		t.Errorf("selection = %q", res.SelectionName)
	}
}

func TestFacadeErrors(t *testing.T) {
	if _, err := Simulate(nil, nil, SimOptions{}); err == nil {
		t.Error("nil trace accepted")
	}
	if _, err := RunExperiment("figZ", ExperimentOptions{}); err == nil {
		t.Error("unknown experiment accepted")
	}
	if len(ExperimentNames()) < 8 {
		t.Errorf("experiments registered: %v", ExperimentNames())
	}
}

func TestFacadeExperimentSmoke(t *testing.T) {
	rep, err := RunExperiment("table1", ExperimentOptions{Runs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ID != "table1" || rep.Table == nil {
		t.Errorf("report = %+v", rep)
	}
}

func TestFacadeQueueWorkload(t *testing.T) {
	p := DefaultQueue()
	p.WindowEntries = 200
	p.Appends = 500
	tr, err := GenerateQueueTrace(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := ValidateTrace(tr); err != nil {
		t.Fatal(err)
	}
	sel, err := NewSelectionPolicy("hybrid", 1)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewSAGA(SAGAConfig{Frac: 0.10}, OracleEstimator{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, pol, SimOptions{Selection: sel})
	if err != nil {
		t.Fatal(err)
	}
	if res.SelectionName != "hybrid" {
		t.Errorf("selection = %q", res.SelectionName)
	}
	if len(res.Collections) == 0 {
		t.Error("no collections on queue workload")
	}
}

func TestFacadeChurnAndPI(t *testing.T) {
	p := DefaultChurn()
	p.Dirs = 40
	p.SteadyOps = 800
	p.BurstOps = 400
	p.QuietReads = 500
	tr, err := GenerateChurnTrace(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	est, err := NewFGSWindow(6)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := NewPIController(PIConfig{Frac: 0.10}, est)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Simulate(tr, pol, SimOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collections) == 0 {
		t.Error("PI controller never collected")
	}
	if len(res.PhaseSummaries) != 5 {
		t.Errorf("phase summaries = %d, want 5", len(res.PhaseSummaries))
	}
}
