// Package metrics provides the small statistics toolkit the simulator and
// the experiment harness share: streaming means, per-run aggregation with
// min/max error bars (the paper reports the mean of 10 runs with min/max
// bars), and plain-text table/series rendering.
package metrics

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Mean accumulates a streaming arithmetic mean.
type Mean struct {
	n   int
	sum float64
	min float64
	max float64
}

// Add incorporates one sample.
func (m *Mean) Add(v float64) {
	if m.n == 0 {
		m.min, m.max = v, v
	} else {
		if v < m.min {
			m.min = v
		}
		if v > m.max {
			m.max = v
		}
	}
	m.n++
	m.sum += v
}

// N returns the sample count.
func (m *Mean) N() int { return m.n }

// Value returns the mean, or NaN with no samples.
func (m *Mean) Value() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.sum / float64(m.n)
}

// Min returns the smallest sample, or NaN with no samples.
func (m *Mean) Min() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.min
}

// Max returns the largest sample, or NaN with no samples.
func (m *Mean) Max() float64 {
	if m.n == 0 {
		return math.NaN()
	}
	return m.max
}

// MeanState is a Mean's complete state in exported form, so checkpoints can
// capture accumulators and resume them bit-identically.
type MeanState struct {
	N   int
	Sum float64
	Min float64
	Max float64
}

// State exports the accumulator's state.
func (m *Mean) State() MeanState {
	return MeanState{N: m.n, Sum: m.sum, Min: m.min, Max: m.max}
}

// MeanFromState rebuilds an accumulator from exported state.
func MeanFromState(st MeanState) (Mean, error) {
	if st.N < 0 {
		return Mean{}, fmt.Errorf("metrics: negative sample count %d", st.N)
	}
	if st.N > 0 && st.Min > st.Max {
		return Mean{}, fmt.Errorf("metrics: min %v exceeds max %v", st.Min, st.Max)
	}
	return Mean{n: st.N, sum: st.Sum, min: st.Min, max: st.Max}, nil
}

// Merge folds another accumulator into m, as if m had seen o's samples.
func (m *Mean) Merge(o Mean) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = o
		return
	}
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n += o.n
	m.sum += o.sum
}

// Aggregate summarizes one value across runs: the mean with min/max error
// bars, as in the paper's figures.
type Aggregate struct {
	Mean float64
	Min  float64
	Max  float64
	N    int
}

// Aggregated computes an Aggregate over per-run values, ignoring NaNs.
func Aggregated(values []float64) Aggregate {
	var m Mean
	for _, v := range values {
		if !math.IsNaN(v) {
			m.Add(v)
		}
	}
	return Aggregate{Mean: m.Value(), Min: m.Min(), Max: m.Max(), N: m.N()}
}

// String formats the aggregate as "mean [min,max]".
func (a Aggregate) String() string {
	return fmt.Sprintf("%.4f [%.4f,%.4f]", a.Mean, a.Min, a.Max)
}

// Point is one sample of a time series.
type Point struct {
	X float64
	Y float64
}

// Series is a named sequence of points, e.g. garbage percentage per
// collection number.
type Series struct {
	Name   string
	Points []Point
}

// Add appends a point.
func (s *Series) Add(x, y float64) { s.Points = append(s.Points, Point{x, y}) }

// Len returns the point count.
func (s *Series) Len() int { return len(s.Points) }

// MeanY returns the mean of the Y values, or NaN when empty.
func (s *Series) MeanY() float64 {
	var m Mean
	for _, p := range s.Points {
		m.Add(p.Y)
	}
	return m.Value()
}

// CSV renders series sharing an X axis as comma-separated text with a
// header row. Series of different lengths are padded with empty cells.
func CSV(xName string, series ...*Series) string {
	var b strings.Builder
	b.WriteString(xName)
	maxLen := 0
	for _, s := range series {
		fmt.Fprintf(&b, ",%s", s.Name)
		if s.Len() > maxLen {
			maxLen = s.Len()
		}
	}
	b.WriteByte('\n')
	for i := 0; i < maxLen; i++ {
		wroteX := false
		var row []string
		for _, s := range series {
			if i < s.Len() {
				if !wroteX {
					row = append([]string{fmt.Sprintf("%g", s.Points[i].X)}, row...)
					wroteX = true
				}
				row = append(row, fmt.Sprintf("%g", s.Points[i].Y))
			} else {
				row = append(row, "")
			}
		}
		if !wroteX {
			row = append([]string{""}, row...)
		}
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

// Table renders an aligned plain-text table.
type Table struct {
	Header []string
	Rows   [][]string
}

// AddRow appends a row of cells.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with column alignment.
func (t *Table) String() string {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.Rows {
		writeRow(row)
	}
	return b.String()
}

// Percentile returns the p-quantile (0..1) of values using linear
// interpolation; it sorts a copy.
func Percentile(values []float64, p float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	vs := append([]float64(nil), values...)
	sort.Float64s(vs)
	if p <= 0 {
		return vs[0]
	}
	if p >= 1 {
		return vs[len(vs)-1]
	}
	pos := p * float64(len(vs)-1)
	lo := int(math.Floor(pos))
	frac := pos - float64(lo)
	if lo+1 >= len(vs) {
		return vs[lo]
	}
	return vs[lo]*(1-frac) + vs[lo+1]*frac
}
