package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 100, 4)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-5, 0, 10, 25, 60, 99.999, 100, 1000} {
		h.Add(v)
	}
	if h.N() != 8 {
		t.Errorf("N = %d", h.N())
	}
	under, over := h.Outliers()
	if under != 1 || over != 2 {
		t.Errorf("outliers = %d/%d, want 1/2", under, over)
	}
	wantCounts := []int{2, 1, 1, 1} // [0,25): 0,10; [25,50): 25; [50,75): 60; [75,100): 99.999
	for i, want := range wantCounts {
		if c, _, _ := h.Bucket(i); c != want {
			t.Errorf("bucket %d = %d, want %d", i, c, want)
		}
	}
	if _, lo, hi := h.Bucket(1); lo != 25 || hi != 50 {
		t.Errorf("bucket 1 range [%g,%g)", lo, hi)
	}
}

func TestHistogramValidation(t *testing.T) {
	if _, err := NewHistogram(0, 10, 0); err == nil {
		t.Error("zero buckets accepted")
	}
	if _, err := NewHistogram(5, 5, 3); err == nil {
		t.Error("empty range accepted")
	}
	if _, err := NewHistogram(9, 5, 3); err == nil {
		t.Error("inverted range accepted")
	}
}

func TestHistogramString(t *testing.T) {
	h, err := NewHistogram(0, 10, 2)
	if err != nil {
		t.Fatal(err)
	}
	h.Add(1)
	h.Add(2)
	h.Add(7)
	h.Add(-3)
	out := h.String()
	if !strings.Contains(out, "< 0") || !strings.Contains(out, "#") {
		t.Errorf("render missing parts:\n%s", out)
	}
	if strings.Count(strings.Split(out, "\n")[1], "#") == 0 {
		t.Errorf("no bar for populated bucket:\n%s", out)
	}
}

// Property: all samples land somewhere, and the mean matches a direct mean.
func TestHistogramConservationProperty(t *testing.T) {
	f := func(vs []float64) bool {
		h, err := NewHistogram(-100, 100, 7)
		if err != nil {
			return false
		}
		var m Mean
		n := 0
		for _, v := range vs {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				continue
			}
			h.Add(v)
			m.Add(v)
			n++
		}
		total := 0
		for i := 0; i < h.Buckets(); i++ {
			c, _, _ := h.Bucket(i)
			total += c
		}
		under, over := h.Outliers()
		total += under + over
		if total != n || h.N() != n {
			return false
		}
		if n > 0 && math.Abs(h.Mean()-m.Value()) > 1e-9 {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
