package metrics

import (
	"fmt"
	"math"
	"strings"
)

// Histogram accumulates samples into fixed-width buckets over [Min, Max),
// with underflow/overflow buckets at the ends. Used for distributions of
// collection yields, intervals, and I/O costs.
type Histogram struct {
	min, max float64
	buckets  []int
	under    int
	over     int
	all      Mean
}

// NewHistogram returns a histogram with n buckets spanning [min, max).
func NewHistogram(min, max float64, n int) (*Histogram, error) {
	if n < 1 {
		return nil, fmt.Errorf("metrics: histogram needs at least one bucket, got %d", n)
	}
	if !(min < max) {
		return nil, fmt.Errorf("metrics: histogram range [%g,%g) is empty", min, max)
	}
	return &Histogram{min: min, max: max, buckets: make([]int, n)}, nil
}

// Add records one sample.
func (h *Histogram) Add(v float64) {
	h.all.Add(v)
	switch i := h.Index(v); {
	case i < 0:
		h.under++
	case i >= len(h.buckets):
		h.over++
	default:
		h.buckets[i]++
	}
}

// Index returns the bucket a sample routes to: -1 for underflow, Buckets()
// for overflow, otherwise the in-range bucket index — the same routing Add
// uses, exposed so callers can attach per-bucket annotations (exemplars).
func (h *Histogram) Index(v float64) int {
	switch {
	case v < h.min:
		return -1
	case v >= h.max:
		return len(h.buckets)
	}
	i := int((v - h.min) / (h.max - h.min) * float64(len(h.buckets)))
	if i >= len(h.buckets) { // guard float roundoff at the upper edge
		i = len(h.buckets) - 1
	}
	return i
}

// N returns the total number of samples.
func (h *Histogram) N() int { return h.all.N() }

// Mean returns the sample mean (NaN when empty).
func (h *Histogram) Mean() float64 { return h.all.Value() }

// Bucket returns the count of bucket i and its [lo, hi) range.
func (h *Histogram) Bucket(i int) (count int, lo, hi float64) {
	w := (h.max - h.min) / float64(len(h.buckets))
	return h.buckets[i], h.min + float64(i)*w, h.min + float64(i+1)*w
}

// Buckets returns the number of in-range buckets.
func (h *Histogram) Buckets() int { return len(h.buckets) }

// Outliers returns the underflow and overflow counts.
func (h *Histogram) Outliers() (under, over int) { return h.under, h.over }

// String renders the histogram with proportional bars.
func (h *Histogram) String() string {
	const barWidth = 40
	peak := h.under
	for _, c := range h.buckets {
		if c > peak {
			peak = c
		}
	}
	if h.over > peak {
		peak = h.over
	}
	bar := func(c int) string {
		if peak == 0 {
			return ""
		}
		return strings.Repeat("#", int(math.Round(float64(c)/float64(peak)*barWidth)))
	}
	// Wide ranges print integer bounds; narrow ones keep two decimals.
	fmtBound := func(v float64) string {
		if h.max-h.min >= 100 {
			return fmt.Sprintf("%8.0f", v)
		}
		return fmt.Sprintf("%8.2f", v)
	}
	var b strings.Builder
	if h.under > 0 {
		fmt.Fprintf(&b, "%19s  %6d %s\n", "< "+strings.TrimSpace(fmtBound(h.min)), h.under, bar(h.under))
	}
	for i := range h.buckets {
		c, lo, hi := h.Bucket(i)
		fmt.Fprintf(&b, "[%s,%s)  %6d %s\n", fmtBound(lo), fmtBound(hi), c, bar(c))
	}
	if h.over > 0 {
		fmt.Fprintf(&b, "%19s  %6d %s\n", ">= "+strings.TrimSpace(fmtBound(h.max)), h.over, bar(h.over))
	}
	return b.String()
}
