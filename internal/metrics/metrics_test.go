package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	if !math.IsNaN(m.Value()) || !math.IsNaN(m.Min()) || !math.IsNaN(m.Max()) {
		t.Error("empty mean not NaN")
	}
	for _, v := range []float64{2, 4, 9} {
		m.Add(v)
	}
	if m.N() != 3 || m.Value() != 5 || m.Min() != 2 || m.Max() != 9 {
		t.Errorf("mean = %v [%v,%v] n=%d", m.Value(), m.Min(), m.Max(), m.N())
	}
}

func TestMeanMerge(t *testing.T) {
	var a, b Mean
	a.Add(1)
	a.Add(3)
	b.Add(5)
	b.Add(7)
	a.Merge(b)
	if a.N() != 4 || a.Value() != 4 || a.Min() != 1 || a.Max() != 7 {
		t.Errorf("merged = %v [%v,%v] n=%d", a.Value(), a.Min(), a.Max(), a.N())
	}
	// Merging empty is a no-op; merging into empty copies.
	var e Mean
	a.Merge(e)
	if a.N() != 4 {
		t.Error("merge of empty changed state")
	}
	e.Merge(a)
	if e.N() != 4 || e.Value() != 4 {
		t.Error("merge into empty did not copy")
	}
}

// Property: merging two accumulators equals accumulating the concatenation.
func TestMeanMergeProperty(t *testing.T) {
	f := func(xs, ys []float64) bool {
		clean := func(vs []float64) []float64 {
			out := vs[:0]
			for _, v := range vs {
				if !math.IsNaN(v) && !math.IsInf(v, 0) && math.Abs(v) < 1e12 {
					out = append(out, v)
				}
			}
			return out
		}
		xs, ys = clean(xs), clean(ys)
		var a, b, all Mean
		for _, v := range xs {
			a.Add(v)
			all.Add(v)
		}
		for _, v := range ys {
			b.Add(v)
			all.Add(v)
		}
		a.Merge(b)
		if a.N() != all.N() {
			return false
		}
		if all.N() == 0 {
			return true
		}
		return math.Abs(a.Value()-all.Value()) < 1e-6 &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAggregated(t *testing.T) {
	a := Aggregated([]float64{1, 2, math.NaN(), 3})
	if a.N != 3 || a.Mean != 2 || a.Min != 1 || a.Max != 3 {
		t.Errorf("aggregate = %+v", a)
	}
	empty := Aggregated(nil)
	if empty.N != 0 || !math.IsNaN(empty.Mean) {
		t.Errorf("empty aggregate = %+v", empty)
	}
	if !strings.Contains(a.String(), "2.0000") {
		t.Errorf("String = %q", a.String())
	}
}

func TestSeries(t *testing.T) {
	s := &Series{Name: "y"}
	s.Add(1, 10)
	s.Add(2, 20)
	if s.Len() != 2 || s.MeanY() != 15 {
		t.Errorf("series = %+v meanY = %v", s, s.MeanY())
	}
	if !math.IsNaN((&Series{}).MeanY()) {
		t.Error("empty MeanY not NaN")
	}
}

func TestCSV(t *testing.T) {
	a := &Series{Name: "a"}
	a.Add(1, 10)
	a.Add(2, 20)
	b := &Series{Name: "b"}
	b.Add(1, 30)
	got := CSV("x", a, b)
	want := "x,a,b\n1,10,30\n2,20,\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestTableRendering(t *testing.T) {
	tb := &Table{Header: []string{"name", "value"}}
	tb.AddRow("alpha", "1")
	tb.AddRow("b", "12345")
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("table lines = %d: %q", len(lines), out)
	}
	if !strings.HasPrefix(lines[0], "name ") || !strings.Contains(lines[0], "value") {
		t.Errorf("header = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "-----") {
		t.Errorf("separator = %q", lines[1])
	}
	// Columns align: "value" column starts at the same offset in each row.
	idx := strings.Index(lines[0], "value")
	if lines[2][idx:idx+1] != "1" || lines[3][idx:idx+5] != "12345" {
		t.Errorf("misaligned table:\n%s", out)
	}
}

func TestPercentile(t *testing.T) {
	vs := []float64{4, 1, 3, 2}
	cases := []struct{ p, want float64 }{
		{0, 1}, {1, 4}, {0.5, 2.5}, {0.25, 1.75},
	}
	for _, c := range cases {
		if got := Percentile(vs, c.p); math.Abs(got-c.want) > 1e-9 {
			t.Errorf("Percentile(%v) = %v, want %v", c.p, got, c.want)
		}
	}
	if !math.IsNaN(Percentile(nil, 0.5)) {
		t.Error("empty percentile not NaN")
	}
	// Input must not be mutated (sorted copy).
	if vs[0] != 4 {
		t.Error("Percentile mutated input")
	}
}

// TestCSVRagged exercises rows where the first series has no point but a
// later one does: the X cell must come from the longest series, not go blank.
func TestCSVRagged(t *testing.T) {
	short := &Series{Name: "short"}
	short.Add(1, 10)
	long := &Series{Name: "long"}
	long.Add(1, 30)
	long.Add(2, 40)
	long.Add(3, 50)
	got := CSV("x", short, long)
	want := "x,short,long\n1,10,30\n2,,40\n3,,50\n"
	if got != want {
		t.Errorf("CSV = %q, want %q", got, want)
	}
}

func TestCSVEmpty(t *testing.T) {
	if got := CSV("x"); got != "x\n" {
		t.Errorf("no-series CSV = %q", got)
	}
	empty := &Series{Name: "e"}
	if got := CSV("x", empty); got != "x,e\n" {
		t.Errorf("empty-series CSV = %q", got)
	}
	one := &Series{Name: "a"}
	one.Add(5, 7)
	if got := CSV("x", empty, one); got != "x,e,a\n5,,7\n" {
		t.Errorf("empty+nonempty CSV = %q", got)
	}
}
