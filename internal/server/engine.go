package server

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"
	"time"

	"odbgc/internal/core"
	"odbgc/internal/gc"
	"odbgc/internal/objstore"
	"odbgc/internal/obs"
	"odbgc/internal/obs/span"
	"odbgc/internal/simerr"
	"odbgc/internal/storage"
)

// EngineConfig parameterizes the request engine.
type EngineConfig struct {
	// Policy decides when the online collector runs; consulted after every
	// admitted request against the live clock. Required.
	Policy core.RatePolicy
	// Selection picks the partition each collection processes. Required.
	Selection gc.SelectionPolicy
	// QueueDepth bounds the admission queue: requests beyond it are shed
	// immediately. Defaults to 128.
	QueueDepth int
	// ServiceDelay is artificial per-request service time, the knob that
	// makes overload reproducible in tests and demos: with a delay of d,
	// sustained arrival above QueueDepth/d keeps the queue full. Zero means
	// requests cost only their real work.
	ServiceDelay time.Duration
	// Breaker, when set, is observed after every collection so its state
	// reaches /metrics. It should be the same value wired into the Policy's
	// estimator.
	Breaker *Breaker
	// Metrics is the serving-path metrics sink (nil for none).
	Metrics *Metrics
	// Observer receives Decision/Collection events as the online GC runs
	// (nil for none). Step carries the admitted-request count.
	Observer obs.Observer
	// Recorder is the span flight recorder (nil disables tracing; the nil
	// fast path costs one pointer test per request). Collections that run
	// while a request is in service emit GC child spans attributed to it.
	Recorder *span.Recorder
	// Durable, when non-nil, is the write-ahead-logging backend the heap
	// records every mutation to. The engine commits one batch per request —
	// before the response goes out, so an acknowledged write is never lost
	// to a crash — and one batch per collection (the reclaim record).
	Durable storage.Backend
	// CheckpointEvery bounds WAL replay work after a crash: the engine
	// checkpoints the durable store every N commits. Zero means the default
	// of 1024; negative disables periodic checkpoints (drain still takes a
	// final one).
	CheckpointEvery int
}

func (c *EngineConfig) validate() error {
	if c.Policy == nil {
		return fmt.Errorf("server: engine requires a rate policy")
	}
	if c.Selection == nil {
		return fmt.Errorf("server: engine requires a selection policy")
	}
	if c.QueueDepth == 0 {
		c.QueueDepth = 128
	}
	if c.QueueDepth < 0 {
		return fmt.Errorf("server: queue depth %d must be positive", c.QueueDepth)
	}
	if c.CheckpointEvery == 0 {
		c.CheckpointEvery = 1024
	}
	return nil
}

// call is one admitted request in flight: the request, its queue deadline,
// and the buffered channel its response lands on (buffered so the engine
// never blocks on a waiter that gave up).
type call struct {
	req      Request
	deadline time.Time // zero means none
	done     chan Response
	// spanID is the submitting session's span ID (0 when tracing is off)
	// and enq its enqueue tick. Only the ID crosses goroutines — the span
	// itself stays owned by the session, so an abandoned waiter can finish
	// and recycle it without racing the engine.
	spanID uint64
	enq    int64
}

// Engine owns the heap. Exactly one goroutine (Run) touches gc.Heap,
// objstore.Store, the policy, and the estimator, so none of them need
// locks and the GC decision sequence stays deterministic for a given
// request order. Sessions talk to it through Submit, which enforces
// admission control: the queue is the only buffer, and it is bounded.
type Engine struct {
	cfg   EngineConfig
	heap  *gc.Heap
	queue chan *call

	// epoch anchors the engine tick clock: Now() is nanoseconds since
	// construction, the timestamp base for every span this engine touches.
	epoch time.Time

	draining atomic.Bool
	requests uint64 // admitted requests processed (engine goroutine only)
	gcSeq    uint64 // collection spans emitted (engine goroutine only)
	commits  uint64 // durable batches committed (engine goroutine only)

	// ewmaMs is the exponentially weighted mean service time in
	// milliseconds, stored as float64 bits so Submit (session goroutines)
	// can read it without a lock for retry-after hints.
	ewmaMs atomic.Uint64
}

// NewEngine builds an engine over the heap. The heap must be in oracleless
// mode (the server has no replay annotations); NewEngine enforces it.
func NewEngine(heap *gc.Heap, cfg EngineConfig) (*Engine, error) {
	if heap == nil {
		return nil, fmt.Errorf("server: engine requires a heap")
	}
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	heap.SetOracleless(true)
	return &Engine{
		cfg:   cfg,
		heap:  heap,
		queue: make(chan *call, cfg.QueueDepth),
		epoch: time.Now(),
	}, nil
}

// QueueDepth returns the admission bound.
func (e *Engine) QueueDepth() int { return cap(e.queue) }

// Now returns the engine tick: nanoseconds since the engine was built, on
// the monotonic clock. Safe from any goroutine; every span timestamp in
// this server shares this base.
func (e *Engine) Now() int64 { return int64(time.Since(e.epoch)) }

// Recorder returns the engine's span flight recorder (nil when tracing is
// disabled).
func (e *Engine) Recorder() *span.Recorder { return e.cfg.Recorder }

// BeginDrain stops admission: every Submit from now on is answered
// StatusClosed. Already-queued calls still execute.
func (e *Engine) BeginDrain() { e.draining.Store(true) }

// CloseQueue ends the engine's run loop once the queue empties. It must be
// called exactly once, after every session that could Submit has exited.
func (e *Engine) CloseQueue() { close(e.queue) }

// retryAfterMs estimates when shed work is worth retrying: the observed
// mean service time times the queue bound — roughly one full queue's
// worth of draining — with a floor of 1ms so the hint is never zero.
func (e *Engine) retryAfterMs() int {
	ewma := math.Float64frombits(e.ewmaMs.Load())
	ms := int(ewma * float64(cap(e.queue)))
	if ms < 1 {
		ms = 1
	}
	return ms
}

// Submit runs one request through admission control and waits for its
// response. The fast failure paths never block:
//
//   - draining server: StatusClosed immediately;
//   - full queue: StatusShed immediately, with a retry-after hint;
//   - ctx done while waiting: a classified error response (the admitted
//     request may still execute; its response is dropped).
//
// sp is the request's span (nil when tracing is off); Submit only copies
// its ID into the call, so the span remains session-owned throughout.
func (e *Engine) Submit(ctx context.Context, req Request, sp *span.Span) Response {
	if e.draining.Load() {
		return Response{ID: req.ID, Status: StatusClosed,
			Error: simerr.SessionClosedf("server draining").Error()}
	}
	c := &call{req: req, done: make(chan Response, 1), spanID: sp.SpanID(), enq: e.Now()}
	if dl, ok := ctx.Deadline(); ok {
		c.deadline = dl
	}
	select {
	case e.queue <- c:
	default:
		e.cfg.Metrics.Shed()
		return Response{ID: req.ID, Status: StatusShed,
			Error:        simerr.Overloadedf("admission queue full (%d deep)", cap(e.queue)).Error(),
			RetryAfterMs: e.retryAfterMs()}
	}
	select {
	case resp := <-c.done:
		return resp
	case <-ctx.Done():
		err := simerr.FromContext(ctx.Err())
		e.cfg.Metrics.Error(simerr.Classify(err))
		return Response{ID: req.ID, Status: StatusError, Error: err.Error()}
	}
}

// Run is the engine loop: it executes queued calls one at a time until the
// queue is closed and empty (clean drain, returns nil) or ctx is cancelled
// (hard stop, returns the classified context error). Only this goroutine
// touches the heap.
func (e *Engine) Run(ctx context.Context) error {
	for {
		select {
		case <-ctx.Done():
			return simerr.FromContext(ctx.Err())
		case c, ok := <-e.queue:
			if !ok {
				return nil
			}
			e.process(c)
		}
	}
}

// process executes one admitted call: deadline check, the op itself, the
// artificial service delay, then a GC policy consultation — the online
// equivalent of the simulator's per-event ShouldCollect probe.
func (e *Engine) process(c *call) {
	start := time.Now()
	startTick := e.Now()
	queueNs := startTick - c.enq
	if !c.deadline.IsZero() && start.After(c.deadline) {
		// The waiter's deadline passed while the call sat in queue; skip
		// the work — under overload, executing dead requests only digs the
		// hole deeper.
		e.cfg.Metrics.Expired()
		e.cfg.Metrics.Stage(MetricStageQueue, float64(queueNs)/1e6, c.spanID)
		c.done <- Response{ID: c.req.ID, Status: StatusError, Expired: true,
			QueueUs: queueNs / 1e3,
			Error:   simerr.FromContext(context.DeadlineExceeded).Error()}
		return
	}
	e.cfg.Metrics.RequestStart()
	e.requests++
	resp := e.apply(c.req)
	// Commit the WAL batch this request staged before acknowledging it: an
	// OK response must mean the mutation survives a crash. Requests that
	// failed mid-way may still have staged records for the mutations that
	// did land; committing unconditionally keeps the durable state exactly
	// in step with the heap (empty batches are free).
	if err := e.commitDurable(); err != nil && resp.Status == StatusOK {
		resp = e.fail(c.req.ID, err)
	}
	if e.cfg.ServiceDelay > 0 {
		time.Sleep(e.cfg.ServiceDelay)
	}
	serviceNs := e.Now() - startTick
	resp.QueueUs = queueNs / 1e3
	resp.ServiceUs = serviceNs / 1e3
	e.cfg.Metrics.Stage(MetricStageQueue, float64(queueNs)/1e6, c.spanID)
	e.cfg.Metrics.Stage(MetricStageService, float64(serviceNs)/1e6, c.spanID)
	c.done <- resp

	// GC after responding: collection time is not billed to the request
	// that happened to trigger it — but the collection's span is parented
	// to it, attributing the pause to the traffic that provoked it.
	if e.cfg.Policy.ShouldCollect(e.clock()) {
		e.collect(c.spanID)
	}

	ms := float64(time.Since(start)) / float64(time.Millisecond)
	e.cfg.Metrics.RequestEnd(ms)
	const w = 0.9 // smoothing for the retry-after hint
	prev := math.Float64frombits(e.ewmaMs.Load())
	if prev == 0 {
		prev = ms
	}
	e.ewmaMs.Store(math.Float64bits(w*prev + (1-w)*ms))
}

// commitDurable commits the staged WAL batch (if a backend is attached)
// and takes the periodic checkpoint when one falls due. Engine goroutine
// only. Only a commit failure is returned: once Commit succeeds the
// request's mutation is durable, and failing the request over a broken
// checkpoint would make a retrying client duplicate a committed write.
// A checkpoint failure is counted on /metrics and retried at the next
// checkpoint interval; the backend rolls an aborted checkpoint back, so
// the WAL simply keeps growing until one succeeds.
func (e *Engine) commitDurable() error {
	d := e.cfg.Durable
	if d == nil {
		return nil
	}
	if err := d.Commit(); err != nil {
		return fmt.Errorf("durable commit: %w", err)
	}
	e.commits++
	e.cfg.Metrics.DurableCommit()
	if every := e.cfg.CheckpointEvery; every > 0 && e.commits%uint64(every) == 0 {
		if err := d.Checkpoint(); err != nil {
			e.cfg.Metrics.Error(simerr.Classify(err))
		} else {
			e.cfg.Metrics.DurableCheckpoint()
		}
	}
	return nil
}

// clock assembles the policy clock from live counters, exactly as the
// simulator does from replayed ones.
func (e *Engine) clock() core.Clock {
	st := e.heap.Disk().Stats()
	return core.Clock{AppIO: st.AppIO(), GCIO: st.GCIO(), Overwrites: e.heap.OverwriteClock()}
}

// fail classifies, counts, and formats an op error.
func (e *Engine) fail(id uint64, err error) Response {
	e.cfg.Metrics.Error(simerr.Classify(err))
	return Response{ID: id, Status: StatusError, Error: err.Error()}
}

// apply executes one op against the heap.
func (e *Engine) apply(req Request) Response {
	switch req.Op {
	case OpPing:
		return Response{ID: req.ID, Status: StatusOK}
	case OpCreate:
		if req.Size <= 0 {
			return e.fail(req.ID, fmt.Errorf("create: size %d must be positive", req.Size))
		}
		oid := e.heap.Store().NextOID()
		if err := e.heap.Create(oid, objstore.ClassUnknown, req.Size, req.Slots); err != nil {
			return e.fail(req.ID, err)
		}
		// New objects are pinned as roots until the client links them into
		// the graph and unroots them: without replay annotations, an
		// unpinned object could be reclaimed between its create and the
		// set that makes it reachable.
		if err := e.heap.AddRoot(oid); err != nil {
			return e.fail(req.ID, err)
		}
		return Response{ID: req.ID, Status: StatusOK, OID: uint64(oid)}
	case OpAccess:
		if err := e.heap.Access(objstore.OID(req.OID)); err != nil {
			return e.fail(req.ID, err)
		}
		return Response{ID: req.ID, Status: StatusOK}
	case OpUpdate:
		if err := e.heap.Update(objstore.OID(req.OID)); err != nil {
			return e.fail(req.ID, err)
		}
		return Response{ID: req.ID, Status: StatusOK}
	case OpSet:
		src := objstore.OID(req.OID)
		o := e.heap.Store().Get(src)
		if o == nil {
			return e.fail(req.ID, fmt.Errorf("set: absent object %v", src))
		}
		if req.Slot < 0 || req.Slot >= len(o.Slots) {
			return e.fail(req.ID, fmt.Errorf("set: slot %d out of range [0,%d) on %v", req.Slot, len(o.Slots), src))
		}
		old := o.Slots[req.Slot]
		// An overwrite of a nil slot is an initializing store: it cannot
		// create garbage and does not advance the overwrite clock.
		init := old.IsNil()
		if err := e.heap.Overwrite(src, req.Slot, old, objstore.OID(req.Dst), init); err != nil {
			return e.fail(req.ID, err)
		}
		return Response{ID: req.ID, Status: StatusOK, Old: uint64(old)}
	case OpRoot:
		if err := e.heap.AddRoot(objstore.OID(req.OID)); err != nil {
			return e.fail(req.ID, err)
		}
		return Response{ID: req.ID, Status: StatusOK}
	case OpUnroot:
		if e.heap.Store().Get(objstore.OID(req.OID)) == nil {
			return e.fail(req.ID, fmt.Errorf("unroot: absent object %v", objstore.OID(req.OID)))
		}
		if err := e.heap.RemoveRoot(objstore.OID(req.OID)); err != nil {
			return e.fail(req.ID, err)
		}
		return Response{ID: req.ID, Status: StatusOK}
	case OpStats:
		return Response{ID: req.ID, Status: StatusOK, Stats: e.stats()}
	default:
		return e.fail(req.ID, fmt.Errorf("unknown op %q", req.Op))
	}
}

// Snapshot returns the engine's statistics. Safe only while the engine
// loop is not running (before Run starts, or after it returns); the daemon
// calls it post-drain to stamp the run manifest.
func (e *Engine) Snapshot() *Stats { return e.stats() }

// Requests returns the number of admitted requests processed, under the
// same conditions as Snapshot.
func (e *Engine) Requests() uint64 { return e.requests }

// stats snapshots the live database and controller state. Runs on the
// engine goroutine, so the reads need no locks.
func (e *Engine) stats() *Stats {
	disk := e.heap.Disk().Stats()
	//lint:allow hotalloc the snapshot escapes to the requester by design
	st := &Stats{
		Objects:        e.heap.Store().Len(),
		DBBytes:        e.heap.DatabaseBytes(),
		Partitions:     e.heap.NumPartitions(),
		Roots:          e.heap.Store().NumRoots(),
		OverwriteClock: e.heap.OverwriteClock(),
		Collections:    e.heap.Collections(),
		ReclaimedBytes: e.heap.TotalCollectedBytes(),
		AppIO:          disk.AppIO(),
		GCIO:           disk.GCIO(),
		Policy:         e.cfg.Policy.Name(),
		QueueLen:       len(e.queue),
		QueueDepth:     cap(e.queue),
	}
	if e.cfg.Breaker != nil {
		st.BreakerState = e.cfg.Breaker.State().String()
	}
	return st
}

// collect runs one online collection: partition selection, the copy pass,
// policy feedback, breaker bookkeeping, and observer events — the serving
// twin of the simulator's collect step. parent is the span ID of the
// request whose processing triggered this collection (0 when tracing is
// off); the collection's own span is emitted as its child and the parent
// is pinned in the flight recorder so the attribution survives eviction.
func (e *Engine) collect(parent uint64) {
	now := e.clock()
	part, ok := e.cfg.Selection.Select(e.heap)
	if !ok {
		// Nothing worth collecting; reschedule off an empty result so the
		// policy does not retrigger on every request.
		e.cfg.Policy.AfterCollection(now, e.heap, gc.CollectionResult{})
		e.emitDecision(now, false)
		return
	}
	var gsp *span.Span
	if rec := e.cfg.Recorder; rec != nil {
		e.gcSeq++
		gsp = rec.Start(span.KindGC, "collect", span.GCID(e.gcSeq), parent, e.Now())
		gsp.Seq = e.gcSeq
		gsp.QueuedBehind = len(e.queue)
	}
	res, err := e.heap.Collect(part)
	if err != nil {
		// A failed collection is a policy-path failure: count it, feed the
		// breaker, and keep serving — the heap refuses to mutate on the
		// error paths that matter, and client traffic must not die with
		// the collector.
		err = simerr.WrapPolicyFailure("online collection", err)
		e.cfg.Metrics.Error(simerr.Classify(err))
		if e.cfg.Breaker != nil {
			e.cfg.Breaker.RecordFailure()
			e.cfg.Metrics.BreakerObserve(e.cfg.Breaker.State(), e.cfg.Breaker.Trips(), e.cfg.Breaker.Recoveries())
		}
		if gsp != nil {
			e.finishGCSpan(gsp, parent, span.OutcomeError)
		}
		return
	}
	// Commit the reclaim record this collection staged: a recovered heap
	// must never resurrect collected garbage, so the reclaim is durable
	// before any later batch can build on the space it freed.
	if cerr := e.commitDurable(); cerr != nil {
		e.cfg.Metrics.Error(simerr.Classify(cerr))
	}
	if yo, ok := e.cfg.Selection.(gc.YieldObserver); ok {
		yo.ObserveCollection(res)
	}
	after := e.clock()
	e.cfg.Policy.AfterCollection(after, e.heap, res)
	if e.cfg.Breaker != nil {
		e.cfg.Metrics.BreakerObserve(e.cfg.Breaker.State(), e.cfg.Breaker.Trips(), e.cfg.Breaker.Recoveries())
	}
	if gsp != nil {
		gsp.Partition = int(res.Partition)
		gsp.ReclaimedBytes = res.ReclaimedBytes
		gsp.ReclaimedObjects = res.ReclaimedObjects
		gsp.TracedObjects = res.LiveObjects
		if e.cfg.Breaker != nil {
			gsp.Breaker = e.cfg.Breaker.State().String()
		}
		if d, ok := e.cfg.Policy.(interface {
			LastEstimate() float64
			LastTarget() float64
			LastInterval() uint64
		}); ok {
			if db := e.heap.DatabaseBytes(); db > 0 {
				gsp.EstimateFrac = obs.Float(d.LastEstimate() / float64(db))
				gsp.TargetFrac = obs.Float(d.LastTarget() / float64(db))
			}
		}
		e.finishGCSpan(gsp, parent, span.OutcomeOK)
	}
	e.emitDecision(after, true)
	if e.cfg.Observer != nil {
		ev := obs.Collection{
			Index:            int(e.heap.Collections()),
			Step:             int(e.requests),
			Phase:            "serving",
			Clock:            obs.ClockOf(after),
			Partition:        int(res.Partition),
			ReclaimedBytes:   res.ReclaimedBytes,
			ReclaimedObjects: res.ReclaimedObjects,
			LiveBytes:        res.LiveBytes,
			PartitionPO:      res.PartitionPO,
			IO:               obs.IO{AppReads: res.IO.AppReads, AppWrites: res.IO.AppWrites, GCReads: res.IO.GCReads, GCWrites: res.IO.GCWrites},
			DBBytes:          e.heap.DatabaseBytes(),
		}
		if d, ok := e.cfg.Policy.(interface {
			LastEstimate() float64
			LastTarget() float64
			LastInterval() uint64
		}); ok {
			if db := ev.DBBytes; db > 0 {
				ev.EstimatedFrac = obs.Float(d.LastEstimate() / float64(db))
				ev.TargetFrac = obs.Float(d.LastTarget() / float64(db))
			}
			ev.NextInterval = d.LastInterval()
		}
		e.cfg.Observer.ObserveCollection(ev)
	}
}

// finishGCSpan closes a collection span: the pause duration lands in the
// service stage, the GC pause histogram gets the sample with the span as
// exemplar, and the triggering request is pinned so the parent link in the
// flight recorder stays resolvable.
func (e *Engine) finishGCSpan(gsp *span.Span, parent uint64, outcome string) {
	end := e.Now()
	gsp.SetStage(span.StageService, end-gsp.Start)
	e.cfg.Metrics.Stage(MetricGCPause, float64(end-gsp.Start)/1e6, gsp.ID)
	if parent != 0 {
		e.cfg.Recorder.PinID(parent)
	}
	e.cfg.Recorder.Finish(gsp, end, outcome)
}

// emitDecision reports one policy consultation to the observer.
func (e *Engine) emitDecision(now core.Clock, collected bool) {
	if e.cfg.Observer == nil {
		return
	}
	d := obs.Decision{
		Step:      int(e.requests),
		Clock:     obs.ClockOf(now),
		DBBytes:   e.heap.DatabaseBytes(),
		Collected: collected,
	}
	if diag, ok := e.cfg.Policy.(interface {
		LastEstimate() float64
		LastTarget() float64
		LastInterval() uint64
	}); ok {
		d.Estimate = obs.Float(diag.LastEstimate())
		d.Target = obs.Float(diag.LastTarget())
		d.NextInterval = diag.LastInterval()
	}
	e.cfg.Observer.ObserveDecision(d)
}
