package server

import (
	"fmt"

	"odbgc/internal/obs"
	"odbgc/internal/simerr"
)

// Serving-mode metric names, registered alongside the simulator metrics on
// the same obs.Registry so one /metrics scrape covers the whole process.
const (
	MetricSessionsActive    = "odbgc_server_sessions_active"
	MetricSessionsTotal     = "odbgc_server_sessions_total"
	MetricShed              = "odbgc_server_shed_total"
	MetricRequests          = "odbgc_server_requests_total"
	MetricInflight          = "odbgc_server_requests_inflight"
	MetricMalformed         = "odbgc_server_malformed_total"
	MetricIdleReaped        = "odbgc_server_idle_reaped_total"
	MetricExpired           = "odbgc_server_expired_total"
	MetricBreakerState      = "odbgc_server_breaker_state"
	MetricBreakerTrips      = "odbgc_server_breaker_trips_total"
	MetricBreakerRecoveries = "odbgc_server_breaker_recoveries_total"
	MetricLatency           = "odbgc_server_request_latency_ms"

	// Per-stage latency histograms (tracing layer); each bucket carries a
	// span-ID exemplar so a scrape links straight into /debug/traces.
	MetricStageAccept  = "odbgc_server_stage_accept_ms"
	MetricStageDecode  = "odbgc_server_stage_decode_ms"
	MetricStageQueue   = "odbgc_server_stage_queue_wait_ms"
	MetricStageService = "odbgc_server_stage_service_ms"
	MetricStageWrite   = "odbgc_server_stage_write_ms"
	MetricGCPause      = "odbgc_server_gc_pause_ms"

	// Durability layer (only emitted when the server runs with -data-dir).
	MetricDurableCommits     = "odbgc_server_durable_commits_total"
	MetricDurableCheckpoints = "odbgc_server_durable_checkpoints_total"
	MetricRecoveryRecords    = "odbgc_server_recovery_records_replayed"
	MetricRecoveryBatches    = "odbgc_server_recovery_batches_replayed"
	MetricRecoveryObjects    = "odbgc_server_recovery_objects"
	MetricRecoveryMs         = "odbgc_server_recovery_ms"
	MetricRecoveryTornTail   = "odbgc_server_recovery_torn_tail"
)

// ErrorMetric is the per-class failed-request counter name for a simerr
// class: odbgc_server_errors_<class>_total. The registry has no label
// support, so each class gets its own flat metric, mirroring
// obs.RunFailureMetric.
func ErrorMetric(class simerr.Class) string {
	return fmt.Sprintf("odbgc_server_errors_%s_total", class)
}

// Metrics folds serving-path events into a registry. A nil *Metrics is a
// valid no-op sink, so tests can wire components without observability.
type Metrics struct {
	reg *obs.Registry
}

// NewMetrics registers the serving-mode metrics on reg and returns the
// sink. Registering the same names twice is an error only inside the
// registry; names here are compile-time constants, so registration cannot
// fail.
func NewMetrics(reg *obs.Registry) *Metrics {
	counters := []struct{ name, help string }{
		{MetricSessionsTotal, "client sessions accepted"},
		{MetricShed, "requests refused by admission control"},
		{MetricRequests, "requests admitted and executed"},
		{MetricMalformed, "malformed frames received"},
		{MetricIdleReaped, "sessions closed by the idle reaper"},
		{MetricExpired, "admitted requests dropped because their deadline passed in queue"},
		{MetricBreakerTrips, "estimator circuit breaker trips"},
		{MetricBreakerRecoveries, "estimator circuit breaker recoveries"},
		{MetricDurableCommits, "WAL batches committed by the durability backend"},
		{MetricDurableCheckpoints, "checkpoints taken by the durability backend"},
	}
	for _, c := range counters {
		_ = reg.RegisterCounter(c.name, c.help)
	}
	gauges := []struct{ name, help string }{
		{MetricSessionsActive, "client sessions currently open"},
		{MetricInflight, "requests admitted and not yet answered"},
		{MetricBreakerState, "estimator breaker state: 0 closed, 1 half-open, 2 open"},
		{MetricRecoveryRecords, "WAL records replayed by crash recovery at boot"},
		{MetricRecoveryBatches, "WAL batches replayed by crash recovery at boot"},
		{MetricRecoveryObjects, "objects rebuilt from the durable store at boot"},
		{MetricRecoveryMs, "wall-clock milliseconds crash recovery took at boot"},
		{MetricRecoveryTornTail, "1 when recovery trimmed a torn WAL tail, else 0"},
	}
	for _, g := range gauges {
		_ = reg.RegisterGauge(g.name, g.help)
	}
	_ = reg.RegisterHistogram(MetricLatency, "request latency from admission to response, milliseconds", 0, 1000, 20)
	stages := []struct{ name, help string }{
		{MetricStageAccept, "connection accept to first frame arrival, milliseconds"},
		{MetricStageDecode, "frame arrival to decoded request, milliseconds"},
		{MetricStageQueue, "admission-queue wait, milliseconds"},
		{MetricStageService, "engine service time, milliseconds"},
		{MetricStageWrite, "response frame write, milliseconds"},
	}
	for _, s := range stages {
		_ = reg.RegisterHistogram(s.name, s.help, 0, 1000, 20)
	}
	_ = reg.RegisterHistogram(MetricGCPause, "online collection pause, milliseconds", 0, 100, 20)
	for _, class := range simerr.FailureClasses() {
		_ = reg.RegisterCounter(ErrorMetric(class),
			fmt.Sprintf("requests that failed with class %s", class))
	}
	return &Metrics{reg: reg}
}

// Registry returns the underlying registry, or nil for the no-op sink.
func (m *Metrics) Registry() *obs.Registry {
	if m == nil {
		return nil
	}
	return m.reg
}

func (m *Metrics) add(name string, v float64) {
	if m != nil {
		m.reg.Add(name, v)
	}
}

func (m *Metrics) set(name string, v float64) {
	if m != nil {
		m.reg.Set(name, v)
	}
}

// SessionStart counts an accepted session.
func (m *Metrics) SessionStart() {
	m.add(MetricSessionsTotal, 1)
	m.add(MetricSessionsActive, 1)
}

// SessionEnd retires a session.
func (m *Metrics) SessionEnd() { m.add(MetricSessionsActive, -1) }

// Shed counts an admission refusal.
func (m *Metrics) Shed() { m.add(MetricShed, 1) }

// RequestStart counts an admitted request entering execution.
func (m *Metrics) RequestStart() {
	m.add(MetricRequests, 1)
	m.add(MetricInflight, 1)
}

// RequestEnd retires an admitted request, recording its latency.
func (m *Metrics) RequestEnd(latencyMs float64) {
	m.add(MetricInflight, -1)
	if m != nil {
		m.reg.Observe(MetricLatency, latencyMs)
	}
}

// Stage records one stage-latency sample with a span-ID exemplar (0 when
// tracing is off, which drops only the exemplar, never the sample). Called
// from the engine loop: it must stay allocation-free.
func (m *Metrics) Stage(name string, ms float64, spanID uint64) {
	if m != nil {
		m.reg.ObserveExemplar(name, ms, spanID)
	}
}

// Malformed counts a protocol violation.
func (m *Metrics) Malformed() { m.add(MetricMalformed, 1) }

// IdleReaped counts a session closed for inactivity.
func (m *Metrics) IdleReaped() { m.add(MetricIdleReaped, 1) }

// Expired counts an admitted request dropped unexecuted because its
// deadline passed while queued.
func (m *Metrics) Expired() { m.add(MetricExpired, 1) }

// Error counts a failed request under its simerr class.
func (m *Metrics) Error(class simerr.Class) { m.add(ErrorMetric(class), 1) }

// DurableCommit counts one committed WAL batch.
func (m *Metrics) DurableCommit() { m.add(MetricDurableCommits, 1) }

// DurableCheckpoint counts one completed checkpoint.
func (m *Metrics) DurableCheckpoint() { m.add(MetricDurableCheckpoints, 1) }

// RecoveryObserve publishes what crash recovery did at boot, so a scrape
// after a SIGKILL restart shows how much WAL was replayed and how long the
// rebuild took.
func (m *Metrics) RecoveryObserve(records, batches, objects int, ms float64, tornTail bool) {
	if m == nil {
		return
	}
	m.set(MetricRecoveryRecords, float64(records))
	m.set(MetricRecoveryBatches, float64(batches))
	m.set(MetricRecoveryObjects, float64(objects))
	m.set(MetricRecoveryMs, ms)
	torn := 0.0
	if tornTail {
		torn = 1
	}
	m.set(MetricRecoveryTornTail, torn)
}

// BreakerObserve publishes the breaker's current state and cumulative
// trip/recovery counters (counters are set as totals via gauge-style
// deltas computed by the caller; the breaker reports monotone values, so
// the metrics layer stores the difference).
func (m *Metrics) BreakerObserve(state BreakerState, trips, recoveries uint64) {
	if m == nil {
		return
	}
	m.set(MetricBreakerState, float64(state))
	// Counters must only move forward; compute the delta from what the
	// registry already holds.
	if cur := m.reg.Counter(MetricBreakerTrips); float64(trips) > cur {
		m.add(MetricBreakerTrips, float64(trips)-cur)
	}
	if cur := m.reg.Counter(MetricBreakerRecoveries); float64(recoveries) > cur {
		m.add(MetricBreakerRecoveries, float64(recoveries)-cur)
	}
}
