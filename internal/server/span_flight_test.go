package server

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"odbgc/internal/obs/span"
)

// TestFlightRecorderUnderFlood floods a slow engine past admission with a
// live flight recorder attached, snapshots the recorder mid-load (under
// -race, that exercises the lock discipline against the serving path), and
// after the drain asserts the retained spans are internally consistent:
// every span passes Check, shed responses and retained shed spans agree
// one-for-one, GC pause spans exist, and every GC parent link resolves.
func TestFlightRecorderUnderFlood(t *testing.T) {
	rec := span.NewRecorder(span.Config{Capacity: 512})
	ts := startServer(t,
		Config{MaxSessions: 64, RequestTimeout: 5 * time.Second},
		EngineConfig{QueueDepth: 2, ServiceDelay: 3 * time.Millisecond, Recorder: rec})

	var (
		mu       sync.Mutex
		ok, shed int
	)
	count := func(resp Response, err error) {
		mu.Lock()
		defer mu.Unlock()
		switch {
		case err != nil:
		case resp.Status == StatusOK:
			ok++
			if resp.ServiceUs <= 0 {
				t.Errorf("ok response without service_us metadata: %+v", resp)
			}
		case resp.Status == StatusShed:
			shed++
		}
	}

	// Phase 1, uncontended: a garbage-producing session. Create/link/unroot
	// overwrites drive the overwrite clock, so the default fixed-rate policy
	// actually collects and emits GC spans parented to these requests.
	func() {
		cli, err := Dial(ts.addr, time.Second)
		if err != nil {
			t.Fatalf("garbage client dial: %v", err)
		}
		defer func() { _ = cli.Close() }()
		ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
		defer cancel()
		hub, err := cli.Create(ctx, 256, 4)
		if err != nil {
			t.Fatalf("hub create: %v", err)
		}
		for i := 0; i < 40; i++ {
			resp, err := cli.Do(ctx, Request{Op: OpCreate, Size: 64, Slots: 1})
			count(resp, err)
			if err != nil || resp.Status != StatusOK {
				continue
			}
			child := resp.OID
			count(cli.Do(ctx, Request{Op: OpSet, OID: hub, Slot: i % 4, Dst: child}))
			count(cli.Do(ctx, Request{Op: OpUnroot, OID: child}))
		}
	}()

	// Phase 2: ping flood to overrun the queue of 2.
	var wg sync.WaitGroup
	for c := 0; c < 12; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(ts.addr, time.Second)
			if err != nil {
				return
			}
			defer func() { _ = cli.Close() }()
			ctx, cancel := context.WithTimeout(context.Background(), 20*time.Second)
			defer cancel()
			for j := 0; j < 8; j++ {
				count(cli.Do(ctx, Request{Op: OpPing}))
			}
		}()
	}

	// Mid-load dump: the snapshot must be coherent while sessions and the
	// engine are still writing spans.
	time.Sleep(30 * time.Millisecond)
	for _, sp := range rec.Snapshot() {
		s := sp
		if err := s.Check(); err != nil {
			t.Errorf("mid-load snapshot: %v", err)
		}
	}

	wg.Wait()
	ts.beginDrain()
	ts.waitFinished(t)

	snap := rec.Snapshot()
	ptrs := make([]*span.Span, 0, len(snap))
	shedSpans, gcSpans, gcAttributed := 0, 0, 0
	for i := range snap {
		sp := &snap[i]
		ptrs = append(ptrs, sp)
		if err := sp.Check(); err != nil {
			t.Errorf("post-drain snapshot: %v", err)
		}
		switch {
		case sp.Kind == span.KindGC:
			gcSpans++
			if sp.Parent != 0 {
				gcAttributed++
			}
		case sp.Outcome == span.OutcomeShed:
			shedSpans++
		case sp.Outcome == span.OutcomeOK:
			if sp.Stages[span.StageService] <= 0 {
				t.Errorf("ok span %#x without a service stage: %+v", sp.ID, sp.Stages)
			}
		}
	}
	dangling, err := span.CheckAll(ptrs)
	if err != nil {
		t.Fatalf("CheckAll: %v", err)
	}
	if dangling != 0 {
		t.Errorf("%d GC spans with unresolved parents after drain", dangling)
	}
	mu.Lock()
	wantShed := shed
	mu.Unlock()
	if shedSpans != wantShed {
		t.Errorf("retained %d shed spans, clients saw %d shed responses", shedSpans, wantShed)
	}
	if wantShed == 0 {
		t.Error("flood produced no sheds; the test exercised nothing")
	}
	if gcSpans == 0 {
		t.Error("no GC pause spans despite an overwrite-heavy workload")
	}
	if gcAttributed == 0 {
		t.Error("no GC span is attributed to an overlapping request")
	}
	if st := rec.Stats(); st.Finished == 0 || st.Shed != uint64(wantShed) {
		t.Errorf("recorder stats %+v disagree with client accounting (shed=%d)", st, wantShed)
	}

	// The per-stage histograms surfaced on /metrics, with span exemplars.
	var sb strings.Builder
	if err := ts.live.Registry().WriteText(&sb); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := sb.String()
	for _, name := range []string{MetricStageDecode, MetricStageQueue, MetricStageService, MetricStageWrite, MetricGCPause} {
		if !strings.Contains(text, name+"_bucket") {
			t.Errorf("/metrics missing histogram %s", name)
		}
	}
	if !strings.Contains(text, `span_id="`) {
		t.Error("/metrics has no span-ID exemplars")
	}
}

// TestExpiredInQueueSpan drives the engine's expired-in-queue path
// directly: a call whose deadline passed before processing must come back
// with Expired metadata, and the session-side outcome mapping must retain
// it as an expired span.
func TestExpiredInQueueSpan(t *testing.T) {
	rec := span.NewRecorder(span.Config{})
	ts := startServer(t, Config{}, EngineConfig{Recorder: rec})

	sp := rec.Start(span.KindRequest, OpPing, span.RequestID(99, 1), 0, ts.eng.Now())
	c := &call{
		req:      Request{Op: OpPing},
		deadline: time.Now().Add(-time.Second),
		done:     make(chan Response, 1),
		spanID:   sp.SpanID(),
		enq:      ts.eng.Now(),
	}
	ts.eng.process(c)
	resp := <-c.done
	if !resp.Expired || resp.Status != StatusError {
		t.Fatalf("expired call answered %+v", resp)
	}
	if out := outcomeOf(resp); out != span.OutcomeExpired {
		t.Fatalf("outcomeOf(expired) = %q", out)
	}
	sp.SetStage(span.StageQueue, resp.QueueUs*1000)
	rec.Finish(sp, ts.eng.Now(), outcomeOf(resp))
	found := false
	for _, s := range rec.Snapshot() {
		if s.ID == span.RequestID(99, 1) {
			found = true
			if s.Outcome != span.OutcomeExpired {
				t.Fatalf("expired span retained with outcome %q", s.Outcome)
			}
		}
	}
	if !found {
		t.Fatal("expired span was not retained")
	}
}
