package server

import (
	"context"
	"testing"
	"time"

	"odbgc/internal/fault"
)

func TestLoadConfigValidation(t *testing.T) {
	cases := []struct {
		name string
		cfg  LoadConfig
	}{
		{"no addr", LoadConfig{Rate: 10, Duration: time.Second}},
		{"zero rate", LoadConfig{Addr: "x", Duration: time.Second}},
		{"negative rate", LoadConfig{Addr: "x", Rate: -1, Duration: time.Second}},
		{"zero duration", LoadConfig{Addr: "x", Rate: 10}},
		{"negative workers", LoadConfig{Addr: "x", Rate: 10, Duration: time.Second, Workers: -2}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := RunLoad(context.Background(), tc.cfg); err == nil {
				t.Fatalf("config %+v accepted", tc.cfg)
			}
		})
	}
}

// TestRunLoadAgainstServer drives a real server with the full chaos profile
// and checks the report is coherent: arrivals flow, successes happen, chaos
// is injected, and everything shuts down without leaks (-race covers the
// data paths).
func TestRunLoadAgainstServer(t *testing.T) {
	ts := startServer(t,
		Config{MaxSessions: 32},
		EngineConfig{QueueDepth: 8, ServiceDelay: time.Millisecond})

	profile, err := fault.LookupNetProfile("net-chaos")
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()
	rep, err := RunLoad(ctx, LoadConfig{
		Addr:     ts.addr,
		Rate:     400,
		Duration: 500 * time.Millisecond,
		Workers:  4,
		Profile:  profile,
		Seed:     7,
	})
	if err != nil {
		t.Fatal(err)
	}

	if rep.Arrivals == 0 {
		t.Fatal("no arrivals generated")
	}
	if rep.OK == 0 {
		t.Error("no successful requests against a healthy server")
	}
	if rep.MalformedSent+rep.Disconnects+rep.Slow == 0 {
		t.Error("net-chaos injected nothing across hundreds of arrivals")
	}
	if rep.AchievedRPS <= 0 {
		t.Errorf("achieved rps %v, want > 0", rep.AchievedRPS)
	}
	if rep.LatencyP50Ms <= 0 || rep.LatencyMaxMs < rep.LatencyP50Ms {
		t.Errorf("latency percentiles incoherent: p50=%v max=%v", rep.LatencyP50Ms, rep.LatencyMaxMs)
	}
	if rep.LatencyP99Ms < rep.LatencyP90Ms || rep.LatencyP90Ms < rep.LatencyP50Ms {
		t.Errorf("percentiles not monotone: p50=%v p90=%v p99=%v", rep.LatencyP50Ms, rep.LatencyP90Ms, rep.LatencyP99Ms)
	}

	// The server survived the chaos: still answering, still consistent.
	cli, err := Dial(ts.addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	st, err := cli.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Objects == 0 {
		t.Error("no objects survive the load run; workers create hubs at minimum")
	}
	if got := ts.counter(MetricMalformed); rep.MalformedSent > 0 && got == 0 {
		t.Errorf("client sent %d malformed frames but server counted none", rep.MalformedSent)
	}

	ts.beginDrain()
	ts.waitFinished(t)
	if ts.err != nil {
		t.Fatalf("drain after load returned %v", ts.err)
	}
}

func TestPercentile(t *testing.T) {
	if got := percentile(nil, 0.5); got != 0 {
		t.Fatalf("empty percentile = %v", got)
	}
	s := []float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 10}
	if got := percentile(s, 0.5); got != 6 {
		t.Fatalf("p50 = %v, want 6", got)
	}
	if got := percentile(s, 0.99); got != 10 {
		t.Fatalf("p99 = %v, want 10", got)
	}
}
