package server

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"odbgc/internal/obs/span"
	"odbgc/internal/simerr"
)

// Config parameterizes the network front end.
type Config struct {
	// Addr is the TCP listen address ("127.0.0.1:0" for an ephemeral port).
	Addr string
	// MaxSessions bounds concurrent client sessions; connections past the
	// bound receive a shed frame and are closed. Defaults to 64.
	MaxSessions int
	// IdleTimeout reaps sessions that send nothing for this long.
	// Defaults to 30s.
	IdleTimeout time.Duration
	// RequestTimeout bounds each request from admission to response.
	// Defaults to 5s.
	RequestTimeout time.Duration
	// DrainGrace bounds how long draining sessions may take to finish
	// their in-flight request once stage-1 shutdown begins. Defaults to 2s.
	DrainGrace time.Duration
}

func (c *Config) applyDefaults() {
	if c.MaxSessions == 0 {
		c.MaxSessions = 64
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 30 * time.Second
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 5 * time.Second
	}
	if c.DrainGrace == 0 {
		c.DrainGrace = 2 * time.Second
	}
}

// Server accepts client sessions and routes their requests through the
// engine's admission control. Its lifetime is one Serve call.
type Server struct {
	cfg    Config
	engine *Engine
	m      *Metrics

	ln       net.Listener
	draining atomic.Bool

	mu    sync.Mutex
	conns map[net.Conn]struct{}

	sessions atomic.Int64 // active session count, for admission at accept
	sessSeq  uint64       // accepted-session counter (accept goroutine only); seeds span IDs
}

// New builds a server over an engine. Metrics may be nil.
func New(cfg Config, engine *Engine, m *Metrics) (*Server, error) {
	if engine == nil {
		return nil, fmt.Errorf("server: nil engine")
	}
	if cfg.MaxSessions < 0 {
		return nil, fmt.Errorf("server: MaxSessions %d must be positive", cfg.MaxSessions)
	}
	cfg.applyDefaults()
	return &Server{cfg: cfg, engine: engine, m: m, conns: make(map[net.Conn]struct{})}, nil
}

// Listen binds the configured address. It is separate from Serve so
// callers can learn the bound address (ephemeral ports in tests) before
// traffic starts.
func (s *Server) Listen() (string, error) {
	ln, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return "", err
	}
	s.ln = ln
	return ln.Addr().String(), nil
}

// Addr returns the bound address ("" before Listen).
func (s *Server) Addr() string {
	if s.ln == nil {
		return ""
	}
	return s.ln.Addr().String()
}

// Serve runs the accept loop until drain closes or ctx is cancelled,
// then shuts down in two stages:
//
//	stage 1 (drain closes): the listener closes, sessions are nudged via
//	  a read deadline of now+DrainGrace, in-flight requests finish, the
//	  engine drains its queue, and Serve returns nil — a clean drain.
//	stage 2 (ctx cancelled): every connection is closed immediately and
//	  Serve returns the classified context error.
//
// Listen must have been called first.
func (s *Server) Serve(ctx context.Context, drain <-chan struct{}) error {
	if s.ln == nil {
		return fmt.Errorf("server: Serve before Listen")
	}

	engineDone := make(chan error, 1)
	go func() { engineDone <- s.engine.Run(ctx) }()

	// The watcher turns shutdown signals into listener/connection closes,
	// because Accept and Read have no context of their own. Two straight
	// selects, no loop: stage 1 then stage 2.
	acceptDone := make(chan struct{})
	watcherDone := make(chan struct{})
	go func() {
		defer close(watcherDone)
		select {
		case <-drain:
			s.beginDrain()
		case <-ctx.Done():
			s.beginDrain()
		case <-acceptDone:
			return
		}
		select {
		case <-ctx.Done():
			s.closeAll()
		case <-acceptDone:
		}
	}()

	var wg sync.WaitGroup
	for ctx.Err() == nil {
		conn, err := s.ln.Accept()
		if err != nil {
			// The only way Accept fails here is the listener closing —
			// shutdown — or a fatal socket error; either way the loop ends.
			break
		}
		if s.draining.Load() {
			_ = WriteFrame(conn, Response{Status: StatusClosed,
				Error: simerr.SessionClosedf("server draining").Error()})
			_ = conn.Close()
			continue
		}
		if s.sessions.Load() >= int64(s.cfg.MaxSessions) {
			// Session-level load shedding: tell the client to back off and
			// free the socket; never queue unbounded connections.
			s.m.Shed()
			_ = WriteFrame(conn, Response{Status: StatusShed,
				Error:        simerr.Overloadedf("session limit %d reached", s.cfg.MaxSessions).Error(),
				RetryAfterMs: s.engine.retryAfterMs()})
			_ = conn.Close()
			continue
		}
		s.track(conn)
		s.sessions.Add(1)
		s.sessSeq++
		sess := s.sessSeq
		s.m.SessionStart()
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer s.m.SessionEnd()
			defer s.sessions.Add(-1)
			defer s.untrack(conn)
			defer func() { _ = conn.Close() }()
			s.session(ctx, conn, sess)
		}()
	}
	close(acceptDone)
	_ = s.ln.Close()

	// Drain: wait for every session to finish, then let the engine empty
	// its queue. Sessions are bounded by DrainGrace (their read deadlines
	// were nudged) or by ctx (stage 2 closes their conns), so this wait
	// terminates.
	wg.Wait()
	s.engine.CloseQueue()
	err := <-engineDone
	<-watcherDone
	if err != nil && ctx.Err() != nil {
		return err
	}
	return nil
}

func (s *Server) track(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.conns[conn] = struct{}{}
}

func (s *Server) untrack(conn net.Conn) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.conns, conn)
}

// beginDrain enters stage 1: no new sessions or requests, and every open
// connection's read deadline is pulled in so blocked sessions wake within
// the grace period. The flag is set strictly before the deadline nudge so
// a session that overwrites the nudged deadline with its idle deadline is
// guaranteed to observe draining on its next check and re-arm the short
// deadline itself.
func (s *Server) beginDrain() {
	s.draining.Store(true)
	s.engine.BeginDrain()
	_ = s.ln.Close()
	dl := time.Now().Add(s.cfg.DrainGrace)
	for _, conn := range s.snapshotConns() {
		_ = conn.SetReadDeadline(dl)
	}
}

// closeAll is stage 2: hard-close every connection.
func (s *Server) closeAll() {
	for _, conn := range s.snapshotConns() {
		_ = conn.Close()
	}
}

// snapshotConns copies the live connection set under s.mu so drain and
// close touch the sockets with the lock released: net.Conn calls can block
// on a wedged peer, and a stalled socket must not stall track/untrack.
func (s *Server) snapshotConns() []net.Conn {
	s.mu.Lock()
	defer s.mu.Unlock()
	conns := make([]net.Conn, 0, len(s.conns))
	for conn := range s.conns {
		//lint:allow maporder shutdown touches every connection; order is irrelevant
		conns = append(conns, conn)
	}
	return conns
}

// session serves one connection: read a frame, submit it, write the
// response, repeat until the client goes away, the idle deadline fires,
// the drain begins, or ctx ends. sess is the accept-order session number;
// with tracing on, request seq of this session gets the deterministic span
// ID RequestID(sess, seq) and per-stage timings on the engine tick clock.
func (s *Server) session(ctx context.Context, conn net.Conn, sess uint64) {
	rec := s.engine.cfg.Recorder
	acceptTick := s.engine.Now()
	var seq uint64
	for ctx.Err() == nil {
		if s.draining.Load() {
			_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.DrainGrace))
			_ = WriteFrame(conn, Response{Status: StatusClosed,
				Error: simerr.SessionClosedf("server draining").Error()})
			return
		}
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
		if s.draining.Load() {
			// The idle deadline just overwrote the drain nudge; re-arm the
			// short one and take the draining path on the next read error
			// or loop turn.
			_ = conn.SetReadDeadline(time.Now().Add(s.cfg.DrainGrace))
		}
		var req Request
		arrival, decoded, err := ReadFrameTimed(conn, &req, s.engine.Now)
		if err != nil {
			switch {
			case IsMalformed(err):
				// Hostile or corrupt bytes: the frame boundary is gone, so
				// the connection cannot be saved. Best-effort error frame,
				// then close. No span: the request never decoded.
				s.m.Malformed()
				_ = conn.SetWriteDeadline(time.Now().Add(time.Second))
				_ = WriteFrame(conn, Response{Status: StatusError, Error: err.Error()})
			case isTimeout(err) && !s.draining.Load():
				s.m.IdleReaped()
			case errors.Is(err, io.EOF), errors.Is(err, io.ErrUnexpectedEOF):
				// Client went away between frames (or mid-frame); normal.
			}
			return
		}
		seq++
		sp := rec.Start(span.KindRequest, req.Op, span.RequestID(sess, seq), 0, arrival)
		if sp != nil {
			sp.Session, sp.Seq = sess, seq
		}
		if seq == 1 {
			// Accept-to-first-frame is charged once per session; it precedes
			// the span's own window, so it lives outside the stage-sum check.
			sp.SetStage(span.StageAccept, arrival-acceptTick)
			s.m.Stage(MetricStageAccept, float64(arrival-acceptTick)/1e6, sp.SpanID())
		}
		sp.SetStage(span.StageDecode, decoded-arrival)
		s.m.Stage(MetricStageDecode, float64(decoded-arrival)/1e6, sp.SpanID())
		reqCtx, cancel := context.WithTimeout(ctx, s.cfg.RequestTimeout)
		resp := s.engine.Submit(reqCtx, req, sp)
		cancel()
		// Queue and service stages come back as response metadata: the
		// engine never touches the session's span, only its ID, so there is
		// no write to race with an abandoned waiter's Finish.
		sp.SetStage(span.StageQueue, resp.QueueUs*1000)
		sp.SetStage(span.StageService, resp.ServiceUs*1000)
		_ = conn.SetWriteDeadline(time.Now().Add(s.cfg.RequestTimeout))
		wStart := s.engine.Now()
		werr := WriteFrame(conn, resp)
		wEnd := s.engine.Now()
		sp.SetStage(span.StageWrite, wEnd-wStart)
		s.m.Stage(MetricStageWrite, float64(wEnd-wStart)/1e6, sp.SpanID())
		rec.Finish(sp, wEnd, outcomeOf(resp))
		if werr != nil {
			return
		}
	}
}

// outcomeOf maps a response to its span outcome tag.
func outcomeOf(resp Response) string {
	switch {
	case resp.Expired:
		return span.OutcomeExpired
	case resp.Status == StatusOK:
		return span.OutcomeOK
	case resp.Status == StatusShed:
		return span.OutcomeShed
	case resp.Status == StatusClosed:
		return span.OutcomeClosed
	default:
		return span.OutcomeError
	}
}

// isTimeout reports whether err is a deadline expiry.
func isTimeout(err error) bool {
	var ne net.Error
	return errors.As(err, &ne) && ne.Timeout()
}
