package server

import (
	"fmt"

	"odbgc/internal/gc"
	"odbgc/internal/objstore"
	"odbgc/internal/storage/disk"
)

// RebuildHeap populates an empty heap from the committed state a durable
// store recovered at open: every object is recreated, then every non-nil
// pointer slot is replayed as an initializing store (so remembered sets,
// placement, and partition bookkeeping rebuild exactly as they would have
// online), then the persistent roots are re-registered. The heap must be
// freshly constructed, and the store must be attached with SetDurable only
// AFTER rebuilding — replaying recovered mutations back into the WAL would
// double-log them.
func RebuildHeap(heap *gc.Heap, st *disk.Store) error {
	var err error
	st.ForEach(func(o disk.ObjectState) {
		if err != nil {
			return
		}
		if cerr := heap.Create(o.OID, o.Class, o.Size, len(o.Slots)); cerr != nil {
			err = fmt.Errorf("server: recreate recovered object %v: %w", o.OID, cerr)
		}
	})
	if err != nil {
		return err
	}
	// Second pass wires pointers and roots; every target already exists.
	st.ForEach(func(o disk.ObjectState) {
		if err != nil {
			return
		}
		for i, dst := range o.Slots {
			if dst.IsNil() {
				continue
			}
			if oerr := heap.Overwrite(o.OID, i, objstore.NilOID, dst, true); oerr != nil {
				err = fmt.Errorf("server: rewire recovered slot %v[%d]: %w", o.OID, i, oerr)
				return
			}
		}
		if o.Root {
			if rerr := heap.AddRoot(o.OID); rerr != nil {
				err = fmt.Errorf("server: re-root recovered object %v: %w", o.OID, rerr)
			}
		}
	})
	if err != nil {
		return err
	}
	// The OID horizon can exceed every live OID when the newest objects
	// were reclaimed; never rewind allocation into a range the log has
	// already seen.
	heap.Store().AdvanceNextOID(st.NextOID())
	return nil
}
