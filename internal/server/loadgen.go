package server

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"odbgc/internal/fault"
)

// LoadConfig parameterizes the open-loop load generator.
type LoadConfig struct {
	// Addr is the server to drive.
	Addr string
	// Rate is the arrival rate in requests per second. Open-loop: arrivals
	// are scheduled by the clock, not by responses, so a slow server faces
	// a growing backlog instead of an accommodating client.
	Rate float64
	// Duration is how long arrivals are generated.
	Duration time.Duration
	// Workers is the client session pool size. Defaults to 8.
	Workers int
	// Profile is the network chaos profile (zero value: no chaos).
	Profile fault.NetProfile
	// Seed drives the chaos schedule; same seed, same schedule.
	Seed int64
	// RequestTimeout bounds each request. Defaults to 2s.
	RequestTimeout time.Duration
}

func (c *LoadConfig) validate() error {
	if c.Addr == "" {
		return fmt.Errorf("server: load config needs an address")
	}
	if c.Rate <= 0 {
		return fmt.Errorf("server: arrival rate %.2f must be positive", c.Rate)
	}
	if c.Duration <= 0 {
		return fmt.Errorf("server: load duration must be positive")
	}
	if c.Workers == 0 {
		c.Workers = 8
	}
	if c.Workers < 0 {
		return fmt.Errorf("server: worker count %d must be positive", c.Workers)
	}
	if c.RequestTimeout == 0 {
		c.RequestTimeout = 2 * time.Second
	}
	return nil
}

// LoadReport is the generator's result, JSON-ready for the CLI and the
// smoke test.
type LoadReport struct {
	Arrivals   uint64 `json:"arrivals"`
	OK         uint64 `json:"ok"`
	Shed       uint64 `json:"shed"`
	Closed     uint64 `json:"closed"`
	Errors     uint64 `json:"errors"`
	ConnErrors uint64 `json:"conn_errors"`
	// LagDropped counts arrivals abandoned client-side because every
	// worker was busy and the dispatch buffer was full — the open-loop
	// generator refuses to queue unboundedly, same as the server.
	LagDropped uint64 `json:"lag_dropped"`

	MalformedSent uint64 `json:"malformed_sent"`
	Disconnects   uint64 `json:"disconnects_injected"`
	Slow          uint64 `json:"slow_injected"`
	Bursts        uint64 `json:"bursts_injected"`

	DurationMs  float64 `json:"duration_ms"`
	AchievedRPS float64 `json:"achieved_rps"`
	ShedRate    float64 `json:"shed_rate"`

	LatencyP50Ms float64 `json:"latency_p50_ms"`
	LatencyP90Ms float64 `json:"latency_p90_ms"`
	LatencyP99Ms float64 `json:"latency_p99_ms"`
	LatencyMaxMs float64 `json:"latency_max_ms"`

	// Per-stage breakdown of successful requests, from the span-derived
	// response metadata (queue_us/service_us): how much of the round trip
	// was admission-queue wait versus engine service. The remainder is
	// network plus client-side scheduling.
	QueueWaitP50Ms float64 `json:"queue_wait_p50_ms"`
	QueueWaitP90Ms float64 `json:"queue_wait_p90_ms"`
	QueueWaitP99Ms float64 `json:"queue_wait_p99_ms"`
	ServiceP50Ms   float64 `json:"service_p50_ms"`
	ServiceP90Ms   float64 `json:"service_p90_ms"`
	ServiceP99Ms   float64 `json:"service_p99_ms"`
}

// token is one scheduled arrival and its chaos verdict.
type token struct {
	d fault.NetDecision
}

// loadState is the shared scoreboard the workers write.
type loadState struct {
	mu        sync.Mutex
	rep       LoadReport
	latencies []float64 // ms, successful round trips only
	queueMs   []float64 // ms, queue-wait stage of successful requests
	serviceMs []float64 // ms, service stage of successful requests
}

func (st *loadState) record(fn func(*LoadReport)) {
	st.mu.Lock()
	defer st.mu.Unlock()
	fn(&st.rep)
}

func (st *loadState) latency(ms float64, queueUs, serviceUs int64) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.latencies = append(st.latencies, ms)
	st.queueMs = append(st.queueMs, float64(queueUs)/1000)
	st.serviceMs = append(st.serviceMs, float64(serviceUs)/1000)
}

// RunLoad drives the server at the configured arrival rate with the
// configured chaos, returning the aggregate report. It returns early (with
// the partial report) when ctx ends.
func RunLoad(ctx context.Context, cfg LoadConfig) (*LoadReport, error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	chaos := fault.NewNetChaos(cfg.Profile, cfg.Seed)
	st := &loadState{}
	tokens := make(chan token, cfg.Workers*4)

	var wg sync.WaitGroup
	for i := 0; i < cfg.Workers; i++ {
		w := &loadWorker{cfg: cfg, st: st, id: i}
		wg.Add(1)
		go func() {
			defer wg.Done()
			w.run(ctx, tokens)
		}()
	}

	// Open-loop dispatcher: arrivals land on the clock schedule. A full
	// token buffer means the client fleet is saturated; the arrival is
	// dropped and counted rather than queued forever.
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	if interval <= 0 {
		interval = time.Millisecond
	}
	start := time.Now()
	next := start
	dispatch := func(d fault.NetDecision) {
		st.record(func(r *LoadReport) { r.Arrivals++ })
		select {
		case tokens <- token{d: d}:
		default:
			st.record(func(r *LoadReport) { r.LagDropped++ })
		}
	}
	for ctx.Err() == nil && time.Since(start) < cfg.Duration {
		next = next.Add(interval)
		if wait := time.Until(next); wait > 0 {
			time.Sleep(wait)
		}
		d := chaos.Next()
		dispatch(d)
		for i := 0; i < d.Burst; i++ {
			extra := chaos.Next()
			extra.Burst = 0 // bursts do not nest
			dispatch(extra)
		}
	}
	close(tokens)
	wg.Wait()

	st.mu.Lock()
	defer st.mu.Unlock()
	rep := st.rep
	cs := chaos.Stats()
	rep.MalformedSent = cs.Malformed
	rep.Disconnects = cs.Disconnects
	rep.Slow = cs.Slow
	rep.Bursts = cs.Bursts
	rep.DurationMs = float64(time.Since(start)) / float64(time.Millisecond)
	if rep.DurationMs > 0 {
		rep.AchievedRPS = float64(rep.OK) / (rep.DurationMs / 1000)
	}
	if answered := rep.OK + rep.Shed + rep.Closed + rep.Errors; answered > 0 {
		rep.ShedRate = float64(rep.Shed) / float64(answered)
	}
	sort.Float64s(st.latencies)
	rep.LatencyP50Ms = percentile(st.latencies, 0.50)
	rep.LatencyP90Ms = percentile(st.latencies, 0.90)
	rep.LatencyP99Ms = percentile(st.latencies, 0.99)
	if n := len(st.latencies); n > 0 {
		rep.LatencyMaxMs = st.latencies[n-1]
	}
	sort.Float64s(st.queueMs)
	rep.QueueWaitP50Ms = percentile(st.queueMs, 0.50)
	rep.QueueWaitP90Ms = percentile(st.queueMs, 0.90)
	rep.QueueWaitP99Ms = percentile(st.queueMs, 0.99)
	sort.Float64s(st.serviceMs)
	rep.ServiceP50Ms = percentile(st.serviceMs, 0.50)
	rep.ServiceP90Ms = percentile(st.serviceMs, 0.90)
	rep.ServiceP99Ms = percentile(st.serviceMs, 0.99)
	return &rep, nil
}

// percentile reads the p-quantile from an ascending slice (0 when empty).
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(p * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}

// loadWorker is one client session: a connection, a rooted hub object, and
// a rotating op mix that creates children, links them into the hub,
// unpins them, and overwrites the links — the steady garbage production
// the online controllers regulate.
type loadWorker struct {
	cfg LoadConfig
	st  *loadState
	id  int

	cli       *Client
	hub       uint64 // rooted anchor object; survives reconnects
	lastChild uint64
	seq       int
	slot      int
}

const hubSlots = 8

// run consumes arrival tokens until the channel closes or ctx ends.
func (w *loadWorker) run(ctx context.Context, tokens <-chan token) {
	defer w.close()
	for t := range tokens {
		if ctx.Err() != nil {
			return
		}
		w.one(ctx, t.d)
	}
}

func (w *loadWorker) close() {
	if w.cli != nil {
		_ = w.cli.Close()
		w.cli = nil
	}
}

// ensure dials and, on first contact, creates the worker's hub object.
func (w *loadWorker) ensure(ctx context.Context) bool {
	if w.cli != nil {
		return true
	}
	cli, err := Dial(w.cfg.Addr, w.cfg.RequestTimeout)
	if err != nil {
		w.st.record(func(r *LoadReport) { r.ConnErrors++ })
		return false
	}
	w.cli = cli
	if w.hub == 0 {
		reqCtx, cancel := context.WithTimeout(ctx, w.cfg.RequestTimeout)
		oid, err := cli.Create(reqCtx, 256, hubSlots)
		cancel()
		if err != nil {
			// Creation can be shed under overload; the next arrival
			// retries it.
			w.st.record(func(r *LoadReport) { r.Errors++ })
			return false
		}
		w.hub = oid
	}
	return true
}

// nextRequest draws the next op in the worker's rotation.
func (w *loadWorker) nextRequest() Request {
	w.seq++
	switch w.seq % 5 {
	case 0:
		return Request{Op: OpCreate, Size: 64 + (w.seq%7)*16, Slots: 2}
	case 1:
		if w.lastChild != 0 {
			w.slot = (w.slot + 1) % hubSlots
			return Request{Op: OpSet, OID: w.hub, Slot: w.slot, Dst: w.lastChild}
		}
		return Request{Op: OpAccess, OID: w.hub}
	case 2:
		if w.lastChild != 0 {
			return Request{Op: OpUnroot, OID: w.lastChild}
		}
		return Request{Op: OpAccess, OID: w.hub}
	case 3:
		return Request{Op: OpAccess, OID: w.hub}
	default:
		return Request{Op: OpUpdate, OID: w.hub}
	}
}

// one performs a single arrival: chaos first, then the real request.
func (w *loadWorker) one(ctx context.Context, d fault.NetDecision) {
	if !w.ensure(ctx) {
		return
	}
	conn := w.cli.Conn()
	switch {
	case d.Malformed:
		// Ship garbage bytes; the server counts the violation and drops
		// the connection, so reconnect on the next arrival.
		_ = conn.SetDeadline(time.Now().Add(w.cfg.RequestTimeout))
		_, _ = conn.Write(fault.NewNetChaos(w.cfg.Profile, w.cfg.Seed+int64(w.id)+int64(w.seq)).MalformedFrame())
		w.close()
		return
	case d.Disconnect:
		// Send a real request, then vanish before reading the response.
		req := w.nextRequest()
		_ = conn.SetDeadline(time.Now().Add(w.cfg.RequestTimeout))
		_ = WriteFrame(conn, req)
		w.close()
		return
	}
	if d.SlowFactor > 1 {
		// A slow client: stall before the request, holding the session
		// open without useful work.
		time.Sleep(time.Duration(d.SlowFactor * float64(time.Millisecond)))
	}

	req := w.nextRequest()
	reqCtx, cancel := context.WithTimeout(ctx, w.cfg.RequestTimeout)
	start := time.Now()
	resp, err := w.cli.Do(reqCtx, req)
	cancel()
	if err != nil {
		w.st.record(func(r *LoadReport) { r.ConnErrors++ })
		w.close()
		return
	}
	ms := float64(time.Since(start)) / float64(time.Millisecond)
	switch resp.Status {
	case StatusOK:
		w.st.latency(ms, resp.QueueUs, resp.ServiceUs)
		w.st.record(func(r *LoadReport) { r.OK++ })
		if req.Op == OpCreate {
			w.lastChild = resp.OID
		}
	case StatusShed:
		w.st.record(func(r *LoadReport) { r.Shed++ })
	case StatusClosed:
		w.st.record(func(r *LoadReport) { r.Closed++ })
		w.close()
	default:
		w.st.record(func(r *LoadReport) { r.Errors++ })
	}
}
