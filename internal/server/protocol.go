// Package server is the network-facing front end of the object database:
// many concurrent client sessions create, access, update, and unlink
// objects against a live gc.Heap while the paper's SAIO/SAGA controllers
// run online, fed by the server's own streaming allocation/overwrite
// statistics instead of oracle trace annotations.
//
// The package is built around one robustness spine:
//
//   - admission control: a bounded request queue; requests past the limit
//     are shed immediately with a retry-after hint (simerr.ErrOverloaded),
//     never buffered unboundedly;
//   - deadlines: per-request deadlines, per-session idle timeouts with
//     reaping, and a drain grace period;
//   - a circuit breaker around the garbage estimator that degrades to the
//     coarse fallback on repeated bad signals and recovers via half-open
//     probes;
//   - two-stage shutdown: stop accepting, drain in-flight sessions, flush
//     observability artifacts, then hard-cancel whatever remains.
//
// The wire protocol is deliberately small: length-prefixed JSON frames
// (a big-endian uint32 byte count, then that many bytes of one JSON
// document) over TCP. One request frame yields exactly one response frame.
package server

import (
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"
)

// MaxFrameBytes bounds a single frame's payload. Anything larger is
// rejected before allocation, so a hostile length prefix cannot make the
// server reserve gigabytes.
const MaxFrameBytes = 64 * 1024

// Request ops.
const (
	OpPing   = "ping"   // liveness probe; echoes ok
	OpCreate = "create" // allocate an object (Size bytes, Slots pointer slots); auto-rooted
	OpAccess = "access" // read an object (application read I/O)
	OpUpdate = "update" // non-pointer write to an object
	OpSet    = "set"    // pointer overwrite: OID's slot Slot now points at Dst (0 = nil)
	OpRoot   = "root"   // pin an object in the persistent root set
	OpUnroot = "unroot" // unpin; an unlinked object becomes garbage
	OpStats  = "stats"  // server/database statistics snapshot
)

// Response statuses.
const (
	StatusOK     = "ok"
	StatusError  = "error"  // the op failed; Error carries the reason
	StatusShed   = "shed"   // admission control refused the request; retry later
	StatusClosed = "closed" // the server is draining; open a new connection elsewhere
)

// Request is one client frame.
type Request struct {
	ID    uint64 `json:"id"`
	Op    string `json:"op"`
	OID   uint64 `json:"oid,omitempty"`
	Size  int    `json:"size,omitempty"`
	Slots int    `json:"slots,omitempty"`
	Slot  int    `json:"slot,omitempty"`
	Dst   uint64 `json:"dst,omitempty"`
}

// Stats is the payload of an OpStats response: enough of the live heap and
// controller state for a client (or the smoke test) to see the online GC
// working.
type Stats struct {
	Objects        int    `json:"objects"`
	DBBytes        int    `json:"db_bytes"`
	Partitions     int    `json:"partitions"`
	Roots          int    `json:"roots"`
	OverwriteClock uint64 `json:"overwrite_clock"`
	Collections    uint64 `json:"collections"`
	ReclaimedBytes uint64 `json:"reclaimed_bytes"`
	AppIO          uint64 `json:"app_io"`
	GCIO           uint64 `json:"gc_io"`
	Policy         string `json:"policy"`
	BreakerState   string `json:"breaker_state,omitempty"`
	QueueLen       int    `json:"queue_len"`
	QueueDepth     int    `json:"queue_depth"`
}

// Response is one server frame.
type Response struct {
	ID     uint64 `json:"id"`
	Status string `json:"status"`
	OID    uint64 `json:"oid,omitempty"` // assigned OID for create
	Old    uint64 `json:"old,omitempty"` // previous slot value for set
	Error  string `json:"error,omitempty"`
	// RetryAfterMs accompanies StatusShed: the server's estimate of when
	// capacity will free up, derived from observed service times and the
	// queue bound.
	RetryAfterMs int `json:"retry_after_ms,omitempty"`
	// QueueUs and ServiceUs report where an admitted request's time went,
	// in microseconds of engine clock: admission-queue wait and engine
	// service. Present whether or not tracing is enabled, so load drivers
	// can break latency down without a recorder.
	QueueUs   int64 `json:"queue_us,omitempty"`
	ServiceUs int64 `json:"service_us,omitempty"`
	// Expired marks a request whose deadline passed while it sat in the
	// admission queue; the op never executed.
	Expired bool   `json:"expired,omitempty"`
	Stats   *Stats `json:"stats,omitempty"`
}

// WriteFrame marshals v and writes it as one length-prefixed frame.
func WriteFrame(w io.Writer, v any) error {
	b, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("server: encoding frame: %w", err)
	}
	if len(b) > MaxFrameBytes {
		return fmt.Errorf("server: frame of %d bytes exceeds limit %d", len(b), MaxFrameBytes)
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(b)))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err = w.Write(b)
	return err
}

// ReadFrame reads one length-prefixed frame into v. A declared length past
// MaxFrameBytes or a payload that is not valid JSON returns an error
// wrapping errMalformed, which the session layer counts and treats as
// fatal for the connection (the frame boundary is lost).
func ReadFrame(r io.Reader, v any) error {
	_, _, err := ReadFrameTimed(r, v, nil)
	return err
}

// ReadFrameTimed is ReadFrame with stage timing for the tracing layer: when
// now is non-nil, arrival is the tick at which the frame's length header
// had fully arrived (the request observably exists) and decoded the tick
// after JSON decoding — their difference is the span's decode stage. A nil
// now skips the clock reads and returns zero ticks.
func ReadFrameTimed(r io.Reader, v any, now func() int64) (arrival, decoded int64, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, 0, err
	}
	if now != nil {
		arrival = now()
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n == 0 || n > MaxFrameBytes {
		return arrival, arrival, fmt.Errorf("%w: declared length %d outside (0,%d]", errMalformed, n, MaxFrameBytes)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return arrival, arrival, err
	}
	if err := json.Unmarshal(b, v); err != nil {
		return arrival, arrival, fmt.Errorf("%w: %v", errMalformed, err)
	}
	if now != nil {
		decoded = now()
	}
	return arrival, decoded, nil
}

// errMalformed tags protocol violations (bad length prefix, non-JSON
// payload) so the session layer can distinguish hostile bytes from plain
// disconnects.
var errMalformed = errors.New("server: malformed frame")

// IsMalformed reports whether err is a protocol violation rather than an
// I/O failure.
func IsMalformed(err error) bool {
	return errors.Is(err, errMalformed)
}
