package server

import (
	"math"
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/gc"
)

// scriptedEstimator replays a fixed sequence of estimates; after the
// script runs out it repeats the last value.
type scriptedEstimator struct {
	name   string
	script []float64
	i      int
	obs    int
}

func (s *scriptedEstimator) Name() string { return s.name }
func (s *scriptedEstimator) ObserveCollection(core.HeapState, gc.CollectionResult) {
	s.obs++
}
func (s *scriptedEstimator) EstimateGarbage(core.HeapState) float64 {
	v := s.script[len(s.script)-1]
	if s.i < len(s.script) {
		v = s.script[s.i]
		s.i++
	}
	return v
}

// fixedState is a minimal HeapState fixture.
type fixedState struct{}

func (fixedState) DatabaseBytes() int          { return 10_000 }
func (fixedState) ActualGarbageBytes() int     { return 0 }
func (fixedState) TotalCollectedBytes() uint64 { return 0 }
func (fixedState) SumPartitionOverwrites() int { return 0 }
func (fixedState) NumPartitions() int          { return 4 }

func repeat(v float64, n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = v
	}
	return out
}

func TestBreakerTripsAndServesFallback(t *testing.T) {
	nan := math.NaN()
	primary := &scriptedEstimator{name: "flaky", script: append(repeat(100, 2), repeat(nan, 10)...)}
	fallback := &scriptedEstimator{name: "steady", script: []float64{500}}
	b, err := NewBreaker(BreakerConfig{TripAfter: 3, Cooldown: 4, HalfOpenProbes: 2}, primary, fallback)
	if err != nil {
		t.Fatal(err)
	}
	h := fixedState{}

	// Two good estimates: closed, primary value served.
	for i := 0; i < 2; i++ {
		if got := b.EstimateGarbage(h); got != 100 {
			t.Fatalf("estimate %d = %v, want primary's 100", i, got)
		}
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after good signals, want closed", b.State())
	}
	// Three consecutive NaNs trip it; the fallback serves from the first
	// bad signal on (the controller never sees an unusable number).
	for i := 0; i < 3; i++ {
		if got := b.EstimateGarbage(h); got != 500 {
			t.Fatalf("bad-signal estimate %d = %v, want fallback's 500", i, got)
		}
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after %d bad signals, want open", b.State(), 3)
	}
	if b.Trips() != 1 {
		t.Fatalf("trips = %d, want 1", b.Trips())
	}
}

func TestBreakerHalfOpenRecovery(t *testing.T) {
	nan := math.NaN()
	// 3 bad (trip) → 4 in cooldown → good probes from then on.
	script := append(repeat(nan, 7), repeat(42, 10)...)
	primary := &scriptedEstimator{name: "flaky", script: script}
	fallback := &scriptedEstimator{name: "steady", script: []float64{500}}
	b, err := NewBreaker(BreakerConfig{TripAfter: 3, Cooldown: 4, HalfOpenProbes: 2}, primary, fallback)
	if err != nil {
		t.Fatal(err)
	}
	h := fixedState{}
	for i := 0; i < 3; i++ {
		_ = b.EstimateGarbage(h) // trip
	}
	if b.State() != BreakerOpen {
		t.Fatalf("not open after trip: %v", b.State())
	}
	// Cooldown: 4 estimates served by the fallback, then half-open.
	for i := 0; i < 4; i++ {
		if got := b.EstimateGarbage(h); got != 500 {
			t.Fatalf("cooldown estimate %d = %v, want 500", i, got)
		}
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v after cooldown, want half-open", b.State())
	}
	// Two good probes close it; probes serve the primary.
	for i := 0; i < 2; i++ {
		if got := b.EstimateGarbage(h); got != 42 {
			t.Fatalf("probe %d = %v, want primary's 42", i, got)
		}
	}
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after good probes, want closed", b.State())
	}
	if b.Recoveries() != 1 {
		t.Fatalf("recoveries = %d, want 1", b.Recoveries())
	}
	// Healthy again: primary keeps serving.
	if got := b.EstimateGarbage(h); got != 42 {
		t.Fatalf("post-recovery estimate %v, want 42", got)
	}
}

func TestBreakerBadProbeReopens(t *testing.T) {
	nan := math.NaN()
	// 2 bad (trip at TripAfter=2) → 2 cooldown → 1 bad probe → reopen.
	script := append(repeat(nan, 4), nan)
	primary := &scriptedEstimator{name: "flaky", script: script}
	fallback := &scriptedEstimator{name: "steady", script: []float64{500}}
	b, err := NewBreaker(BreakerConfig{TripAfter: 2, Cooldown: 2, HalfOpenProbes: 2}, primary, fallback)
	if err != nil {
		t.Fatal(err)
	}
	h := fixedState{}
	for i := 0; i < 2; i++ {
		_ = b.EstimateGarbage(h) // trip 1
	}
	for i := 0; i < 2; i++ {
		_ = b.EstimateGarbage(h) // cooldown → half-open
	}
	if b.State() != BreakerHalfOpen {
		t.Fatalf("state %v, want half-open", b.State())
	}
	if got := b.EstimateGarbage(h); got != 500 {
		t.Fatalf("bad probe served %v, want fallback's 500", got)
	}
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after bad probe, want open", b.State())
	}
	if b.Trips() != 2 {
		t.Fatalf("trips = %d, want 2 (initial + re-trip)", b.Trips())
	}
}

func TestBreakerRecordFailureTrips(t *testing.T) {
	primary := &scriptedEstimator{name: "fine", script: []float64{100}}
	fallback := &scriptedEstimator{name: "steady", script: []float64{500}}
	b, err := NewBreaker(BreakerConfig{TripAfter: 2, Cooldown: 2, HalfOpenProbes: 1}, primary, fallback)
	if err != nil {
		t.Fatal(err)
	}
	// External failures (collection errors) trip the breaker even though
	// the primary's numbers look plausible.
	b.RecordFailure()
	if b.State() != BreakerClosed {
		t.Fatalf("one failure opened the breaker early")
	}
	b.RecordFailure()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after TripAfter failures, want open", b.State())
	}
	if b.BadSignals() != 2 {
		t.Fatalf("bad signals = %d, want 2", b.BadSignals())
	}
}

func TestBreakerObservesBothEstimators(t *testing.T) {
	primary := &scriptedEstimator{name: "p", script: []float64{1}}
	fallback := &scriptedEstimator{name: "f", script: []float64{2}}
	b, err := NewBreaker(BreakerConfig{}, primary, fallback)
	if err != nil {
		t.Fatal(err)
	}
	b.ObserveCollection(fixedState{}, gc.CollectionResult{})
	if primary.obs != 1 || fallback.obs != 1 {
		t.Fatalf("observations primary=%d fallback=%d, want 1/1 (fallback must stay warm)", primary.obs, fallback.obs)
	}
	if b.Name() != "breaker(p->f)" {
		t.Fatalf("name = %q", b.Name())
	}
}
