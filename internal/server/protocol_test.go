package server

import (
	"bytes"
	"encoding/binary"
	"io"
	"strings"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := Request{ID: 7, Op: OpSet, OID: 42, Slot: 3, Dst: 99}
	if err := WriteFrame(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out Request
	if err := ReadFrame(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if out != in {
		t.Fatalf("round trip: got %+v, want %+v", out, in)
	}
}

func TestReadFrameRejectsHostileLength(t *testing.T) {
	// A 4 GiB declared length must be refused before any allocation.
	var buf bytes.Buffer
	buf.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF})
	var out Request
	err := ReadFrame(&buf, &out)
	if err == nil {
		t.Fatal("hostile length prefix accepted")
	}
	if !IsMalformed(err) {
		t.Fatalf("hostile length classified as %v, want malformed", err)
	}
}

func TestReadFrameRejectsZeroLength(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0, 0, 0, 0})
	var out Request
	if err := ReadFrame(&buf, &out); !IsMalformed(err) {
		t.Fatalf("zero-length frame: got %v, want malformed", err)
	}
}

func TestReadFrameRejectsBadJSON(t *testing.T) {
	var buf bytes.Buffer
	payload := []byte("{not json")
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	buf.Write(hdr[:])
	buf.Write(payload)
	var out Request
	err := ReadFrame(&buf, &out)
	if !IsMalformed(err) {
		t.Fatalf("bad JSON: got %v, want malformed", err)
	}
}

func TestReadFrameTruncatedIsNotMalformed(t *testing.T) {
	// A clean disconnect mid-frame is an I/O condition, not a protocol
	// violation: the session layer must not count it as hostile.
	var full bytes.Buffer
	if err := WriteFrame(&full, Request{ID: 1, Op: OpPing}); err != nil {
		t.Fatal(err)
	}
	half := full.Bytes()[:full.Len()-3]
	var out Request
	err := ReadFrame(bytes.NewReader(half), &out)
	if err == nil {
		t.Fatal("truncated frame accepted")
	}
	if IsMalformed(err) {
		t.Fatalf("truncation classified as malformed: %v", err)
	}
	if err != io.ErrUnexpectedEOF {
		t.Logf("truncation surfaced as %v", err) // informational; exact error is the stdlib's
	}
}

func TestWriteFrameRejectsOversize(t *testing.T) {
	var buf bytes.Buffer
	big := Response{Error: strings.Repeat("x", MaxFrameBytes)}
	if err := WriteFrame(&buf, big); err == nil {
		t.Fatal("oversized frame written")
	}
	if buf.Len() != 0 {
		t.Fatalf("oversize rejection leaked %d bytes onto the wire", buf.Len())
	}
}
