package server

import (
	"context"
	"net"
	"runtime"
	"sync"
	"testing"
	"time"

	"odbgc/internal/core"
	"odbgc/internal/gc"
	"odbgc/internal/objstore"
	"odbgc/internal/obs"
	"odbgc/internal/storage"
)

// testSrv is a running server plus the handles the tests drive it with.
type testSrv struct {
	srv      *Server
	eng      *Engine
	live     *obs.Live
	addr     string
	drain    chan struct{}
	cancel   context.CancelFunc
	finished chan struct{}
	err      error

	drainOnce sync.Once
}

// startServer boots a complete serving stack on an ephemeral port. Zero
// fields in the configs get test-friendly values.
func startServer(t *testing.T, scfg Config, ecfg EngineConfig) *testSrv {
	t.Helper()
	store := objstore.NewStore()
	mgr, err := storage.NewManager(storage.Config{PageSize: 1024, PagesPerPartition: 4, BufferPages: 8})
	if err != nil {
		t.Fatal(err)
	}
	heap := gc.NewHeap(store, mgr)
	if ecfg.Policy == nil {
		p, err := core.NewFixedRate(4)
		if err != nil {
			t.Fatal(err)
		}
		ecfg.Policy = p
	}
	if ecfg.Selection == nil {
		ecfg.Selection = gc.UpdatedPointer{}
	}
	live := obs.NewLive()
	ecfg.Metrics = NewMetrics(live.Registry())
	eng, err := NewEngine(heap, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if scfg.Addr == "" {
		scfg.Addr = "127.0.0.1:0"
	}
	srv, err := New(scfg, eng, ecfg.Metrics)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	ts := &testSrv{
		srv: srv, eng: eng, live: live, addr: addr,
		drain: make(chan struct{}), cancel: cancel,
		finished: make(chan struct{}),
	}
	go func() {
		ts.err = srv.Serve(ctx, ts.drain)
		close(ts.finished)
	}()
	t.Cleanup(func() {
		cancel()
		select {
		case <-ts.finished:
		case <-time.After(5 * time.Second):
			t.Error("server did not stop after hard cancel")
		}
	})
	return ts
}

// beginDrain closes the drain channel (idempotently) — stage 1.
func (ts *testSrv) beginDrain() {
	ts.drainOnce.Do(func() { close(ts.drain) })
}

// waitFinished blocks until Serve returns.
func (ts *testSrv) waitFinished(t *testing.T) {
	t.Helper()
	select {
	case <-ts.finished:
	case <-time.After(5 * time.Second):
		t.Fatal("server did not finish in time")
	}
}

func (ts *testSrv) counter(name string) float64 { return ts.live.Registry().Counter(name) }

// assertGoroutinesReturn waits for the goroutine count to come back to the
// baseline: the leak check backing satellite requirement 3.
func assertGoroutinesReturn(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		runtime.GC()
		n := runtime.NumGoroutine()
		if n <= baseline {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			buf = buf[:runtime.Stack(buf, true)]
			t.Fatalf("goroutine count %d never returned to baseline %d\n%s", n, baseline, buf)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestServerBasicOpsAndOnlineGC drives the full op set through a real
// connection and checks that the online collector actually ran and
// reclaimed the garbage the workload made — the tentpole behavior: GC from
// live traffic, no trace annotations.
func TestServerBasicOpsAndOnlineGC(t *testing.T) {
	ts := startServer(t, Config{}, EngineConfig{})
	cli, err := Dial(ts.addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()

	if resp, err := cli.Do(ctx, Request{Op: OpPing}); err != nil || resp.Status != StatusOK {
		t.Fatalf("ping: %+v, %v", resp, err)
	}
	hub, err := cli.Create(ctx, 256, 4)
	if err != nil {
		t.Fatal(err)
	}

	// Churn: link a child into the hub, then replace it. Every replaced
	// child is unrooted and unreachable — garbage only a trace-free
	// collector can find.
	prev := uint64(0)
	for i := 0; i < 12; i++ {
		child, err := cli.Create(ctx, 128, 0)
		if err != nil {
			t.Fatal(err)
		}
		old, err := cli.Set(ctx, hub, 0, child)
		if err != nil {
			t.Fatal(err)
		}
		if old != prev {
			t.Fatalf("link %d returned old=%d, want %d", i, old, prev)
		}
		if prev != 0 {
			if resp, err := cli.Do(ctx, Request{Op: OpUnroot, OID: prev}); err != nil || resp.Status != StatusOK {
				t.Fatalf("unroot: %+v, %v", resp, err)
			}
		}
		prev = child
	}
	if resp, err := cli.Do(ctx, Request{Op: OpAccess, OID: hub}); err != nil || resp.Status != StatusOK {
		t.Fatalf("access: %+v, %v", resp, err)
	}
	if resp, err := cli.Do(ctx, Request{Op: OpUpdate, OID: hub}); err != nil || resp.Status != StatusOK {
		t.Fatalf("update: %+v, %v", resp, err)
	}

	st, err := cli.Stats(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if st.Collections == 0 {
		t.Error("no online collections despite 11 pointer overwrites at fixed(4)")
	}
	if st.ReclaimedBytes == 0 {
		t.Error("collections reclaimed nothing; unreachable children should be garbage")
	}
	if st.OverwriteClock != 11 {
		t.Errorf("overwrite clock %d, want 11 (12 links, first initializing)", st.OverwriteClock)
	}
	if st.Policy == "" || st.QueueDepth == 0 {
		t.Errorf("stats incomplete: %+v", st)
	}

	// Errors classify and count without killing the session.
	if resp, err := cli.Do(ctx, Request{Op: OpAccess, OID: 9999}); err != nil || resp.Status != StatusError {
		t.Fatalf("absent access: %+v, %v", resp, err)
	}
	if resp, err := cli.Do(ctx, Request{Op: "bogus"}); err != nil || resp.Status != StatusError {
		t.Fatalf("bogus op: %+v, %v", resp, err)
	}
	if resp, err := cli.Do(ctx, Request{Op: OpPing}); err != nil || resp.Status != StatusOK {
		t.Fatalf("session died after error responses: %+v, %v", resp, err)
	}
}

// TestServerShedsUnderFlood floods a deliberately slow engine far past its
// admission limit: shed responses must arrive immediately with retry
// hints, every admitted request must complete, and nothing may hang.
func TestServerShedsUnderFlood(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ts := startServer(t,
		Config{MaxSessions: 64, RequestTimeout: 5 * time.Second},
		EngineConfig{QueueDepth: 2, ServiceDelay: 5 * time.Millisecond})

	const clients = 16
	const perClient = 6
	var (
		mu               sync.Mutex
		ok, shed, errs   int
		retryHintMissing int
	)
	var wg sync.WaitGroup
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(ts.addr, time.Second)
			if err != nil {
				mu.Lock()
				errs++
				mu.Unlock()
				return
			}
			defer func() { _ = cli.Close() }()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			for j := 0; j < perClient; j++ {
				resp, err := cli.Do(ctx, Request{Op: OpPing})
				mu.Lock()
				switch {
				case err != nil:
					errs++
				case resp.Status == StatusOK:
					ok++
				case resp.Status == StatusShed:
					shed++
					if resp.RetryAfterMs < 1 {
						retryHintMissing++
					}
				default:
					errs++
				}
				mu.Unlock()
			}
		}()
	}
	wg.Wait()

	if total := ok + shed + errs; total != clients*perClient {
		t.Fatalf("accounted %d responses, want %d", total, clients*perClient)
	}
	if shed == 0 {
		t.Error("no requests shed despite 16 concurrent sessions on a queue of 2")
	}
	if ok == 0 {
		t.Error("no requests admitted; admission control is refusing everything")
	}
	if errs != 0 {
		t.Errorf("%d requests failed outright; overload must shed, not error", errs)
	}
	if retryHintMissing != 0 {
		t.Errorf("%d shed responses lacked a retry-after hint", retryHintMissing)
	}
	if got := ts.counter(MetricShed); int(got) != shed {
		t.Errorf("odbgc_server_shed_total = %v, client saw %d sheds", got, shed)
	}

	// Clean drain after the flood: no goroutines may outlive Serve.
	ts.beginDrain()
	ts.waitFinished(t)
	if ts.err != nil {
		t.Fatalf("clean drain returned %v", ts.err)
	}
	ts.cancel()
	assertGoroutinesReturn(t, baseline)
}

// TestServerDrainMidLoad interrupts a server with live in-flight traffic:
// stage-1 drain must let admitted requests finish, answer the rest with
// shed/closed, and return from Serve without a hard cancel.
func TestServerDrainMidLoad(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ts := startServer(t,
		Config{MaxSessions: 32, DrainGrace: 500 * time.Millisecond},
		EngineConfig{QueueDepth: 8, ServiceDelay: 2 * time.Millisecond})

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			cli, err := Dial(ts.addr, time.Second)
			if err != nil {
				return
			}
			defer func() { _ = cli.Close() }()
			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := cli.Do(ctx, Request{Op: OpPing})
				if err != nil || resp.Status == StatusClosed {
					return
				}
			}
		}()
	}

	time.Sleep(50 * time.Millisecond) // let traffic establish
	ts.beginDrain()
	ts.waitFinished(t)
	if ts.err != nil {
		t.Fatalf("drain returned %v, want nil (clean)", ts.err)
	}
	close(stop)
	wg.Wait()

	// The listener is gone: new connections are refused outright.
	if conn, err := net.DialTimeout("tcp", ts.addr, 200*time.Millisecond); err == nil {
		_ = conn.Close()
		t.Error("drained server still accepting connections")
	}
	ts.cancel()
	assertGoroutinesReturn(t, baseline)
}

// TestServerHardCancel is stage 2: cancellation mid-load closes every
// connection and Serve returns the context error.
func TestServerHardCancel(t *testing.T) {
	baseline := runtime.NumGoroutine()
	ts := startServer(t, Config{}, EngineConfig{ServiceDelay: time.Millisecond})

	cli, err := Dial(ts.addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if resp, err := cli.Do(ctx, Request{Op: OpPing}); err != nil || resp.Status != StatusOK {
		t.Fatalf("ping before cancel: %+v, %v", resp, err)
	}

	ts.cancel()
	ts.waitFinished(t)
	if ts.err == nil {
		t.Fatal("hard cancel returned nil; want a classified context error")
	}
	assertGoroutinesReturn(t, baseline)
}

// TestIdleSessionReaped pins the idle reaper: a silent connection is
// closed at the idle deadline and counted.
func TestIdleSessionReaped(t *testing.T) {
	ts := startServer(t, Config{IdleTimeout: 60 * time.Millisecond}, EngineConfig{})
	conn, err := net.DialTimeout("tcp", ts.addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	// Say nothing; the server must hang up on us.
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	buf := make([]byte, 16)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("idle connection received data instead of a close")
	}
	deadline := time.Now().Add(time.Second)
	for ts.counter(MetricIdleReaped) < 1 {
		if time.Now().After(deadline) {
			t.Fatalf("odbgc_server_idle_reaped_total = %v, want >= 1", ts.counter(MetricIdleReaped))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestMalformedFrameRejected pins hostile-bytes handling: an error frame
// comes back, the connection closes, and the violation is counted.
func TestMalformedFrameRejected(t *testing.T) {
	ts := startServer(t, Config{}, EngineConfig{})
	conn, err := net.DialTimeout("tcp", ts.addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()

	// A hostile length prefix: 4 GiB declared.
	if _, err := conn.Write([]byte{0xFF, 0xFF, 0xFF, 0xFF, 'j', 'u', 'n', 'k'}); err != nil {
		t.Fatal(err)
	}
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatalf("no error frame for malformed input: %v", err)
	}
	if resp.Status != StatusError {
		t.Fatalf("malformed frame answered %q, want error", resp.Status)
	}
	// The connection must be dead: framing is lost.
	buf := make([]byte, 1)
	if _, err := conn.Read(buf); err == nil {
		t.Fatal("connection survived a malformed frame")
	}
	if got := ts.counter(MetricMalformed); got < 1 {
		t.Errorf("odbgc_server_malformed_total = %v, want >= 1", got)
	}
}

// TestSessionLimitSheds pins accept-time admission: connections past
// MaxSessions get a shed frame with a retry hint, not a silent close and
// not a queue slot.
func TestSessionLimitSheds(t *testing.T) {
	ts := startServer(t, Config{MaxSessions: 1}, EngineConfig{})
	cli, err := Dial(ts.addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = cli.Close() }()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if resp, err := cli.Do(ctx, Request{Op: OpPing}); err != nil || resp.Status != StatusOK {
		t.Fatalf("first session: %+v, %v", resp, err)
	}

	conn, err := net.DialTimeout("tcp", ts.addr, time.Second)
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = conn.Close() }()
	_ = conn.SetReadDeadline(time.Now().Add(2 * time.Second))
	var resp Response
	if err := ReadFrame(conn, &resp); err != nil {
		t.Fatalf("second session got no shed frame: %v", err)
	}
	if resp.Status != StatusShed {
		t.Fatalf("second session answered %q, want shed", resp.Status)
	}
	if resp.RetryAfterMs < 1 {
		t.Errorf("shed frame lacks a retry-after hint: %+v", resp)
	}
	if got := ts.counter(MetricShed); got < 1 {
		t.Errorf("odbgc_server_shed_total = %v, want >= 1", got)
	}
}

// TestDrainAnswersClosed pins the draining handshake: a connection
// arriving after stage 1 begins is told "closed", not left hanging.
func TestDrainAnswersClosed(t *testing.T) {
	ts := startServer(t, Config{}, EngineConfig{})
	ts.beginDrain()
	ts.waitFinished(t)
	if ts.err != nil {
		t.Fatalf("empty drain returned %v", ts.err)
	}
	// After Serve returns, Submit still answers closed rather than
	// panicking or blocking — sessions racing the shutdown get a sane
	// response.
	resp := ts.eng.Submit(context.Background(), Request{Op: OpPing}, nil)
	if resp.Status != StatusClosed {
		t.Fatalf("post-drain submit answered %q, want closed", resp.Status)
	}
}
