package server

import (
	"context"
	"fmt"
	"net"
	"time"
)

// Client is a minimal synchronous client for the frame protocol: one
// request in flight at a time, ID assignment, deadline plumbing. The load
// generator and the tests both drive the server through it, so protocol
// drift breaks loudly in both places. Not safe for concurrent use; open
// one Client per session.
type Client struct {
	conn   net.Conn
	nextID uint64
}

// Dial opens a session to addr, failing after timeout.
func Dial(addr string, timeout time.Duration) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, timeout)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close ends the session.
func (c *Client) Close() error { return c.conn.Close() }

// Conn exposes the raw connection for chaos injection (slow writes,
// malformed frames, mid-request hangups).
func (c *Client) Conn() net.Conn { return c.conn }

// Do sends one request and waits for its response. The ctx deadline, when
// present, bounds both the write and the read.
func (c *Client) Do(ctx context.Context, req Request) (Response, error) {
	c.nextID++
	req.ID = c.nextID
	dl, ok := ctx.Deadline()
	if !ok {
		dl = time.Time{}
	}
	if err := c.conn.SetDeadline(dl); err != nil {
		return Response{}, err
	}
	if err := WriteFrame(c.conn, req); err != nil {
		return Response{}, err
	}
	var resp Response
	if err := ReadFrame(c.conn, &resp); err != nil {
		return Response{}, err
	}
	if resp.ID != req.ID {
		return Response{}, fmt.Errorf("server: response id %d for request %d", resp.ID, req.ID)
	}
	return resp, nil
}

// Create allocates an object and returns its OID.
func (c *Client) Create(ctx context.Context, size, slots int) (uint64, error) {
	resp, err := c.Do(ctx, Request{Op: OpCreate, Size: size, Slots: slots})
	if err != nil {
		return 0, err
	}
	if resp.Status != StatusOK {
		return 0, fmt.Errorf("server: create: %s (%s)", resp.Status, resp.Error)
	}
	return resp.OID, nil
}

// Set points oid's slot at dst (0 for nil), returning the old value.
func (c *Client) Set(ctx context.Context, oid uint64, slot int, dst uint64) (uint64, error) {
	resp, err := c.Do(ctx, Request{Op: OpSet, OID: oid, Slot: slot, Dst: dst})
	if err != nil {
		return 0, err
	}
	if resp.Status != StatusOK {
		return 0, fmt.Errorf("server: set: %s (%s)", resp.Status, resp.Error)
	}
	return resp.Old, nil
}

// Stats fetches the server's statistics snapshot.
func (c *Client) Stats(ctx context.Context) (*Stats, error) {
	resp, err := c.Do(ctx, Request{Op: OpStats})
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK || resp.Stats == nil {
		return nil, fmt.Errorf("server: stats: %s (%s)", resp.Status, resp.Error)
	}
	return resp.Stats, nil
}
