package server

import (
	"fmt"
	"math"

	"odbgc/internal/core"
	"odbgc/internal/gc"
)

// BreakerState is the estimator circuit breaker's position.
type BreakerState int

// Breaker states. The numeric values are published on the
// odbgc_server_breaker_state gauge.
const (
	BreakerClosed   BreakerState = 0 // primary estimator serving
	BreakerHalfOpen BreakerState = 1 // probing the primary after a cooldown
	BreakerOpen     BreakerState = 2 // fallback estimator serving
)

// String names the state for logs and the stats op.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerHalfOpen:
		return "half-open"
	case BreakerOpen:
		return "open"
	}
	// Static fallback: String sits on the per-request stats path, and the
	// numeric formatting would be its only allocation.
	return "state(invalid)"
}

// BreakerConfig parameterizes the estimator circuit breaker.
type BreakerConfig struct {
	// TripAfter is how many consecutive bad signals (unusable estimates or
	// reported policy failures) open the breaker. Defaults to 5.
	TripAfter int
	// Cooldown is how many estimate requests the breaker stays open before
	// probing the primary again. Time is counted in observations, not
	// wall-clock, so breaker behavior is deterministic under replay.
	// Defaults to 8.
	Cooldown int
	// HalfOpenProbes is how many consecutive good primary signals close
	// the breaker again. Defaults to 3.
	HalfOpenProbes int
}

func (c *BreakerConfig) applyDefaults() {
	if c.TripAfter <= 0 {
		c.TripAfter = 5
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 8
	}
	if c.HalfOpenProbes <= 0 {
		c.HalfOpenProbes = 3
	}
}

// Breaker is a core.Estimator that wraps a primary estimator with a
// circuit breaker degrading to a fallback — the serving-path version of
// core.FallbackEstimator's signal-dropout handling, with explicit state
// (closed → open → half-open) and externally reportable failures.
//
// A "bad signal" is a primary estimate that is NaN, infinite, or negative
// (the same usability test the SAGA controller applies), or a failure the
// engine reports via RecordFailure (a policy or collection error). After
// TripAfter consecutive bad signals the breaker opens and the fallback
// serves; after Cooldown estimates it half-opens and probes the primary;
// HalfOpenProbes consecutive good probes close it, one bad probe re-opens
// it. All counting is in observations, never wall-clock, so the breaker is
// deterministic for a given request sequence.
//
// Both estimators observe every collection regardless of state, so the
// fallback is always warm when the breaker trips.
type Breaker struct {
	cfg      BreakerConfig
	primary  core.Estimator
	fallback core.Estimator

	state        BreakerState
	consecBad    int
	cooldownLeft int
	probesGood   int

	trips      uint64
	recoveries uint64
	badSignals uint64
}

// NewBreaker wraps primary with a breaker that degrades to fallback.
func NewBreaker(cfg BreakerConfig, primary, fallback core.Estimator) (*Breaker, error) {
	if primary == nil || fallback == nil {
		return nil, fmt.Errorf("server: breaker requires both a primary and a fallback estimator")
	}
	cfg.applyDefaults()
	return &Breaker{cfg: cfg, primary: primary, fallback: fallback}, nil
}

// Name implements core.Estimator.
func (b *Breaker) Name() string {
	return fmt.Sprintf("breaker(%s->%s)", b.primary.Name(), b.fallback.Name())
}

// State returns the breaker's position.
func (b *Breaker) State() BreakerState { return b.state }

// Trips returns how many times the breaker has opened.
func (b *Breaker) Trips() uint64 { return b.trips }

// Recoveries returns how many times the breaker has closed again after a
// trip.
func (b *Breaker) Recoveries() uint64 { return b.recoveries }

// BadSignals returns the cumulative bad-signal count, estimator-produced
// and reported alike.
func (b *Breaker) BadSignals() uint64 { return b.badSignals }

// RecordFailure reports an external failure (a collection or policy error
// attributable to the estimator's guidance). It counts as one bad signal:
// enough of them trips the breaker even if the primary's raw numbers look
// plausible.
func (b *Breaker) RecordFailure() {
	b.badSignals++
	switch b.state {
	case BreakerClosed:
		b.consecBad++
		if b.consecBad >= b.cfg.TripAfter {
			b.open()
		}
	case BreakerHalfOpen:
		// A failure during probing re-opens immediately.
		b.open()
	case BreakerOpen:
		// Already open; nothing to do.
	}
}

func (b *Breaker) open() {
	b.state = BreakerOpen
	b.cooldownLeft = b.cfg.Cooldown
	b.consecBad = 0
	b.probesGood = 0
	b.trips++
}

// ObserveCollection implements core.Estimator: both estimators see every
// collection so the fallback is warm whenever the breaker needs it.
func (b *Breaker) ObserveCollection(h core.HeapState, res gc.CollectionResult) {
	b.primary.ObserveCollection(h, res)
	b.fallback.ObserveCollection(h, res)
}

// usable mirrors the SAGA controller's estimate sanitation.
func usable(v float64) bool {
	return !math.IsNaN(v) && !math.IsInf(v, 0) && v >= 0
}

// EstimateGarbage implements core.Estimator, advancing the breaker state
// machine on each consultation.
func (b *Breaker) EstimateGarbage(h core.HeapState) float64 {
	pv := b.primary.EstimateGarbage(h)
	good := usable(pv)
	if !good {
		b.badSignals++
	}
	switch b.state {
	case BreakerClosed:
		if good {
			b.consecBad = 0
			return pv
		}
		b.consecBad++
		if b.consecBad >= b.cfg.TripAfter {
			b.open()
		}
		return b.fallback.EstimateGarbage(h)
	case BreakerOpen:
		b.cooldownLeft--
		if b.cooldownLeft <= 0 {
			b.state = BreakerHalfOpen
			b.probesGood = 0
		}
		return b.fallback.EstimateGarbage(h)
	default: // BreakerHalfOpen
		if !good {
			b.open()
			return b.fallback.EstimateGarbage(h)
		}
		b.probesGood++
		if b.probesGood >= b.cfg.HalfOpenProbes {
			b.state = BreakerClosed
			b.consecBad = 0
			b.recoveries++
		}
		return pv
	}
}
