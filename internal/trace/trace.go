// Package trace defines the database application event stream that drives
// the simulator, together with codecs for storing streams on disk.
//
// A trace is a sequence of events describing what an application did to an
// object database: object creations, read accesses, non-pointer updates, and
// pointer overwrites. Pointer-overwrite events may carry oracle annotations:
// the exact set of objects that became unreachable because of the overwrite.
// The simulator uses the annotations as ground truth for "actual garbage"
// (the paper's perfect estimator); the simulated collector never looks at
// them and must discover garbage by tracing partitions.
package trace

import (
	"fmt"

	"odbgc/internal/objstore"
)

// Kind discriminates event types.
type Kind uint8

// Event kinds.
const (
	// KindCreate allocates a new object. OID, Class, Size and Slots are set.
	KindCreate Kind = iota + 1
	// KindAccess is a read of an object (navigational access).
	KindAccess
	// KindUpdate is a write to an object's non-pointer data.
	KindUpdate
	// KindOverwrite modifies pointer slot Slot of object OID from Old to New.
	// Dead lists objects that became unreachable as a result (oracle info).
	KindOverwrite
	// KindPhase marks an application phase boundary; Label names the phase.
	KindPhase
	// KindRoot adds (Size==1) or removes (Size==0) OID from the root set.
	KindRoot
	// KindIdle marks one tick of application quiescence: no application
	// work is happening. Opportunistic policies may use idle ticks to
	// collect beyond their user-stated limits (§5 of the paper sketches
	// this extension). Size carries the tick count (>= 1).
	KindIdle
)

var kindNames = map[Kind]string{
	KindCreate:    "create",
	KindAccess:    "access",
	KindUpdate:    "update",
	KindOverwrite: "overwrite",
	KindPhase:     "phase",
	KindRoot:      "root",
	KindIdle:      "idle",
}

// String returns the lowercase event-kind name.
func (k Kind) String() string {
	if n, ok := kindNames[k]; ok {
		return n
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one trace record. Field use depends on Kind; unused fields are
// zero. Events are values and are safe to copy; the Dead slice is owned by
// the event and must not be mutated by consumers.
type Event struct {
	Kind  Kind
	OID   objstore.OID   // subject object (Create/Access/Update/Overwrite/Root)
	Class objstore.Class // Create only
	Size  int            // Create: byte size; Root: 1=add, 0=remove
	Slots int            // Create: number of pointer slots
	Slot  int            // Overwrite: slot index in OID
	Old   objstore.OID   // Overwrite: previous slot value (for validation)
	New   objstore.OID   // Overwrite: new slot value (may be nil)
	Label string         // Phase only

	// Init marks an overwrite as an initializing store: wiring performed
	// while constructing brand-new structure (e.g. connecting a freshly
	// created object's slots). Initializing stores maintain the object
	// graph and dirty pages but are invisible to the rate policies — they
	// cannot create garbage (Old is always nil) and do not advance the
	// pointer-overwrite clock.
	Init bool

	// Dead is the oracle annotation on an overwrite: the OIDs that became
	// unreachable from the roots as a direct result of this overwrite,
	// together with their sizes. Nil when no garbage was created.
	Dead []DeadObject
}

// DeadObject records one object that an overwrite made unreachable.
type DeadObject struct {
	OID  objstore.OID
	Size int
}

// DeadBytes sums the sizes in the oracle annotation.
func (e *Event) DeadBytes() int {
	n := 0
	for _, d := range e.Dead {
		n += d.Size
	}
	return n
}

// String renders the event for logs and the tracedump tool.
func (e *Event) String() string {
	switch e.Kind {
	case KindCreate:
		return fmt.Sprintf("create %v class=%v size=%d slots=%d", e.OID, e.Class, e.Size, e.Slots)
	case KindAccess:
		return fmt.Sprintf("access %v", e.OID)
	case KindUpdate:
		return fmt.Sprintf("update %v", e.OID)
	case KindOverwrite:
		tag := ""
		if e.Init {
			tag = " init"
		}
		return fmt.Sprintf("overwrite%s %v[%d] %v -> %v dead=%d(%dB)",
			tag, e.OID, e.Slot, e.Old, e.New, len(e.Dead), e.DeadBytes())
	case KindPhase:
		return fmt.Sprintf("phase %q", e.Label)
	case KindRoot:
		if e.Size == 1 {
			return fmt.Sprintf("root + %v", e.OID)
		}
		return fmt.Sprintf("root - %v", e.OID)
	case KindIdle:
		return fmt.Sprintf("idle %d", e.Size)
	default:
		return fmt.Sprintf("event kind=%d", e.Kind)
	}
}

// Validate checks internal consistency of a single event.
func (e *Event) Validate() error {
	switch e.Kind {
	case KindCreate:
		if e.OID.IsNil() {
			return fmt.Errorf("trace: create with nil OID")
		}
		if e.Size < 0 || e.Slots < 0 {
			return fmt.Errorf("trace: create %v with negative size/slots", e.OID)
		}
	case KindAccess, KindUpdate:
		if e.OID.IsNil() {
			return fmt.Errorf("trace: %v of nil OID", e.Kind)
		}
	case KindOverwrite:
		if e.OID.IsNil() {
			return fmt.Errorf("trace: overwrite on nil OID")
		}
		if e.Slot < 0 {
			return fmt.Errorf("trace: overwrite with negative slot")
		}
		if e.Init && !e.Old.IsNil() {
			return fmt.Errorf("trace: initializing overwrite on %v has non-nil old value", e.OID)
		}
		if e.Init && len(e.Dead) > 0 {
			return fmt.Errorf("trace: initializing overwrite on %v claims to create garbage", e.OID)
		}
		for _, d := range e.Dead {
			if d.OID.IsNil() || d.Size < 0 {
				return fmt.Errorf("trace: overwrite %v has invalid dead entry %+v", e.OID, d)
			}
		}
	case KindPhase:
		if e.Label == "" {
			return fmt.Errorf("trace: phase with empty label")
		}
	case KindRoot:
		if e.OID.IsNil() {
			return fmt.Errorf("trace: root event with nil OID")
		}
		if e.Size != 0 && e.Size != 1 {
			return fmt.Errorf("trace: root event with size %d (want 0 or 1)", e.Size)
		}
	case KindIdle:
		if e.Size < 1 {
			return fmt.Errorf("trace: idle event with tick count %d (want >= 1)", e.Size)
		}
	default:
		return fmt.Errorf("trace: unknown event kind %d", e.Kind)
	}
	return nil
}

// Trace is an in-memory event sequence.
type Trace struct {
	Events []Event
}

// Append adds an event.
func (t *Trace) Append(e Event) { t.Events = append(t.Events, e) }

// Len returns the number of events.
func (t *Trace) Len() int { return len(t.Events) }

// Stats summarizes a trace.
type Stats struct {
	Events     int
	Creates    int
	Accesses   int
	Updates    int
	Overwrites int // non-initializing overwrites (the policies' clock)
	InitStores int // initializing overwrites
	IdleTicks  int // quiescence ticks
	Phases     []string
	// GarbageBytes is the total oracle garbage created over the trace.
	GarbageBytes int
	// GarbageObjects is the total count of objects the oracle saw die.
	GarbageObjects int
	// CreatedBytes is the total bytes allocated by create events.
	CreatedBytes int
	// BytesPerOverwrite is GarbageBytes / Overwrites (0 if no overwrites).
	BytesPerOverwrite float64
}

// ComputeStats scans the trace once and summarizes it.
func ComputeStats(t *Trace) Stats {
	var s Stats
	s.Events = len(t.Events)
	for i := range t.Events {
		e := &t.Events[i]
		switch e.Kind {
		case KindCreate:
			s.Creates++
			s.CreatedBytes += e.Size
		case KindAccess:
			s.Accesses++
		case KindUpdate:
			s.Updates++
		case KindOverwrite:
			if e.Init {
				s.InitStores++
			} else {
				s.Overwrites++
			}
			s.GarbageBytes += e.DeadBytes()
			s.GarbageObjects += len(e.Dead)
		case KindPhase:
			s.Phases = append(s.Phases, e.Label)
		case KindIdle:
			s.IdleTicks += e.Size
		}
	}
	if s.Overwrites > 0 {
		s.BytesPerOverwrite = float64(s.GarbageBytes) / float64(s.Overwrites)
	}
	return s
}

// Validate replays the trace against a scratch object store, checking that
// every event refers to objects that exist, that overwrite Old values match,
// and that oracle annotations are consistent with true reachability at the
// end of the trace. It returns the first error found.
func Validate(t *Trace) error {
	st := objstore.NewStore()
	oracleDead := make(map[objstore.OID]struct{})
	for i := range t.Events {
		e := &t.Events[i]
		if err := e.Validate(); err != nil {
			return fmt.Errorf("event %d: %w", i, err)
		}
		switch e.Kind {
		case KindCreate:
			if _, err := st.CreateWithOID(e.OID, e.Class, e.Size, e.Slots); err != nil {
				return fmt.Errorf("event %d: %w", i, err)
			}
		case KindAccess, KindUpdate:
			if st.Get(e.OID) == nil {
				return fmt.Errorf("event %d: %v of absent object %v", i, e.Kind, e.OID)
			}
		case KindOverwrite:
			old, err := st.SetSlot(e.OID, e.Slot, e.New)
			if err != nil {
				return fmt.Errorf("event %d: %w", i, err)
			}
			if old != e.Old {
				return fmt.Errorf("event %d: overwrite %v[%d] recorded old %v, store has %v",
					i, e.OID, e.Slot, e.Old, old)
			}
			for _, d := range e.Dead {
				if _, dup := oracleDead[d.OID]; dup {
					return fmt.Errorf("event %d: object %v reported dead twice", i, d.OID)
				}
				o := st.Get(d.OID)
				if o == nil {
					return fmt.Errorf("event %d: dead annotation for absent object %v", i, d.OID)
				}
				if o.Size != d.Size {
					return fmt.Errorf("event %d: dead annotation size %d for %v, store has %d",
						i, d.Size, d.OID, o.Size)
				}
				oracleDead[d.OID] = struct{}{}
			}
		case KindRoot:
			if e.Size == 1 {
				if err := st.AddRoot(e.OID); err != nil {
					return fmt.Errorf("event %d: %w", i, err)
				}
			} else {
				st.RemoveRoot(e.OID)
			}
		case KindIdle:
			// Quiescence changes no state.
		}
	}
	// Final cross-check: oracle-dead set must exactly equal the set of
	// unreachable objects in the replayed store.
	live := st.Reachable()
	var mismatch []objstore.OID
	st.ForEach(func(o *objstore.Object) {
		_, isLive := live[o.OID]
		_, isDead := oracleDead[o.OID]
		if isLive == isDead { // live objects must not be annotated; dead must be
			mismatch = append(mismatch, o.OID)
		}
	})
	if len(mismatch) > 0 {
		return fmt.Errorf("trace: oracle/reachability mismatch on %d objects (first: %v)",
			len(mismatch), mismatch[0])
	}
	return nil
}
