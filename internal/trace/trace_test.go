package trace

import (
	"strings"
	"testing"

	"odbgc/internal/objstore"
)

func TestEventValidate(t *testing.T) {
	cases := []struct {
		name    string
		ev      Event
		wantErr string
	}{
		{"valid create", Event{Kind: KindCreate, OID: 1, Size: 10, Slots: 2}, ""},
		{"create nil oid", Event{Kind: KindCreate, Size: 10}, "nil OID"},
		{"create negative size", Event{Kind: KindCreate, OID: 1, Size: -1}, "negative"},
		{"valid access", Event{Kind: KindAccess, OID: 3}, ""},
		{"access nil", Event{Kind: KindAccess}, "nil OID"},
		{"update nil", Event{Kind: KindUpdate}, "nil OID"},
		{"valid overwrite", Event{Kind: KindOverwrite, OID: 1, Slot: 0, New: 2}, ""},
		{"overwrite nil src", Event{Kind: KindOverwrite, Slot: 0}, "nil OID"},
		{"overwrite negative slot", Event{Kind: KindOverwrite, OID: 1, Slot: -1}, "negative slot"},
		{"init with old", Event{Kind: KindOverwrite, OID: 1, Old: 5, Init: true}, "non-nil old"},
		{"init with dead", Event{Kind: KindOverwrite, OID: 1, Init: true,
			Dead: []DeadObject{{OID: 2, Size: 1}}}, "garbage"},
		{"dead nil oid", Event{Kind: KindOverwrite, OID: 1,
			Dead: []DeadObject{{Size: 1}}}, "invalid dead"},
		{"valid phase", Event{Kind: KindPhase, Label: "GenDB"}, ""},
		{"phase empty", Event{Kind: KindPhase}, "empty label"},
		{"valid root", Event{Kind: KindRoot, OID: 1, Size: 1}, ""},
		{"root bad size", Event{Kind: KindRoot, OID: 1, Size: 2}, "want 0 or 1"},
		{"root nil", Event{Kind: KindRoot, Size: 1}, "nil OID"},
		{"unknown kind", Event{Kind: 99}, "unknown event kind"},
	}
	for _, tc := range cases {
		err := tc.ev.Validate()
		if tc.wantErr == "" {
			if err != nil {
				t.Errorf("%s: unexpected error %v", tc.name, err)
			}
			continue
		}
		if err == nil || !strings.Contains(err.Error(), tc.wantErr) {
			t.Errorf("%s: error = %v, want contains %q", tc.name, err, tc.wantErr)
		}
	}
}

func TestEventString(t *testing.T) {
	cases := []struct {
		ev   Event
		want string
	}{
		{Event{Kind: KindCreate, OID: 1, Class: objstore.ClassDocument, Size: 10, Slots: 0},
			"create oid:1 class=document size=10 slots=0"},
		{Event{Kind: KindAccess, OID: 2}, "access oid:2"},
		{Event{Kind: KindOverwrite, OID: 3, Slot: 1, Old: 4, New: 0, Init: true},
			"overwrite init oid:3[1] oid:4 -> nil dead=0(0B)"},
		{Event{Kind: KindPhase, Label: "Traverse"}, `phase "Traverse"`},
		{Event{Kind: KindRoot, OID: 5, Size: 1}, "root + oid:5"},
		{Event{Kind: KindRoot, OID: 5, Size: 0}, "root - oid:5"},
	}
	for _, tc := range cases {
		if got := tc.ev.String(); got != tc.want {
			t.Errorf("String() = %q, want %q", got, tc.want)
		}
	}
}

// validChain builds a small valid trace: root a -> b, then cut b loose.
func validChain() *Trace {
	tr := &Trace{}
	tr.Append(Event{Kind: KindCreate, OID: 1, Class: objstore.ClassModule, Size: 10, Slots: 1})
	tr.Append(Event{Kind: KindRoot, OID: 1, Size: 1})
	tr.Append(Event{Kind: KindCreate, OID: 2, Class: objstore.ClassDocument, Size: 20})
	tr.Append(Event{Kind: KindOverwrite, OID: 1, Slot: 0, New: 2})
	tr.Append(Event{Kind: KindAccess, OID: 2})
	tr.Append(Event{Kind: KindOverwrite, OID: 1, Slot: 0, Old: 2, New: 0,
		Dead: []DeadObject{{OID: 2, Size: 20}}})
	return tr
}

func TestValidateAcceptsGoodTrace(t *testing.T) {
	if err := Validate(validChain()); err != nil {
		t.Fatalf("valid trace rejected: %v", err)
	}
}

func TestValidateRejections(t *testing.T) {
	mutations := []struct {
		name   string
		mutate func(*Trace)
		want   string
	}{
		{"wrong old value", func(tr *Trace) { tr.Events[5].Old = 9 }, "recorded old"},
		{"dead size mismatch", func(tr *Trace) { tr.Events[5].Dead[0].Size = 7 }, "size"},
		{"dead but reachable", func(tr *Trace) { tr.Events[5].New = 2 }, "mismatch"},
		{"missing dead annotation", func(tr *Trace) { tr.Events[5].Dead = nil }, "mismatch"},
		{"access absent", func(tr *Trace) { tr.Events[4].OID = 42 }, "absent"},
		{"duplicate create", func(tr *Trace) { tr.Events[2].OID = 1 }, "duplicate"},
	}
	for _, m := range mutations {
		tr := validChain()
		m.mutate(tr)
		err := Validate(tr)
		if err == nil || !strings.Contains(err.Error(), m.want) {
			t.Errorf("%s: error = %v, want contains %q", m.name, err, m.want)
		}
	}
}

func TestValidateDoubleDead(t *testing.T) {
	tr := validChain()
	// Re-create and re-kill object 2's OID space with a second object that
	// reports an already-dead OID.
	tr.Append(Event{Kind: KindCreate, OID: 3, Class: objstore.ClassDocument, Size: 5})
	tr.Append(Event{Kind: KindOverwrite, OID: 1, Slot: 0, New: 3})
	tr.Append(Event{Kind: KindOverwrite, OID: 1, Slot: 0, Old: 3, New: 0,
		Dead: []DeadObject{{OID: 3, Size: 5}, {OID: 2, Size: 20}}})
	err := Validate(tr)
	if err == nil || !strings.Contains(err.Error(), "dead twice") {
		t.Errorf("double-dead error = %v", err)
	}
}

func TestComputeStats(t *testing.T) {
	tr := validChain()
	tr.Append(Event{Kind: KindPhase, Label: "P1"})
	tr.Append(Event{Kind: KindOverwrite, OID: 1, Slot: 0, New: 0, Init: true})
	tr.Append(Event{Kind: KindUpdate, OID: 1})
	s := ComputeStats(tr)
	if s.Creates != 2 || s.Accesses != 1 || s.Updates != 1 {
		t.Errorf("stats = %+v", s)
	}
	if s.Overwrites != 2 || s.InitStores != 1 {
		t.Errorf("overwrites = %d, init = %d; want 2, 1", s.Overwrites, s.InitStores)
	}
	if s.GarbageBytes != 20 || s.GarbageObjects != 1 {
		t.Errorf("garbage stats = %+v", s)
	}
	if s.BytesPerOverwrite != 10 {
		t.Errorf("BytesPerOverwrite = %v, want 10", s.BytesPerOverwrite)
	}
	if len(s.Phases) != 1 || s.Phases[0] != "P1" {
		t.Errorf("phases = %v", s.Phases)
	}
	if s.CreatedBytes != 30 {
		t.Errorf("CreatedBytes = %d, want 30", s.CreatedBytes)
	}
}

func TestDeadBytes(t *testing.T) {
	e := Event{Dead: []DeadObject{{OID: 1, Size: 3}, {OID: 2, Size: 4}}}
	if e.DeadBytes() != 7 {
		t.Errorf("DeadBytes = %d, want 7", e.DeadBytes())
	}
	var empty Event
	if empty.DeadBytes() != 0 {
		t.Error("empty DeadBytes not 0")
	}
}
