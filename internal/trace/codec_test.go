package trace

import (
	"bytes"
	"io"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"odbgc/internal/objstore"
)

// randomEvent builds an arbitrary structurally-valid event.
func randomEvent(rng *rand.Rand) Event {
	kinds := []Kind{KindCreate, KindAccess, KindUpdate, KindOverwrite, KindPhase, KindRoot}
	e := Event{Kind: kinds[rng.Intn(len(kinds))]}
	oid := func() objstore.OID { return objstore.OID(1 + rng.Intn(1000)) }
	switch e.Kind {
	case KindCreate:
		e.OID = oid()
		e.Class = objstore.Class(rng.Intn(8))
		e.Size = rng.Intn(10000)
		e.Slots = rng.Intn(30)
	case KindAccess, KindUpdate:
		e.OID = oid()
	case KindOverwrite:
		e.OID = oid()
		e.Slot = rng.Intn(30)
		e.Init = rng.Intn(4) == 0
		if e.Init {
			e.New = oid()
		} else {
			if rng.Intn(2) == 0 {
				e.Old = oid()
			}
			if rng.Intn(2) == 0 {
				e.New = oid()
			}
			for i := 0; i < rng.Intn(4); i++ {
				e.Dead = append(e.Dead, DeadObject{OID: oid(), Size: rng.Intn(5000)})
			}
		}
	case KindPhase:
		labels := []string{"GenDB", "Reorg1", "Traverse", "Reorg2", "Custom/π"}
		e.Label = labels[rng.Intn(len(labels))]
	case KindRoot:
		e.OID = oid()
		e.Size = rng.Intn(2)
	}
	return e
}

func eventsEqual(a, b *Event) bool {
	if a.Kind != b.Kind || a.OID != b.OID || a.Class != b.Class ||
		a.Size != b.Size || a.Slots != b.Slots || a.Slot != b.Slot ||
		a.Old != b.Old || a.New != b.New || a.Label != b.Label || a.Init != b.Init {
		return false
	}
	if len(a.Dead) != len(b.Dead) {
		return false
	}
	for i := range a.Dead {
		if a.Dead[i] != b.Dead[i] {
			return false
		}
	}
	return true
}

// normalize clears fields the codec legitimately does not preserve per kind
// (e.g. Size on an access event can never round-trip because it is not
// written). randomEvent never sets those, so this is identity; it exists to
// make the property's contract explicit.
func normalize(e Event) Event { return e }

func TestBinaryRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := &Trace{}
		for i := 0; i < int(n%64)+1; i++ {
			in.Append(normalize(randomEvent(rng)))
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, in); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		out, err := ReadAll(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		if out.Len() != in.Len() {
			return false
		}
		for i := range in.Events {
			if !eventsEqual(&in.Events[i], &out.Events[i]) {
				t.Logf("event %d: %v != %v", i, in.Events[i], out.Events[i])
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestJSONRoundTripProperty(t *testing.T) {
	f := func(seed int64, n uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		in := &Trace{}
		for i := 0; i < int(n%32)+1; i++ {
			in.Append(randomEvent(rng))
		}
		var buf bytes.Buffer
		if err := WriteJSON(&buf, in); err != nil {
			return false
		}
		out, err := ReadJSON(&buf)
		if err != nil {
			return false
		}
		if out.Len() != in.Len() {
			return false
		}
		for i := range in.Events {
			if !eventsEqual(&in.Events[i], &out.Events[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReaderRejectsBadMagic(t *testing.T) {
	_, err := NewReader(strings.NewReader("NOPE\x01\x00"))
	if err == nil || !strings.Contains(err.Error(), "magic") {
		t.Errorf("bad magic error = %v", err)
	}
}

func TestReaderRejectsBadVersion(t *testing.T) {
	_, err := NewReader(strings.NewReader("ODBT\xff\x00"))
	if err == nil || !strings.Contains(err.Error(), "version") {
		t.Errorf("bad version error = %v", err)
	}
}

func TestReaderRejectsTruncation(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, validChain()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Chop off the trailer and some payload: reads must fail, not EOF
	// cleanly.
	for _, cut := range []int{1, 3, len(full) / 2} {
		r, err := NewReader(bytes.NewReader(full[:len(full)-cut]))
		if err != nil {
			continue // header itself truncated is fine too
		}
		for {
			_, err = r.Read()
			if err != nil {
				break
			}
		}
		if err == io.EOF {
			t.Errorf("cut %d: truncated stream read cleanly to EOF", cut)
		}
	}
}

func TestReaderEOFAfterTrailer(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, &Trace{}); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("empty trace first read = %v, want EOF", err)
	}
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("repeated read after EOF = %v, want EOF", err)
	}
}

func TestWriterRejectsAfterClose(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	ev := Event{Kind: KindAccess, OID: 1}
	if err := w.Write(&ev); err == nil {
		t.Error("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

func TestWriterCount(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		ev := Event{Kind: KindAccess, OID: objstore.OID(i + 1)}
		if err := w.Write(&ev); err != nil {
			t.Fatal(err)
		}
	}
	if w.Count() != 5 {
		t.Errorf("Count = %d, want 5", w.Count())
	}
}

func TestReadJSONRejectsUnknownKind(t *testing.T) {
	_, err := ReadJSON(strings.NewReader(`{"kind":"explode","oid":1}` + "\n"))
	if err == nil || !strings.Contains(err.Error(), "unknown kind") {
		t.Errorf("unknown kind error = %v", err)
	}
}
