package trace

import (
	"bufio"
	"encoding/binary"
	"encoding/json"
	"errors"
	"fmt"
	"io"

	"odbgc/internal/objstore"
	"odbgc/internal/simerr"
)

// Binary trace format
//
//	magic   "ODBT" (4 bytes)
//	version uint16 (little endian)
//	events  repeated, each:
//	    kind   uint8
//	    fields varint-encoded per kind (see encodeEvent)
//	trailer kind byte 0xFF
//
// The binary codec is the production format: compact and fast. A JSON-lines
// codec is also provided for debugging and interchange.

var magic = [4]byte{'O', 'D', 'B', 'T'}

const (
	formatVersion uint16 = 1
	trailerByte   byte   = 0xFF
)

// ErrTruncated reports that a binary stream ended before its 0xFF trailer:
// either cleanly between events or mid-event. Callers distinguish it from
// other decode errors with errors.Is; a lenient Reader converts it into a
// normal end of stream after yielding every complete event. It carries
// simerr.ErrCorruptTrace so batch supervisors and the obs layer classify it
// without importing this package's sentinel.
var ErrTruncated = fmt.Errorf("%w: truncated stream (missing trailer)", simerr.ErrCorruptTrace)

// Writer streams events to an io.Writer in the binary format. Close must be
// called to emit the trailer and flush buffered data.
type Writer struct {
	bw     *bufio.Writer
	tmp    [binary.MaxVarintLen64]byte
	count  int
	closed bool
	err    error
}

// NewWriter writes the header and returns a Writer.
func NewWriter(w io.Writer) (*Writer, error) {
	bw := bufio.NewWriterSize(w, 1<<16)
	if _, err := bw.Write(magic[:]); err != nil {
		return nil, fmt.Errorf("trace: writing magic: %w", err)
	}
	var v [2]byte
	binary.LittleEndian.PutUint16(v[:], formatVersion)
	if _, err := bw.Write(v[:]); err != nil {
		return nil, fmt.Errorf("trace: writing version: %w", err)
	}
	return &Writer{bw: bw}, nil
}

func (w *Writer) uvarint(x uint64) {
	if w.err != nil {
		return
	}
	n := binary.PutUvarint(w.tmp[:], x)
	_, w.err = w.bw.Write(w.tmp[:n])
}

func (w *Writer) byteVal(b byte) {
	if w.err != nil {
		return
	}
	w.err = w.bw.WriteByte(b)
}

func (w *Writer) stringVal(s string) {
	w.uvarint(uint64(len(s)))
	if w.err != nil {
		return
	}
	_, w.err = w.bw.WriteString(s)
}

// Write appends one event.
func (w *Writer) Write(e *Event) error {
	if w.closed {
		return errors.New("trace: write after Close")
	}
	if w.err != nil {
		return w.err
	}
	w.byteVal(byte(e.Kind))
	switch e.Kind {
	case KindCreate:
		w.uvarint(uint64(e.OID))
		w.byteVal(byte(e.Class))
		w.uvarint(uint64(e.Size))
		w.uvarint(uint64(e.Slots))
	case KindAccess, KindUpdate:
		w.uvarint(uint64(e.OID))
	case KindOverwrite:
		w.uvarint(uint64(e.OID))
		w.uvarint(uint64(e.Slot))
		w.uvarint(uint64(e.Old))
		w.uvarint(uint64(e.New))
		var flags byte
		if e.Init {
			flags |= 1
		}
		w.byteVal(flags)
		w.uvarint(uint64(len(e.Dead)))
		for _, d := range e.Dead {
			w.uvarint(uint64(d.OID))
			w.uvarint(uint64(d.Size))
		}
	case KindPhase:
		w.stringVal(e.Label)
	case KindRoot:
		w.uvarint(uint64(e.OID))
		w.uvarint(uint64(e.Size))
	case KindIdle:
		w.uvarint(uint64(e.Size))
	default:
		return fmt.Errorf("trace: cannot encode event kind %d", e.Kind)
	}
	if w.err == nil {
		w.count++
	}
	return w.err
}

// Count returns the number of events written so far.
func (w *Writer) Count() int { return w.count }

// Close writes the trailer and flushes. The underlying writer is not closed.
func (w *Writer) Close() error {
	if w.closed {
		return nil
	}
	w.closed = true
	w.byteVal(trailerByte)
	if w.err != nil {
		return w.err
	}
	return w.bw.Flush()
}

// Reader streams events from the binary format.
type Reader struct {
	br   *bufio.Reader
	done bool

	// deadArena hands out Event.Dead backing storage in chunks, so decoding
	// a trace performs one allocation per ~4096 dead-list entries instead of
	// one per overwrite event. Handed-out slices are never reused — events
	// own them for good — the arena only batches the allocations.
	deadArena []DeadObject
	// labelBuf is the scratch buffer phase labels are read into before the
	// (unavoidable) string conversion.
	labelBuf []byte

	// Lenient, when set before reading, makes truncation non-fatal: a stream
	// that ends without its trailer (cleanly between events or mid-event)
	// yields the events read so far and then io.EOF instead of ErrTruncated.
	// Truncated() reports whether that happened. Decode errors other than
	// truncation (bad kinds, implausible lengths) remain fatal.
	Lenient bool

	truncated bool
}

// Truncated reports whether a lenient Reader hit end of stream without the
// trailer. It is meaningful once Read has returned io.EOF.
func (r *Reader) Truncated() bool { return r.truncated }

// NewReader validates the header and returns a Reader.
func NewReader(r io.Reader) (*Reader, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [6]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("trace: reading header: %w", err)
	}
	if hdr[0] != magic[0] || hdr[1] != magic[1] || hdr[2] != magic[2] || hdr[3] != magic[3] {
		return nil, errors.New("trace: bad magic (not a trace file)")
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != formatVersion {
		return nil, fmt.Errorf("trace: unsupported format version %d", v)
	}
	return &Reader{br: br}, nil
}

func (r *Reader) uvarint() (uint64, error) {
	return binary.ReadUvarint(r.br)
}

// allocDead carves an n-entry slice out of the dead arena, starting a new
// chunk when the current one is exhausted.
func (r *Reader) allocDead(n int) []DeadObject {
	if cap(r.deadArena)-len(r.deadArena) < n {
		size := deadArenaChunk
		if n > size {
			size = n
		}
		//lint:allow hotalloc arena chunk: one allocation amortizes thousands of dead-list entries
		r.deadArena = make([]DeadObject, 0, size)
	}
	out := r.deadArena[len(r.deadArena) : len(r.deadArena)+n]
	r.deadArena = r.deadArena[:len(r.deadArena)+n]
	return out
}

// deadArenaChunk is the arena granularity: 4096 entries ≈ 64 KiB.
const deadArenaChunk = 4096

// Read returns the next event, or io.EOF after the trailer.
func (r *Reader) Read() (Event, error) {
	var e Event
	if r.done {
		return e, io.EOF
	}
	kb, err := r.br.ReadByte()
	if err != nil {
		if errors.Is(err, io.EOF) {
			// Clean event boundary, but no trailer: the stream was cut.
			return e, r.truncation()
		}
		return e, err
	}
	if kb == trailerByte {
		r.done = true
		return e, io.EOF
	}
	e.Kind = Kind(kb)
	rd := func() uint64 {
		if err != nil {
			return 0
		}
		var v uint64
		v, err = r.uvarint()
		return v
	}
	switch e.Kind {
	case KindCreate:
		e.OID = objstore.OID(rd())
		var cb byte
		if err == nil {
			cb, err = r.br.ReadByte()
		}
		e.Class = objstore.Class(cb)
		e.Size = int(rd())
		e.Slots = int(rd())
	case KindAccess, KindUpdate:
		e.OID = objstore.OID(rd())
	case KindOverwrite:
		e.OID = objstore.OID(rd())
		e.Slot = int(rd())
		e.Old = objstore.OID(rd())
		e.New = objstore.OID(rd())
		var flags byte
		if err == nil {
			flags, err = r.br.ReadByte()
		}
		e.Init = flags&1 != 0
		n := rd()
		if err == nil && n > 0 {
			if n > 1<<24 {
				return e, fmt.Errorf("trace: implausible dead-list length %d", n)
			}
			e.Dead = r.allocDead(int(n))
			for i := range e.Dead {
				e.Dead[i].OID = objstore.OID(rd())
				e.Dead[i].Size = int(rd())
			}
		}
	case KindPhase:
		n := rd()
		if err == nil {
			if n > 1<<16 {
				return e, fmt.Errorf("trace: implausible phase label length %d", n)
			}
			if cap(r.labelBuf) < int(n) {
				//lint:allow hotalloc label scratch grows to the longest label once
				r.labelBuf = make([]byte, n)
			}
			buf := r.labelBuf[:n]
			_, err = io.ReadFull(r.br, buf)
			//lint:allow hotalloc phase labels are rare (one per phase) and must be immutable strings
			e.Label = string(buf)
		}
	case KindRoot:
		e.OID = objstore.OID(rd())
		e.Size = int(rd())
	case KindIdle:
		e.Size = int(rd())
	default:
		return e, fmt.Errorf("trace: unknown event kind byte %d", kb)
	}
	if err != nil {
		if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
			// The stream ended inside an event: truncation. In lenient mode
			// the partial event is discarded and the stream ends normally.
			return Event{}, r.truncation()
		}
		return e, fmt.Errorf("trace: decoding %v event: %w", e.Kind, err)
	}
	return e, nil
}

// truncation converts an end-of-stream-without-trailer condition into the
// mode-appropriate result: io.EOF when lenient, ErrTruncated otherwise.
// Either way the Reader is finished.
func (r *Reader) truncation() error {
	r.done = true
	r.truncated = true
	if r.Lenient {
		return io.EOF
	}
	return fmt.Errorf("%w: %w", ErrTruncated, io.ErrUnexpectedEOF)
}

// ReadAll decodes an entire stream into a Trace.
func ReadAll(r io.Reader) (*Trace, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, err
	}
	t := &Trace{}
	for {
		e, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return t, nil
		}
		if err != nil {
			return nil, err
		}
		t.Append(e)
	}
}

// ReadAllLenient decodes a possibly-truncated stream, returning every
// complete event read before the cut. The second result reports whether the
// stream was in fact truncated. Errors other than truncation are returned
// as-is.
func ReadAllLenient(r io.Reader) (*Trace, bool, error) {
	tr, err := NewReader(r)
	if err != nil {
		return nil, false, err
	}
	tr.Lenient = true
	t := &Trace{}
	for {
		e, err := tr.Read()
		if errors.Is(err, io.EOF) {
			return t, tr.Truncated(), nil
		}
		if err != nil {
			return nil, tr.Truncated(), err
		}
		t.Append(e)
	}
}

// WriteAll encodes an entire Trace to w.
func WriteAll(w io.Writer, t *Trace) error {
	tw, err := NewWriter(w)
	if err != nil {
		return err
	}
	for i := range t.Events {
		if err := tw.Write(&t.Events[i]); err != nil {
			return err
		}
	}
	return tw.Close()
}

// jsonEvent mirrors Event with stable JSON field names for the text codec.
type jsonEvent struct {
	Kind  string           `json:"kind"`
	OID   uint64           `json:"oid,omitempty"`
	Class uint8            `json:"class,omitempty"`
	Size  int              `json:"size,omitempty"`
	Slots int              `json:"slots,omitempty"`
	Slot  int              `json:"slot,omitempty"`
	Old   uint64           `json:"old,omitempty"`
	New   uint64           `json:"new,omitempty"`
	Label string           `json:"label,omitempty"`
	Init  bool             `json:"init,omitempty"`
	Dead  []jsonDeadObject `json:"dead,omitempty"`
}

type jsonDeadObject struct {
	OID  uint64 `json:"oid"`
	Size int    `json:"size"`
}

var kindFromName = func() map[string]Kind {
	m := make(map[string]Kind, len(kindNames))
	for k, n := range kindNames {
		m[n] = k
	}
	return m
}()

// WriteJSON encodes the trace as JSON lines (one event per line).
func WriteJSON(w io.Writer, t *Trace) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.Events {
		e := &t.Events[i]
		je := jsonEvent{
			Kind:  e.Kind.String(),
			OID:   uint64(e.OID),
			Class: uint8(e.Class),
			Size:  e.Size,
			Slots: e.Slots,
			Slot:  e.Slot,
			Old:   uint64(e.Old),
			New:   uint64(e.New),
			Label: e.Label,
			Init:  e.Init,
		}
		for _, d := range e.Dead {
			je.Dead = append(je.Dead, jsonDeadObject{OID: uint64(d.OID), Size: d.Size})
		}
		if err := enc.Encode(&je); err != nil {
			return fmt.Errorf("trace: encoding JSON event %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadJSON decodes a JSON-lines trace.
func ReadJSON(r io.Reader) (*Trace, error) {
	dec := json.NewDecoder(bufio.NewReader(r))
	t := &Trace{}
	// One decode target reused across the stream; Decode only sets fields
	// present in the line, so it is cleared each iteration.
	var je jsonEvent
	for i := 0; ; i++ {
		je = jsonEvent{}
		if err := dec.Decode(&je); errors.Is(err, io.EOF) {
			return t, nil
		} else if err != nil {
			return nil, fmt.Errorf("trace: decoding JSON event %d: %w", i, err)
		}
		k, ok := kindFromName[je.Kind]
		if !ok {
			return nil, fmt.Errorf("trace: JSON event %d has unknown kind %q", i, je.Kind)
		}
		e := Event{
			Kind:  k,
			OID:   objstore.OID(je.OID),
			Class: objstore.Class(je.Class),
			Size:  je.Size,
			Slots: je.Slots,
			Slot:  je.Slot,
			Old:   objstore.OID(je.Old),
			New:   objstore.OID(je.New),
			Label: je.Label,
			Init:  je.Init,
		}
		for _, d := range je.Dead {
			e.Dead = append(e.Dead, DeadObject{OID: objstore.OID(d.OID), Size: d.Size})
		}
		t.Append(e)
	}
}
