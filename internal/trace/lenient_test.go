package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// TestReaderErrTruncated checks that every way a stream can end without its
// trailer surfaces as ErrTruncated, distinguishable with errors.Is.
func TestReaderErrTruncated(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, validChain()); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	for _, cut := range []int{1, 2, 3, 5, len(full) / 3, len(full) / 2} {
		r, err := NewReader(bytes.NewReader(full[:len(full)-cut]))
		if err != nil {
			continue // header itself truncated; NewReader already failed
		}
		for {
			_, err = r.Read()
			if err != nil {
				break
			}
		}
		if !errors.Is(err, ErrTruncated) {
			t.Errorf("cut %d: err = %v, want ErrTruncated", cut, err)
		}
		if !r.Truncated() {
			t.Errorf("cut %d: Truncated() = false after truncation error", cut)
		}
	}
}

// TestReaderLenientYieldsPrefix checks that a lenient reader returns every
// complete event before the cut and then ends cleanly.
func TestReaderLenientYieldsPrefix(t *testing.T) {
	chain := validChain()
	var buf bytes.Buffer
	if err := WriteAll(&buf, chain); err != nil {
		t.Fatal(err)
	}
	full := buf.Bytes()
	// Cut at every byte position past the header; lenient decoding must
	// never error and must yield a prefix of the original events.
	for cut := 6; cut < len(full); cut++ {
		got, truncated, err := ReadAllLenient(bytes.NewReader(full[:cut]))
		if err != nil {
			t.Fatalf("cut %d: lenient read failed: %v", cut, err)
		}
		if cut < len(full)-1 && !truncated {
			t.Fatalf("cut %d: truncation not reported", cut)
		}
		if got.Len() > chain.Len() {
			t.Fatalf("cut %d: lenient read invented events: %d > %d", cut, got.Len(), chain.Len())
		}
		for i := range got.Events {
			if got.Events[i].String() != chain.Events[i].String() {
				t.Fatalf("cut %d: event %d = %q, want %q",
					cut, i, got.Events[i].String(), chain.Events[i].String())
			}
		}
	}
	// The full stream decodes without a truncation report.
	got, truncated, err := ReadAllLenient(bytes.NewReader(full))
	if err != nil || truncated {
		t.Fatalf("full stream: err=%v truncated=%v", err, truncated)
	}
	if got.Len() != chain.Len() {
		t.Fatalf("full stream decoded %d events, want %d", got.Len(), chain.Len())
	}
}

// TestReaderLenientKeepsOtherErrorsFatal ensures lenient mode does not paper
// over genuine corruption (an unknown event kind byte).
func TestReaderLenientKeepsOtherErrorsFatal(t *testing.T) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Write(&Event{Kind: KindIdle, Size: 1}); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Overwrite the trailer with a bogus kind byte followed by nothing.
	data[len(data)-1] = 0x7E
	r, err := NewReader(bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	r.Lenient = true
	if _, err := r.Read(); err != nil {
		t.Fatalf("first event: %v", err)
	}
	if _, err := r.Read(); err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("bogus kind byte in lenient mode: err = %v, want fatal decode error", err)
	}
}

// TestReaderTrailingGarbage: bytes after the trailer are ignored; the reader
// reports clean EOF and no truncation.
func TestReaderTrailingGarbage(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, validChain()); err != nil {
		t.Fatal(err)
	}
	buf.WriteString("\x00\xde\xad\xbe\xef trailing garbage")
	r, err := NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for {
		_, err := r.Read()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatalf("event %d: %v", n, err)
		}
		n++
	}
	if r.Truncated() {
		t.Error("trailing garbage reported as truncation")
	}
	if n != validChain().Len() {
		t.Errorf("decoded %d events, want %d", n, validChain().Len())
	}
}
