package trace

import (
	"bytes"
	"io"
	"testing"
)

// FuzzReader ensures the binary decoder never panics or over-allocates on
// corrupted input: it must either produce events or fail with an error.
func FuzzReader(f *testing.F) {
	// Seed with a valid encoding and a few mutations.
	var buf bytes.Buffer
	if err := WriteAll(&buf, validChain()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("ODBT\x01\x00"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 10 {
		mutated[8] ^= 0xff
	}
	f.Add(mutated)

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<20; i++ {
			_, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				return
			}
		}
		t.Fatal("reader produced over a million events from fuzz input")
	})
}

// FuzzJSONReader does the same for the JSON-lines decoder.
func FuzzJSONReader(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, validChain()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"kind":"create","oid":1,"size":-5}`))
	f.Add([]byte(`{"kind":`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must re-encode without panicking.
		var out bytes.Buffer
		_ = WriteJSON(&out, tr)
	})
}

// FuzzRoundTrip checks that any trace assembled from decoded events
// re-encodes and re-decodes to the same event strings.
func FuzzRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, validChain()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		var once bytes.Buffer
		if err := WriteAll(&once, tr); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		again, err := ReadAll(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d -> %d", tr.Len(), again.Len())
		}
		for i := range tr.Events {
			if tr.Events[i].String() != again.Events[i].String() {
				t.Fatalf("event %d changed: %q -> %q", i, tr.Events[i].String(), again.Events[i].String())
			}
		}
	})
}
