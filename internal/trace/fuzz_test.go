package trace

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// FuzzReader ensures the binary decoder never panics or over-allocates on
// corrupted input: it must either produce events or fail with an error.
func FuzzReader(f *testing.F) {
	// Seed with a valid encoding and a few mutations.
	var buf bytes.Buffer
	if err := WriteAll(&buf, validChain()); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)-1])
	f.Add([]byte("ODBT\x01\x00"))
	f.Add([]byte{})
	mutated := append([]byte(nil), valid...)
	if len(mutated) > 10 {
		mutated[8] ^= 0xff
	}
	f.Add(mutated)
	// Truncated headers: partial magic and magic without a version.
	f.Add([]byte("O"))
	f.Add([]byte("ODB"))
	f.Add([]byte("ODBT"))
	f.Add([]byte("ODBT\x01"))
	// Mid-varint EOF: a create event cut inside a multi-byte varint. The
	// OID varint 0x80 0x80 ... has continuation bits set with no terminator.
	f.Add([]byte{'O', 'D', 'B', 'T', 0x01, 0x00, byte(KindCreate), 0x80, 0x80, 0x80})
	// Mid-event EOF right after the kind byte.
	f.Add([]byte{'O', 'D', 'B', 'T', 0x01, 0x00, byte(KindOverwrite)})
	// Trailing garbage after a valid trailer.
	f.Add(append(append([]byte(nil), valid...), 0x00, 0xde, 0xad, 0xbe, 0xef))
	// Trailer replaced by an unknown kind byte.
	if len(valid) > 0 {
		noTrailer := append([]byte(nil), valid...)
		noTrailer[len(noTrailer)-1] = 0x7e
		f.Add(noTrailer)
	}

	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := NewReader(bytes.NewReader(data))
		if err != nil {
			return
		}
		for i := 0; i < 1<<20; i++ {
			_, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				// A lenient pass over the same bytes must terminate cleanly
				// whenever the strict error was truncation, and must never
				// yield more than the strict pass plus the partial event.
				if errors.Is(err, ErrTruncated) {
					lr, lerr := NewReader(bytes.NewReader(data))
					if lerr != nil {
						t.Fatalf("lenient NewReader failed after strict succeeded: %v", lerr)
					}
					lr.Lenient = true
					for {
						_, lerr = lr.Read()
						if lerr != nil {
							break
						}
					}
					if lerr != io.EOF {
						t.Fatalf("lenient reader on truncated input: %v, want io.EOF", lerr)
					}
					if !lr.Truncated() {
						t.Fatal("lenient reader did not report truncation")
					}
				}
				return
			}
		}
		t.Fatal("reader produced over a million events from fuzz input")
	})
}

// FuzzJSONReader does the same for the JSON-lines decoder.
func FuzzJSONReader(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteJSON(&buf, validChain()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"kind":"create","oid":1,"size":-5}`))
	f.Add([]byte(`{"kind":`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadJSON(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Whatever decodes must re-encode without panicking.
		var out bytes.Buffer
		_ = WriteJSON(&out, tr)
	})
}

// FuzzRoundTrip checks that any trace assembled from decoded events
// re-encodes and re-decodes to the same event strings.
func FuzzRoundTrip(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, validChain()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadAll(bytes.NewReader(data))
		if err != nil {
			return
		}
		var once bytes.Buffer
		if err := WriteAll(&once, tr); err != nil {
			t.Fatalf("re-encode of decoded trace failed: %v", err)
		}
		again, err := ReadAll(bytes.NewReader(once.Bytes()))
		if err != nil {
			t.Fatalf("re-decode failed: %v", err)
		}
		if again.Len() != tr.Len() {
			t.Fatalf("round trip changed length: %d -> %d", tr.Len(), again.Len())
		}
		for i := range tr.Events {
			if tr.Events[i].String() != again.Events[i].String() {
				t.Fatalf("event %d changed: %q -> %q", i, tr.Events[i].String(), again.Events[i].String())
			}
		}
	})
}
