package trace_test

import (
	"bytes"
	"testing"

	"odbgc/internal/oo7"
	"odbgc/internal/trace"
)

// TestBinaryRoundTripOO7 round-trips a full OO7 trace through the binary
// codec and revalidates it. Lives in an external test package because the
// OO7 generator depends on the trace package.
func TestBinaryRoundTripOO7(t *testing.T) {
	tr, err := oo7.FullTrace(oo7.SmallPrime(3), 5)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	t.Logf("binary size: %d bytes for %d events (%.1f B/event)",
		buf.Len(), tr.Len(), float64(buf.Len())/float64(tr.Len()))
	out, err := trace.ReadAll(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if out.Len() != tr.Len() {
		t.Fatalf("length mismatch: %d != %d", out.Len(), tr.Len())
	}
	for i := range tr.Events {
		if tr.Events[i].String() != out.Events[i].String() {
			t.Fatalf("event %d differs: %v vs %v", i, tr.Events[i].String(), out.Events[i].String())
		}
	}
	if err := trace.Validate(out); err != nil {
		t.Fatalf("round-tripped trace invalid: %v", err)
	}
}
