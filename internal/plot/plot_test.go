package plot

import (
	"math"
	"strings"
	"testing"

	"odbgc/internal/metrics"
)

func line(name string, pts ...[2]float64) *metrics.Series {
	s := &metrics.Series{Name: name}
	for _, p := range pts {
		s.Add(p[0], p[1])
	}
	return s
}

func TestRenderBasics(t *testing.T) {
	s := line("diag", [2]float64{0, 0}, [2]float64{10, 10})
	out := Render(Options{Width: 20, Height: 10, Title: "T", XLabel: "x", YLabel: "y"}, s)
	if !strings.Contains(out, "T\n") {
		t.Error("title missing")
	}
	if !strings.Contains(out, "x: x") || !strings.Contains(out, "y: y") {
		t.Error("axis labels missing")
	}
	if !strings.Contains(out, "* diag") {
		t.Error("legend missing")
	}
	if !strings.Contains(out, "*") {
		t.Error("no marks plotted")
	}
	lines := strings.Split(out, "\n")
	// Title + height rows + x-axis + x range + labels + legend.
	if len(lines) < 13 {
		t.Errorf("too few lines: %d\n%s", len(lines), out)
	}
}

func TestRenderEmpty(t *testing.T) {
	if out := Render(Options{}, &metrics.Series{Name: "e"}); out != "(no data)\n" {
		t.Errorf("empty render = %q", out)
	}
}

func TestRenderDiagonalShape(t *testing.T) {
	s := line("d", [2]float64{0, 0}, [2]float64{5, 5}, [2]float64{10, 10})
	out := Render(Options{Width: 21, Height: 11}, s)
	rows := []string{}
	for _, l := range strings.Split(out, "\n") {
		if i := strings.IndexAny(l, "|+"); i >= 0 && len(l) > i+1 {
			rows = append(rows, l[i+1:])
		}
	}
	// The topmost marked row should have its mark to the right of the
	// bottommost marked row's mark.
	var top, bottom string
	for _, r := range rows {
		if strings.ContainsRune(r, '*') {
			if top == "" {
				top = r
			}
			bottom = r
		}
	}
	if top == "" {
		t.Fatalf("no marks:\n%s", out)
	}
	if strings.IndexByte(top, '*') <= strings.IndexByte(bottom, '*') {
		t.Errorf("diagonal not rising:\n%s", out)
	}
}

func TestRenderCollisionMark(t *testing.T) {
	a := line("a", [2]float64{1, 1})
	b := line("b", [2]float64{1, 1})
	out := Render(Options{Width: 10, Height: 5}, a, b)
	if !strings.Contains(out, string(collision)) {
		t.Errorf("no collision mark:\n%s", out)
	}
}

func TestRenderFixedYRange(t *testing.T) {
	s := line("s", [2]float64{0, 50})
	lo, hi := 0.0, 100.0
	out := Render(Options{Width: 10, Height: 5, YMin: &lo, YMax: &hi}, s)
	if !strings.Contains(out, "100.00") || !strings.Contains(out, "0.00") {
		t.Errorf("fixed range ticks missing:\n%s", out)
	}
}

func TestRenderNaNSkipped(t *testing.T) {
	s := &metrics.Series{Name: "n"}
	s.Add(1, math.NaN())
	s.Add(2, 5)
	out := Render(Options{Width: 10, Height: 5}, s)
	if strings.Contains(out, "NaN") {
		t.Errorf("NaN leaked into chart:\n%s", out)
	}
}

// TestRenderSinglePoint checks the degenerate one-point chart: both axis
// ranges collapse and must be widened rather than divide by zero.
func TestRenderSinglePoint(t *testing.T) {
	s := line("p", [2]float64{3, 7})
	out := Render(Options{Width: 10, Height: 5}, s)
	if !strings.Contains(out, "*") {
		t.Errorf("single point not plotted:\n%s", out)
	}
	if strings.Contains(out, "NaN") || strings.Contains(out, "Inf") {
		t.Errorf("degenerate range leaked:\n%s", out)
	}
}

// TestRenderConstantSeries checks a flat line: the Y range is empty and must
// be widened so every mark lands on a valid row.
func TestRenderConstantSeries(t *testing.T) {
	s := line("c", [2]float64{0, 5}, [2]float64{5, 5}, [2]float64{10, 5})
	out := Render(Options{Width: 20, Height: 5}, s)
	if got := strings.Count(out, "*"); got < 3 {
		// 3 points plus the legend mark.
		t.Errorf("constant series plotted %d marks:\n%s", got, out)
	}
	if strings.Contains(out, "NaN") {
		t.Errorf("flat range leaked NaN:\n%s", out)
	}
}

// TestRenderAllNaN checks that a series whose every Y is NaN renders the
// no-data placeholder instead of an unscalable chart.
func TestRenderAllNaN(t *testing.T) {
	s := &metrics.Series{Name: "n"}
	s.Add(1, math.NaN())
	s.Add(2, math.NaN())
	if out := Render(Options{}, s); out != "(no data)\n" {
		t.Errorf("all-NaN render = %q", out)
	}
}
