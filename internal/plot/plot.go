// Package plot renders metric series as ASCII line charts, so the
// experiment harness can reproduce the paper's *figures* — not just their
// data — in a terminal.
package plot

import (
	"fmt"
	"math"
	"strings"

	"odbgc/internal/metrics"
)

// Options control chart geometry and scaling.
type Options struct {
	// Width and Height are the plotting area in characters (excluding
	// axes). Defaults: 64 × 16.
	Width, Height int
	// Title is printed above the chart.
	Title string
	// XLabel and YLabel annotate the axes.
	XLabel, YLabel string
	// YMin/YMax fix the Y range; nil auto-scales to the data (with a 5%
	// margin).
	YMin, YMax *float64
}

// symbols assigns one mark per series, in order.
var symbols = []byte{'*', 'o', '+', 'x', '#', '@', '%', '~'}

// collision marks grid cells where multiple series coincide.
const collision = '&'

func (o *Options) applyDefaults() {
	if o.Width <= 0 {
		o.Width = 64
	}
	if o.Height <= 0 {
		o.Height = 16
	}
}

// Render draws the series onto one chart. Series may have different X
// ranges; the union is plotted. Returns a multi-line string.
func Render(opts Options, series ...*metrics.Series) string {
	opts.applyDefaults()

	xMin, xMax := math.Inf(1), math.Inf(-1)
	yMin, yMax := math.Inf(1), math.Inf(-1)
	points := 0
	for _, s := range series {
		for _, p := range s.Points {
			if math.IsNaN(p.X) || math.IsNaN(p.Y) {
				continue
			}
			points++
			xMin = math.Min(xMin, p.X)
			xMax = math.Max(xMax, p.X)
			yMin = math.Min(yMin, p.Y)
			yMax = math.Max(yMax, p.Y)
		}
	}
	if points == 0 {
		return "(no data)\n"
	}
	if opts.YMin != nil {
		yMin = *opts.YMin
	}
	if opts.YMax != nil {
		yMax = *opts.YMax
	}
	if yMax == yMin {
		yMax = yMin + 1
	}
	if xMax == xMin {
		xMax = xMin + 1
	}
	if opts.YMin == nil && opts.YMax == nil {
		margin := (yMax - yMin) * 0.05
		yMin -= margin
		yMax += margin
	}

	w, h := opts.Width, opts.Height
	grid := make([][]byte, h)
	for i := range grid {
		grid[i] = []byte(strings.Repeat(" ", w))
	}
	put := func(x, y float64, mark byte) {
		cx := int((x - xMin) / (xMax - xMin) * float64(w-1))
		cy := int((y - yMin) / (yMax - yMin) * float64(h-1))
		if cx < 0 || cx >= w || cy < 0 || cy >= h {
			return
		}
		row := h - 1 - cy // row 0 is the top
		switch grid[row][cx] {
		case ' ', mark:
			grid[row][cx] = mark
		default:
			grid[row][cx] = collision
		}
	}
	for si, s := range series {
		mark := symbols[si%len(symbols)]
		for _, p := range s.Points {
			if !math.IsNaN(p.X) && !math.IsNaN(p.Y) {
				put(p.X, p.Y, mark)
			}
		}
	}

	var b strings.Builder
	if opts.Title != "" {
		fmt.Fprintf(&b, "%s\n", opts.Title)
	}
	yTickRows := map[int]float64{}
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1} {
		row := int(math.Round((1 - frac) * float64(h-1)))
		yTickRows[row] = yMin + frac*(yMax-yMin)
	}
	for row := 0; row < h; row++ {
		if v, ok := yTickRows[row]; ok {
			fmt.Fprintf(&b, "%9.2f +%s\n", v, string(grid[row]))
		} else {
			fmt.Fprintf(&b, "%9s |%s\n", "", string(grid[row]))
		}
	}
	fmt.Fprintf(&b, "%9s +%s\n", "", strings.Repeat("-", w))
	left := fmt.Sprintf("%g", xMin)
	right := fmt.Sprintf("%g", xMax)
	gap := w - len(left) - len(right)
	if gap < 1 {
		gap = 1
	}
	fmt.Fprintf(&b, "%9s  %s%s%s\n", "", left, strings.Repeat(" ", gap), right)
	if opts.XLabel != "" {
		fmt.Fprintf(&b, "%9s  x: %s\n", "", opts.XLabel)
	}
	if opts.YLabel != "" {
		fmt.Fprintf(&b, "%9s  y: %s\n", "", opts.YLabel)
	}
	var legend []string
	for si, s := range series {
		legend = append(legend, fmt.Sprintf("%c %s", symbols[si%len(symbols)], s.Name))
	}
	if len(legend) > 0 {
		fmt.Fprintf(&b, "%9s  %s\n", "", strings.Join(legend, "   "))
	}
	return b.String()
}
