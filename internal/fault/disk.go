package fault

import (
	"errors"
	"fmt"
	"io"

	"odbgc/internal/simerr"
	"odbgc/internal/storage/disk"
)

// DiskChaos wraps a disk.FS with seeded, per-operation fault injection:
// torn writes (a prefix lands, the rest does not), fsync lies (Sync
// reports success without syncing), short reads, and bit rot (a flipped
// bit in read data, which the backend's checksums must catch). Like every
// injector in this package it is deterministic: profile + seed fixes the
// entire fault schedule.
type DiskChaos struct {
	inner disk.FS
	rng   *rng
	p     Profile
	stats DiskChaosStats
}

// DiskChaosStats counts the faults a DiskChaos has injected.
type DiskChaosStats struct {
	TornWrites uint64
	FsyncLies  uint64
	ShortReads uint64
	BitFlips   uint64
}

// NewDiskChaos wraps inner with the profile's disk fault rates.
func NewDiskChaos(inner disk.FS, p Profile, seed int64) *DiskChaos {
	return &DiskChaos{inner: inner, rng: newRNG(seed), p: p}
}

// Stats returns the injected-fault counters so far.
func (c *DiskChaos) Stats() DiskChaosStats { return c.stats }

// Open implements disk.FS.
func (c *DiskChaos) Open(name string) (disk.File, error) {
	f, err := c.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &chaosFile{c: c, name: name, inner: f}, nil
}

// Remove implements disk.FS.
func (c *DiskChaos) Remove(name string) error { return c.inner.Remove(name) }

type chaosFile struct {
	c     *DiskChaos
	name  string
	inner disk.File
}

// WriteAt may tear the write: a prefix reaches the file and the call
// reports the short count with a torn-write error, as a failing device
// would. The backend sees the error before acknowledging the commit, so
// the tear is visible — the silent variant is what crashes produce, and
// the crashtest harness owns that case.
func (f *chaosFile) WriteAt(p []byte, off int64) (int, error) {
	c := f.c
	if c.p.TornWriteProb > 0 && len(p) > 1 && c.rng.float64() < c.p.TornWriteProb {
		n := 1 + c.rng.intn(len(p)-1)
		c.stats.TornWrites++
		wrote, err := f.inner.WriteAt(p[:n], off)
		if err != nil {
			return wrote, fmt.Errorf("fault: torn write underlay: %w", err)
		}
		return wrote, simerr.WrapTornWrite(
			fmt.Sprintf("fault: %s: wrote %d of %d bytes at %d", f.name, n, len(p), off), nil)
	}
	return f.inner.WriteAt(p, off)
}

// Sync may lie: report success without flushing. The loss is latent — it
// only matters if a crash follows — which is exactly how lying drives
// behave.
func (f *chaosFile) Sync() error {
	c := f.c
	if c.p.FsyncLieProb > 0 && c.rng.float64() < c.p.FsyncLieProb {
		c.stats.FsyncLies++
		return nil
	}
	return f.inner.Sync()
}

// ReadAt may return fewer bytes than asked (short read) or flip one bit in
// the data it does return (rot). Checksums downstream must refuse rotted
// pages and records.
func (f *chaosFile) ReadAt(p []byte, off int64) (int, error) {
	c := f.c
	if c.p.ShortReadProb > 0 && len(p) > 1 && c.rng.float64() < c.p.ShortReadProb {
		c.stats.ShortReads++
		n, err := f.inner.ReadAt(p[:1+c.rng.intn(len(p)-1)], off)
		if err == nil || errors.Is(err, io.EOF) {
			err = io.EOF
		}
		return n, err
	}
	n, err := f.inner.ReadAt(p, off)
	if n > 0 && c.p.BitRotProb > 0 && c.rng.float64() < c.p.BitRotProb {
		c.stats.BitFlips++
		i := c.rng.intn(n)
		p[i] ^= 1 << uint(c.rng.intn(8))
	}
	return n, err
}

func (f *chaosFile) Truncate(size int64) error { return f.inner.Truncate(size) }
func (f *chaosFile) Size() (int64, error)      { return f.inner.Size() }
func (f *chaosFile) Close() error              { return f.inner.Close() }
