package fault

import (
	"errors"
	"testing"

	"odbgc/internal/objstore"
	"odbgc/internal/simerr"
	"odbgc/internal/storage/disk"
)

// seedStore builds a small committed store on dir and closes it.
func seedStore(t *testing.T, dir string) {
	t.Helper()
	s, _, err := disk.Open(disk.Options{FS: disk.OSFS{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LogAlloc(1, objstore.ClassModule, 100, 1); err != nil {
		t.Fatal(err)
	}
	if err := s.LogRoot(1, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestDiskChaosTornWriteClassifies(t *testing.T) {
	p := Profile{TornWriteProb: 1}
	fs := NewDiskChaos(disk.OSFS{Dir: t.TempDir()}, p, 7)
	s, _, err := disk.Open(disk.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	defer func() { _ = s.Close() }()
	if err := s.LogAlloc(1, objstore.ClassModule, 100, 1); err != nil {
		t.Fatal(err)
	}
	err = s.Commit()
	if err == nil {
		t.Fatal("commit through a 100% torn-write disk succeeded")
	}
	if !errors.Is(err, simerr.ErrTornWrite) {
		t.Errorf("commit error is not a torn write: %v", err)
	}
	if got := simerr.Classify(err); got != simerr.ClassTornWrite {
		t.Errorf("Classify = %q", got)
	}
	if fs.Stats().TornWrites == 0 {
		t.Error("no torn write counted")
	}
}

func TestDiskChaosBitRotFailsRecoveryAsCorruption(t *testing.T) {
	dir := t.TempDir()
	seedStore(t, dir)
	fs := NewDiskChaos(disk.OSFS{Dir: dir}, Profile{BitRotProb: 1}, 11)
	_, _, err := disk.Open(disk.Options{FS: fs})
	if err == nil {
		t.Fatal("recovery through 100% bit rot succeeded")
	}
	class := simerr.Classify(err)
	if class != simerr.ClassRecoveryFailed && class != simerr.ClassTornWrite {
		t.Errorf("rot classified as %q, want corruption", class)
	}
	if fs.Stats().BitFlips == 0 {
		t.Error("no bit flip counted")
	}
}

func TestDiskChaosFsyncLiesAreCountedAndSilent(t *testing.T) {
	fs := NewDiskChaos(disk.OSFS{Dir: t.TempDir()}, Profile{FsyncLieProb: 1}, 3)
	s, _, err := disk.Open(disk.Options{FS: fs})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.LogAlloc(1, objstore.ClassModule, 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatalf("a lying fsync must not surface an error: %v", err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if fs.Stats().FsyncLies == 0 {
		t.Error("no fsync lie counted")
	}
}

func TestDiskChaosDeterministic(t *testing.T) {
	run := func() DiskChaosStats {
		dir := t.TempDir()
		seedStore(t, dir)
		p := Profile{TornWriteProb: 0.3, FsyncLieProb: 0.3, ShortReadProb: 0.2, BitRotProb: 0.2}
		fs := NewDiskChaos(disk.OSFS{Dir: dir}, p, 99)
		s, _, err := disk.Open(disk.Options{FS: fs})
		if err == nil {
			// Chaos may or may not break recovery at these rates; drive a
			// few commits if it survived.
			for i := 0; i < 5; i++ {
				_ = s.LogAlloc(objstore.OID(100+i), objstore.ClassManual, 10, 0)
				_ = s.Commit()
			}
			_ = s.Close()
		}
		return fs.Stats()
	}
	if a, b := run(), run(); a != b {
		t.Errorf("same seed produced different fault schedules: %+v vs %+v", a, b)
	}
}

func TestDiskProfileRegistered(t *testing.T) {
	p, err := LookupProfile("disk-chaos")
	if err != nil {
		t.Fatal(err)
	}
	if !p.Disk() {
		t.Error("disk-chaos profile reports no disk faults")
	}
	off, err := LookupProfile("off")
	if err != nil {
		t.Fatal(err)
	}
	if off.Disk() {
		t.Error("off profile reports disk faults")
	}
}
