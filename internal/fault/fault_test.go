package fault

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"math"
	"reflect"
	"testing"
	"time"

	"odbgc/internal/core"
	"odbgc/internal/gc"
)

func TestIsTransient(t *testing.T) {
	te := &TransientError{Op: "read", Seq: 3}
	if !IsTransient(te) {
		t.Fatal("bare TransientError not classified")
	}
	if !IsTransient(fmt.Errorf("wrapped: %w", te)) {
		t.Fatal("wrapped TransientError not classified")
	}
	if IsTransient(errors.New("disk on fire")) {
		t.Fatal("ordinary error classified as transient")
	}
	if IsTransient(nil) {
		t.Fatal("nil classified as transient")
	}
}

func TestInjectorDeterministic(t *testing.T) {
	profile, err := LookupProfile("flaky-io")
	if err != nil {
		t.Fatal(err)
	}
	run := func(seed int64) []bool {
		in := NewInjector(profile, seed)
		out := make([]bool, 2000)
		for i := range out {
			out[i] = in.BeforeOp(i%3 == 0) != nil
		}
		return out
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different fault schedules")
	}
	c := run(43)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical fault schedules")
	}
	count := 0
	for _, f := range a {
		if f {
			count++
		}
	}
	// ~1% reads + ~2% writes over 2000 ops: expect faults, but not a flood.
	if count == 0 || count > 200 {
		t.Fatalf("flaky-io injected %d/2000 faults, outside sane range", count)
	}
}

func TestInjectorBursts(t *testing.T) {
	p := Profile{BurstProb: 0.01, BurstLen: 4}
	in := NewInjector(p, 7)
	var runs []int
	cur := 0
	for i := 0; i < 10000; i++ {
		if in.BeforeOp(false) != nil {
			cur++
		} else if cur > 0 {
			runs = append(runs, cur)
			cur = 0
		}
	}
	if len(runs) == 0 {
		t.Fatal("no bursts fired in 10000 ops at 1% burst probability")
	}
	for _, r := range runs {
		// Bursts are 4 ops; adjacent bursts can chain into multiples of
		// longer runs, but a lone 1..3-run means the burst logic broke.
		if r < p.BurstLen {
			t.Fatalf("burst run of %d ops, want >= %d", r, p.BurstLen)
		}
	}
	st := in.Stats()
	if st.Bursts == 0 || st.Injected < uint64(len(runs)*p.BurstLen) {
		t.Fatalf("stats inconsistent with observed bursts: %+v vs %d runs", st, len(runs))
	}
}

func TestInjectorSnapshotResumesFaultStream(t *testing.T) {
	profile := Profile{ReadErrProb: 0.05, WriteErrProb: 0.05, BurstProb: 0.005, BurstLen: 3}
	in := NewInjector(profile, 99)
	for i := 0; i < 500; i++ {
		in.BeforeOp(i%2 == 0)
	}
	snap := in.Snapshot()

	tail := func(in *Injector) []bool {
		out := make([]bool, 500)
		for i := range out {
			out[i] = in.BeforeOp(i%2 == 0) != nil
		}
		return out
	}
	want := tail(in)

	resumed := NewInjector(profile, 0) // seed irrelevant: state overwritten
	if err := resumed.Restore(snap); err != nil {
		t.Fatal(err)
	}
	if got := tail(resumed); !reflect.DeepEqual(got, want) {
		t.Fatal("restored injector diverged from original fault stream")
	}
	if err := resumed.Restore(InjectorState{BurstLeft: -1}); err == nil {
		t.Fatal("accepted negative burstLeft")
	}
}

func TestRetryRecoversFromTransients(t *testing.T) {
	calls := 0
	err := Retry("scan", func() error {
		calls++
		if calls < 3 {
			return &TransientError{Op: "read", Seq: uint64(calls)}
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("err=%v calls=%d, want success on 3rd call", err, calls)
	}
}

func TestRetryGivesUpAndWraps(t *testing.T) {
	cfg := RetryConfig{MaxAttempts: 3}
	calls := 0
	err := cfg.Do("flush", func() error {
		calls++
		return &TransientError{Op: "write", Seq: uint64(calls)}
	})
	if calls != 3 {
		t.Fatalf("calls=%d, want 3", calls)
	}
	if err == nil || !IsTransient(err) {
		t.Fatalf("give-up error should wrap the transient fault, got %v", err)
	}
}

func TestRetryPassesThroughPermanentErrors(t *testing.T) {
	boom := errors.New("corrupt superblock")
	calls := 0
	err := Retry("scan", func() error {
		calls++
		return boom
	})
	if !errors.Is(err, boom) || calls != 1 {
		t.Fatalf("err=%v calls=%d, want immediate pass-through", err, calls)
	}
}

func TestRetryBackoffSchedule(t *testing.T) {
	var delays []time.Duration
	cfg := RetryConfig{
		MaxAttempts: 5,
		BaseDelay:   time.Millisecond,
		MaxDelay:    4 * time.Millisecond,
		Sleep:       func(d time.Duration) { delays = append(delays, d) },
	}
	_ = cfg.Do("op", func() error { return &TransientError{} })
	want := []time.Duration{
		time.Millisecond, 2 * time.Millisecond, 4 * time.Millisecond, 4 * time.Millisecond,
	}
	if !reflect.DeepEqual(delays, want) {
		t.Fatalf("backoff schedule %v, want %v", delays, want)
	}
}

func TestCorruptReaderTruncates(t *testing.T) {
	src := bytes.Repeat([]byte{0xAA}, 1000)
	cr := NewCorruptReader(bytes.NewReader(src), CorruptConfig{TruncateAfter: 137}, 1)
	got, err := io.ReadAll(cr)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 137 {
		t.Fatalf("read %d bytes, want 137", len(got))
	}
	if cr.BytesRead() != 137 {
		t.Fatalf("BytesRead=%d, want 137", cr.BytesRead())
	}
}

func TestCorruptReaderBitFlipsDeterministic(t *testing.T) {
	src := make([]byte, 4096) // zeros: any nonzero byte is a flip
	read := func(seed int64) []byte {
		cr := NewCorruptReader(bytes.NewReader(src), CorruptConfig{BitFlipProb: 0.01}, seed)
		got, err := io.ReadAll(cr)
		if err != nil {
			t.Fatal(err)
		}
		return got
	}
	a, b := read(5), read(5)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different corruption")
	}
	flips := 0
	for _, x := range a {
		if x != 0 {
			flips++
			if x&(x-1) != 0 {
				t.Fatalf("byte %08b has more than one bit flipped", x)
			}
		}
	}
	if flips == 0 || flips > 200 {
		t.Fatalf("%d flips in 4096 bytes at 1%%, outside sane range", flips)
	}
	if c := read(6); bytes.Equal(a, c) {
		t.Fatal("different seeds produced identical corruption")
	}
}

func TestCorruptTraceRespectsProfile(t *testing.T) {
	src := bytes.NewReader(make([]byte, 100))
	off, err := LookupProfile("off")
	if err != nil {
		t.Fatal(err)
	}
	r, err := CorruptTrace(src, 100, off, 1)
	if err != nil {
		t.Fatal(err)
	}
	if r != io.Reader(src) {
		t.Fatal("off profile should return the reader unchanged")
	}

	tc, err := LookupProfile("trace-corrupt")
	if err != nil {
		t.Fatal(err)
	}
	r, err = CorruptTrace(bytes.NewReader(make([]byte, 100)), 100, tc, 1)
	if err != nil {
		t.Fatal(err)
	}
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 90 {
		t.Fatalf("trace-corrupt on 100 bytes yielded %d, want 90", len(got))
	}
}

func TestLookupProfile(t *testing.T) {
	for _, name := range ProfileNames() {
		p, err := LookupProfile(name)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if p.Name != name {
			t.Fatalf("profile %q reports name %q", name, p.Name)
		}
	}
	if p, err := LookupProfile(""); err != nil || p.Name != "off" {
		t.Fatalf("empty name: p=%+v err=%v, want off", p, err)
	}
	if _, err := LookupProfile("molasses"); err == nil {
		t.Fatal("unknown profile accepted")
	}
}

// scriptedEst is a minimal estimator for ChaosEstimator tests.
type scriptedEst struct {
	val float64
	obs int
}

func (e *scriptedEst) Name() string                                          { return "scripted" }
func (e *scriptedEst) ObserveCollection(core.HeapState, gc.CollectionResult) { e.obs++ }
func (e *scriptedEst) EstimateGarbage(core.HeapState) float64                { return e.val }

// fakeHeapState implements core.HeapState with fixed values.
type fakeHeapState struct{ db int }

func (f *fakeHeapState) DatabaseBytes() int          { return f.db }
func (f *fakeHeapState) ActualGarbageBytes() int     { return 0 }
func (f *fakeHeapState) TotalCollectedBytes() uint64 { return 0 }
func (f *fakeHeapState) SumPartitionOverwrites() int { return 0 }
func (f *fakeHeapState) NumPartitions() int          { return 1 }

func TestChaosEstimatorDropout(t *testing.T) {
	profile, err := LookupProfile("estimator-dropout")
	if err != nil {
		t.Fatal(err)
	}
	inner := &scriptedEst{val: 1234}
	ce, err := NewChaosEstimator(inner, profile, 11)
	if err != nil {
		t.Fatal(err)
	}
	h := &fakeHeapState{db: 100000}
	var nans, garbage, clean int
	for i := 0; i < 2000; i++ {
		switch v := ce.EstimateGarbage(h); {
		case math.IsNaN(v):
			nans++
		case v == 1234:
			clean++
		default:
			garbage++
			if v < 0 || v > 4*float64(h.DatabaseBytes()) {
				t.Fatalf("garbage value %v outside [0, 4*db]", v)
			}
		}
	}
	if nans == 0 || garbage == 0 || clean == 0 {
		t.Fatalf("nans=%d garbage=%d clean=%d: every class should appear", nans, garbage, clean)
	}
	if ce.Dropped() != uint64(nans) || ce.Garbled() != uint64(garbage) {
		t.Fatalf("counters dropped=%d garbled=%d disagree with observed %d/%d",
			ce.Dropped(), ce.Garbled(), nans, garbage)
	}
	ce.ObserveCollection(h, gc.CollectionResult{})
	if inner.obs != 1 {
		t.Fatal("observation did not reach the wrapped estimator")
	}
}

func TestChaosEstimatorSnapshotRoundTrip(t *testing.T) {
	profile, err := LookupProfile("estimator-dropout")
	if err != nil {
		t.Fatal(err)
	}
	h := &fakeHeapState{db: 100000}
	ce, err := NewChaosEstimator(&scriptedEst{val: 500}, profile, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		ce.EstimateGarbage(h)
	}
	state, err := ce.SnapshotState()
	if err != nil {
		t.Fatal(err)
	}
	twin, err := NewChaosEstimator(&scriptedEst{val: 500}, profile, 0)
	if err != nil {
		t.Fatal(err)
	}
	if err := twin.RestoreState(state); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		a, b := ce.EstimateGarbage(h), twin.EstimateGarbage(h)
		if a != b && !(math.IsNaN(a) && math.IsNaN(b)) {
			t.Fatalf("step %d: diverged %v vs %v", i, a, b)
		}
	}
	if ce.Dropped() != twin.Dropped() || ce.Garbled() != twin.Garbled() {
		t.Fatal("counters diverged after restore")
	}
}

func TestChaosEstimatorRejectsBadProbabilities(t *testing.T) {
	if _, err := NewChaosEstimator(&scriptedEst{}, Profile{EstNaNProb: 0.7, EstGarbageProb: 0.7}, 1); err == nil {
		t.Fatal("accepted probabilities summing over 1")
	}
}
