package fault

import (
	"fmt"
	"sort"
	"strings"
)

// NetProfile is a named bundle of client/network chaos rates for the
// serving path: the misbehaviors a live object-database front end must
// absorb without leaking goroutines or wedging its drain. Like Profile it
// carries no randomness — pair it with a seed (NewNetChaos) and the chaos
// schedule is reproducible request for request.
//
// The four knobs map to the four classic network failure shapes:
//
//   - slow reader/writer: the peer trickles bytes, holding a session (and
//     its server-side resources) open far longer than the work justifies;
//   - mid-request disconnect: the peer vanishes after the request is sent
//     but before the response is read;
//   - malformed frame: the peer ships bytes that are not a protocol frame
//     (bad length prefix, truncated payload, non-JSON body);
//   - burst arrival: open-loop arrivals clump, driving the instantaneous
//     rate far past the configured mean and past the admission limit.
type NetProfile struct {
	Name        string
	Description string

	// SlowProb is the per-request probability of pacing the request's bytes
	// slowly; SlowFactorMax bounds the uniform pacing multiplier in
	// [1, SlowFactorMax].
	SlowProb      float64
	SlowFactorMax float64

	// DisconnectProb is the per-request probability of dropping the
	// connection mid-request, before reading the response.
	DisconnectProb float64

	// MalformedProb is the per-request probability of sending a garbage
	// frame instead of the real request.
	MalformedProb float64

	// BurstProb is the per-arrival probability of an arrival burst;
	// BurstLen extra requests are dispatched immediately when one fires.
	BurstProb float64
	BurstLen  int
}

// Active reports whether the profile injects any network chaos.
func (p NetProfile) Active() bool {
	return p.SlowProb > 0 || p.DisconnectProb > 0 || p.MalformedProb > 0 || p.BurstProb > 0
}

// netProfiles is the registry of named network chaos profiles. Rates are
// aggressive relative to real clients so short load runs exercise every
// server recovery path.
var netProfiles = map[string]NetProfile{
	"net-off": {
		Name:        "net-off",
		Description: "well-behaved clients (the default)",
	},
	"net-slow": {
		Name:          "net-slow",
		Description:   "slow readers: 20% of requests trickle bytes at up to 8x pacing",
		SlowProb:      0.20,
		SlowFactorMax: 8,
	},
	"net-flaky": {
		Name:           "net-flaky",
		Description:    "flaky peers: 5% mid-request disconnects, 3% malformed frames",
		DisconnectProb: 0.05,
		MalformedProb:  0.03,
	},
	"net-burst": {
		Name:        "net-burst",
		Description: "bursty arrivals: 5% chance per arrival of 8 extra immediate requests",
		BurstProb:   0.05,
		BurstLen:    8,
	},
	"net-chaos": {
		Name:           "net-chaos",
		Description:    "all network fault classes at once",
		SlowProb:       0.10,
		SlowFactorMax:  4,
		DisconnectProb: 0.03,
		MalformedProb:  0.02,
		BurstProb:      0.03,
		BurstLen:       6,
	},
}

// LookupNetProfile resolves a network chaos profile by name ("" means
// "net-off").
func LookupNetProfile(name string) (NetProfile, error) {
	if name == "" {
		name = "net-off"
	}
	p, ok := netProfiles[name]
	if !ok {
		return NetProfile{}, fmt.Errorf("fault: unknown net profile %q (have %s)", name, strings.Join(NetProfileNames(), ", "))
	}
	return p, nil
}

// NetProfileNames lists the registered network profiles in sorted order.
func NetProfileNames() []string {
	names := make([]string, 0, len(netProfiles))
	for name := range netProfiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// NetDecision is the chaos verdict for one request, drawn deterministically
// from the profile and seed. The consumer (a load generator or a server
// test) is responsible for acting it out — the decider itself never touches
// the network or the clock.
type NetDecision struct {
	// SlowFactor multiplies the sender's per-byte pacing delay; 1 means
	// full speed.
	SlowFactor float64
	// Disconnect drops the connection after sending, before the response.
	Disconnect bool
	// Malformed replaces the request with a garbage frame.
	Malformed bool
	// Burst is how many extra requests to dispatch immediately alongside
	// this arrival (0 for a lone arrival).
	Burst int
}

// NetChaosStats counts what a decider has handed out.
type NetChaosStats struct {
	Requests    uint64
	Slow        uint64
	Disconnects uint64
	Malformed   uint64
	Bursts      uint64
}

// NetChaos deals NetDecisions from a seeded generator: same profile, same
// seed, same schedule, so a chaotic load run is a reproducible experiment.
// It is not safe for concurrent use; give each load-generator worker its
// own decider (derive per-worker seeds from the run seed).
type NetChaos struct {
	profile NetProfile
	rng     *rng
	stats   NetChaosStats
}

// NewNetChaos builds a decider for the profile, seeded.
func NewNetChaos(profile NetProfile, seed int64) *NetChaos {
	return &NetChaos{profile: profile, rng: newRNG(seed)}
}

// Profile returns the decider's profile.
func (c *NetChaos) Profile() NetProfile { return c.profile }

// Next draws the chaos decision for the next request. Draw order is fixed
// (slow, disconnect, malformed, burst) so schedules are stable across
// refactors of the consumer.
func (c *NetChaos) Next() NetDecision {
	c.stats.Requests++
	d := NetDecision{SlowFactor: 1}
	if c.profile.SlowProb > 0 && c.rng.float64() < c.profile.SlowProb {
		max := c.profile.SlowFactorMax
		if max < 1 {
			max = 1
		}
		d.SlowFactor = 1 + c.rng.float64()*(max-1)
		c.stats.Slow++
	}
	if c.profile.DisconnectProb > 0 && c.rng.float64() < c.profile.DisconnectProb {
		d.Disconnect = true
		c.stats.Disconnects++
	}
	if c.profile.MalformedProb > 0 && c.rng.float64() < c.profile.MalformedProb {
		d.Malformed = true
		c.stats.Malformed++
	}
	if c.profile.BurstProb > 0 && c.rng.float64() < c.profile.BurstProb {
		d.Burst = c.profile.BurstLen
		c.stats.Bursts++
	}
	return d
}

// MalformedFrame returns a deterministic garbage byte string for a
// malformed-frame injection: a plausible-looking length prefix followed by
// bytes that are not a valid frame payload. Length varies with the draw so
// servers see a spread of truncations and oversizes.
func (c *NetChaos) MalformedFrame() []byte {
	n := 4 + c.rng.intn(28)
	b := make([]byte, n)
	for i := range b {
		b[i] = byte(c.rng.next())
	}
	// Force a hostile length prefix on half the draws: a huge declared
	// length exercises the server's frame-size limit.
	if n >= 4 && c.rng.float64() < 0.5 {
		b[0], b[1], b[2], b[3] = 0xFF, 0xFF, 0xFF, 0xFF
	}
	return b
}

// Stats returns a copy of the decider's counters.
func (c *NetChaos) Stats() NetChaosStats { return c.stats }
