// Package fault is a deterministic, seedable fault injector for the
// simulator's three signal paths:
//
//   - storage I/O: the Injector implements the storage.FaultInjector
//     contract structurally (BeforeOp) and produces transient read/write
//     errors with configurable probabilities and burst patterns;
//   - the trace stream: CorruptReader wraps any io.Reader with truncation,
//     bit-flip corruption, and premature EOF;
//   - the estimator signal: ChaosEstimator wraps any core.Estimator and
//     replaces its output with NaN or garbage values.
//
// Everything is driven by a splitmix64 generator whose entire state is one
// exported uint64, so fault schedules are reproducible from a seed and
// checkpoint/resume restores the exact fault stream. The same profile +
// seed always yields the same faults, which is what makes chaos runs
// regression-testable.
package fault

import (
	"errors"
	"fmt"
)

// TransientError marks an injected fault that is expected to succeed on
// retry (the storage layer checks faults before mutating state, so the same
// operation can safely run again). Use IsTransient to classify.
type TransientError struct {
	Op    string // operation kind: "read" or "write"
	Seq   uint64 // how many operations the injector had seen when it fired
	Burst bool   // whether the fault was part of a burst
}

// Error implements error.
func (e *TransientError) Error() string {
	kind := "fault"
	if e.Burst {
		kind = "burst fault"
	}
	return fmt.Sprintf("fault: transient %s %s at op %d", e.Op, kind, e.Seq)
}

// IsTransient reports whether err is (or wraps) an injected transient fault.
func IsTransient(err error) bool {
	var te *TransientError
	return errors.As(err, &te)
}

// rng is a splitmix64 generator. Its entire state is the single uint64, so
// snapshots are trivial and resumed runs replay the identical fault stream.
type rng struct {
	state uint64
}

func newRNG(seed int64) *rng {
	// Scramble the seed once so small seeds (0, 1, 2...) do not yield
	// correlated early outputs.
	r := &rng{state: uint64(seed)}
	r.next()
	return r
}

func (r *rng) next() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// float64 returns a uniform value in [0,1).
func (r *rng) float64() float64 {
	return float64(r.next()>>11) / (1 << 53)
}

// intn returns a uniform value in [0,n). n must be positive.
func (r *rng) intn(n int) int {
	return int(r.next() % uint64(n))
}
