package fault

import (
	"fmt"
	"io"
)

// CorruptConfig controls the trace-stream corruption applied by CorruptReader.
type CorruptConfig struct {
	// TruncateAfter cuts the stream to this many bytes and then reports EOF,
	// simulating a torn write or mid-stream crash. Zero means no truncation.
	TruncateAfter int64
	// BitFlipProb is the per-byte probability of flipping one random bit.
	BitFlipProb float64
}

// CorruptReader deterministically corrupts a byte stream: truncation to a
// fixed length, and random single-bit flips. It is how chaos runs feed
// damaged traces into trace.Reader without damaging any file on disk.
type CorruptReader struct {
	r       io.Reader
	cfg     CorruptConfig
	rng     *rng
	read    int64
	flipped uint64
}

// NewCorruptReader wraps r with deterministic, seeded corruption.
func NewCorruptReader(r io.Reader, cfg CorruptConfig, seed int64) *CorruptReader {
	return &CorruptReader{r: r, cfg: cfg, rng: newRNG(seed)}
}

// Read implements io.Reader.
func (c *CorruptReader) Read(p []byte) (int, error) {
	if c.cfg.TruncateAfter > 0 {
		remaining := c.cfg.TruncateAfter - c.read
		if remaining <= 0 {
			return 0, io.EOF
		}
		if int64(len(p)) > remaining {
			p = p[:remaining]
		}
	}
	n, err := c.r.Read(p)
	if c.cfg.BitFlipProb > 0 {
		for i := 0; i < n; i++ {
			if c.rng.float64() < c.cfg.BitFlipProb {
				p[i] ^= 1 << c.rng.intn(8)
				c.flipped++
			}
		}
	}
	c.read += int64(n)
	return n, err
}

// BytesRead returns how many bytes have passed through so far.
func (c *CorruptReader) BytesRead() int64 { return c.read }

// BitsFlipped returns how many bits have been corrupted so far.
func (c *CorruptReader) BitsFlipped() uint64 { return c.flipped }

// CorruptTrace wraps a trace stream of known size according to a profile's
// trace-fault rates. With no trace faults configured it returns r unchanged.
// The size is needed to turn the profile's truncation fraction into a byte
// offset; pass the file length.
func CorruptTrace(r io.Reader, size int64, p Profile, seed int64) (io.Reader, error) {
	if !p.Trace() {
		return r, nil
	}
	if p.TraceTruncateFrac < 0 || p.TraceTruncateFrac > 1 {
		return nil, fmt.Errorf("fault: trace truncate fraction %.3f outside [0,1]", p.TraceTruncateFrac)
	}
	cfg := CorruptConfig{BitFlipProb: p.TraceBitFlipProb}
	if p.TraceTruncateFrac > 0 {
		cfg.TruncateAfter = int64(float64(size) * p.TraceTruncateFrac)
		if cfg.TruncateAfter < 1 {
			cfg.TruncateAfter = 1
		}
	}
	return NewCorruptReader(r, cfg, seed), nil
}
