package fault

import (
	"fmt"
	"sort"
	"strings"
)

// Profile is a named bundle of fault rates covering every injection point.
// Profiles carry no randomness themselves — pair one with a seed to get a
// reproducible fault schedule.
type Profile struct {
	Name        string
	Description string

	// Storage I/O faults.
	ReadErrProb  float64 // per-read probability of a transient error
	WriteErrProb float64 // per-write probability of a transient error
	BurstProb    float64 // per-op probability that a burst starts
	BurstLen     int     // ops that fail once a burst starts

	// Estimator signal faults.
	EstNaNProb     float64 // per-estimate probability of returning NaN
	EstGarbageProb float64 // per-estimate probability of a garbage value

	// Trace stream faults (applied by CorruptReader).
	TraceTruncateFrac float64 // cut the stream at this fraction of its length (0 = off)
	TraceBitFlipProb  float64 // per-byte probability of flipping one bit

	// Disk backend faults (applied by DiskChaos around a disk.FS).
	TornWriteProb float64 // per-write probability that only a prefix lands
	FsyncLieProb  float64 // per-sync probability of lying about durability
	ShortReadProb float64 // per-read probability of returning fewer bytes
	BitRotProb    float64 // per-read probability of one flipped bit
}

// Storage reports whether the profile injects storage I/O faults.
func (p Profile) Storage() bool {
	return p.ReadErrProb > 0 || p.WriteErrProb > 0 || p.BurstProb > 0
}

// Estimator reports whether the profile injects estimator signal faults.
func (p Profile) Estimator() bool {
	return p.EstNaNProb > 0 || p.EstGarbageProb > 0
}

// Trace reports whether the profile corrupts the trace stream.
func (p Profile) Trace() bool {
	return p.TraceTruncateFrac > 0 || p.TraceBitFlipProb > 0
}

// Disk reports whether the profile injects disk backend faults.
func (p Profile) Disk() bool {
	return p.TornWriteProb > 0 || p.FsyncLieProb > 0 || p.ShortReadProb > 0 || p.BitRotProb > 0
}

// profiles is the registry of named chaos profiles. Rates are deliberately
// aggressive relative to real hardware so short simulations exercise every
// recovery path.
var profiles = map[string]Profile{
	"off": {
		Name:        "off",
		Description: "no faults (the default)",
	},
	"flaky-io": {
		Name:         "flaky-io",
		Description:  "independent transient storage errors (1% reads, 2% writes)",
		ReadErrProb:  0.01,
		WriteErrProb: 0.02,
	},
	"burst-io": {
		Name:        "burst-io",
		Description: "storage error bursts: 0.2% chance per op of 5 consecutive failures",
		BurstProb:   0.002,
		BurstLen:    5,
	},
	"trace-corrupt": {
		Name:              "trace-corrupt",
		Description:       "trace stream truncated at 90% with sparse bit flips",
		TraceTruncateFrac: 0.9,
		TraceBitFlipProb:  0.0005,
	},
	"disk-chaos": {
		Name:          "disk-chaos",
		Description:   "disk backend faults: 1% torn writes, 2% fsync lies, 0.5% short reads, 0.5% bit rot",
		TornWriteProb: 0.01,
		FsyncLieProb:  0.02,
		ShortReadProb: 0.005,
		BitRotProb:    0.005,
	},
	"estimator-dropout": {
		Name:           "estimator-dropout",
		Description:    "garbage-signal dropout: 10% NaN, 5% garbage estimates",
		EstNaNProb:     0.10,
		EstGarbageProb: 0.05,
	},
	"everything": {
		Name:           "everything",
		Description:    "all fault classes at once",
		ReadErrProb:    0.01,
		WriteErrProb:   0.02,
		BurstProb:      0.001,
		BurstLen:       3,
		EstNaNProb:     0.05,
		EstGarbageProb: 0.05,
		// Trace faults are left off here: "everything" targets live runs,
		// which would not finish on a truncated trace.
	},
}

// LookupProfile resolves a profile by name ("" means "off").
func LookupProfile(name string) (Profile, error) {
	if name == "" {
		name = "off"
	}
	p, ok := profiles[name]
	if !ok {
		return Profile{}, fmt.Errorf("fault: unknown profile %q (have %s)", name, strings.Join(ProfileNames(), ", "))
	}
	return p, nil
}

// ProfileNames lists the registered profiles in sorted order.
func ProfileNames() []string {
	names := make([]string, 0, len(profiles))
	for name := range profiles {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
