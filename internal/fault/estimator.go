package fault

import (
	"fmt"
	"math"

	"odbgc/internal/core"
	"odbgc/internal/gc"
)

// ChaosEstimator wraps a garbage estimator and corrupts its output signal:
// with configured probabilities an estimate becomes NaN (sensor dropout) or a
// uniformly random garbage value in [0, 4×database size] (sensor noise). The
// wrapped estimator still observes every collection, so its model stays warm
// while the signal path misbehaves — exactly the failure the SAGA fallback
// and sanitization paths must absorb.
type ChaosEstimator struct {
	inner       core.Estimator
	nanProb     float64
	garbageProb float64
	rng         *rng
	dropped     uint64
	garbled     uint64
}

// NewChaosEstimator wraps inner with the profile's estimator-fault rates.
func NewChaosEstimator(inner core.Estimator, p Profile, seed int64) (*ChaosEstimator, error) {
	if p.EstNaNProb < 0 || p.EstGarbageProb < 0 || p.EstNaNProb+p.EstGarbageProb > 1 {
		return nil, fmt.Errorf("fault: estimator fault probabilities %.3f+%.3f outside [0,1]",
			p.EstNaNProb, p.EstGarbageProb)
	}
	return &ChaosEstimator{
		inner:       inner,
		nanProb:     p.EstNaNProb,
		garbageProb: p.EstGarbageProb,
		rng:         newRNG(seed),
	}, nil
}

// Name implements core.Estimator.
func (c *ChaosEstimator) Name() string {
	return fmt.Sprintf("chaos(%s)", c.inner.Name())
}

// ObserveCollection implements core.Estimator; observations always reach the
// wrapped estimator untouched.
func (c *ChaosEstimator) ObserveCollection(h core.HeapState, res gc.CollectionResult) {
	c.inner.ObserveCollection(h, res)
}

// EstimateGarbage implements core.Estimator.
func (c *ChaosEstimator) EstimateGarbage(h core.HeapState) float64 {
	r := c.rng.float64()
	switch {
	case r < c.nanProb:
		c.dropped++
		return math.NaN()
	case r < c.nanProb+c.garbageProb:
		c.garbled++
		return c.rng.float64() * 4 * float64(h.DatabaseBytes())
	default:
		return c.inner.EstimateGarbage(h)
	}
}

// Dropped returns how many estimates were replaced with NaN.
func (c *ChaosEstimator) Dropped() uint64 { return c.dropped }

// Garbled returns how many estimates were replaced with garbage values.
func (c *ChaosEstimator) Garbled() uint64 { return c.garbled }

type chaosState struct {
	Inner   []byte
	RNG     uint64
	Dropped uint64
	Garbled uint64
}

// SnapshotState implements core.Snapshotter so chaos runs checkpoint/resume
// with a bit-identical fault stream.
func (c *ChaosEstimator) SnapshotState() ([]byte, error) {
	inner, err := core.SnapshotComponent(c.inner)
	if err != nil {
		return nil, err
	}
	return gobEncode(chaosState{Inner: inner, RNG: c.rng.state, Dropped: c.dropped, Garbled: c.garbled})
}

// RestoreState implements core.Snapshotter.
func (c *ChaosEstimator) RestoreState(data []byte) error {
	var st chaosState
	if err := gobDecode(data, &st); err != nil {
		return err
	}
	if err := core.RestoreComponent(c.inner, st.Inner); err != nil {
		return err
	}
	c.rng.state = st.RNG
	c.dropped = st.Dropped
	c.garbled = st.Garbled
	return nil
}
