package fault

import (
	"fmt"
	"time"

	"odbgc/internal/simerr"
)

// RetryConfig bounds the retry loop for transient storage faults.
type RetryConfig struct {
	// MaxAttempts is the total number of tries (first attempt included).
	// Zero means DefaultRetry.MaxAttempts.
	MaxAttempts int
	// BaseDelay is the backoff before the first retry; it doubles on each
	// subsequent retry up to MaxDelay.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// Sleep is called with each backoff delay. Nil means no waiting, which
	// keeps simulations deterministic and instant — the backoff schedule is
	// still computed and surfaced in the give-up error.
	Sleep func(time.Duration)
}

// DefaultRetry tolerates any single burst shorter than 8 ops.
var DefaultRetry = RetryConfig{
	MaxAttempts: 8,
	BaseDelay:   time.Millisecond,
	MaxDelay:    100 * time.Millisecond,
}

// Do runs fn, retrying with exponential backoff while it fails with a
// transient fault. Non-transient errors pass through immediately. When the
// attempt budget is exhausted the last transient error is wrapped in
// simerr.ErrFaultExhausted so callers can classify the give-up by identity;
// IsTransient still reports true on the result.
func (c RetryConfig) Do(op string, fn func() error) error {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = DefaultRetry.MaxAttempts
	}
	base := c.BaseDelay
	if base <= 0 {
		base = DefaultRetry.BaseDelay
	}
	maxDelay := c.MaxDelay
	if maxDelay <= 0 {
		maxDelay = DefaultRetry.MaxDelay
	}

	delay := base
	var err error
	for attempt := 1; ; attempt++ {
		err = fn()
		if err == nil || !IsTransient(err) {
			return err
		}
		if attempt >= attempts {
			return fmt.Errorf("fault: %w: %s gave up after %d attempts: %w",
				simerr.ErrFaultExhausted, op, attempts, err)
		}
		if c.Sleep != nil {
			c.Sleep(delay)
		}
		if delay *= 2; delay > maxDelay {
			delay = maxDelay
		}
	}
}

// Retry is a convenience for DefaultRetry.Do, shaped to plug directly into
// gc.Heap.SetRetry.
func Retry(op string, fn func() error) error {
	return DefaultRetry.Do(op, fn)
}
