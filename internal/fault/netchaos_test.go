package fault

import (
	"reflect"
	"testing"
)

func TestLookupNetProfile(t *testing.T) {
	cases := []struct {
		name    string
		wantErr bool
		active  bool
	}{
		{"", false, false}, // empty resolves to net-off
		{"net-off", false, false},
		{"net-slow", false, true},
		{"net-flaky", false, true},
		{"net-burst", false, true},
		{"net-chaos", false, true},
		{"net-bogus", true, false},
	}
	for _, c := range cases {
		p, err := LookupNetProfile(c.name)
		if (err != nil) != c.wantErr {
			t.Errorf("LookupNetProfile(%q) error = %v, wantErr %v", c.name, err, c.wantErr)
			continue
		}
		if err != nil {
			continue
		}
		if got := p.Active(); got != c.active {
			t.Errorf("LookupNetProfile(%q).Active() = %v, want %v", c.name, got, c.active)
		}
	}
}

func TestNetProfileNamesSorted(t *testing.T) {
	names := NetProfileNames()
	if len(names) != len(netProfiles) {
		t.Fatalf("NetProfileNames returned %d names, registry has %d", len(names), len(netProfiles))
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not strictly sorted: %v", names)
		}
	}
	for _, n := range names {
		p, err := LookupNetProfile(n)
		if err != nil {
			t.Errorf("listed profile %q does not resolve: %v", n, err)
		}
		if p.Name != n {
			t.Errorf("profile %q carries Name %q", n, p.Name)
		}
	}
}

// TestNetChaosDeterministic pins the core property: same profile + same seed
// means the identical decision schedule, draw for draw.
func TestNetChaosDeterministic(t *testing.T) {
	p, err := LookupNetProfile("net-chaos")
	if err != nil {
		t.Fatal(err)
	}
	const n = 500
	run := func(seed int64) []NetDecision {
		c := NewNetChaos(p, seed)
		ds := make([]NetDecision, n)
		for i := range ds {
			ds[i] = c.Next()
		}
		return ds
	}
	a, b := run(42), run(42)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different chaos schedules")
	}
	other := run(43)
	if reflect.DeepEqual(a, other) {
		t.Fatal("different seeds produced identical 500-draw schedules (rng is suspect)")
	}
}

// TestNetChaosOffIsQuiet pins that the default profile never injects: every
// decision is the identity (full speed, no disconnect, no garbage, no burst).
func TestNetChaosOffIsQuiet(t *testing.T) {
	p, err := LookupNetProfile("net-off")
	if err != nil {
		t.Fatal(err)
	}
	c := NewNetChaos(p, 7)
	for i := 0; i < 1000; i++ {
		d := c.Next()
		if d.SlowFactor != 1 || d.Disconnect || d.Malformed || d.Burst != 0 {
			t.Fatalf("net-off injected chaos at draw %d: %+v", i, d)
		}
	}
	st := c.Stats()
	want := NetChaosStats{Requests: 1000}
	if st != want {
		t.Fatalf("net-off stats = %+v, want %+v", st, want)
	}
}

// TestNetChaosRatesRoughlyHonored sanity-checks that over many draws each
// knob fires in the right ballpark (loose 2x bounds — this is a smoke test
// of wiring, not a statistics test).
func TestNetChaosRatesRoughlyHonored(t *testing.T) {
	p, err := LookupNetProfile("net-chaos")
	if err != nil {
		t.Fatal(err)
	}
	c := NewNetChaos(p, 12345)
	const n = 20000
	for i := 0; i < n; i++ {
		d := c.Next()
		if d.SlowFactor < 1 || d.SlowFactor > p.SlowFactorMax {
			t.Fatalf("slow factor %v outside [1, %v]", d.SlowFactor, p.SlowFactorMax)
		}
		if d.Burst != 0 && d.Burst != p.BurstLen {
			t.Fatalf("burst %d, want 0 or %d", d.Burst, p.BurstLen)
		}
	}
	st := c.Stats()
	check := func(name string, got uint64, prob float64) {
		t.Helper()
		lo, hi := uint64(float64(n)*prob/2), uint64(float64(n)*prob*2)
		if got < lo || got > hi {
			t.Errorf("%s fired %d times over %d draws at p=%v, want within [%d, %d]", name, got, n, prob, lo, hi)
		}
	}
	check("slow", st.Slow, p.SlowProb)
	check("disconnect", st.Disconnects, p.DisconnectProb)
	check("malformed", st.Malformed, p.MalformedProb)
	check("burst", st.Bursts, p.BurstProb)
}

func TestMalformedFrameDeterministic(t *testing.T) {
	p, err := LookupNetProfile("net-flaky")
	if err != nil {
		t.Fatal(err)
	}
	a, b := NewNetChaos(p, 99), NewNetChaos(p, 99)
	for i := 0; i < 50; i++ {
		fa, fb := a.MalformedFrame(), b.MalformedFrame()
		if !reflect.DeepEqual(fa, fb) {
			t.Fatalf("draw %d: same seed produced different malformed frames", i)
		}
		if len(fa) < 4 {
			t.Fatalf("draw %d: frame shorter than a length prefix: %d bytes", i, len(fa))
		}
	}
}
