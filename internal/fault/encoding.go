package fault

import (
	"bytes"
	"encoding/gob"
)

func gobEncode(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func gobDecode(data []byte, v any) error {
	return gob.NewDecoder(bytes.NewReader(data)).Decode(v)
}
