package fault

import "fmt"

// InjectorStats counts what the injector has done.
type InjectorStats struct {
	Ops      uint64 // operations inspected
	Injected uint64 // faults returned
	Bursts   uint64 // bursts started
}

// Injector produces deterministic transient storage faults. It satisfies the
// storage.FaultInjector contract structurally: BeforeOp is called at the
// entry of every storage operation, before any state mutates, so a returned
// fault aborts the operation cleanly and a retry is safe.
type Injector struct {
	profile   Profile
	rng       *rng
	burstLeft int
	stats     InjectorStats
	hook      func(op string, seq uint64, burst bool)
}

// SetHook installs a callback fired on every injected fault (after the
// stats update, before the error returns). The hook observes only — it is
// not part of the injector's checkpointable state, so observers must be
// reinstalled after Restore. A nil hook removes it.
func (in *Injector) SetHook(hook func(op string, seq uint64, burst bool)) { in.hook = hook }

// fire reports one injected fault to the hook, if any.
func (in *Injector) fire(op string, burst bool) {
	if in.hook != nil {
		in.hook(op, in.stats.Ops, burst)
	}
}

// NewInjector builds an injector for the profile's storage-fault rates,
// seeded so the fault schedule is reproducible.
func NewInjector(profile Profile, seed int64) *Injector {
	return &Injector{profile: profile, rng: newRNG(seed)}
}

// BeforeOp implements the storage.FaultInjector contract.
func (in *Injector) BeforeOp(write bool) error {
	in.stats.Ops++
	op := "read"
	prob := in.profile.ReadErrProb
	if write {
		op = "write"
		prob = in.profile.WriteErrProb
	}

	// An active burst fails every operation regardless of kind.
	if in.burstLeft > 0 {
		in.burstLeft--
		in.stats.Injected++
		in.fire(op, true)
		return &TransientError{Op: op, Seq: in.stats.Ops, Burst: true}
	}
	if in.profile.BurstProb > 0 && in.rng.float64() < in.profile.BurstProb {
		in.stats.Bursts++
		in.stats.Injected++
		if in.profile.BurstLen > 1 {
			in.burstLeft = in.profile.BurstLen - 1
		}
		in.fire(op, true)
		return &TransientError{Op: op, Seq: in.stats.Ops, Burst: true}
	}
	if prob > 0 && in.rng.float64() < prob {
		in.stats.Injected++
		in.fire(op, false)
		return &TransientError{Op: op, Seq: in.stats.Ops}
	}
	return nil
}

// Stats returns a copy of the injector's counters.
func (in *Injector) Stats() InjectorStats { return in.stats }

// InjectorState is the Injector's complete mutable state, exported so
// checkpoints can capture it and a resumed run replays the identical fault
// stream.
type InjectorState struct {
	RNG       uint64
	BurstLeft int
	Stats     InjectorStats
}

// Snapshot captures the injector's state.
func (in *Injector) Snapshot() InjectorState {
	return InjectorState{RNG: in.rng.state, BurstLeft: in.burstLeft, Stats: in.stats}
}

// Restore rewinds the injector to a previously captured state.
func (in *Injector) Restore(st InjectorState) error {
	if st.BurstLeft < 0 {
		return fmt.Errorf("fault: negative burstLeft %d in injector state", st.BurstLeft)
	}
	in.rng.state = st.RNG
	in.burstLeft = st.BurstLeft
	in.stats = st.Stats
	return nil
}
