package gc

import (
	"math/rand"
	"testing"
	"testing/quick"

	"odbgc/internal/objstore"
	"odbgc/internal/storage"
)

// TestHeapRandomOpsProperty drives a heap through random create / link /
// unlink / collect sequences while maintaining an exact shadow model of
// reachability, verifying after every collection that:
//
//   - the collector never reclaims a reachable object,
//   - all incremental bookkeeping (remsets, oracle ledger, placements)
//     matches ground truth,
//   - repeated full sweeps eventually reclaim every acyclic dead object.
func TestHeapRandomOpsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		disk, err := storage.NewManager(storage.Config{PageSize: 120, PagesPerPartition: 3, BufferPages: 3})
		if err != nil {
			return false
		}
		st := objstore.NewStore()
		h := NewHeap(st, disk)

		// The shadow model: alive OIDs and, to avoid uncollectable
		// cross-partition cycles, a strictly layered graph — an object may
		// only point at objects created before it... inverted: links only
		// from NEWER to OLDER objects can still form no cycles. We allow
		// links old->new and new->old but forbid closing cycles by only
		// ever linking from lower OID to higher OID.
		var oids []objstore.OID
		next := objstore.OID(1)
		declaredDead := map[objstore.OID]bool{}

		// Root anchor.
		if err := h.Create(next, objstore.ClassModule, 60, 6); err != nil {
			return false
		}
		if err := st.AddRoot(next); err != nil {
			return false
		}
		oids = append(oids, next)
		next++

		reachable := func() map[objstore.OID]struct{} { return st.Reachable() }

		// declareNewDead syncs the oracle with ground truth after an
		// unlink: everything alive in the store but unreachable and not
		// yet declared is newly dead.
		declareNewDead := func() bool {
			live := reachable()
			var newly []objstore.OID
			st.ForEach(func(o *objstore.Object) {
				if _, ok := live[o.OID]; ok {
					return
				}
				if !declaredDead[o.OID] {
					newly = append(newly, o.OID)
					declaredDead[o.OID] = true
				}
			})
			return h.RecordOracleDead(newly) == nil
		}

		for step := 0; step < 150; step++ {
			switch op := rng.Intn(10); {
			case op < 4: // create, linked from a random live object with a free slot
				size := 20 + rng.Intn(100)
				if err := h.Create(next, objstore.ClassAtomicPart, size, 1+rng.Intn(3)); err != nil {
					return false
				}
				// Find a live linker among existing objects. (A real
				// application cannot store through an unreachable object.)
				linked := false
				for tries := 0; tries < 20 && !linked; tries++ {
					src := oids[rng.Intn(len(oids))]
					so := st.Get(src)
					if so == nil || declaredDead[src] {
						continue
					}
					for i, slot := range so.Slots {
						if slot.IsNil() {
							if err := h.Overwrite(src, i, objstore.NilOID, next, true); err != nil {
								return false
							}
							linked = true
							break
						}
					}
				}
				oids = append(oids, next)
				next++
				if !linked {
					// Unreferenced from birth: immediately dead.
					if !declareNewDead() {
						return false
					}
				}
			case op < 6: // link lower -> higher OID (acyclic by construction)
				src := oids[rng.Intn(len(oids))]
				so := st.Get(src)
				if so == nil || declaredDead[src] {
					continue
				}
				dst := oids[rng.Intn(len(oids))]
				// Only live targets: an application holds references to
				// reachable objects only, so it can never resurrect garbage.
				if dst <= src || st.Get(dst) == nil || declaredDead[dst] {
					continue
				}
				for i, slot := range so.Slots {
					if slot.IsNil() {
						if err := h.Overwrite(src, i, objstore.NilOID, dst, false); err != nil {
							return false
						}
						break
					}
				}
			case op < 8: // unlink a random non-nil slot
				src := oids[rng.Intn(len(oids))]
				so := st.Get(src)
				if so == nil {
					continue
				}
				for i, slot := range so.Slots {
					if !slot.IsNil() {
						if err := h.Overwrite(src, i, slot, objstore.NilOID, false); err != nil {
							return false
						}
						if !declareNewDead() {
							return false
						}
						break
					}
				}
			default: // collect a random partition
				if n := disk.NumPartitions(); n > 0 {
					res, err := h.Collect(storage.PartitionID(rng.Intn(n)))
					if err != nil {
						t.Logf("seed %d step %d: collect: %v", seed, step, err)
						return false
					}
					_ = res
					if err := h.CheckInvariants(); err != nil {
						t.Logf("seed %d step %d: invariants: %v", seed, step, err)
						return false
					}
				}
			}
		}

		// Final sweep: collect every partition repeatedly; since the graph
		// is acyclic, all garbage must eventually be reclaimed.
		for pass := 0; pass < disk.NumPartitions()+2; pass++ {
			for p := 0; p < disk.NumPartitions(); p++ {
				if _, err := h.Collect(storage.PartitionID(p)); err != nil {
					t.Logf("seed %d final sweep: %v", seed, err)
					return false
				}
			}
		}
		if h.ActualGarbageBytes() != 0 {
			t.Logf("seed %d: %d garbage bytes survived a full sweep of an acyclic heap",
				seed, h.ActualGarbageBytes())
			return false
		}
		if err := h.CheckInvariants(); err != nil {
			t.Logf("seed %d: final invariants: %v", seed, err)
			return false
		}
		if err := h.CheckOracleComplete(); err != nil {
			t.Logf("seed %d: oracle completeness: %v", seed, err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
