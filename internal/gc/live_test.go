package gc

import (
	"testing"
)

// TestOraclelessCollectReclaims exercises the live-serving mode: no
// RecordOracleDead calls, yet Collect reclaims whatever tracing finds and
// the cumulative ledger stays consistent (created == collected, outstanding
// oracle garbage zero).
func TestOraclelessCollectReclaims(t *testing.T) {
	h := testHeap(t)
	h.SetOracleless(true)
	mk(t, h, 1, 100, 1) // root
	mk(t, h, 2, 100, 0) // reachable from 1
	mk(t, h, 3, 100, 0) // garbage after unlink — never declared to an oracle
	root(t, h, 1)
	link(t, h, 1, 0, 3)
	unlink(t, h, 1, 0, 3)
	link(t, h, 1, 0, 2)

	res, err := h.Collect(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedObjects != 1 || res.ReclaimedBytes != 100 {
		t.Fatalf("reclaimed %d objects / %d bytes, want 1 / 100", res.ReclaimedObjects, res.ReclaimedBytes)
	}
	if h.Store().Get(3) != nil {
		t.Error("object 3 survived an oracleless collection")
	}
	if got := h.TotalGarbageBytes(); got != 100 {
		t.Errorf("TotalGarbageBytes = %d, want 100 (accounted at reclaim time)", got)
	}
	if got := h.TotalCollectedBytes(); got != 100 {
		t.Errorf("TotalCollectedBytes = %d, want 100", got)
	}
	if got := h.ActualGarbageBytes(); got != 0 {
		t.Errorf("ActualGarbageBytes = %d, want 0 (live mode has no oracle)", got)
	}
	if err := h.CheckInvariants(); err != nil {
		t.Errorf("invariants after oracleless collect: %v", err)
	}
	if err := h.CheckOracleComplete(); err != nil {
		t.Errorf("CheckOracleComplete should pass vacuously in live mode: %v", err)
	}
}

// TestOraclelessSnapshotRoundTrip pins the mode flag through checkpointing:
// a restored live heap keeps collecting without oracle annotations.
func TestOraclelessSnapshotRoundTrip(t *testing.T) {
	h := testHeap(t)
	h.SetOracleless(true)
	mk(t, h, 1, 100, 1)
	mk(t, h, 2, 100, 0)
	root(t, h, 1)
	link(t, h, 1, 0, 2)
	unlink(t, h, 1, 0, 2)

	st := h.Snapshot()
	if !st.Oracleless {
		t.Fatal("snapshot dropped the oracleless flag")
	}
	h2, err := RestoreHeap(st)
	if err != nil {
		t.Fatal(err)
	}
	if !h2.Oracleless() {
		t.Fatal("restored heap lost live mode")
	}
	res, err := h2.Collect(0)
	if err != nil {
		t.Fatalf("restored live heap refused to collect: %v", err)
	}
	if res.ReclaimedObjects != 1 {
		t.Errorf("reclaimed %d objects, want 1", res.ReclaimedObjects)
	}
}

// TestOracleModeStillRefusesUndeclared pins that the default (trace replay)
// mode kept its conservative cross-check after the live-mode change.
func TestOracleModeStillRefusesUndeclared(t *testing.T) {
	h := testHeap(t)
	mk(t, h, 1, 100, 1)
	mk(t, h, 2, 100, 0)
	root(t, h, 1)
	link(t, h, 1, 0, 2)
	unlink(t, h, 1, 0, 2)
	// No RecordOracleDead: replay mode must refuse to reclaim object 2.
	if _, err := h.Collect(0); err == nil {
		t.Fatal("oracle mode reclaimed undeclared garbage without error")
	}
}
