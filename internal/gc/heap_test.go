package gc

import (
	"strings"
	"testing"

	"odbgc/internal/objstore"
	"odbgc/internal/storage"
)

// testHeap builds a heap over a tiny geometry: 100-byte pages, 4-page
// (400-byte) partitions, 4-page buffer. Objects of size 100 fill exactly
// one page, so placement is easy to reason about.
func testHeap(t *testing.T) *Heap {
	t.Helper()
	disk, err := storage.NewManager(storage.Config{PageSize: 100, PagesPerPartition: 4, BufferPages: 4})
	if err != nil {
		t.Fatal(err)
	}
	return NewHeap(objstore.NewStore(), disk)
}

// mk creates an object of the given size with nslots pointer slots.
func mk(t *testing.T, h *Heap, oid objstore.OID, size, nslots int) {
	t.Helper()
	if err := h.Create(oid, objstore.ClassAtomicPart, size, nslots); err != nil {
		t.Fatal(err)
	}
}

// link performs a non-init overwrite src[slot] = dst, expecting old nil.
func link(t *testing.T, h *Heap, src objstore.OID, slot int, dst objstore.OID) {
	t.Helper()
	if err := h.Overwrite(src, slot, objstore.NilOID, dst, false); err != nil {
		t.Fatal(err)
	}
}

// unlink overwrites src[slot] from old to nil.
func unlink(t *testing.T, h *Heap, src objstore.OID, slot int, old objstore.OID) {
	t.Helper()
	if err := h.Overwrite(src, slot, old, objstore.NilOID, false); err != nil {
		t.Fatal(err)
	}
}

func root(t *testing.T, h *Heap, oid objstore.OID) {
	t.Helper()
	if err := h.Store().AddRoot(oid); err != nil {
		t.Fatal(err)
	}
}

func mustPart(t *testing.T, h *Heap, oid objstore.OID) storage.PartitionID {
	t.Helper()
	p, ok := h.Disk().PartitionOf(oid)
	if !ok {
		t.Fatalf("object %v unplaced", oid)
	}
	return p
}

func TestCollectReclaimsUnreachable(t *testing.T) {
	h := testHeap(t)
	mk(t, h, 1, 100, 1) // root
	mk(t, h, 2, 100, 0) // reachable from 1
	mk(t, h, 3, 100, 0) // garbage after unlink
	root(t, h, 1)
	link(t, h, 1, 0, 3)
	unlink(t, h, 1, 0, 3)
	link(t, h, 1, 0, 2)
	if err := h.RecordOracleDead([]objstore.OID{3}); err != nil {
		t.Fatal(err)
	}

	res, err := h.Collect(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedObjects != 1 || res.ReclaimedBytes != 100 {
		t.Errorf("reclaim = %+v", res)
	}
	if res.LiveObjects != 2 || res.LiveBytes != 200 {
		t.Errorf("live = %+v", res)
	}
	if h.Store().Get(3) != nil {
		t.Error("dead object still in store")
	}
	if h.ActualGarbageBytes() != 0 {
		t.Errorf("garbage after collect = %d", h.ActualGarbageBytes())
	}
	if h.TotalCollectedBytes() != 100 || h.TotalGarbageBytes() != 100 {
		t.Errorf("ledger: collected=%d created=%d", h.TotalCollectedBytes(), h.TotalGarbageBytes())
	}
	if h.Collections() != 1 {
		t.Errorf("collections = %d", h.Collections())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCollectKeepsExternallyReferenced(t *testing.T) {
	h := testHeap(t)
	// Partition 0: root 1, object 2, and two fillers. Partition 1: object
	// 3, referenced only from partition 0 — not a database root, but the
	// remembered set must keep it alive when partition 1 is collected.
	mk(t, h, 1, 100, 4)
	mk(t, h, 2, 100, 0)
	mk(t, h, 10, 100, 0)
	mk(t, h, 11, 100, 0)
	mk(t, h, 3, 100, 0)
	root(t, h, 1)
	link(t, h, 1, 0, 2)
	link(t, h, 1, 2, 10)
	link(t, h, 1, 3, 11)
	link(t, h, 1, 1, 3)

	p3 := mustPart(t, h, 3)
	if p3 == mustPart(t, h, 1) {
		t.Fatalf("test setup: 3 not in a different partition")
	}
	if !h.ExternallyReferenced(p3, 3) {
		t.Fatal("remset missing external reference to 3")
	}
	res, err := h.Collect(p3)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedObjects != 0 {
		t.Errorf("externally referenced object reclaimed: %+v", res)
	}
	if h.Store().Get(3) == nil {
		t.Error("object 3 vanished")
	}
}

func TestRemsetFollowsOverwrites(t *testing.T) {
	h := testHeap(t)
	mk(t, h, 1, 100, 1) // partition 0
	mk(t, h, 6, 100, 2) // partition 0: second cross-partition source
	mk(t, h, 3, 100, 0)
	mk(t, h, 4, 100, 0)
	mk(t, h, 5, 100, 0) // partition 1
	root(t, h, 1)

	p5 := mustPart(t, h, 5)
	if p5 == mustPart(t, h, 1) || p5 == mustPart(t, h, 6) {
		t.Fatal("setup: 5 must live in its own partition")
	}
	link(t, h, 1, 0, 5)
	if !h.ExternallyReferenced(p5, 5) {
		t.Error("remset entry missing after link")
	}
	unlink(t, h, 1, 0, 5)
	if h.ExternallyReferenced(p5, 5) {
		t.Error("remset entry not removed after unlink")
	}
	// Two references from the same source: both must be dropped before the
	// entry disappears.
	link(t, h, 6, 0, 5)
	link(t, h, 6, 1, 5)
	unlink(t, h, 6, 0, 5)
	if !h.ExternallyReferenced(p5, 5) {
		t.Error("remset entry dropped while one reference remains")
	}
	unlink(t, h, 6, 1, 5)
	if h.ExternallyReferenced(p5, 5) {
		t.Error("remset entry kept after all references removed")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCrossPartitionChainNeedsTwoPasses verifies the multi-pass reclamation
// the paper's collector exhibits: a dead object in partition B stays pinned
// by a dead referencer in partition A until A is collected.
func TestCrossPartitionChainNeedsTwoPasses(t *testing.T) {
	h := testHeap(t)
	mk(t, h, 1, 100, 3) // root, partition 0
	mk(t, h, 2, 100, 1) // partition 0; will die holding a ref to 3
	mk(t, h, 10, 100, 0)
	mk(t, h, 11, 100, 0) // fillers completing partition 0
	mk(t, h, 3, 100, 0)  // partition 1; dead but pinned by 2
	root(t, h, 1)
	link(t, h, 1, 1, 10)
	link(t, h, 1, 2, 11)
	link(t, h, 1, 0, 2)
	link(t, h, 2, 0, 3)
	unlink(t, h, 1, 0, 2) // 2 and 3 both die
	if err := h.RecordOracleDead([]objstore.OID{2, 3}); err != nil {
		t.Fatal(err)
	}
	pA := mustPart(t, h, 2)
	pB := mustPart(t, h, 3)
	if pA == pB {
		t.Fatalf("setup: expected different partitions, got %d/%d", pA, pB)
	}

	// Pass 1 on B: 3 survives, pinned by dead 2's remembered reference.
	res, err := h.Collect(pB)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedObjects != 0 {
		t.Fatalf("pinned object reclaimed prematurely")
	}
	// Pass 2 on A: 2 dies, dropping its remset entry.
	res, err = h.Collect(pA)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedObjects != 1 || res.ReclaimedBytes != 100 {
		t.Fatalf("pass 2 = %+v", res)
	}
	// Pass 3 on B: 3 is now collectable.
	res, err = h.Collect(pB)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedObjects != 1 || res.ReclaimedBytes != 100 {
		t.Fatalf("pass 3 = %+v", res)
	}
	if h.ActualGarbageBytes() != 0 {
		t.Errorf("garbage left: %d", h.ActualGarbageBytes())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

// TestCrossPartitionCycleIsNeverReclaimed documents the partitioned
// collector's conservatism: a dead cycle spanning two partitions pins
// itself forever, because pointers leaving the collected partition are not
// traversed. (The OO7 generator's deletion protocol deliberately severs
// such cycles; see oo7.deleteHalf.)
func TestCrossPartitionCycleIsNeverReclaimed(t *testing.T) {
	h := testHeap(t)
	mk(t, h, 1, 100, 4) // root, partition 0
	mk(t, h, 2, 100, 1) // partition 0
	mk(t, h, 10, 100, 0)
	mk(t, h, 11, 100, 0) // fillers completing partition 0
	mk(t, h, 3, 100, 1)  // partition 1
	root(t, h, 1)
	link(t, h, 1, 2, 10)
	link(t, h, 1, 3, 11)
	link(t, h, 1, 0, 2)
	link(t, h, 1, 1, 3)
	link(t, h, 2, 0, 3) // cross refs both ways
	link(t, h, 3, 0, 2)
	unlink(t, h, 1, 0, 2)
	unlink(t, h, 1, 1, 3) // 2 <-> 3 now a dead cross-partition cycle
	if err := h.RecordOracleDead([]objstore.OID{2, 3}); err != nil {
		t.Fatal(err)
	}

	for pass := 0; pass < 4; pass++ {
		for p := 0; p < h.Disk().NumPartitions(); p++ {
			res, err := h.Collect(storage.PartitionID(p))
			if err != nil {
				t.Fatal(err)
			}
			if res.ReclaimedObjects != 0 {
				t.Fatalf("cross-partition cycle member reclaimed on pass %d", pass)
			}
		}
	}
	if h.ActualGarbageBytes() != 200 {
		t.Errorf("garbage = %d, want the full cycle (200)", h.ActualGarbageBytes())
	}
	if err := h.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCollectorRefusesUndeclaredGarbage(t *testing.T) {
	h := testHeap(t)
	mk(t, h, 1, 100, 1)
	mk(t, h, 2, 100, 0)
	root(t, h, 1)
	link(t, h, 1, 0, 2)
	unlink(t, h, 1, 0, 2)
	// The oracle was never told object 2 died: collection must fail loudly
	// rather than silently diverge from ground truth.
	_, err := h.Collect(0)
	if err == nil || !strings.Contains(err.Error(), "oracle believes live") {
		t.Errorf("error = %v, want oracle mismatch", err)
	}
}

func TestOverwriteValidation(t *testing.T) {
	h := testHeap(t)
	mk(t, h, 1, 100, 1)
	mk(t, h, 2, 100, 0)
	if err := h.Overwrite(1, 0, 2, 2, false); err == nil {
		t.Error("wrong wantOld accepted")
	}
	if err := h.Overwrite(99, 0, objstore.NilOID, 2, false); err == nil {
		t.Error("absent source accepted")
	}
	if err := h.RecordOracleDead([]objstore.OID{99}); err == nil {
		t.Error("oracle-dead for absent object accepted")
	}
	link(t, h, 1, 0, 2)
	unlink(t, h, 1, 0, 2)
	if err := h.RecordOracleDead([]objstore.OID{2}); err != nil {
		t.Fatal(err)
	}
	if err := h.RecordOracleDead([]objstore.OID{2}); err == nil {
		t.Error("double oracle-dead accepted")
	}
}

func TestClocksAndPOCounters(t *testing.T) {
	h := testHeap(t)
	mk(t, h, 1, 100, 2)
	mk(t, h, 2, 100, 0)
	root(t, h, 1)

	if err := h.Overwrite(1, 0, objstore.NilOID, 2, true); err != nil { // init store
		t.Fatal(err)
	}
	if h.OverwriteClock() != 0 {
		t.Error("init store advanced the overwrite clock")
	}
	link(t, h, 1, 1, 2) // non-init, old nil: clock ticks, no PO
	if h.OverwriteClock() != 1 {
		t.Errorf("clock = %d, want 1", h.OverwriteClock())
	}
	if h.SumPartitionOverwrites() != 0 {
		t.Error("PO counted for nil old target")
	}
	unlink(t, h, 1, 1, 2) // old target in partition 0: PO(0)++
	if h.PartitionOverwrites(0) != 1 || h.SumPartitionOverwrites() != 1 {
		t.Errorf("PO(0) = %d, sum = %d", h.PartitionOverwrites(0), h.SumPartitionOverwrites())
	}
	// A collection resets the collected partition's PO.
	if err := h.Overwrite(1, 0, 2, objstore.NilOID, false); err != nil {
		t.Fatal(err)
	}
	if err := h.RecordOracleDead([]objstore.OID{2}); err != nil {
		t.Fatal(err)
	}
	res, err := h.Collect(0)
	if err != nil {
		t.Fatal(err)
	}
	if res.PartitionPO != 2 {
		t.Errorf("collection saw PO %d, want 2", res.PartitionPO)
	}
	if h.PartitionOverwrites(0) != 0 {
		t.Error("PO not reset by collection")
	}
}

func TestPhysicalFixupsCostMoreIO(t *testing.T) {
	run := func(fixups bool) uint64 {
		h := testHeap(t)
		h.SetPhysicalFixups(fixups)
		// Partition 0: root 1 and three cross-partition referencers.
		mk(t, h, 1, 100, 3)
		mk(t, h, 2, 100, 1)
		mk(t, h, 3, 100, 1)
		mk(t, h, 4, 100, 1)
		// Partition 1: three referenced objects plus garbage.
		mk(t, h, 5, 100, 0)
		mk(t, h, 6, 100, 0)
		mk(t, h, 7, 100, 0)
		mk(t, h, 8, 100, 0)
		root(t, h, 1)
		link(t, h, 1, 0, 2)
		link(t, h, 1, 1, 3)
		link(t, h, 1, 2, 4)
		link(t, h, 2, 0, 5)
		link(t, h, 3, 0, 6)
		link(t, h, 4, 0, 7)
		if err := h.RecordOracleDead([]objstore.OID{8}); err != nil {
			t.Fatal(err)
		}
		res, err := h.Collect(mustPart(t, h, 5))
		if err != nil {
			t.Fatal(err)
		}
		if res.ReclaimedObjects != 1 {
			t.Fatalf("reclaim = %+v", res)
		}
		return res.IO.GCIO()
	}
	withOut := run(false)
	with := run(true)
	t.Logf("GC I/O per collection: logical OIDs %d, physical fixups %d", withOut, with)
	if with <= withOut {
		t.Errorf("physical fixups (%d) not more expensive than logical OIDs (%d)", with, withOut)
	}
}

func TestDatabaseBytes(t *testing.T) {
	h := testHeap(t)
	mk(t, h, 1, 100, 0)
	mk(t, h, 2, 50, 0)
	if h.DatabaseBytes() != 150 {
		t.Errorf("DatabaseBytes = %d, want 150", h.DatabaseBytes())
	}
}

func TestCollectUnknownPartition(t *testing.T) {
	h := testHeap(t)
	if _, err := h.Collect(3); err == nil {
		t.Error("collect of unknown partition accepted")
	}
}
