package gc

import (
	"fmt"
	"sort"

	"odbgc/internal/objstore"
	"odbgc/internal/storage"
)

// RemsetEntry is one remembered-set counter in flattened, sortable form.
type RemsetEntry struct {
	Part  storage.PartitionID
	Dst   objstore.OID
	Src   objstore.OID
	Count int
}

// PartitionCounter pairs a partition with an integer counter (overwrites or
// oracle garbage bytes).
type PartitionCounter struct {
	Part  storage.PartitionID
	Value int
}

// HeapSnapshot is a checkpointable image of the collector bookkeeping plus
// the wrapped store and storage manager. Slices are sorted so the encoded
// form is deterministic.
type HeapSnapshot struct {
	Store *objstore.StoreSnapshot
	Disk  *storage.ManagerState

	Remset          []RemsetEntry
	Overwrites      []PartitionCounter // po, by partition
	TotalOverwrites uint64

	OracleDead      []objstore.OID // ascending
	OracleDeadBytes []PartitionCounter

	TotalGarbage     uint64
	TotalCollected   uint64
	TotalCollections uint64
	PhysicalFixups   bool
	Oracleless       bool
}

func sortCounters(cs []PartitionCounter) {
	sort.Slice(cs, func(i, j int) bool { return cs[i].Part < cs[j].Part })
}

// Snapshot captures the heap, its object store, and its storage manager.
func (h *Heap) Snapshot() *HeapSnapshot {
	st := &HeapSnapshot{
		Store:            h.store.Snapshot(),
		Disk:             h.disk.Snapshot(),
		TotalOverwrites:  h.totalOverwrites,
		TotalGarbage:     h.totalGarbage,
		TotalCollected:   h.totalCollected,
		TotalCollections: h.totalCollections,
		PhysicalFixups:   h.physicalFixups,
		Oracleless:       h.oracleless,
	}
	for p, m := range h.remset {
		for dst, srcs := range m {
			for src, n := range srcs {
				st.Remset = append(st.Remset, RemsetEntry{Part: p, Dst: dst, Src: src, Count: n})
			}
		}
	}
	sort.Slice(st.Remset, func(i, j int) bool {
		a, b := st.Remset[i], st.Remset[j]
		if a.Part != b.Part {
			return a.Part < b.Part
		}
		if a.Dst != b.Dst {
			return a.Dst < b.Dst
		}
		return a.Src < b.Src
	})
	for p, n := range h.po {
		if n != 0 {
			st.Overwrites = append(st.Overwrites, PartitionCounter{Part: p, Value: n})
		}
	}
	sortCounters(st.Overwrites)
	for oid := range h.oracleDead {
		st.OracleDead = append(st.OracleDead, oid)
	}
	sort.Slice(st.OracleDead, func(i, j int) bool { return st.OracleDead[i] < st.OracleDead[j] })
	for p, b := range h.oracleDeadBytes {
		if b != 0 {
			st.OracleDeadBytes = append(st.OracleDeadBytes, PartitionCounter{Part: p, Value: b})
		}
	}
	sortCounters(st.OracleDeadBytes)
	return st
}

// RestoreHeap rebuilds a heap (with its store and storage manager) from a
// snapshot and cross-validates the result.
func RestoreHeap(st *HeapSnapshot) (*Heap, error) {
	if st == nil {
		return nil, fmt.Errorf("gc: nil heap snapshot")
	}
	store, err := objstore.RestoreStore(st.Store)
	if err != nil {
		return nil, err
	}
	disk, err := storage.RestoreManager(st.Disk)
	if err != nil {
		return nil, err
	}
	h := NewHeap(store, disk)
	h.physicalFixups = st.PhysicalFixups
	h.oracleless = st.Oracleless
	for _, e := range st.Remset {
		if e.Count <= 0 {
			return nil, fmt.Errorf("gc: non-positive remset count %d for %v->%v", e.Count, e.Src, e.Dst)
		}
		m := h.remset[e.Part]
		if m == nil {
			m = make(map[objstore.OID]map[objstore.OID]int)
			h.remset[e.Part] = m
		}
		srcs := m[e.Dst]
		if srcs == nil {
			srcs = make(map[objstore.OID]int)
			m[e.Dst] = srcs
		}
		srcs[e.Src] = e.Count
	}
	for _, c := range st.Overwrites {
		h.po[c.Part] = c.Value
	}
	for _, oid := range st.OracleDead {
		if store.Get(oid) == nil {
			return nil, fmt.Errorf("gc: oracle-dead object %v missing from snapshot store", oid)
		}
		h.oracleDead[oid] = struct{}{}
	}
	for _, c := range st.OracleDeadBytes {
		h.oracleDeadBytes[c.Part] = c.Value
	}
	h.totalOverwrites = st.TotalOverwrites
	h.totalGarbage = st.TotalGarbage
	h.totalCollected = st.TotalCollected
	h.totalCollections = st.TotalCollections
	if err := h.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("gc: restored heap inconsistent: %w", err)
	}
	return h, nil
}
