// Package gc implements the partitioned copying garbage collector the paper
// evaluates its rate policies in (the collector of Cook, Wolf, Zorn,
// SIGMOD'94): a Cheney breadth-first copying collector that compacts one
// partition at a time, with per-partition remembered sets so that pointers
// entering a partition from outside act as collection roots.
//
// The package also maintains the two bookkeeping streams the rate policies
// feed on:
//
//   - per-partition pointer-overwrite counters (the paper's fine-grain
//     state, shared with the UPDATEDPOINTER partition-selection policy), and
//   - oracle garbage accounting: the simulator reports exactly which
//     objects each overwrite made unreachable, so "actual garbage" is known
//     at all times. The collector itself never consults the oracle.
package gc

import (
	"fmt"
	"slices"

	"odbgc/internal/objstore"
	"odbgc/internal/storage"
)

// Heap couples the logical object store with its physical placement and
// carries the collector state: remembered sets, overwrite counters, and the
// oracle garbage ledger.
type Heap struct {
	store *objstore.Store
	disk  *storage.Manager

	// remset[p][dst][src] counts pointer slots in object src (placed
	// outside partition p) that reference object dst (placed in p).
	remset map[storage.PartitionID]map[objstore.OID]map[objstore.OID]int

	// po[p] counts pointer overwrites whose old target lay in partition p
	// since p was last collected (the paper's FGS state; also drives
	// UPDATEDPOINTER selection).
	po map[storage.PartitionID]int

	// totalOverwrites is the SAGA clock: every non-initializing pointer
	// overwrite ticks it once.
	totalOverwrites uint64

	// Oracle ledger. oracleDead holds objects known unreachable but not yet
	// reclaimed; oracleDeadBytes indexes their bytes by partition.
	oracleDead       map[objstore.OID]struct{}
	oracleDeadBytes  map[storage.PartitionID]int
	totalGarbage     uint64 // cumulative bytes of garbage ever created
	totalCollected   uint64 // cumulative bytes reclaimed by the collector
	totalCollections uint64

	// physicalFixups, when true, charges collector I/O for rewriting every
	// external object whose pointers into a compacted partition must be
	// updated (a physical-pointer store). The default models the common
	// ODBMS design of logical OIDs resolved through a resident object
	// table, where relocation within a partition costs no extra page I/O.
	physicalFixups bool

	// oracleless, when true, runs the heap without the trace oracle: live
	// servers have no replay annotations telling them which overwrite killed
	// which object, so Collect discovers garbage by tracing alone and the
	// cumulative-garbage ledger advances at reclaim time instead of at
	// garbage-creation time. ActualGarbageBytes reports zero in this mode —
	// exactly the paper's online setting, where true garbage is unknowable
	// and the estimators exist to approximate it.
	oracleless bool

	// retry, when non-nil, wraps each retryable storage operation the
	// collector issues. The simulator injects a transient-fault retrier here
	// (see package fault); the heap itself stays ignorant of fault policy.
	retry func(op string, fn func() error) error

	// durable, when non-nil, receives a WAL record for every logical
	// mutation (alloc, pointer store, root change, reclaim). The heap never
	// calls Commit — the owner (server engine, simulator) decides batch
	// boundaries, so a crash can only lose whole uncommitted batches.
	durable storage.Backend

	// scratch holds Collect's per-collection working sets, reused across
	// collections so steady-state collection stops allocating. Valid only
	// within one Collect call.
	scratch collectScratch
}

// collectScratch is the collector's reusable working memory: the maps are
// cleared and the slices truncated at the start of every collection.
type collectScratch struct {
	memberSet map[objstore.OID]struct{}
	seen      map[objstore.OID]struct{}
	liveSize  map[objstore.OID]int
	fixups    map[objstore.OID]struct{}
	members   []objstore.OID
	queue     []objstore.OID // doubles as the root list: roots are its prefix
	live      []objstore.OID
	deadList  []objstore.OID
	fixupList []objstore.OID
}

// NewHeap wraps a store and a storage manager. Both must start empty or the
// heap's incremental bookkeeping will not match their contents.
func NewHeap(store *objstore.Store, disk *storage.Manager) *Heap {
	return &Heap{
		store:           store,
		disk:            disk,
		remset:          make(map[storage.PartitionID]map[objstore.OID]map[objstore.OID]int),
		po:              make(map[storage.PartitionID]int),
		oracleDead:      make(map[objstore.OID]struct{}),
		oracleDeadBytes: make(map[storage.PartitionID]int),
		scratch: collectScratch{
			memberSet: make(map[objstore.OID]struct{}),
			seen:      make(map[objstore.OID]struct{}),
			liveSize:  make(map[objstore.OID]int),
			fixups:    make(map[objstore.OID]struct{}),
		},
	}
}

// Store returns the logical object store.
func (h *Heap) Store() *objstore.Store { return h.store }

// SetDurable attaches a write-ahead-logging backend: from now on every
// logical mutation is logged before the heap reports it done. Attach before
// the first mutation (or right after rebuilding the heap from the backend's
// recovered state) — records are not emitted retroactively.
func (h *Heap) SetDurable(b storage.Backend) { h.durable = b }

// Durable returns the attached durability backend, or nil.
func (h *Heap) Durable() storage.Backend { return h.durable }

// SetPhysicalFixups switches pointer-fixup I/O charging on or off (see the
// physicalFixups field). Used by the fixup-cost ablation benchmark.
func (h *Heap) SetPhysicalFixups(on bool) { h.physicalFixups = on }

// SetOracleless switches the heap into live (oracle-free) operation: no
// RecordOracleDead calls are expected, Collect reclaims whatever tracing
// finds without demanding the oracle knew it first, and CheckOracleComplete
// becomes a no-op. Flip it before the first overwrite; toggling mid-run
// would leave the garbage ledger split between the two accounting schemes.
func (h *Heap) SetOracleless(on bool) { h.oracleless = on }

// Oracleless reports whether the heap runs without the trace oracle.
func (h *Heap) Oracleless() bool { return h.oracleless }

// Disk returns the physical storage manager.
func (h *Heap) Disk() *storage.Manager { return h.disk }

// SetRetry installs a wrapper around the collector's retryable storage
// operations (partition scans, compaction, flushes). A nil wrapper means
// operations run exactly once. Storage operations fail before mutating any
// state, so re-running fn after a transient error is safe.
func (h *Heap) SetRetry(retry func(op string, fn func() error) error) { h.retry = retry }

// Call sites test h.retry for nil inline rather than through a helper: the
// nil fast path then never constructs the operation closure, so the common
// (fault-free) configuration allocates nothing per storage operation.

// Create allocates an object logically and physically.
func (h *Heap) Create(oid objstore.OID, class objstore.Class, size, nslots int) error {
	if _, err := h.store.CreateWithOID(oid, class, size, nslots); err != nil {
		return err
	}
	if h.durable != nil {
		if err := h.durable.LogAlloc(oid, class, size, nslots); err != nil {
			return fmt.Errorf("gc: log alloc %v: %w", oid, err)
		}
	}
	if h.retry == nil {
		_, err := h.disk.Allocate(oid, size)
		return err
	}
	//lint:allow hotalloc closure built only when fault-injection retry is installed
	return h.retry("alloc", func() error {
		_, err := h.disk.Allocate(oid, size)
		return err
	})
}

// AddRoot registers oid as a persistent root, logging the change when a
// durability backend is attached. Callers that care about crash safety must
// use this rather than Store().AddRoot.
func (h *Heap) AddRoot(oid objstore.OID) error {
	if err := h.store.AddRoot(oid); err != nil {
		return err
	}
	if h.durable != nil {
		if err := h.durable.LogRoot(oid, true); err != nil {
			return fmt.Errorf("gc: log root %v: %w", oid, err)
		}
	}
	return nil
}

// RemoveRoot unregisters a persistent root, logging the change when a
// durability backend is attached.
func (h *Heap) RemoveRoot(oid objstore.OID) error {
	h.store.RemoveRoot(oid)
	if h.durable != nil {
		if err := h.durable.LogRoot(oid, false); err != nil {
			return fmt.Errorf("gc: log unroot %v: %w", oid, err)
		}
	}
	return nil
}

// Access simulates a read of an object.
func (h *Heap) Access(oid objstore.OID) error {
	if h.store.Get(oid) == nil {
		return fmt.Errorf("gc: access of absent object %v", oid)
	}
	if h.retry == nil {
		return h.disk.Touch(oid, false)
	}
	//lint:allow hotalloc closure built only when fault-injection retry is installed
	return h.retry("read", func() error { return h.disk.Touch(oid, false) })
}

// Update simulates a non-pointer write to an object.
func (h *Heap) Update(oid objstore.OID) error {
	if h.store.Get(oid) == nil {
		return fmt.Errorf("gc: update of absent object %v", oid)
	}
	if h.retry == nil {
		return h.disk.Touch(oid, true)
	}
	//lint:allow hotalloc closure built only when fault-injection retry is installed
	return h.retry("update", func() error { return h.disk.Touch(oid, true) })
}

// Overwrite applies a pointer overwrite: slot i of src now points at dst
// (possibly nil). init marks the initializing stores that wire up a freshly
// created object; those maintain the graph and dirty pages but do not count
// as overwrites for the rate policies (they cannot create garbage).
// The recorded old value from the trace is checked against the store.
func (h *Heap) Overwrite(src objstore.OID, slot int, wantOld, dst objstore.OID, init bool) error {
	// Validate the recorded old value before mutating anything, so a
	// corrupt trace cannot leave the slot half-applied.
	o := h.store.Get(src)
	if o == nil {
		return fmt.Errorf("gc: overwrite on absent object %v", src)
	}
	if slot < 0 || slot >= len(o.Slots) {
		return fmt.Errorf("gc: overwrite slot %d out of range on %v", slot, src)
	}
	if o.Slots[slot] != wantOld {
		return fmt.Errorf("gc: overwrite %v[%d]: trace says old=%v, store has %v",
			src, slot, wantOld, o.Slots[slot])
	}
	old, err := h.store.SetSlot(src, slot, dst)
	if err != nil {
		return err
	}
	if h.durable != nil {
		if err := h.durable.LogSet(src, slot, dst); err != nil {
			return fmt.Errorf("gc: log set %v[%d]: %w", src, slot, err)
		}
	}
	if h.retry == nil {
		err = h.disk.Touch(src, true)
	} else {
		//lint:allow hotalloc closure built only when fault-injection retry is installed
		err = h.retry("overwrite", func() error { return h.disk.Touch(src, true) })
	}
	if err != nil {
		return err
	}
	srcPart, ok := h.disk.PartitionOf(src)
	if !ok {
		return fmt.Errorf("gc: overwrite source %v has no placement", src)
	}
	if !old.IsNil() {
		oldPart, ok := h.disk.PartitionOf(old)
		if !ok {
			return fmt.Errorf("gc: old target %v has no placement", old)
		}
		if oldPart != srcPart {
			h.remsetRemove(oldPart, old, src)
		}
		if !init {
			h.po[oldPart]++
		}
	}
	if !dst.IsNil() {
		dstPart, ok := h.disk.PartitionOf(dst)
		if !ok {
			return fmt.Errorf("gc: new target %v has no placement", dst)
		}
		if dstPart != srcPart {
			h.remsetAdd(dstPart, dst, src)
		}
	}
	if !init {
		h.totalOverwrites++
	}
	return nil
}

func (h *Heap) remsetAdd(p storage.PartitionID, dst, src objstore.OID) {
	m := h.remset[p]
	if m == nil {
		//lint:allow hotalloc amortized: one map per partition, reused for its life
		m = make(map[objstore.OID]map[objstore.OID]int)
		h.remset[p] = m
	}
	srcs := m[dst]
	if srcs == nil {
		//lint:allow hotalloc amortized: one map per remembered target, reused until collection
		srcs = make(map[objstore.OID]int)
		m[dst] = srcs
	}
	srcs[src]++
}

func (h *Heap) remsetRemove(p storage.PartitionID, dst, src objstore.OID) {
	m := h.remset[p]
	if m == nil {
		return
	}
	srcs := m[dst]
	if srcs == nil {
		return
	}
	if srcs[src] <= 1 {
		delete(srcs, src)
		if len(srcs) == 0 {
			delete(m, dst)
		}
	} else {
		srcs[src]--
	}
}

// ExternallyReferenced reports whether dst (in partition p) has remembered
// external references.
func (h *Heap) ExternallyReferenced(p storage.PartitionID, dst objstore.OID) bool {
	return len(h.remset[p][dst]) > 0
}

// RecordOracleDead registers objects the trace oracle declared unreachable.
// The collector will eventually rediscover and reclaim them by tracing.
func (h *Heap) RecordOracleDead(dead []objstore.OID) error {
	for _, oid := range dead {
		if _, dup := h.oracleDead[oid]; dup {
			return fmt.Errorf("gc: object %v declared dead twice", oid)
		}
		o := h.store.Get(oid)
		if o == nil {
			return fmt.Errorf("gc: oracle-dead object %v not in store", oid)
		}
		p, ok := h.disk.PartitionOf(oid)
		if !ok {
			return fmt.Errorf("gc: oracle-dead object %v has no placement", oid)
		}
		h.oracleDead[oid] = struct{}{}
		h.oracleDeadBytes[p] += o.Size
		h.totalGarbage += uint64(o.Size)
	}
	return nil
}

// ActualGarbageBytes returns the oracle's exact count of unreclaimed
// garbage bytes in the database.
func (h *Heap) ActualGarbageBytes() int {
	n := 0
	for _, b := range h.oracleDeadBytes {
		n += b
	}
	return n
}

// OracleGarbageIn returns the exact garbage bytes in one partition.
func (h *Heap) OracleGarbageIn(p storage.PartitionID) int { return h.oracleDeadBytes[p] }

// PinnedGarbageBytes returns the bytes of known garbage that the collector
// could not reclaim right now even if it collected the right partition:
// dead objects held live by remembered-set entries (references from other
// partitions, themselves possibly dead). This quantifies partitioned
// collection's conservatism — cross-partition dead chains release one
// segment per collection, and dead cross-partition cycles never release.
func (h *Heap) PinnedGarbageBytes() int {
	pinned := 0
	for oid := range h.oracleDead {
		p, ok := h.disk.PartitionOf(oid)
		if !ok {
			continue
		}
		if h.ExternallyReferenced(p, oid) {
			if o := h.store.Get(oid); o != nil {
				pinned += o.Size
			}
		}
	}
	return pinned
}

// TotalGarbageBytes returns cumulative garbage ever created (oracle).
func (h *Heap) TotalGarbageBytes() uint64 { return h.totalGarbage }

// TotalCollectedBytes returns cumulative bytes reclaimed by the collector.
func (h *Heap) TotalCollectedBytes() uint64 { return h.totalCollected }

// Collections returns how many collections have run.
func (h *Heap) Collections() uint64 { return h.totalCollections }

// OverwriteClock returns the SAGA time base: total non-init overwrites.
func (h *Heap) OverwriteClock() uint64 { return h.totalOverwrites }

// PartitionOverwrites returns the FGS counter of one partition.
func (h *Heap) PartitionOverwrites(p storage.PartitionID) int { return h.po[p] }

// SumPartitionOverwrites returns Σ_p PO(p), the FGS state total.
func (h *Heap) SumPartitionOverwrites() int {
	n := 0
	for _, v := range h.po {
		n += v
	}
	return n
}

// DatabaseBytes returns occupied bytes (live + garbage): the SAGA notion of
// database size.
func (h *Heap) DatabaseBytes() int { return h.disk.OccupiedBytes() }

// NumPartitions returns the number of allocated partitions (the CGS/CB
// estimator's coarse-grain state).
func (h *Heap) NumPartitions() int { return h.disk.NumPartitions() }

// CollectionResult describes one collection.
type CollectionResult struct {
	Partition        storage.PartitionID
	PartitionPO      int // FGS counter of the partition at collection time
	ReclaimedBytes   int
	ReclaimedObjects int
	LiveBytes        int
	LiveObjects      int
	IO               storage.IOStats // I/O delta attributable to this collection
}

// Collect garbage-collects one partition: scan, Cheney copy from the
// partition roots (database roots plus remembered external references),
// compact survivors, fix external pointers, and flush collector-dirtied
// pages. All I/O is charged to the collector.
func (h *Heap) Collect(p storage.PartitionID) (CollectionResult, error) {
	if p < 0 || int(p) >= h.disk.NumPartitions() {
		return CollectionResult{}, fmt.Errorf("gc: collect of unknown partition %d", p)
	}
	before := h.disk.Stats()
	prevClass := h.disk.SetIOClass(storage.IOGC)
	defer h.disk.SetIOClass(prevClass)

	// Scan the partition.
	var err error
	if h.retry == nil {
		err = h.disk.ReadPartition(p)
	} else {
		//lint:allow hotalloc closure built only when fault-injection retry is installed
		err = h.retry("scan", func() error { return h.disk.ReadPartition(p) })
	}
	if err != nil {
		return CollectionResult{}, err
	}

	// All working sets below live in the reusable scratch.
	sc := &h.scratch
	clear(sc.memberSet)
	clear(sc.seen)
	clear(sc.liveSize)
	members := h.disk.AppendObjectsIn(sc.members[:0], p)
	sc.members = members
	memberSet := sc.memberSet
	for _, oid := range members {
		memberSet[oid] = struct{}{}
	}

	// Partition roots: database roots and externally referenced objects.
	// They seed the traversal queue; live objects are appended behind them.
	queue := sc.queue[:0]
	for _, oid := range members {
		if h.store.IsRoot(oid) || h.ExternallyReferenced(p, oid) {
			queue = append(queue, oid)
		}
	}

	// Cheney breadth-first copy within the partition. The live list is the
	// copy order; pointers leaving the partition are not traversed.
	live := sc.live[:0]
	seen := sc.seen
	for _, oid := range queue {
		seen[oid] = struct{}{}
	}
	for head := 0; head < len(queue); head++ {
		oid := queue[head]
		live = append(live, oid)
		o := h.store.Get(oid)
		if o == nil {
			return CollectionResult{}, fmt.Errorf("gc: placed object %v missing from store", oid)
		}
		for _, t := range o.Slots {
			if t.IsNil() {
				continue
			}
			if _, inPart := memberSet[t]; !inPart {
				continue
			}
			if _, dup := seen[t]; dup {
				continue
			}
			seen[t] = struct{}{}
			queue = append(queue, t)
		}
	}
	sc.queue = queue
	sc.live = live

	// Everything unreached is garbage. Tear down its bookkeeping before
	// compaction removes its placement. Sizes are captured up front so the
	// compaction callback below cannot encounter a missing object.
	liveBytes := 0
	liveSize := sc.liveSize
	for _, oid := range live {
		o := h.store.Get(oid)
		if o == nil {
			return CollectionResult{}, fmt.Errorf("gc: live object %v missing from store", oid)
		}
		liveSize[oid] = o.Size
		liveBytes += o.Size
	}
	deadList := sc.deadList[:0]
	for _, oid := range members {
		if _, ok := seen[oid]; !ok {
			deadList = append(deadList, oid)
		}
	}
	sc.deadList = deadList
	slices.Sort(deadList)

	// Log the whole reclaim as one WAL record before any object leaves the
	// store: either the commit containing it lands and every reclaimed
	// object stays dead across a crash, or the batch is lost and recovery
	// resurrects none of them piecemeal.
	if h.durable != nil && len(deadList) > 0 {
		if err := h.durable.LogReclaim(deadList); err != nil {
			return CollectionResult{}, fmt.Errorf("gc: log reclaim of %d objects: %w", len(deadList), err)
		}
	}

	reclaimedBytes := 0
	for _, oid := range deadList {
		o := h.store.Get(oid)
		if o == nil {
			return CollectionResult{}, fmt.Errorf("gc: dead object %v missing from store", oid)
		}
		reclaimedBytes += o.Size
		// A dead object's outgoing cross-partition references leave the
		// remembered sets, which may unpin garbage in other partitions.
		for _, t := range o.Slots {
			if t.IsNil() {
				continue
			}
			tp, ok := h.disk.PartitionOf(t)
			if !ok {
				return CollectionResult{}, fmt.Errorf("gc: dead object %v references unplaced %v", oid, t)
			}
			if tp != p {
				h.remsetRemove(tp, t, oid)
			}
		}
		// The oracle must have known: partitioned tracing is conservative
		// with respect to true reachability. In oracleless (live) mode the
		// collector is the discoverer: garbage enters the cumulative ledger
		// the moment it is reclaimed, keeping created−collected==outstanding.
		if _, known := h.oracleDead[oid]; !known {
			if !h.oracleless {
				return CollectionResult{}, fmt.Errorf("gc: collector reclaimed %v which the oracle believes live", oid)
			}
			h.totalGarbage += uint64(o.Size)
		} else {
			delete(h.oracleDead, oid)
			h.oracleDeadBytes[p] -= o.Size
		}
		if err := h.store.Remove(oid); err != nil {
			return CollectionResult{}, err
		}
	}
	if len(deadList) > 0 && h.oracleDeadBytes[p] < 0 {
		return CollectionResult{}, fmt.Errorf("gc: negative oracle garbage in partition %d", p)
	}

	// Compact survivors in copy order. The sizeOf callback reads the scratch
	// liveSize map; Compact uses it within the call only.
	if h.retry == nil {
		_, err = h.disk.Compact(p, live, func(oid objstore.OID) int { return liveSize[oid] })
	} else {
		//lint:allow hotalloc closure built only when fault-injection retry is installed
		err = h.retry("compact", func() error {
			_, err := h.disk.Compact(p, live, func(oid objstore.OID) int { return liveSize[oid] })
			return err
		})
	}
	if err != nil {
		return CollectionResult{}, err
	}

	// Surviving objects moved. With physical pointers, every external
	// referencing object must be rewritten; with logical OIDs (the
	// default), only the resident object table changes, at no I/O cost.
	if h.physicalFixups {
		clear(sc.fixups)
		fixups := sc.fixups
		for _, srcs := range h.remset[p] {
			for src := range srcs {
				fixups[src] = struct{}{}
			}
		}
		fixupList := sc.fixupList[:0]
		for src := range fixups {
			fixupList = append(fixupList, src)
		}
		sc.fixupList = fixupList
		slices.Sort(fixupList)
		for _, src := range fixupList {
			if h.retry == nil {
				err = h.disk.Touch(src, true)
			} else {
				//lint:allow hotalloc closure built only when fault-injection retry is installed
				err = h.retry("fixup", func() error { return h.disk.Touch(src, true) })
			}
			if err != nil {
				return CollectionResult{}, err
			}
		}
	}

	// Write back what the collector dirtied.
	if h.retry == nil {
		_, err = h.disk.FlushGCDirty()
	} else {
		//lint:allow hotalloc closure built only when fault-injection retry is installed
		err = h.retry("flush", func() error {
			_, err := h.disk.FlushGCDirty()
			return err
		})
	}
	if err != nil {
		return CollectionResult{}, err
	}

	po := h.po[p]
	h.po[p] = 0
	h.totalCollected += uint64(reclaimedBytes)
	h.totalCollections++

	return CollectionResult{
		Partition:        p,
		PartitionPO:      po,
		ReclaimedBytes:   reclaimedBytes,
		ReclaimedObjects: len(deadList),
		LiveBytes:        liveBytes,
		LiveObjects:      len(live),
		IO:               h.disk.Stats().Sub(before),
	}, nil
}

// CheckInvariants cross-validates the heap's incremental bookkeeping against
// ground truth recomputed from the store. Expensive; used in tests.
func (h *Heap) CheckInvariants() error {
	if err := h.disk.CheckInvariants(); err != nil {
		return err
	}
	// Rebuild remembered sets from scratch and compare.
	want := make(map[storage.PartitionID]map[objstore.OID]map[objstore.OID]int)
	var rebuildErr error
	h.store.ForEach(func(o *objstore.Object) {
		if rebuildErr != nil {
			return
		}
		srcPart, ok := h.disk.PartitionOf(o.OID)
		if !ok {
			rebuildErr = fmt.Errorf("gc: object %v in store but not placed", o.OID)
			return
		}
		for _, t := range o.Slots {
			if t.IsNil() {
				continue
			}
			tPart, ok := h.disk.PartitionOf(t)
			if !ok {
				rebuildErr = fmt.Errorf("gc: object %v references unplaced %v", o.OID, t)
				return
			}
			if tPart == srcPart {
				continue
			}
			m := want[tPart]
			if m == nil {
				m = make(map[objstore.OID]map[objstore.OID]int)
				want[tPart] = m
			}
			srcs := m[t]
			if srcs == nil {
				srcs = make(map[objstore.OID]int)
				m[t] = srcs
			}
			srcs[o.OID]++
		}
	})
	if rebuildErr != nil {
		return rebuildErr
	}
	for p, m := range h.remset {
		for dst, srcs := range m {
			for src, n := range srcs {
				if want[p][dst][src] != n {
					return fmt.Errorf("gc: remset[%d][%v][%v]=%d, ground truth %d",
						p, dst, src, n, want[p][dst][src])
				}
			}
		}
	}
	for p, m := range want {
		for dst, srcs := range m {
			for src, n := range srcs {
				if h.remset[p][dst][src] != n {
					return fmt.Errorf("gc: remset[%d][%v][%v] missing entry with ground truth %d",
						p, dst, src, n)
				}
			}
		}
	}
	// Oracle ledger consistency.
	sum := 0
	for p, b := range h.oracleDeadBytes {
		if b < 0 {
			return fmt.Errorf("gc: negative oracle garbage %d in partition %d", b, p)
		}
		sum += b
	}
	check := 0
	for oid := range h.oracleDead {
		o := h.store.Get(oid)
		if o == nil {
			return fmt.Errorf("gc: oracle-dead object %v missing from store", oid)
		}
		check += o.Size
	}
	if sum != check {
		return fmt.Errorf("gc: oracle garbage bytes %d disagree with dead set total %d", sum, check)
	}
	if h.totalGarbage-h.totalCollected != uint64(sum) {
		return fmt.Errorf("gc: ledger mismatch: created %d - collected %d != outstanding %d",
			h.totalGarbage, h.totalCollected, sum)
	}
	// Every oracle-dead object must be truly unreachable (soundness).
	live := h.store.Reachable()
	for oid := range h.oracleDead {
		if _, isLive := live[oid]; isLive {
			return fmt.Errorf("gc: oracle-dead object %v is reachable", oid)
		}
	}
	return nil
}

// CheckOracleComplete verifies the converse of CheckInvariants' soundness
// check: every unreachable object is known dead to the oracle. This holds
// at the simulator's collection-safe points when replaying a well-formed
// trace, but not in hand-built heaps with untracked garbage — and not in
// oracleless (live) mode, where unreclaimed garbage is by design unknown;
// there the check passes vacuously.
func (h *Heap) CheckOracleComplete() error {
	if h.oracleless {
		return nil
	}
	live := h.store.Reachable()
	deadCount := 0
	var sample objstore.OID
	h.store.ForEach(func(o *objstore.Object) {
		if _, isLive := live[o.OID]; !isLive {
			deadCount++
			sample = o.OID
		}
	})
	if deadCount != len(h.oracleDead) {
		return fmt.Errorf("gc: %d unreachable objects but oracle knows %d (e.g. %v)",
			deadCount, len(h.oracleDead), sample)
	}
	return nil
}
