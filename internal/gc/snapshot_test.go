package gc

import (
	"errors"
	"reflect"
	"testing"

	"odbgc/internal/objstore"
)

// buildSnapshotHeap assembles a heap with cross-partition references, oracle
// garbage, and overwrite history — every field the snapshot must carry.
func buildSnapshotHeap(t *testing.T) *Heap {
	t.Helper()
	h := testHeap(t)
	for oid := objstore.OID(1); oid <= 8; oid++ {
		mk(t, h, oid, 100, 2)
	}
	root(t, h, 1)
	link(t, h, 1, 0, 5) // cross-partition: 1 is in p0, 5 in p1
	link(t, h, 1, 1, 2)
	link(t, h, 5, 0, 6)
	link(t, h, 2, 0, 3)
	unlink(t, h, 2, 0, 3) // 3 dead, 3's subtree empty
	link(t, h, 2, 0, 4)   // keep 4 live: partition 0 gets collected in tests
	if err := h.RecordOracleDead([]objstore.OID{3}); err != nil {
		t.Fatal(err)
	}
	return h
}

func TestHeapSnapshotRoundTrip(t *testing.T) {
	h := buildSnapshotHeap(t)
	st := h.Snapshot()
	r, err := RestoreHeap(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Snapshot(), st) {
		t.Fatalf("snapshot round trip differs:\norig     %+v\nrestored %+v", st, r.Snapshot())
	}

	// Both heaps must behave identically afterwards: collect the partition
	// holding the garbage and compare results and a second snapshot.
	p := mustPart(t, h, 3)
	resOrig, err := h.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	resRest, err := r.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resOrig, resRest) {
		t.Fatalf("collections diverged:\norig     %+v\nrestored %+v", resOrig, resRest)
	}
	if !reflect.DeepEqual(h.Snapshot(), r.Snapshot()) {
		t.Fatal("heaps diverged after identical collections")
	}
	if err := r.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestRestoreHeapRejectsCorruptSnapshot(t *testing.T) {
	h := buildSnapshotHeap(t)
	good := h.Snapshot()

	bad := *good
	bad.Remset = append([]RemsetEntry(nil), good.Remset...)
	if len(bad.Remset) == 0 {
		t.Fatal("test heap has no remset entries")
	}
	bad.Remset[0].Count = -1
	if _, err := RestoreHeap(&bad); err == nil {
		t.Error("negative remset count accepted")
	}

	bad = *good
	bad.Remset = good.Remset[:len(good.Remset)-1]
	if _, err := RestoreHeap(&bad); err == nil {
		t.Error("dropped remset entry accepted (invariant check missed it)")
	}

	bad = *good
	bad.OracleDead = []objstore.OID{999}
	if _, err := RestoreHeap(&bad); err == nil {
		t.Error("oracle-dead entry for absent object accepted")
	}

	bad = *good
	bad.TotalGarbage += 7
	if _, err := RestoreHeap(&bad); err == nil {
		t.Error("ledger mismatch accepted")
	}

	if _, err := RestoreHeap(nil); err == nil {
		t.Error("nil snapshot accepted")
	}
}

// TestCollectRetryHook verifies the injected retry wrapper sees the
// collector's storage operations and that a retried transient fault leaves
// the collection result intact.
func TestCollectRetryHook(t *testing.T) {
	h := buildSnapshotHeap(t)
	ref, err := RestoreHeap(h.Snapshot()) // identical twin collected without faults
	if err != nil {
		t.Fatal(err)
	}

	transient := errors.New("transient")
	remaining := 2 // fail the first two storage ops once each
	var ops []string
	h.Disk().SetFaultInjector(faultFunc(func(write bool) error {
		if remaining > 0 {
			remaining--
			return transient
		}
		return nil
	}))
	h.SetRetry(func(op string, fn func() error) error {
		ops = append(ops, op)
		for {
			err := fn()
			if err == nil {
				return nil
			}
			if !errors.Is(err, transient) {
				return err
			}
		}
	})

	p := mustPart(t, h, 3)
	res, err := h.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	want, err := ref.Collect(p)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedBytes != want.ReclaimedBytes || res.ReclaimedObjects != want.ReclaimedObjects {
		t.Fatalf("faulted collection reclaimed %+v, fault-free twin %+v", res, want)
	}
	if len(ops) == 0 {
		t.Fatal("retry hook never invoked")
	}
	if err := h.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

// faultFunc adapts a function to storage.FaultInjector.
type faultFunc func(write bool) error

func (f faultFunc) BeforeOp(write bool) error { return f(write) }
