package gc

import (
	"fmt"
	"math/rand"

	"odbgc/internal/storage"
)

// SelectionPolicy decides which partition a collection should process.
// Select returns false when no partition is worth collecting (e.g. no
// overwrites have been observed anywhere), in which case the simulator
// skips the collection.
type SelectionPolicy interface {
	Name() string
	Select(h *Heap) (storage.PartitionID, bool)
}

// UpdatedPointer is the paper's partition-selection policy (CWZ94): collect
// the partition with the largest count of overwritten pointers into it
// since its last collection. It is effective at finding partitions with
// more than average garbage, which is why the CGS/CB estimator
// overestimates (§4.1.2).
type UpdatedPointer struct{}

// Name implements SelectionPolicy.
func (UpdatedPointer) Name() string { return "updated-pointer" }

// Select implements SelectionPolicy.
func (UpdatedPointer) Select(h *Heap) (storage.PartitionID, bool) {
	best := storage.PartitionID(-1)
	bestPO := 0
	for p := 0; p < h.disk.NumPartitions(); p++ {
		id := storage.PartitionID(p)
		if po := h.PartitionOverwrites(id); po > bestPO {
			best, bestPO = id, po
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// RandomSelection picks a uniformly random allocated partition. The paper
// mentions it as the selection policy under which CGS/CB would estimate
// accurately.
type RandomSelection struct {
	rng *rand.Rand
}

// NewRandomSelection returns a seeded random selection policy.
func NewRandomSelection(seed int64) *RandomSelection {
	return &RandomSelection{rng: rand.New(rand.NewSource(seed))}
}

// Name implements SelectionPolicy.
func (*RandomSelection) Name() string { return "random" }

// Select implements SelectionPolicy.
func (s *RandomSelection) Select(h *Heap) (storage.PartitionID, bool) {
	n := h.disk.NumPartitions()
	if n == 0 {
		return 0, false
	}
	return storage.PartitionID(s.rng.Intn(n)), true
}

// RoundRobin cycles through partitions in order, a baseline that spreads
// collection effort uniformly.
type RoundRobin struct {
	next storage.PartitionID
}

// Name implements SelectionPolicy.
func (*RoundRobin) Name() string { return "round-robin" }

// Select implements SelectionPolicy.
func (s *RoundRobin) Select(h *Heap) (storage.PartitionID, bool) {
	n := h.disk.NumPartitions()
	if n == 0 {
		return 0, false
	}
	if int(s.next) >= n {
		s.next = 0
	}
	p := s.next
	s.next++
	return p, true
}

// OracleSelection collects the partition with the most actual garbage. It
// is impractical in a real system (requires exact garbage knowledge) and
// serves as an upper bound for selection quality in ablations.
type OracleSelection struct{}

// Name implements SelectionPolicy.
func (OracleSelection) Name() string { return "oracle-max-garbage" }

// Select implements SelectionPolicy.
func (OracleSelection) Select(h *Heap) (storage.PartitionID, bool) {
	best := storage.PartitionID(-1)
	bestGarb := 0
	for p := 0; p < h.disk.NumPartitions(); p++ {
		id := storage.PartitionID(p)
		if g := h.OracleGarbageIn(id); g > bestGarb {
			best, bestGarb = id, g
		}
	}
	if best < 0 {
		return 0, false
	}
	return best, true
}

// Hybrid prefers UPDATEDPOINTER but falls back to a round-robin sweep when
// greedy picks stop paying: if the last greedy collection yielded less
// than MinYield bytes, the next selections sweep partitions in order until
// one yields again. This repairs the FIFO-log livelock (greedy policies
// re-collect a pinned partition at zero yield forever; see
// workload.QueueParams) while preserving greedy behavior whenever it works.
//
// Hybrid needs yield feedback: the simulator reports each collection via
// ObserveCollection.
type Hybrid struct {
	// MinYield is the bytes a greedy collection must reclaim for greedy
	// mode to continue. Defaults to 1 (any yield at all) if zero.
	MinYield int

	greedy   UpdatedPointer
	sweep    RoundRobin
	sweeping bool
	lastPick storage.PartitionID
	havePick bool
}

// Name implements SelectionPolicy.
func (h *Hybrid) Name() string { return "hybrid" }

// Select implements SelectionPolicy.
func (h *Hybrid) Select(heap *Heap) (storage.PartitionID, bool) {
	var p storage.PartitionID
	var ok bool
	if h.sweeping {
		p, ok = h.sweep.Select(heap)
	} else {
		p, ok = h.greedy.Select(heap)
	}
	h.lastPick, h.havePick = p, ok
	return p, ok
}

// ObserveCollection feeds back the yield of the last selected collection.
func (h *Hybrid) ObserveCollection(res CollectionResult) {
	if !h.havePick || res.Partition != h.lastPick {
		return
	}
	min := h.MinYield
	if min <= 0 {
		min = 1
	}
	h.sweeping = res.ReclaimedBytes < min
}

// YieldObserver is implemented by selection policies that adapt to
// collection outcomes; the simulator feeds them every collection result.
type YieldObserver interface {
	ObserveCollection(res CollectionResult)
}

// NewSelectionPolicy constructs a selection policy by name. Seed is used by
// stochastic policies only.
func NewSelectionPolicy(name string, seed int64) (SelectionPolicy, error) {
	switch name {
	case "updated-pointer", "":
		return UpdatedPointer{}, nil
	case "random":
		return NewRandomSelection(seed), nil
	case "round-robin":
		return &RoundRobin{}, nil
	case "oracle-max-garbage":
		return OracleSelection{}, nil
	case "hybrid":
		return &Hybrid{}, nil
	default:
		return nil, fmt.Errorf("gc: unknown selection policy %q", name)
	}
}
