package gc

import (
	"testing"

	"odbgc/internal/objstore"
	"odbgc/internal/storage"
)

// heapWithPartitions builds a heap with n single-page partitions, each
// holding one rooted 400-byte object (OIDs 1..n).
func heapWithPartitions(t *testing.T, n int) *Heap {
	t.Helper()
	disk, err := storage.NewManager(storage.Config{PageSize: 400, PagesPerPartition: 1, BufferPages: 2})
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeap(objstore.NewStore(), disk)
	for i := 1; i <= n; i++ {
		mk(t, h, objstore.OID(i), 400, 1)
		root(t, h, objstore.OID(i))
	}
	if disk.NumPartitions() != n {
		t.Fatalf("setup: %d partitions, want %d", disk.NumPartitions(), n)
	}
	return h
}

// bumpPO drives the PO counter of the partition holding oid by overwriting
// a pointer whose old target is oid.
func bumpPO(t *testing.T, h *Heap, src, oid objstore.OID, times int) {
	t.Helper()
	for i := 0; i < times; i++ {
		link(t, h, src, 0, oid)
		unlink(t, h, src, 0, oid)
	}
}

func TestUpdatedPointerPicksHottest(t *testing.T) {
	h := heapWithPartitions(t, 3)
	bumpPO(t, h, 1, 2, 2) // PO(partition of 2) = 2
	bumpPO(t, h, 1, 3, 5) // PO(partition of 3) = 5

	var up UpdatedPointer
	p, ok := up.Select(h)
	if !ok {
		t.Fatal("no selection")
	}
	if want := mustPart(t, h, 3); p != want {
		t.Errorf("selected %d, want %d", p, want)
	}
}

func TestUpdatedPointerDeclinesWithoutOverwrites(t *testing.T) {
	h := heapWithPartitions(t, 3)
	var up UpdatedPointer
	if _, ok := up.Select(h); ok {
		t.Error("selected a partition with zero overwrites everywhere")
	}
}

func TestUpdatedPointerTieBreaksLowest(t *testing.T) {
	h := heapWithPartitions(t, 3)
	bumpPO(t, h, 1, 2, 3)
	bumpPO(t, h, 1, 3, 3)
	var up UpdatedPointer
	p, ok := up.Select(h)
	if !ok {
		t.Fatal("no selection")
	}
	lo := mustPart(t, h, 2)
	if hi := mustPart(t, h, 3); hi < lo {
		lo = hi
	}
	if p != lo {
		t.Errorf("tie broke to %d, want lowest %d", p, lo)
	}
}

func TestRandomSelectionDeterministicPerSeed(t *testing.T) {
	h := heapWithPartitions(t, 5)
	a := NewRandomSelection(42)
	b := NewRandomSelection(42)
	for i := 0; i < 20; i++ {
		pa, oka := a.Select(h)
		pb, okb := b.Select(h)
		if oka != okb || pa != pb {
			t.Fatalf("same-seed selections diverged at step %d", i)
		}
		if int(pa) >= h.Disk().NumPartitions() {
			t.Fatalf("selected out-of-range partition %d", pa)
		}
	}
}

func TestRoundRobinCycles(t *testing.T) {
	h := heapWithPartitions(t, 3)
	rr := &RoundRobin{}
	var got []storage.PartitionID
	for i := 0; i < 6; i++ {
		p, ok := rr.Select(h)
		if !ok {
			t.Fatal("no selection")
		}
		got = append(got, p)
	}
	want := []storage.PartitionID{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence %v, want %v", got, want)
		}
	}
}

func TestOracleSelectionFindsGarbage(t *testing.T) {
	h := heapWithPartitions(t, 3)
	// Make object 2 garbage: it is rooted, so un-root then declare dead.
	h.Store().RemoveRoot(2)
	if err := h.RecordOracleDead([]objstore.OID{2}); err != nil {
		t.Fatal(err)
	}
	var sel OracleSelection
	p, ok := sel.Select(h)
	if !ok {
		t.Fatal("no selection")
	}
	if want := mustPart(t, h, 2); p != want {
		t.Errorf("selected %d, want %d (the garbage partition)", p, want)
	}
}

func TestOracleSelectionDeclinesWhenClean(t *testing.T) {
	h := heapWithPartitions(t, 2)
	var sel OracleSelection
	if _, ok := sel.Select(h); ok {
		t.Error("selected a partition with no garbage anywhere")
	}
}

func TestSelectionOnEmptyHeap(t *testing.T) {
	disk, err := storage.NewManager(storage.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	h := NewHeap(objstore.NewStore(), disk)
	for _, sel := range []SelectionPolicy{UpdatedPointer{}, NewRandomSelection(1), &RoundRobin{}, OracleSelection{}} {
		if _, ok := sel.Select(h); ok {
			t.Errorf("%s selected from an empty heap", sel.Name())
		}
	}
}

func TestNewSelectionPolicy(t *testing.T) {
	for _, name := range []string{"updated-pointer", "random", "round-robin", "oracle-max-garbage", ""} {
		sel, err := NewSelectionPolicy(name, 1)
		if err != nil || sel == nil {
			t.Errorf("NewSelectionPolicy(%q) = %v, %v", name, sel, err)
		}
	}
	if _, err := NewSelectionPolicy("bogus", 1); err == nil {
		t.Error("bogus policy accepted")
	}
	// The empty name defaults to the paper's UPDATEDPOINTER.
	sel, _ := NewSelectionPolicy("", 1)
	if sel.Name() != "updated-pointer" {
		t.Errorf("default selection = %s", sel.Name())
	}
}

func TestHybridSelection(t *testing.T) {
	h := heapWithPartitions(t, 3)
	bumpPO(t, h, 1, 2, 5)
	hy := &Hybrid{}
	// Greedy mode first: picks the hottest partition like UPDATEDPOINTER.
	p, ok := hy.Select(h)
	if !ok || p != mustPart(t, h, 2) {
		t.Fatalf("greedy pick = %v/%v", p, ok)
	}
	// Zero yield on that pick flips it into sweep mode.
	hy.ObserveCollection(CollectionResult{Partition: p, ReclaimedBytes: 0})
	seen := map[storage.PartitionID]bool{}
	for i := 0; i < 3; i++ {
		p, ok := hy.Select(h)
		if !ok {
			t.Fatal("sweep declined")
		}
		seen[p] = true
		hy.ObserveCollection(CollectionResult{Partition: p, ReclaimedBytes: 0})
	}
	if len(seen) != 3 {
		t.Errorf("sweep did not cover all partitions: %v", seen)
	}
	// A productive collection returns it to greedy mode.
	p, _ = hy.Select(h)
	hy.ObserveCollection(CollectionResult{Partition: p, ReclaimedBytes: 5000})
	bumpPO(t, h, 1, 3, 9)
	p, ok = hy.Select(h)
	if !ok || p != mustPart(t, h, 3) {
		t.Errorf("did not return to greedy mode: %v/%v", p, ok)
	}
	// Feedback about other partitions (e.g. opportunistic collections the
	// policy did not pick) is ignored.
	hy.ObserveCollection(CollectionResult{Partition: 99, ReclaimedBytes: 0})
	if _, ok := hy.Select(h); !ok {
		t.Error("foreign feedback changed mode")
	}
}

func TestPinnedGarbageBytes(t *testing.T) {
	h := testHeap(t)
	mk(t, h, 1, 100, 3)
	mk(t, h, 2, 100, 1) // will die holding a ref to 3
	mk(t, h, 10, 100, 0)
	mk(t, h, 11, 100, 0)
	mk(t, h, 3, 100, 0) // partition 1
	root(t, h, 1)
	link(t, h, 1, 1, 10)
	link(t, h, 1, 2, 11)
	link(t, h, 1, 0, 2)
	link(t, h, 2, 0, 3)
	unlink(t, h, 1, 0, 2)
	if err := h.RecordOracleDead([]objstore.OID{2, 3}); err != nil {
		t.Fatal(err)
	}
	// Object 3 is pinned by dead cross-partition referencer 2; object 2 is
	// not pinned (its partition can reclaim it immediately).
	if got := h.PinnedGarbageBytes(); got != 100 {
		t.Errorf("pinned = %d, want 100", got)
	}
	if _, err := h.Collect(mustPart(t, h, 2)); err != nil {
		t.Fatal(err)
	}
	if got := h.PinnedGarbageBytes(); got != 0 {
		t.Errorf("pinned after collecting the referencer = %d, want 0", got)
	}
}
