package workload

import (
	"testing"

	"odbgc/internal/trace"
)

func TestQueueValidates(t *testing.T) {
	p := DefaultQueue()
	p.WindowEntries = 500
	p.Appends = 2000
	tr, err := Queue(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("queue trace invalid: %v", err)
	}
	s := trace.ComputeStats(tr)
	t.Logf("events=%d overwrites=%d garbage=%dB phases=%v", s.Events, s.Overwrites, s.GarbageBytes, s.Phases)
	// Every append is matched by a trim, and the drain kills the rest:
	// total dead objects == total entries created.
	if s.GarbageObjects != p.WindowEntries+p.Appends {
		t.Errorf("dead objects = %d, want %d", s.GarbageObjects, p.WindowEntries+p.Appends)
	}
	// After the drain, only the anchor survives.
	if s.CreatedBytes-s.GarbageBytes != 64 {
		t.Errorf("surviving bytes = %d, want the 64-byte anchor", s.CreatedBytes-s.GarbageBytes)
	}
}

func TestQueueParamsValidation(t *testing.T) {
	bad := []func(*QueueParams){
		func(p *QueueParams) { p.WindowEntries = 1 },
		func(p *QueueParams) { p.EntryBytesMax = p.EntryBytesMin - 1 },
		func(p *QueueParams) { p.Appends = -1 },
	}
	for i, mutate := range bad {
		p := DefaultQueue()
		mutate(&p)
		if _, err := Queue(p, 1); err == nil {
			t.Errorf("bad params #%d accepted", i)
		}
	}
}

func TestQueueDeterministic(t *testing.T) {
	p := DefaultQueue()
	p.WindowEntries = 100
	p.Appends = 300
	a, err := Queue(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Queue(p, 5)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ")
	}
	for i := range a.Events {
		if a.Events[i].String() != b.Events[i].String() {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestQueueGarbageIsOneEntryPerTrim(t *testing.T) {
	p := DefaultQueue()
	p.WindowEntries = 50
	p.Appends = 100
	tr, err := Queue(p, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		e := &tr.Events[i]
		if e.Kind == trace.KindOverwrite && len(e.Dead) > 1 {
			t.Fatalf("event %d killed %d objects; queue trims one at a time", i, len(e.Dead))
		}
	}
}
