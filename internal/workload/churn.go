// Package workload synthesizes non-OO7 application traces. The paper's §5
// asks whether applications other than its OO7 benchmark violate the
// policies' assumptions; this package provides a contrasting workload to
// probe exactly that:
//
//   - garbage arrives as single leaf objects, not clusters, so naive
//     connectivity-based prediction is nearly exact here (unlike OO7);
//   - churn is skewed (a hot subset of containers takes most updates);
//   - workload intensity changes across phases (steady → burst → quiet →
//     steady), stressing responsiveness differently than OO7's two
//     reorganizations.
package workload

import (
	"fmt"
	"math/rand"

	"odbgc/internal/objstore"
	"odbgc/internal/trace"
)

// ChurnParams describe a directory/file churn workload: a fixed set of
// rooted directories, each holding FilesPerDir leaf files; churn replaces
// random files, making the old file garbage immediately.
type ChurnParams struct {
	// Dirs is the number of rooted directory objects.
	Dirs int
	// FilesPerDir is the slot count (and initial file count) per directory.
	FilesPerDir int
	// FileSizeMin/Max bound the (uniform) file sizes in bytes.
	FileSizeMin, FileSizeMax int
	// DirBytes is the directory object size.
	DirBytes int

	// SteadyOps is the number of replace operations in each steady phase.
	SteadyOps int
	// BurstOps is the number of replace operations in the burst phase,
	// issued without interleaved read traffic.
	BurstOps int
	// QuietReads is the number of read accesses in the quiet phase.
	QuietReads int
	// ReadsPerOp is the read traffic interleaved with each steady replace.
	ReadsPerOp int

	// HotFraction of the directories receive HotShare of the churn.
	HotFraction float64
	// HotShare is the probability a churn operation hits the hot set.
	HotShare float64
}

// DefaultChurn returns a workload comparable in size to the OO7 Small'
// trace: ~3 MB of data and ~20k replace operations.
func DefaultChurn() ChurnParams {
	return ChurnParams{
		Dirs:        200,
		FilesPerDir: 30,
		FileSizeMin: 200,
		FileSizeMax: 800,
		DirBytes:    400,
		SteadyOps:   8000,
		BurstOps:    4000,
		QuietReads:  8000,
		ReadsPerOp:  2,
		HotFraction: 0.2,
		HotShare:    0.8,
	}
}

// Validate checks the parameters.
func (p ChurnParams) Validate() error {
	switch {
	case p.Dirs < 1 || p.FilesPerDir < 1:
		return fmt.Errorf("workload: need at least one directory and file slot")
	case p.FileSizeMin < 1 || p.FileSizeMax < p.FileSizeMin:
		return fmt.Errorf("workload: bad file size range [%d,%d]", p.FileSizeMin, p.FileSizeMax)
	case p.DirBytes < 1:
		return fmt.Errorf("workload: DirBytes must be positive")
	case p.SteadyOps < 0 || p.BurstOps < 0 || p.QuietReads < 0 || p.ReadsPerOp < 0:
		return fmt.Errorf("workload: negative op counts")
	case p.HotFraction < 0 || p.HotFraction > 1 || p.HotShare < 0 || p.HotShare > 1:
		return fmt.Errorf("workload: hot fractions must be in [0,1]")
	}
	return nil
}

// Phase labels emitted by the churn workload.
const (
	PhaseBuild   = "Build"
	PhaseSteady1 = "Steady1"
	PhaseBurst   = "Burst"
	PhaseQuiet   = "Quiet"
	PhaseSteady2 = "Steady2"
)

// churnGen carries generation state.
type churnGen struct {
	p   ChurnParams
	rng *rand.Rand
	tr  *trace.Trace
	st  *objstore.Store

	dirs []objstore.OID
	hot  int // the first hot dirs in the slice are the hot set
}

// Churn generates the five-phase churn trace for the given seed.
func Churn(p ChurnParams, seed int64) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &churnGen{
		p:   p,
		rng: rand.New(rand.NewSource(seed)),
		tr:  &trace.Trace{},
		st:  objstore.NewStore(),
		hot: int(float64(p.Dirs) * p.HotFraction),
	}
	if err := g.build(); err != nil {
		return nil, err
	}
	g.phase(PhaseSteady1)
	if err := g.steady(p.SteadyOps); err != nil {
		return nil, err
	}
	g.phase(PhaseBurst)
	if err := g.burst(p.BurstOps); err != nil {
		return nil, err
	}
	g.phase(PhaseQuiet)
	if err := g.quiet(p.QuietReads); err != nil {
		return nil, err
	}
	g.phase(PhaseSteady2)
	if err := g.steady(p.SteadyOps); err != nil {
		return nil, err
	}
	return g.tr, nil
}

func (g *churnGen) phase(label string) {
	g.tr.Append(trace.Event{Kind: trace.KindPhase, Label: label})
}

func (g *churnGen) fileSize() int {
	return g.p.FileSizeMin + g.rng.Intn(g.p.FileSizeMax-g.p.FileSizeMin+1)
}

func (g *churnGen) create(class objstore.Class, size, nslots int) (objstore.OID, error) {
	o, err := g.st.Create(class, size, nslots)
	if err != nil {
		return objstore.NilOID, err
	}
	g.tr.Append(trace.Event{Kind: trace.KindCreate, OID: o.OID, Class: class, Size: size, Slots: nslots})
	return o.OID, nil
}

func (g *churnGen) build() error {
	g.phase(PhaseBuild)
	for d := 0; d < g.p.Dirs; d++ {
		dir, err := g.create(objstore.ClassUnknown, g.p.DirBytes, g.p.FilesPerDir)
		if err != nil {
			return err
		}
		if err := g.st.AddRoot(dir); err != nil {
			return err
		}
		g.tr.Append(trace.Event{Kind: trace.KindRoot, OID: dir, Size: 1})
		g.dirs = append(g.dirs, dir)
		for f := 0; f < g.p.FilesPerDir; f++ {
			file, err := g.create(objstore.ClassDocument, g.fileSize(), 0)
			if err != nil {
				return err
			}
			if _, err := g.st.SetSlot(dir, f, file); err != nil {
				return err
			}
			// Wiring a fresh file into its directory is an initializing
			// store during Build only.
			g.tr.Append(trace.Event{
				Kind: trace.KindOverwrite, OID: dir, Slot: f, New: file, Init: true,
			})
		}
	}
	return nil
}

// pickDir applies the hot/cold skew.
func (g *churnGen) pickDir() objstore.OID {
	if g.hot > 0 && g.rng.Float64() < g.p.HotShare {
		return g.dirs[g.rng.Intn(g.hot)]
	}
	return g.dirs[g.rng.Intn(len(g.dirs))]
}

// replace swaps one random file of one directory: the old file becomes
// garbage in a single overwrite (create new; point slot at it).
func (g *churnGen) replace() error {
	dir := g.pickDir()
	slot := g.rng.Intn(g.p.FilesPerDir)
	d := g.st.Get(dir)
	if d == nil {
		return fmt.Errorf("workload: directory %v vanished", dir)
	}
	oldFile := d.Slots[slot]
	newFile, err := g.create(objstore.ClassDocument, g.fileSize(), 0)
	if err != nil {
		return err
	}
	old, err := g.st.SetSlot(dir, slot, newFile)
	if err != nil {
		return err
	}
	ev := trace.Event{Kind: trace.KindOverwrite, OID: dir, Slot: slot, Old: old, New: newFile}
	if !oldFile.IsNil() {
		f := g.st.Get(oldFile)
		if f == nil {
			return fmt.Errorf("workload: replaced file %v vanished", oldFile)
		}
		ev.Dead = []trace.DeadObject{{OID: oldFile, Size: f.Size}}
	}
	g.tr.Append(ev)
	return nil
}

func (g *churnGen) access(oid objstore.OID) {
	g.tr.Append(trace.Event{Kind: trace.KindAccess, OID: oid})
}

// randomRead accesses a random directory and one of its live files.
func (g *churnGen) randomRead() error {
	dir := g.pickDir()
	g.access(dir)
	d := g.st.Get(dir)
	if d == nil {
		return fmt.Errorf("workload: directory %v vanished", dir)
	}
	if f := d.Slots[g.rng.Intn(len(d.Slots))]; !f.IsNil() {
		g.access(f)
	}
	return nil
}

func (g *churnGen) steady(ops int) error {
	for i := 0; i < ops; i++ {
		if err := g.replace(); err != nil {
			return err
		}
		for r := 0; r < g.p.ReadsPerOp; r++ {
			if err := g.randomRead(); err != nil {
				return err
			}
		}
	}
	return nil
}

func (g *churnGen) burst(ops int) error {
	for i := 0; i < ops; i++ {
		if err := g.replace(); err != nil {
			return err
		}
	}
	return nil
}

func (g *churnGen) quiet(reads int) error {
	for i := 0; i < reads; i++ {
		if err := g.randomRead(); err != nil {
			return err
		}
	}
	return nil
}
