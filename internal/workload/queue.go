package workload

import (
	"fmt"
	"math/rand"

	"odbgc/internal/objstore"
	"odbgc/internal/trace"
)

// QueueParams describe a sliding-window (FIFO log) workload: entries are
// appended at the head and trimmed from the tail. Dead entries form a
// pinning chain across partitions — each trimmed entry's forward pointer
// holds a remembered-set entry on its successor — so a partitioned
// collector can only ever reclaim the unpinned prefix segment of the dead
// chain. Greedy selection policies (max overwrites, max garbage) livelock
// re-collecting fully pinned partitions at zero yield; sweeping policies
// cope. Real log-structured systems avoid partitioned GC here entirely,
// which is exactly the kind of assumption violation §5 of the paper asks
// about.
type QueueParams struct {
	// WindowEntries is the number of live entries the queue maintains.
	WindowEntries int
	// EntryBytesMin/Max bound the (uniform) entry sizes.
	EntryBytesMin, EntryBytesMax int
	// Appends is the total number of append+trim operations after the
	// window fills.
	Appends int
	// ReadsPerAppend interleaves random reads over the live window.
	ReadsPerAppend int
}

// DefaultQueue returns a configuration comparable in volume to the other
// workloads: a 4000-entry window with 12000 append/trim cycles.
func DefaultQueue() QueueParams {
	return QueueParams{
		WindowEntries:  4000,
		EntryBytesMin:  200,
		EntryBytesMax:  600,
		Appends:        12000,
		ReadsPerAppend: 2,
	}
}

// Validate checks the parameters.
func (p QueueParams) Validate() error {
	switch {
	case p.WindowEntries < 2:
		return fmt.Errorf("workload: queue window %d must be >= 2", p.WindowEntries)
	case p.EntryBytesMin < 1 || p.EntryBytesMax < p.EntryBytesMin:
		return fmt.Errorf("workload: bad entry size range [%d,%d]", p.EntryBytesMin, p.EntryBytesMax)
	case p.Appends < 0 || p.ReadsPerAppend < 0:
		return fmt.Errorf("workload: negative op counts")
	}
	return nil
}

// Queue phase labels.
const (
	PhaseQueueFill  = "Fill"
	PhaseQueueSlide = "Slide"
	PhaseQueueDrain = "Drain"
)

// queueGen carries the queue generator's state.
//
// Representation: a rooted anchor object points at the oldest live entry,
// and each entry points at the next newer one. Appends link the previous
// newest entry to the new one; trims repoint the anchor past the oldest
// entry, which becomes garbage in that single overwrite (its forward
// pointer targets the still-reachable second-oldest entry, so it pins
// nothing the anchor does not already reach).
type queueGen struct {
	p   QueueParams
	rng *rand.Rand
	tr  *trace.Trace
	st  *objstore.Store

	anchor objstore.OID
	live   []objstore.OID // oldest first
}

// Queue generates the three-phase sliding-window trace.
func Queue(p QueueParams, seed int64) (*trace.Trace, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := &queueGen{
		p:   p,
		rng: rand.New(rand.NewSource(seed)),
		tr:  &trace.Trace{},
		st:  objstore.NewStore(),
	}
	if err := g.fill(); err != nil {
		return nil, err
	}
	if err := g.slide(); err != nil {
		return nil, err
	}
	if err := g.drain(); err != nil {
		return nil, err
	}
	return g.tr, nil
}

func (g *queueGen) phase(label string) {
	g.tr.Append(trace.Event{Kind: trace.KindPhase, Label: label})
}

func (g *queueGen) entrySize() int {
	return g.p.EntryBytesMin + g.rng.Intn(g.p.EntryBytesMax-g.p.EntryBytesMin+1)
}

// appendEntry creates a new newest entry, linked from the previous newest
// (or from the anchor when the queue is empty).
func (g *queueGen) appendEntry() error {
	e, err := g.st.Create(objstore.ClassUnknown, g.entrySize(), 1)
	if err != nil {
		return err
	}
	g.tr.Append(trace.Event{Kind: trace.KindCreate, OID: e.OID, Class: e.Class, Size: e.Size, Slots: 1})
	if n := len(g.live); n > 0 {
		prev := g.live[n-1]
		if _, err := g.st.SetSlot(prev, 0, e.OID); err != nil {
			return err
		}
		g.tr.Append(trace.Event{Kind: trace.KindOverwrite, OID: prev, Slot: 0, New: e.OID, Init: true})
	} else {
		if _, err := g.st.SetSlot(g.anchor, 0, e.OID); err != nil {
			return err
		}
		g.tr.Append(trace.Event{Kind: trace.KindOverwrite, OID: g.anchor, Slot: 0, New: e.OID, Init: true})
	}
	g.live = append(g.live, e.OID)
	return nil
}

// trimTail repoints the anchor past the oldest entry, which becomes
// garbage in that single overwrite (its forward pointer targets the still
// reachable second-oldest entry, pinning nothing).
func (g *queueGen) trimTail() error {
	oldest := g.live[0]
	second := g.live[1]
	old, err := g.st.SetSlot(g.anchor, 0, second)
	if err != nil {
		return err
	}
	o := g.st.Get(oldest)
	if o == nil {
		return fmt.Errorf("workload: queue entry %v vanished", oldest)
	}
	g.tr.Append(trace.Event{
		Kind: trace.KindOverwrite, OID: g.anchor, Slot: 0, Old: old, New: second,
		Dead: []trace.DeadObject{{OID: oldest, Size: o.Size}},
	})
	g.live = g.live[1:]
	return nil
}

func (g *queueGen) randomRead() {
	g.tr.Append(trace.Event{Kind: trace.KindAccess, OID: g.live[g.rng.Intn(len(g.live))]})
}

func (g *queueGen) fill() error {
	g.phase(PhaseQueueFill)
	a, err := g.st.Create(objstore.ClassModule, 64, 1)
	if err != nil {
		return err
	}
	g.anchor = a.OID
	g.tr.Append(trace.Event{Kind: trace.KindCreate, OID: a.OID, Class: a.Class, Size: a.Size, Slots: 1})
	if err := g.st.AddRoot(a.OID); err != nil {
		return err
	}
	g.tr.Append(trace.Event{Kind: trace.KindRoot, OID: a.OID, Size: 1})
	for i := 0; i < g.p.WindowEntries; i++ {
		if err := g.appendEntry(); err != nil {
			return err
		}
	}
	return nil
}

func (g *queueGen) slide() error {
	g.phase(PhaseQueueSlide)
	for i := 0; i < g.p.Appends; i++ {
		if err := g.appendEntry(); err != nil {
			return err
		}
		if err := g.trimTail(); err != nil {
			return err
		}
		for r := 0; r < g.p.ReadsPerAppend; r++ {
			g.randomRead()
		}
	}
	return nil
}

func (g *queueGen) drain() error {
	g.phase(PhaseQueueDrain)
	for len(g.live) > 1 {
		if err := g.trimTail(); err != nil {
			return err
		}
	}
	// The final entry: sever the anchor entirely.
	last := g.live[0]
	old, err := g.st.SetSlot(g.anchor, 0, objstore.NilOID)
	if err != nil {
		return err
	}
	o := g.st.Get(last)
	if o == nil {
		return fmt.Errorf("workload: queue entry %v vanished", last)
	}
	g.tr.Append(trace.Event{
		Kind: trace.KindOverwrite, OID: g.anchor, Slot: 0, Old: old, New: objstore.NilOID,
		Dead: []trace.DeadObject{{OID: last, Size: o.Size}},
	})
	g.live = nil
	return nil
}
