package workload

import (
	"testing"

	"odbgc/internal/trace"
)

func TestChurnValidates(t *testing.T) {
	tr, err := Churn(DefaultChurn(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("churn trace invalid: %v", err)
	}
	s := trace.ComputeStats(tr)
	t.Logf("events=%d overwrites=%d garbage=%dB (%.1f B/ow) phases=%v",
		s.Events, s.Overwrites, s.GarbageBytes, s.BytesPerOverwrite, s.Phases)
	if len(s.Phases) != 5 {
		t.Errorf("phases = %v", s.Phases)
	}
	wantOps := DefaultChurn().SteadyOps*2 + DefaultChurn().BurstOps
	if s.Overwrites != wantOps {
		t.Errorf("overwrites = %d, want %d", s.Overwrites, wantOps)
	}
	// Every replace kills exactly one leaf: garbage objects == overwrites.
	if s.GarbageObjects != wantOps {
		t.Errorf("garbage objects = %d, want %d", s.GarbageObjects, wantOps)
	}
}

func TestChurnParamsValidation(t *testing.T) {
	bad := []func(*ChurnParams){
		func(p *ChurnParams) { p.Dirs = 0 },
		func(p *ChurnParams) { p.FilesPerDir = 0 },
		func(p *ChurnParams) { p.FileSizeMax = p.FileSizeMin - 1 },
		func(p *ChurnParams) { p.DirBytes = 0 },
		func(p *ChurnParams) { p.SteadyOps = -1 },
		func(p *ChurnParams) { p.HotShare = 1.5 },
	}
	for i, mutate := range bad {
		p := DefaultChurn()
		mutate(&p)
		if _, err := Churn(p, 1); err == nil {
			t.Errorf("bad params #%d accepted", i)
		}
	}
}

func TestChurnDeterministic(t *testing.T) {
	a, err := Churn(DefaultChurn(), 9)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Churn(DefaultChurn(), 9)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		if a.Events[i].String() != b.Events[i].String() {
			t.Fatalf("event %d differs", i)
		}
	}
}

func TestChurnHotSkew(t *testing.T) {
	p := DefaultChurn()
	tr, err := Churn(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	// The hot set is the first Dirs*HotFraction directories created, i.e.
	// the lowest directory OIDs. Count overwrites per directory.
	hits := map[uint64]int{}
	var dirOIDs []uint64
	for _, e := range tr.Events {
		if e.Kind == trace.KindRoot {
			dirOIDs = append(dirOIDs, uint64(e.OID))
		}
		if e.Kind == trace.KindOverwrite && !e.Init {
			hits[uint64(e.OID)]++
		}
	}
	hotN := int(float64(p.Dirs) * p.HotFraction)
	hotHits, totHits := 0, 0
	for i, d := range dirOIDs {
		totHits += hits[d]
		if i < hotN {
			hotHits += hits[d]
		}
	}
	share := float64(hotHits) / float64(totHits)
	t.Logf("hot set (%d dirs of %d) received %.1f%% of churn", hotN, p.Dirs, share*100)
	// HotShare 0.8 plus the hot set's share of uniform picks.
	if share < 0.7 {
		t.Errorf("hot share %.2f below expectation", share)
	}
}

func TestChurnQuietPhaseIsReadOnly(t *testing.T) {
	tr, err := Churn(DefaultChurn(), 5)
	if err != nil {
		t.Fatal(err)
	}
	inQuiet := false
	for _, e := range tr.Events {
		if e.Kind == trace.KindPhase {
			inQuiet = e.Label == PhaseQuiet
			continue
		}
		if inQuiet && e.Kind != trace.KindAccess {
			t.Fatalf("quiet phase contains a %v event", e.Kind)
		}
	}
}
