package simerr

import (
	"context"
	"errors"
	"fmt"
	"testing"
)

func TestSentinelsAreDistinct(t *testing.T) {
	sentinels := []error{
		ErrCanceled, ErrTimeout, ErrFaultExhausted,
		ErrCorruptCheckpoint, ErrPolicyFailure, ErrCorruptTrace,
		ErrOverloaded, ErrSessionClosed,
		ErrTornWrite, ErrRecoveryFailed,
	}
	for i, a := range sentinels {
		for j, b := range sentinels {
			if (i == j) != errors.Is(a, b) {
				t.Errorf("errors.Is(%v, %v) = %v", a, b, i == j)
			}
		}
	}
}

func TestClassify(t *testing.T) {
	cases := []struct {
		err  error
		want Class
	}{
		{nil, ClassOK},
		{ErrCanceled, ClassCanceled},
		{fmt.Errorf("run 3: %w", ErrTimeout), ClassTimeout},
		{fmt.Errorf("a: %w: b: %w", ErrFaultExhausted, errors.New("disk")), ClassFaultExhausted},
		{WrapCorruptCheckpoint("run-003.gob", errors.New("bad checksum")), ClassCorruptCheckpoint},
		{WrapPolicyFailure("building saga", errors.New("bad frac")), ClassPolicyFailure},
		{fmt.Errorf("trace: %w", ErrCorruptTrace), ClassCorruptTrace},
		{ErrOverloaded, ClassOverloaded},
		{Overloadedf("queue full (%d waiting)", 128), ClassOverloaded},
		{ErrSessionClosed, ClassSessionClosed},
		{SessionClosedf("server draining"), ClassSessionClosed},
		{ErrTornWrite, ClassTornWrite},
		{WrapTornWrite("wal record 12", errors.New("crc mismatch")), ClassTornWrite},
		{ErrRecoveryFailed, ClassRecoveryFailed},
		{WrapRecoveryFailed("page 3", errors.New("bad checksum")), ClassRecoveryFailed},
		// Precedence: a torn record recovery could not absorb reports the
		// unrecoverable store, not the tear that caused it — corruption,
		// never a retryable I/O failure.
		{WrapRecoveryFailed("replay", ErrTornWrite), ClassRecoveryFailed},
		{context.Canceled, ClassCanceled},
		{context.DeadlineExceeded, ClassTimeout},
		{errors.New("disk on fire"), ClassOther},
		// Precedence: a timeout that surfaced via cancellation is a timeout.
		{fmt.Errorf("%w: %w", ErrCanceled, ErrTimeout), ClassTimeout},
		// Precedence: a request shed during drain reports the admission
		// refusal, not the drain's cancellation.
		{fmt.Errorf("%w: %w", ErrCanceled, ErrOverloaded), ClassOverloaded},
		// Precedence: a session that closed because the drain deadline
		// elapsed reports the timeout — the sharper diagnosis.
		{fmt.Errorf("%w: %w", ErrSessionClosed, ErrTimeout), ClassTimeout},
	}
	for _, c := range cases {
		if got := Classify(c.err); got != c.want {
			t.Errorf("Classify(%v) = %q, want %q", c.err, got, c.want)
		}
	}
}

func TestFromContext(t *testing.T) {
	if err := FromContext(nil); err != nil {
		t.Errorf("FromContext(nil) = %v", err)
	}
	err := FromContext(context.DeadlineExceeded)
	if !errors.Is(err, ErrTimeout) || !errors.Is(err, context.DeadlineExceeded) {
		t.Errorf("deadline mapping lost a sentinel: %v", err)
	}
	err = FromContext(context.Canceled)
	if !errors.Is(err, ErrCanceled) || !errors.Is(err, context.Canceled) {
		t.Errorf("cancel mapping lost a sentinel: %v", err)
	}
	plain := errors.New("unrelated")
	if got := FromContext(plain); got != plain {
		t.Errorf("non-context error rewritten: %v", got)
	}

	// The real thing: a context cancelled by deadline classifies as timeout.
	ctx, cancel := context.WithTimeout(context.Background(), 0)
	defer cancel()
	<-ctx.Done()
	if got := Classify(FromContext(ctx.Err())); got != ClassTimeout {
		t.Errorf("expired context classifies as %q", got)
	}
}

func TestFailureClassesCoverClassify(t *testing.T) {
	seen := map[Class]bool{}
	for _, c := range FailureClasses() {
		if seen[c] {
			t.Errorf("duplicate class %q", c)
		}
		seen[c] = true
	}
	for _, pair := range classOf {
		if !seen[pair.class] {
			t.Errorf("class %q missing from FailureClasses", pair.class)
		}
	}
}
