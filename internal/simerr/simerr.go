// Package simerr is the repository's structured failure taxonomy: a small
// set of errors.Is-able sentinels that every layer — the simulator, the
// fault injector, the trace codecs, the batch supervisor, and the CLIs —
// wraps into the errors it returns, so callers and the observability layer
// classify failures by identity instead of string-matching messages.
//
// The package is a leaf: it imports only the standard library, so any
// package (including internal/trace and internal/fault, which sit below the
// simulator) can adopt the taxonomy without import cycles.
//
// Usage pattern: producers wrap a sentinel into their error chain with
// fmt.Errorf("context: %w: %w", simerr.ErrTimeout, cause) or the W*
// helpers; consumers test errors.Is(err, simerr.ErrTimeout) or bucket with
// Classify for metrics.
package simerr

import (
	"context"
	"errors"
	"fmt"
)

// The sentinels. Each names a failure class with distinct handling:
//
//   - ErrCanceled: the caller asked the work to stop (context cancellation,
//     SIGINT drain). Not a defect; partial results and checkpoints are valid.
//   - ErrTimeout: a deadline elapsed — a watchdog or -run-timeout cancelled
//     a wedged run. The run's partial state must be discarded.
//   - ErrFaultExhausted: every retry of a transiently failing operation (or
//     run) failed; the transient fault turned out not to be.
//   - ErrCorruptCheckpoint: persisted state — a checkpoint file or a cached
//     per-run result — failed validation on load. Safe handling is delete
//     and recompute.
//   - ErrPolicyFailure: a rate policy, estimator, or selection policy could
//     not be built or misbehaved; retrying without a config change is futile.
//   - ErrCorruptTrace: an input event stream is truncated or damaged.
//   - ErrOverloaded: the serving path refused work because an admission
//     limit (bounded queue, session cap) was reached. The request was shed
//     before touching any state; retrying after a backoff is the right
//     response, and the server attaches a retry-after hint.
//   - ErrSessionClosed: a client session ended before the request could be
//     served — the server is draining, the connection idled out, or the peer
//     disconnected mid-request. Not a defect; the request may be resent on a
//     fresh session once the server is accepting again.
//   - ErrTornWrite: a persisted page or log record is partially written —
//     its checksum or length prefix does not cover the bytes on disk. Torn
//     state is corruption, not transient I/O: retrying the read returns the
//     same bytes, so recovery (or deletion) is the only safe handling.
//   - ErrRecoveryFailed: crash recovery could not rebuild a consistent
//     store — the checkpoint image or the committed WAL prefix itself is
//     damaged beyond redo. This classifies as corruption, never as a
//     transient I/O failure: retry logic must not re-run recovery against
//     an unrecoverable store.
var (
	ErrCanceled          = errors.New("simerr: canceled")
	ErrTimeout           = errors.New("simerr: timeout")
	ErrFaultExhausted    = errors.New("simerr: fault retries exhausted")
	ErrCorruptCheckpoint = errors.New("simerr: corrupt checkpoint")
	ErrPolicyFailure     = errors.New("simerr: policy failure")
	ErrCorruptTrace      = errors.New("simerr: corrupt trace")
	ErrOverloaded        = errors.New("simerr: overloaded")
	ErrSessionClosed     = errors.New("simerr: session closed")
	ErrTornWrite         = errors.New("simerr: torn write")
	ErrRecoveryFailed    = errors.New("simerr: recovery failed")
)

// Class is a failure bucket for counters and reports. The zero value is
// ClassOK ("no failure").
type Class string

// The classes, one per sentinel plus OK and Other.
const (
	ClassOK                Class = "ok"
	ClassCanceled          Class = "canceled"
	ClassTimeout           Class = "timeout"
	ClassFaultExhausted    Class = "fault_exhausted"
	ClassCorruptCheckpoint Class = "corrupt_checkpoint"
	ClassPolicyFailure     Class = "policy_failure"
	ClassCorruptTrace      Class = "corrupt_trace"
	ClassOverloaded        Class = "overloaded"
	ClassSessionClosed     Class = "session_closed"
	ClassTornWrite         Class = "torn_write"
	ClassRecoveryFailed    Class = "recovery_failed"
	ClassOther             Class = "other"
)

// FailureClasses lists every failure class (everything except ClassOK), in
// a fixed order suitable for metric registration.
func FailureClasses() []Class {
	return []Class{
		ClassCanceled, ClassTimeout, ClassFaultExhausted,
		ClassCorruptCheckpoint, ClassPolicyFailure, ClassCorruptTrace,
		ClassOverloaded, ClassSessionClosed,
		ClassTornWrite, ClassRecoveryFailed,
		ClassOther,
	}
}

// classOf pairs sentinels with their classes in precedence order: the more
// specific diagnosis wins when a chain carries several sentinels (a timed-out
// run is reported as a timeout even though the deadline surfaced as a
// cancellation).
var classOf = []struct {
	err   error
	class Class
}{
	{ErrTimeout, ClassTimeout},
	// Recovery failure outranks torn-write: a torn record that recovery
	// could not absorb is reported as the unrecoverable store it produced.
	{ErrRecoveryFailed, ClassRecoveryFailed},
	{ErrTornWrite, ClassTornWrite},
	{ErrCorruptCheckpoint, ClassCorruptCheckpoint},
	{ErrCorruptTrace, ClassCorruptTrace},
	{ErrFaultExhausted, ClassFaultExhausted},
	{ErrOverloaded, ClassOverloaded},
	{ErrSessionClosed, ClassSessionClosed},
	{ErrPolicyFailure, ClassPolicyFailure},
	{ErrCanceled, ClassCanceled},
}

// Classify buckets an error by the taxonomy. nil classifies as ClassOK;
// context errors classify as if wrapped by FromContext; anything outside the
// taxonomy is ClassOther.
func Classify(err error) Class {
	if err == nil {
		return ClassOK
	}
	for _, c := range classOf {
		if errors.Is(err, c.err) {
			return c.class
		}
	}
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		return ClassTimeout
	case errors.Is(err, context.Canceled):
		return ClassCanceled
	}
	return ClassOther
}

// FromContext converts a context error into its taxonomy equivalent:
// DeadlineExceeded becomes ErrTimeout, Canceled becomes ErrCanceled. The
// original error stays in the chain so errors.Is against the context
// sentinels keeps working. Non-context errors pass through unchanged.
func FromContext(err error) error {
	switch {
	case err == nil:
		return nil
	case errors.Is(err, context.DeadlineExceeded):
		return fmt.Errorf("%w: %w", ErrTimeout, err)
	case errors.Is(err, context.Canceled):
		return fmt.Errorf("%w: %w", ErrCanceled, err)
	}
	return err
}

// Canceledf builds an ErrCanceled-classified error.
func Canceledf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrCanceled, fmt.Sprintf(format, args...))
}

// WrapCorruptCheckpoint marks err as a corrupt-checkpoint failure, keeping
// the cause in the chain. A nil cause returns a bare classified error.
func WrapCorruptCheckpoint(detail string, cause error) error {
	if cause == nil {
		return fmt.Errorf("%w: %s", ErrCorruptCheckpoint, detail)
	}
	return fmt.Errorf("%w: %s: %w", ErrCorruptCheckpoint, detail, cause)
}

// WrapPolicyFailure marks err as a policy failure, keeping the cause in the
// chain.
func WrapPolicyFailure(detail string, cause error) error {
	if cause == nil {
		return fmt.Errorf("%w: %s", ErrPolicyFailure, detail)
	}
	return fmt.Errorf("%w: %s: %w", ErrPolicyFailure, detail, cause)
}

// WrapFaultExhausted marks err as a fault-retries-exhausted failure, keeping
// the cause in the chain.
func WrapFaultExhausted(detail string, cause error) error {
	if cause == nil {
		return fmt.Errorf("%w: %s", ErrFaultExhausted, detail)
	}
	return fmt.Errorf("%w: %s: %w", ErrFaultExhausted, detail, cause)
}

// Overloadedf builds an ErrOverloaded-classified error (an admission limit
// refused the work before any state changed).
func Overloadedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrOverloaded, fmt.Sprintf(format, args...))
}

// SessionClosedf builds an ErrSessionClosed-classified error (the session
// ended — drain, idle reap, or peer disconnect — before the request was
// served).
func SessionClosedf(format string, args ...any) error {
	return fmt.Errorf("%w: %s", ErrSessionClosed, fmt.Sprintf(format, args...))
}

// WrapTornWrite marks err as a torn-write corruption (a page or log record
// whose persisted bytes fail their checksum or length), keeping the cause
// in the chain. A nil cause returns a bare classified error.
func WrapTornWrite(detail string, cause error) error {
	if cause == nil {
		return fmt.Errorf("%w: %s", ErrTornWrite, detail)
	}
	return fmt.Errorf("%w: %s: %w", ErrTornWrite, detail, cause)
}

// WrapRecoveryFailed marks err as an unrecoverable-store failure, keeping
// the cause in the chain. Recovery failures are corruption, never transient
// I/O: callers must not retry against the same store.
func WrapRecoveryFailed(detail string, cause error) error {
	if cause == nil {
		return fmt.Errorf("%w: %s", ErrRecoveryFailed, detail)
	}
	return fmt.Errorf("%w: %s: %w", ErrRecoveryFailed, detail, cause)
}
