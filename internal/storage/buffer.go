package storage

import (
	"container/list"
	"fmt"
)

// BufferPool is a page-granular LRU cache. It tracks residency, dirty
// state, and reference pins; page contents live with the pool's owner (the
// logical object store for the simulated manager, the pager's frame map for
// the disk backend). The pool is deliberately simple — the paper's buffer
// is a plain LRU sized to one partition (§3.1) — but write-back is
// explicit: a dirty page leaves the pool (eviction) or loses its dirty bit
// (Flush) only through the registered write-back hook, so a disk-backed
// owner can order the physical page write after the WAL append that
// covers it.
type BufferPool struct {
	capacity int
	lru      *list.List               // front = most recently used
	frames   map[PageID]*list.Element // page -> element whose Value is *frame

	// writeback, when non-nil, persists a dirty page's contents. It runs
	// before the page is evicted or marked clean; an error aborts the
	// eviction or flush with the page still resident and dirty. The disk
	// backend's hook is where the write-ordering invariant lives: flush the
	// WAL through the page's recovery LSN, then write the page.
	writeback func(PageID) error
}

type frame struct {
	page  PageID
	dirty bool
	refs  int // pin count; referenced frames are never evicted
}

// PinResult reports what a Pin did, so the Manager can charge I/O.
type PinResult struct {
	Hit       bool
	ReadFault bool   // page was absent and had a disk image to read
	WroteBack bool   // a dirty victim was evicted and written
	Victim    PageID // valid when WroteBack
}

// NewBufferPool returns an LRU pool holding up to capacity pages.
func NewBufferPool(capacity int) (*BufferPool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: buffer capacity %d must be positive", capacity)
	}
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		frames:   make(map[PageID]*list.Element, capacity),
	}, nil
}

// SetWriteback installs (or, with nil, removes) the dirty-page write-back
// hook. With no hook, evicting or flushing a dirty page only drops the
// dirty bit — the simulated manager's accounting-only behavior.
func (b *BufferPool) SetWriteback(fn func(PageID) error) { b.writeback = fn }

// Capacity returns the pool capacity in pages.
func (b *BufferPool) Capacity() int { return b.capacity }

// Len returns the number of resident pages.
func (b *BufferPool) Len() int { return b.lru.Len() }

// Pin makes the page resident and most-recently-used. dirty marks it dirty;
// fresh indicates the page has no disk image (a brand-new or fully
// rewritten page), so a miss does not cost a read.
//
// On a miss with a full pool, the least-recently-used unreferenced page is
// evicted; if it is dirty, the write-back hook runs first and its error
// aborts the pin. A pool whose every frame is referenced cannot evict and
// the pin fails. Without a write-back hook and without references (the
// simulated manager), Pin never fails.
func (b *BufferPool) Pin(pg PageID, dirty, fresh bool) (PinResult, error) {
	var res PinResult
	if el, ok := b.frames[pg]; ok {
		res.Hit = true
		b.lru.MoveToFront(el)
		if dirty {
			el.Value.(*frame).dirty = true
		}
		return res, nil
	}
	if !fresh {
		res.ReadFault = true
	}
	if b.lru.Len() >= b.capacity {
		victim := b.lru.Back()
		for victim != nil && victim.Value.(*frame).refs > 0 {
			victim = victim.Prev()
		}
		if victim == nil {
			return res, fmt.Errorf("storage: buffer pool wedged: all %d frames referenced", b.capacity)
		}
		vf := victim.Value.(*frame)
		if vf.dirty {
			if b.writeback != nil {
				if err := b.writeback(vf.page); err != nil {
					return res, fmt.Errorf("storage: write back %v evicting for %v: %w", vf.page, pg, err)
				}
			}
			res.WroteBack = true
			res.Victim = vf.page
		}
		b.lru.Remove(victim)
		delete(b.frames, vf.page)
		// Recycle the evicted frame: once the pool is full, Pin allocates
		// nothing.
		vf.page, vf.dirty, vf.refs = pg, dirty, 0
		b.frames[pg] = b.lru.PushFront(vf)
		return res, nil
	}
	//lint:allow hotalloc one frame per pool slot while the pool fills; evictions recycle frames
	b.frames[pg] = b.lru.PushFront(&frame{page: pg, dirty: dirty}) //lint:allow hotbox one frame per pool slot while the pool fills
	return res, nil
}

// Ref pins a resident page against eviction, returning false if the page
// is not resident. Each Ref must be paired with an Unref; a referenced
// page stays resident (and its contents stable for the pool's owner) no
// matter what Pin brings in around it.
func (b *BufferPool) Ref(pg PageID) bool {
	el, ok := b.frames[pg]
	if !ok {
		return false
	}
	el.Value.(*frame).refs++
	return true
}

// Unref releases one reference on a resident page. Unreferencing a page
// that is absent or unreferenced is a bug in the pool's owner.
func (b *BufferPool) Unref(pg PageID) error {
	el, ok := b.frames[pg]
	if !ok {
		return fmt.Errorf("storage: unref of non-resident page %v", pg)
	}
	f := el.Value.(*frame)
	if f.refs <= 0 {
		return fmt.Errorf("storage: unref of unreferenced page %v", pg)
	}
	f.refs--
	return nil
}

// Refs returns the pin count of a page (0 if absent).
func (b *BufferPool) Refs(pg PageID) int {
	if el, ok := b.frames[pg]; ok {
		return el.Value.(*frame).refs
	}
	return 0
}

// Contains reports whether the page is resident.
func (b *BufferPool) Contains(pg PageID) bool {
	_, ok := b.frames[pg]
	return ok
}

// IsDirty reports whether the page is resident and dirty.
func (b *BufferPool) IsDirty(pg PageID) bool {
	el, ok := b.frames[pg]
	return ok && el.Value.(*frame).dirty
}

// Flush writes back a resident dirty page through the write-back hook and
// clears its dirty bit, returning true if a write-back happened. The page
// stays resident. An error from the hook leaves the page dirty.
func (b *BufferPool) Flush(pg PageID) (bool, error) {
	el, ok := b.frames[pg]
	if !ok {
		return false, nil
	}
	f := el.Value.(*frame)
	if !f.dirty {
		return false, nil
	}
	if b.writeback != nil {
		if err := b.writeback(pg); err != nil {
			return false, fmt.Errorf("storage: flush %v: %w", pg, err)
		}
	}
	f.dirty = false
	return true, nil
}

// Clean clears the dirty bit of a resident page without invoking the
// write-back hook, returning true if the page was resident and dirty. It
// models a write-back accounted elsewhere (the simulated manager charges
// the I/O itself); disk-backed owners should use Flush.
func (b *BufferPool) Clean(pg PageID) bool {
	el, ok := b.frames[pg]
	if !ok {
		return false
	}
	f := el.Value.(*frame)
	if !f.dirty {
		return false
	}
	f.dirty = false
	return true
}

// Drop discards a resident page without write-back (its disk image is
// obsolete, e.g. freed space after compaction). Returns true if resident.
// Referenced pages cannot be dropped.
func (b *BufferPool) Drop(pg PageID) bool {
	el, ok := b.frames[pg]
	if !ok {
		return false
	}
	if el.Value.(*frame).refs > 0 {
		return false
	}
	b.lru.Remove(el)
	delete(b.frames, pg)
	return true
}

// DirtyPages returns the resident dirty pages in LRU order (oldest first).
func (b *BufferPool) DirtyPages() []PageID {
	var out []PageID
	for el := b.lru.Back(); el != nil; el = el.Prev() {
		if f := el.Value.(*frame); f.dirty {
			out = append(out, f.page)
		}
	}
	return out
}

// FrameState records one buffered page for checkpointing.
type FrameState struct {
	Page  PageID
	Dirty bool
}

// Snapshot captures the resident pages in LRU order (oldest first) with
// their dirty bits, for checkpointing. Reference counts are runtime state
// (they exist only within one operation) and are not captured.
func (b *BufferPool) Snapshot() []FrameState {
	out := make([]FrameState, 0, b.lru.Len())
	for el := b.lru.Back(); el != nil; el = el.Prev() {
		f := el.Value.(*frame)
		out = append(out, FrameState{Page: f.page, Dirty: f.dirty})
	}
	return out
}

// Restore replaces the pool contents with a snapshot taken by Snapshot.
// Frames are given oldest-first and must fit the capacity.
func (b *BufferPool) Restore(frames []FrameState) error {
	if len(frames) > b.capacity {
		return fmt.Errorf("storage: restoring %d frames into a %d-page pool", len(frames), b.capacity)
	}
	b.lru.Init()
	clear(b.frames)
	for _, fs := range frames {
		if _, dup := b.frames[fs.Page]; dup {
			return fmt.Errorf("storage: duplicate page %v in buffer snapshot", fs.Page)
		}
		b.frames[fs.Page] = b.lru.PushFront(&frame{page: fs.Page, dirty: fs.Dirty})
	}
	return nil
}

// Pages returns all resident pages in LRU order (oldest first).
func (b *BufferPool) Pages() []PageID {
	out := make([]PageID, 0, b.lru.Len())
	for el := b.lru.Back(); el != nil; el = el.Prev() {
		out = append(out, el.Value.(*frame).page)
	}
	return out
}
