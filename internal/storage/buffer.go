package storage

import (
	"container/list"
	"fmt"
)

// BufferPool is a page-granular LRU cache. It tracks residency and dirty
// state only; page contents live in the logical object store. The pool is
// deliberately simple — the paper's buffer is a plain LRU sized to one
// partition (§3.1).
type BufferPool struct {
	capacity int
	lru      *list.List               // front = most recently used
	frames   map[PageID]*list.Element // page -> element whose Value is *frame
}

type frame struct {
	page  PageID
	dirty bool
}

// PinResult reports what a Pin did, so the Manager can charge I/O.
type PinResult struct {
	Hit       bool
	ReadFault bool   // page was absent and had a disk image to read
	WroteBack bool   // a dirty victim was evicted and written
	Victim    PageID // valid when WroteBack
}

// NewBufferPool returns an LRU pool holding up to capacity pages.
func NewBufferPool(capacity int) (*BufferPool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("storage: buffer capacity %d must be positive", capacity)
	}
	return &BufferPool{
		capacity: capacity,
		lru:      list.New(),
		frames:   make(map[PageID]*list.Element, capacity),
	}, nil
}

// Capacity returns the pool capacity in pages.
func (b *BufferPool) Capacity() int { return b.capacity }

// Len returns the number of resident pages.
func (b *BufferPool) Len() int { return b.lru.Len() }

// Pin makes the page resident and most-recently-used. dirty marks it dirty;
// fresh indicates the page has no disk image (a brand-new or fully
// rewritten page), so a miss does not cost a read.
func (b *BufferPool) Pin(pg PageID, dirty, fresh bool) PinResult {
	var res PinResult
	if el, ok := b.frames[pg]; ok {
		res.Hit = true
		b.lru.MoveToFront(el)
		if dirty {
			el.Value.(*frame).dirty = true
		}
		return res
	}
	if !fresh {
		res.ReadFault = true
	}
	if b.lru.Len() >= b.capacity {
		victim := b.lru.Back()
		vf := victim.Value.(*frame)
		if vf.dirty {
			res.WroteBack = true
			res.Victim = vf.page
		}
		b.lru.Remove(victim)
		delete(b.frames, vf.page)
		// Recycle the evicted frame: once the pool is full, Pin allocates
		// nothing.
		vf.page, vf.dirty = pg, dirty
		b.frames[pg] = b.lru.PushFront(vf)
		return res
	}
	//lint:allow hotalloc one frame per pool slot while the pool fills; evictions recycle frames
	b.frames[pg] = b.lru.PushFront(&frame{page: pg, dirty: dirty}) //lint:allow hotbox one frame per pool slot while the pool fills
	return res
}

// Contains reports whether the page is resident.
func (b *BufferPool) Contains(pg PageID) bool {
	_, ok := b.frames[pg]
	return ok
}

// IsDirty reports whether the page is resident and dirty.
func (b *BufferPool) IsDirty(pg PageID) bool {
	el, ok := b.frames[pg]
	return ok && el.Value.(*frame).dirty
}

// Clean clears the dirty bit of a resident page, returning true if the page
// was resident and dirty (i.e. a write-back happened).
func (b *BufferPool) Clean(pg PageID) bool {
	el, ok := b.frames[pg]
	if !ok {
		return false
	}
	f := el.Value.(*frame)
	if !f.dirty {
		return false
	}
	f.dirty = false
	return true
}

// Drop discards a resident page without write-back (its disk image is
// obsolete, e.g. freed space after compaction). Returns true if resident.
func (b *BufferPool) Drop(pg PageID) bool {
	el, ok := b.frames[pg]
	if !ok {
		return false
	}
	b.lru.Remove(el)
	delete(b.frames, pg)
	return true
}

// DirtyPages returns the resident dirty pages in LRU order (oldest first).
func (b *BufferPool) DirtyPages() []PageID {
	var out []PageID
	for el := b.lru.Back(); el != nil; el = el.Prev() {
		if f := el.Value.(*frame); f.dirty {
			out = append(out, f.page)
		}
	}
	return out
}

// FrameState records one buffered page for checkpointing.
type FrameState struct {
	Page  PageID
	Dirty bool
}

// Snapshot captures the resident pages in LRU order (oldest first) with
// their dirty bits, for checkpointing.
func (b *BufferPool) Snapshot() []FrameState {
	out := make([]FrameState, 0, b.lru.Len())
	for el := b.lru.Back(); el != nil; el = el.Prev() {
		f := el.Value.(*frame)
		out = append(out, FrameState{Page: f.page, Dirty: f.dirty})
	}
	return out
}

// Restore replaces the pool contents with a snapshot taken by Snapshot.
// Frames are given oldest-first and must fit the capacity.
func (b *BufferPool) Restore(frames []FrameState) error {
	if len(frames) > b.capacity {
		return fmt.Errorf("storage: restoring %d frames into a %d-page pool", len(frames), b.capacity)
	}
	b.lru.Init()
	clear(b.frames)
	for _, fs := range frames {
		if _, dup := b.frames[fs.Page]; dup {
			return fmt.Errorf("storage: duplicate page %v in buffer snapshot", fs.Page)
		}
		b.frames[fs.Page] = b.lru.PushFront(&frame{page: fs.Page, dirty: fs.Dirty})
	}
	return nil
}

// Pages returns all resident pages in LRU order (oldest first).
func (b *BufferPool) Pages() []PageID {
	out := make([]PageID, 0, b.lru.Len())
	for el := b.lru.Back(); el != nil; el = el.Prev() {
		out = append(out, el.Value.(*frame).page)
	}
	return out
}
