package storage

import (
	"fmt"
	"sort"

	"odbgc/internal/objstore"
)

// PartitionState is one partition's checkpointable image. The partition's
// object set is not stored; it is rebuilt from the placement table.
type PartitionState struct {
	Cursor int
	Used   int
}

// PlacementEntry pairs an object with its placement, in a slice so the
// encoded form is deterministic.
type PlacementEntry struct {
	OID       objstore.OID
	Placement Placement
}

// ManagerState is a checkpointable image of a Manager. All fields are
// exported so the struct round-trips through encoding/gob. The fault
// injector is runtime wiring and deliberately not part of the state.
type ManagerState struct {
	Cfg        Config
	Partitions []PartitionState // index = PartitionID
	Placements []PlacementEntry // ascending OID
	Buffer     []FrameState     // LRU order, oldest first
	Stats      IOStats
	Class      IOClass
	AllocPart  PartitionID
	GCDirty    []PageID // sorted (Part, Index)
}

// Snapshot captures the manager's full physical state for checkpointing.
func (m *Manager) Snapshot() *ManagerState {
	st := &ManagerState{
		Cfg:       m.cfg,
		Stats:     m.stats,
		Class:     m.class,
		AllocPart: m.allocPart,
		Buffer:    m.buf.Snapshot(),
	}
	for _, p := range m.parts {
		st.Partitions = append(st.Partitions, PartitionState{Cursor: p.cursor, Used: p.used})
	}
	st.Placements = make([]PlacementEntry, 0, len(m.place))
	for oid, pl := range m.place {
		st.Placements = append(st.Placements, PlacementEntry{OID: oid, Placement: pl})
	}
	sort.Slice(st.Placements, func(i, j int) bool { return st.Placements[i].OID < st.Placements[j].OID })
	st.GCDirty = make([]PageID, 0, len(m.gcDirty))
	for pg := range m.gcDirty {
		st.GCDirty = append(st.GCDirty, pg)
	}
	sort.Slice(st.GCDirty, func(i, j int) bool {
		if st.GCDirty[i].Part != st.GCDirty[j].Part {
			return st.GCDirty[i].Part < st.GCDirty[j].Part
		}
		return st.GCDirty[i].Index < st.GCDirty[j].Index
	})
	return st
}

// RestoreManager rebuilds a Manager from a snapshot, validating internal
// consistency before returning it.
func RestoreManager(st *ManagerState) (*Manager, error) {
	if st == nil {
		return nil, fmt.Errorf("storage: nil manager state")
	}
	m, err := NewManager(st.Cfg)
	if err != nil {
		return nil, err
	}
	for i, ps := range st.Partitions {
		p := m.newPartition()
		if ps.Cursor < 0 || ps.Cursor > st.Cfg.PartitionBytes() || ps.Used < 0 {
			return nil, fmt.Errorf("storage: partition %d state out of range: %+v", i, ps)
		}
		p.cursor = ps.Cursor
		p.used = ps.Used
	}
	for _, pe := range st.Placements {
		if int(pe.Placement.Part) < 0 || int(pe.Placement.Part) >= len(m.parts) {
			return nil, fmt.Errorf("storage: placement of %v in unknown partition %d", pe.OID, pe.Placement.Part)
		}
		if _, dup := m.place[pe.OID]; dup {
			return nil, fmt.Errorf("storage: duplicate placement for %v in snapshot", pe.OID)
		}
		m.place[pe.OID] = pe.Placement
		m.parts[pe.Placement.Part].objects[pe.OID] = struct{}{}
	}
	if err := m.buf.Restore(st.Buffer); err != nil {
		return nil, err
	}
	for _, pg := range st.GCDirty {
		m.gcDirty[pg] = struct{}{}
	}
	m.stats = st.Stats
	m.class = st.Class
	if int(st.AllocPart) < 0 || (len(m.parts) > 0 && int(st.AllocPart) >= len(m.parts)) {
		return nil, fmt.Errorf("storage: allocation target %d out of range", st.AllocPart)
	}
	m.allocPart = st.AllocPart
	if err := m.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("storage: restored state inconsistent: %w", err)
	}
	return m, nil
}
