// Package storage models the physical layer of the simulated object
// database: fixed-size pages grouped into fixed-size partitions, a bump
// allocator with page-granular placement, an LRU buffer pool, and I/O
// accounting that distinguishes application I/O from garbage-collector I/O.
//
// Following the paper (§3.1):
//   - partitions are 12 pages of 8 KB (96 KB) by default;
//   - the buffer pool is sized to exactly one partition;
//   - lack of free space never triggers a collection — a new partition is
//     appended instead;
//   - the collector compacts a partition in place, so objects never move
//     between partitions.
package storage

import (
	"fmt"
	"slices"

	"odbgc/internal/objstore"
)

// Config sets the physical geometry. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	PageSize          int // bytes per page
	PagesPerPartition int // pages per partition
	BufferPages       int // buffer pool capacity in pages
}

// DefaultConfig is the geometry used throughout the paper: 8 KB pages,
// 12-page (96 KB) partitions, and a buffer equal to one partition.
func DefaultConfig() Config {
	return Config{PageSize: 8192, PagesPerPartition: 12, BufferPages: 12}
}

// Validate checks the configuration for consistency.
func (c Config) Validate() error {
	if c.PageSize <= 0 {
		return fmt.Errorf("storage: PageSize %d must be positive", c.PageSize)
	}
	if c.PagesPerPartition <= 0 {
		return fmt.Errorf("storage: PagesPerPartition %d must be positive", c.PagesPerPartition)
	}
	if c.BufferPages <= 0 {
		return fmt.Errorf("storage: BufferPages %d must be positive", c.BufferPages)
	}
	return nil
}

// PartitionBytes returns the capacity of one partition.
func (c Config) PartitionBytes() int { return c.PageSize * c.PagesPerPartition }

// PartitionID identifies a partition. Partitions are never deallocated.
type PartitionID int

// PageID identifies one page of one partition.
type PageID struct {
	Part  PartitionID
	Index int
}

func (p PageID) String() string { return fmt.Sprintf("p%d/%d", p.Part, p.Index) }

// Placement records where an object lives on disk.
type Placement struct {
	Part   PartitionID
	Page   int // page index within the partition
	Offset int // byte offset within the partition
	Size   int
}

// IOClass attributes I/O operations to the application or the collector.
type IOClass int

// I/O attribution classes.
const (
	IOApp IOClass = iota
	IOGC
)

// IOStats counts page reads and writes by attribution class.
type IOStats struct {
	AppReads  uint64
	AppWrites uint64
	GCReads   uint64
	GCWrites  uint64
}

// AppIO returns total application I/O operations (reads + writes).
func (s IOStats) AppIO() uint64 { return s.AppReads + s.AppWrites }

// GCIO returns total collector I/O operations (reads + writes).
func (s IOStats) GCIO() uint64 { return s.GCReads + s.GCWrites }

// TotalIO returns all I/O operations.
func (s IOStats) TotalIO() uint64 { return s.AppIO() + s.GCIO() }

// Sub returns s - t field-wise; useful for per-interval deltas.
func (s IOStats) Sub(t IOStats) IOStats {
	return IOStats{
		AppReads:  s.AppReads - t.AppReads,
		AppWrites: s.AppWrites - t.AppWrites,
		GCReads:   s.GCReads - t.GCReads,
		GCWrites:  s.GCWrites - t.GCWrites,
	}
}

// FaultInjector is consulted at the entry of every physical operation the
// Manager performs, before any state changes. Returning a non-nil error
// aborts the operation; because nothing has mutated yet, the caller may
// safely retry the same operation. Implementations decide transience (see
// package fault); the Manager only propagates.
type FaultInjector interface {
	// BeforeOp is called with the operation's dominant direction: write for
	// allocation, compaction, flushes, and dirtying touches; read otherwise.
	BeforeOp(write bool) error
}

// partition is the manager's internal per-partition state.
type partition struct {
	id      PartitionID
	cursor  int // bump-allocation offset in bytes; only compaction lowers it
	used    int // sum of sizes of objects placed here (live + garbage)
	objects map[objstore.OID]struct{}
}

// usedPages returns how many pages the bump cursor has touched.
func (p *partition) usedPages(pageSize int) int {
	return (p.cursor + pageSize - 1) / pageSize
}

// Manager owns the partitions, the object placement table, and the buffer
// pool. It is the single point through which the simulator performs
// physical operations, so all I/O accounting happens here.
type Manager struct {
	cfg   Config
	parts []*partition
	place map[objstore.OID]Placement
	buf   *BufferPool
	stats IOStats
	class IOClass

	allocPart PartitionID // current allocation target

	// gcDirty tracks pages dirtied while the I/O class is IOGC, so the
	// collector can flush exactly what it wrote at the end of a collection.
	gcDirty map[PageID]struct{}

	// fault, when non-nil, may inject an error at the entry of each physical
	// operation (chaos testing; see package fault).
	fault FaultInjector

	// flushScratch is FlushGCDirty's reusable page list; valid only within
	// one call.
	flushScratch []PageID
}

// NewManager returns a Manager with no partitions allocated yet.
func NewManager(cfg Config) (*Manager, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	buf, err := NewBufferPool(cfg.BufferPages)
	if err != nil {
		return nil, err
	}
	return &Manager{
		cfg:     cfg,
		place:   make(map[objstore.OID]Placement),
		buf:     buf,
		gcDirty: make(map[PageID]struct{}),
	}, nil
}

// SetFaultInjector installs (or, with nil, removes) a fault injector. The
// injector is consulted before each physical operation mutates any state.
func (m *Manager) SetFaultInjector(f FaultInjector) { m.fault = f }

// beforeOp consults the fault injector, if any.
func (m *Manager) beforeOp(write bool) error {
	if m.fault == nil {
		return nil
	}
	return m.fault.BeforeOp(write)
}

// Config returns the geometry.
func (m *Manager) Config() Config { return m.cfg }

// Stats returns a copy of the I/O counters.
func (m *Manager) Stats() IOStats { return m.stats }

// SetIOClass switches I/O attribution and returns the previous class.
func (m *Manager) SetIOClass(c IOClass) IOClass {
	prev := m.class
	m.class = c
	return prev
}

// IOClass returns the current attribution class.
func (m *Manager) IOClass() IOClass { return m.class }

// NumPartitions returns the number of allocated partitions.
func (m *Manager) NumPartitions() int { return len(m.parts) }

// OccupiedBytes returns the total bytes of objects placed across all
// partitions (live + garbage). This is the SAGA notion of database size.
func (m *Manager) OccupiedBytes() int {
	n := 0
	for _, p := range m.parts {
		n += p.used
	}
	return n
}

// PartitionUsedBytes returns the occupied bytes of one partition.
func (m *Manager) PartitionUsedBytes(id PartitionID) int {
	if int(id) < 0 || int(id) >= len(m.parts) {
		return 0
	}
	return m.parts[id].used
}

// PartitionFreeBytes returns the bytes still allocatable in a partition
// (capacity minus the bump cursor; holes from garbage are not reusable
// until the partition is compacted).
func (m *Manager) PartitionFreeBytes(id PartitionID) int {
	if int(id) < 0 || int(id) >= len(m.parts) {
		return 0
	}
	return m.cfg.PartitionBytes() - m.parts[id].cursor
}

// PartitionOf returns the partition holding an object. The second result is
// false if the object has no placement.
func (m *Manager) PartitionOf(oid objstore.OID) (PartitionID, bool) {
	pl, ok := m.place[oid]
	return pl.Part, ok
}

// PlacementOf returns the full placement of an object.
func (m *Manager) PlacementOf(oid objstore.OID) (Placement, bool) {
	pl, ok := m.place[oid]
	return pl, ok
}

// ObjectsIn returns the OIDs placed in a partition, in ascending order for
// deterministic iteration.
func (m *Manager) ObjectsIn(id PartitionID) []objstore.OID {
	//lint:allow hotalloc snapshot API: callers keep the returned slice; the collector uses AppendObjectsIn
	return m.AppendObjectsIn(nil, id)
}

// AppendObjectsIn appends the partition's OIDs to dst in ascending order and
// returns the extended slice — the allocation-free form of ObjectsIn for
// callers that reuse a scratch buffer.
func (m *Manager) AppendObjectsIn(dst []objstore.OID, id PartitionID) []objstore.OID {
	if int(id) < 0 || int(id) >= len(m.parts) {
		return dst
	}
	p := m.parts[id]
	start := len(dst)
	for oid := range p.objects {
		dst = append(dst, oid)
	}
	slices.Sort(dst[start:])
	return dst
}

// charge records one read or write against the current I/O class.
func (m *Manager) charge(read bool) {
	switch {
	case read && m.class == IOApp:
		m.stats.AppReads++
	case read && m.class == IOGC:
		m.stats.GCReads++
	case !read && m.class == IOApp:
		m.stats.AppWrites++
	default:
		m.stats.GCWrites++
	}
}

// pin brings a page into the buffer, charging a read on a miss (unless the
// page is fresh, i.e. has no disk image yet) and a write when a dirty
// victim is evicted. If dirty is true the page is marked dirty. The
// simulated manager installs no write-back hook and holds no references,
// so the pool's Pin cannot fail here; the error is swallowed after the
// accounting, keeping the simulation's call sites unconditional.
func (m *Manager) pin(pg PageID, dirty, fresh bool) {
	res, _ := m.buf.Pin(pg, dirty, fresh)
	if res.ReadFault {
		m.charge(true)
	}
	if res.WroteBack {
		m.charge(false)
		if m.class == IOApp {
			// An app-triggered eviction may flush a page the collector
			// dirtied; it is then clean on disk and no longer GC-pending.
			delete(m.gcDirty, res.Victim)
		}
	}
	if dirty && m.class == IOGC {
		m.gcDirty[pg] = struct{}{}
	}
	if res.WroteBack && m.class == IOGC {
		delete(m.gcDirty, res.Victim)
	}
}

// newPartition appends an empty partition.
func (m *Manager) newPartition() *partition {
	//lint:allow hotalloc the partition is the product, retained by the manager for the database's life
	p := &partition{
		id: PartitionID(len(m.parts)),
		//lint:allow hotalloc retained with the partition
		objects: make(map[objstore.OID]struct{}),
	}
	m.parts = append(m.parts, p)
	return p
}

// fits reports whether an object of the given size can be bump-allocated in
// partition p, accounting for the page-boundary skip (objects never span
// pages).
func (m *Manager) fits(p *partition, size int) bool {
	off := p.cursor
	if rem := m.cfg.PageSize - off%m.cfg.PageSize; size > rem {
		off += rem // skip to next page boundary
	}
	return off+size <= m.cfg.PartitionBytes()
}

// Allocate places a new object. Objects larger than a page are rejected;
// workload generators must split them (the OO7 manual is stored as a chain
// of page-sized segments). Lack of space grows the database by one
// partition; it never triggers collection.
func (m *Manager) Allocate(oid objstore.OID, size int) (Placement, error) {
	if size <= 0 {
		return Placement{}, fmt.Errorf("storage: allocate %v with size %d", oid, size)
	}
	if size > m.cfg.PageSize {
		return Placement{}, fmt.Errorf("storage: object %v size %d exceeds page size %d",
			oid, size, m.cfg.PageSize)
	}
	if _, dup := m.place[oid]; dup {
		return Placement{}, fmt.Errorf("storage: object %v already placed", oid)
	}
	if err := m.beforeOp(true); err != nil {
		return Placement{}, fmt.Errorf("storage: allocate %v: %w", oid, err)
	}

	var target *partition
	if len(m.parts) > 0 {
		if p := m.parts[m.allocPart]; m.fits(p, size) {
			target = p
		}
	}
	if target == nil {
		for _, p := range m.parts {
			if m.fits(p, size) {
				target = p
				break
			}
		}
	}
	if target == nil {
		target = m.newPartition()
	}
	m.allocPart = target.id

	off := target.cursor
	if rem := m.cfg.PageSize - off%m.cfg.PageSize; size > rem {
		off += rem
	}
	pl := Placement{
		Part:   target.id,
		Page:   off / m.cfg.PageSize,
		Offset: off,
		Size:   size,
	}
	fresh := off%m.cfg.PageSize == 0 // first object on the page: no disk image yet
	target.cursor = off + size
	target.used += size
	target.objects[oid] = struct{}{}
	m.place[oid] = pl

	m.pin(PageID{pl.Part, pl.Page}, true, fresh)
	return pl, nil
}

// Touch simulates an access to an object: its page is faulted in if absent
// and marked dirty if write is true.
func (m *Manager) Touch(oid objstore.OID, write bool) error {
	pl, ok := m.place[oid]
	if !ok {
		return fmt.Errorf("storage: touch of unplaced object %v", oid)
	}
	if err := m.beforeOp(write); err != nil {
		return fmt.Errorf("storage: touch %v: %w", oid, err)
	}
	m.pin(PageID{pl.Part, pl.Page}, write, false)
	return nil
}

// ReadPartition faults in every used page of a partition, as the collector
// does when scanning. Pages already buffered cost nothing. An injected fault
// aborts the scan before any page is pinned, so the call is retryable.
func (m *Manager) ReadPartition(id PartitionID) error {
	if int(id) < 0 || int(id) >= len(m.parts) {
		return fmt.Errorf("storage: read of unknown partition %d", id)
	}
	if err := m.beforeOp(false); err != nil {
		return fmt.Errorf("storage: scan partition %d: %w", id, err)
	}
	p := m.parts[id]
	for i := 0; i < p.usedPages(m.cfg.PageSize); i++ {
		m.pin(PageID{id, i}, false, false)
	}
	return nil
}

// CompactResult reports the outcome of a partition compaction.
type CompactResult struct {
	ReclaimedBytes   int
	ReclaimedObjects int
	LivePages        int // pages occupied after compaction
}

// Compact rewrites a partition so that exactly the objects in live remain,
// packed from the start of the partition in the given order (the caller
// supplies Cheney copy order). Every object in live must currently be
// placed in the partition. Objects placed in the partition but absent from
// live are reclaimed and lose their placement.
//
// I/O: the caller is expected to have scanned the partition already (see
// ReadPartition); Compact marks the surviving pages dirty and drops stale
// pages beyond the new live region from the buffer without write-back.
func (m *Manager) Compact(id PartitionID, live []objstore.OID, sizeOf func(objstore.OID) int) (CompactResult, error) {
	if int(id) < 0 || int(id) >= len(m.parts) {
		return CompactResult{}, fmt.Errorf("storage: compact of unknown partition %d", id)
	}
	if err := m.beforeOp(true); err != nil {
		return CompactResult{}, fmt.Errorf("storage: compact partition %d: %w", id, err)
	}
	p := m.parts[id]
	liveSet := make(map[objstore.OID]struct{}, len(live))
	for _, oid := range live {
		pl, ok := m.place[oid]
		if !ok || pl.Part != id {
			return CompactResult{}, fmt.Errorf("storage: live object %v not placed in partition %d", oid, id)
		}
		if _, dup := liveSet[oid]; dup {
			return CompactResult{}, fmt.Errorf("storage: duplicate live object %v", oid)
		}
		liveSet[oid] = struct{}{}
	}

	var res CompactResult
	oldPages := p.usedPages(m.cfg.PageSize)

	// Capture original offsets before reclaiming: they order the fallback
	// layout below.
	oldOffset := make(map[objstore.OID]int, len(live))
	for _, oid := range live {
		oldOffset[oid] = m.place[oid].Offset
	}

	// Reclaim everything not in the live set.
	for oid := range p.objects {
		if _, keep := liveSet[oid]; !keep {
			res.ReclaimedBytes += m.place[oid].Size
			res.ReclaimedObjects++
			delete(m.place, oid)
			delete(p.objects, oid)
		}
	}

	// Re-place survivors in copy order for reference locality. Copy order
	// can pad page boundaries differently than the original layout and —
	// rarely, in a nearly full partition — overflow it; in that case fall
	// back to packing in original-offset order, which can only shrink
	// every offset and therefore always fits.
	order := live
	if layoutEnd(order, sizeOf, m.cfg.PageSize) > m.cfg.PartitionBytes() {
		//lint:allow hotalloc rare fallback: only a nearly full partition overflows copy order
		order = append([]objstore.OID(nil), live...)
		slices.SortFunc(order, func(a, b objstore.OID) int { return oldOffset[a] - oldOffset[b] })
	}
	p.cursor = 0
	p.used = 0
	for _, oid := range order {
		size := sizeOf(oid)
		off := p.cursor
		if rem := m.cfg.PageSize - off%m.cfg.PageSize; size > rem {
			off += rem
		}
		m.place[oid] = Placement{Part: id, Page: off / m.cfg.PageSize, Offset: off, Size: size}
		p.cursor = off + size
		p.used += size
	}
	if p.cursor > m.cfg.PartitionBytes() {
		return CompactResult{}, fmt.Errorf("storage: compaction of partition %d overflowed (%d > %d bytes)",
			id, p.cursor, m.cfg.PartitionBytes())
	}

	res.LivePages = p.usedPages(m.cfg.PageSize)
	// Surviving pages now hold the compacted image: dirty them. They are
	// fresh in the sense that their old disk image is obsolete, so a buffer
	// miss must not charge a read.
	for i := 0; i < res.LivePages; i++ {
		m.pin(PageID{id, i}, true, true)
	}
	// Pages beyond the live region are free space; drop any buffered copies
	// without write-back.
	for i := res.LivePages; i < oldPages; i++ {
		if m.buf.Drop(PageID{id, i}) {
			delete(m.gcDirty, PageID{id, i})
		}
	}
	return res, nil
}

// layoutEnd returns the bump-cursor position after packing the objects in
// the given order with page-boundary skipping.
func layoutEnd(order []objstore.OID, sizeOf func(objstore.OID) int, pageSize int) int {
	cursor := 0
	for _, oid := range order {
		size := sizeOf(oid)
		if rem := pageSize - cursor%pageSize; size > rem {
			cursor += rem
		}
		cursor += size
	}
	return cursor
}

// FlushGCDirty writes back every page dirtied under the IOGC class that is
// still buffered and dirty, charging the writes to the collector. The
// collector calls this at the end of a collection so its write cost is
// attributed to it rather than to later application evictions.
func (m *Manager) FlushGCDirty() (int, error) {
	if err := m.beforeOp(true); err != nil {
		return 0, fmt.Errorf("storage: flush collector pages: %w", err)
	}
	pages := m.flushScratch[:0]
	for pg := range m.gcDirty {
		pages = append(pages, pg)
	}
	m.flushScratch = pages
	slices.SortFunc(pages, func(a, b PageID) int {
		if a.Part != b.Part {
			return int(a.Part) - int(b.Part)
		}
		return a.Index - b.Index
	})
	n := 0
	prev := m.SetIOClass(IOGC)
	for _, pg := range pages {
		if m.buf.Clean(pg) {
			m.charge(false)
			n++
		}
		delete(m.gcDirty, pg)
	}
	m.SetIOClass(prev)
	return n, nil
}

// FlushAll writes back every dirty buffered page, charging the current I/O
// class. Used at end of simulation to account for outstanding writes.
func (m *Manager) FlushAll() (int, error) {
	if err := m.beforeOp(true); err != nil {
		return 0, fmt.Errorf("storage: flush all: %w", err)
	}
	n := 0
	for _, pg := range m.buf.DirtyPages() {
		if m.buf.Clean(pg) {
			m.charge(false)
			n++
		}
		delete(m.gcDirty, pg)
	}
	return n, nil
}

// BufferContents exposes the buffered page set for tests and diagnostics.
func (m *Manager) BufferContents() []PageID { return m.buf.Pages() }

// CheckInvariants validates internal consistency; used by tests and the
// simulator's self-check mode. It verifies that placements and partition
// object sets agree and that used byte counts match.
func (m *Manager) CheckInvariants() error {
	perPart := make(map[PartitionID]int)
	for oid, pl := range m.place {
		if int(pl.Part) < 0 || int(pl.Part) >= len(m.parts) {
			return fmt.Errorf("storage: %v placed in unknown partition %d", oid, pl.Part)
		}
		p := m.parts[pl.Part]
		if _, ok := p.objects[oid]; !ok {
			return fmt.Errorf("storage: %v placed in partition %d but absent from its object set", oid, pl.Part)
		}
		if pl.Offset < 0 || pl.Offset+pl.Size > m.cfg.PartitionBytes() {
			return fmt.Errorf("storage: %v placement out of range: %+v", oid, pl)
		}
		if pl.Offset/m.cfg.PageSize != pl.Page {
			return fmt.Errorf("storage: %v page %d disagrees with offset %d", oid, pl.Page, pl.Offset)
		}
		if pl.Offset%m.cfg.PageSize+pl.Size > m.cfg.PageSize {
			return fmt.Errorf("storage: %v spans a page boundary: %+v", oid, pl)
		}
		perPart[pl.Part] += pl.Size
	}
	for _, p := range m.parts {
		if got := perPart[p.id]; got != p.used {
			return fmt.Errorf("storage: partition %d used=%d but placements sum to %d", p.id, p.used, got)
		}
		for oid := range p.objects {
			if pl, ok := m.place[oid]; !ok || pl.Part != p.id {
				return fmt.Errorf("storage: partition %d lists %v but placement says %+v", p.id, oid, pl)
			}
		}
		if p.cursor < 0 || p.cursor > m.cfg.PartitionBytes() {
			return fmt.Errorf("storage: partition %d cursor %d out of range", p.id, p.cursor)
		}
	}
	return nil
}
