package storage

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"testing/quick"
)

func pg(part, idx int) PageID { return PageID{Part: PartitionID(part), Index: idx} }

func newPool(t *testing.T, capacity int) *BufferPool {
	t.Helper()
	b, err := NewBufferPool(capacity)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// mustPin pins and fails the test on an error (impossible without a
// write-back hook or references; asserting keeps that contract visible).
func mustPin(t *testing.T, b *BufferPool, p PageID, dirty, fresh bool) PinResult {
	t.Helper()
	res, err := b.Pin(p, dirty, fresh)
	if err != nil {
		t.Fatalf("Pin(%v): %v", p, err)
	}
	return res
}

func mustPinBare(t *testing.T, b *BufferPool, p PageID, dirty, fresh bool) {
	t.Helper()
	mustPin(t, b, p, dirty, fresh)
}

func TestPinMissAndHit(t *testing.T) {
	b := newPool(t, 2)
	res := mustPin(t, b, pg(0, 0), false, false)
	if res.Hit || !res.ReadFault || res.WroteBack {
		t.Errorf("first pin = %+v, want miss+read", res)
	}
	res = mustPin(t, b, pg(0, 0), false, false)
	if !res.Hit || res.ReadFault {
		t.Errorf("second pin = %+v, want hit", res)
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestFreshPageCostsNoRead(t *testing.T) {
	b := newPool(t, 2)
	res := mustPin(t, b, pg(0, 0), true, true)
	if res.ReadFault {
		t.Error("fresh page charged a read")
	}
	if !b.IsDirty(pg(0, 0)) {
		t.Error("fresh dirty page not dirty")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	b := newPool(t, 2)
	mustPinBare(t, b, pg(0, 0), false, false)
	mustPinBare(t, b, pg(0, 1), false, false)
	mustPinBare(t, b, pg(0, 0), false, false) // page 0 is now most recent
	mustPinBare(t, b, pg(0, 2), false, false) // evicts page 1 (LRU)
	if b.Contains(pg(0, 1)) {
		t.Error("LRU page not evicted")
	}
	if !b.Contains(pg(0, 0)) || !b.Contains(pg(0, 2)) {
		t.Error("wrong pages resident")
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	b := newPool(t, 1)
	mustPinBare(t, b, pg(0, 0), true, true)
	res := mustPin(t, b, pg(0, 1), false, false)
	if !res.WroteBack || res.Victim != pg(0, 0) {
		t.Errorf("eviction = %+v, want writeback of p0/0", res)
	}
	// A clean victim costs nothing.
	res = mustPin(t, b, pg(0, 2), false, false)
	if res.WroteBack {
		t.Errorf("clean eviction wrote back: %+v", res)
	}
}

func TestDirtyBitSticky(t *testing.T) {
	b := newPool(t, 2)
	mustPinBare(t, b, pg(0, 0), true, true)
	mustPinBare(t, b, pg(0, 0), false, false) // a clean pin must not clear the bit
	if !b.IsDirty(pg(0, 0)) {
		t.Error("dirty bit cleared by clean pin")
	}
}

func TestClean(t *testing.T) {
	b := newPool(t, 2)
	mustPinBare(t, b, pg(0, 0), true, true)
	if !b.Clean(pg(0, 0)) {
		t.Error("Clean on dirty page returned false")
	}
	if b.Clean(pg(0, 0)) {
		t.Error("Clean on clean page returned true")
	}
	if b.Clean(pg(9, 9)) {
		t.Error("Clean on absent page returned true")
	}
	if b.IsDirty(pg(0, 0)) {
		t.Error("page still dirty after Clean")
	}
}

func TestDrop(t *testing.T) {
	b := newPool(t, 2)
	mustPinBare(t, b, pg(0, 0), true, true)
	if !b.Drop(pg(0, 0)) {
		t.Error("Drop on resident page returned false")
	}
	if b.Drop(pg(0, 0)) {
		t.Error("Drop on absent page returned true")
	}
	if b.Contains(pg(0, 0)) || b.Len() != 0 {
		t.Error("dropped page still resident")
	}
}

func TestDirtyPagesOrder(t *testing.T) {
	b := newPool(t, 3)
	mustPinBare(t, b, pg(0, 0), true, true)
	mustPinBare(t, b, pg(0, 1), false, true)
	mustPinBare(t, b, pg(0, 2), true, true)
	dirty := b.DirtyPages()
	if len(dirty) != 2 || dirty[0] != pg(0, 0) || dirty[1] != pg(0, 2) {
		t.Errorf("DirtyPages = %v", dirty)
	}
	pages := b.Pages()
	if len(pages) != 3 || pages[0] != pg(0, 0) || pages[2] != pg(0, 2) {
		t.Errorf("Pages = %v", pages)
	}
}

func TestZeroCapacityErrors(t *testing.T) {
	if _, err := NewBufferPool(0); err == nil {
		t.Error("NewBufferPool(0) did not error")
	}
	if _, err := NewBufferPool(-3); err == nil {
		t.Error("NewBufferPool(-3) did not error")
	}
}

// Property: residency never exceeds capacity, and a page pinned last is
// always resident.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		b, err := NewBufferPool(4)
		if err != nil {
			return false
		}
		for _, op := range ops {
			p := pg(int(op%3), int(op/3)%7)
			mustPinBare(t, b, p, op%5 == 0, op%7 == 0)
			if b.Len() > 4 {
				return false
			}
			if !b.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestRefPinsAgainstEviction(t *testing.T) {
	b := newPool(t, 2)
	mustPinBare(t, b, pg(0, 0), false, true)
	mustPinBare(t, b, pg(0, 1), false, true)
	if !b.Ref(pg(0, 0)) {
		t.Fatal("Ref on resident page returned false")
	}
	// Page 0 is LRU but referenced; eviction must pick page 1.
	mustPinBare(t, b, pg(0, 2), false, true)
	if !b.Contains(pg(0, 0)) {
		t.Error("referenced page evicted")
	}
	if b.Contains(pg(0, 1)) {
		t.Error("unreferenced page survived over referenced LRU")
	}
	if err := b.Unref(pg(0, 0)); err != nil {
		t.Errorf("Unref: %v", err)
	}
	if b.Refs(pg(0, 0)) != 0 {
		t.Errorf("Refs = %d after Unref", b.Refs(pg(0, 0)))
	}
}

func TestRefAbsentAndUnrefErrors(t *testing.T) {
	b := newPool(t, 2)
	if b.Ref(pg(0, 0)) {
		t.Error("Ref on absent page returned true")
	}
	if err := b.Unref(pg(0, 0)); err == nil {
		t.Error("Unref on absent page did not error")
	}
	mustPinBare(t, b, pg(0, 0), false, true)
	if err := b.Unref(pg(0, 0)); err == nil {
		t.Error("Unref on unreferenced page did not error")
	}
}

func TestAllFramesReferencedWedgesPin(t *testing.T) {
	b := newPool(t, 2)
	mustPinBare(t, b, pg(0, 0), false, true)
	mustPinBare(t, b, pg(0, 1), false, true)
	b.Ref(pg(0, 0))
	b.Ref(pg(0, 1))
	if _, err := b.Pin(pg(0, 2), false, true); err == nil {
		t.Fatal("Pin with every frame referenced did not error")
	}
	// Pinning an already-resident page still works (no eviction needed).
	if res, err := b.Pin(pg(0, 1), false, false); err != nil || !res.Hit {
		t.Errorf("resident pin with full refs: res=%+v err=%v", res, err)
	}
}

func TestFlushRunsWritebackAndCleans(t *testing.T) {
	b := newPool(t, 2)
	var wrote []PageID
	b.SetWriteback(func(p PageID) error { wrote = append(wrote, p); return nil })
	mustPinBare(t, b, pg(0, 0), true, true)
	did, err := b.Flush(pg(0, 0))
	if err != nil || !did {
		t.Fatalf("Flush = %v, %v", did, err)
	}
	if len(wrote) != 1 || wrote[0] != pg(0, 0) {
		t.Errorf("writeback saw %v", wrote)
	}
	if b.IsDirty(pg(0, 0)) || !b.Contains(pg(0, 0)) {
		t.Error("flushed page should be resident and clean")
	}
	// Clean and absent pages are no-ops.
	if did, err := b.Flush(pg(0, 0)); err != nil || did {
		t.Errorf("Flush clean = %v, %v", did, err)
	}
	if did, err := b.Flush(pg(9, 9)); err != nil || did {
		t.Errorf("Flush absent = %v, %v", did, err)
	}
}

func TestFlushErrorKeepsDirty(t *testing.T) {
	b := newPool(t, 2)
	b.SetWriteback(func(PageID) error { return errTestDisk })
	mustPinBare(t, b, pg(0, 0), true, true)
	if _, err := b.Flush(pg(0, 0)); err == nil {
		t.Fatal("Flush with failing hook did not error")
	}
	if !b.IsDirty(pg(0, 0)) {
		t.Error("failed flush cleared the dirty bit")
	}
}

func TestEvictionRunsWritebackHook(t *testing.T) {
	b := newPool(t, 1)
	var wrote []PageID
	b.SetWriteback(func(p PageID) error { wrote = append(wrote, p); return nil })
	mustPinBare(t, b, pg(0, 0), true, true)
	res := mustPin(t, b, pg(0, 1), false, true)
	if !res.WroteBack || res.Victim != pg(0, 0) {
		t.Errorf("eviction = %+v", res)
	}
	if len(wrote) != 1 || wrote[0] != pg(0, 0) {
		t.Errorf("writeback saw %v", wrote)
	}
}

func TestEvictionWritebackErrorAbortsPin(t *testing.T) {
	b := newPool(t, 1)
	b.SetWriteback(func(PageID) error { return errTestDisk })
	mustPinBare(t, b, pg(0, 0), true, true)
	if _, err := b.Pin(pg(0, 1), false, true); err == nil {
		t.Fatal("Pin over failing writeback did not error")
	}
	// The victim must survive, still dirty, and the new page must be absent.
	if !b.Contains(pg(0, 0)) || !b.IsDirty(pg(0, 0)) {
		t.Error("failed eviction lost or cleaned the victim")
	}
	if b.Contains(pg(0, 1)) {
		t.Error("failed pin left the new page resident")
	}
}

func TestDropRefusesReferenced(t *testing.T) {
	b := newPool(t, 2)
	mustPinBare(t, b, pg(0, 0), false, true)
	b.Ref(pg(0, 0))
	if b.Drop(pg(0, 0)) {
		t.Error("Drop removed a referenced page")
	}
	if err := b.Unref(pg(0, 0)); err != nil {
		t.Fatal(err)
	}
	if !b.Drop(pg(0, 0)) {
		t.Error("Drop refused an unreferenced page")
	}
}

var errTestDisk = errors.New("test disk error")

// TestConcurrentRefUnrefFlush hammers one pool from many goroutines under
// the callers' lock discipline: the pool itself is deliberately
// unsynchronized (every real owner serializes access behind its own mutex —
// the discipline lockcheck and guarded enforce), so the test guards every
// call with one shared mutex and runs under -race to prove that discipline
// is sufficient — no hidden unguarded state inside the pool. Each goroutine
// pins, references, flushes, and unreferences its own page plus a shared
// contended page; afterwards every reference must be released, no frame may
// exceed capacity, and the shared page must have a zero pin count.
func TestConcurrentRefUnrefFlush(t *testing.T) {
	const (
		workers = 8
		rounds  = 200
	)
	b := newPool(t, workers+2)
	var mu sync.Mutex // the owner's lock; the pool has none of its own
	var wrote atomic.Int64
	b.SetWriteback(func(PageID) error { wrote.Add(1); return nil })

	shared := pg(0, 0)
	mu.Lock()
	if _, err := b.Pin(shared, false, true); err != nil {
		mu.Unlock()
		t.Fatal(err)
	}
	mu.Unlock()

	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			own := pg(1, w)
			for i := 0; i < rounds; i++ {
				mu.Lock()
				if _, err := b.Pin(own, i%2 == 0, true); err != nil {
					mu.Unlock()
					errs <- err
					return
				}
				if !b.Ref(own) || !b.Ref(shared) {
					mu.Unlock()
					errs <- errors.New("ref of resident page failed")
					return
				}
				if _, err := b.Flush(own); err != nil {
					mu.Unlock()
					errs <- err
					return
				}
				err1 := b.Unref(shared)
				err2 := b.Unref(own)
				mu.Unlock()
				if err1 != nil {
					errs <- err1
					return
				}
				if err2 != nil {
					errs <- err2
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	mu.Lock()
	defer mu.Unlock()
	if got := b.Refs(shared); got != 0 {
		t.Errorf("shared page has %d dangling references", got)
	}
	for w := 0; w < workers; w++ {
		if got := b.Refs(pg(1, w)); got != 0 {
			t.Errorf("worker %d page has %d dangling references", w, got)
		}
	}
	if b.Len() > b.Capacity() {
		t.Errorf("pool holds %d pages over capacity %d", b.Len(), b.Capacity())
	}
	// Dirty pins flushed through the hook: the write-back ran at least once
	// per worker (every even round dirties, the next flush writes).
	if wrote.Load() < workers {
		t.Errorf("write-back ran %d times, want at least %d", wrote.Load(), workers)
	}
}
