package storage

import (
	"testing"
	"testing/quick"
)

func pg(part, idx int) PageID { return PageID{Part: PartitionID(part), Index: idx} }

func newPool(t *testing.T, capacity int) *BufferPool {
	t.Helper()
	b, err := NewBufferPool(capacity)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestPinMissAndHit(t *testing.T) {
	b := newPool(t, 2)
	res := b.Pin(pg(0, 0), false, false)
	if res.Hit || !res.ReadFault || res.WroteBack {
		t.Errorf("first pin = %+v, want miss+read", res)
	}
	res = b.Pin(pg(0, 0), false, false)
	if !res.Hit || res.ReadFault {
		t.Errorf("second pin = %+v, want hit", res)
	}
	if b.Len() != 1 {
		t.Errorf("Len = %d", b.Len())
	}
}

func TestFreshPageCostsNoRead(t *testing.T) {
	b := newPool(t, 2)
	res := b.Pin(pg(0, 0), true, true)
	if res.ReadFault {
		t.Error("fresh page charged a read")
	}
	if !b.IsDirty(pg(0, 0)) {
		t.Error("fresh dirty page not dirty")
	}
}

func TestLRUEvictionOrder(t *testing.T) {
	b := newPool(t, 2)
	b.Pin(pg(0, 0), false, false)
	b.Pin(pg(0, 1), false, false)
	b.Pin(pg(0, 0), false, false) // page 0 is now most recent
	b.Pin(pg(0, 2), false, false) // evicts page 1 (LRU)
	if b.Contains(pg(0, 1)) {
		t.Error("LRU page not evicted")
	}
	if !b.Contains(pg(0, 0)) || !b.Contains(pg(0, 2)) {
		t.Error("wrong pages resident")
	}
}

func TestEvictionWritesBackDirty(t *testing.T) {
	b := newPool(t, 1)
	b.Pin(pg(0, 0), true, true)
	res := b.Pin(pg(0, 1), false, false)
	if !res.WroteBack || res.Victim != pg(0, 0) {
		t.Errorf("eviction = %+v, want writeback of p0/0", res)
	}
	// A clean victim costs nothing.
	res = b.Pin(pg(0, 2), false, false)
	if res.WroteBack {
		t.Errorf("clean eviction wrote back: %+v", res)
	}
}

func TestDirtyBitSticky(t *testing.T) {
	b := newPool(t, 2)
	b.Pin(pg(0, 0), true, true)
	b.Pin(pg(0, 0), false, false) // a clean pin must not clear the bit
	if !b.IsDirty(pg(0, 0)) {
		t.Error("dirty bit cleared by clean pin")
	}
}

func TestClean(t *testing.T) {
	b := newPool(t, 2)
	b.Pin(pg(0, 0), true, true)
	if !b.Clean(pg(0, 0)) {
		t.Error("Clean on dirty page returned false")
	}
	if b.Clean(pg(0, 0)) {
		t.Error("Clean on clean page returned true")
	}
	if b.Clean(pg(9, 9)) {
		t.Error("Clean on absent page returned true")
	}
	if b.IsDirty(pg(0, 0)) {
		t.Error("page still dirty after Clean")
	}
}

func TestDrop(t *testing.T) {
	b := newPool(t, 2)
	b.Pin(pg(0, 0), true, true)
	if !b.Drop(pg(0, 0)) {
		t.Error("Drop on resident page returned false")
	}
	if b.Drop(pg(0, 0)) {
		t.Error("Drop on absent page returned true")
	}
	if b.Contains(pg(0, 0)) || b.Len() != 0 {
		t.Error("dropped page still resident")
	}
}

func TestDirtyPagesOrder(t *testing.T) {
	b := newPool(t, 3)
	b.Pin(pg(0, 0), true, true)
	b.Pin(pg(0, 1), false, true)
	b.Pin(pg(0, 2), true, true)
	dirty := b.DirtyPages()
	if len(dirty) != 2 || dirty[0] != pg(0, 0) || dirty[1] != pg(0, 2) {
		t.Errorf("DirtyPages = %v", dirty)
	}
	pages := b.Pages()
	if len(pages) != 3 || pages[0] != pg(0, 0) || pages[2] != pg(0, 2) {
		t.Errorf("Pages = %v", pages)
	}
}

func TestZeroCapacityErrors(t *testing.T) {
	if _, err := NewBufferPool(0); err == nil {
		t.Error("NewBufferPool(0) did not error")
	}
	if _, err := NewBufferPool(-3); err == nil {
		t.Error("NewBufferPool(-3) did not error")
	}
}

// Property: residency never exceeds capacity, and a page pinned last is
// always resident.
func TestCapacityInvariantProperty(t *testing.T) {
	f := func(ops []uint16) bool {
		b, err := NewBufferPool(4)
		if err != nil {
			return false
		}
		for _, op := range ops {
			p := pg(int(op%3), int(op/3)%7)
			b.Pin(p, op%5 == 0, op%7 == 0)
			if b.Len() > 4 {
				return false
			}
			if !b.Contains(p) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
