package storage

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"odbgc/internal/objstore"
)

// tinyConfig keeps geometry small so tests exercise boundaries quickly:
// 100-byte pages, 4 pages per partition, 4-page buffer.
func tinyConfig() Config {
	return Config{PageSize: 100, PagesPerPartition: 4, BufferPages: 4}
}

func newTestManager(t *testing.T, cfg Config) *Manager {
	t.Helper()
	m, err := NewManager(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{PageSize: 0, PagesPerPartition: 1, BufferPages: 1},
		{PageSize: 1, PagesPerPartition: 0, BufferPages: 1},
		{PageSize: 1, PagesPerPartition: 1, BufferPages: 0},
	}
	for _, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("config %+v accepted", c)
		}
	}
	if err := DefaultConfig().Validate(); err != nil {
		t.Errorf("default config rejected: %v", err)
	}
	if got := DefaultConfig().PartitionBytes(); got != 12*8192 {
		t.Errorf("PartitionBytes = %d, want 98304 (paper geometry)", got)
	}
}

func TestAllocateBumpsWithinPage(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	p1, err := m.Allocate(1, 40)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := m.Allocate(2, 40)
	if err != nil {
		t.Fatal(err)
	}
	if p1.Part != 0 || p1.Page != 0 || p1.Offset != 0 {
		t.Errorf("first placement = %+v", p1)
	}
	if p2.Page != 0 || p2.Offset != 40 {
		t.Errorf("second placement = %+v", p2)
	}
}

func TestAllocateSkipsPageBoundary(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	if _, err := m.Allocate(1, 70); err != nil {
		t.Fatal(err)
	}
	p, err := m.Allocate(2, 50) // 50 > 30 remaining: next page
	if err != nil {
		t.Fatal(err)
	}
	if p.Page != 1 || p.Offset != 100 {
		t.Errorf("placement = %+v, want page 1 offset 100", p)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestAllocateGrowsPartition(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	// Fill partition 0 exactly: 4 pages of 100.
	for i := 1; i <= 4; i++ {
		if _, err := m.Allocate(objstore.OID(i), 100); err != nil {
			t.Fatal(err)
		}
	}
	if m.NumPartitions() != 1 {
		t.Fatalf("partitions = %d", m.NumPartitions())
	}
	p, err := m.Allocate(5, 10)
	if err != nil {
		t.Fatal(err)
	}
	if p.Part != 1 {
		t.Errorf("overflow allocation went to partition %d, want 1", p.Part)
	}
	if m.NumPartitions() != 2 {
		t.Errorf("partitions = %d, want 2", m.NumPartitions())
	}
}

func TestAllocateRejects(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	if _, err := m.Allocate(1, 0); err == nil {
		t.Error("zero size accepted")
	}
	if _, err := m.Allocate(1, 101); err == nil {
		t.Error("page-exceeding size accepted")
	}
	if _, err := m.Allocate(1, 10); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate(1, 10); err == nil {
		t.Error("duplicate OID accepted")
	}
}

func TestTouchAccounting(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	if _, err := m.Allocate(1, 10); err != nil {
		t.Fatal(err)
	}
	base := m.Stats()
	if err := m.Touch(1, false); err != nil { // page resident: no I/O
		t.Fatal(err)
	}
	if d := m.Stats().Sub(base); d.TotalIO() != 0 {
		t.Errorf("resident touch cost %+v", d)
	}
	// Evict by filling the buffer with 4 other pages.
	for i := 2; i <= 5; i++ {
		if _, err := m.Allocate(objstore.OID(i), 100); err != nil {
			t.Fatal(err)
		}
	}
	base = m.Stats()
	if err := m.Touch(1, true); err != nil {
		t.Fatal(err)
	}
	d := m.Stats().Sub(base)
	if d.AppReads != 1 {
		t.Errorf("fault read not charged: %+v", d)
	}
	if err := m.Touch(99, false); err == nil {
		t.Error("touch of unplaced object accepted")
	}
}

func TestIOClassAttribution(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	if _, err := m.Allocate(1, 100); err != nil {
		t.Fatal(err)
	}
	// Push page out with app I/O, then fault it back under the GC class.
	for i := 2; i <= 5; i++ {
		if _, err := m.Allocate(objstore.OID(i), 100); err != nil {
			t.Fatal(err)
		}
	}
	prev := m.SetIOClass(IOGC)
	if prev != IOApp {
		t.Errorf("previous class = %v, want IOApp", prev)
	}
	base := m.Stats()
	if err := m.Touch(1, false); err != nil {
		t.Fatal(err)
	}
	d := m.Stats().Sub(base)
	if d.GCReads != 1 || d.AppReads != 0 {
		t.Errorf("GC touch charged %+v", d)
	}
	m.SetIOClass(IOApp)
	if m.IOClass() != IOApp {
		t.Error("class not restored")
	}
}

func TestIOStatsHelpers(t *testing.T) {
	s := IOStats{AppReads: 1, AppWrites: 2, GCReads: 3, GCWrites: 4}
	if s.AppIO() != 3 || s.GCIO() != 7 || s.TotalIO() != 10 {
		t.Errorf("helpers wrong: %+v", s)
	}
	d := s.Sub(IOStats{AppReads: 1, GCWrites: 1})
	if d.AppReads != 0 || d.GCWrites != 3 {
		t.Errorf("Sub = %+v", d)
	}
}

func TestCompactReclaims(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	sizes := map[objstore.OID]int{1: 60, 2: 60, 3: 60, 4: 60}
	for oid, sz := range map[objstore.OID]int{1: 60, 2: 60} {
		if _, err := m.Allocate(oid, sz); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := m.Allocate(3, 60); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Allocate(4, 60); err != nil {
		t.Fatal(err)
	}
	sizeOf := func(oid objstore.OID) int { return sizes[oid] }

	res, err := m.Compact(0, []objstore.OID{3, 1}, sizeOf)
	if err != nil {
		t.Fatal(err)
	}
	if res.ReclaimedObjects != 2 || res.ReclaimedBytes != 120 {
		t.Errorf("reclaim = %+v", res)
	}
	// Survivors are packed in copy order from offset 0: object 3 at 0, and
	// object 1 skips to page 1 (60 bytes do not fit the 40 remaining).
	p3, _ := m.PlacementOf(3)
	p1, _ := m.PlacementOf(1)
	if p3.Offset != 0 || p1.Offset != 100 {
		t.Errorf("packed placements: 3=%+v 1=%+v", p3, p1)
	}
	if _, ok := m.PlacementOf(2); ok {
		t.Error("reclaimed object still placed")
	}
	if m.PartitionUsedBytes(0) != 120 {
		t.Errorf("used = %d", m.PartitionUsedBytes(0))
	}
	// Freed space is allocatable again: cursor 160, capacity 400.
	if m.PartitionFreeBytes(0) != 240 {
		t.Errorf("free = %d, want 240", m.PartitionFreeBytes(0))
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
}

func TestCompactErrors(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	if _, err := m.Allocate(1, 10); err != nil {
		t.Fatal(err)
	}
	sizeOf := func(objstore.OID) int { return 10 }
	if _, err := m.Compact(5, nil, sizeOf); err == nil {
		t.Error("unknown partition accepted")
	}
	if _, err := m.Compact(0, []objstore.OID{42}, sizeOf); err == nil {
		t.Error("foreign live object accepted")
	}
	if _, err := m.Compact(0, []objstore.OID{1, 1}, sizeOf); err == nil {
		t.Error("duplicate live object accepted")
	}
}

// TestCompactOverflowFallback reproduces the copy-order padding overflow: a
// partition packed tight in one order can exceed capacity if repacked in a
// different order, and Compact must fall back to original-offset order.
func TestCompactOverflowFallback(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	// Page layout (page 100): [60 40] [60 40] [60 40] [60 40] = 8 objects,
	// zero slack at page level. Reversed copy order would pair 40s first
	// and overflow.
	sizes := map[objstore.OID]int{}
	var order []objstore.OID
	oid := objstore.OID(1)
	for p := 0; p < 4; p++ {
		for _, sz := range []int{60, 40} {
			sizes[oid] = sz
			if _, err := m.Allocate(oid, sz); err != nil {
				t.Fatal(err)
			}
			order = append(order, oid)
			oid++
		}
	}
	// Worst-case copy order: all 60s then all 40s = 60*4 = pages 0..2 hold
	// 60+[pad] each... try it and require success regardless.
	var worst []objstore.OID
	for i := 0; i < len(order); i += 2 {
		worst = append(worst, order[i])
	}
	for i := 1; i < len(order); i += 2 {
		worst = append(worst, order[i])
	}
	res, err := m.Compact(0, worst, func(o objstore.OID) int { return sizes[o] })
	if err != nil {
		t.Fatalf("compact failed: %v", err)
	}
	if res.ReclaimedObjects != 0 {
		t.Errorf("reclaimed %d objects from all-live compaction", res.ReclaimedObjects)
	}
	if err := m.CheckInvariants(); err != nil {
		t.Error(err)
	}
	// All objects must still fit in the partition.
	for o := range sizes {
		pl, ok := m.PlacementOf(o)
		if !ok || pl.Offset+pl.Size > m.Config().PartitionBytes() {
			t.Errorf("object %v out of bounds: %+v", o, pl)
		}
	}
}

func TestReadPartitionFaultsUsedPages(t *testing.T) {
	cfg := tinyConfig()
	cfg.BufferPages = 2
	m := newTestManager(t, cfg)
	for i := 1; i <= 4; i++ {
		if _, err := m.Allocate(objstore.OID(i), 100); err != nil {
			t.Fatal(err)
		}
	}
	base := m.Stats()
	m.SetIOClass(IOGC)
	if err := m.ReadPartition(0); err != nil {
		t.Fatal(err)
	}
	d := m.Stats().Sub(base)
	// 4 used pages, at most 2 resident before: at least 2 reads, and the
	// evictions of dirty pages charge writes.
	if d.GCReads < 2 {
		t.Errorf("ReadPartition reads = %d, want >= 2", d.GCReads)
	}
	if d.AppReads != 0 {
		t.Errorf("app charged for GC scan: %+v", d)
	}
}

func TestFlushGCDirty(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	m.SetIOClass(IOGC)
	if _, err := m.Allocate(1, 10); err != nil {
		t.Fatal(err)
	}
	base := m.Stats()
	n, err := m.FlushGCDirty()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Errorf("flushed %d pages, want 1", n)
	}
	if d := m.Stats().Sub(base); d.GCWrites != 1 {
		t.Errorf("flush charged %+v", d)
	}
	// Second flush is a no-op.
	if n, err := m.FlushGCDirty(); err != nil || n != 0 {
		t.Errorf("second flush wrote %d pages (err %v)", n, err)
	}
}

func TestFlushAll(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	for i := 1; i <= 3; i++ {
		if _, err := m.Allocate(objstore.OID(i), 100); err != nil {
			t.Fatal(err)
		}
	}
	base := m.Stats()
	n, err := m.FlushAll()
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Errorf("FlushAll wrote %d pages, want 3", n)
	}
	if d := m.Stats().Sub(base); d.AppWrites != 3 {
		t.Errorf("FlushAll charged %+v", d)
	}
}

func TestObjectsInSorted(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	for _, oid := range []objstore.OID{5, 3, 9} {
		if _, err := m.Allocate(oid, 10); err != nil {
			t.Fatal(err)
		}
	}
	got := m.ObjectsIn(0)
	if len(got) != 3 || got[0] != 3 || got[1] != 5 || got[2] != 9 {
		t.Errorf("ObjectsIn = %v", got)
	}
	if m.ObjectsIn(7) != nil {
		t.Error("unknown partition returned objects")
	}
}

// Property: after any sequence of allocations and compactions, invariants
// hold and no placement overlaps another.
func TestStorageInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m, err := NewManager(tinyConfig())
		if err != nil {
			return false
		}
		sizes := map[objstore.OID]int{}
		next := objstore.OID(1)
		for step := 0; step < 200; step++ {
			if rng.Intn(10) < 7 || m.NumPartitions() == 0 {
				sz := 1 + rng.Intn(100)
				if _, err := m.Allocate(next, sz); err != nil {
					return false
				}
				sizes[next] = sz
				next++
			} else {
				part := PartitionID(rng.Intn(m.NumPartitions()))
				members := m.ObjectsIn(part)
				var live []objstore.OID
				for _, o := range members {
					if rng.Intn(2) == 0 {
						live = append(live, o)
					} else {
						delete(sizes, o)
					}
				}
				rng.Shuffle(len(live), func(i, j int) { live[i], live[j] = live[j], live[i] })
				if _, err := m.Compact(part, live, func(o objstore.OID) int { return sizes[o] }); err != nil {
					return false
				}
			}
		}
		if err := m.CheckInvariants(); err != nil {
			return false
		}
		// No overlapping placements within a partition.
		type span struct{ lo, hi int }
		perPart := map[PartitionID][]span{}
		for oid := range sizes {
			pl, ok := m.PlacementOf(oid)
			if !ok {
				return false
			}
			for _, s := range perPart[pl.Part] {
				if pl.Offset < s.hi && s.lo < pl.Offset+pl.Size {
					return false
				}
			}
			perPart[pl.Part] = append(perPart[pl.Part], span{pl.Offset, pl.Offset + pl.Size})
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestCheckInvariantsDetectsCorruption(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	if _, err := m.Allocate(1, 10); err != nil {
		t.Fatal(err)
	}
	m.place[1] = Placement{Part: 0, Page: 0, Offset: 95, Size: 10} // spans boundary
	err := m.CheckInvariants()
	if err == nil || !strings.Contains(err.Error(), "spans") {
		t.Errorf("corruption not detected: %v", err)
	}
}
