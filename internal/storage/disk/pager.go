package disk

import (
	"errors"
	"fmt"
	"io"
	"slices"

	"odbgc/internal/objstore"
	"odbgc/internal/simerr"
	"odbgc/internal/storage"
)

// poolPage maps a heap page number into the buffer pool's identifier space.
// The disk backend has a single flat page file, so the partition is always 0.
func poolPage(no uint32) storage.PageID {
	return storage.PageID{Part: 0, Index: int(no)}
}

// readPage reads one full page. A short read of a page the committed image
// references is torn-write corruption.
func readPage(f File, no uint32, buf []byte) error {
	n, err := f.ReadAt(buf[:PageSize], int64(no)*PageSize)
	if n == PageSize {
		return nil
	}
	if err == nil || errors.Is(err, io.EOF) {
		err = fmt.Errorf("short read: %d bytes", n)
	}
	return simerr.WrapTornWrite(fmt.Sprintf("page %d", no), err)
}

// allocPage hands out the lowest free page, extending the file only when
// the free list is empty. Lowest-first keeps the allocation order — and
// therefore every on-disk byte — deterministic.
func (s *Store) allocPage() uint32 {
	if n := len(s.freePages); n > 0 {
		pg := s.freePages[0]
		s.freePages = s.freePages[1:]
		return pg
	}
	pg := s.pageCount
	s.pageCount++
	return pg
}

// checkpointImage is the set of pages a checkpoint writes: page images by
// number, the directory head, and which pages the new image occupies.
type checkpointImage struct {
	pages   map[uint32][]byte
	used    map[uint32]bool
	dirHead uint32
}

// buildCheckpoint serializes the committed state into fresh pages: data
// pages holding object records in ascending OID order, then directory
// pages mapping every OID to its (page, slot). Pages come from the free
// list, so the previous checkpoint's image is never overwritten — a crash
// mid-checkpoint recovers from the old image plus the intact WAL.
func (s *Store) buildCheckpoint() (*checkpointImage, error) {
	img := &checkpointImage{pages: make(map[uint32][]byte), used: make(map[uint32]bool)}
	type dirEntry struct {
		oid  objstore.OID
		page uint32
		slot uint16
	}
	var entries []dirEntry

	var (
		data   []byte
		dataNo uint32
		nrecs  uint16
	)
	flushData := func() {
		if data == nil {
			return
		}
		used := uint32(len(data) - pageHdrLen)
		data = data[:PageSize] // zero padding is covered by the CRC
		sealPage(data, pageHdr{kind: kindData, count: nrecs, used: used})
		img.pages[dataNo] = data
		data, nrecs = nil, 0
	}
	for _, oid := range s.mem.sortedOIDs() {
		o := s.mem.objects[oid]
		rec := objRecLen(len(o.slots))
		if rec > pagePayload {
			return nil, fmt.Errorf("disk: object %v needs %d bytes, page payload is %d", oid, rec, pagePayload)
		}
		if data != nil && len(data)+rec > PageSize {
			flushData()
		}
		if data == nil {
			dataNo = s.allocPage()
			img.used[dataNo] = true
			data = make([]byte, pageHdrLen, PageSize)
		}
		entries = append(entries, dirEntry{oid: oid, page: dataNo, slot: nrecs})
		data = le.AppendUint64(data, uint64(oid))
		root := byte(0)
		if o.root {
			root = 1
		}
		data = append(data, byte(o.class), root)
		data = le.AppendUint32(data, uint32(o.size))
		data = le.AppendUint32(data, uint32(len(o.slots)))
		for _, sl := range o.slots {
			data = le.AppendUint64(data, uint64(sl))
		}
		nrecs++
	}
	flushData()

	// Directory pages, chained head → tail. Page numbers are allocated up
	// front so each page can be sealed once with its next pointer in place.
	perPage := pagePayload / dirEntryLen
	nDir := (len(entries) + perPage - 1) / perPage
	dirNos := make([]uint32, nDir)
	for i := range dirNos {
		dirNos[i] = s.allocPage()
		img.used[dirNos[i]] = true
	}
	for i := 0; i < nDir; i++ {
		start := i * perPage
		n := min(perPage, len(entries)-start)
		page := make([]byte, pageHdrLen, PageSize)
		for _, e := range entries[start : start+n] {
			page = le.AppendUint64(page, uint64(e.oid))
			page = le.AppendUint32(page, e.page)
			page = le.AppendUint16(page, e.slot)
		}
		page = page[:PageSize]
		next := uint32(0)
		if i+1 < nDir {
			next = dirNos[i+1]
		}
		sealPage(page, pageHdr{kind: kindDir, count: uint16(n), next: next, used: uint32(n * dirEntryLen)})
		img.pages[dirNos[i]] = page
	}
	if nDir > 0 {
		img.dirHead = dirNos[0]
	}
	return img, nil
}

// writeCheckpoint persists an image through the buffer pool. Every page is
// pinned dirty and flushed through the write-back hook, which syncs the WAL
// first — the write-ordering invariant: no page whose contents depend on a
// committed batch reaches disk before that batch's WAL records do.
func (s *Store) writeCheckpoint(img *checkpointImage) error {
	s.ckptPages = img.pages
	defer func() { s.ckptPages = nil }()
	for _, no := range sortedKeys(img.pages) {
		if _, err := s.pool.Pin(poolPage(no), true, true); err != nil {
			return fmt.Errorf("disk: pin checkpoint page %d: %w", no, err)
		}
	}
	for _, pid := range s.pool.DirtyPages() {
		if _, err := s.pool.Flush(pid); err != nil {
			return err
		}
	}
	if len(s.ckptPages) != 0 {
		return fmt.Errorf("disk: %d checkpoint pages left unwritten", len(s.ckptPages))
	}
	return s.syncHeap()
}

// pageWriteback is the buffer pool's write-back hook: WAL first, then the
// page. Evictions during image building and explicit flushes both land here.
func (s *Store) pageWriteback(pid storage.PageID) error {
	page, ok := s.ckptPages[uint32(pid.Index)]
	if !ok {
		return fmt.Errorf("disk: write-back of unknown page %d", pid.Index)
	}
	if err := s.syncWAL(); err != nil {
		return err
	}
	if _, err := s.heap.WriteAt(page, int64(pid.Index)*PageSize); err != nil {
		return fmt.Errorf("disk: write page %d: %w", pid.Index, err)
	}
	delete(s.ckptPages, uint32(pid.Index))
	return nil
}

// loadCheckpoint rebuilds the committed state from the newest valid meta
// slot. Both slots damaged (on a non-empty heap) is unrecoverable; one
// damaged slot falls back to the other, which is the dual-slot design
// absorbing a torn meta write.
func loadCheckpoint(heap File, mem *memState) (m *meta, metaFallback bool, pagesRead int, used map[uint32]bool, err error) {
	used = make(map[uint32]bool)
	size, err := heap.Size()
	if err != nil {
		return nil, false, 0, used, fmt.Errorf("disk: heap size: %w", err)
	}
	if size == 0 {
		return nil, false, 0, used, nil // fresh database
	}
	var buf [PageSize]byte
	var metas [2]*meta
	var metaErrs [2]error
	for no := uint32(0); no < 2; no++ {
		if int64(no+1)*PageSize > size {
			continue
		}
		if err := readPage(heap, no, buf[:]); err != nil {
			metaErrs[no] = err
			continue
		}
		pagesRead++
		metas[no], metaErrs[no] = decodeMeta(buf[:], no)
	}
	best := -1
	for no, mm := range metas {
		if mm != nil && (best < 0 || mm.generation > metas[best].generation) {
			best = no
		}
	}
	if best < 0 {
		damaged := 0
		var derr error
		for _, e := range metaErrs {
			if e != nil {
				damaged++
				derr = e
			}
		}
		if damaged == 2 {
			return nil, false, pagesRead, used, simerr.WrapRecoveryFailed("both meta pages damaged", derr)
		}
		if damaged == 1 {
			// One slot torn, the other never written: a crash tore the
			// very first checkpoint's meta flip. The WAL has not been
			// truncated yet, so checkpoint-less replay loses nothing —
			// and scanWAL's sequence check (batches must start at 1 when
			// there is no checkpoint) refuses the look-alike case where
			// the only meta of a pruned store rotted.
			return nil, true, pagesRead, used, nil
		}
		return nil, false, pagesRead, used, nil // both slots blank: heap never checkpointed
	}
	m = metas[best]
	metaFallback = metaErrs[1-best] != nil
	mem.nextOID = objstore.OID(m.nextOID)

	// Walk the directory chain, then fetch each referenced data page once
	// and decode its records in place.
	type pageRecs struct {
		oids []objstore.OID
		offs []int
		page []byte
	}
	dataCache := make(map[uint32]*pageRecs)
	loadData := func(no uint32) (*pageRecs, error) {
		if pr, ok := dataCache[no]; ok {
			return pr, nil
		}
		page := make([]byte, PageSize)
		if err := readPage(heap, no, page); err != nil {
			return nil, err
		}
		pagesRead++
		used[no] = true
		hdr, err := openPage(page, no)
		if err != nil {
			return nil, err
		}
		if hdr.kind != kindData {
			return nil, fmt.Errorf("page %d: kind %d, want data", no, hdr.kind)
		}
		pr := &pageRecs{page: page}
		off := pageHdrLen
		for i := 0; i < int(hdr.count); i++ {
			if off+18 > pageHdrLen+int(hdr.used) {
				return nil, fmt.Errorf("page %d: record %d overruns payload", no, i)
			}
			nslots := int(le.Uint32(page[off+14:]))
			if off+objRecLen(nslots) > pageHdrLen+int(hdr.used) {
				return nil, fmt.Errorf("page %d: record %d slots overrun payload", no, i)
			}
			pr.oids = append(pr.oids, objstore.OID(le.Uint64(page[off:])))
			pr.offs = append(pr.offs, off)
			off += objRecLen(nslots)
		}
		dataCache[no] = pr
		return pr, nil
	}

	for no := m.dirHead; no != 0; {
		page := make([]byte, PageSize)
		if err := readPage(heap, no, page); err != nil {
			return nil, metaFallback, pagesRead, used, simerr.WrapRecoveryFailed(fmt.Sprintf("directory page %d", no), err)
		}
		pagesRead++
		used[no] = true
		hdr, err := openPage(page, no)
		if err != nil {
			return nil, metaFallback, pagesRead, used, simerr.WrapRecoveryFailed(fmt.Sprintf("directory page %d", no), err)
		}
		if hdr.kind != kindDir {
			return nil, metaFallback, pagesRead, used, simerr.WrapRecoveryFailed(
				fmt.Sprintf("directory page %d: kind %d", no, hdr.kind), nil)
		}
		for i := 0; i < int(hdr.count); i++ {
			off := pageHdrLen + i*dirEntryLen
			oid := objstore.OID(le.Uint64(page[off:]))
			dataNo := le.Uint32(page[off+8:])
			slot := int(le.Uint16(page[off+12:]))
			pr, err := loadData(dataNo)
			if err != nil {
				return nil, metaFallback, pagesRead, used, simerr.WrapRecoveryFailed(fmt.Sprintf("object %v", oid), err)
			}
			if slot >= len(pr.oids) || pr.oids[slot] != oid {
				return nil, metaFallback, pagesRead, used, simerr.WrapRecoveryFailed(
					fmt.Sprintf("directory entry %v → (%d,%d) does not resolve", oid, dataNo, slot), nil)
			}
			rOff := pr.offs[slot]
			nslots := int(le.Uint32(pr.page[rOff+14:]))
			o := &memObj{
				class: objstore.Class(pr.page[rOff+8]),
				root:  pr.page[rOff+9] != 0,
				size:  int(le.Uint32(pr.page[rOff+10:])),
				slots: make([]objstore.OID, nslots),
			}
			for si := range o.slots {
				o.slots[si] = objstore.OID(le.Uint64(pr.page[rOff+18+8*si:]))
			}
			if _, dup := mem.objects[oid]; dup {
				return nil, metaFallback, pagesRead, used, simerr.WrapRecoveryFailed(
					fmt.Sprintf("duplicate directory entry for %v", oid), nil)
			}
			mem.objects[oid] = o
		}
		no = hdr.next
	}
	if uint64(len(mem.objects)) != m.objects {
		return nil, metaFallback, pagesRead, used, simerr.WrapRecoveryFailed(
			fmt.Sprintf("checkpoint holds %d objects, meta says %d", len(mem.objects), m.objects), nil)
	}
	return m, metaFallback, pagesRead, used, nil
}

// rebuildFreeList recomputes the free list from the committed image: every
// page in [2, pageCount) that the image does not reference. Pages written
// for a checkpoint whose meta flip never landed return here automatically.
func (s *Store) rebuildFreeList(used map[uint32]bool) {
	s.freePages = s.freePages[:0]
	for no := uint32(2); no < s.pageCount; no++ {
		if !used[no] {
			s.freePages = append(s.freePages, no)
		}
	}
	slices.Sort(s.freePages)
}

func sortedKeys(m map[uint32][]byte) []uint32 {
	out := make([]uint32, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
