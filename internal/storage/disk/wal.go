package disk

import (
	"fmt"
	"hash/crc32"

	"odbgc/internal/objstore"
	"odbgc/internal/simerr"
)

// walOp is one logical mutation, the unit both of staging (Log* calls
// append walOps) and of replay (recovery decodes records back into walOps
// and folds them through the same memState.apply as live commits).
type walOp struct {
	kind   uint8
	oid    objstore.OID
	class  objstore.Class
	size   int
	nslots int
	slot   int
	dst    objstore.OID
	on     bool
	oids   []objstore.OID // reclaim victims; aliases the staging buffer
}

// appendRecord encodes one WAL record (length, CRC32-C, payload) onto buf.
// The payload is encoded first into the space after the header, then the
// header is stamped — one pass, no temporaries.
func appendRecord(buf []byte, op walOp, seq uint64) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0) // header placeholder
	switch op.kind {
	case recAlloc:
		buf = append(buf, recAlloc)
		buf = le.AppendUint64(buf, uint64(op.oid))
		buf = append(buf, byte(op.class))
		buf = le.AppendUint32(buf, uint32(op.size))
		buf = le.AppendUint32(buf, uint32(op.nslots))
	case recSet:
		buf = append(buf, recSet)
		buf = le.AppendUint64(buf, uint64(op.oid))
		buf = le.AppendUint32(buf, uint32(op.slot))
		buf = le.AppendUint64(buf, uint64(op.dst))
	case recRoot:
		on := byte(0)
		if op.on {
			on = 1
		}
		buf = append(buf, recRoot, on)
		buf = le.AppendUint64(buf, uint64(op.oid))
	case recReclaim:
		buf = append(buf, recReclaim)
		buf = le.AppendUint32(buf, uint32(len(op.oids)))
		for _, oid := range op.oids {
			buf = le.AppendUint64(buf, uint64(oid))
		}
	case recCommit:
		buf = append(buf, recCommit)
		buf = le.AppendUint64(buf, seq)
	}
	payload := buf[start+walHdrLen:]
	le.PutUint32(buf[start:], uint32(len(payload)))
	le.PutUint32(buf[start+4:], crc32.Checksum(payload, castagnoli))
	return buf
}

// decodeRecord decodes one record payload. The reclaim OID slice is freshly
// allocated — decode runs only during recovery.
func decodeRecord(p []byte) (walOp, uint64, error) {
	var op walOp
	if len(p) < 1 {
		return op, 0, fmt.Errorf("empty record")
	}
	op.kind = p[0]
	body := p[1:]
	need := func(n int) error {
		if len(body) != n {
			return fmt.Errorf("record type %d: %d payload bytes, want %d", op.kind, len(body), n)
		}
		return nil
	}
	switch op.kind {
	case recAlloc:
		if err := need(8 + 1 + 4 + 4); err != nil {
			return op, 0, err
		}
		op.oid = objstore.OID(le.Uint64(body))
		op.class = objstore.Class(body[8])
		op.size = int(le.Uint32(body[9:]))
		op.nslots = int(le.Uint32(body[13:]))
	case recSet:
		if err := need(8 + 4 + 8); err != nil {
			return op, 0, err
		}
		op.oid = objstore.OID(le.Uint64(body))
		op.slot = int(le.Uint32(body[8:]))
		op.dst = objstore.OID(le.Uint64(body[12:]))
	case recRoot:
		if err := need(1 + 8); err != nil {
			return op, 0, err
		}
		op.on = body[0] != 0
		op.oid = objstore.OID(le.Uint64(body[1:]))
	case recReclaim:
		if len(body) < 4 {
			return op, 0, fmt.Errorf("reclaim record: %d payload bytes", len(body))
		}
		n := int(le.Uint32(body))
		if err := need(4 + 8*n); err != nil {
			return op, 0, err
		}
		op.oids = make([]objstore.OID, n)
		for i := range op.oids {
			op.oids[i] = objstore.OID(le.Uint64(body[4+8*i:]))
		}
	case recCommit:
		if err := need(8); err != nil {
			return op, 0, err
		}
		return op, le.Uint64(body), nil
	default:
		return op, 0, fmt.Errorf("unknown record type %d", op.kind)
	}
	return op, 0, nil
}

// walScan is the result of scanning a WAL image during recovery.
type walScan struct {
	tail    int64 // offset just past the last intact commit record
	batches int   // batches applied (seq beyond the checkpoint)
	records int   // records inside applied batches
	lastSeq uint64
	torn    bool  // the image ended in a damaged or incomplete record
	tornAt  int64 // offset of the damaged record
	tornErr error // classification of the damage (simerr.ErrTornWrite)
}

// scanWAL replays a WAL image over the committed state. Batches whose
// sequence is at or below ckptSeq were absorbed by the checkpoint and are
// skipped; later batches must arrive in exact sequence order. The scan
// stops at the first damaged record: by write-ahead discipline everything
// after a tear was never acknowledged, so the tail is discarded rather than
// searched for stray intact records.
func scanWAL(data []byte, ckptSeq uint64, mem *memState) (walScan, error) {
	res := walScan{lastSeq: ckptSeq}
	var batch []walOp
	off := 0
	tear := func(at int, err error) {
		res.torn = true
		res.tornAt = int64(at)
		res.tornErr = simerr.WrapTornWrite(fmt.Sprintf("wal offset %d", at), err)
	}
	for off < len(data) {
		if len(data)-off < walHdrLen {
			tear(off, fmt.Errorf("truncated header: %d bytes", len(data)-off))
			break
		}
		length := int(le.Uint32(data[off:]))
		sum := le.Uint32(data[off+4:])
		if length <= 0 || length > len(data)-off-walHdrLen {
			tear(off, fmt.Errorf("record length %d exceeds image", length))
			break
		}
		payload := data[off+walHdrLen : off+walHdrLen+length]
		if got := crc32.Checksum(payload, castagnoli); got != sum {
			tear(off, fmt.Errorf("crc %08x != %08x", got, sum))
			break
		}
		op, seq, err := decodeRecord(payload)
		if err != nil {
			tear(off, err)
			break
		}
		off += walHdrLen + length
		if op.kind != recCommit {
			batch = append(batch, op)
			continue
		}
		switch {
		case seq <= ckptSeq:
			// Absorbed by the checkpoint before the crash; the records are
			// a stale prefix left by an untruncated WAL.
			batch = batch[:0]
		case seq != res.lastSeq+1:
			return res, simerr.WrapRecoveryFailed(
				fmt.Sprintf("wal batch sequence %d after %d", seq, res.lastSeq), nil)
		default:
			for _, bop := range batch {
				if err := mem.apply(bop); err != nil {
					return res, simerr.WrapRecoveryFailed(
						fmt.Sprintf("replay batch %d", seq), err)
				}
			}
			res.records += len(batch)
			res.batches++
			res.lastSeq = seq
			batch = batch[:0]
		}
		res.tail = int64(off)
	}
	return res, nil
}
