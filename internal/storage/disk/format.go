package disk

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"odbgc/internal/simerr"
)

// On-disk constants. PageSize matches the paper's 8 KB partition pages.
const (
	PageSize    = 8192
	pageHdrLen  = 4 + 1 + 2 + 4 + 4 // crc, kind, count, next, used
	pagePayload = PageSize - pageHdrLen

	metaMagic   = 0x4f44_4247 // "ODBG"
	metaVersion = 1

	heapFile = "heap.db"
	walFile  = "wal.log"
)

// Page kinds.
const (
	kindMeta = iota + 1
	kindDir
	kindData
)

// WAL record types.
const (
	recAlloc = iota + 1
	recSet
	recRoot
	recReclaim
	recCommit
)

// walHdrLen prefixes every WAL record: u32 payload length, u32 CRC32-C of
// the payload.
const walHdrLen = 8

// castagnoli is the CRC32-C table, shared by pages and WAL records.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// le is the byte order of everything on disk.
var le = binary.LittleEndian

// pageHdr is the decoded header of a heap page.
type pageHdr struct {
	kind  uint8
	count uint16 // records (data) or entries (dir) on the page
	next  uint32 // next page in the chain, 0 = end
	used  uint32 // payload bytes in use
}

// sealPage writes hdr into the first bytes of page and stamps the CRC over
// everything after the CRC field. page must be PageSize long.
func sealPage(page []byte, hdr pageHdr) {
	page[4] = hdr.kind
	le.PutUint16(page[5:], hdr.count)
	le.PutUint32(page[7:], hdr.next)
	le.PutUint32(page[11:], hdr.used)
	le.PutUint32(page[0:], crc32.Checksum(page[4:], castagnoli))
}

// openPage verifies the CRC of a page and returns its header. A checksum
// mismatch is torn-write corruption.
func openPage(page []byte, pageNo uint32) (pageHdr, error) {
	var hdr pageHdr
	if len(page) != PageSize {
		return hdr, simerr.WrapTornWrite(fmt.Sprintf("page %d: %d bytes", pageNo, len(page)), nil)
	}
	if got, want := crc32.Checksum(page[4:], castagnoli), le.Uint32(page[0:]); got != want {
		return hdr, simerr.WrapTornWrite(fmt.Sprintf("page %d: crc %08x != %08x", pageNo, got, want), nil)
	}
	hdr.kind = page[4]
	hdr.count = le.Uint16(page[5:])
	hdr.next = le.Uint32(page[7:])
	hdr.used = le.Uint32(page[11:])
	if hdr.used > pagePayload {
		return hdr, simerr.WrapTornWrite(fmt.Sprintf("page %d: used %d exceeds payload", pageNo, hdr.used), nil)
	}
	return hdr, nil
}

// meta is the decoded root of a checkpoint: which pages hold the committed
// image, how far the WAL was absorbed, and the OID horizon.
type meta struct {
	generation uint64 // monotonically increasing; higher wins between the two slots
	seq        uint64 // last WAL batch sequence folded into this checkpoint
	nextOID    uint64
	pageCount  uint32 // heap.db size in pages at checkpoint time
	dirHead    uint32 // first directory page, 0 = empty database
	objects    uint64 // object count, for validation
}

// encodeMeta builds a meta page image.
func encodeMeta(m meta) []byte {
	page := make([]byte, PageSize)
	p := page[pageHdrLen:]
	le.PutUint32(p[0:], metaMagic)
	le.PutUint32(p[4:], metaVersion)
	le.PutUint64(p[8:], m.generation)
	le.PutUint64(p[16:], m.seq)
	le.PutUint64(p[24:], m.nextOID)
	le.PutUint32(p[32:], m.pageCount)
	le.PutUint32(p[36:], m.dirHead)
	le.PutUint64(p[40:], m.objects)
	sealPage(page, pageHdr{kind: kindMeta, used: 48})
	return page
}

// decodeMeta validates and decodes one meta slot. The error distinguishes
// "never written" (all zero ⇒ nil meta, nil error) from "damaged".
func decodeMeta(page []byte, pageNo uint32) (*meta, error) {
	allZero := true
	for _, b := range page {
		if b != 0 {
			allZero = false
			break
		}
	}
	if allZero {
		return nil, nil
	}
	hdr, err := openPage(page, pageNo)
	if err != nil {
		return nil, err
	}
	if hdr.kind != kindMeta {
		return nil, simerr.WrapTornWrite(fmt.Sprintf("page %d: kind %d is not meta", pageNo, hdr.kind), nil)
	}
	p := page[pageHdrLen:]
	if le.Uint32(p[0:]) != metaMagic {
		return nil, simerr.WrapTornWrite(fmt.Sprintf("page %d: bad magic", pageNo), nil)
	}
	if v := le.Uint32(p[4:]); v != metaVersion {
		return nil, fmt.Errorf("disk: meta page %d: version %d not supported", pageNo, v)
	}
	return &meta{
		generation: le.Uint64(p[8:]),
		seq:        le.Uint64(p[16:]),
		nextOID:    le.Uint64(p[24:]),
		pageCount:  le.Uint32(p[32:]),
		dirHead:    le.Uint32(p[36:]),
		objects:    le.Uint64(p[40:]),
	}, nil
}

// dirEntryLen is the wire size of one directory entry: oid u64, page u32,
// slot u16.
const dirEntryLen = 8 + 4 + 2

// objRecLen returns the wire size of one object record on a data page:
// oid u64, class u8, root u8, size u32, nslots u32, then the slots.
func objRecLen(nslots int) int { return 8 + 1 + 1 + 4 + 4 + 8*nslots }
