// Package disk implements the durable storage.Backend: a checksummed
// write-ahead log paired with a paged checkpoint store, designed so that a
// crash at any instant loses no committed batch, never resurrects a
// committed reclaim, and recovers to a byte-identical logical state.
//
// Layout inside the data directory:
//
//	heap.db — 8 KB pages. Pages 0 and 1 are alternating meta pages (the
//	          one with the higher generation and a valid checksum wins);
//	          the rest hold checkpoint images: directory pages mapping
//	          OID → (page, slot) and data pages holding object records.
//	          Every page carries a CRC32-C over its payload.
//	wal.log — length-prefixed, CRC32-C-checksummed records. A batch is
//	          the records since the previous commit record; recovery
//	          applies a batch only when its commit record is intact, so
//	          a torn tail rolls back to the last durable commit.
//
// Checkpoints are copy-on-write: a new image is written to free pages,
// then the meta page flips to it in one checksummed write. A crash during
// checkpoint leaves the previous image (and the WAL covering everything
// since) fully intact; the pages of an abandoned image return to the free
// list automatically on the next open because nothing committed references
// them.
//
// The package holds no wall clock and no randomness: given the same inputs
// it produces the same bytes, which is what makes the crash-point sweep in
// the crashtest subpackage exhaustive and reproducible.
package disk

import (
	"fmt"
	"io"
	"os"
	"path/filepath"
)

// FS is the filesystem surface the backend runs on. Production uses OSFS;
// the crash harness substitutes a journaling in-memory implementation, and
// the fault injector wraps one FS around another.
type FS interface {
	// Open opens the named file read-write, creating it if absent.
	Open(name string) (File, error)
	// Remove deletes the named file. Removing an absent file is an error.
	Remove(name string) error
}

// File is the random-access file surface the backend needs. Implementations
// must tolerate reads past EOF returning io.EOF with a short count, as
// os.File does.
type File interface {
	io.ReaderAt
	io.WriterAt
	Size() (int64, error)
	Truncate(size int64) error
	Sync() error
	Close() error
}

// OSFS is the production FS: files under a directory on the real
// filesystem.
type OSFS struct {
	Dir string
}

// Open opens dir/name read-write, creating the directory and file as
// needed.
func (fs OSFS) Open(name string) (File, error) {
	if err := os.MkdirAll(fs.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: create data dir: %w", err)
	}
	f, err := os.OpenFile(filepath.Join(fs.Dir, name), os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open %s: %w", name, err)
	}
	return osFile{f}, nil
}

// Remove deletes dir/name.
func (fs OSFS) Remove(name string) error {
	if err := os.Remove(filepath.Join(fs.Dir, name)); err != nil {
		return fmt.Errorf("disk: remove %s: %w", name, err)
	}
	return nil
}

type osFile struct {
	*os.File
}

func (f osFile) Size() (int64, error) {
	st, err := f.Stat()
	if err != nil {
		return 0, fmt.Errorf("disk: stat %s: %w", f.Name(), err)
	}
	return st.Size(), nil
}
