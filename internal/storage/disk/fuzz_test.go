package disk

import (
	"bytes"
	"testing"

	"odbgc/internal/objstore"
)

// walSeed builds a well-formed WAL image: two committed batches and one
// trailing uncommitted record.
func walSeed() []byte {
	var buf []byte
	buf = appendRecord(buf, walOp{kind: recAlloc, oid: 1, class: objstore.ClassModule, size: 100, nslots: 2}, 0)
	buf = appendRecord(buf, walOp{kind: recRoot, oid: 1, on: true}, 0)
	buf = appendRecord(buf, walOp{kind: recCommit}, 1)
	buf = appendRecord(buf, walOp{kind: recSet, oid: 1, slot: 0, dst: 1}, 0)
	buf = appendRecord(buf, walOp{kind: recReclaim, oids: []objstore.OID{1}}, 0)
	buf = appendRecord(buf, walOp{kind: recCommit}, 2)
	buf = appendRecord(buf, walOp{kind: recAlloc, oid: 2, class: objstore.ClassManual, size: 5, nslots: 0}, 0)
	return buf
}

// FuzzScanWAL feeds arbitrary bytes to the recovery scanner. Whatever the
// damage, the scanner must not panic, must stop at a batch boundary, and —
// the lenient re-read property, mirroring the trace reader's fuzz — a
// re-scan of the accepted prefix must reproduce the same state with no
// tear reported.
func FuzzScanWAL(f *testing.F) {
	seed := walSeed()
	f.Add(seed)
	f.Add(seed[:len(seed)-3]) // torn mid-record
	f.Add(seed[:17])          // torn mid-header
	f.Add([]byte{})
	corrupted := bytes.Clone(seed)
	corrupted[30] ^= 0xff
	f.Add(corrupted)
	f.Fuzz(func(t *testing.T, data []byte) {
		mem := newMemState()
		scan, err := scanWAL(data, 0, mem)
		if err != nil {
			// Unrecoverable (sequence gap or inconsistent batch): fine, as
			// long as it did not panic.
			return
		}
		if scan.tail < 0 || scan.tail > int64(len(data)) {
			t.Fatalf("tail %d outside image of %d bytes", scan.tail, len(data))
		}
		d1 := mem.digest()
		mem2 := newMemState()
		scan2, err := scanWAL(data[:scan.tail], 0, mem2)
		if err != nil {
			t.Fatalf("re-scan of accepted prefix failed: %v", err)
		}
		if scan2.torn {
			t.Fatalf("accepted prefix reports a tear at %d", scan2.tornAt)
		}
		if scan2.tail != scan.tail || scan2.batches != scan.batches || scan2.lastSeq != scan.lastSeq {
			t.Fatalf("re-scan diverged: %+v vs %+v", scan2, scan)
		}
		if d2 := mem2.digest(); d2 != d1 {
			t.Fatalf("re-scan state diverged")
		}
	})
}
