package disk

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"odbgc/internal/objstore"
	"odbgc/internal/simerr"
)

func openTemp(t *testing.T, dir string, fsync FsyncPolicy) (*Store, *RecoveryInfo) {
	t.Helper()
	s, info, err := Open(Options{FS: OSFS{Dir: dir}, Fsync: fsync})
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s, info
}

// seedObjects logs a small committed object graph: three objects, one root,
// a couple of pointer stores.
func seedObjects(t *testing.T, s *Store) {
	t.Helper()
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(s.LogAlloc(1, objstore.ClassModule, 100, 2))
	must(s.LogAlloc(2, objstore.ClassAtomicPart, 50, 1))
	must(s.LogRoot(1, true))
	must(s.Commit())
	must(s.LogAlloc(3, objstore.ClassAtomicPart, 60, 0))
	must(s.LogSet(1, 0, 2))
	must(s.LogSet(2, 0, 3))
	must(s.Commit())
}

func TestFreshOpenIsEmpty(t *testing.T) {
	s, info := openTemp(t, t.TempDir(), FsyncAlways)
	defer func() {
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	}()
	if info.Objects != 0 || info.BatchesReplayed != 0 || info.TornTail {
		t.Errorf("fresh open recovered %+v", info)
	}
	if s.NumObjects() != 0 || s.NextOID() != 1 {
		t.Errorf("fresh store: %d objects, next %v", s.NumObjects(), s.NextOID())
	}
}

func TestCommitSurvivesReopen(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTemp(t, dir, FsyncAlways)
	seedObjects(t, s)
	want := s.Digest()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, info := openTemp(t, dir, FsyncAlways)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if got := s2.Digest(); got != want {
		t.Errorf("digest changed across reopen: %x != %x", got, want)
	}
	if info.BatchesReplayed != 2 || info.Objects != 3 {
		t.Errorf("recovery = %+v", info)
	}
	if s2.NextOID() != 4 {
		t.Errorf("NextOID = %v", s2.NextOID())
	}
	var got []ObjectState
	s2.ForEach(func(o ObjectState) {
		o.Slots = append([]objstore.OID(nil), o.Slots...)
		got = append(got, o)
	})
	if len(got) != 3 || got[0].OID != 1 || !got[0].Root || got[0].Slots[0] != 2 {
		t.Errorf("recovered objects = %+v", got)
	}
}

func TestCheckpointPrunesWALAndSurvives(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTemp(t, dir, FsyncGroup)
	seedObjects(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.WALTail != 0 {
		t.Errorf("WAL not pruned after checkpoint: tail %d", st.WALTail)
	}
	// More work after the checkpoint, including a reclaim.
	if err := s.LogReclaim([]objstore.OID{3}); err != nil {
		t.Fatal(err)
	}
	if err := s.LogSet(2, 0, objstore.NilOID); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	want := s.Digest()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, info := openTemp(t, dir, FsyncGroup)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if got := s2.Digest(); got != want {
		t.Errorf("digest changed across checkpointed reopen")
	}
	if info.CheckpointSeq != 2 || info.BatchesReplayed != 1 {
		t.Errorf("recovery = %+v", info)
	}
	if s2.NumObjects() != 2 {
		t.Errorf("reclaimed object resurrected: %d objects", s2.NumObjects())
	}
	// The OID horizon survives even though object 3 is gone.
	if s2.NextOID() != 4 {
		t.Errorf("NextOID = %v", s2.NextOID())
	}
}

func TestUncommittedStagedRecordsDieWithTheProcess(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTemp(t, dir, FsyncAlways)
	seedObjects(t, s)
	want := s.Digest()
	if err := s.LogAlloc(9, objstore.ClassDocument, 10, 0); err != nil {
		t.Fatal(err)
	}
	// Close without Commit: the staged alloc must vanish.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, _ := openTemp(t, dir, FsyncAlways)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if got := s2.Digest(); got != want {
		t.Errorf("uncommitted staged records leaked into recovery")
	}
}

func TestTornWALTailRollsBack(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTemp(t, dir, FsyncAlways)
	seedObjects(t, s)
	want := s.Digest()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Simulate a tear: garbage bytes appended past the last commit.
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0x55, 0x01, 0x00, 0x00, 0xde, 0xad}); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	s2, info := openTemp(t, dir, FsyncAlways)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if !info.TornTail {
		t.Error("torn tail not detected")
	}
	if got := s2.Digest(); got != want {
		t.Errorf("torn tail changed recovered state")
	}
	// The tail was trimmed: a third open sees a clean WAL.
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, info3 := openTemp(t, dir, FsyncAlways)
	defer func() {
		if err := s3.Close(); err != nil {
			t.Error(err)
		}
	}()
	if info3.TornTail {
		t.Error("tail still torn after recovery trimmed it")
	}
}

func TestMidBatchTearDropsWholeBatch(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTemp(t, dir, FsyncAlways)
	seedObjects(t, s)
	afterTwo := s.Digest()
	if err := s.LogAlloc(4, objstore.ClassManual, 30, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.LogRoot(4, true); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the last batch: cut the WAL 3 bytes short of its end, mid
	// commit-record. Atomicity demands the whole batch disappears.
	path := filepath.Join(dir, walFile)
	st, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, st.Size()-3); err != nil {
		t.Fatal(err)
	}

	s2, info := openTemp(t, dir, FsyncAlways)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if !info.TornTail {
		t.Error("torn batch not detected")
	}
	if got := s2.Digest(); got != afterTwo {
		t.Errorf("partial batch leaked: digest %x, want pre-batch %x", got, afterTwo)
	}
	if s2.NumObjects() != 3 {
		t.Errorf("object from torn batch resurrected")
	}
}

func TestCorruptDataPageFailsRecovery(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTemp(t, dir, FsyncAlways)
	seedObjects(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte inside the first checkpoint page (page 2).
	path := filepath.Join(dir, heapFile)
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xff}, 2*PageSize+100); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	_, _, err = Open(Options{FS: OSFS{Dir: dir}, Fsync: FsyncAlways})
	if err == nil {
		t.Fatal("recovery over a rotted page succeeded")
	}
	if !errors.Is(err, simerr.ErrRecoveryFailed) {
		t.Errorf("error not classified as recovery failure: %v", err)
	}
	if simerr.Classify(err) != simerr.ClassRecoveryFailed {
		t.Errorf("Classify = %v", simerr.Classify(err))
	}
}

func TestTornMetaFlipFallsBackToPreviousCheckpoint(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTemp(t, dir, FsyncAlways)
	seedObjects(t, s)
	if err := s.Checkpoint(); err != nil { // generation 1 → slot 1
		t.Fatal(err)
	}
	if err := s.LogAlloc(4, objstore.ClassManual, 30, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	want := s.Digest()
	if err := s.Checkpoint(); err != nil { // generation 2 → slot 0
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Tear the generation-2 meta write (slot 0). Recovery must fall back
	// to generation 1 — but the WAL was pruned at generation 2, so this
	// only stays lossless because the test re-tears *before* that prune
	// could matter: emulate the real torn-flip crash by also restoring the
	// WAL bytes that existed before checkpoint 2 pruned them.
	heapPath := filepath.Join(dir, heapFile)
	f, err := os.OpenFile(heapPath, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte{0xaa}, 50); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// Rebuild the WAL tail exactly as it stood before checkpoint 2: batch 3
	// (the alloc of OID 4). Re-encode it through the same encoder.
	var buf []byte
	buf = appendRecord(buf, walOp{kind: recAlloc, oid: 4, class: objstore.ClassManual, size: 30}, 0)
	buf = appendRecord(buf, walOp{kind: recCommit}, 3)
	if err := os.WriteFile(filepath.Join(dir, walFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, info := openTemp(t, dir, FsyncAlways)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if !info.MetaFallback {
		t.Error("meta fallback not reported")
	}
	if info.CheckpointSeq != 2 || info.BatchesReplayed != 1 {
		t.Errorf("recovery = %+v", info)
	}
	if got := s2.Digest(); got != want {
		t.Errorf("torn meta flip lost state: %x != %x", got, want)
	}
}

func TestStaleWALPrefixAfterCheckpointIsSkipped(t *testing.T) {
	// A crash between the meta flip and the WAL truncate leaves absorbed
	// batches in the WAL. Reconstruct that state by writing the pre-prune
	// batches back after a clean checkpoint.
	dir := t.TempDir()
	s, _ := openTemp(t, dir, FsyncAlways)
	seedObjects(t, s)
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	want := s.Digest()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	var buf []byte
	buf = appendRecord(buf, walOp{kind: recAlloc, oid: 1, class: objstore.ClassModule, size: 100, nslots: 2}, 0)
	buf = appendRecord(buf, walOp{kind: recCommit}, 1)
	if err := os.WriteFile(filepath.Join(dir, walFile), buf, 0o644); err != nil {
		t.Fatal(err)
	}

	s2, info := openTemp(t, dir, FsyncAlways)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if info.BatchesReplayed != 0 {
		t.Errorf("stale batch replayed: %+v", info)
	}
	if got := s2.Digest(); got != want {
		t.Errorf("stale WAL prefix corrupted state")
	}
}

func TestEmptyCommitIsNoOp(t *testing.T) {
	s, _ := openTemp(t, t.TempDir(), FsyncAlways)
	defer func() {
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Seq != 0 || st.WALTail != 0 || st.Commits != 0 {
		t.Errorf("empty commit left tracks: %+v", st)
	}
}

func TestCheckpointRefusesStagedRecords(t *testing.T) {
	s, _ := openTemp(t, t.TempDir(), FsyncAlways)
	defer func() {
		if err := s.Close(); err != nil {
			t.Error(err)
		}
	}()
	if err := s.LogAlloc(1, objstore.ClassModule, 10, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err == nil {
		t.Error("checkpoint over staged records succeeded")
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Errorf("checkpoint after commit: %v", err)
	}
}

func TestManyObjectsSpanPagesAndCheckpointsRecycle(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTemp(t, dir, FsyncNever)
	// Enough objects to need several data and directory pages.
	oid := objstore.OID(1)
	for i := 0; i < 2000; i++ {
		if err := s.LogAlloc(oid, objstore.ClassAtomicPart, 64, 4); err != nil {
			t.Fatal(err)
		}
		if oid > 1 {
			if err := s.LogSet(oid, 0, oid-1); err != nil {
				t.Fatal(err)
			}
		}
		oid++
		if i%100 == 0 {
			if err := s.Commit(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Copy-on-write alternates between two images: the second checkpoint
	// needs fresh pages (the first image is still the committed one while
	// it writes), but the third must reuse the first image's freed pages,
	// so the heap stops growing.
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	pagesAfterSecond := s.Stats().PageCount
	if err := s.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got := s.Stats().PageCount; got != pagesAfterSecond {
		t.Errorf("third checkpoint grew the heap: %d → %d pages", pagesAfterSecond, got)
	}
	want := s.Digest()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, info := openTemp(t, dir, FsyncNever)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if got := s2.Digest(); got != want {
		t.Errorf("multi-page checkpoint did not round-trip")
	}
	if info.Objects != 2000 {
		t.Errorf("recovered %d objects", info.Objects)
	}
}

// flakyFS wraps an FS and injects failures into one named file: syncFails
// counts Sync calls to fail, writeFails counts WriteAts to fail, and
// metaWriteFails counts WriteAts inside the meta-slot region (offset below
// 2*PageSize) to fail. Counters are armed after Open, so recovery runs
// clean and the injection lands exactly where a test aims it.
type flakyFS struct {
	FS
	name           string
	syncFails      int
	writeFails     int
	metaWriteFails int
}

func (f *flakyFS) Open(name string) (File, error) {
	file, err := f.FS.Open(name)
	if err != nil || name != f.name {
		return file, err
	}
	return &flakyFile{File: file, fs: f}, nil
}

type flakyFile struct {
	File
	fs *flakyFS
}

func (f *flakyFile) Sync() error {
	if f.fs.syncFails > 0 {
		f.fs.syncFails--
		return errors.New("injected sync failure")
	}
	return f.File.Sync()
}

func (f *flakyFile) WriteAt(p []byte, off int64) (int, error) {
	if f.fs.writeFails > 0 {
		f.fs.writeFails--
		return 0, errors.New("injected write failure")
	}
	if f.fs.metaWriteFails > 0 && off < 2*PageSize {
		f.fs.metaWriteFails--
		return 0, errors.New("injected meta write failure")
	}
	return f.File.WriteAt(p, off)
}

// A failed WAL fsync must rewind the append: the staged batch stays staged
// for a retry, and the retry must not lay down a second copy of the same
// sequence number (which would poison recovery with a duplicate-seq error).
func TestCommitSyncFailureRewindsWAL(t *testing.T) {
	dir := t.TempDir()
	ffs := &flakyFS{FS: OSFS{Dir: dir}, name: walFile}
	s, _, err := Open(Options{FS: ffs, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	seedObjects(t, s)
	before := s.Stats()

	if err := s.LogAlloc(4, objstore.ClassManual, 30, 0); err != nil {
		t.Fatal(err)
	}
	ffs.syncFails = 1
	if err := s.Commit(); err == nil {
		t.Fatal("commit over a failing fsync succeeded")
	}
	if st := s.Stats(); st.Seq != before.Seq || st.WALTail != before.WALTail || st.Commits != before.Commits {
		t.Errorf("failed commit left tracks: %+v, want seq/tail/commits of %+v", st, before)
	}
	// The staged batch survives; the retry commits it exactly once.
	if err := s.Commit(); err != nil {
		t.Fatalf("retry after failed fsync: %v", err)
	}
	if st := s.Stats(); st.Seq != before.Seq+1 {
		t.Errorf("retry seq = %d, want %d", st.Seq, before.Seq+1)
	}
	want := s.Digest()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, info := openTemp(t, dir, FsyncAlways)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if got := s2.Digest(); got != want {
		t.Errorf("digest changed across reopen after fsync failure")
	}
	if info.BatchesReplayed != 3 {
		t.Errorf("recovery = %+v, want 3 batches (no duplicate)", info)
	}
}

// A failed checkpoint must roll back completely — allocator state restored,
// the aborted image's frames out of the pool — so the next checkpoint (and
// every one after) still works.
func TestCheckpointFailureRollsBackAndRetries(t *testing.T) {
	dir := t.TempDir()
	ffs := &flakyFS{FS: OSFS{Dir: dir}, name: heapFile}
	s, _, err := Open(Options{FS: ffs, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	seedObjects(t, s)
	before := s.Stats()

	ffs.writeFails = 1
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint over a failing page write succeeded")
	}
	if st := s.Stats(); st.PageCount != before.PageCount || st.FreePages != before.FreePages {
		t.Errorf("aborted checkpoint leaked pages: %+v, want page state of %+v", st, before)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after aborted checkpoint: %v", err)
	}
	// Another full commit+checkpoint cycle exercises the dirty-page flush
	// over the pool the aborted image once occupied.
	if err := s.LogAlloc(4, objstore.ClassManual, 30, 0); err != nil {
		t.Fatal(err)
	}
	if err := s.Commit(); err != nil {
		t.Fatal(err)
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("second checkpoint after aborted checkpoint: %v", err)
	}
	want := s.Digest()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, info := openTemp(t, dir, FsyncAlways)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if got := s2.Digest(); got != want {
		t.Errorf("digest changed across reopen after aborted checkpoint")
	}
	if info.CheckpointSeq != 3 {
		t.Errorf("recovery = %+v, want checkpoint seq 3", info)
	}
}

// A failure at the meta flip itself also rolls back, and the retry lands on
// the same slot with a fresh image; the store round-trips afterwards.
func TestCheckpointMetaWriteFailureRetries(t *testing.T) {
	dir := t.TempDir()
	ffs := &flakyFS{FS: OSFS{Dir: dir}, name: heapFile}
	s, _, err := Open(Options{FS: ffs, Fsync: FsyncAlways})
	if err != nil {
		t.Fatal(err)
	}
	seedObjects(t, s)

	ffs.metaWriteFails = 1
	if err := s.Checkpoint(); err == nil {
		t.Fatal("checkpoint over a failing meta write succeeded")
	}
	if err := s.Checkpoint(); err != nil {
		t.Fatalf("checkpoint after failed meta flip: %v", err)
	}
	want := s.Digest()
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s2, info := openTemp(t, dir, FsyncAlways)
	defer func() {
		if err := s2.Close(); err != nil {
			t.Error(err)
		}
	}()
	if got := s2.Digest(); got != want {
		t.Errorf("digest changed across reopen after failed meta flip")
	}
	if info.CheckpointSeq != 2 || info.BatchesReplayed != 0 {
		t.Errorf("recovery = %+v", info)
	}
}

// Committing an inconsistent batch (the caller's bug) poisons the store:
// the WAL already holds the batch, so every later operation must fail
// loudly instead of writing past a state recovery cannot reach.
func TestInconsistentBatchPoisonsStore(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTemp(t, dir, FsyncAlways)
	seedObjects(t, s)
	if err := s.LogSet(99, 0, 1); err != nil { // set on an object never allocated
		t.Fatal(err)
	}
	if err := s.Commit(); err == nil {
		t.Fatal("commit of an inconsistent batch succeeded")
	}
	if err := s.LogAlloc(5, objstore.ClassManual, 10, 0); err == nil {
		t.Error("stage on a poisoned store succeeded")
	}
	if err := s.Commit(); err == nil {
		t.Error("commit on a poisoned store succeeded")
	}
	if err := s.Checkpoint(); err == nil {
		t.Error("checkpoint on a poisoned store succeeded")
	}
	if err := s.Close(); err == nil {
		t.Error("close of a poisoned store reported success")
	}
	// The durable WAL holds the inconsistent batch; recovery refuses it.
	if _, _, err := Open(Options{FS: OSFS{Dir: dir}, Fsync: FsyncAlways}); !errors.Is(err, simerr.ErrRecoveryFailed) {
		t.Errorf("reopen of a store with an inconsistent committed batch: %v, want recovery failure", err)
	}
}

func TestRecoveryIsDeterministic(t *testing.T) {
	dir := t.TempDir()
	s, _ := openTemp(t, dir, FsyncAlways)
	seedObjects(t, s)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	heap1, err := os.ReadFile(filepath.Join(dir, heapFile))
	if err != nil {
		t.Fatal(err)
	}
	wal1, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	s2, info2 := openTemp(t, dir, FsyncAlways)
	d2 := s2.Digest()
	if err := s2.Close(); err != nil {
		t.Fatal(err)
	}
	s3, info3 := openTemp(t, dir, FsyncAlways)
	d3 := s3.Digest()
	if err := s3.Close(); err != nil {
		t.Fatal(err)
	}
	if d2 != d3 || *info2 != *info3 {
		t.Errorf("recovery not deterministic: %+v vs %+v", info2, info3)
	}
	heap2, err := os.ReadFile(filepath.Join(dir, heapFile))
	if err != nil {
		t.Fatal(err)
	}
	wal2, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	if string(heap1) != string(heap2) || string(wal1) != string(wal2) {
		t.Error("recovery rewrote on-disk bytes of a clean store")
	}
}
