package disk

import (
	"crypto/sha256"
	"errors"
	"fmt"
	"io"

	"odbgc/internal/objstore"
	"odbgc/internal/simerr"
	"odbgc/internal/storage"
)

// FsyncPolicy controls when the WAL is fsynced.
type FsyncPolicy int

const (
	// FsyncAlways syncs the WAL on every commit: a committed batch is
	// durable the moment Commit returns. The safest and slowest policy.
	FsyncAlways FsyncPolicy = iota
	// FsyncGroup syncs once per GroupEvery commits (and at checkpoints and
	// close): a crash can lose the last unsynced window of committed
	// batches but never tears one — recovery still lands on a commit
	// boundary.
	FsyncGroup
	// FsyncNever syncs only at checkpoints and close. For tests and
	// throwaway runs.
	FsyncNever
)

// ParseFsyncPolicy maps the -fsync flag values onto policies.
func ParseFsyncPolicy(s string) (FsyncPolicy, error) {
	switch s {
	case "always":
		return FsyncAlways, nil
	case "group":
		return FsyncGroup, nil
	case "never":
		return FsyncNever, nil
	}
	return 0, fmt.Errorf("disk: unknown fsync policy %q (want always, group, or never)", s)
}

// String names the policy for flags and diagnostics.
func (p FsyncPolicy) String() string {
	switch p {
	case FsyncAlways:
		return "always"
	case FsyncGroup:
		return "group"
	case FsyncNever:
		return "never"
	}
	return fmt.Sprintf("fsync(%d)", int(p))
}

// Options configures Open.
type Options struct {
	// FS is the filesystem to run on. Required; production passes
	// OSFS{Dir: dataDir}.
	FS FS
	// Fsync is the WAL durability policy. Default FsyncAlways.
	Fsync FsyncPolicy
	// GroupEvery is the group-commit window for FsyncGroup: sync after
	// this many commits. Default 8.
	GroupEvery int
	// PoolPages sizes the buffer pool used for checkpoint write-back.
	// Default 64.
	PoolPages int
}

// RecoveryInfo reports what Open had to do to reach a consistent state.
type RecoveryInfo struct {
	CheckpointSeq   uint64 // last batch absorbed by the checkpoint image
	CheckpointPages int    // pages read to load the image
	BatchesReplayed int    // WAL batches applied beyond the checkpoint
	RecordsReplayed int    // records inside those batches
	WALBytes        int64  // WAL bytes scanned
	TornTail        bool   // the WAL ended in a damaged record
	TornAt          int64  // offset of the damage when TornTail
	MetaFallback    bool   // one meta slot was damaged; the other served
	Objects         int    // objects in the recovered state
	Digest          [sha256.Size]byte
}

// Store is the durable storage.Backend. Not safe for concurrent use; the
// owner (engine or simulator) serializes access, matching the repo's
// single-writer design.
type Store struct {
	fs   FS
	heap File
	wal  File
	pool *storage.BufferPool

	fsync      FsyncPolicy
	groupEvery int

	mem *memState

	// Staging: records logged since the last commit. ops, reclaimBuf, and
	// encBuf are reused across commits so the hot append path allocates
	// nothing once warm.
	ops        []walOp
	reclaimBuf []objstore.OID
	encBuf     []byte

	seq         uint64 // last committed batch sequence
	ckptSeq     uint64 // last batch absorbed into the checkpoint image
	walTail     int64  // append offset in the WAL
	walSynced   bool   // no committed bytes await fsync
	unsyncedN   int    // commits since the last WAL sync
	commits     uint64
	checkpoints uint64

	pageCount  uint32
	freePages  []uint32
	usedPages  map[uint32]bool // pages the committed image references
	dirHead    uint32
	generation uint64

	ckptPages map[uint32][]byte // in-flight checkpoint images, by page

	// fatal, once set, permanently fails the store: an error left the WAL,
	// the mirror, and the staged batch out of agreement, and any further
	// append could break the sequence discipline recovery depends on.
	fatal  error
	closed bool
}

// Compile-time check: *Store is a storage.Backend.
var _ storage.Backend = (*Store)(nil)

// Open opens (creating if absent) the database on opts.FS and runs
// recovery: load the newest valid checkpoint, replay the committed WAL
// tail, and truncate any torn tail. It returns the store positioned to
// accept new batches plus a report of what recovery did.
func Open(opts Options) (*Store, *RecoveryInfo, error) {
	if opts.FS == nil {
		return nil, nil, fmt.Errorf("disk: Options.FS is required")
	}
	if opts.GroupEvery <= 0 {
		opts.GroupEvery = 8
	}
	if opts.PoolPages <= 0 {
		opts.PoolPages = 64
	}
	pool, err := storage.NewBufferPool(opts.PoolPages)
	if err != nil {
		return nil, nil, fmt.Errorf("disk: %w", err)
	}
	s := &Store{
		fs:         opts.FS,
		pool:       pool,
		fsync:      opts.Fsync,
		groupEvery: opts.GroupEvery,
		mem:        newMemState(),
		walSynced:  true,
		pageCount:  2, // meta slots always exist
	}
	pool.SetWriteback(s.pageWriteback)

	info, err := s.recover()
	if err != nil {
		// Best effort: release the handles recover may have opened.
		if s.heap != nil {
			_ = s.heap.Close()
		}
		if s.wal != nil {
			_ = s.wal.Close()
		}
		return nil, nil, err
	}
	return s, info, nil
}

// recover loads the checkpoint, replays the WAL, and trims the torn tail.
func (s *Store) recover() (*RecoveryInfo, error) {
	var err error
	if s.heap, err = s.fs.Open(heapFile); err != nil {
		return nil, err
	}
	if s.wal, err = s.fs.Open(walFile); err != nil {
		return nil, err
	}

	m, fallback, pagesRead, used, err := loadCheckpoint(s.heap, s.mem)
	if err != nil {
		return nil, err
	}
	s.usedPages = used
	if m != nil {
		s.ckptSeq = m.seq
		s.seq = m.seq
		s.generation = m.generation
		s.dirHead = m.dirHead
		s.pageCount = max(m.pageCount, 2)
	}
	s.rebuildFreeList(used)

	walSize, err := s.wal.Size()
	if err != nil {
		return nil, fmt.Errorf("disk: wal size: %w", err)
	}
	data := make([]byte, walSize)
	if walSize > 0 {
		if n, rerr := s.wal.ReadAt(data, 0); int64(n) != walSize {
			if rerr == nil || errors.Is(rerr, io.EOF) {
				rerr = fmt.Errorf("short read: %d of %d bytes", n, walSize)
			}
			return nil, simerr.WrapRecoveryFailed("read wal", rerr)
		}
	}
	scan, err := scanWAL(data, s.ckptSeq, s.mem)
	if err != nil {
		return nil, err
	}
	s.seq = scan.lastSeq
	s.walTail = scan.tail
	if scan.tail != walSize {
		// Drop the torn or uncommitted tail so new batches append onto a
		// clean boundary and a re-scan of the file is byte-stable.
		if err := s.wal.Truncate(scan.tail); err != nil {
			return nil, fmt.Errorf("disk: truncate wal tail: %w", err)
		}
		if err := s.wal.Sync(); err != nil {
			return nil, fmt.Errorf("disk: sync truncated wal: %w", err)
		}
	}

	info := &RecoveryInfo{
		CheckpointSeq:   s.ckptSeq,
		CheckpointPages: pagesRead,
		BatchesReplayed: scan.batches,
		RecordsReplayed: scan.records,
		WALBytes:        walSize,
		TornTail:        scan.torn,
		TornAt:          scan.tornAt,
		MetaFallback:    fallback,
		Objects:         len(s.mem.objects),
		Digest:          s.mem.digest(),
	}
	return info, nil
}

// poison marks the store permanently failed and returns err. Commit,
// Checkpoint, and the Log* methods all refuse a poisoned store, so a
// caller that keeps retrying fails loudly instead of quietly corrupting
// the WAL sequence discipline.
func (s *Store) poison(err error) error {
	if s.fatal == nil {
		s.fatal = err
	}
	return err
}

// failed reports the poisoned-store condition as an error, nil when healthy.
func (s *Store) failed() error {
	if s.fatal == nil {
		return nil
	}
	return fmt.Errorf("disk: store poisoned by earlier failure: %w", s.fatal)
}

// stage adds one record to the pending batch.
func (s *Store) stage(op walOp) error {
	if s.closed {
		return fmt.Errorf("disk: store is closed")
	}
	if err := s.failed(); err != nil {
		return err
	}
	s.ops = append(s.ops, op)
	return nil
}

// LogAlloc implements storage.Backend.
func (s *Store) LogAlloc(oid objstore.OID, class objstore.Class, size, nslots int) error {
	if oid.IsNil() {
		return fmt.Errorf("disk: alloc of nil OID")
	}
	return s.stage(walOp{kind: recAlloc, oid: oid, class: class, size: size, nslots: nslots})
}

// LogSet implements storage.Backend.
func (s *Store) LogSet(src objstore.OID, slot int, dst objstore.OID) error {
	return s.stage(walOp{kind: recSet, oid: src, slot: slot, dst: dst})
}

// LogRoot implements storage.Backend.
func (s *Store) LogRoot(oid objstore.OID, on bool) error {
	return s.stage(walOp{kind: recRoot, oid: oid, on: on})
}

// LogReclaim implements storage.Backend. The OIDs are copied into the
// staging buffer; the caller keeps ownership of its slice.
func (s *Store) LogReclaim(oids []objstore.OID) error {
	if len(oids) == 0 {
		return nil
	}
	start := len(s.reclaimBuf)
	s.reclaimBuf = append(s.reclaimBuf, oids...)
	return s.stage(walOp{kind: recReclaim, oids: s.reclaimBuf[start:len(s.reclaimBuf):len(s.reclaimBuf)]})
}

// Commit seals the staged records into one batch: encode, append with a
// single write, fsync per policy, then fold into the committed mirror.
// An empty batch is a no-op (no WAL bytes, no sequence number).
func (s *Store) Commit() error {
	if s.closed {
		return fmt.Errorf("disk: store is closed")
	}
	if err := s.failed(); err != nil {
		return err
	}
	if len(s.ops) == 0 {
		return nil
	}
	seq := s.seq + 1
	buf := s.encBuf[:0]
	for _, op := range s.ops {
		buf = appendRecord(buf, op, 0)
	}
	buf = appendRecord(buf, walOp{kind: recCommit}, seq)
	s.encBuf = buf
	// A failed or torn append is retryable as-is: walTail has not moved, so
	// the retry overwrites the partial bytes, and a crash before then leaves
	// a torn tail recovery already rolls back.
	if _, err := s.wal.WriteAt(buf, s.walTail); err != nil {
		return fmt.Errorf("disk: append wal batch %d: %w", seq, err)
	}
	prevTail, prevSynced, prevUnsynced := s.walTail, s.walSynced, s.unsyncedN
	s.walTail += int64(len(buf))
	s.walSynced = false
	s.unsyncedN++
	if s.fsync == FsyncAlways || (s.fsync == FsyncGroup && s.unsyncedN >= s.groupEvery) {
		if err := s.syncWAL(); err != nil {
			// The batch bytes are fully written but not durable, and the
			// staged ops stay staged for a retry. Rewind the append so the
			// retry cannot lay down a second copy of seq — two batches with
			// one sequence number would make the store unrecoverable. If the
			// rewind itself fails, the duplicate is unavoidable on retry, so
			// the store is done.
			if terr := s.wal.Truncate(prevTail); terr != nil {
				return s.poison(fmt.Errorf("disk: rewind wal after failed sync of batch %d: %w (sync: %w)", seq, terr, err))
			}
			s.walTail, s.walSynced, s.unsyncedN = prevTail, prevSynced, prevUnsynced
			return err
		}
	}
	// The write is down; the batch is committed. Fold it into the mirror.
	// An apply failure here means the caller logged an inconsistent batch
	// (e.g. a set on an object it never allocated); the WAL already holds
	// the batch, the mirror may be half-applied, and recovery would hit the
	// same wall — the store cannot continue.
	for _, op := range s.ops {
		if err := s.mem.apply(op); err != nil {
			return s.poison(fmt.Errorf("disk: batch %d is inconsistent: %w", seq, err))
		}
	}
	s.seq = seq
	s.commits++
	s.ops = s.ops[:0]
	s.reclaimBuf = s.reclaimBuf[:0]
	return nil
}

// syncWAL fsyncs the WAL if committed bytes await it.
func (s *Store) syncWAL() error {
	if s.walSynced {
		return nil
	}
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("disk: sync wal: %w", err)
	}
	s.walSynced = true
	s.unsyncedN = 0
	return nil
}

func (s *Store) syncHeap() error {
	if err := s.heap.Sync(); err != nil {
		return fmt.Errorf("disk: sync heap: %w", err)
	}
	return nil
}

// Checkpoint writes the committed state as a fresh copy-on-write page
// image, flips the meta page to it, and prunes the WAL. The sequence is
// crash-safe at every step: pages land before the meta flip (via the
// write-back hook, which also enforces WAL-before-page ordering), the flip
// is a single checksummed page write, and a stale WAL prefix left by a
// crash before the truncate is skipped on replay by its batch sequence.
func (s *Store) Checkpoint() error {
	if s.closed {
		return fmt.Errorf("disk: store is closed")
	}
	if err := s.failed(); err != nil {
		return err
	}
	if len(s.ops) != 0 {
		return fmt.Errorf("disk: checkpoint with %d uncommitted staged records", len(s.ops))
	}
	// Until the meta flip lands, the previous image stays the committed one,
	// so a failed attempt must be rolled back: the aborted image's frames
	// leave the pool (a later flush must never write back a page of an
	// abandoned image) and the generation counter rewinds so the retry
	// targets the same meta slot — never the live one. Before the meta write
	// nothing can reference the image's pages and they return to the free
	// list; once the meta write has been attempted, a valid meta naming them
	// may be on disk with unknown durability, so they are counted as used —
	// leaked until a successful flip supersedes the slot, or until the next
	// open recomputes the free list from the committed image.
	prevPages, prevGen := s.pageCount, s.generation
	abort := func(img *checkpointImage, metaMayExist bool) {
		if img != nil {
			for no := range img.used {
				s.pool.Drop(poolPage(no))
				if metaMayExist {
					s.usedPages[no] = true
				}
			}
		}
		s.generation = prevGen
		if !metaMayExist {
			s.pageCount = prevPages
		}
		s.rebuildFreeList(s.usedPages)
	}
	img, err := s.buildCheckpoint()
	if err != nil {
		abort(nil, false)
		return err
	}
	if err := s.writeCheckpoint(img); err != nil {
		abort(img, false)
		return err
	}
	s.generation++
	m := meta{
		generation: s.generation,
		seq:        s.seq,
		nextOID:    uint64(s.mem.nextOID),
		pageCount:  s.pageCount,
		dirHead:    img.dirHead,
		objects:    uint64(len(s.mem.objects)),
	}
	slot := uint32(s.generation % 2)
	if _, err := s.heap.WriteAt(encodeMeta(m), int64(slot)*PageSize); err != nil {
		abort(img, true)
		return fmt.Errorf("disk: write meta slot %d: %w", slot, err)
	}
	if err := s.syncHeap(); err != nil {
		abort(img, true)
		return err
	}
	// The flip is durable: the new image is the committed one. Everything
	// the WAL held is absorbed; prune it.
	s.ckptSeq = s.seq
	s.usedPages = img.used
	s.rebuildFreeList(img.used)
	s.dirHead = img.dirHead
	s.checkpoints++
	if err := s.wal.Truncate(0); err != nil {
		return fmt.Errorf("disk: truncate wal: %w", err)
	}
	s.walTail = 0
	s.walSynced = true
	s.unsyncedN = 0
	if err := s.wal.Sync(); err != nil {
		return fmt.Errorf("disk: sync pruned wal: %w", err)
	}
	return nil
}

// Close syncs outstanding committed batches and releases the files. The
// staged (uncommitted) records, if any, are discarded — exactly what a
// crash would do to them. A poisoned store only releases the files: its
// WAL bookkeeping no longer matches the bytes on disk, so syncing could
// make an inconsistent tail durable.
func (s *Store) Close() error {
	if s.closed {
		return nil
	}
	s.closed = true
	err := s.failed()
	if err == nil {
		err = s.syncWAL()
	}
	if cerr := s.wal.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("disk: close wal: %w", cerr)
	}
	if cerr := s.heap.Close(); cerr != nil && err == nil {
		err = fmt.Errorf("disk: close heap: %w", cerr)
	}
	return err
}

// Stats reports backend counters for metrics surfaces.
type Stats struct {
	Commits     uint64
	Checkpoints uint64
	Seq         uint64
	WALTail     int64
	PageCount   uint32
	FreePages   int
	Objects     int
}

// Stats returns a snapshot of the backend counters.
func (s *Store) Stats() Stats {
	return Stats{
		Commits:     s.commits,
		Checkpoints: s.checkpoints,
		Seq:         s.seq,
		WALTail:     s.walTail,
		PageCount:   s.pageCount,
		FreePages:   len(s.freePages),
		Objects:     len(s.mem.objects),
	}
}
