package crashtest

import (
	"crypto/sha256"
	"fmt"
	"slices"

	"odbgc/internal/objstore"
	"odbgc/internal/storage/disk"
)

// rng is a splitmix64 generator: tiny, seeded, deterministic — the same
// construction the fault injector uses.
type rng struct{ s uint64 }

func (r *rng) next() uint64 {
	r.s += 0x9e3779b97f4a7c15
	z := r.s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *rng) intn(n int) int { return int(r.next() % uint64(n)) }

// CommitMark records one committed batch during the recording run: its
// sequence, the digest of the committed state after it, and the journal
// position just past the batch's WAL write — the point at which the batch
// is on disk (though not necessarily synced).
type CommitMark struct {
	Seq          uint64
	Digest       [sha256.Size]byte
	OpAfterWrite int
}

// Run is a recorded workload: the journal it produced and the committed
// states it passed through. Digests[0] is the empty state; Digests[i] is
// the state after batch i.
type Run struct {
	FS      *JournalFS
	Commits []CommitMark
	Digests [][sha256.Size]byte
	Final   [sha256.Size]byte
}

// Record drives a seeded workload — allocations, pointer stores, root
// flips, reclaims, commits, periodic checkpoints — against a fresh disk
// backend on a journaling filesystem and records every committed state.
// The workload exercises every WAL record type and several checkpoint
// cycles so a crash-point sweep covers each on-disk transition.
func Record(seed uint64, commits int, fsync disk.FsyncPolicy) (*Run, error) {
	fs := NewJournalFS()
	s, _, err := disk.Open(disk.Options{FS: fs, Fsync: fsync, GroupEvery: 4, PoolPages: 8})
	if err != nil {
		return nil, fmt.Errorf("crashtest: open: %w", err)
	}
	r := &rng{s: seed}
	run := &Run{FS: fs, Digests: [][sha256.Size]byte{s.Digest()}}

	type liveObj struct {
		oid    objstore.OID
		nslots int
	}
	var live []liveObj
	next := objstore.OID(1)
	for c := 0; c < commits; c++ {
		nops := 1 + r.intn(3)
		for i := 0; i < nops; i++ {
			switch k := r.intn(10); {
			case k < 4 || len(live) == 0: // alloc
				nslots := 1 + r.intn(3)
				if r.intn(5) == 0 {
					nslots = 0
				}
				if err := s.LogAlloc(next, objstore.Class(1+r.intn(6)), 16+r.intn(240), nslots); err != nil {
					return nil, err
				}
				live = append(live, liveObj{oid: next, nslots: nslots})
				next++
			case k < 7: // pointer store into a slotted object
				src := live[r.intn(len(live))]
				if src.nslots == 0 {
					continue
				}
				dst := objstore.NilOID
				if r.intn(4) > 0 {
					dst = live[r.intn(len(live))].oid
				}
				if err := s.LogSet(src.oid, r.intn(src.nslots), dst); err != nil {
					return nil, err
				}
			case k < 9: // root flip
				if err := s.LogRoot(live[r.intn(len(live))].oid, r.intn(2) == 0); err != nil {
					return nil, err
				}
			default: // reclaim one object
				vi := r.intn(len(live))
				if err := s.LogReclaim([]objstore.OID{live[vi].oid}); err != nil {
					return nil, err
				}
				live = slices.Delete(live, vi, vi+1)
			}
		}
		opsBefore := len(fs.Ops())
		prevSeq := s.Stats().Seq
		if err := s.Commit(); err != nil {
			return nil, fmt.Errorf("crashtest: commit %d: %w", c, err)
		}
		if st := s.Stats(); st.Seq != prevSeq {
			// The batch's WAL write is the first op Commit journals.
			run.Commits = append(run.Commits, CommitMark{
				Seq:          st.Seq,
				Digest:       s.Digest(),
				OpAfterWrite: opsBefore + 1,
			})
			run.Digests = append(run.Digests, s.Digest())
		}
		if (c+1)%7 == 0 {
			if err := s.Checkpoint(); err != nil {
				return nil, fmt.Errorf("crashtest: checkpoint after commit %d: %w", c, err)
			}
		}
	}
	run.Final = s.Digest()
	if err := s.Close(); err != nil {
		return nil, fmt.Errorf("crashtest: close: %w", err)
	}
	return run, nil
}
