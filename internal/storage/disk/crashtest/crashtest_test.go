package crashtest

import (
	"bytes"
	"encoding/binary"
	"slices"
	"testing"

	"odbgc/internal/storage/disk"
)

// tornCuts picks the byte counts at which to tear a write: mid-header,
// mid-record, and every WAL record boundary inside the write (a batch
// write carries several records, and a kill between any two of them is a
// distinct on-disk state).
func tornCuts(op Op) []int {
	n := len(op.Data)
	if op.Kind != OpWrite || n == 0 {
		return nil
	}
	cuts := []int{1, n / 2, n - 1}
	if op.File == "wal.log" {
		off := 0
		for off+8 <= n {
			rec := 8 + int(binary.LittleEndian.Uint32(op.Data[off:]))
			if off+rec > n {
				break
			}
			off += rec
			cuts = append(cuts, off)
		}
	}
	slices.Sort(cuts)
	cuts = slices.Compact(cuts)
	// A cut of n bytes is the full write; the k+1 crash point covers it.
	for len(cuts) > 0 && cuts[len(cuts)-1] >= n {
		cuts = cuts[:len(cuts)-1]
	}
	return slices.DeleteFunc(cuts, func(c int) bool { return c <= 0 })
}

// durabilityFloor returns the highest batch sequence guaranteed durable at
// a crash just before op k. With keepUnsynced (SIGKILL, kernel flushed),
// a batch is durable once its WAL write is journaled; with a power cut,
// only once a WAL fsync follows the write.
func durabilityFloor(run *Run, k int, keepUnsynced bool) uint64 {
	horizon := k
	if !keepUnsynced {
		horizon = 0
		for i, op := range run.FS.Ops() {
			if i >= k {
				break
			}
			if op.File == "wal.log" && op.Kind == OpSync {
				horizon = i + 1
			}
		}
	}
	floor := uint64(0)
	for _, c := range run.Commits {
		if c.OpAfterWrite <= horizon {
			floor = c.Seq
		}
	}
	return floor
}

// recoverImage opens the backend over a materialized crash image and
// returns the recovered store's sequence, digest, and the resulting file
// bytes (recovery may trim a torn WAL tail).
func recoverImage(t *testing.T, img map[string][]byte) (uint64, [32]byte, map[string][]byte) {
	t.Helper()
	fs := FromImage(img)
	s, info, err := disk.Open(disk.Options{FS: fs, Fsync: disk.FsyncAlways})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	seq := s.Stats().Seq
	if err := s.Close(); err != nil {
		t.Fatalf("close recovered store: %v", err)
	}
	return seq, info.Digest, fs.Image()
}

func sweep(t *testing.T, seed uint64, fsync disk.FsyncPolicy, keepUnsynced bool) {
	t.Helper()
	run, err := Record(seed, 40, fsync)
	if err != nil {
		t.Fatal(err)
	}
	ops := run.FS.Ops()
	if len(run.Commits) < 30 {
		t.Fatalf("workload too small: %d commits", len(run.Commits))
	}
	maxSeq := run.Commits[len(run.Commits)-1].Seq
	points, torn := 0, 0
	for k := 0; k <= len(ops); k++ {
		cuts := []int{-1}
		if k < len(ops) {
			cuts = append(cuts, tornCuts(ops[k])...)
		}
		for _, cut := range cuts {
			img := run.FS.Materialize(k, cut, keepUnsynced)
			floor := durabilityFloor(run, k, keepUnsynced)
			seq, digest, after := recoverImage(t, img)
			points++
			if cut >= 0 {
				torn++
			}
			// Zero lost committed objects: everything durable survives.
			if seq < floor {
				t.Fatalf("crash at op %d cut %d: recovered seq %d below durable floor %d", k, cut, seq, floor)
			}
			if seq > maxSeq {
				t.Fatalf("crash at op %d cut %d: recovered seq %d beyond %d ever committed", k, cut, seq, maxSeq)
			}
			// Byte-identical committed state: the recovered digest is the
			// exact state after batch seq — no partial batch, and (because
			// digests capture the object set exactly) no resurrected
			// reclaim.
			if digest != run.Digests[seq] {
				t.Fatalf("crash at op %d cut %d: recovered digest of seq %d does not match the committed state", k, cut, seq)
			}
			// Deterministic: recovering the same image again reproduces
			// the same sequence, digest, and on-disk bytes.
			seq2, digest2, after2 := recoverImage(t, img)
			if seq2 != seq || digest2 != digest {
				t.Fatalf("crash at op %d cut %d: recovery not deterministic (%d vs %d)", k, cut, seq, seq2)
			}
			for name, data := range after {
				if !bytes.Equal(after2[name], data) {
					t.Fatalf("crash at op %d cut %d: recovery left different bytes in %s", k, cut, name)
				}
			}
		}
	}
	t.Logf("swept %d crash points (%d torn variants) over %d journal ops, %d commits", points, torn, len(ops), len(run.Commits))
}

// TestCrashPointSweep is the headline durability proof: for every recorded
// filesystem operation — and every torn variant of every write — kill the
// store there, recover, and check the three invariants: no durable batch
// lost, the recovered state byte-identical to a committed prefix, and
// recovery deterministic.
func TestCrashPointSweep(t *testing.T) {
	cases := []struct {
		name         string
		fsync        disk.FsyncPolicy
		keepUnsynced bool
	}{
		{"always/powercut", disk.FsyncAlways, false},
		{"always/sigkill", disk.FsyncAlways, true},
		{"group/powercut", disk.FsyncGroup, false},
		{"group/sigkill", disk.FsyncGroup, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sweep(t, 0xC0FFEE+uint64(len(tc.name)), tc.fsync, tc.keepUnsynced)
		})
	}
}

// TestRecordIsDeterministic re-records the same seed and demands the same
// journal and digests — the property that makes sweep failures exactly
// reproducible.
func TestRecordIsDeterministic(t *testing.T) {
	a, err := Record(42, 20, disk.FsyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Record(42, 20, disk.FsyncGroup)
	if err != nil {
		t.Fatal(err)
	}
	if a.Final != b.Final || len(a.FS.Ops()) != len(b.FS.Ops()) {
		t.Fatalf("same seed diverged: %d vs %d ops", len(a.FS.Ops()), len(b.FS.Ops()))
	}
	for i, op := range a.FS.Ops() {
		bop := b.FS.Ops()[i]
		if op.File != bop.File || op.Kind != bop.Kind || op.Off != bop.Off || !bytes.Equal(op.Data, bop.Data) {
			t.Fatalf("op %d diverged", i)
		}
	}
	imgA, imgB := a.FS.Image(), b.FS.Image()
	for name, data := range imgA {
		if !bytes.Equal(imgB[name], data) {
			t.Fatalf("final %s bytes diverged", name)
		}
	}
}
