// Package crashtest is the deterministic crash-point harness for the disk
// backend: it records every filesystem operation the backend performs into
// a journal, then materializes the exact bytes a crash at any operation
// boundary would leave behind — including torn (partially applied) writes
// and the two SIGKILL regimes (unsynced data kept by the kernel, or
// dropped). Recovery is then run against each materialized image and
// checked against the digests recorded during the original run.
//
// Everything is seeded and allocation-order deterministic: the same seed
// produces the same journal, the same crash points, and the same recovered
// bytes, so a failure reproduces exactly.
package crashtest

import (
	"fmt"
	"io"
	"slices"

	"odbgc/internal/storage/disk"
)

// OpKind is the type of one journaled filesystem operation.
type OpKind int

// The journaled operation kinds.
const (
	OpWrite OpKind = iota
	OpSync
	OpTruncate
)

// Op is one recorded filesystem operation.
type Op struct {
	File string
	Kind OpKind
	Off  int64  // OpWrite
	Data []byte // OpWrite; a private copy
	Size int64  // OpTruncate
}

// JournalFS is an in-memory disk.FS that records every mutation. It backs
// both the recording run (journal grows) and the recovery runs (seeded
// from a materialized image; its own journal is then independent).
type JournalFS struct {
	files map[string][]byte
	ops   []Op
}

// NewJournalFS returns an empty filesystem.
func NewJournalFS() *JournalFS {
	return &JournalFS{files: map[string][]byte{}}
}

// FromImage returns a filesystem seeded with the given file contents, as
// left by Materialize. The image is copied.
func FromImage(img map[string][]byte) *JournalFS {
	fs := NewJournalFS()
	for name, data := range img {
		fs.files[name] = slices.Clone(data)
	}
	return fs
}

// Ops returns the journal. The slice is shared; callers must not mutate.
func (fs *JournalFS) Ops() []Op { return fs.ops }

// Image snapshots the current file contents.
func (fs *JournalFS) Image() map[string][]byte {
	out := make(map[string][]byte, len(fs.files))
	for name, data := range fs.files {
		out[name] = slices.Clone(data)
	}
	return out
}

// Open implements disk.FS.
func (fs *JournalFS) Open(name string) (disk.File, error) {
	if _, ok := fs.files[name]; !ok {
		fs.files[name] = nil
	}
	return &jfile{fs: fs, name: name}, nil
}

// Remove implements disk.FS.
func (fs *JournalFS) Remove(name string) error {
	if _, ok := fs.files[name]; !ok {
		return fmt.Errorf("crashtest: remove of absent %s", name)
	}
	delete(fs.files, name)
	return nil
}

type jfile struct {
	fs   *JournalFS
	name string
}

func (f *jfile) data() []byte { return f.fs.files[f.name] }

func (f *jfile) ReadAt(p []byte, off int64) (int, error) {
	data := f.data()
	if off >= int64(len(data)) {
		return 0, io.EOF
	}
	n := copy(p, data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (f *jfile) WriteAt(p []byte, off int64) (int, error) {
	f.fs.files[f.name] = applyWrite(f.data(), off, p)
	f.fs.ops = append(f.fs.ops, Op{File: f.name, Kind: OpWrite, Off: off, Data: slices.Clone(p)})
	return len(p), nil
}

func (f *jfile) Truncate(size int64) error {
	f.fs.files[f.name] = applyTruncate(f.data(), size)
	f.fs.ops = append(f.fs.ops, Op{File: f.name, Kind: OpTruncate, Size: size})
	return nil
}

func (f *jfile) Sync() error {
	f.fs.ops = append(f.fs.ops, Op{File: f.name, Kind: OpSync})
	return nil
}

func (f *jfile) Size() (int64, error) { return int64(len(f.data())), nil }

func (f *jfile) Close() error { return nil }

func applyWrite(data []byte, off int64, p []byte) []byte {
	if need := off + int64(len(p)); need > int64(len(data)) {
		grown := make([]byte, need)
		copy(grown, data)
		data = grown
	} else {
		data = slices.Clone(data)
	}
	copy(data[off:], p)
	return data
}

func applyTruncate(data []byte, size int64) []byte {
	if size <= int64(len(data)) {
		return slices.Clone(data[:size])
	}
	grown := make([]byte, size)
	copy(grown, data)
	return grown
}

// Materialize reconstructs the file contents a crash just before op k
// would leave behind. ops[0:k] are applied; if torn ≥ 0 and ops[k] is a
// write, its first torn bytes land too (a torn write). keepUnsynced
// selects the SIGKILL regime: true means the kernel flushed everything
// written so far (process death, machine alive); false means only data
// covered by an fsync survives (power cut) — each file reverts to its
// state at its last sync, except that a sync-covered tail is never
// resurrected past a later truncate's sync.
func (fs *JournalFS) Materialize(k int, torn int, keepUnsynced bool) map[string][]byte {
	cur := map[string][]byte{}
	synced := map[string][]byte{}
	for i := 0; i < k && i < len(fs.ops); i++ {
		op := fs.ops[i]
		switch op.Kind {
		case OpWrite:
			cur[op.File] = applyWrite(cur[op.File], op.Off, op.Data)
		case OpTruncate:
			cur[op.File] = applyTruncate(cur[op.File], op.Size)
		case OpSync:
			synced[op.File] = slices.Clone(cur[op.File])
		}
	}
	if torn >= 0 && k < len(fs.ops) && fs.ops[k].Kind == OpWrite {
		op := fs.ops[k]
		if torn > len(op.Data) {
			torn = len(op.Data)
		}
		cur[op.File] = applyWrite(cur[op.File], op.Off, op.Data[:torn])
	}
	if keepUnsynced {
		return cur
	}
	return synced
}
