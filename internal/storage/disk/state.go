package disk

import (
	"crypto/sha256"
	"fmt"
	"slices"

	"odbgc/internal/objstore"
)

// memObj is one object in the committed mirror. The backend keeps the full
// committed logical state in memory (the database is in-memory at runtime
// anyway; the mirror is what checkpoints serialize and recovery rebuilds).
type memObj struct {
	class objstore.Class
	size  int
	slots []objstore.OID
	root  bool
}

// memState is the committed logical state: exactly what a crash-and-recover
// must reproduce. It advances only at Commit, so an uncommitted batch never
// leaks into a checkpoint.
type memState struct {
	objects map[objstore.OID]*memObj
	nextOID objstore.OID
}

func newMemState() *memState {
	return &memState{objects: make(map[objstore.OID]*memObj), nextOID: 1}
}

// sortedOIDs returns the object identifiers in ascending order, the
// canonical iteration order for checkpoints and digests.
func (m *memState) sortedOIDs() []objstore.OID {
	oids := make([]objstore.OID, 0, len(m.objects))
	for oid := range m.objects {
		oids = append(oids, oid)
	}
	slices.Sort(oids)
	return oids
}

// apply folds one committed WAL operation into the mirror. Recovery replays
// through the same entry point as live commits, so the two cannot drift.
func (m *memState) apply(op walOp) error {
	switch op.kind {
	case recAlloc:
		if _, dup := m.objects[op.oid]; dup {
			return fmt.Errorf("alloc of existing %v", op.oid)
		}
		//lint:allow hotalloc the allocation is the recovered object; it lives in the table
		m.objects[op.oid] = &memObj{
			class: op.class,
			size:  op.size,
			//lint:allow hotalloc slot array lives as long as the object
			slots: make([]objstore.OID, op.nslots),
		}
		if op.oid >= m.nextOID {
			m.nextOID = op.oid + 1
		}
	case recSet:
		o := m.objects[op.oid]
		if o == nil {
			return fmt.Errorf("set on absent %v", op.oid)
		}
		if op.slot < 0 || op.slot >= len(o.slots) {
			return fmt.Errorf("slot %d out of range on %v", op.slot, op.oid)
		}
		o.slots[op.slot] = op.dst
	case recRoot:
		o := m.objects[op.oid]
		if o == nil {
			return fmt.Errorf("root change on absent %v", op.oid)
		}
		o.root = op.on
	case recReclaim:
		for _, oid := range op.oids {
			if _, ok := m.objects[oid]; !ok {
				return fmt.Errorf("reclaim of absent %v", oid)
			}
			delete(m.objects, oid)
		}
	default:
		return fmt.Errorf("unknown op kind %d", op.kind)
	}
	return nil
}

// digest hashes the committed state canonically: objects in ascending OID
// order with class, size, root flag, and slots, then the OID horizon.
// Recovery is correct iff this value is byte-identical before the crash and
// after the rebuild.
func (m *memState) digest() [sha256.Size]byte {
	h := sha256.New()
	var buf [8]byte
	put := func(v uint64) {
		le.PutUint64(buf[:], v)
		_, _ = h.Write(buf[:]) // hash.Hash.Write never fails
	}
	for _, oid := range m.sortedOIDs() {
		o := m.objects[oid]
		put(uint64(oid))
		put(uint64(o.class))
		put(uint64(o.size))
		if o.root {
			put(1)
		} else {
			put(0)
		}
		put(uint64(len(o.slots)))
		for _, s := range o.slots {
			put(uint64(s))
		}
	}
	put(uint64(m.nextOID))
	var sum [sha256.Size]byte
	h.Sum(sum[:0])
	return sum
}

// ObjectState is one recovered object, handed to ForEach callbacks so the
// caller can rebuild a live heap.
type ObjectState struct {
	OID   objstore.OID
	Class objstore.Class
	Size  int
	Slots []objstore.OID // aliased, not copied; callers must not retain
	Root  bool
}

// ForEach visits the committed objects in ascending OID order.
func (s *Store) ForEach(fn func(ObjectState)) {
	for _, oid := range s.mem.sortedOIDs() {
		o := s.mem.objects[oid]
		fn(ObjectState{OID: oid, Class: o.class, Size: o.size, Slots: o.slots, Root: o.root})
	}
}

// NextOID returns the committed OID horizon: the next OID a rebuilt store
// must hand out. It can exceed every live OID when the newest objects were
// reclaimed.
func (s *Store) NextOID() objstore.OID { return s.mem.nextOID }

// NumObjects returns the number of committed objects.
func (s *Store) NumObjects() int { return len(s.mem.objects) }

// Digest returns the canonical hash of the committed state. Uncommitted
// staged records do not affect it.
func (s *Store) Digest() [sha256.Size]byte { return s.mem.digest() }
