package storage

import (
	"errors"
	"reflect"
	"testing"

	"odbgc/internal/objstore"
)

// opErr is a test injector failing the nth call with a fixed error.
type opErr struct {
	n   int
	err error
}

func (o *opErr) BeforeOp(write bool) error {
	o.n--
	if o.n == 0 {
		return o.err
	}
	return nil
}

func TestFaultInjectorAbortsBeforeMutation(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	if _, err := m.Allocate(1, 50); err != nil {
		t.Fatal(err)
	}
	before := m.Snapshot()
	boom := errors.New("boom")
	m.SetFaultInjector(&opErr{n: 1, err: boom})

	if _, err := m.Allocate(2, 50); !errors.Is(err, boom) {
		t.Fatalf("allocate under fault: %v, want boom", err)
	}
	if err := m.Touch(1, true); !errors.Is(err, boom) {
		// First call consumed the fault; re-arm.
		m.SetFaultInjector(&opErr{n: 1, err: boom})
		if err := m.Touch(1, true); !errors.Is(err, boom) {
			t.Fatalf("touch under fault: %v, want boom", err)
		}
	}
	m.SetFaultInjector(&opErr{n: 1, err: boom})
	if err := m.ReadPartition(0); !errors.Is(err, boom) {
		t.Fatalf("scan under fault: %v, want boom", err)
	}
	m.SetFaultInjector(&opErr{n: 1, err: boom})
	if _, err := m.FlushGCDirty(); !errors.Is(err, boom) {
		t.Fatalf("flush under fault: %v, want boom", err)
	}

	// A failed op must not have mutated anything: the snapshot is unchanged,
	// and retrying after the fault clears succeeds.
	m.SetFaultInjector(nil)
	if after := m.Snapshot(); !reflect.DeepEqual(before, after) {
		t.Fatalf("state mutated by faulted ops:\nbefore %+v\nafter  %+v", before, after)
	}
	if _, err := m.Allocate(2, 50); err != nil {
		t.Fatalf("retry after fault cleared: %v", err)
	}
}

func TestManagerSnapshotRoundTrip(t *testing.T) {
	cfg := tinyConfig()
	cfg.BufferPages = 3
	m := newTestManager(t, cfg)
	for i := 1; i <= 9; i++ {
		if _, err := m.Allocate(objstore.OID(i), 30+5*i); err != nil {
			t.Fatal(err)
		}
	}
	m.SetIOClass(IOGC)
	if err := m.Touch(2, true); err != nil {
		t.Fatal(err)
	}
	m.SetIOClass(IOApp)
	if err := m.Touch(5, false); err != nil {
		t.Fatal(err)
	}

	st := m.Snapshot()
	r, err := RestoreManager(st)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(r.Snapshot(), st) {
		t.Fatalf("snapshot round trip differs:\norig     %+v\nrestored %+v", st, r.Snapshot())
	}

	// The restored manager behaves identically: same placement decisions,
	// same I/O charges for the same operations.
	for _, mm := range []*Manager{m, r} {
		if _, err := mm.Allocate(100, 77); err != nil {
			t.Fatal(err)
		}
		if err := mm.Touch(1, true); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(m.Snapshot(), r.Snapshot()) {
		t.Fatal("original and restored managers diverged after identical ops")
	}
}

func TestRestoreManagerRejectsCorruptState(t *testing.T) {
	m := newTestManager(t, tinyConfig())
	if _, err := m.Allocate(1, 50); err != nil {
		t.Fatal(err)
	}
	good := m.Snapshot()

	bad := *good
	bad.Placements = append([]PlacementEntry(nil), good.Placements...)
	bad.Placements[0].Placement.Part = 99
	if _, err := RestoreManager(&bad); err == nil {
		t.Error("placement into unknown partition accepted")
	}

	bad = *good
	bad.Placements = append(append([]PlacementEntry(nil), good.Placements...), good.Placements[0])
	if _, err := RestoreManager(&bad); err == nil {
		t.Error("duplicate placement accepted")
	}

	bad = *good
	bad.Partitions = append([]PartitionState(nil), good.Partitions...)
	bad.Partitions[0].Used += 1000
	if _, err := RestoreManager(&bad); err == nil {
		t.Error("used-byte mismatch accepted")
	}

	if _, err := RestoreManager(nil); err == nil {
		t.Error("nil state accepted")
	}
}
