package storage

import "odbgc/internal/objstore"

// Backend is the durability contract the heap logs through: a write-ahead
// record stream of the logical mutations (allocation, pointer stores, root
// changes, and collector reclaims) grouped into atomic batches by Commit.
// The in-memory simulation runs with a nil backend; the disk backend
// (internal/storage/disk) implements Backend with a checksummed WAL and a
// paged checkpoint store, so that a crash at any instant loses no committed
// batch and never resurrects a committed reclaim.
//
// Log* calls stage records into the current batch; Commit makes the batch
// atomic and (depending on the backend's fsync policy) durable. Callers
// decide batch boundaries: the live server commits per request, the
// simulator per trace event. Implementations must tolerate empty commits.
type Backend interface {
	// LogAlloc records the creation of an object with all slots nil.
	LogAlloc(oid objstore.OID, class objstore.Class, size, nslots int) error
	// LogSet records a pointer store: slot of src now references dst
	// (possibly NilOID).
	LogSet(src objstore.OID, slot int, dst objstore.OID) error
	// LogRoot records a persistent-root change for oid.
	LogRoot(oid objstore.OID, on bool) error
	// LogReclaim records the collector reclaiming oids: after the batch
	// commits, recovery must never resurrect them.
	LogReclaim(oids []objstore.OID) error
	// Commit seals the staged records into one atomic batch. After Commit
	// returns, a crash-and-recover either reflects the whole batch or none
	// of it (and with an always-fsync policy, always reflects it).
	Commit() error
	// Checkpoint persists the full committed state to the page store and
	// prunes the WAL, bounding recovery replay time.
	Checkpoint() error
	// Close flushes and releases the backend. Committed state must survive.
	Close() error
}
