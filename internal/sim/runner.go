package sim

import (
	"encoding/gob"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"odbgc/internal/core"
	"odbgc/internal/fault"
	"odbgc/internal/gc"
	"odbgc/internal/metrics"
	"odbgc/internal/obs"
	"odbgc/internal/oo7"
	"odbgc/internal/storage"
	"odbgc/internal/trace"
)

// loadRunResult reads a cached per-run result; any error means "recompute".
func loadRunResult(path string) (*Result, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	var res Result
	if err := gob.NewDecoder(f).Decode(&res); err != nil {
		return nil, err
	}
	return &res, nil
}

// saveRunResult writes a per-run result atomically (temp file + rename) so
// an interrupted batch never leaves a torn cache entry behind.
func saveRunResult(path string, res *Result) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".run-*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if err := gob.NewEncoder(tmp).Encode(res); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// RunnerConfig describes a multi-seed experiment: the same policy
// configuration replayed over several independently generated traces, as in
// §4.1 ("each data point shows the mean of 10 runs"). Runs execute in
// parallel (they are independent by construction); results are ordered by
// trace index regardless.
type RunnerConfig struct {
	// Traces are the per-seed input traces (use GenerateTraces).
	Traces []*trace.Trace
	// MakePolicy builds a fresh policy for run i. Required: policies carry
	// controller state and must not be shared across runs.
	MakePolicy func(run int) (core.RatePolicy, error)
	// MakeSelection builds a fresh selection policy per run; nil means
	// UPDATEDPOINTER for every run.
	MakeSelection func(run int) (gc.SelectionPolicy, error)
	// Storage geometry; zero value means storage.DefaultConfig().
	Storage storage.Config
	// PreambleCollections as in Config.
	PreambleCollections int
	// FaultProfile, when it carries storage-fault rates, runs every
	// simulation under fault injection; run i is seeded with FaultSeed+i so
	// each run sees an independent but reproducible fault schedule.
	FaultProfile fault.Profile
	FaultSeed    int64
	// CheckpointDir, when set, makes the batch crash-safe at run
	// granularity: each completed run's Result is written to
	// CheckpointDir/run-NNN.gob (atomically), and a rerun of the same batch
	// loads those instead of recomputing. Delete the directory to force a
	// full rerun.
	CheckpointDir string
	// EventsDir, when set, writes each run's structured event log to
	// EventsDir/run-NNN.jsonl (see internal/obs). Runs satisfied from the
	// checkpoint cache are not re-simulated and write no events.
	EventsDir string
}

// MultiResult aggregates per-run summaries.
type MultiResult struct {
	Runs []*Result
	// GCIO aggregates the per-run collector I/O fraction.
	GCIO metrics.Aggregate
	// Garbage aggregates the per-run sampled mean garbage fraction.
	Garbage metrics.Aggregate
	// Collections aggregates per-run collection counts.
	Collections metrics.Aggregate
	// TotalIO aggregates per-run total I/O operations (whole run).
	TotalIO metrics.Aggregate
	// Reclaimed aggregates per-run total reclaimed bytes (whole run).
	Reclaimed metrics.Aggregate
}

// RunMany executes one simulation per trace (in parallel) and aggregates
// the summaries.
func RunMany(cfg RunnerConfig) (*MultiResult, error) {
	if len(cfg.Traces) == 0 {
		return nil, fmt.Errorf("sim: RunMany requires at least one trace")
	}
	if cfg.MakePolicy == nil {
		return nil, fmt.Errorf("sim: RunMany requires MakePolicy")
	}

	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("sim: creating checkpoint dir: %w", err)
		}
	}
	if cfg.EventsDir != "" {
		if err := os.MkdirAll(cfg.EventsDir, 0o755); err != nil {
			return nil, fmt.Errorf("sim: creating events dir: %w", err)
		}
	}

	results := make([]*Result, len(cfg.Traces))
	errs := make([]error, len(cfg.Traces))
	var wg sync.WaitGroup
	for i, tr := range cfg.Traces {
		wg.Add(1)
		go func(i int, tr *trace.Trace) {
			defer wg.Done()
			runPath := ""
			if cfg.CheckpointDir != "" {
				runPath = filepath.Join(cfg.CheckpointDir, fmt.Sprintf("run-%03d.gob", i))
				if res, err := loadRunResult(runPath); err == nil {
					results[i] = res
					return
				}
			}
			policy, err := cfg.MakePolicy(i)
			if err != nil {
				errs[i] = fmt.Errorf("sim: building policy for run %d: %w", i, err)
				return
			}
			var sel gc.SelectionPolicy
			if cfg.MakeSelection != nil {
				sel, err = cfg.MakeSelection(i)
				if err != nil {
					errs[i] = fmt.Errorf("sim: building selection for run %d: %w", i, err)
					return
				}
			}
			var events *obs.JSONLWriter
			simCfg := Config{
				Storage:             cfg.Storage,
				Policy:              policy,
				Selection:           sel,
				PreambleCollections: cfg.PreambleCollections,
				FaultProfile:        cfg.FaultProfile,
				FaultSeed:           cfg.FaultSeed + int64(i),
			}
			if cfg.EventsDir != "" {
				f, err := os.Create(filepath.Join(cfg.EventsDir, fmt.Sprintf("run-%03d.jsonl", i)))
				if err != nil {
					errs[i] = fmt.Errorf("sim: creating event log for run %d: %w", i, err)
					return
				}
				events = obs.NewJSONLWriter(f)
				simCfg.Observer = events
			}
			s, err := New(simCfg)
			if err != nil {
				errs[i] = err
				return
			}
			res, err := s.Run(tr)
			if events != nil {
				if cerr := events.Close(); cerr != nil && err == nil {
					err = fmt.Errorf("sim: writing event log: %w", cerr)
				}
			}
			if err != nil {
				errs[i] = fmt.Errorf("sim: run %d: %w", i, err)
				return
			}
			if runPath != "" {
				if err := saveRunResult(runPath, res); err != nil {
					errs[i] = fmt.Errorf("sim: checkpointing run %d: %w", i, err)
					return
				}
			}
			results[i] = res
		}(i, tr)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	out := &MultiResult{}
	var gcio, garb, colls, totio, recl []float64
	for _, res := range results {
		out.Runs = append(out.Runs, res)
		if res.MeasurementStarted {
			gcio = append(gcio, res.GCIOFrac)
			garb = append(garb, res.GarbageFrac)
		}
		colls = append(colls, float64(len(res.Collections)))
		totio = append(totio, float64(res.Final.TotalIO()))
		recl = append(recl, float64(res.TotalReclaimed))
	}
	out.GCIO = metrics.Aggregated(gcio)
	out.Garbage = metrics.Aggregated(garb)
	out.Collections = metrics.Aggregated(colls)
	out.TotalIO = metrics.Aggregated(totio)
	out.Reclaimed = metrics.Aggregated(recl)
	return out, nil
}

// GenerateTraces builds n full four-phase OO7 traces with seeds base,
// base+1, … base+n-1, in parallel (each generator is independent). Traces
// are independent of policy configuration, so one set can be reused across
// a whole parameter sweep.
func GenerateTraces(p oo7.Params, base int64, n int) ([]*trace.Trace, error) {
	traces := make([]*trace.Trace, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range traces {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tr, err := oo7.FullTrace(p, base+int64(i))
			if err != nil {
				errs[i] = fmt.Errorf("sim: generating trace %d: %w", i, err)
				return
			}
			traces[i] = tr
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return traces, nil
}
