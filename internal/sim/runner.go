package sim

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"odbgc/internal/core"
	"odbgc/internal/fault"
	"odbgc/internal/gc"
	"odbgc/internal/metrics"
	"odbgc/internal/obs"
	"odbgc/internal/oo7"
	"odbgc/internal/simerr"
	"odbgc/internal/storage"
	"odbgc/internal/trace"
)

// Run-cache entries are framed so corruption is detected, not decoded:
// magic, big-endian payload length, gob payload, SHA-256 of the payload.
// A file failing any of those checks classifies as
// simerr.ErrCorruptCheckpoint and is deleted and recomputed by the batch
// engine instead of poisoning the aggregate.
var runCacheMagic = []byte("ODBGRUN2")

const runCacheHeaderLen = 8 + 8 // magic + payload length

// loadRunResult reads a cached per-run result. A missing file returns the
// raw os.ErrNotExist ("no cache entry yet"); a file that exists but fails
// validation — short, bad magic, torn payload, checksum mismatch, or a gob
// stream that will not decode — returns an error classified as
// simerr.ErrCorruptCheckpoint.
func loadRunResult(path string) (*Result, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	name := filepath.Base(path)
	if len(raw) < runCacheHeaderLen+sha256.Size {
		return nil, simerr.WrapCorruptCheckpoint(
			fmt.Sprintf("run cache %s: %d bytes is shorter than the envelope", name, len(raw)), nil)
	}
	if !bytes.Equal(raw[:8], runCacheMagic) {
		return nil, simerr.WrapCorruptCheckpoint(
			fmt.Sprintf("run cache %s: bad magic %q", name, raw[:8]), nil)
	}
	plen := binary.BigEndian.Uint64(raw[8:16])
	if plen != uint64(len(raw)-runCacheHeaderLen-sha256.Size) {
		return nil, simerr.WrapCorruptCheckpoint(
			fmt.Sprintf("run cache %s: header claims %d payload bytes, file carries %d",
				name, plen, len(raw)-runCacheHeaderLen-sha256.Size), nil)
	}
	payload := raw[runCacheHeaderLen : runCacheHeaderLen+int(plen)]
	sum := sha256.Sum256(payload)
	if !bytes.Equal(sum[:], raw[runCacheHeaderLen+int(plen):]) {
		return nil, simerr.WrapCorruptCheckpoint(
			fmt.Sprintf("run cache %s: checksum mismatch", name), nil)
	}
	res, err := decodeRunResult(payload)
	if err != nil {
		return nil, simerr.WrapCorruptCheckpoint(
			fmt.Sprintf("run cache %s: decoding payload", name), err)
	}
	return res, nil
}

// decodeRunResult gob-decodes a run-cache payload with a recover guard: a
// decoder panic on hostile bytes becomes an error, not a crashed worker.
func decodeRunResult(payload []byte) (res *Result, err error) {
	defer func() {
		if p := recover(); p != nil {
			res, err = nil, fmt.Errorf("decoder panic: %v", p)
		}
	}()
	var r Result
	if derr := gob.NewDecoder(bytes.NewReader(payload)).Decode(&r); derr != nil {
		return nil, derr
	}
	return &r, nil
}

// saveRunResult writes a per-run result atomically (temp file + rename) in
// the checksummed envelope loadRunResult expects, so an interrupted batch
// never leaves a torn cache entry behind and a damaged one is detected.
func saveRunResult(path string, res *Result) error {
	var payload bytes.Buffer
	if err := gob.NewEncoder(&payload).Encode(res); err != nil {
		return err
	}
	var buf bytes.Buffer
	buf.Grow(runCacheHeaderLen + payload.Len() + sha256.Size)
	buf.Write(runCacheMagic)
	var lenb [8]byte
	binary.BigEndian.PutUint64(lenb[:], uint64(payload.Len()))
	buf.Write(lenb[:])
	buf.Write(payload.Bytes())
	sum := sha256.Sum256(payload.Bytes())
	buf.Write(sum[:])

	tmp, err := os.CreateTemp(filepath.Dir(path), ".run-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(tmp.Name()) }()
	if _, err := tmp.Write(buf.Bytes()); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// RunStatus is a progress report from the batch engine, delivered through
// RunnerConfig.OnRunStatus as runs hit cache, fail, retry, and complete.
type RunStatus struct {
	// Run is the trace index the status concerns.
	Run int
	// Attempt is the 1-based attempt number, or 0 for cache events.
	Attempt int
	// Class buckets the outcome: ClassOK for a success or cache hit,
	// ClassCorruptCheckpoint for a discarded cache entry, the failure's
	// class otherwise.
	Class simerr.Class
	// Cached marks cache events (hit or corrupt entry).
	Cached bool
	// Err is the failure for non-OK statuses.
	Err error
}

// RunnerConfig describes a multi-seed experiment: the same policy
// configuration replayed over several independently generated traces, as in
// §4.1 ("each data point shows the mean of 10 runs"). Runs execute on a
// bounded worker pool (they are independent by construction); results are
// ordered by trace index regardless.
type RunnerConfig struct {
	// Traces are the per-seed input traces (use GenerateTraces).
	Traces []*trace.Trace
	// MakePolicy builds a fresh policy for run i. Required: policies carry
	// controller state and must not be shared across runs.
	MakePolicy func(run int) (core.RatePolicy, error)
	// MakeSelection builds a fresh selection policy per run; nil means
	// UPDATEDPOINTER for every run.
	MakeSelection func(run int) (gc.SelectionPolicy, error)
	// Storage geometry; zero value means storage.DefaultConfig().
	Storage storage.Config
	// PreambleCollections as in Config.
	PreambleCollections int
	// FaultProfile, when it carries storage-fault rates, runs every
	// simulation under fault injection; run i is seeded with FaultSeed+i so
	// each run sees an independent but reproducible fault schedule.
	FaultProfile fault.Profile
	FaultSeed    int64
	// CheckpointDir, when set, makes the batch crash-safe at run
	// granularity: each completed run's Result is written to
	// CheckpointDir/run-NNN.gob (atomically, with a checksum), and a rerun
	// of the same batch loads those instead of recomputing. A corrupt entry
	// is deleted and its run recomputed. Delete the directory to force a
	// full rerun.
	CheckpointDir string
	// EventsDir, when set, writes each run's structured event log to
	// EventsDir/run-NNN.jsonl (see internal/obs). Runs satisfied from the
	// checkpoint cache are not re-simulated and write no events; a retried
	// run truncates and rewrites its log.
	EventsDir string

	// Parallel bounds how many runs execute concurrently. Zero or negative
	// means runtime.GOMAXPROCS(0); the bound is additionally capped at the
	// number of traces.
	Parallel int
	// RunTimeout, when positive, bounds each attempt's wall-clock duration.
	// An attempt exceeding it is cancelled — cooperatively at the next event
	// boundary, or by abandoning a wedged goroutine — and fails with an
	// error classified as simerr.ErrTimeout.
	RunTimeout time.Duration
	// MaxAttempts is the per-run attempt budget: a run failing with a
	// transient fault (fault.IsTransient) is retried with identical inputs
	// up to this many total attempts. Zero or negative means 1 (no
	// retries). Non-transient failures are never retried. When the budget
	// is exhausted the final error additionally carries
	// simerr.ErrFaultExhausted.
	MaxAttempts int
	// Drain, when non-nil, requests graceful shutdown on close: the batch
	// stops scheduling new runs, in-flight runs complete and checkpoint
	// normally, and RunMany returns an error classified as
	// simerr.ErrCanceled. Rerunning with the same CheckpointDir resumes
	// from the completed runs.
	Drain <-chan struct{}
	// MakeObserver, when set, supplies an extra per-run observer composed
	// with the EventsDir JSONL writer. The observer is invoked from worker
	// goroutines; one run's observer is never called concurrently with
	// itself, but observers for different runs run in parallel.
	MakeObserver func(run int) obs.Observer
	// OnRunStatus, when set, receives progress reports (cache hits, corrupt
	// cache entries, failed attempts, completions). It is called
	// concurrently from worker goroutines and must be safe for that.
	OnRunStatus func(RunStatus)
}

// MultiResult aggregates per-run summaries.
type MultiResult struct {
	Runs []*Result
	// GCIO aggregates the per-run collector I/O fraction.
	GCIO metrics.Aggregate
	// Garbage aggregates the per-run sampled mean garbage fraction.
	Garbage metrics.Aggregate
	// Collections aggregates per-run collection counts.
	Collections metrics.Aggregate
	// TotalIO aggregates per-run total I/O operations (whole run).
	TotalIO metrics.Aggregate
	// Reclaimed aggregates per-run total reclaimed bytes (whole run).
	Reclaimed metrics.Aggregate
}

// RunMany executes one simulation per trace on a bounded worker pool and
// aggregates the summaries. It is RunManyContext under context.Background().
func RunMany(cfg RunnerConfig) (*MultiResult, error) {
	return RunManyContext(context.Background(), cfg)
}

// RunManyContext is the supervised batch engine. Runs are scheduled onto at
// most cfg.Parallel workers; each run consults the checkpoint cache, retries
// transient failures within cfg.MaxAttempts, and is bounded by
// cfg.RunTimeout. Cancelling ctx aborts the batch (in-flight runs stop at
// their next event boundary); closing cfg.Drain stops scheduling but lets
// in-flight runs finish and checkpoint, so a subsequent run with the same
// CheckpointDir resumes where the batch left off.
//
// On failure the error returned is the lowest-indexed non-cancellation
// failure if any run genuinely failed, otherwise a cancellation error; both
// classify under the simerr taxonomy.
func RunManyContext(ctx context.Context, cfg RunnerConfig) (*MultiResult, error) {
	n := len(cfg.Traces)
	if n == 0 {
		return nil, fmt.Errorf("sim: RunMany requires at least one trace")
	}
	if cfg.MakePolicy == nil {
		return nil, fmt.Errorf("sim: RunMany requires MakePolicy")
	}

	if cfg.CheckpointDir != "" {
		if err := os.MkdirAll(cfg.CheckpointDir, 0o755); err != nil {
			return nil, fmt.Errorf("sim: creating checkpoint dir: %w", err)
		}
	}
	if cfg.EventsDir != "" {
		if err := os.MkdirAll(cfg.EventsDir, 0o755); err != nil {
			return nil, fmt.Errorf("sim: creating events dir: %w", err)
		}
	}

	parallel := cfg.Parallel
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}

	results := make([]*Result, n)
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				results[i], errs[i] = runOne(ctx, cfg, i)
			}
		}()
	}
	// Feed jobs until done, cancelled, or draining. A nil Drain channel
	// blocks forever in select, i.e. never fires.
	scheduled := 0
feed:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break feed
		case <-cfg.Drain:
			break feed
		case jobs <- i:
			scheduled++
		}
	}
	close(jobs)
	wg.Wait()

	// Report the most diagnostic failure: a genuine defect beats a
	// cancellation, earlier runs beat later ones (they are deterministic by
	// index, so the earliest failure is the most reproducible lead).
	var firstFailure, firstCancel error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if simerr.Classify(err) == simerr.ClassCanceled {
			if firstCancel == nil {
				firstCancel = err
			}
			continue
		}
		if firstFailure == nil {
			firstFailure = err
		}
	}
	if firstFailure != nil {
		return nil, firstFailure
	}
	if firstCancel != nil {
		return nil, firstCancel
	}
	if scheduled < n {
		return nil, fmt.Errorf("sim: batch interrupted after %d of %d runs: %w",
			scheduled, n, simerr.ErrCanceled)
	}

	out := &MultiResult{}
	var gcio, garb, colls, totio, recl []float64
	for _, res := range results {
		out.Runs = append(out.Runs, res)
		if res.MeasurementStarted {
			gcio = append(gcio, res.GCIOFrac)
			garb = append(garb, res.GarbageFrac)
		}
		colls = append(colls, float64(len(res.Collections)))
		totio = append(totio, float64(res.Final.TotalIO()))
		recl = append(recl, float64(res.TotalReclaimed))
	}
	out.GCIO = metrics.Aggregated(gcio)
	out.Garbage = metrics.Aggregated(garb)
	out.Collections = metrics.Aggregated(colls)
	out.TotalIO = metrics.Aggregated(totio)
	out.Reclaimed = metrics.Aggregated(recl)
	return out, nil
}

// runOne supervises a single run: cache lookup (with corrupt-entry
// recovery), the attempt/retry loop, and checkpointing the result.
func runOne(ctx context.Context, cfg RunnerConfig, i int) (*Result, error) {
	notify := func(st RunStatus) {
		if cfg.OnRunStatus != nil {
			cfg.OnRunStatus(st)
		}
	}

	runPath := ""
	if cfg.CheckpointDir != "" {
		runPath = filepath.Join(cfg.CheckpointDir, fmt.Sprintf("run-%03d.gob", i))
		res, err := loadRunResult(runPath)
		switch {
		case err == nil:
			notify(RunStatus{Run: i, Cached: true, Class: simerr.ClassOK})
			return res, nil
		case errors.Is(err, simerr.ErrCorruptCheckpoint):
			// A torn or damaged cache entry is recoverable: discard it and
			// recompute the run from its trace.
			notify(RunStatus{Run: i, Cached: true, Class: simerr.ClassCorruptCheckpoint, Err: err})
			if rerr := os.Remove(runPath); rerr != nil && !errors.Is(rerr, os.ErrNotExist) {
				return nil, fmt.Errorf("sim: removing corrupt run cache for run %d: %w", i, rerr)
			}
		}
	}

	attempts := cfg.MaxAttempts
	if attempts <= 0 {
		attempts = 1
	}
	var err error
	for attempt := 1; attempt <= attempts; attempt++ {
		var res *Result
		res, err = runAttempt(ctx, cfg, i, attempt)
		if err == nil {
			if runPath != "" {
				if serr := saveRunResult(runPath, res); serr != nil {
					return nil, fmt.Errorf("sim: checkpointing run %d: %w", i, serr)
				}
			}
			notify(RunStatus{Run: i, Attempt: attempt, Class: simerr.ClassOK})
			return res, nil
		}
		notify(RunStatus{Run: i, Attempt: attempt, Class: simerr.Classify(err), Err: err})
		if !fault.IsTransient(err) || ctx.Err() != nil {
			return nil, err
		}
	}
	if !errors.Is(err, simerr.ErrFaultExhausted) {
		err = simerr.WrapFaultExhausted(
			fmt.Sprintf("run %d still failing after %d attempts", i, attempts), err)
	}
	return nil, err
}

// runAttempt executes one attempt of run i under the per-run deadline. A
// wedged simulation (stuck inside a single Step, so cooperative cancellation
// cannot reach it) is abandoned when the deadline fires; Go cannot kill a
// goroutine, so an abandoned one leaks by design — the same contract
// RunGuarded documents.
func runAttempt(ctx context.Context, cfg RunnerConfig, i, attempt int) (*Result, error) {
	policy, err := cfg.MakePolicy(i)
	if err != nil {
		if fault.IsTransient(err) {
			return nil, fmt.Errorf("sim: building policy for run %d (attempt %d): %w", i, attempt, err)
		}
		return nil, fmt.Errorf("sim: %w",
			simerr.WrapPolicyFailure(fmt.Sprintf("building policy for run %d", i), err))
	}
	var sel gc.SelectionPolicy
	if cfg.MakeSelection != nil {
		sel, err = cfg.MakeSelection(i)
		if err != nil {
			if fault.IsTransient(err) {
				return nil, fmt.Errorf("sim: building selection for run %d (attempt %d): %w", i, attempt, err)
			}
			return nil, fmt.Errorf("sim: %w",
				simerr.WrapPolicyFailure(fmt.Sprintf("building selection for run %d", i), err))
		}
	}
	simCfg := Config{
		Storage:             cfg.Storage,
		Policy:              policy,
		Selection:           sel,
		PreambleCollections: cfg.PreambleCollections,
		FaultProfile:        cfg.FaultProfile,
		FaultSeed:           cfg.FaultSeed + int64(i),
	}
	var observers []obs.Observer
	var events *obs.JSONLWriter
	if cfg.EventsDir != "" {
		// os.Create truncates, so a retried attempt rewrites its log from
		// scratch rather than appending to a failed attempt's events.
		f, err := os.Create(filepath.Join(cfg.EventsDir, fmt.Sprintf("run-%03d.jsonl", i)))
		if err != nil {
			return nil, fmt.Errorf("sim: creating event log for run %d: %w", i, err)
		}
		events = obs.NewJSONLWriter(f)
		observers = append(observers, events)
	}
	if cfg.MakeObserver != nil {
		if o := cfg.MakeObserver(i); o != nil {
			observers = append(observers, o)
		}
	}
	simCfg.Observer = obs.NewMulti(observers...)

	s, err := New(simCfg)
	if err != nil {
		if events != nil {
			_ = events.Close()
		}
		return nil, fmt.Errorf("sim: run %d: %w", i, err)
	}

	runCtx := ctx
	cancel := func() {}
	if cfg.RunTimeout > 0 {
		runCtx, cancel = context.WithTimeout(ctx, cfg.RunTimeout)
	}
	defer cancel()

	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if p := recover(); p != nil {
				ch <- outcome{err: fmt.Errorf("panic during run: %v\n%s", p, debug.Stack())}
			}
		}()
		res, rerr := s.RunContext(runCtx, cfg.Traces[i])
		ch <- outcome{res: res, err: rerr}
	}()

	var o outcome
	select {
	case o = <-ch:
	case <-runCtx.Done():
		// Prefer the run's own exit if it raced the deadline to the line.
		select {
		case o = <-ch:
		default:
			// Wedged inside a single step: abandon the goroutine. The
			// events writer stays open because the abandoned goroutine may
			// still write to it; the file is truncated on the next attempt.
			return nil, fmt.Errorf("sim: run %d: %w", i, simerr.FromContext(runCtx.Err()))
		}
	}
	res, err := o.res, o.err
	if events != nil {
		if cerr := events.Close(); cerr != nil && err == nil {
			err = fmt.Errorf("writing event log: %w", cerr)
		}
	}
	if err != nil {
		return nil, fmt.Errorf("sim: run %d: %w", i, err)
	}
	return res, nil
}

// GenerateTraces builds n full four-phase OO7 traces with seeds base,
// base+1, … base+n-1, on a bounded worker pool (each generator is
// independent). Traces are independent of policy configuration, so one set
// can be reused across a whole parameter sweep.
func GenerateTraces(p oo7.Params, base int64, n int) ([]*trace.Trace, error) {
	return GenerateTracesContext(context.Background(), p, base, n, 0)
}

// GenerateTracesContext is GenerateTraces under a context and an explicit
// concurrency bound (zero or negative means runtime.GOMAXPROCS(0)).
// Cancelling ctx stops generation promptly and returns an error classified
// under the simerr taxonomy.
func GenerateTracesContext(ctx context.Context, p oo7.Params, base int64, n int, parallel int) ([]*trace.Trace, error) {
	if parallel <= 0 {
		parallel = runtime.GOMAXPROCS(0)
	}
	if parallel > n {
		parallel = n
	}
	traces := make([]*trace.Trace, n)
	errs := make([]error, n)
	jobs := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < parallel; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				if cerr := ctx.Err(); cerr != nil {
					errs[i] = fmt.Errorf("sim: generating trace %d: %w", i, simerr.FromContext(cerr))
					continue
				}
				tr, err := oo7.FullTrace(p, base+int64(i))
				if err != nil {
					errs[i] = fmt.Errorf("sim: generating trace %d: %w", i, err)
					continue
				}
				traces[i] = tr
			}
		}()
	}
	fed := 0
feed:
	for i := 0; i < n; i++ {
		select {
		case <-ctx.Done():
			break feed
		case jobs <- i:
			fed++
		}
	}
	close(jobs)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if fed < n {
		return nil, fmt.Errorf("sim: trace generation interrupted after %d of %d traces: %w",
			fed, n, simerr.FromContext(ctx.Err()))
	}
	return traces, nil
}
