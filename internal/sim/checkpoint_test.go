package sim

import (
	"bytes"
	"encoding/gob"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/fault"
	"odbgc/internal/gc"
	"odbgc/internal/oo7"
	"odbgc/internal/trace"
)

// encodeResult canonicalizes a Result for bit-identical comparison (gob
// encodes NaN deterministically, unlike reflect.DeepEqual which rejects it).
func encodeResult(t *testing.T, res *Result) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(res); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// runSplit replays tr twice with identically configured simulators: once
// straight through, once checkpointing near the midpoint (serializing the
// checkpoint through its wire format) and resuming into a fresh simulator.
// Returns the canonical encodings of both results.
func runSplit(t *testing.T, tr *trace.Trace, mkConfig func() Config) (full, resumed []byte) {
	t.Helper()

	s1, err := New(mkConfig())
	if err != nil {
		t.Fatal(err)
	}
	resA, err := s1.Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	s2, err := New(mkConfig())
	if err != nil {
		t.Fatal(err)
	}
	half := len(tr.Events) / 2
	i := 0
	for ; i < len(tr.Events) && (i < half || !s2.collectSafe); i++ {
		if err := s2.Step(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := s2.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	cp2, err := ReadCheckpoint(&buf)
	if err != nil {
		t.Fatal(err)
	}

	s3, err := Resume(mkConfig(), cp2)
	if err != nil {
		t.Fatal(err)
	}
	for ; i < len(tr.Events); i++ {
		if err := s3.Step(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	resB, err := s3.Finish()
	if err != nil {
		t.Fatal(err)
	}
	return encodeResult(t, resA), encodeResult(t, resB)
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	tr := smallTrace(t, 3, 11)
	mkConfig := func() Config {
		est, err := core.NewFGSHB(0.8)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Policy: pol}
	}
	full, resumed := runSplit(t, tr, mkConfig)
	if !bytes.Equal(full, resumed) {
		t.Fatal("resumed run's summary differs from the uninterrupted run")
	}
}

// TestCheckpointResumeWithFaults: the fault injector's PRNG state rides in
// the checkpoint, so even the fault schedule resumes bit-identically.
func TestCheckpointResumeWithFaults(t *testing.T) {
	profile, err := fault.LookupProfile("flaky-io")
	if err != nil {
		t.Fatal(err)
	}
	tr := smallTrace(t, 3, 12)
	mkConfig := func() Config {
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, core.OracleEstimator{})
		if err != nil {
			t.Fatal(err)
		}
		return Config{Policy: pol, FaultProfile: profile, FaultSeed: 5}
	}
	full, resumed := runSplit(t, tr, mkConfig)
	if !bytes.Equal(full, resumed) {
		t.Fatal("resumed chaos run diverged from the uninterrupted run")
	}
}

func TestCheckpointRejectsMidConstruction(t *testing.T) {
	tr := smallTrace(t, 3, 13)
	pol, err := core.NewFixedRate(500)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		if err := s.Step(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
		if !s.collectSafe {
			if _, err := s.Checkpoint(); err == nil {
				t.Fatal("checkpoint accepted mid-construction")
			}
			return
		}
	}
	t.Fatal("trace had no mid-construction point")
}

func TestSaveLoadCheckpointFile(t *testing.T) {
	tr := smallTrace(t, 3, 14)
	pol, err := core.NewFixedRate(300)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tr.Events)/3 || !s.collectSafe; i++ {
		if err := s.Step(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "sim.ckpt")
	if err := SaveCheckpoint(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := LoadCheckpoint(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Step != cp.Step || got.CurPhase != cp.CurPhase {
		t.Fatalf("loaded checkpoint cursor (%d,%q) != saved (%d,%q)",
			got.Step, got.CurPhase, cp.Step, cp.CurPhase)
	}
	// A torn checkpoint file is rejected, not misread.
	if err := os.WriteFile(path, []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadCheckpoint(path); err == nil {
		t.Fatal("accepted a corrupt checkpoint file")
	}
}

// TestResumeRejectsMismatchedConfig: resuming under a different policy or
// selection than the checkpointed run must fail loudly, not silently run the
// wrong configuration.
func TestResumeRejectsMismatchedConfig(t *testing.T) {
	tr := smallTrace(t, 3, 15)
	mkSAGA := func() core.RatePolicy {
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, core.OracleEstimator{})
		if err != nil {
			t.Fatal(err)
		}
		return pol
	}
	s, err := New(Config{Policy: mkSAGA()})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < len(tr.Events)/2 || !s.collectSafe; i++ {
		if err := s.Step(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	fixed, err := core.NewFixedRate(200)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(Config{Policy: fixed}, cp); err == nil {
		t.Fatal("resume accepted a different policy than the checkpointed run")
	}
	sel, err := gc.NewSelectionPolicy("round-robin", 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resume(Config{Policy: mkSAGA(), Selection: sel}, cp); err == nil {
		t.Fatal("resume accepted a different selection policy than the checkpointed run")
	}
	if _, err := Resume(Config{Policy: mkSAGA()}, cp); err != nil {
		t.Fatalf("matching config rejected: %v", err)
	}
}

// TestRunManyCheckpointCache: a rerun with CheckpointDir set loads finished
// runs from disk — proven by making policy construction fail on the rerun.
func TestRunManyCheckpointCache(t *testing.T) {
	traces, err := GenerateTraces(oo7.SmallPrime(3), 21, 2)
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	cfg := RunnerConfig{
		Traces: traces,
		MakePolicy: func(int) (core.RatePolicy, error) {
			return core.NewFixedRate(200)
		},
		CheckpointDir: dir,
	}
	first, err := RunMany(cfg)
	if err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != len(traces) {
		t.Fatalf("%d checkpoint files for %d runs", len(entries), len(traces))
	}

	cfg.MakePolicy = func(int) (core.RatePolicy, error) {
		return nil, errors.New("cache miss: policy rebuilt")
	}
	second, err := RunMany(cfg)
	if err != nil {
		t.Fatalf("rerun did not use the checkpoint cache: %v", err)
	}
	for i := range first.Runs {
		if !bytes.Equal(encodeResult(t, first.Runs[i]), encodeResult(t, second.Runs[i])) {
			t.Fatalf("run %d: cached result differs from original", i)
		}
	}
}

// TestRunManyFaultPlumbing: RunMany wires per-run fault seeds; the whole
// batch is reproducible.
func TestRunManyFaultPlumbing(t *testing.T) {
	profile, err := fault.LookupProfile("flaky-io")
	if err != nil {
		t.Fatal(err)
	}
	traces, err := GenerateTraces(oo7.SmallPrime(3), 31, 2)
	if err != nil {
		t.Fatal(err)
	}
	run := func() *MultiResult {
		mr, err := RunMany(RunnerConfig{
			Traces: traces,
			MakePolicy: func(int) (core.RatePolicy, error) {
				return core.NewSAGA(core.SAGAConfig{Frac: 0.10}, core.OracleEstimator{})
			},
			FaultProfile: profile,
			FaultSeed:    91,
		})
		if err != nil {
			t.Fatal(err)
		}
		return mr
	}
	a, b := run(), run()
	for i := range a.Runs {
		if !bytes.Equal(encodeResult(t, a.Runs[i]), encodeResult(t, b.Runs[i])) {
			t.Fatalf("run %d: chaos batch not reproducible", i)
		}
	}
}
