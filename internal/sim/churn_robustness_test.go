package sim

import (
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/workload"
)

// TestChurnFGSSlopeTrapDiagnostics documents the failure mode the
// time-weighted slope fixes: with the paper formula at a 5% target on the
// churn workload, the estimate stays accurate while the controller naps.
// Inspect with -v.
func TestChurnFGSSlopeTrapDiagnostics(t *testing.T) {
	tr, err := workload.Churn(workload.DefaultChurn(), 1)
	if err != nil {
		t.Fatal(err)
	}
	est, _ := core.NewFGSHB(0.8)
	pol, _ := core.NewSAGA(core.SAGAConfig{Frac: 0.05}, est)
	s, _ := New(Config{Policy: pol})
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("collections=%d garbFrac=%.4f", len(res.Collections), res.GarbageFrac)
	for i, c := range res.Collections {
		if i%4 == 0 {
			t.Logf("#%3d %-8s ow=%6d int=%5d part=%3d po=%5d reclaimed=%7d act=%8d (%.3f) est=%9.0f next=%5d db=%d",
				c.Index, c.Phase, c.Clock.Overwrites, c.Interval, c.Partition, c.PartitionPO,
				c.ReclaimedBytes, c.ActualGarbageBytes, c.ActualGarbageFrac, c.EstimatedGarbageBytes, c.NextInterval, c.DatabaseBytes)
		}
	}
}

func TestChurnTimeWeightedSlopeRecovers(t *testing.T) {
	tr, err := workload.Churn(workload.DefaultChurn(), 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(slopeRef uint64) float64 {
		est, _ := core.NewFGSHB(0.8)
		pol, _ := core.NewSAGA(core.SAGAConfig{Frac: 0.05, SlopeRef: slopeRef}, est)
		s, _ := New(Config{Policy: pol})
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.GarbageFrac
	}
	paper := run(0)
	timeWeighted := run(100)
	t.Logf("churn @5%% target: paper slope %.4f, time-weighted slope %.4f", paper, timeWeighted)
	if timeWeighted > 0.15 {
		t.Errorf("time-weighted slope did not stabilize the controller: %.4f", timeWeighted)
	}
	if timeWeighted >= paper {
		t.Errorf("time-weighted (%.4f) no better than paper formula (%.4f)", timeWeighted, paper)
	}
}

func TestTimeWeightedSlopeNeutralOnOO7(t *testing.T) {
	tr := smallTrace(t, 3, 2)
	run := func(slopeRef uint64, estName string) float64 {
		est, _ := core.NewEstimator(estName, 0.8)
		pol, _ := core.NewSAGA(core.SAGAConfig{Frac: 0.10, SlopeRef: slopeRef}, est)
		s, _ := New(Config{Policy: pol})
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.GarbageFrac
	}
	for _, estName := range []string{"oracle", "fgs-hb"} {
		paper := run(0, estName)
		tw := run(100, estName)
		t.Logf("OO7 @10%% %s: paper %.4f, time-weighted %.4f", estName, paper, tw)
		// The variant must not make OO7 meaningfully worse.
		if absf(tw-0.10) > absf(paper-0.10)+0.02 {
			t.Errorf("%s: time-weighted slope hurt OO7 accuracy (%.4f vs %.4f)", estName, tw, paper)
		}
	}
}

func absf(v float64) float64 {
	if v < 0 {
		return -v
	}
	return v
}
