package sim

import (
	"bytes"
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/trace"
)

// TestRunStreamMatchesRun: streaming a trace through the binary codec must
// produce bit-identical results to the in-memory replay.
func TestRunStreamMatchesRun(t *testing.T) {
	tr := smallTrace(t, 3, 12)

	mkSim := func() *Simulator {
		pol, err := core.NewSAIO(core.SAIOConfig{Frac: 0.15})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	inMem, err := mkSim().Run(tr)
	if err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	rd, err := trace.NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	streamed, err := mkSim().RunStream(rd)
	if err != nil {
		t.Fatal(err)
	}

	if inMem.Final != streamed.Final {
		t.Errorf("I/O differs: %+v vs %+v", inMem.Final, streamed.Final)
	}
	if len(inMem.Collections) != len(streamed.Collections) {
		t.Fatalf("collections differ: %d vs %d", len(inMem.Collections), len(streamed.Collections))
	}
	for i := range inMem.Collections {
		a, b := inMem.Collections[i], streamed.Collections[i]
		if a.Partition != b.Partition || a.ReclaimedBytes != b.ReclaimedBytes || a.Clock != b.Clock {
			t.Fatalf("collection %d differs: %+v vs %+v", i, a, b)
		}
	}
	if inMem.GarbageFrac != streamed.GarbageFrac || inMem.GCIOFrac != streamed.GCIOFrac {
		t.Errorf("summaries differ: garb %v/%v gcio %v/%v",
			inMem.GarbageFrac, streamed.GarbageFrac, inMem.GCIOFrac, streamed.GCIOFrac)
	}
}

// TestStepAndFinishDirectly drives the simulator event by event.
func TestStepAndFinishDirectly(t *testing.T) {
	tr := smallTrace(t, 3, 12)
	pol, err := core.NewFixedRate(500)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	for i := range tr.Events {
		if err := s.Step(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	if res.Events == 0 || len(res.Collections) == 0 {
		t.Errorf("degenerate result: %d events, %d collections", res.Events, len(res.Collections))
	}
}

// TestRunStreamPropagatesDecodeErrors: a truncated stream must surface as
// an error, not silent completion.
func TestRunStreamPropagatesDecodeErrors(t *testing.T) {
	tr := smallTrace(t, 3, 12)
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	cut := buf.Bytes()[:buf.Len()/2]
	rd, err := trace.NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewFixedRate(500)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := s.RunStream(rd); err == nil {
		t.Error("truncated stream completed without error")
	}
}

func TestPhaseSummaries(t *testing.T) {
	tr := smallTrace(t, 3, 12)
	pol, err := core.NewSAIO(core.SAIOConfig{Frac: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PhaseSummaries) != 4 {
		t.Fatalf("phase summaries = %d, want 4", len(res.PhaseSummaries))
	}
	var events int
	var totalIO uint64
	for _, ps := range res.PhaseSummaries {
		events += ps.Events
		totalIO += ps.IO.TotalIO()
	}
	if events != res.Events {
		t.Errorf("phase events sum %d != run events %d", events, res.Events)
	}
	if totalIO != res.Final.TotalIO() {
		t.Errorf("phase I/O sum %d != run I/O %d", totalIO, res.Final.TotalIO())
	}
	// Traverse is read-only: no overwrite-driven garbage change, and for
	// SAIO it still collects (positive collections, reclaimed > 0 likely).
	trav := res.PhaseSummaries[2]
	if trav.Label != "Traverse" {
		t.Fatalf("third phase = %q", trav.Label)
	}
	if trav.Events == 0 {
		t.Error("Traverse summary has no events")
	}
	// Collections must sum to the total too.
	colls := 0
	for _, ps := range res.PhaseSummaries {
		colls += ps.Collections
	}
	if colls != len(res.Collections) {
		t.Errorf("phase collections sum %d != %d", colls, len(res.Collections))
	}
}
