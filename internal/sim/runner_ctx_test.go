package sim

import (
	"context"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"odbgc/internal/core"
	"odbgc/internal/fault"
	"odbgc/internal/gc"
	"odbgc/internal/obs"
	"odbgc/internal/oo7"
	"odbgc/internal/simerr"
)

// nopObserver is an embeddable no-op obs.Observer.
type nopObserver struct{}

func (nopObserver) ObserveRunStart(obs.RunStart)         {}
func (nopObserver) ObservePhase(obs.PhaseChange)         {}
func (nopObserver) ObserveDecision(obs.Decision)         {}
func (nopObserver) ObserveCollection(obs.Collection)     {}
func (nopObserver) ObserveFault(obs.Fault)               {}
func (nopObserver) ObserveCheckpoint(obs.CheckpointMark) {}
func (nopObserver) ObserveProgress(obs.Progress)         {}
func (nopObserver) ObserveRunEnd(obs.RunEnd)             {}

// gaugeObserver tracks how many runs are between RunStart and RunEnd, and
// the high-water mark of that gauge.
type gaugeObserver struct {
	nopObserver
	cur, max atomic.Int32
}

func (g *gaugeObserver) ObserveRunStart(obs.RunStart) {
	cur := g.cur.Add(1)
	for {
		max := g.max.Load()
		if cur <= max || g.max.CompareAndSwap(max, cur) {
			return
		}
	}
}

func (g *gaugeObserver) ObserveRunEnd(obs.RunEnd) { g.cur.Add(-1) }

// wedgedPolicy blocks inside its first decision until unblocked — a stand-in
// for a policy bug that hangs a run mid-step, out of reach of cooperative
// cancellation.
type wedgedPolicy struct {
	unblock <-chan struct{}
}

func (wedgedPolicy) Name() string { return "wedged" }
func (p wedgedPolicy) ShouldCollect(core.Clock) bool {
	<-p.unblock
	return false
}
func (wedgedPolicy) AfterCollection(core.Clock, core.HeapState, gc.CollectionResult) {}

func saioRunnerConfig(t *testing.T, n int) RunnerConfig {
	t.Helper()
	traces, err := GenerateTraces(oo7.SmallPrime(3), 1, n)
	if err != nil {
		t.Fatal(err)
	}
	return RunnerConfig{
		Traces: traces,
		MakePolicy: func(int) (core.RatePolicy, error) {
			return core.NewSAIO(core.SAIOConfig{Frac: 0.20})
		},
	}
}

// statusLog collects RunStatus reports from concurrent workers.
type statusLog struct {
	mu  sync.Mutex
	all []RunStatus
}

func (s *statusLog) record(st RunStatus) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.all = append(s.all, st)
}

func (s *statusLog) count(match func(RunStatus) bool) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, st := range s.all {
		if match(st) {
			n++
		}
	}
	return n
}

func TestRunManyRespectsParallelBound(t *testing.T) {
	cfg := saioRunnerConfig(t, 6)
	cfg.Parallel = 2
	gauge := &gaugeObserver{}
	cfg.MakeObserver = func(int) obs.Observer { return gauge }
	if _, err := RunMany(cfg); err != nil {
		t.Fatal(err)
	}
	if max := gauge.max.Load(); max > 2 {
		t.Errorf("observed %d concurrent runs, bound was 2", max)
	}
	if gauge.max.Load() < 1 {
		t.Error("no runs observed at all")
	}
	if cur := gauge.cur.Load(); cur != 0 {
		t.Errorf("%d runs still open after RunMany returned", cur)
	}
}

func TestRunManyTimeoutClassification(t *testing.T) {
	unblock := make(chan struct{})
	defer close(unblock) // let the abandoned goroutine exit before the test binary does

	cfg := saioRunnerConfig(t, 1)
	cfg.MakePolicy = func(int) (core.RatePolicy, error) {
		return wedgedPolicy{unblock: unblock}, nil
	}
	cfg.RunTimeout = 30 * time.Millisecond

	start := time.Now()
	_, err := RunMany(cfg)
	if err == nil {
		t.Fatal("wedged run completed")
	}
	if !errors.Is(err, simerr.ErrTimeout) {
		t.Errorf("errors.Is(err, simerr.ErrTimeout) = false for %v", err)
	}
	if !errors.Is(err, ErrTimeout) {
		t.Errorf("errors.Is(err, sim.ErrTimeout) = false for %v", err)
	}
	if got := simerr.Classify(err); got != simerr.ClassTimeout {
		t.Errorf("classified %s, want %s: %v", got, simerr.ClassTimeout, err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("timeout took %v to fire", elapsed)
	}
}

func TestRunManyRetriesTransientFlake(t *testing.T) {
	var calls atomic.Int32
	log := &statusLog{}
	cfg := saioRunnerConfig(t, 1)
	inner := cfg.MakePolicy
	cfg.MakePolicy = func(run int) (core.RatePolicy, error) {
		if calls.Add(1) == 1 {
			return nil, fmt.Errorf("flaky environment: %w",
				&fault.TransientError{Op: "read", Seq: 1})
		}
		return inner(run)
	}
	cfg.MaxAttempts = 2
	cfg.OnRunStatus = log.record

	mr, err := RunMany(cfg)
	if err != nil {
		t.Fatalf("supervisor did not absorb a transient flake: %v", err)
	}
	if len(mr.Runs) != 1 {
		t.Fatalf("runs = %d", len(mr.Runs))
	}
	if calls.Load() != 2 {
		t.Errorf("MakePolicy called %d times, want 2", calls.Load())
	}
	if n := log.count(func(st RunStatus) bool { return st.Attempt == 1 && st.Class != simerr.ClassOK }); n != 1 {
		t.Errorf("recorded %d failed first attempts, want 1", n)
	}
	if n := log.count(func(st RunStatus) bool { return st.Attempt == 2 && st.Class == simerr.ClassOK }); n != 1 {
		t.Errorf("recorded %d successful second attempts, want 1", n)
	}
}

func TestRunManyExhaustsAttempts(t *testing.T) {
	cfg := saioRunnerConfig(t, 1)
	cfg.MakePolicy = func(int) (core.RatePolicy, error) {
		return nil, fmt.Errorf("always flaky: %w", &fault.TransientError{Op: "read", Seq: 1})
	}
	cfg.MaxAttempts = 3

	_, err := RunMany(cfg)
	if err == nil {
		t.Fatal("persistently failing run succeeded")
	}
	if !errors.Is(err, simerr.ErrFaultExhausted) {
		t.Errorf("exhausted retries not classified: %v", err)
	}
	if got := simerr.Classify(err); got != simerr.ClassFaultExhausted {
		t.Errorf("classified %s: %v", got, err)
	}
}

func TestRunManyPolicyFailureClassification(t *testing.T) {
	cfg := saioRunnerConfig(t, 1)
	cfg.MakePolicy = func(int) (core.RatePolicy, error) {
		return nil, errors.New("bad parameters")
	}
	_, err := RunMany(cfg)
	if !errors.Is(err, simerr.ErrPolicyFailure) {
		t.Errorf("policy construction failure not classified: %v", err)
	}
}

func TestRunManyCorruptCacheRecovers(t *testing.T) {
	dir := t.TempDir()
	cfg := saioRunnerConfig(t, 3)
	cfg.CheckpointDir = dir

	clean, err := RunMany(cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Damage two of the three cache entries: truncate one mid-payload and
	// flip a bit inside another's payload.
	p0 := filepath.Join(dir, "run-000.gob")
	raw, err := os.ReadFile(p0)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(p0, raw[:len(raw)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	p1 := filepath.Join(dir, "run-001.gob")
	raw, err = os.ReadFile(p1)
	if err != nil {
		t.Fatal(err)
	}
	raw[len(raw)/2] ^= 0x40
	if err := os.WriteFile(p1, raw, 0o644); err != nil {
		t.Fatal(err)
	}

	log := &statusLog{}
	cfg.OnRunStatus = log.record
	again, err := RunMany(cfg)
	if err != nil {
		t.Fatalf("rerun over a corrupt cache failed: %v", err)
	}
	if !reflect.DeepEqual(clean, again) {
		t.Error("recomputed MultiResult differs from the clean run")
	}
	if n := log.count(func(st RunStatus) bool {
		return st.Cached && st.Class == simerr.ClassCorruptCheckpoint
	}); n != 2 {
		t.Errorf("detected %d corrupt cache entries, want 2", n)
	}
	if n := log.count(func(st RunStatus) bool {
		return st.Cached && st.Class == simerr.ClassOK
	}); n != 1 {
		t.Errorf("recorded %d cache hits, want 1", n)
	}
	// The damaged entries must have been rewritten valid.
	for i := 0; i < 3; i++ {
		if _, err := loadRunResult(filepath.Join(dir, fmt.Sprintf("run-%03d.gob", i))); err != nil {
			t.Errorf("cache entry %d not restored: %v", i, err)
		}
	}
}

func TestRunManyDrainThenResumeMatchesUninterrupted(t *testing.T) {
	const n = 4

	// Reference: the batch run to completion in one go.
	refCfg := saioRunnerConfig(t, n)
	refCfg.CheckpointDir = t.TempDir()
	want, err := RunMany(refCfg)
	if err != nil {
		t.Fatal(err)
	}

	// Interrupted: drain as soon as the first run completes, then resume
	// from the same checkpoint directory.
	dir := t.TempDir()
	drain := make(chan struct{})
	var drainOnce sync.Once
	cfg := saioRunnerConfig(t, n)
	cfg.CheckpointDir = dir
	cfg.Parallel = 1
	cfg.OnRunStatus = func(st RunStatus) {
		if st.Class == simerr.ClassOK && !st.Cached {
			drainOnce.Do(func() { close(drain) })
		}
	}
	cfg.Drain = drain

	_, err = RunMany(cfg)
	if err == nil {
		t.Fatal("drained batch reported success")
	}
	if got := simerr.Classify(err); got != simerr.ClassCanceled {
		t.Fatalf("drained batch classified %s: %v", got, err)
	}
	saved, err := filepath.Glob(filepath.Join(dir, "run-*.gob"))
	if err != nil {
		t.Fatal(err)
	}
	if len(saved) == 0 || len(saved) >= n {
		t.Fatalf("drain left %d of %d checkpoints", len(saved), n)
	}

	log := &statusLog{}
	cfg.Drain = nil
	cfg.OnRunStatus = log.record
	got, err := RunMany(cfg)
	if err != nil {
		t.Fatalf("resume failed: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		t.Error("resumed MultiResult differs from the uninterrupted run")
	}
	if hits := log.count(func(st RunStatus) bool { return st.Cached && st.Class == simerr.ClassOK }); hits != len(saved) {
		t.Errorf("resume hit the cache %d times, want %d", hits, len(saved))
	}
}

func TestRunManyContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := saioRunnerConfig(t, 2)
	_, err := RunManyContext(ctx, cfg)
	if err == nil {
		t.Fatal("cancelled batch reported success")
	}
	if got := simerr.Classify(err); got != simerr.ClassCanceled {
		t.Errorf("classified %s: %v", got, err)
	}
}

func TestRunManyParallelismIsInvisible(t *testing.T) {
	seq := saioRunnerConfig(t, 3)
	seq.Parallel = 1
	par := saioRunnerConfig(t, 3)
	par.Parallel = 3

	a, err := RunMany(seq)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMany(par)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(a, b) {
		t.Error("results differ between Parallel=1 and Parallel=3")
	}
}

func TestGenerateTracesContextCanceled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := GenerateTracesContext(ctx, oo7.SmallPrime(3), 1, 3, 2)
	if err == nil {
		t.Fatal("cancelled generation reported success")
	}
	if got := simerr.Classify(err); got != simerr.ClassCanceled {
		t.Errorf("classified %s: %v", got, err)
	}
}
