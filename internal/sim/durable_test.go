package sim

import (
	"bytes"
	"encoding/gob"
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/objstore"
	"odbgc/internal/oo7"
	"odbgc/internal/storage/disk"
	"odbgc/internal/storage/disk/crashtest"
	"odbgc/internal/trace"
)

// snapshotFromDisk rebuilds an objstore.StoreSnapshot from the committed
// state a disk store recovered, in the same canonical (ascending-OID)
// order Store.Snapshot produces, so the two encode to identical bytes when
// the states match.
func snapshotFromDisk(st *disk.Store) *objstore.StoreSnapshot {
	snap := &objstore.StoreSnapshot{NextOID: st.NextOID()}
	st.ForEach(func(o disk.ObjectState) {
		snap.Objects = append(snap.Objects, objstore.ObjectState{
			OID:   o.OID,
			Class: o.Class,
			Size:  o.Size,
			Slots: append([]objstore.OID(nil), o.Slots...),
		})
		if o.Root {
			snap.Roots = append(snap.Roots, o.OID)
		}
	})
	return snap
}

// tinyTrace generates a scaled-down OO7 run (~5k events): big enough to
// cross phases and trigger collections, small enough that journaling every
// disk write stays cheap.
func tinyTrace(t *testing.T, seed int64) *trace.Trace {
	t.Helper()
	p := oo7.SmallPrime(3)
	p.NumCompPerModule = 30
	p.NumAssmLevels = 4
	tr, err := oo7.FullTrace(p, seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func gobBytes(t *testing.T, v any) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// durableSim builds a simulator whose heap logs to a disk store over an
// in-memory journaling FS, with a fixed-rate policy aggressive enough that
// collections (and thus WAL reclaim records) actually happen.
func durableSim(t *testing.T) (*Simulator, *disk.Store, *crashtest.JournalFS) {
	t.Helper()
	fs := crashtest.NewJournalFS()
	st, _, err := disk.Open(disk.Options{FS: fs, Fsync: disk.FsyncGroup, GroupEvery: 8})
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewFixedRate(60)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol, Durable: st})
	if err != nil {
		t.Fatal(err)
	}
	return s, st, fs
}

// TestSnapshotRoundTripsThroughDiskBackend is the satellite round-trip:
// run a simulation against the durable backend, crash it (materialize the
// journaled bytes), recover, and demand the recovered state's snapshot is
// byte-identical to the live store's snapshot — same objects, slots,
// roots, and OID horizon.
func TestSnapshotRoundTripsThroughDiskBackend(t *testing.T) {
	tr := tinyTrace(t, 5)
	s, st, fs := durableSim(t)
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalReclaimed == 0 {
		t.Fatal("run reclaimed nothing; the round trip would not cover reclaim records")
	}
	liveSnap := gobBytes(t, s.Heap().Store().Snapshot())
	liveDigest := st.Digest()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	// Crash after the clean close: every byte is journaled, so the image
	// is the full on-disk state.
	img := fs.Image()
	rec, info, err := disk.Open(disk.Options{FS: crashtest.FromImage(img)})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer func() { _ = rec.Close() }()
	if info.Digest != liveDigest {
		t.Fatal("recovered digest differs from the live store's committed digest")
	}
	// Finish checkpointed, so recovery must replay nothing.
	if info.BatchesReplayed != 0 {
		t.Errorf("post-checkpoint recovery replayed %d batches, want 0", info.BatchesReplayed)
	}
	if got := gobBytes(t, snapshotFromDisk(rec)); !bytes.Equal(got, liveSnap) {
		t.Fatal("recovered snapshot is not byte-identical to the live store snapshot")
	}
}

// TestDurableMidRunCrashMatchesLiveState kills the store mid-run with no
// final checkpoint: the WAL tail alone must reproduce the live heap at the
// last committed event, exercising replay of alloc/set/root/reclaim
// records together (the simulator commits once per event, so the durable
// state tracks the live store exactly).
func TestDurableMidRunCrashMatchesLiveState(t *testing.T) {
	tr := tinyTrace(t, 7)
	s, st, fs := durableSim(t)
	n := len(tr.Events) / 2
	for i := range tr.Events[:n] {
		if err := s.Step(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	if s.Heap().Collections() == 0 {
		t.Fatal("no collections before the crash point; reclaim replay not covered")
	}
	liveSnap := gobBytes(t, s.Heap().Store().Snapshot())
	liveDigest := st.Digest()

	// SIGKILL: keep every journaled write, synced or not, and recover.
	img := fs.Materialize(len(fs.Ops()), -1, true)
	rec, info, err := disk.Open(disk.Options{FS: crashtest.FromImage(img)})
	if err != nil {
		t.Fatalf("recovery failed: %v", err)
	}
	defer func() { _ = rec.Close() }()
	if info.Digest != liveDigest {
		t.Fatal("recovered digest differs from the live store at the crash point")
	}
	if info.BatchesReplayed == 0 {
		t.Error("mid-run recovery replayed no batches; the crash point is not exercising the WAL")
	}
	if got := gobBytes(t, snapshotFromDisk(rec)); !bytes.Equal(got, liveSnap) {
		t.Fatal("recovered snapshot is not byte-identical to the live store at the crash point")
	}
}
