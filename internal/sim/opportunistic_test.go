package sim

import (
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/oo7"
)

// TestOpportunisticUsesQuiescence runs the OO7 workload with idle windows
// between phases and verifies that the opportunistic wrapper scrubs garbage
// down toward its floor during them, while the plain inner policy leaves
// the garbage where its own schedule ended.
func TestOpportunisticUsesQuiescence(t *testing.T) {
	p := oo7.SmallPrime(3)
	p.IdleBetweenPhases = 500
	tr, err := oo7.FullTrace(p, 8)
	if err != nil {
		t.Fatal(err)
	}

	run := func(opportunistic bool) *Result {
		inner, err := core.NewSAIO(core.SAIOConfig{Frac: 0.10})
		if err != nil {
			t.Fatal(err)
		}
		var pol core.RatePolicy = inner
		if opportunistic {
			pol, err = core.NewOpportunistic(inner, core.OracleEstimator{}, 0.02)
			if err != nil {
				t.Fatal(err)
			}
		}
		s, err := New(Config{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	plain := run(false)
	opp := run(true)
	t.Logf("plain: %d collections, reclaimed %d; opportunistic: %d collections, reclaimed %d",
		len(plain.Collections), plain.TotalReclaimed, len(opp.Collections), opp.TotalReclaimed)
	if len(opp.Collections) <= len(plain.Collections) {
		t.Errorf("opportunism added no collections (%d vs %d)", len(opp.Collections), len(plain.Collections))
	}
	if opp.TotalReclaimed <= plain.TotalReclaimed {
		t.Errorf("opportunism reclaimed no extra garbage (%d vs %d)", opp.TotalReclaimed, plain.TotalReclaimed)
	}
}

// TestIdleTicksIgnoredWithoutOpportunism: plain policies see no effect from
// idle events.
func TestIdleTicksIgnoredWithoutOpportunism(t *testing.T) {
	base := oo7.SmallPrime(3)
	withIdle := base
	withIdle.IdleBetweenPhases = 500

	run := func(p oo7.Params) *Result {
		tr, err := oo7.FullTrace(p, 8)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := core.NewFixedRate(300)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(base), run(withIdle)
	if len(a.Collections) != len(b.Collections) || a.Final != b.Final {
		t.Errorf("idle ticks changed a non-opportunistic run: %d/%d collections, %+v vs %+v",
			len(a.Collections), len(b.Collections), a.Final, b.Final)
	}
}

// TestCoupledPolicyEndToEnd: the §5 coupled policy runs the full workload
// and spends I/O in proportion to garbage pressure, landing between its
// bounds.
func TestCoupledPolicyEndToEnd(t *testing.T) {
	tr := smallTrace(t, 3, 8)
	pol, err := core.NewCoupled(core.CoupledConfig{IOFrac: 0.10, GarbFrac: 0.10}, core.OracleEstimator{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("coupled: gcio=%.4f garbage=%.4f collections=%d",
		res.GCIOFrac, res.GarbageFrac, len(res.Collections))
	if len(res.Collections) < 10 {
		t.Fatalf("too few collections: %d", len(res.Collections))
	}
	if res.GCIOFrac <= 0.02 || res.GCIOFrac >= 0.5 {
		t.Errorf("coupled gcio share %.4f outside sane bounds", res.GCIOFrac)
	}
	// Compared with plain SAIO at the same nominal share, the coupled
	// policy should hold garbage lower (it spends harder while garbage is
	// above goal).
	saio, err := core.NewSAIO(core.SAIOConfig{Frac: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	s2, err := New(Config{Policy: saio})
	if err != nil {
		t.Fatal(err)
	}
	res2, err := s2.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("plain SAIO: gcio=%.4f garbage=%.4f", res2.GCIOFrac, res2.GarbageFrac)
	if res.GarbageFrac >= res2.GarbageFrac {
		t.Errorf("coupled garbage %.4f not below plain SAIO %.4f", res.GarbageFrac, res2.GarbageFrac)
	}
}
