package sim

import (
	"strings"
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/gc"
	"odbgc/internal/oo7"
	"odbgc/internal/storage"
	"odbgc/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{}); err == nil {
		t.Error("missing policy accepted")
	}
	pol, _ := core.NewFixedRate(100)
	if _, err := New(Config{Policy: pol, Storage: storage.Config{PageSize: -1, PagesPerPartition: 1, BufferPages: 1}}); err == nil {
		t.Error("bad storage config accepted")
	}
}

func TestNeverCollectBaseline(t *testing.T) {
	tr := smallTrace(t, 3, 6)
	s, err := New(Config{Policy: core.NeverCollect{}})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collections) != 0 {
		t.Fatalf("NeverCollect ran %d collections", len(res.Collections))
	}
	if res.Final.GCIO() != 0 {
		t.Errorf("GC I/O without collections: %d", res.Final.GCIO())
	}
	if res.TotalReclaimed != 0 {
		t.Errorf("reclaimed %d bytes without collections", res.TotalReclaimed)
	}
	// All garbage ever created is still in the database.
	if res.FinalGarbage != int(res.TotalGarbage) {
		t.Errorf("final garbage %d != total created %d", res.FinalGarbage, res.TotalGarbage)
	}
	// With zero collections, the whole run is the measurement window.
	if res.EffectivePreamble != 0 || !res.MeasurementStarted {
		t.Errorf("preamble = %d, started = %v", res.EffectivePreamble, res.MeasurementStarted)
	}
}

func TestAdaptivePreamble(t *testing.T) {
	tr := smallTrace(t, 3, 6)
	// A huge fixed interval yields very few collections; the effective
	// preamble must shrink to half of them.
	pol, err := core.NewFixedRate(4000)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol, PreambleCollections: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Collections) >= 20 {
		t.Fatalf("setup: expected few collections, got %d", len(res.Collections))
	}
	if want := len(res.Collections) / 2; res.EffectivePreamble != want {
		t.Errorf("effective preamble = %d, want %d", res.EffectivePreamble, want)
	}
	if !res.MeasurementStarted {
		t.Error("measurement window empty")
	}
}

func TestPreambleDisabled(t *testing.T) {
	tr := smallTrace(t, 3, 6)
	pol, err := core.NewFixedRate(200)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol, PreambleCollections: -1})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.EffectivePreamble != 0 {
		t.Errorf("preamble = %d with preamble disabled", res.EffectivePreamble)
	}
	if res.MeasuredIO != res.Final {
		t.Errorf("measured I/O %+v != final %+v", res.MeasuredIO, res.Final)
	}
}

func TestRunManyAggregates(t *testing.T) {
	traces, err := GenerateTraces(oo7.SmallPrime(3), 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := RunMany(RunnerConfig{
		Traces: traces,
		MakePolicy: func(int) (core.RatePolicy, error) {
			return core.NewSAIO(core.SAIOConfig{Frac: 0.20})
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(mr.Runs) != 3 {
		t.Fatalf("runs = %d", len(mr.Runs))
	}
	if mr.GCIO.N != 3 {
		t.Errorf("GCIO aggregate over %d runs", mr.GCIO.N)
	}
	if mr.GCIO.Min > mr.GCIO.Mean || mr.GCIO.Mean > mr.GCIO.Max {
		t.Errorf("aggregate ordering broken: %+v", mr.GCIO)
	}
	if mr.GCIO.Mean < 0.15 || mr.GCIO.Mean > 0.25 {
		t.Errorf("SAIO 20%%: mean achieved %.4f", mr.GCIO.Mean)
	}
}

func TestRunManyValidation(t *testing.T) {
	if _, err := RunMany(RunnerConfig{}); err == nil {
		t.Error("empty config accepted")
	}
	traces, err := GenerateTraces(oo7.SmallPrime(3), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunMany(RunnerConfig{Traces: traces}); err == nil {
		t.Error("missing MakePolicy accepted")
	}
}

func TestRunManyCustomSelection(t *testing.T) {
	traces, err := GenerateTraces(oo7.SmallPrime(3), 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	mr, err := RunMany(RunnerConfig{
		Traces: traces,
		MakePolicy: func(int) (core.RatePolicy, error) {
			return core.NewFixedRate(300)
		},
		MakeSelection: func(run int) (gc.SelectionPolicy, error) {
			return gc.NewSelectionPolicy("round-robin", int64(run))
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if mr.Runs[0].SelectionName != "round-robin" {
		t.Errorf("selection = %q", mr.Runs[0].SelectionName)
	}
}

// TestSelectionPolicyMatters: UPDATEDPOINTER should reclaim at least as
// much garbage as round-robin selection at the same collection rate.
func TestSelectionPolicyMatters(t *testing.T) {
	tr := smallTrace(t, 3, 6)
	run := func(selName string) uint64 {
		pol, err := core.NewFixedRate(300)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := gc.NewSelectionPolicy(selName, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Policy: pol, Selection: sel})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalReclaimed
	}
	up := run("updated-pointer")
	rr := run("round-robin")
	t.Logf("reclaimed: updated-pointer %d, round-robin %d", up, rr)
	if up < rr {
		t.Errorf("updated-pointer (%d) reclaimed less than round-robin (%d)", up, rr)
	}
}

func TestRunRejectsCorruptTrace(t *testing.T) {
	tr := &trace.Trace{}
	tr.Append(trace.Event{Kind: trace.KindAccess, OID: 42}) // access before create
	pol, _ := core.NewFixedRate(100)
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.Run(tr)
	if err == nil || !strings.Contains(err.Error(), "absent") {
		t.Errorf("corrupt trace error = %v", err)
	}
}

func TestGenerateTracesSeeds(t *testing.T) {
	traces, err := GenerateTraces(oo7.SmallPrime(3), 100, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(traces) != 2 {
		t.Fatalf("traces = %d", len(traces))
	}
	if traces[0].Len() == 0 || traces[1].Len() == 0 {
		t.Error("empty traces")
	}
	// Different seeds should give (at least slightly) different traces.
	same := traces[0].Len() == traces[1].Len()
	if same {
		for i := range traces[0].Events {
			if traces[0].Events[i].String() != traces[1].Events[i].String() {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}
