package sim

import (
	"math"
	"testing"

	"odbgc/internal/core"
)

// TestSAGAOracleHoldsTargetThroughPhases asserts the paper's core claim
// (Figures 5/6): with exact garbage information, the controller holds the
// requested garbage level through both reorganizations, including the
// declustering one.
func TestSAGAOracleHoldsTargetThroughPhases(t *testing.T) {
	tr := smallTrace(t, 3, 2)
	pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, core.OracleEstimator{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if res.GarbageFrac < 0.07 || res.GarbageFrac > 0.13 {
		t.Errorf("mean garbage %.4f, want ≈ 0.10", res.GarbageFrac)
	}
	// Post-preamble, the per-collection actual garbage fraction should sit
	// in a tight band around the target for the vast majority of
	// collections.
	out := 0
	n := 0
	for _, c := range res.Collections[res.EffectivePreamble:] {
		n++
		if c.ActualGarbageFrac < 0.05 || c.ActualGarbageFrac > 0.15 {
			out++
		}
	}
	if n == 0 {
		t.Fatal("no post-preamble collections")
	}
	if frac := float64(out) / float64(n); frac > 0.10 {
		t.Errorf("%.0f%% of collections outside the 5-15%% band (want <= 10%%)", frac*100)
	}
}

// TestEstimatorQualityOrdering asserts Figure 5's ordering at 10%:
// oracle tracks best, FGS/HB next, CGS/CB clearly worst.
func TestEstimatorQualityOrdering(t *testing.T) {
	tr := smallTrace(t, 3, 2)
	errFor := func(estName string) float64 {
		est, err := core.NewEstimator(estName, 0.8)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return math.Abs(res.GarbageFrac - 0.10)
	}
	oracle := errFor("oracle")
	fgs := errFor("fgs-hb")
	cgs := errFor("cgs-cb")
	t.Logf("abs error at 10%% request: oracle=%.4f fgs-hb=%.4f cgs-cb=%.4f", oracle, fgs, cgs)
	if !(oracle < fgs && fgs < cgs) {
		t.Errorf("estimator quality ordering violated: oracle=%.4f fgs=%.4f cgs=%.4f", oracle, fgs, cgs)
	}
	if oracle > 0.02 {
		t.Errorf("oracle error %.4f too large", oracle)
	}
}

// TestEstimateTracksActualFGSHB asserts Figure 6b: the FGS/HB estimate
// follows the actual garbage closely across phase changes.
func TestEstimateTracksActualFGSHB(t *testing.T) {
	tr := smallTrace(t, 3, 2)
	est, err := core.NewFGSHB(0.8)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	var sumAbs float64
	n := 0
	for _, c := range res.Collections[res.EffectivePreamble:] {
		sumAbs += math.Abs(c.EstimatedGarbageFrac - c.ActualGarbageFrac)
		n++
	}
	if n == 0 {
		t.Fatal("no post-preamble collections")
	}
	mad := sumAbs / float64(n)
	t.Logf("FGS/HB mean |estimate - actual| = %.4f over %d collections", mad, n)
	if mad > 0.06 {
		t.Errorf("FGS/HB estimate does not track actual: MAD %.4f", mad)
	}
}

// TestSAGAIdlesDuringTraverse asserts §4.1.2: SAGA time is pointer
// overwrites, so no collections are scheduled during the read-only phase.
func TestSAGAIdlesDuringTraverse(t *testing.T) {
	tr := smallTrace(t, 3, 4)
	pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, core.OracleEstimator{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	var traverseAt, reorg2At int = -1, -1
	for _, m := range res.Phases {
		switch m.Label {
		case "Traverse":
			traverseAt = m.Collections
		case "Reorg2":
			reorg2At = m.Collections
		}
	}
	if traverseAt < 0 || reorg2At < 0 {
		t.Fatalf("phases missing: %+v", res.Phases)
	}
	if traverseAt != reorg2At {
		t.Errorf("SAGA ran %d collections during the read-only Traverse phase", reorg2At-traverseAt)
	}
}

// TestSAIOCollectsDuringTraverse: SAIO's clock is I/O, which does advance
// during Traverse, so it keeps collecting leftover garbage.
func TestSAIOCollectsDuringTraverse(t *testing.T) {
	tr := smallTrace(t, 3, 4)
	pol, err := core.NewSAIO(core.SAIOConfig{Frac: 0.30})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	var traverseAt, reorg2At int = -1, -1
	for _, m := range res.Phases {
		switch m.Label {
		case "Traverse":
			traverseAt = m.Collections
		case "Reorg2":
			reorg2At = m.Collections
		}
	}
	if reorg2At <= traverseAt {
		t.Errorf("SAIO ran no collections during Traverse (%d..%d)", traverseAt, reorg2At)
	}
}

// TestReorg2YieldDrops asserts Figure 7b's observation: the declustering
// reorganization produces less garbage per collection than Reorg1.
func TestReorg2YieldDrops(t *testing.T) {
	tr := smallTrace(t, 3, 2)
	est, err := core.NewFGSHB(0.8)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 float64
	var n1, n2 int
	for _, c := range res.Collections {
		switch c.Phase {
		case "Reorg1":
			r1 += float64(c.ReclaimedBytes)
			n1++
		case "Reorg2":
			r2 += float64(c.ReclaimedBytes)
			n2++
		}
	}
	if n1 < 5 || n2 < 5 {
		t.Fatalf("too few collections per phase: %d/%d", n1, n2)
	}
	y1, y2 := r1/float64(n1), r2/float64(n2)
	t.Logf("mean yield: Reorg1 %.0f B (%d colls), Reorg2 %.0f B (%d colls)", y1, n1, y2, n2)
	if y2 >= y1 {
		t.Errorf("Reorg2 yield (%.0f) not below Reorg1 yield (%.0f)", y2, y1)
	}
}

// TestHistoryParameterTradeoff asserts Figure 7a: low h is responsive but
// noisy, high h is sluggish; h = 0.8 achieves the best (or near-best)
// overall accuracy.
func TestHistoryParameterTradeoff(t *testing.T) {
	tr := smallTrace(t, 3, 2)
	mad := func(history float64) float64 {
		est, err := core.NewFGSHB(history)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		var sum float64
		n := 0
		for _, c := range res.Collections[res.EffectivePreamble:] {
			sum += math.Abs(c.EstimatedGarbageFrac - c.ActualGarbageFrac)
			n++
		}
		if n == 0 {
			return math.Inf(1)
		}
		return sum / float64(n)
	}
	m50, m80, m95 := mad(0.50), mad(0.80), mad(0.95)
	t.Logf("estimate MAD: h=0.50 %.4f, h=0.80 %.4f, h=0.95 %.4f", m50, m80, m95)
	if m80 > m50 && m80 > m95 {
		t.Errorf("h=0.80 (%.4f) worse than both extremes (%.4f, %.4f)", m80, m50, m95)
	}
}
