package sim

import (
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/oo7"
	"odbgc/internal/trace"
)

func smallTrace(t testing.TB, conn int, seed int64) *trace.Trace {
	t.Helper()
	tr, err := oo7.FullTrace(oo7.SmallPrime(conn), seed)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestEndToEndSAIO(t *testing.T) {
	tr := smallTrace(t, 3, 1)
	pol, err := core.NewSAIO(core.SAIOConfig{Frac: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol, CheckEvery: 10000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("collections=%d totalIO=%d gcioFrac=%.4f garbFrac=%.4f partitions=%d reclaimed=%d/%d",
		len(res.Collections), res.Final.TotalIO(), res.GCIOFrac, res.GarbageFrac,
		res.Partitions, res.TotalReclaimed, res.TotalGarbage)
	if !res.MeasurementStarted {
		t.Fatal("measurement window never started")
	}
	if len(res.Collections) < 10 {
		t.Fatalf("too few collections: %d", len(res.Collections))
	}
	// SAIO at 10% should land near 10%.
	if res.GCIOFrac < 0.05 || res.GCIOFrac > 0.20 {
		t.Errorf("SAIO 10%%: achieved %.4f, want roughly 0.10", res.GCIOFrac)
	}
}

func TestEndToEndSAGAOracle(t *testing.T) {
	tr := smallTrace(t, 3, 2)
	pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, core.OracleEstimator{})
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol, CheckEvery: 10000})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("collections=%d gcioFrac=%.4f garbFrac=%.4f [%0.4f,%.4f] reclaimed=%d/%d",
		len(res.Collections), res.GCIOFrac, res.GarbageFrac,
		res.GarbageFracMin, res.GarbageFracMax, res.TotalReclaimed, res.TotalGarbage)
	if !res.MeasurementStarted {
		t.Fatal("measurement window never started")
	}
	if res.GarbageFrac < 0.05 || res.GarbageFrac > 0.16 {
		t.Errorf("SAGA oracle 10%%: achieved %.4f, want roughly 0.10", res.GarbageFrac)
	}
}

func TestEndToEndFixedRate(t *testing.T) {
	tr := smallTrace(t, 3, 3)
	var prevIO, prevReclaimed float64
	for i, interval := range []int{50, 800} {
		pol, err := core.NewFixedRate(interval)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		t.Logf("fixed(%d): collections=%d totalIO=%d reclaimed=%d",
			interval, len(res.Collections), res.Final.TotalIO(), res.TotalReclaimed)
		if i == 1 {
			// Figure 1's tradeoff: collecting less often costs less I/O and
			// reclaims less garbage.
			if float64(res.Final.TotalIO()) >= prevIO {
				t.Errorf("fixed(800) total I/O %d not below fixed(50) %v", res.Final.TotalIO(), prevIO)
			}
			if float64(res.TotalReclaimed) >= prevReclaimed {
				t.Errorf("fixed(800) reclaimed %d not below fixed(50) %v", res.TotalReclaimed, prevReclaimed)
			}
		}
		prevIO = float64(res.Final.TotalIO())
		prevReclaimed = float64(res.TotalReclaimed)
	}
}
