package sim

import (
	"errors"
	"fmt"
	"runtime/debug"
	"time"
)

// ErrTimeout is returned (wrapped) by RunGuarded when the watchdog fires.
var ErrTimeout = errors.New("sim: watchdog timeout")

// RunGuarded replays events like RunStream but inside a crash barrier: a
// panic anywhere in the simulation becomes an error with the stack attached,
// and a run exceeding the timeout returns ErrTimeout instead of hanging the
// caller. This is the entry point chaos tests and batch harnesses use — no
// fault profile, however hostile, can take down the process through it.
//
// On timeout the simulation goroutine is abandoned (Go cannot kill it); the
// Simulator must be discarded. A timeout of zero disables the watchdog.
func (s *Simulator) RunGuarded(src EventSource, timeout time.Duration) (*Result, error) {
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("sim: panic during guarded run: %v\n%s", r, debug.Stack())}
			}
		}()
		res, err := s.RunStream(src)
		ch <- outcome{res: res, err: err}
	}()

	if timeout <= 0 {
		o := <-ch
		return o.res, o.err
	}
	timer := time.NewTimer(timeout) //lint:allow detrand the watchdog measures real wall-clock time, not simulated time
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timer.C:
		return nil, fmt.Errorf("sim: run exceeded %v: %w", timeout, ErrTimeout)
	}
}
