package sim

import (
	"context"
	"fmt"
	"runtime/debug"
	"time"

	"odbgc/internal/simerr"
)

// ErrTimeout is returned (wrapped) by RunGuarded when the watchdog fires.
// It is the taxonomy's timeout sentinel, so errors.Is(err, sim.ErrTimeout)
// and errors.Is(err, simerr.ErrTimeout) are the same test.
var ErrTimeout = simerr.ErrTimeout

// RunGuarded replays events like RunStream but inside a crash barrier: a
// panic anywhere in the simulation becomes an error with the stack attached,
// and a run exceeding the timeout returns ErrTimeout instead of hanging the
// caller. This is the entry point chaos tests and batch harnesses use — no
// fault profile, however hostile, can take down the process through it.
//
// On timeout the simulation goroutine is abandoned (Go cannot kill it); the
// Simulator must be discarded. A timeout of zero disables the watchdog.
func (s *Simulator) RunGuarded(src EventSource, timeout time.Duration) (*Result, error) {
	return s.RunGuardedContext(context.Background(), src, timeout)
}

// RunGuardedContext is RunGuarded under a caller-supplied context: the run
// also ends when ctx is cancelled, cooperatively at the next event boundary
// or — if the simulation is wedged inside a single step — by abandoning its
// goroutine. Cancellation classifies as simerr.ErrCanceled; an expired
// deadline (the watchdog's or the context's) as simerr.ErrTimeout.
func (s *Simulator) RunGuardedContext(ctx context.Context, src EventSource, timeout time.Duration) (*Result, error) {
	type outcome struct {
		res *Result
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		defer func() {
			if r := recover(); r != nil {
				ch <- outcome{err: fmt.Errorf("sim: panic during guarded run: %v\n%s", r, debug.Stack())}
			}
		}()
		res, err := s.RunStreamContext(ctx, src)
		ch <- outcome{res: res, err: err}
	}()

	var timerC <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout) //lint:allow detrand the watchdog measures real wall-clock time, not simulated time
		defer timer.Stop()
		timerC = timer.C
	}
	select {
	case o := <-ch:
		return o.res, o.err
	case <-timerC:
		return nil, fmt.Errorf("sim: run exceeded %v: %w", timeout, ErrTimeout)
	case <-ctx.Done():
		// Prefer the simulation's own exit if it raced us to the line;
		// otherwise abandon the goroutine.
		select {
		case o := <-ch:
			return o.res, o.err
		default:
		}
		return nil, fmt.Errorf("sim: guarded run: %w", simerr.FromContext(ctx.Err()))
	}
}
