package sim

import (
	"bytes"
	"strings"
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/metrics"
	"odbgc/internal/obs"
	"odbgc/internal/obs/span"
	"odbgc/internal/trace"
)

// runForArtifacts steps tr through a fresh simulator, serializing a
// checkpoint at the first collection-safe point past the midpoint and
// rendering the per-collection series as CSV at the end. These are the two
// artifacts users persist (checkpoint files, experiment CSVs), so both must
// be byte-deterministic.
func runForArtifacts(t *testing.T, tr *trace.Trace, mkConfig func() Config) (ckpt []byte, csv string) {
	t.Helper()
	s, err := New(mkConfig())
	if err != nil {
		t.Fatal(err)
	}
	half := len(tr.Events) / 2
	i := 0
	for ; i < len(tr.Events) && (i < half || !s.collectSafe); i++ {
		if err := s.Step(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	cp, err := s.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteCheckpoint(&buf, cp); err != nil {
		t.Fatal(err)
	}
	for ; i < len(tr.Events); i++ {
		if err := s.Step(&tr.Events[i]); err != nil {
			t.Fatal(err)
		}
	}
	res, err := s.Finish()
	if err != nil {
		t.Fatal(err)
	}
	garb := &metrics.Series{Name: "garbage_frac"}
	recl := &metrics.Series{Name: "reclaimed_bytes"}
	for _, c := range res.Collections {
		garb.Add(float64(c.Index), c.ActualGarbageFrac)
		recl.Add(float64(c.Index), float64(c.ReclaimedBytes))
	}
	return buf.Bytes(), metrics.CSV("collection", garb, recl)
}

// TestRepeatedRunByteIdentical runs the identical trace through identically
// configured simulators twice and asserts the serialized checkpoint and the
// rendered CSV are byte-for-byte equal. Any map-iteration-order dependence
// or unseeded randomness anywhere in the pipeline (heap, policy, metrics,
// snapshot encoders) shows up here as a flaky diff — this is the runtime
// counterpart of the maporder and detrand analyzers.
func TestRepeatedRunByteIdentical(t *testing.T) {
	tr := smallTrace(t, 3, 19)
	mkConfig := func() Config {
		est, err := core.NewFGSHB(0.8)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Policy: pol}
	}
	ckptA, csvA := runForArtifacts(t, tr, mkConfig)
	ckptB, csvB := runForArtifacts(t, tr, mkConfig)

	if !bytes.Equal(ckptA, ckptB) {
		t.Error("identical runs serialized different checkpoint bytes")
	}
	if csvA != csvB {
		t.Errorf("identical runs rendered different CSVs:\n--- A ---\n%s--- B ---\n%s", csvA, csvB)
	}
	// The artifacts must be substantive, not trivially equal empties.
	if len(ckptA) == 0 {
		t.Error("empty checkpoint")
	}
	if lines := strings.Count(csvA, "\n"); lines < 2 {
		t.Errorf("CSV has %d lines; want a header plus at least one collection row", lines)
	}
}

// TestObserverPathDeterministic covers the observability layer's two
// determinism promises: identical-seed runs with events enabled write
// byte-identical JSONL logs, and attaching an observer leaves the simulation's
// persisted artifacts (checkpoint bytes, CSV) byte-identical to a run with a
// nil observer — the hooks are pure taps, never inputs.
func TestObserverPathDeterministic(t *testing.T) {
	tr := smallTrace(t, 3, 19)
	mkConfig := func() Config {
		est, err := core.NewFGSHB(0.8)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Policy: pol, ProgressEvery: 50}
	}
	observed := func() (ckpt []byte, csv string, events []byte) {
		var buf bytes.Buffer
		w := obs.NewJSONLWriter(&buf)
		ckpt, csv = runForArtifacts(t, tr, func() Config {
			cfg := mkConfig()
			cfg.Observer = w
			return cfg
		})
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		return ckpt, csv, buf.Bytes()
	}

	ckptA, csvA, eventsA := observed()
	ckptB, csvB, eventsB := observed()
	if !bytes.Equal(eventsA, eventsB) {
		t.Error("identical observed runs wrote different event logs")
	}
	if len(eventsA) == 0 {
		t.Fatal("observed run wrote no events")
	}
	envs, err := obs.ReadAll(bytes.NewReader(eventsA))
	if err != nil {
		t.Fatalf("event log does not validate: %v", err)
	}
	seen := map[string]bool{}
	for _, e := range envs {
		seen[e.Type] = true
	}
	for _, want := range []string{obs.TypeRunStart, obs.TypePhase, obs.TypeDecision,
		obs.TypeCollection, obs.TypeCheckpoint, obs.TypeProgress} {
		if !seen[want] {
			t.Errorf("event log has no %q event", want)
		}
	}

	ckptPlain, csvPlain := runForArtifacts(t, tr, mkConfig)
	if !bytes.Equal(ckptA, ckptPlain) || !bytes.Equal(ckptA, ckptB) {
		t.Error("observer changed the serialized checkpoint bytes")
	}
	if csvA != csvPlain || csvA != csvB {
		t.Error("observer changed the rendered CSV")
	}
}

// TestSpanPathDeterministic makes the same two promises for the span tap: a
// recorder-enabled run dumps byte-identical span JSONL across identical-seed
// runs, and attaching a recorder leaves the checkpoint and CSV byte-identical
// to the bare run — the flight recorder observes the collector, it never
// feeds back into it. This is also the proof behind the "free when disabled"
// claim: the bare run exercises the nil-recorder fast path at every
// collection.
func TestSpanPathDeterministic(t *testing.T) {
	tr := smallTrace(t, 3, 19)
	mkConfig := func() Config {
		est, err := core.NewFGSHB(0.8)
		if err != nil {
			t.Fatal(err)
		}
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
		if err != nil {
			t.Fatal(err)
		}
		return Config{Policy: pol}
	}
	traced := func() (ckpt []byte, csv string, dump []byte) {
		rec := span.NewRecorder(span.Config{Capacity: 4096})
		ckpt, csv = runForArtifacts(t, tr, func() Config {
			cfg := mkConfig()
			cfg.Spans = rec
			return cfg
		})
		var buf bytes.Buffer
		if _, err := rec.Dump(&buf); err != nil {
			t.Fatal(err)
		}
		return ckpt, csv, buf.Bytes()
	}

	ckptA, csvA, dumpA := traced()
	ckptB, csvB, dumpB := traced()
	if !bytes.Equal(dumpA, dumpB) {
		t.Error("identical traced runs dumped different span bytes")
	}
	spans, err := span.ReadAll(bytes.NewReader(dumpA))
	if err != nil {
		t.Fatalf("span dump does not validate: %v", err)
	}
	if len(spans) == 0 {
		t.Fatal("traced run recorded no spans")
	}
	if dangling, err := span.CheckAll(spans); err != nil || dangling != 0 {
		t.Fatalf("CheckAll = (%d, %v), want (0, nil)", dangling, err)
	}
	for _, sp := range spans {
		if sp.Kind != span.KindGC {
			t.Fatalf("sim emitted a non-GC span: %+v", sp)
		}
		if sp.Stages[span.StageService] <= 0 || sp.ReclaimedObjects == 0 {
			t.Fatalf("collection span missing pause/reclaim data: %+v", sp)
		}
	}

	ckptPlain, csvPlain := runForArtifacts(t, tr, mkConfig)
	if !bytes.Equal(ckptA, ckptPlain) || !bytes.Equal(ckptA, ckptB) {
		t.Error("span recorder changed the serialized checkpoint bytes")
	}
	if csvA != csvPlain || csvA != csvB {
		t.Error("span recorder changed the rendered CSV")
	}
}
