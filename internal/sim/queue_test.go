package sim

import (
	"testing"

	"odbgc/internal/core"
	"odbgc/internal/gc"
	"odbgc/internal/trace"
	"odbgc/internal/workload"
)

// TestQueueWorkloadControl: the sliding-window workload concentrates
// garbage in old partitions while every overwrite hits the anchor object's
// partition — a stress case for UPDATEDPOINTER selection, since overwrite
// counts stop correlating with garbage location. The policies must still
// hold their targets when paired with a selection policy that can find the
// garbage (round-robin), and the experiment quantifies the damage when
// they cannot.
func TestQueueWorkloadControl(t *testing.T) {
	p := workload.DefaultQueue()
	p.WindowEntries = 1000
	p.Appends = 6000
	tr, err := workload.Queue(p, 1)
	if err != nil {
		t.Fatal(err)
	}

	run := func(selName string) *Result {
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, core.OracleEstimator{})
		if err != nil {
			t.Fatal(err)
		}
		sel, err := gc.NewSelectionPolicy(selName, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Policy: pol, Selection: sel})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	rr := run("round-robin")
	up := run("updated-pointer")
	orc := run("oracle-max-garbage")
	t.Logf("garbage held: round-robin %.4f, updated-pointer %.4f, oracle-selection %.4f",
		rr.GarbageFrac, up.GarbageFrac, orc.GarbageFrac)
	// The FIFO log defeats greedy selection: dead entries form a pinning
	// chain across partitions (each dead entry's forward pointer holds a
	// remembered-set entry on the next partition's head), so only the
	// unpinned prefix segment is ever reclaimable. A greedy policy
	// (max-garbage, max-overwrites) livelocks re-collecting a fully pinned
	// partition at zero yield, while round-robin's sweep frees successive
	// segments every cycle. Assert that structure.
	if rr.GarbageFrac > 0.30 {
		t.Errorf("round-robin selection collapsed on the queue workload: %.4f", rr.GarbageFrac)
	}
	if up.GarbageFrac < rr.GarbageFrac+0.10 {
		t.Errorf("updated-pointer (%.4f) unexpectedly matched round-robin (%.4f); pinning chain gone?",
			up.GarbageFrac, rr.GarbageFrac)
	}
	if orc.GarbageFrac < rr.GarbageFrac+0.10 {
		t.Errorf("greedy max-garbage (%.4f) unexpectedly matched round-robin (%.4f); livelock gone?",
			orc.GarbageFrac, rr.GarbageFrac)
	}
}

// TestHybridSelectionRepairsQueueLivelock: the hybrid policy (greedy with a
// sweep fallback on zero yield) must approach round-robin's control on the
// FIFO log while remaining greedy-competitive on OO7.
func TestHybridSelectionRepairsQueueLivelock(t *testing.T) {
	p := workload.DefaultQueue()
	p.WindowEntries = 1000
	p.Appends = 6000
	qtr, err := workload.Queue(p, 1)
	if err != nil {
		t.Fatal(err)
	}
	run := func(tr *trace.Trace, selName string) *Result {
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, core.OracleEstimator{})
		if err != nil {
			t.Fatal(err)
		}
		sel, err := gc.NewSelectionPolicy(selName, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Policy: pol, Selection: sel})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	qh := run(qtr, "hybrid")
	qrr := run(qtr, "round-robin")
	qup := run(qtr, "updated-pointer")
	t.Logf("queue garbage: hybrid %.4f, round-robin %.4f, updated-pointer %.4f",
		qh.GarbageFrac, qrr.GarbageFrac, qup.GarbageFrac)
	if qh.GarbageFrac > qrr.GarbageFrac+0.08 {
		t.Errorf("hybrid (%.4f) did not approach round-robin (%.4f) on the queue", qh.GarbageFrac, qrr.GarbageFrac)
	}
	if qh.GarbageFrac > qup.GarbageFrac-0.20 {
		t.Errorf("hybrid (%.4f) did not clearly beat greedy (%.4f) on the queue", qh.GarbageFrac, qup.GarbageFrac)
	}

	// On OO7, hybrid must reclaim at least ~90% of what greedy does at a
	// fixed rate (it only deviates after zero-yield collections).
	otr := smallTrace(t, 3, 6)
	reclaim := func(selName string) uint64 {
		pol, err := core.NewFixedRate(300)
		if err != nil {
			t.Fatal(err)
		}
		sel, err := gc.NewSelectionPolicy(selName, 1)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Policy: pol, Selection: sel})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(otr)
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalReclaimed
	}
	hy, up := reclaim("hybrid"), reclaim("updated-pointer")
	t.Logf("OO7 reclaimed: hybrid %d, updated-pointer %d", hy, up)
	if float64(hy) < 0.9*float64(up) {
		t.Errorf("hybrid lost too much on OO7: %d vs %d", hy, up)
	}
}
