package sim

import (
	"bytes"
	"encoding/gob"
	"fmt"
	"io"
	"os"
	"path/filepath"

	"odbgc/internal/core"
	"odbgc/internal/fault"
	"odbgc/internal/gc"
	"odbgc/internal/metrics"
	"odbgc/internal/obs"
	"odbgc/internal/simerr"
	"odbgc/internal/storage"
)

// Checkpoint is a simulation's complete mid-run state: the heap (which
// embeds the object store and physical storage), the policy and selection
// controller state, every metrics accumulator, and the fault injector's
// PRNG. Resuming from a checkpoint and replaying the remaining events
// produces a Result bit-identical to the uninterrupted run.
//
// The trace itself is not part of the checkpoint — the resuming caller
// replays the same trace and skips the first Step events.
type Checkpoint struct {
	// Step is the event cursor: how many events the run had applied.
	Step        int
	CurPhase    string
	CollectSafe bool

	Heap      *gc.HeapSnapshot
	Policy    []byte // core.SnapshotComponent of the rate policy
	Selection []byte // core.SnapshotComponent of the selection policy

	// Metrics accumulators.
	PhaseOpen   bool
	PhaseAcc    PhaseSummary
	PhaseGarb   metrics.MeanState
	PhaseIOBase storage.IOStats
	GarbBuckets []metrics.MeanState

	// Injector is present when the run has storage faults configured.
	Injector *fault.InjectorState

	// Result is the summary-in-progress (events, collection records, phase
	// marks). Final totals are recomputed by Finish.
	Result *Result
}

func gobClone[T any](v T) (T, error) {
	var out T
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return out, err
	}
	if err := gob.NewDecoder(&buf).Decode(&out); err != nil {
		return out, err
	}
	return out, nil
}

// Checkpoint captures the simulator's state. It can be taken between any two
// Step calls at a collection-safe point; checkpointing mid-construction (the
// event just applied was a create or initializing store) is rejected because
// the restored heap could not pass its reachability validation.
func (s *Simulator) Checkpoint() (*Checkpoint, error) {
	if !s.collectSafe {
		return nil, fmt.Errorf("sim: checkpoint at event %d is mid-construction; step past the initializing stores first", s.step)
	}
	policy, err := core.SnapshotComponent(s.cfg.Policy)
	if err != nil {
		return nil, fmt.Errorf("sim: snapshotting policy: %w", err)
	}
	selection, err := core.SnapshotComponent(s.cfg.Selection)
	if err != nil {
		return nil, fmt.Errorf("sim: snapshotting selection: %w", err)
	}
	// Deep-copy the in-progress result so the live run and the checkpoint do
	// not share slice backing arrays.
	res, err := gobClone(s.res)
	if err != nil {
		return nil, fmt.Errorf("sim: cloning result: %w", err)
	}
	cp := &Checkpoint{
		Step:        s.step,
		CurPhase:    s.curPhase,
		CollectSafe: s.collectSafe,
		Heap:        s.heap.Snapshot(),
		Policy:      policy,
		Selection:   selection,
		PhaseGarb:   s.phaseGarb.State(),
		PhaseIOBase: s.phaseIOBase,
		Result:      res,
	}
	if s.phaseAcc != nil {
		cp.PhaseOpen = true
		cp.PhaseAcc = *s.phaseAcc
	}
	for _, m := range s.garbBuckets {
		cp.GarbBuckets = append(cp.GarbBuckets, m.State())
	}
	if s.injector != nil {
		st := s.injector.Snapshot()
		cp.Injector = &st
	}
	if s.obs != nil {
		s.obs.ObserveCheckpoint(obs.CheckpointMark{Step: s.step, Op: "save"})
	}
	return cp, nil
}

// Resume reconstructs a simulator from a checkpoint. The config must carry
// freshly constructed policy and selection components with the same
// configuration as the checkpointed run — Resume hands them their state
// back. Replay the same trace, skipping the first cp.Step events.
func Resume(cfg Config, cp *Checkpoint) (*Simulator, error) {
	if cp == nil || cp.Result == nil {
		return nil, fmt.Errorf("sim: nil checkpoint")
	}
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	// Policy and selection names encode their parameters, so a mismatch means
	// the caller is resuming under a different configuration than the run was
	// checkpointed with — the restored state would be silently wrong.
	if n := cfg.Policy.Name(); n != cp.Result.PolicyName {
		return nil, fmt.Errorf("sim: resume config builds policy %q but the checkpoint was taken with %q", n, cp.Result.PolicyName)
	}
	if n := cfg.Selection.Name(); n != cp.Result.SelectionName {
		return nil, fmt.Errorf("sim: resume config builds selection %q but the checkpoint was taken with %q", n, cp.Result.SelectionName)
	}
	heap, err := gc.RestoreHeap(cp.Heap)
	if err != nil {
		return nil, fmt.Errorf("sim: restoring heap: %w", err)
	}
	heap.SetPhysicalFixups(cfg.PhysicalFixups)
	if err := core.RestoreComponent(cfg.Policy, cp.Policy); err != nil {
		return nil, fmt.Errorf("sim: restoring policy state: %w", err)
	}
	if err := core.RestoreComponent(cfg.Selection, cp.Selection); err != nil {
		return nil, fmt.Errorf("sim: restoring selection state: %w", err)
	}
	res, err := gobClone(cp.Result)
	if err != nil {
		return nil, fmt.Errorf("sim: cloning result: %w", err)
	}
	s := &Simulator{
		cfg:         cfg,
		store:       heap.Store(),
		disk:        heap.Disk(),
		heap:        heap,
		curPhase:    cp.CurPhase,
		collectSafe: cp.CollectSafe,
		step:        cp.Step,
		phaseIOBase: cp.PhaseIOBase,
		res:         res,
	}
	s.phaseGarb, err = metrics.MeanFromState(cp.PhaseGarb)
	if err != nil {
		return nil, fmt.Errorf("sim: restoring phase accumulator: %w", err)
	}
	for i, st := range cp.GarbBuckets {
		m, err := metrics.MeanFromState(st)
		if err != nil {
			return nil, fmt.Errorf("sim: restoring garbage bucket %d: %w", i, err)
		}
		s.garbBuckets = append(s.garbBuckets, m)
	}
	if cp.PhaseOpen {
		acc := cp.PhaseAcc
		s.phaseAcc = &acc
	}
	if cfg.FaultProfile.Storage() {
		s.injector = fault.NewInjector(cfg.FaultProfile, cfg.FaultSeed)
		if cp.Injector != nil {
			if err := s.injector.Restore(*cp.Injector); err != nil {
				return nil, fmt.Errorf("sim: restoring fault injector: %w", err)
			}
		}
		s.disk.SetFaultInjector(s.injector)
		s.heap.SetRetry(cfg.Retry.Do)
	} else if cp.Injector != nil {
		return nil, fmt.Errorf("sim: checkpoint carries fault-injector state but the config has no storage faults")
	}
	s.installObserver()
	if s.obs != nil {
		s.obs.ObserveRunStart(s.runStart(cp.Step))
		s.obs.ObserveCheckpoint(obs.CheckpointMark{Step: cp.Step, Op: "resume"})
	}
	return s, nil
}

// WriteCheckpoint gob-encodes a checkpoint to w.
func WriteCheckpoint(w io.Writer, cp *Checkpoint) error {
	return gob.NewEncoder(w).Encode(cp)
}

// ReadCheckpoint decodes a checkpoint written by WriteCheckpoint. A torn or
// damaged stream returns an error classified as simerr.ErrCorruptCheckpoint;
// a decoder panic on hostile bytes is converted into the same class rather
// than escaping the library boundary.
func ReadCheckpoint(r io.Reader) (cp *Checkpoint, err error) {
	defer func() {
		if p := recover(); p != nil {
			cp, err = nil, simerr.WrapCorruptCheckpoint("decoding checkpoint",
				fmt.Errorf("decoder panic: %v", p))
		}
	}()
	var c Checkpoint
	if derr := gob.NewDecoder(r).Decode(&c); derr != nil {
		return nil, fmt.Errorf("sim: %w", simerr.WrapCorruptCheckpoint("decoding checkpoint", derr))
	}
	return &c, nil
}

// SaveCheckpoint writes a checkpoint to path atomically: the bytes land in a
// temporary file first and are renamed into place, so a crash mid-write
// leaves either the old checkpoint or none, never a torn one.
func SaveCheckpoint(path string, cp *Checkpoint) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".ckpt-*")
	if err != nil {
		return err
	}
	defer func() { _ = os.Remove(tmp.Name()) }()
	if err := WriteCheckpoint(tmp, cp); err != nil {
		_ = tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// LoadCheckpoint reads a checkpoint file written by SaveCheckpoint.
func LoadCheckpoint(path string) (*Checkpoint, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer func() { _ = f.Close() }()
	return ReadCheckpoint(f)
}
