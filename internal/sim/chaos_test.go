package sim

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"time"

	"odbgc/internal/core"
	"odbgc/internal/fault"
	"odbgc/internal/trace"
)

// sliceSource yields events from an in-memory trace.
type sliceSource struct {
	events []trace.Event
	i      int
}

func (s *sliceSource) Read() (trace.Event, error) {
	if s.i >= len(s.events) {
		return trace.Event{}, io.EOF
	}
	e := s.events[s.i]
	s.i++
	return e, nil
}

// panicSource panics on first read, standing in for a bug anywhere under the
// simulation loop.
type panicSource struct{}

func (panicSource) Read() (trace.Event, error) { panic("injected test panic") }

// stuckSource never returns, standing in for a hung input.
type stuckSource struct{}

func (stuckSource) Read() (trace.Event, error) {
	time.Sleep(time.Hour)
	return trace.Event{}, io.EOF
}

func TestRunGuardedConvertsPanic(t *testing.T) {
	pol, err := core.NewFixedRate(100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.RunGuarded(panicSource{}, time.Minute)
	if res != nil || err == nil {
		t.Fatalf("res=%v err=%v, want nil result and panic error", res, err)
	}
	if !strings.Contains(err.Error(), "injected test panic") {
		t.Fatalf("panic message lost: %v", err)
	}
}

func TestRunGuardedTimeout(t *testing.T) {
	pol, err := core.NewFixedRate(100)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	_, err = s.RunGuarded(stuckSource{}, 50*time.Millisecond)
	if !errors.Is(err, ErrTimeout) {
		t.Fatalf("err=%v, want ErrTimeout", err)
	}
}

// chaosPolicy builds the SAGA/FGS-HB policy used by the chaos suite, with
// the estimator signal corrupted when the profile asks for it.
func chaosPolicy(t *testing.T, profile fault.Profile, seed int64) core.RatePolicy {
	t.Helper()
	var est core.Estimator
	fgshb, err := core.NewFGSHB(0.8)
	if err != nil {
		t.Fatal(err)
	}
	est = fgshb
	if profile.Estimator() {
		est, err = fault.NewChaosEstimator(fgshb, profile, seed)
		if err != nil {
			t.Fatal(err)
		}
	}
	pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, est)
	if err != nil {
		t.Fatal(err)
	}
	return pol
}

// TestChaosProfilesNeverPanicOrHang drives every registered fault profile
// through a full run. The contract: a chaos run either finishes (possibly
// degraded) or fails with a structured error — it never panics and never
// hangs past the watchdog.
func TestChaosProfilesNeverPanicOrHang(t *testing.T) {
	tr := smallTrace(t, 3, 5)
	for _, name := range fault.ProfileNames() {
		t.Run(name, func(t *testing.T) {
			profile, err := fault.LookupProfile(name)
			if err != nil {
				t.Fatal(err)
			}
			s, err := New(Config{
				Policy:       chaosPolicy(t, profile, 101),
				FaultProfile: profile,
				FaultSeed:    77,
			})
			if err != nil {
				t.Fatal(err)
			}

			var src EventSource
			if profile.Trace() {
				var buf bytes.Buffer
				if err := trace.WriteAll(&buf, tr); err != nil {
					t.Fatal(err)
				}
				data := buf.Bytes()
				corrupted, err := fault.CorruptTrace(bytes.NewReader(data), int64(len(data)), profile, 5)
				if err != nil {
					t.Fatal(err)
				}
				rd, err := trace.NewReader(corrupted)
				if err != nil {
					t.Logf("reader rejected corrupt header (structured): %v", err)
					return
				}
				rd.Lenient = true
				src = rd
			} else {
				src = &sliceSource{events: tr.Events}
			}

			res, err := s.RunGuarded(src, 2*time.Minute)
			switch {
			case errors.Is(err, ErrTimeout):
				t.Fatalf("chaos run hung: %v", err)
			case err != nil && strings.Contains(err.Error(), "panic during guarded run"):
				t.Fatalf("panic escaped the library boundary: %v", err)
			case err != nil:
				t.Logf("structured failure (acceptable): %v", err)
			case res == nil:
				t.Fatal("nil result without error")
			default:
				t.Logf("finished: events=%d collections=%d garbFrac=%.4f",
					res.Events, len(res.Collections), res.GarbageFrac)
				if inj := s.Injector(); inj != nil {
					st := inj.Stats()
					t.Logf("injector: ops=%d injected=%d bursts=%d", st.Ops, st.Injected, st.Bursts)
					if profile.Storage() && st.Ops == 0 {
						t.Error("storage-fault profile never consulted the injector")
					}
				}
			}
		})
	}
}

// TestFlakyIORunsDeterministic: two chaos runs with the same profile and
// seeds must produce identical results — fault injection must not introduce
// nondeterminism.
func TestFlakyIORunsDeterministic(t *testing.T) {
	profile, err := fault.LookupProfile("flaky-io")
	if err != nil {
		t.Fatal(err)
	}
	run := func() *Result {
		tr := smallTrace(t, 3, 5)
		pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, core.OracleEstimator{})
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Policy: pol, FaultProfile: profile, FaultSeed: 13})
		if err != nil {
			t.Fatal(err)
		}
		res, err := s.Run(tr)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := encodeResult(t, run()), encodeResult(t, run())
	if !bytes.Equal(a, b) {
		t.Fatal("identical chaos runs produced different results")
	}
}

// TestSAGAFallbackAbsorbsSignalDropout is the regression test for graceful
// degradation: with the primary estimator's signal dropping out 30% of the
// time, the fallback estimator must trip to CGS/CB, keep SAGA fed with
// usable numbers (no bad-signal skips), and the run must finish with the
// garbage level still under control.
func TestSAGAFallbackAbsorbsSignalDropout(t *testing.T) {
	tr := smallTrace(t, 3, 6)
	primary, err := core.NewFGSHB(0.8)
	if err != nil {
		t.Fatal(err)
	}
	chaotic, err := fault.NewChaosEstimator(primary, fault.Profile{EstNaNProb: 0.30}, 9)
	if err != nil {
		t.Fatal(err)
	}
	fe, err := core.NewFallbackEstimator(chaotic, core.NewCGSCB(), 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	pol, err := core.NewSAGA(core.SAGAConfig{Frac: 0.10}, fe)
	if err != nil {
		t.Fatal(err)
	}
	s, err := New(Config{Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	res, err := s.Run(tr)
	if err != nil {
		t.Fatal(err)
	}
	if !res.MeasurementStarted {
		t.Fatal("measurement window never started")
	}
	if chaotic.Dropped() == 0 {
		t.Fatal("chaos estimator never dropped the signal; test proves nothing")
	}
	if fe.Trips() == 0 {
		t.Fatalf("fallback never tripped despite %d dropouts", chaotic.Dropped())
	}
	// The fallback absorbs every dropout, so SAGA itself never sees a bad
	// signal...
	if n := pol.BadSignals(); n != 0 {
		t.Errorf("SAGA saw %d bad signals through the fallback", n)
	}
	// ...and the garbage level stays in the same ballpark as a healthy run
	// (TestEndToEndSAGAOracle holds ~0.10; allow extra slack for the
	// coarse fallback estimator).
	if res.GarbageFrac > 0.35 {
		t.Errorf("garbage fraction %.4f: control lost under signal dropout", res.GarbageFrac)
	}
	t.Logf("dropouts=%d trips=%d recoveries=%d garbFrac=%.4f",
		chaotic.Dropped(), fe.Trips(), fe.Recoveries(), res.GarbageFrac)
}

// TestTruncatedTraceLenientDegradesGracefully: a torn trace in lenient mode
// finishes with the events that survived; strict mode fails with
// ErrTruncated. Either way, structured behavior.
func TestTruncatedTraceLenientDegradesGracefully(t *testing.T) {
	tr := smallTrace(t, 3, 7)
	var buf bytes.Buffer
	if err := trace.WriteAll(&buf, tr); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cut := data[:len(data)*3/4]

	newSim := func() *Simulator {
		pol, err := core.NewFixedRate(200)
		if err != nil {
			t.Fatal(err)
		}
		s, err := New(Config{Policy: pol})
		if err != nil {
			t.Fatal(err)
		}
		return s
	}

	// Strict: the truncation surfaces as ErrTruncated.
	rd, err := trace.NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	_, err = newSim().RunStream(rd)
	if !errors.Is(err, trace.ErrTruncated) {
		t.Fatalf("strict read of torn trace: err=%v, want ErrTruncated", err)
	}

	// Lenient: the run finishes on the surviving prefix.
	rd, err = trace.NewReader(bytes.NewReader(cut))
	if err != nil {
		t.Fatal(err)
	}
	rd.Lenient = true
	res, err := newSim().RunStream(rd)
	if err != nil {
		t.Fatalf("lenient run failed: %v", err)
	}
	if !rd.Truncated() {
		t.Fatal("reader did not notice the truncation")
	}
	if res.Events == 0 || res.Events >= len(tr.Events) {
		t.Fatalf("lenient run saw %d events, want a proper prefix of %d", res.Events, len(tr.Events))
	}
}
