// Package sim replays application traces through the storage and collector
// substrates, drives a collection-rate policy, and gathers the measurements
// the paper reports: achieved collector-I/O percentage, achieved garbage
// percentage (sampled at every application event), and per-collection time
// series for the time-varying figures.
//
// Methodology follows §3.2/§4.1: metrics are sampled at each database event
// (create, access, update, overwrite); the cold-start preamble — the first
// PreambleCollections collections — is excluded from summary means; multiple
// seeded runs are aggregated as mean with min/max bars.
package sim

import (
	"context"
	"errors"
	"fmt"
	"io"

	"odbgc/internal/core"
	"odbgc/internal/fault"
	"odbgc/internal/gc"
	"odbgc/internal/metrics"
	"odbgc/internal/objstore"
	"odbgc/internal/obs"
	"odbgc/internal/obs/span"
	"odbgc/internal/simerr"
	"odbgc/internal/storage"
	"odbgc/internal/trace"
)

// Config parameterizes a single simulation run.
type Config struct {
	// Storage geometry; zero value means storage.DefaultConfig().
	Storage storage.Config
	// Policy decides when to collect. Required.
	Policy core.RatePolicy
	// Selection decides what to collect; nil means UPDATEDPOINTER.
	Selection gc.SelectionPolicy
	// PreambleCollections is the cold-start prefix excluded from summary
	// means, counted in collections. Negative disables the preamble; zero
	// means the default of 10 (§3.2).
	PreambleCollections int
	// CheckEvery, when positive, cross-validates all incremental
	// bookkeeping against ground truth every N events (slow; tests only).
	CheckEvery int
	// PhysicalFixups charges collector I/O for rewriting external objects
	// whose pointers into a compacted partition must be updated, modeling
	// physical (direct) pointers instead of the default logical-OID
	// indirection. Used by the fixup-cost ablation.
	PhysicalFixups bool
	// FaultProfile, when it carries storage-fault rates, installs a seeded
	// fault injector on the storage manager and a bounded retry wrapper on
	// the collector. Trace and estimator faults are wired by the caller
	// (wrap the trace reader with fault.CorruptTrace and the estimator with
	// fault.NewChaosEstimator) since the simulator never sees those layers'
	// construction.
	FaultProfile fault.Profile
	// FaultSeed seeds the fault injector; runs with the same profile and
	// seed replay the identical fault schedule.
	FaultSeed int64
	// Retry overrides the retry policy for transient storage faults; the
	// zero value means fault.DefaultRetry.
	Retry fault.RetryConfig
	// Observer, when non-nil, receives lifecycle events (run start/end,
	// decisions, collections, phase transitions, faults, checkpoints). The
	// simulator never reads observer state: runs with and without an
	// observer produce bit-identical results, and a nil observer costs a
	// single pointer test per hook site.
	Observer obs.Observer
	// ProgressEvery emits an obs.Progress heartbeat every N trace events
	// (only when Observer is set). Zero means the default of 1000; negative
	// disables heartbeats.
	ProgressEvery int
	// Spans, when non-nil, receives one KindGC span per collection in the
	// same schema the live server emits, timed on the simulated I/O clock.
	// Like Observer, the simulator never reads recorder state: runs with
	// and without a recorder are bit-identical, and the nil case costs one
	// pointer test per collection.
	Spans *span.Recorder
	// Durable, when non-nil, write-ahead-logs every heap mutation to this
	// backend. The simulator commits one batch per trace event (so a crash
	// loses at most the event in flight) and checkpoints at phase
	// boundaries and at Finish. The caller owns the backend's lifecycle
	// (Open before New, Close after Finish). Simulation results are
	// bit-identical with and without a backend attached.
	Durable storage.Backend
}

func (c *Config) applyDefaults() error {
	if c.Policy == nil {
		return fmt.Errorf("sim: config requires a rate policy")
	}
	if c.Storage == (storage.Config{}) {
		c.Storage = storage.DefaultConfig()
	}
	if c.Selection == nil {
		c.Selection = gc.UpdatedPointer{}
	}
	if c.PreambleCollections == 0 {
		c.PreambleCollections = 10
	}
	if c.PreambleCollections < 0 {
		c.PreambleCollections = 0
	}
	if c.ProgressEvery == 0 {
		c.ProgressEvery = 1000
	}
	return nil
}

// CollectionRecord captures one collection for the time-varying figures.
type CollectionRecord struct {
	Index     int    // collection number, 1-based
	Phase     string // application phase during which it ran
	Clock     core.Clock
	Interval  uint64 // overwrites since the previous collection
	Partition storage.PartitionID

	ReclaimedBytes   int
	ReclaimedObjects int
	LiveBytes        int
	PartitionPO      int
	IO               storage.IOStats // this collection's I/O
	CumulativeIO     storage.IOStats // run totals just after this collection

	// Post-collection state.
	DatabaseBytes      int
	ActualGarbageBytes int
	ActualGarbageFrac  float64

	// SAGA diagnostics (zero for other policies).
	EstimatedGarbageBytes float64
	EstimatedGarbageFrac  float64
	TargetGarbageFrac     float64
	NextInterval          uint64
}

// PhaseMark records where an application phase began.
type PhaseMark struct {
	Label       string
	EventIndex  int
	Collections int    // collections completed when the phase began
	Overwrites  uint64 // overwrite clock when the phase began
}

// PhaseSummary aggregates one application phase of a run.
type PhaseSummary struct {
	Label       string
	Events      int
	Collections int
	Reclaimed   int             // bytes reclaimed by collections in this phase
	IO          storage.IOStats // all I/O during the phase
	// GarbageFrac is the event-sampled mean garbage fraction during the
	// phase (NaN if the phase had no application events).
	GarbageFrac float64
}

// Result summarizes one simulation run.
type Result struct {
	PolicyName    string
	SelectionName string
	Events        int

	// Totals over the full run.
	Final          storage.IOStats
	Collections    []CollectionRecord
	Phases         []PhaseMark
	PhaseSummaries []PhaseSummary
	FinalDBBytes   int
	FinalGarbage   int
	// FinalPinnedGarbage is the part of FinalGarbage held unreclaimable by
	// cross-partition remembered-set entries (see gc.Heap.PinnedGarbageBytes).
	FinalPinnedGarbage int
	FinalLiveBytes     int
	Partitions         int
	TotalReclaimed     uint64
	TotalGarbage       uint64

	// Measurement window (post-preamble) summaries. The effective preamble
	// adapts to short runs: min(configured, collections/2), mirroring the
	// paper's per-configuration preamble lengths (§3.2).
	EffectivePreamble int
	MeasuredEvents    int
	MeasuredIO        storage.IOStats
	// GCIOFrac is collector I/O as a fraction of all I/O over the window —
	// the quantity SAIO controls (Figure 4's y axis).
	GCIOFrac float64
	// GarbageFrac is the event-sampled mean garbage fraction of database
	// size over the window — the quantity SAGA controls (Figure 5's y
	// axis). GarbageFracMin/Max bound the samples.
	GarbageFrac    float64
	GarbageFracMin float64
	GarbageFracMax float64
	// MeasurementStarted reports whether any events fell inside the
	// measurement window.
	MeasurementStarted bool
}

// sagaDiag is implemented by policies exposing estimator diagnostics.
type sagaDiag interface {
	LastEstimate() float64
	LastTarget() float64
	LastInterval() uint64
}

// Simulator replays one trace. Create a fresh Simulator per run.
type Simulator struct {
	cfg      Config
	store    *objstore.Store
	disk     *storage.Manager
	heap     *gc.Heap
	injector *fault.Injector // nil unless the profile injects storage faults

	curPhase    string
	collectSafe bool
	step        int
	obs         obs.Observer // nil when unobserved; hooks are guarded

	// Per-phase accumulation.
	phaseAcc    *PhaseSummary
	phaseGarb   metrics.Mean
	phaseIOBase storage.IOStats
	// garbBuckets[k] accumulates garbage-fraction samples taken while k
	// collections had completed, so the preamble cut can be chosen after
	// the run (short runs get shorter preambles).
	garbBuckets []metrics.Mean
	res         *Result

	// deadScratch carries each overwrite event's dead OIDs to
	// RecordOracleDead, which copies them into its ledger — reusing it keeps
	// the per-event path allocation-free.
	deadScratch []objstore.OID
}

// New constructs a simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.applyDefaults(); err != nil {
		return nil, err
	}
	if err := cfg.Storage.Validate(); err != nil {
		return nil, err
	}
	store := objstore.NewStore()
	disk, err := storage.NewManager(cfg.Storage)
	if err != nil {
		return nil, err
	}
	heap := gc.NewHeap(store, disk)
	heap.SetPhysicalFixups(cfg.PhysicalFixups)
	s := &Simulator{
		cfg:         cfg,
		store:       store,
		disk:        disk,
		heap:        heap,
		collectSafe: true,
		res: &Result{
			PolicyName:    cfg.Policy.Name(),
			SelectionName: cfg.Selection.Name(),
		},
	}
	if cfg.FaultProfile.Storage() {
		s.injector = fault.NewInjector(cfg.FaultProfile, cfg.FaultSeed)
		disk.SetFaultInjector(s.injector)
		heap.SetRetry(cfg.Retry.Do)
	}
	if cfg.Durable != nil {
		heap.SetDurable(cfg.Durable)
	}
	s.installObserver()
	if s.obs != nil {
		s.obs.ObserveRunStart(s.runStart(0))
	}
	return s, nil
}

// installObserver wires the config's observer into the simulator and its
// fault injector. Called from New and Resume.
func (s *Simulator) installObserver() {
	s.obs = s.cfg.Observer
	if s.obs != nil && s.injector != nil {
		s.injector.SetHook(func(op string, seq uint64, burst bool) {
			s.obs.ObserveFault(obs.Fault{Step: s.step, Op: op, Seq: seq, Burst: burst})
		})
	}
}

// runStart assembles the RunStart event.
func (s *Simulator) runStart(resumed int) obs.RunStart {
	e := obs.RunStart{
		Policy:    s.cfg.Policy.Name(),
		Selection: s.cfg.Selection.Name(),
		Preamble:  s.cfg.PreambleCollections,
		Resumed:   resumed,
	}
	if s.cfg.FaultProfile.Storage() || s.cfg.FaultProfile.Estimator() || s.cfg.FaultProfile.Trace() {
		e.FaultProfile = s.cfg.FaultProfile.Name
		e.FaultSeed = s.cfg.FaultSeed
	}
	return e
}

// Injector returns the storage fault injector, or nil when the run has no
// storage faults configured.
func (s *Simulator) Injector() *fault.Injector { return s.injector }

// Heap exposes the simulator's heap for inspection in tests.
func (s *Simulator) Heap() *gc.Heap { return s.heap }

func (s *Simulator) clock() core.Clock {
	st := s.disk.Stats()
	return core.Clock{AppIO: st.AppIO(), GCIO: st.GCIO(), Overwrites: s.heap.OverwriteClock()}
}

// Run replays an in-memory trace and returns the run's result. A Simulator
// must not be reused after Run returns.
func (s *Simulator) Run(tr *trace.Trace) (*Result, error) {
	return s.RunContext(context.Background(), tr)
}

// RunContext is Run with cooperative cancellation: the context is checked
// between events, so a canceled or expired context stops the replay at the
// next event boundary with an error classified as simerr.ErrCanceled (or
// simerr.ErrTimeout when the deadline elapsed). The Simulator must be
// discarded after a cancelled run — its state is mid-trace.
func (s *Simulator) RunContext(ctx context.Context, tr *trace.Trace) (*Result, error) {
	for i := range tr.Events {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: run stopped at event %d: %w", s.step, simerr.FromContext(err))
		}
		if err := s.Step(&tr.Events[i]); err != nil {
			return nil, err
		}
	}
	return s.Finish()
}

// EventSource yields successive trace events; io.EOF ends the stream.
// *trace.Reader implements it.
type EventSource interface {
	Read() (trace.Event, error)
}

// RunStream replays events from a source (e.g. a trace file reader)
// without materializing the whole trace in memory.
func (s *Simulator) RunStream(src EventSource) (*Result, error) {
	return s.RunStreamContext(context.Background(), src)
}

// RunStreamContext is RunStream with cooperative cancellation between
// events; see RunContext for the cancellation contract.
func (s *Simulator) RunStreamContext(ctx context.Context, src EventSource) (*Result, error) {
	for {
		if err := ctx.Err(); err != nil {
			return nil, fmt.Errorf("sim: run stopped at event %d: %w", s.step, simerr.FromContext(err))
		}
		e, err := src.Read()
		if errors.Is(err, io.EOF) {
			return s.Finish()
		}
		if err != nil {
			return nil, fmt.Errorf("sim: reading event %d: %w", s.step, err)
		}
		if err := s.Step(&e); err != nil {
			return nil, err
		}
	}
}

// Step applies one trace event, running a collection first if the policy
// asks for one. Most callers use Run or RunStream; Step is exposed for
// callers interleaving simulation with other work.
func (s *Simulator) Step(e *trace.Event) error {
	i := s.step
	s.step++

	// Collections happen between events, but never immediately after a
	// create or initializing store: those are mid-construction moments
	// where new structure is not yet wired to the graph.
	if s.collectSafe && s.cfg.Policy.ShouldCollect(s.clock()) {
		if err := s.collect(false); err != nil {
			return fmt.Errorf("sim: event %d: %w", i, err)
		}
	}

	if err := s.apply(e, i); err != nil {
		return fmt.Errorf("sim: event %d (%s): %w", i, e.String(), err)
	}
	// One durable batch per event: the WAL records staged by this event
	// (and by any collection that ran at its boundary) commit together, so
	// a crash can only lose whole events. Phase boundaries additionally
	// checkpoint, bounding replay work to one phase of WAL.
	if s.cfg.Durable != nil {
		if err := s.cfg.Durable.Commit(); err != nil {
			return fmt.Errorf("sim: durable commit after event %d: %w", i, err)
		}
		if e.Kind == trace.KindPhase {
			if err := s.cfg.Durable.Checkpoint(); err != nil {
				return fmt.Errorf("sim: durable checkpoint at phase %q: %w", e.Label, err)
			}
		}
	}
	s.collectSafe = !(e.Kind == trace.KindCreate || (e.Kind == trace.KindOverwrite && e.Init))

	// Sample at each database event (application events only).
	switch e.Kind {
	case trace.KindCreate, trace.KindAccess, trace.KindUpdate, trace.KindOverwrite:
		s.res.Events++
		if s.phaseAcc != nil {
			s.phaseAcc.Events++
		}
		if db := s.heap.DatabaseBytes(); db > 0 {
			frac := float64(s.heap.ActualGarbageBytes()) / float64(db)
			k := len(s.res.Collections)
			for len(s.garbBuckets) <= k {
				s.garbBuckets = append(s.garbBuckets, metrics.Mean{})
			}
			s.garbBuckets[k].Add(frac)
			s.phaseGarb.Add(frac)
		}
	}

	if s.obs != nil && s.cfg.ProgressEvery > 0 && s.step%s.cfg.ProgressEvery == 0 {
		s.obs.ObserveProgress(obs.Progress{
			Step:        s.step,
			Collections: len(s.res.Collections),
			Phase:       s.curPhase,
			Clock:       obs.ClockOf(s.clock()),
		})
	}

	// Invariant checks compare against whole-graph reachability, which is
	// only meaningful at collection-safe points (mid-construction, a
	// just-created object is legitimately unreachable).
	if s.cfg.CheckEvery > 0 && s.collectSafe && (i+1)%s.cfg.CheckEvery == 0 {
		if err := s.heap.CheckInvariants(); err != nil {
			return fmt.Errorf("sim: invariant check after event %d: %w", i, err)
		}
		if err := s.heap.CheckOracleComplete(); err != nil {
			return fmt.Errorf("sim: oracle completeness after event %d: %w", i, err)
		}
	}
	return nil
}

func (s *Simulator) apply(e *trace.Event, idx int) error {
	switch e.Kind {
	case trace.KindCreate:
		return s.heap.Create(e.OID, e.Class, e.Size, e.Slots)
	case trace.KindAccess:
		return s.heap.Access(e.OID)
	case trace.KindUpdate:
		return s.heap.Update(e.OID)
	case trace.KindOverwrite:
		if err := s.heap.Overwrite(e.OID, e.Slot, e.Old, e.New, e.Init); err != nil {
			return err
		}
		if len(e.Dead) > 0 {
			dead := s.deadScratch[:0]
			for _, d := range e.Dead {
				dead = append(dead, d.OID)
			}
			s.deadScratch = dead
			return s.heap.RecordOracleDead(dead)
		}
		return nil
	case trace.KindPhase:
		s.closePhase()
		s.curPhase = e.Label
		s.res.Phases = append(s.res.Phases, PhaseMark{
			Label:       e.Label,
			EventIndex:  idx,
			Collections: len(s.res.Collections),
			Overwrites:  s.heap.OverwriteClock(),
		})
		//lint:allow hotalloc one accumulator per phase, retained in the result
		s.phaseAcc = &PhaseSummary{Label: e.Label}
		s.phaseGarb = metrics.Mean{}
		s.phaseIOBase = s.disk.Stats()
		if s.obs != nil {
			s.obs.ObservePhase(obs.PhaseChange{
				Step:        idx,
				Label:       e.Label,
				Collections: len(s.res.Collections),
				Overwrites:  s.heap.OverwriteClock(),
			})
		}
		return nil
	case trace.KindRoot:
		if e.Size == 1 {
			return s.heap.AddRoot(e.OID)
		}
		return s.heap.RemoveRoot(e.OID)
	case trace.KindIdle:
		return s.idle(e.Size)
	default:
		return fmt.Errorf("unknown event kind %d", e.Kind)
	}
}

// idle gives an opportunistic policy up to one collection per quiescence
// tick, letting it run beyond its user-stated limits while the application
// is not competing for I/O (§5).
func (s *Simulator) idle(ticks int) error {
	ic, ok := s.cfg.Policy.(interface {
		ShouldCollectIdle(now core.Clock, h core.HeapState) bool
	})
	if !ok {
		return nil
	}
	for i := 0; i < ticks; i++ {
		if !s.collectSafe || !ic.ShouldCollectIdle(s.clock(), s.heap) {
			return nil
		}
		if err := s.collect(true); err != nil {
			return err
		}
	}
	return nil
}

func (s *Simulator) collect(idle bool) error {
	part, ok := s.cfg.Selection.Select(s.heap)
	now := s.clock()
	if !ok {
		// Nothing worth collecting; let the policy reschedule off an empty
		// collection so it does not retrigger on every event.
		s.cfg.Policy.AfterCollection(now, s.heap, gc.CollectionResult{})
		if s.obs != nil {
			s.obs.ObserveDecision(s.decision(now, false, idle))
		}
		return nil
	}
	prevOW := uint64(0)
	if n := len(s.res.Collections); n > 0 {
		prevOW = s.res.Collections[n-1].Clock.Overwrites
	}
	res, err := s.heap.Collect(part)
	if err != nil {
		return err
	}
	if yo, ok := s.cfg.Selection.(gc.YieldObserver); ok {
		yo.ObserveCollection(res)
	}
	after := s.clock()
	s.cfg.Policy.AfterCollection(after, s.heap, res)

	rec := CollectionRecord{
		Index:              len(s.res.Collections) + 1,
		Phase:              s.curPhase,
		Clock:              after,
		Interval:           now.Overwrites - prevOW,
		Partition:          res.Partition,
		ReclaimedBytes:     res.ReclaimedBytes,
		ReclaimedObjects:   res.ReclaimedObjects,
		LiveBytes:          res.LiveBytes,
		PartitionPO:        res.PartitionPO,
		IO:                 res.IO,
		CumulativeIO:       s.disk.Stats(),
		DatabaseBytes:      s.heap.DatabaseBytes(),
		ActualGarbageBytes: s.heap.ActualGarbageBytes(),
	}
	if rec.DatabaseBytes > 0 {
		rec.ActualGarbageFrac = float64(rec.ActualGarbageBytes) / float64(rec.DatabaseBytes)
	}
	if d, ok := s.cfg.Policy.(sagaDiag); ok {
		rec.EstimatedGarbageBytes = d.LastEstimate()
		rec.NextInterval = d.LastInterval()
		if rec.DatabaseBytes > 0 {
			rec.EstimatedGarbageFrac = d.LastEstimate() / float64(rec.DatabaseBytes)
			rec.TargetGarbageFrac = d.LastTarget() / float64(rec.DatabaseBytes)
		}
	}
	s.res.Collections = append(s.res.Collections, rec)
	if s.phaseAcc != nil {
		s.phaseAcc.Collections++
		s.phaseAcc.Reclaimed += res.ReclaimedBytes
	}
	if s.cfg.Spans != nil {
		// Same span schema as the live server, on the simulated I/O clock:
		// the collection starts where the pre-collection clock stood and
		// ends after its own I/O. One trace format from gcsim to odbgcd.
		g := s.cfg.Spans.Start(span.KindGC, "collect", span.GCID(uint64(rec.Index)), 0, int64(now.AppIO+now.GCIO))
		g.Seq = uint64(rec.Index)
		g.Partition = int(res.Partition)
		g.ReclaimedBytes = res.ReclaimedBytes
		g.ReclaimedObjects = res.ReclaimedObjects
		g.TracedObjects = res.LiveObjects
		g.EstimateFrac = obs.Float(rec.EstimatedGarbageFrac)
		g.TargetFrac = obs.Float(rec.TargetGarbageFrac)
		end := int64(after.AppIO + after.GCIO)
		g.SetStage(span.StageService, end-g.Start)
		s.cfg.Spans.Finish(g, end, span.OutcomeOK)
	}
	if s.obs != nil {
		s.obs.ObserveDecision(s.decision(after, true, idle))
		s.obs.ObserveCollection(obs.Collection{
			Index:            rec.Index,
			Step:             s.step,
			Phase:            rec.Phase,
			Clock:            obs.ClockOf(rec.Clock),
			Interval:         rec.Interval,
			Partition:        int(rec.Partition),
			ReclaimedBytes:   rec.ReclaimedBytes,
			ReclaimedObjects: rec.ReclaimedObjects,
			LiveBytes:        rec.LiveBytes,
			PartitionPO:      rec.PartitionPO,
			IO:               ioOf(rec.IO),
			CumulativeIO:     ioOf(rec.CumulativeIO),
			DBBytes:          rec.DatabaseBytes,
			GarbageBytes:     rec.ActualGarbageBytes,
			GarbageFrac:      obs.Float(rec.ActualGarbageFrac),
			EstimatedFrac:    obs.Float(rec.EstimatedGarbageFrac),
			TargetFrac:       obs.Float(rec.TargetGarbageFrac),
			NextInterval:     rec.NextInterval,
		})
	}
	return nil
}

// ioOf converts storage.IOStats to the observer form.
func ioOf(s storage.IOStats) obs.IO {
	return obs.IO{AppReads: s.AppReads, AppWrites: s.AppWrites, GCReads: s.GCReads, GCWrites: s.GCWrites}
}

// decision assembles a Decision event from the policy's current diagnostics
// (zero estimator fields for policies without them).
func (s *Simulator) decision(now core.Clock, collected, idle bool) obs.Decision {
	d := obs.Decision{
		Step:         s.step,
		Clock:        obs.ClockOf(now),
		DBBytes:      s.heap.DatabaseBytes(),
		GarbageBytes: s.heap.ActualGarbageBytes(),
		Collected:    collected,
		Idle:         idle,
	}
	if diag, ok := s.cfg.Policy.(sagaDiag); ok {
		d.Estimate = obs.Float(diag.LastEstimate())
		d.Target = obs.Float(diag.LastTarget())
		d.NextInterval = diag.LastInterval()
	}
	return d
}

// closePhase finalizes the current phase summary, if one is open.
func (s *Simulator) closePhase() {
	if s.phaseAcc == nil {
		return
	}
	s.phaseAcc.IO = s.disk.Stats().Sub(s.phaseIOBase)
	s.phaseAcc.GarbageFrac = s.phaseGarb.Value()
	s.res.PhaseSummaries = append(s.res.PhaseSummaries, *s.phaseAcc)
	s.phaseAcc = nil
}

// Finish validates final state and computes the run summary. Run and
// RunStream call it automatically; callers driving Step directly call it
// once at end of trace.
func (s *Simulator) Finish() (*Result, error) {
	s.closePhase()
	if s.cfg.Durable != nil {
		if err := s.cfg.Durable.Commit(); err != nil {
			return nil, fmt.Errorf("sim: final durable commit: %w", err)
		}
		if err := s.cfg.Durable.Checkpoint(); err != nil {
			return nil, fmt.Errorf("sim: final durable checkpoint: %w", err)
		}
	}
	if err := s.heap.CheckInvariants(); err != nil {
		return nil, fmt.Errorf("sim: final invariant check: %w", err)
	}
	if err := s.heap.CheckOracleComplete(); err != nil {
		return nil, fmt.Errorf("sim: final oracle completeness check: %w", err)
	}
	r := s.res
	r.Final = s.disk.Stats()
	r.FinalDBBytes = s.heap.DatabaseBytes()
	r.FinalGarbage = s.heap.ActualGarbageBytes()
	r.FinalPinnedGarbage = s.heap.PinnedGarbageBytes()
	r.FinalLiveBytes = r.FinalDBBytes - r.FinalGarbage
	r.Partitions = s.disk.NumPartitions()
	r.TotalReclaimed = s.heap.TotalCollectedBytes()
	r.TotalGarbage = s.heap.TotalGarbageBytes()

	// Choose the effective preamble after the fact: the configured length,
	// but never more than half the run's collections, so short runs still
	// yield a measurement window.
	p := s.cfg.PreambleCollections
	if half := len(r.Collections) / 2; p > half {
		p = half
	}
	r.EffectivePreamble = p

	var baseline storage.IOStats
	if p > 0 {
		baseline = r.Collections[p-1].CumulativeIO
	}
	r.MeasuredIO = r.Final.Sub(baseline)
	if tot := r.MeasuredIO.TotalIO(); tot > 0 {
		r.GCIOFrac = float64(r.MeasuredIO.GCIO()) / float64(tot)
	}
	var garb metrics.Mean
	for k := p; k < len(s.garbBuckets); k++ {
		garb.Merge(s.garbBuckets[k])
	}
	r.MeasuredEvents = garb.N()
	r.MeasurementStarted = garb.N() > 0
	r.GarbageFrac = garb.Value()
	r.GarbageFracMin = garb.Min()
	r.GarbageFracMax = garb.Max()
	if s.obs != nil {
		s.obs.ObserveRunEnd(obs.RunEnd{
			Events:       r.Events,
			Collections:  len(r.Collections),
			Preamble:     r.EffectivePreamble,
			GCIOFrac:     obs.Float(r.GCIOFrac),
			GarbageFrac:  obs.Float(r.GarbageFrac),
			Reclaimed:    r.TotalReclaimed,
			TotalGarbage: r.TotalGarbage,
			FinalDBBytes: r.FinalDBBytes,
			FinalGarbage: r.FinalGarbage,
			Partitions:   r.Partitions,
			TotalIO:      r.Final.TotalIO(),
		})
	}
	return r, nil
}
