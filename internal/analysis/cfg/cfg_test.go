package cfg

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"strconv"
	"testing"
)

// buildGraph parses a function body (the braces included) and builds its
// graph. Marker calls of the form mark("name") label blocks so tests can
// assert structure without depending on block indexes.
func buildGraph(t *testing.T, body string) (*Graph, map[string]*Block) {
	t.Helper()
	src := "package p\nfunc mark(string) {}\nvar ch chan int\nvar done chan struct{}\nvar xs []int\nvar cond bool\nfunc f() " + body
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "fixture.go", src, 0)
	if err != nil {
		t.Fatalf("parsing fixture: %v", err)
	}
	var fn *ast.FuncDecl
	for _, d := range file.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Name.Name == "f" {
			fn = fd
		}
	}
	if fn == nil {
		t.Fatal("fixture has no func f")
	}
	g := New(fn.Body)
	marks := make(map[string]*Block)
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			ast.Inspect(n, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				id, ok := call.Fun.(*ast.Ident)
				if !ok || id.Name != "mark" || len(call.Args) != 1 {
					return true
				}
				lit, ok := call.Args[0].(*ast.BasicLit)
				if !ok {
					return true
				}
				name, _ := strconv.Unquote(lit.Value)
				marks[name] = b
				return true
			})
		}
	}
	return g, marks
}

func TestStructure(t *testing.T) {
	tests := []struct {
		name string
		body string
		// reach lists "from->to" pairs that must hold; noreach pairs that
		// must not. "exit" names the synthetic exit block.
		reach   []string
		noreach []string
	}{
		{
			name:  "straight line",
			body:  `{ mark("a"); mark("b") }`,
			reach: []string{"a->b", "a->exit"},
		},
		{
			name:    "if both arms join",
			body:    `{ mark("a"); if cond { mark("t") } else { mark("e") }; mark("j") }`,
			reach:   []string{"a->t", "a->e", "t->j", "e->j"},
			noreach: []string{"t->e", "e->t"},
		},
		{
			name:    "return ends flow",
			body:    `{ mark("a"); if cond { mark("t"); return }; mark("j") }`,
			reach:   []string{"a->t", "a->j", "t->exit"},
			noreach: []string{"t->j"},
		},
		{
			name:  "for loop back edge",
			body:  `{ for i := 0; i < 3; i++ { mark("body") }; mark("after") }`,
			reach: []string{"body->body", "body->after"},
		},
		{
			name:    "unbounded for without break traps control",
			body:    `{ for { mark("body") }; mark("after") }`,
			reach:   []string{"body->body"},
			noreach: []string{"body->after", "body->exit"},
		},
		{
			name:  "unbounded for with break escapes",
			body:  `{ for { mark("body"); if cond { break } }; mark("after") }`,
			reach: []string{"body->after", "body->exit"},
		},
		{
			name:  "range loop exits on exhaustion",
			body:  `{ for range xs { mark("body") }; mark("after") }`,
			reach: []string{"body->body", "body->after"},
		},
		{
			name:    "switch cases are exclusive",
			body:    `{ switch { case cond: mark("a"); default: mark("b") }; mark("j") }`,
			reach:   []string{"a->j", "b->j"},
			noreach: []string{"a->b", "b->a"},
		},
		{
			name:  "select case can return",
			body:  `{ for { select { case <-ch: mark("work"); case <-done: mark("quit"); return } } }`,
			reach: []string{"quit->exit", "work->work", "work->quit"},
		},
		{
			name:    "labeled break leaves outer loop",
			body:    `{ outer: for { for { mark("inner"); break outer }; mark("deadtail") }; mark("after") }`,
			reach:   []string{"inner->after"},
			noreach: []string{"inner->deadtail"},
		},
		{
			name:  "goto forms explicit edge",
			body:  `{ mark("a"); goto L; mark("dead"); L: mark("l") }`,
			reach: []string{"a->l"},
			// The statement after an unconditional goto is dead.
			noreach: []string{"a->dead"},
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, marks := buildGraph(t, tt.body)
			lookup := func(name string) *Block {
				if name == "exit" {
					return g.Exit
				}
				b, ok := marks[name]
				if !ok {
					t.Fatalf("no block marked %q", name)
				}
				return b
			}
			check := func(pair string, want bool) {
				var from, to string
				if _, err := fmt.Sscanf(pair, "%s", &from); err != nil {
					t.Fatal(err)
				}
				for i := 0; i+1 < len(pair); i++ {
					if pair[i] == '-' && pair[i+1] == '>' {
						from, to = pair[:i], pair[i+2:]
					}
				}
				got := g.Reachable(lookup(from))[lookup(to)]
				if got != want {
					t.Errorf("reach %s = %v, want %v", pair, got, want)
				}
			}
			for _, p := range tt.reach {
				check(p, true)
			}
			for _, p := range tt.noreach {
				check(p, false)
			}
		})
	}
}

func TestEntryReachesExit(t *testing.T) {
	g, _ := buildGraph(t, `{ if cond { return }; mark("a") }`)
	if !g.Reachable(g.Entry)[g.Exit] {
		t.Fatal("entry does not reach exit")
	}
}

func TestSuccessorCounts(t *testing.T) {
	tests := []struct {
		name  string
		body  string
		mark  string
		succs int
	}{
		{"plain block flows to one place", `{ mark("a"); mark("a2") }`, "a", 1},
		{"if condition branches two ways", `{ mark("c"); if cond { _ = 1 }; _ = 2 }`, "c", 2},
		{"unbounded loop body only loops", `{ for { mark("b") } }`, "b", 1},
		{"return goes only to exit", `{ mark("r"); return }`, "r", 1},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			_, marks := buildGraph(t, tt.body)
			b := marks[tt.mark]
			if b == nil {
				t.Fatalf("no block marked %q", tt.mark)
			}
			if len(b.Succs) != tt.succs {
				t.Errorf("block %q has %d successors, want %d", tt.mark, len(b.Succs), tt.succs)
			}
		})
	}
}

func TestLoops(t *testing.T) {
	tests := []struct {
		name      string
		body      string
		loops     int
		unbounded []bool
	}{
		{"no loops", `{ mark("a") }`, 0, nil},
		{"bounded for", `{ for i := 0; i < 3; i++ { _ = i } }`, 1, []bool{false}},
		{"unbounded for", `{ for { mark("a") } }`, 1, []bool{true}},
		{"range", `{ for range xs { _ = 1 } }`, 1, []bool{false}},
		{"nested", `{ for { for range xs { _ = 1 } } }`, 2, []bool{true, false}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			g, _ := buildGraph(t, tt.body)
			if len(g.Loops) != tt.loops {
				t.Fatalf("got %d loops, want %d", len(g.Loops), tt.loops)
			}
			for i, want := range tt.unbounded {
				if g.Loops[i].Unbounded != want {
					t.Errorf("loop %d unbounded = %v, want %v", i, g.Loops[i].Unbounded, want)
				}
			}
		})
	}
}

// TestNestedLoopBodyContainment asserts an outer loop's body includes the
// blocks of a loop nested inside it — the property the leak analyzers rely
// on when they scan a loop body for cancellation points.
func TestNestedLoopBodyContainment(t *testing.T) {
	g, marks := buildGraph(t, `{ for { for range xs { mark("inner") } } }`)
	if len(g.Loops) != 2 {
		t.Fatalf("got %d loops, want 2", len(g.Loops))
	}
	outer := g.Loops[0]
	inner := marks["inner"]
	found := false
	for _, b := range outer.Body {
		if b == inner {
			found = true
		}
	}
	if !found {
		t.Error("outer loop body does not contain the nested loop's block")
	}
}

// TestEscapes pins the done-channel idiom query: a select case that
// returns escapes the loop, one that continues does not.
func TestEscapes(t *testing.T) {
	g, marks := buildGraph(t, `{ for { select { case <-ch: mark("work"); case <-done: mark("quit"); return } } }`)
	if len(g.Loops) != 1 {
		t.Fatalf("got %d loops, want 1", len(g.Loops))
	}
	l := g.Loops[0]
	if !g.Escapes(l, marks["quit"]) {
		t.Error("quit case should escape the loop")
	}
	if g.Escapes(l, marks["work"]) {
		t.Error("work case should not escape the loop")
	}
}
