package cfg

import (
	"go/ast"
	"go/types"
)

// This file holds the type-aware cancellation queries shared by the ctxflow
// and goleak analyzers: given a loop of the graph, can each iteration
// observe cancellation? Syntactic structure comes from the graph; the
// *types.Info distinguishes a context.Context receiver from an arbitrary
// value with a Done method.

// LoopCancelable reports whether every trip around l can observe
// cancellation. A loop qualifies when
//
//   - it ranges over a channel (a close() ends it),
//   - its body contains a receive from a context's Done() channel or a call
//     to a context's Err() method, or
//   - its body contains a select/receive on some channel from which control
//     escapes the loop (the done-channel idiom: `case <-done: return`).
func (g *Graph) LoopCancelable(l *Loop, info *types.Info) bool {
	if r, ok := l.Stmt.(*ast.RangeStmt); ok && isChanType(info.TypeOf(r.X)) {
		return true
	}
	for _, blk := range l.Body {
		for _, n := range blk.Nodes {
			if nodeHasCtxCheck(n, info) {
				return true
			}
			// A receive (select comm or plain) whose continuation can leave
			// the loop without coming back around.
			if recvStmt(n, info) && g.Escapes(l, blk) {
				return true
			}
		}
	}
	// The head's own nodes (a condition like `ctx.Err() == nil`).
	for _, n := range l.Head.Nodes {
		if nodeHasCtxCheck(n, info) {
			return true
		}
	}
	return false
}

// nodeHasCtxCheck reports whether the node contains `<-ctx.Done()` or
// `ctx.Err()` for a context.Context-typed ctx. Function literals are not
// descended into — their bodies run on their own schedule.
func nodeHasCtxCheck(root ast.Node, info *types.Info) bool {
	found := false
	ast.Inspect(root, func(n ast.Node) bool {
		if found {
			return false
		}
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if sel.Sel.Name != "Done" && sel.Sel.Name != "Err" {
			return true
		}
		if IsContextType(info.TypeOf(sel.X)) {
			found = true
			return false
		}
		return true
	})
	return found
}

// recvStmt reports whether the statement performs a channel receive at its
// top level (a select comm clause's `<-ch` / `v := <-ch`, or a plain
// receive statement).
func recvStmt(n ast.Node, info *types.Info) bool {
	expr := func(e ast.Expr) bool {
		u, ok := e.(*ast.UnaryExpr)
		return ok && u.Op.String() == "<-" && isChanType(info.TypeOf(u.X))
	}
	switch s := n.(type) {
	case *ast.ExprStmt:
		return expr(s.X)
	case *ast.AssignStmt:
		return len(s.Rhs) == 1 && expr(s.Rhs[0])
	}
	return false
}

func isChanType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Chan)
	return ok
}

// IsContextType reports whether t is context.Context (possibly through a
// named alias).
func IsContextType(t types.Type) bool {
	if t == nil {
		return false
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
