// Package cfg builds intra-procedural control-flow graphs over go/ast
// function bodies, for the dataflow analyzers in the odbglint suite. It is
// a deliberately small mirror of golang.org/x/tools/go/cfg: basic blocks of
// statements connected by successor edges, a synthetic entry and exit, and
// the two queries the analyzers need — reachability and the set of loops
// (with the blocks each loop body comprises).
//
// The graph is built syntactically, one block per straight-line run of
// statements, with edges for if/for/range/switch/select/branch/return
// control flow. Function literals nested in a body are NOT traversed: a
// closure runs on its own schedule (possibly on another goroutine), so each
// literal gets its own graph via New. Panics and deferred calls are ignored
// — the analyzers built on top reason about cooperative cancellation and
// sink reachability, for which ordinary control flow is the right
// abstraction.
package cfg

import (
	"go/ast"
	"go/token"
)

// Graph is the control-flow graph of one function body.
type Graph struct {
	// Entry is the block control enters first. Exit is the synthetic block
	// every return (and the fall-off-the-end path) feeds; it holds no
	// statements and has no successors.
	Entry, Exit *Block
	// Blocks lists every block in creation order; Blocks[i].Index == i.
	Blocks []*Block
	// Loops records each for/range statement encountered, outermost first,
	// with the block span of its body. Loops formed only by goto are not
	// recorded.
	Loops []*Loop
}

// Block is a basic block: statements that execute in sequence, then a
// transfer to one of Succs.
type Block struct {
	Index int
	// Nodes holds the block's statements and control expressions in source
	// order: plain statements verbatim, the Cond of an if/for that ends the
	// block, the comm statement of a select case, and the range statement
	// itself for a range head.
	Nodes []ast.Node
	Succs []*Block
}

// Loop is one for or range statement of the body.
type Loop struct {
	// Stmt is the *ast.ForStmt or *ast.RangeStmt.
	Stmt ast.Stmt
	// Head is the block the back edge returns to (the condition / range
	// head).
	Head *Block
	// Body lists the blocks created for the loop body — including any
	// nested loops' blocks, which belong to the outer body too.
	Body []*Block
	// Unbounded marks a `for { ... }` with no condition and no range
	// clause: control leaves only through break, return, or goto.
	Unbounded bool
}

// New builds the graph of one function body (from an *ast.FuncDecl.Body or
// *ast.FuncLit.Body). A nil body yields a graph whose entry is its exit.
func New(body *ast.BlockStmt) *Graph {
	g := &Graph{}
	b := &builder{g: g}
	g.Exit = b.newBlock() // Index 0
	g.Entry = b.newBlock()
	if body != nil {
		cur := b.stmts(body.List, g.Entry)
		b.edge(cur, g.Exit)
		b.resolveGotos()
	} else {
		b.edge(g.Entry, g.Exit)
	}
	return g
}

// Reachable returns the set of blocks reachable from `from` (inclusive),
// following successor edges.
func (g *Graph) Reachable(from *Block) map[*Block]bool {
	seen := map[*Block]bool{from: true}
	work := []*Block{from}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return seen
}

// Escapes reports whether, starting from `from`, control can leave the
// loop without passing through its head: it reaches the function exit or
// any block outside the loop body. This is the query the cancellation
// analyzers use — a `case <-done: return` inside a loop is an escape, a
// case that merely continues the loop is not.
func (g *Graph) Escapes(l *Loop, from *Block) bool {
	inBody := make(map[*Block]bool, len(l.Body))
	for _, b := range l.Body {
		inBody[b] = true
	}
	seen := map[*Block]bool{from: true}
	work := []*Block{from}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		if b == g.Exit || (!inBody[b] && b != l.Head && b != from) {
			return true
		}
		if b == l.Head {
			continue // looped around; do not search past the head
		}
		for _, s := range b.Succs {
			if !seen[s] {
				seen[s] = true
				work = append(work, s)
			}
		}
	}
	return false
}

// builder constructs the graph one statement at a time. Each stmt method
// takes the current block and returns the block where following statements
// continue (possibly a fresh, unreachable block after a return or branch).
type builder struct {
	g *Graph

	// breaks and continues are stacks of enclosing targets; label "" is the
	// innermost loop/switch/select.
	breaks    []ctrlTarget
	continues []ctrlTarget

	labels map[string]*Block
	gotos  []pendingGoto
}

type ctrlTarget struct {
	label string
	block *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

func (b *builder) newBlock() *Block {
	blk := &Block{Index: len(b.g.Blocks)}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *builder) edge(from, to *Block) {
	for _, s := range from.Succs {
		if s == to {
			return
		}
	}
	from.Succs = append(from.Succs, to)
}

func (b *builder) stmts(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		cur = b.stmt(s, cur, "")
	}
	return cur
}

// stmt extends the graph with one statement. label is the pending label
// when s is the body of a LabeledStmt (so break/continue can target it).
func (b *builder) stmt(s ast.Stmt, cur *Block, label string) *Block {
	switch s := s.(type) {
	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.LabeledStmt:
		// The label names a join point goto can target; loops and switches
		// additionally register it as a break/continue target.
		target := b.newBlock()
		b.edge(cur, target)
		if b.labels == nil {
			b.labels = make(map[string]*Block)
		}
		b.labels[s.Label.Name] = target
		return b.stmt(s.Stmt, target, s.Label.Name)

	case *ast.IfStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		then := b.newBlock()
		b.edge(cur, then)
		thenEnd := b.stmts(s.Body.List, then)
		after := b.newBlock()
		b.edge(thenEnd, after)
		if s.Else != nil {
			els := b.newBlock()
			b.edge(cur, els)
			elseEnd := b.stmt(s.Else, els, "")
			b.edge(elseEnd, after)
		} else {
			b.edge(cur, after)
		}
		return after

	case *ast.ForStmt:
		if s.Init != nil {
			cur.Nodes = append(cur.Nodes, s.Init)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		after := b.newBlock()
		if s.Cond != nil {
			b.edge(head, after)
		}
		loop := &Loop{Stmt: s, Head: head, Unbounded: s.Cond == nil}
		b.g.Loops = append(b.g.Loops, loop)

		bodyStart := len(b.g.Blocks)
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(label, after, head)
		bodyEnd := b.stmts(s.Body.List, body)
		b.popLoop()
		if s.Post != nil {
			bodyEnd.Nodes = append(bodyEnd.Nodes, s.Post)
		}
		b.edge(bodyEnd, head) // back edge
		loop.Body = b.g.Blocks[bodyStart:len(b.g.Blocks)]
		return after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.edge(cur, head)
		head.Nodes = append(head.Nodes, s)
		after := b.newBlock()
		b.edge(head, after) // range exhausts (or channel closes)
		loop := &Loop{Stmt: s, Head: head}
		b.g.Loops = append(b.g.Loops, loop)

		bodyStart := len(b.g.Blocks)
		body := b.newBlock()
		b.edge(head, body)
		b.pushLoop(label, after, head)
		bodyEnd := b.stmts(s.Body.List, body)
		b.popLoop()
		b.edge(bodyEnd, head) // back edge
		loop.Body = b.g.Blocks[bodyStart:len(b.g.Blocks)]
		return after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var bodyList []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			if sw.Init != nil {
				cur.Nodes = append(cur.Nodes, sw.Init)
			}
			if sw.Tag != nil {
				cur.Nodes = append(cur.Nodes, sw.Tag)
			}
			bodyList = sw.Body.List
		case *ast.TypeSwitchStmt:
			if sw.Init != nil {
				cur.Nodes = append(cur.Nodes, sw.Init)
			}
			cur.Nodes = append(cur.Nodes, sw.Assign)
			bodyList = sw.Body.List
		}
		after := b.newBlock()
		b.breaks = append(b.breaks, ctrlTarget{label: label, block: after}, ctrlTarget{label: "", block: after})
		hasDefault := false
		var caseBlocks []*Block
		var caseClauses []*ast.CaseClause
		for _, cs := range bodyList {
			cc := cs.(*ast.CaseClause)
			blk := b.newBlock()
			b.edge(cur, blk)
			for _, e := range cc.List {
				blk.Nodes = append(blk.Nodes, e)
			}
			if cc.List == nil {
				hasDefault = true
			}
			caseBlocks = append(caseBlocks, blk)
			caseClauses = append(caseClauses, cc)
		}
		for i, cc := range caseClauses {
			end := b.stmts(cc.Body, caseBlocks[i])
			if ft := fallsThrough(cc.Body); ft && i+1 < len(caseBlocks) {
				b.edge(end, caseBlocks[i+1])
			} else {
				b.edge(end, after)
			}
		}
		if !hasDefault {
			b.edge(cur, after)
		}
		b.breaks = b.breaks[:len(b.breaks)-2]
		return after

	case *ast.SelectStmt:
		after := b.newBlock()
		b.breaks = append(b.breaks, ctrlTarget{label: label, block: after}, ctrlTarget{label: "", block: after})
		for _, cs := range s.Body.List {
			cc := cs.(*ast.CommClause)
			blk := b.newBlock()
			b.edge(cur, blk)
			if cc.Comm != nil {
				blk.Nodes = append(blk.Nodes, cc.Comm)
			}
			end := b.stmts(cc.Body, blk)
			b.edge(end, after)
		}
		if len(s.Body.List) == 0 {
			// An empty select blocks forever: no successors.
		}
		b.breaks = b.breaks[:len(b.breaks)-2]
		return after

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.g.Exit)
		return b.newBlock() // dead continuation

	case *ast.BranchStmt:
		switch s.Tok {
		case token.BREAK:
			if t := findTarget(b.breaks, labelName(s)); t != nil {
				b.edge(cur, t)
			}
			return b.newBlock()
		case token.CONTINUE:
			if t := findTarget(b.continues, labelName(s)); t != nil {
				b.edge(cur, t)
			}
			return b.newBlock()
		case token.GOTO:
			b.gotos = append(b.gotos, pendingGoto{from: cur, label: s.Label.Name})
			return b.newBlock()
		case token.FALLTHROUGH:
			// Handled structurally by the switch builder.
			return cur
		}
		return cur

	default:
		// Plain statement: declarations, assignments, sends, expression
		// statements (including calls, go, defer), inc/dec, empty.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

func (b *builder) pushLoop(label string, brk, cont *Block) {
	b.breaks = append(b.breaks, ctrlTarget{label: label, block: brk}, ctrlTarget{label: "", block: brk})
	b.continues = append(b.continues, ctrlTarget{label: label, block: cont}, ctrlTarget{label: "", block: cont})
}

func (b *builder) popLoop() {
	b.breaks = b.breaks[:len(b.breaks)-2]
	b.continues = b.continues[:len(b.continues)-2]
}

func (b *builder) resolveGotos() {
	for _, g := range b.gotos {
		if t, ok := b.labels[g.label]; ok {
			b.edge(g.from, t)
		}
	}
}

func labelName(s *ast.BranchStmt) string {
	if s.Label != nil {
		return s.Label.Name
	}
	return ""
}

// findTarget resolves a break/continue label against the target stack,
// innermost first. label "" matches the innermost unlabeled target.
func findTarget(stack []ctrlTarget, label string) *Block {
	for i := len(stack) - 1; i >= 0; i-- {
		if stack[i].label == label && (label != "" || stack[i].block != nil) {
			return stack[i].block
		}
	}
	return nil
}

// fallsThrough reports whether a case body ends in a fallthrough statement.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}
