// Package lifecycle implements a typestate analyzer driven by declarative
// protocol specs. Each spec names methods of one type (the WAL backend, the
// buffer pool, the span recorder) and the order they must be called in;
// the analyzer explores every intra-procedural CFG path and reports calls
// that a spec forbids in the state the path has reached.
//
// Two spec shapes cover the protocols the durability and tracing stacks
// rely on:
//
//   - A StateSpec is a small state machine: Log* methods stage records,
//     Commit seals them, and Checkpoint is forbidden while records are
//     staged. A poison method latches a fatal error; after it, every
//     protocol method is forbidden until a check method has observed the
//     failure.
//
//   - A PairSpec balances an acquire against a release: the span returned
//     by Recorder.Start must reach Finish — or be handed off (passed to a
//     call, returned, stored, captured by a closure) — on every path, and
//     each BufferPool.Ref must be balanced by an Unref on the same page
//     expression.
//
// Specs match by type, not by caller package: a protocol holds wherever
// its type is used (the engine, the simulator, the GC heap). Every spec
// type is defined in a package under analysis.ConcurrentDirs, so the
// notion of protocol-carrying code stays aligned with the other
// concurrency analyzers.
//
// The analysis is path-sensitive but intra-procedural, and deliberately
// leans on consume-on-escape: once a tracked value is passed to any call,
// returned, stored, or captured, responsibility for it has moved and the
// path is done. That keeps helpers like finishGCSpan (which finishes the
// span it is handed) out of false positives without inter-procedural
// reasoning. Nil-guard branches (`if sp != nil { ... }`) are understood:
// on the nil edge there is nothing to finish.
package lifecycle

import (
	"go/ast"
	"go/token"
	"go/types"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/cfg"
)

// A TypeRef names a type by its defining package directory (module
// relative, matched as a path-segment run like analysis.PathCovered) and
// its type name.
type TypeRef struct {
	Dir  string
	Name string
}

// A StateSpec is a protocol state machine over the methods of one type.
type StateSpec struct {
	Label   string          // noun for messages, e.g. "WAL"
	Types   []TypeRef       // types carrying the protocol (interface or concrete)
	Stage   map[string]bool // methods that move any healthy state to staged
	Commit  string          // staged -> idle
	Barrier string          // forbidden while staged
	Poison  string          // latches a fatal error (unexported: intra-package only)
	Check   string          // observes the latched error, clearing the poisoned state
}

// A PairSpec balances an acquire call against a release call.
type PairSpec struct {
	Label      string // noun for messages, e.g. "span"
	Types      []TypeRef
	Acquire    string
	Release    string // tracked value is the release's first argument
	ResultMode bool   // true: track Acquire's result; false: track (receiver, first arg)
}

// walSpec is the durability protocol: storage.Backend is the interface the
// engine, simulator, and GC heap log through; disk.Store is the concrete
// store the crash tests drive directly. Both carry the same state machine.
var walSpec = &StateSpec{
	Label: "WAL",
	Types: []TypeRef{
		{Dir: "internal/storage", Name: "Backend"},
		{Dir: "internal/storage/disk", Name: "Store"},
	},
	Stage: map[string]bool{
		"LogAlloc": true, "LogSet": true, "LogRoot": true, "LogReclaim": true,
	},
	Commit:  "Commit",
	Barrier: "Checkpoint",
	Poison:  "poison",
	Check:   "failed",
}

var stateSpecs = []*StateSpec{walSpec}

var pairSpecs = []*PairSpec{
	{
		Label:      "span",
		Types:      []TypeRef{{Dir: "internal/obs/span", Name: "Recorder"}},
		Acquire:    "Start",
		Release:    "Finish",
		ResultMode: true,
	},
	{
		Label:   "page ref",
		Types:   []TypeRef{{Dir: "internal/storage", Name: "BufferPool"}},
		Acquire: "Ref",
		Release: "Unref",
	},
}

// Analyzer reports protocol-order violations: checkpoints over staged WAL
// records, WAL calls after poison, spans that never reach Finish, and
// unbalanced buffer-pool refs.
var Analyzer = &analysis.Analyzer{
	Name: "lifecycle",
	Doc:  "check declarative call-order protocols (WAL staging, span pairing, buffer refs) along CFG paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkBody(pass, fd.Body)
			// Function literals get their own graphs: cfg.New does not
			// traverse them, and a closure's paths are its own.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if fl, ok := n.(*ast.FuncLit); ok {
					checkBody(pass, fl.Body)
				}
				return true
			})
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, body *ast.BlockStmt) {
	g := cfg.New(body)
	for _, spec := range stateSpecs {
		checkStateMachine(pass, g, spec)
	}
	for _, spec := range pairSpecs {
		checkPairs(pass, g, spec)
	}
}

// matchType reports whether t (after stripping pointers) is one of the
// named types the spec applies to.
func matchType(t types.Type, refs []TypeRef) bool {
	if t == nil {
		return false
	}
	if p, ok := t.Underlying().(*types.Pointer); ok {
		t = p.Elem()
	}
	n, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := n.Obj()
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	for _, r := range refs {
		if obj.Name() == r.Name && analysis.PathCovered(obj.Pkg().Path(), []string{r.Dir}) {
			return true
		}
	}
	return false
}

// specCall decomposes a call into (receiver expr, method name) when the
// receiver's type matches the spec's types. Function-typed calls, builtin
// calls, and methods of other types return ok=false.
func specCall(info *types.Info, call *ast.CallExpr, refs []TypeRef) (recv ast.Expr, name string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return nil, "", false
	}
	if _, isConv := info.Types[call.Fun].Type.(*types.Signature); !isConv {
		return nil, "", false
	}
	if !matchType(info.Types[sel.X].Type, refs) {
		return nil, "", false
	}
	return sel.X, sel.Sel.Name, true
}

// ---------------------------------------------------------------------------
// State-machine specs

type stState int

const (
	stNone stState = iota // nothing staged (also the unknown entry state)
	stStaged
	stPoisoned
)

type stKind int

const (
	seStage stKind = iota
	seCommit
	seBarrier
	sePoison
	seCheck
)

type stEvent struct {
	kind stKind
	name string
	pos  token.Pos
}

// checkStateMachine finds every receiver expression the function calls
// spec methods on (each is one protocol instance, keyed by its printed
// form: "d", "s.cfg.Durable", "h.durable") and walks all CFG paths per
// instance.
func checkStateMachine(pass *analysis.Pass, g *cfg.Graph, spec *StateSpec) {
	events := map[string]map[*cfg.Block][]stEvent{}
	for _, b := range g.Blocks {
		for _, node := range b.Nodes {
			// A range head's block holds the whole RangeStmt; its body
			// statements live in their own blocks, so only the ranged-over
			// expression is this block's.
			if rs, ok := node.(*ast.RangeStmt); ok {
				node = rs.X
			}
			bb := b
			ast.Inspect(node, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit, *ast.GoStmt, *ast.DeferStmt:
					// Literals are separate graphs; go/defer calls run on
					// their own schedule, outside this path's order.
					return false
				case *ast.CallExpr:
					recv, name, ok := specCall(pass.TypesInfo, n, spec.Types)
					if !ok {
						return true
					}
					var kind stKind
					switch {
					case spec.Stage[name]:
						kind = seStage
					case name == spec.Commit:
						kind = seCommit
					case name == spec.Barrier:
						kind = seBarrier
					case name == spec.Poison:
						kind = sePoison
					case name == spec.Check:
						kind = seCheck
					default:
						return true
					}
					key := types.ExprString(recv)
					if events[key] == nil {
						events[key] = map[*cfg.Block][]stEvent{}
					}
					events[key][bb] = append(events[key][bb], stEvent{kind: kind, name: name, pos: n.Pos()})
				}
				return true
			})
		}
	}
	for inst, evs := range events {
		simulateState(pass, g, spec, inst, evs)
	}
}

func simulateState(pass *analysis.Pass, g *cfg.Graph, spec *StateSpec, inst string, events map[*cfg.Block][]stEvent) {
	type frame struct {
		b         *cfg.Block
		st        stState
		stageName string
		stageLine int
	}
	type visitKey struct {
		b  *cfg.Block
		st stState
	}
	seen := map[visitKey]bool{}
	reported := map[token.Pos]bool{}
	report := func(ev stEvent, format string, args ...any) {
		if !reported[ev.pos] {
			reported[ev.pos] = true
			pass.Reportf(ev.pos, format, args...)
		}
	}
	stack := []frame{{b: g.Entry}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		k := visitKey{f.b, f.st}
		if seen[k] {
			continue
		}
		seen[k] = true
		st, sn, sl := f.st, f.stageName, f.stageLine
		for _, ev := range events[f.b] {
			switch ev.kind {
			case seStage:
				if st == stPoisoned {
					report(ev, "%s on %s after %s latched a failure with no %s() check on this path",
						ev.name, inst, spec.Poison, spec.Check)
				} else {
					st, sn, sl = stStaged, ev.name, pass.Fset.Position(ev.pos).Line
				}
			case seCommit:
				if st == stPoisoned {
					report(ev, "%s on %s after %s latched a failure with no %s() check on this path",
						ev.name, inst, spec.Poison, spec.Check)
				} else {
					st = stNone
				}
			case seBarrier:
				switch st {
				case stStaged:
					report(ev, "%s on %s with staged records not yet committed (%s at line %d); call %s first",
						ev.name, inst, sn, sl, spec.Commit)
				case stPoisoned:
					report(ev, "%s on %s after %s latched a failure with no %s() check on this path",
						ev.name, inst, spec.Poison, spec.Check)
				}
			case sePoison:
				st = stPoisoned
			case seCheck:
				// Commit and friends report the latched error themselves once
				// it has been observed; checking clears the obligation.
				if st == stPoisoned {
					st = stNone
				}
			}
		}
		for _, s := range f.b.Succs {
			stack = append(stack, frame{b: s, st: st, stageName: sn, stageLine: sl})
		}
	}
}

// ---------------------------------------------------------------------------
// Pairing specs

// checkPairs finds each acquire site and follows the tracked value along
// every path from the site.
func checkPairs(pass *analysis.Pass, g *cfg.Graph, spec *PairSpec) {
	for _, b := range g.Blocks {
		for i, node := range b.Nodes {
			if rs, ok := node.(*ast.RangeStmt); ok {
				node = rs.X
			}
			call, form := acquireAt(pass.TypesInfo, node, spec)
			if call == nil {
				continue
			}
			if spec.ResultMode {
				startResult(pass, g, spec, b, i, node, call, form)
			} else {
				startArg(pass, g, spec, b, i, call, form)
			}
		}
	}
}

// acquireForm classifies how an acquire call sits in its statement.
type acquireForm int

const (
	formNone     acquireForm = iota
	formAssign               // v := B.Acquire(...) or v = B.Acquire(...)
	formDiscard              // B.Acquire(...) as a bare statement
	formCond                 // if B.Acquire(...) { ... } — the call is the branch condition
	formCondNeg              // if !B.Acquire(...) { ... }
	formConsumed             // nested in a larger expression: consumed on the spot
)

// acquireAt reports the acquire call a block node carries, if any, and the
// form it takes. Only the outermost statement shapes are recognized; an
// acquire nested deeper (an argument to another call, a composite literal
// field) is consumed where it stands and needs no tracking.
func acquireAt(info *types.Info, node ast.Node, spec *PairSpec) (*ast.CallExpr, acquireForm) {
	isAcq := func(e ast.Expr) *ast.CallExpr {
		call, ok := unparen(e).(*ast.CallExpr)
		if !ok {
			return nil
		}
		if _, name, ok := specCall(info, call, spec.Types); !ok || name != spec.Acquire {
			return nil
		}
		return call
	}
	switch n := node.(type) {
	case *ast.AssignStmt:
		if len(n.Lhs) == 1 && len(n.Rhs) == 1 {
			if call := isAcq(n.Rhs[0]); call != nil {
				return call, formAssign
			}
		}
	case *ast.ExprStmt:
		if call := isAcq(n.X); call != nil {
			return call, formDiscard
		}
	case ast.Expr:
		// A bare expression node is a branch condition the CFG hoisted into
		// this block.
		if call := isAcq(n); call != nil {
			return call, formCond
		}
		if u, ok := unparen(n).(*ast.UnaryExpr); ok && u.Op == token.NOT {
			if call := isAcq(u.X); call != nil {
				return call, formCondNeg
			}
		}
	}
	return nil, formNone
}

// ---------------------------------------------------------------------------
// Result-mode pairing (Recorder.Start -> Finish)

// pairEvent classifies what one block node does to a tracked value.
type pairEvent int

const (
	peNone pairEvent = iota
	peRelease
	peDeferRelease
	peEscape     // handed off: call argument, return, store, send, closure capture
	peKill       // the variable was reassigned; the old value is out of scope here
	peCondNil    // branch on v == nil: the then-edge carries nothing to release
	peCondNotNil // branch on v != nil: the else-edge carries nothing
)

func startResult(pass *analysis.Pass, g *cfg.Graph, spec *PairSpec, b *cfg.Block, idx int, node ast.Node, call *ast.CallExpr, form acquireForm) {
	switch form {
	case formDiscard:
		pass.Reportf(call.Pos(), "result of %s is discarded; the %s can never reach %s",
			types.ExprString(call.Fun), spec.Label, spec.Release)
		return
	case formAssign:
	default:
		return // conditions and nested uses consume the result on the spot
	}
	as := node.(*ast.AssignStmt)
	id, ok := as.Lhs[0].(*ast.Ident)
	if !ok || id.Name == "_" {
		return // stored through a selector/index: handed off immediately
	}
	v := pass.TypesInfo.ObjectOf(id)
	if v == nil {
		return
	}

	type frame struct {
		b        *cfg.Block
		i        int
		deferred bool
	}
	type visitKey struct {
		b        *cfg.Block
		deferred bool
	}
	seen := map[visitKey]bool{}
	stack := []frame{{b: b, i: idx + 1}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.i == 0 {
			k := visitKey{f.b, f.deferred}
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		if f.b == g.Exit {
			if !f.deferred {
				pass.Reportf(call.Pos(), "%s from %s is not passed to %s, returned, or handed off on every path",
					spec.Label, types.ExprString(call.Fun), spec.Release)
				return // one report per acquire site
			}
			continue
		}
		deferred := f.deferred
		released := false
		var cond pairEvent
		for i := f.i; i < len(f.b.Nodes); i++ {
			ev := classifyUse(pass.TypesInfo, f.b.Nodes[i], v, spec)
			switch ev {
			case peRelease, peEscape, peKill:
				released = true
			case peDeferRelease:
				deferred = true
			case peCondNil, peCondNotNil:
				if i == len(f.b.Nodes)-1 && len(f.b.Succs) >= 2 {
					cond = ev
				}
			}
			if released {
				break
			}
		}
		if released {
			continue
		}
		if cond != peNone {
			// Succs[0] is the then-edge (cfg builder emits it first). On the
			// edge where the comparison proves v nil there is nothing to
			// release: tracking ends.
			if cond == peCondNotNil {
				stack = append(stack, frame{b: f.b.Succs[0], deferred: deferred})
			} else {
				stack = append(stack, frame{b: f.b.Succs[1], deferred: deferred})
			}
			continue
		}
		for _, s := range f.b.Succs {
			stack = append(stack, frame{b: s, deferred: deferred})
		}
	}
}

// classifyUse reports what node does to the tracked object v. Reads
// through v (v.Field, v.Method(...)) touch a copy of a field or run a
// method and keep the obligation alive; anything that moves the value
// itself — argument, return, store, send, closure capture — ends it.
func classifyUse(info *types.Info, node ast.Node, v types.Object, spec *PairSpec) pairEvent {
	if rs, ok := node.(*ast.RangeStmt); ok {
		node = rs.X
	}
	if ds, ok := node.(*ast.DeferStmt); ok {
		if isReleaseOf(info, ds.Call, v, spec) {
			return peDeferRelease
		}
		if handsOff(info, ds.Call, v, spec) {
			return peEscape
		}
		return peNone
	}
	// A bare expression node is a branch condition; nil comparisons are
	// reads that refine the path, not hand-offs.
	if e, ok := node.(ast.Expr); ok {
		if bin, ok := unparen(e).(*ast.BinaryExpr); ok && (bin.Op == token.EQL || bin.Op == token.NEQ) {
			x, y := unparen(bin.X), unparen(bin.Y)
			if isNil(info, y) && isIdentOf(info, x, v) || isNil(info, x) && isIdentOf(info, y, v) {
				if bin.Op == token.EQL {
					return peCondNil
				}
				return peCondNotNil
			}
		}
	}
	if as, ok := node.(*ast.AssignStmt); ok {
		for _, l := range as.Lhs {
			if isIdentOf(info, l, v) {
				return peKill
			}
		}
	}
	// Release wins over escape: the value's occurrence as the release
	// call's argument is the pairing itself. A release inside a function
	// literal is only a capture at this point — it runs later, if at all.
	released := false
	ast.Inspect(node, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := n.(*ast.CallExpr); ok && isReleaseOf(info, c, v, spec) {
			released = true
		}
		return !released
	})
	if released {
		return peRelease
	}
	if handsOff(info, node, v, spec) {
		return peEscape
	}
	return peNone
}

// isReleaseOf reports whether call is spec.Release on a matching receiver
// with v as its first argument.
func isReleaseOf(info *types.Info, call *ast.CallExpr, v types.Object, spec *PairSpec) bool {
	_, name, ok := specCall(info, call, spec.Types)
	if !ok || name != spec.Release || len(call.Args) == 0 {
		return false
	}
	return isIdentOf(info, call.Args[0], v)
}

// handsOff reports whether node contains a use of v that transfers the
// value itself somewhere this analysis cannot follow. Occurrences as the
// base of a selector (v.Field, v.Method(...)) are reads and do not count;
// every other identifier occurrence — call argument, return value,
// assignment source, channel send, composite literal element, closure
// capture — does. Hand-off ends tracking, so over-approximating here can
// only hide a leak, never invent one.
func handsOff(info *types.Info, node ast.Node, v types.Object, spec *PairSpec) bool {
	selBase := map[*ast.Ident]bool{}
	ast.Inspect(node, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := unparen(sel.X).(*ast.Ident); ok {
				selBase[id] = true
			}
		}
		return true
	})
	handed := false
	ast.Inspect(node, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && !selBase[id] && info.ObjectOf(id) == v {
			handed = true
		}
		return !handed
	})
	return handed
}

// ---------------------------------------------------------------------------
// Arg-mode pairing (BufferPool.Ref -> Unref)

// startArg tracks one Ref site by the printed form of its receiver and
// page argument ("b", "pg"): the balance holds when a matching Unref runs
// (or is deferred) on every path the true-branch of the Ref can take.
func startArg(pass *analysis.Pass, g *cfg.Graph, spec *PairSpec, b *cfg.Block, idx int, call *ast.CallExpr, form acquireForm) {
	if len(call.Args) == 0 {
		return
	}
	recv, _, _ := specCall(pass.TypesInfo, call, spec.Types)
	recvStr := types.ExprString(recv)
	argStr := types.ExprString(call.Args[0])

	type frame struct {
		b        *cfg.Block
		i        int
		depth    int
		deferred int
	}
	type visitKey struct {
		b               *cfg.Block
		depth, deferred int
	}
	const maxDepth = 8 // nested re-refs beyond this abandon the site
	var start []frame
	switch form {
	case formAssign, formDiscard:
		start = []frame{{b: b, i: idx + 1, depth: 1}}
	case formCond:
		// The acquire is the branch condition: the ref is only held on the
		// true edge (Succs[0]; the cfg builder emits the then-edge first).
		if len(b.Succs) >= 2 {
			start = []frame{{b: b.Succs[0], depth: 1}}
		}
	case formCondNeg:
		if len(b.Succs) >= 2 {
			start = []frame{{b: b.Succs[1], depth: 1}}
		}
	default:
		return
	}

	match := func(c *ast.CallExpr, name string) bool {
		r, n, ok := specCall(pass.TypesInfo, c, spec.Types)
		return ok && n == name && len(c.Args) > 0 &&
			types.ExprString(r) == recvStr && types.ExprString(c.Args[0]) == argStr
	}

	seen := map[visitKey]bool{}
	stack := start
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if f.i == 0 {
			k := visitKey{f.b, f.depth, f.deferred}
			if seen[k] {
				continue
			}
			seen[k] = true
		}
		if f.b == g.Exit {
			if f.depth-f.deferred > 0 {
				pass.Reportf(call.Pos(), "%s.%s(%s) is not balanced by %s(%s) on every path",
					recvStr, spec.Acquire, argStr, spec.Release, argStr)
				return
			}
			continue
		}
		depth, deferred := f.depth, f.deferred
		dead := false
		condThen := false // a re-acquire as branch condition: ref held on one edge only
		condAcq := false
		for i := f.i; i < len(f.b.Nodes) && !dead; i++ {
			node := f.b.Nodes[i]
			if rs, ok := node.(*ast.RangeStmt); ok {
				node = rs.X
			}
			// A matching acquire as the block's branch condition holds the
			// ref only on the edge where it returned true; count it on that
			// edge instead of here.
			if e, ok := node.(ast.Expr); ok && i == len(f.b.Nodes)-1 && len(f.b.Succs) >= 2 {
				if c, ok := unparen(e).(*ast.CallExpr); ok && match(c, spec.Acquire) {
					condAcq, condThen = true, true
					continue
				}
				if u, ok := unparen(e).(*ast.UnaryExpr); ok && u.Op == token.NOT {
					if c, ok := unparen(u.X).(*ast.CallExpr); ok && match(c, spec.Acquire) {
						condAcq, condThen = true, false
						continue
					}
				}
			}
			if ds, ok := node.(*ast.DeferStmt); ok {
				if match(ds.Call, spec.Release) {
					deferred++
				} else if fl, ok := ds.Call.Fun.(*ast.FuncLit); ok {
					// defer func() { _ = b.Unref(pg) }() — the closure runs
					// at return; a matching release inside it counts.
					ast.Inspect(fl.Body, func(n ast.Node) bool {
						if c, ok := n.(*ast.CallExpr); ok && match(c, spec.Release) {
							deferred++
						}
						return true
					})
				}
				continue
			}
			if as, ok := node.(*ast.AssignStmt); ok {
				// Reassigning the page variable (or the pool) changes what
				// the printed keys mean; stop tracking rather than guess.
				for _, l := range as.Lhs {
					ls := types.ExprString(l)
					if ls == argStr || ls == recvStr {
						dead = true
					}
				}
				if dead {
					break
				}
			}
			ast.Inspect(node, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				c, ok := n.(*ast.CallExpr)
				if !ok || dead {
					return !dead
				}
				if match(c, spec.Release) {
					depth--
					if depth <= 0 {
						dead = true
					}
				} else if match(c, spec.Acquire) {
					depth++
					if depth > maxDepth {
						dead = true
					}
				}
				return !dead
			})
		}
		if dead {
			continue
		}
		if condAcq {
			then, els := depth+1, depth
			if !condThen {
				then, els = depth, depth+1
			}
			if then <= maxDepth && els <= maxDepth {
				stack = append(stack,
					frame{b: f.b.Succs[0], depth: then, deferred: deferred},
					frame{b: f.b.Succs[1], depth: els, deferred: deferred})
			}
			continue
		}
		for _, s := range f.b.Succs {
			stack = append(stack, frame{b: s, depth: depth, deferred: deferred})
		}
	}
}

// ---------------------------------------------------------------------------
// small helpers

func unparen(e ast.Expr) ast.Expr {
	for {
		p, ok := e.(*ast.ParenExpr)
		if !ok {
			return e
		}
		e = p.X
	}
}

func isNil(info *types.Info, e ast.Expr) bool {
	id, ok := e.(*ast.Ident)
	if !ok {
		return false
	}
	_, isNilConst := info.ObjectOf(id).(*types.Nil)
	return isNilConst
}

func isIdentOf(info *types.Info, e ast.Expr, v types.Object) bool {
	id, ok := unparen(e).(*ast.Ident)
	return ok && info.ObjectOf(id) == v
}
