// Package spans exercises the span pairing spec: every Start must reach
// Finish, be returned, or be handed off on every path, with nil-guard
// branches understood.
package spans

// Span is the tracked value; its fields and methods are reads through the
// pointer, not hand-offs.
type Span struct {
	Start int64
	Seq   uint64
	stage int64
}

// SetStage is nil-safe, like the real span API.
func (s *Span) SetStage(d int64) {
	if s == nil {
		return
	}
	s.stage += d
}

// Recorder matches the spec's type reference.
type Recorder struct {
	spans []*Span
}

func (r *Recorder) Start(op string, t int64) *Span {
	if r == nil {
		return nil
	}
	return &Span{Start: t}
}

func (r *Recorder) Finish(sp *Span, end int64, outcome string) {
	if r == nil || sp == nil {
		return
	}
	r.spans = append(r.spans, sp)
}

type engine struct {
	rec *Recorder
}

// collect mirrors the GC path: nil-guarded start, the error path hands the
// span to a finishing helper, the success path too. True negative.
func (e *engine) collect(t int64, fail bool) {
	var gsp *Span
	if e.rec != nil {
		gsp = e.rec.Start("collect", t)
		gsp.Seq = 1
	}
	if fail {
		if gsp != nil {
			e.finishGC(gsp, t+1)
		}
		return
	}
	if gsp != nil {
		gsp.SetStage(t)
		e.finishGC(gsp, t+2)
	}
}

func (e *engine) finishGC(gsp *Span, end int64) {
	e.rec.Finish(gsp, end, "ok")
}

// session mirrors the server loop: the span is handed to submit, which
// owns it from there. True negative.
func (e *engine) session(ops []string, t int64) {
	for i, op := range ops {
		sp := e.rec.Start(op, t+int64(i))
		if sp != nil {
			sp.Seq = uint64(i)
		}
		e.submit(op, sp)
	}
}

func (e *engine) submit(op string, sp *Span) {
	e.finishGC(sp, 0)
}

// open returns the span: the caller owns it. True negative.
func (e *engine) open(t int64) *Span {
	sp := e.rec.Start("open", t)
	return sp
}

// direct finishes on every path, one of them deferred-free. True negative.
func (e *engine) direct(t int64, slow bool) {
	sp := e.rec.Start("direct", t)
	if slow {
		sp.SetStage(t)
		e.rec.Finish(sp, t+2, "slow")
		return
	}
	e.rec.Finish(sp, t+1, "ok")
}

// abandoned drops the span on the timeout path: the seeded regression.
func (e *engine) abandoned(t int64, timeout bool) {
	sp := e.rec.Start("req", t) // want "span from e.rec.Start is not passed to Finish"
	if timeout {
		return
	}
	e.rec.Finish(sp, t+1, "ok")
}

// fireAndForget never even keeps the span.
func (e *engine) fireAndForget(t int64) {
	e.rec.Start("bg", t) // want "result of e.rec.Start is discarded"
}

// probe drops fast-path spans by design: the reasoned allow is accepted
// and the finding suppressed.
func (e *engine) probe(t int64, slow bool) {
	//lint:allow lifecycle probe spans on the fast path are dropped by design; the recorder reclaims them in bulk
	sp := e.rec.Start("probe", t)
	if slow {
		e.rec.Finish(sp, t+1, "ok")
	}
}

// logger has Start/Finish methods with the same shapes but is not the
// spec's type: no findings.
type logger struct {
	out []*Span
}

func (l *logger) Start(op string, t int64) *Span { return &Span{Start: t} }

func (l *logger) leak(t int64, early bool) {
	sp := l.Start("log", t)
	if early {
		return
	}
	l.out = append(l.out, sp)
}
