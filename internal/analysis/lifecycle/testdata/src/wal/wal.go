// Package wal exercises the WAL state-machine spec on a concrete store —
// the disk.Store shape: Log* stages, Commit seals, Checkpoint is forbidden
// over staged records, and poison latches a failure that only a failed()
// check clears.
package wal

import "errors"

// OID is a stand-in object identifier.
type OID int

// Store carries the protocol: its name and package path match the spec's
// concrete type reference.
type Store struct {
	ops   []int
	fatal error
}

func (s *Store) LogAlloc(oid OID) error                  { s.ops = append(s.ops, int(oid)); return nil }
func (s *Store) LogSet(src OID, slot int, dst OID) error { s.ops = append(s.ops, int(src)); return nil }
func (s *Store) LogRoot(oid OID, on bool) error          { s.ops = append(s.ops, int(oid)); return nil }
func (s *Store) LogReclaim(oids []OID) error             { s.ops = append(s.ops, len(oids)); return nil }
func (s *Store) Commit() error                           { s.ops = s.ops[:0]; return nil }
func (s *Store) Checkpoint() error                       { return nil }

func (s *Store) poison(err error) error {
	if s.fatal == nil {
		s.fatal = err
	}
	return err
}

func (s *Store) failed() error {
	return s.fatal
}

// commitThenCheckpoint follows the protocol. True negative.
func commitThenCheckpoint(s *Store) error {
	if err := s.LogAlloc(1); err != nil {
		return err
	}
	if err := s.LogSet(1, 0, 2); err != nil {
		return err
	}
	if err := s.Commit(); err != nil {
		return err
	}
	return s.Checkpoint()
}

// checkpointStaged checkpoints over records no commit has sealed.
func checkpointStaged(s *Store) error {
	if err := s.LogRoot(1, true); err != nil {
		return err
	}
	return s.Checkpoint() // want "Checkpoint on s with staged records not yet committed"
}

// batchLoop mirrors the crash-test workload: staging in a loop, an
// err-checked commit every batch, a periodic checkpoint. The checkpoint is
// only reachable through the commit, so every path is clean. True negative.
func batchLoop(s *Store, n int) error {
	for c := 0; c < n; c++ {
		for i := 0; i < 3; i++ {
			if err := s.LogSet(OID(i), 0, OID(i+1)); err != nil {
				return err
			}
		}
		if err := s.Commit(); err != nil {
			return err
		}
		if c%7 == 0 {
			if err := s.Checkpoint(); err != nil {
				return err
			}
		}
	}
	return nil
}

// logAfterPoison keeps staging after the store latched a failure: on the
// err path the poison runs and the following log call is a use-after-fatal.
func (s *Store) logAfterPoison(err error) error {
	if err != nil {
		_ = s.poison(err)
	}
	return s.LogRoot(2, false) // want "LogRoot on s after poison latched a failure"
}

// checkedAfterPoison observes the failure before continuing: the failed()
// check clears the obligation. True negative.
func (s *Store) checkedAfterPoison(err error) error {
	if err != nil {
		_ = s.poison(err)
	}
	if ferr := s.failed(); ferr != nil {
		return ferr
	}
	return s.LogRoot(3, true)
}

// poisonAndStop is the real store's own shape: latch and return. True
// negative.
func (s *Store) poisonAndStop(bad bool) error {
	if err := s.LogAlloc(4); err != nil {
		return err
	}
	if bad {
		return s.poison(errors.New("torn write"))
	}
	return s.Commit()
}

// recoveryCheckpoint deliberately images staged records: replay folds the
// WAL tail into the image itself, so the usual order does not apply. The
// reasoned allow is accepted and the finding suppressed.
func recoveryCheckpoint(s *Store) error {
	if err := s.LogAlloc(9); err != nil {
		return err
	}
	//lint:allow lifecycle recovery folds the replayed tail into the image itself; there is no commit to wait for
	return s.Checkpoint()
}
