// Package backend exercises the WAL spec through the Backend interface —
// the shape the engine, simulator, and GC heap log through — including the
// seeded regression: a per-event commit dropped before a phase-boundary
// checkpoint.
package backend

// OID is a stand-in object identifier.
type OID int

// Backend matches the spec's interface type reference: the protocol holds
// for every caller that logs through it, whatever the caller's package.
type Backend interface {
	LogAlloc(oid OID) error
	LogSet(src OID, slot int, dst OID) error
	LogRoot(oid OID, on bool) error
	LogReclaim(oids []OID) error
	Commit() error
	Checkpoint() error
}

type engine struct {
	durable Backend
	commits uint64
	every   uint64
}

// commitDurable mirrors the live engine: commit the staged batch, then the
// periodic checkpoint. True negative.
func (e *engine) commitDurable() error {
	d := e.durable
	if d == nil {
		return nil
	}
	if err := d.Commit(); err != nil {
		return err
	}
	e.commits++
	if e.every > 0 && e.commits%e.every == 0 {
		if err := d.Checkpoint(); err != nil {
			return err
		}
	}
	return nil
}

// create mirrors the heap: stage one record, err-checked; the commit
// belongs to the event boundary in another function. True negative.
func (e *engine) create(oid OID) error {
	if e.durable != nil {
		if err := e.durable.LogAlloc(oid); err != nil {
			return err
		}
	}
	return nil
}

// step is the seeded regression: the simulator's per-event commit was
// dropped, so the phase-boundary checkpoint runs over the event's staged
// records.
func (e *engine) step(oid OID, phase bool) error {
	if e.durable != nil {
		if err := e.durable.LogSet(oid, 0, oid+1); err != nil {
			return err
		}
		if phase {
			if err := e.durable.Checkpoint(); err != nil { // want "Checkpoint on e.durable with staged records not yet committed"
				return err
			}
		}
	}
	return nil
}
