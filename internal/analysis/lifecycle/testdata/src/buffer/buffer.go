// Package buffer exercises the ref-pairing spec on the buffer-pool shape:
// each Ref(pg) must be balanced by an Unref(pg) — directly or deferred —
// on every path where the ref was actually taken.
package buffer

// PageID is a stand-in page number.
type PageID uint32

// BufferPool matches the spec's type reference.
type BufferPool struct {
	refs map[PageID]int
}

func (b *BufferPool) Ref(pg PageID) bool {
	if _, ok := b.refs[pg]; !ok {
		return false
	}
	b.refs[pg]++
	return true
}

func (b *BufferPool) Unref(pg PageID) error {
	b.refs[pg]--
	return nil
}

// pinned holds the ref across the critical section with a deferred
// release; the false edge of the conditional acquire holds nothing. True
// negative.
func pinned(b *BufferPool, pg PageID, work func() error) error {
	if !b.Ref(pg) {
		return nil
	}
	defer func() { _ = b.Unref(pg) }()
	return work()
}

// balanced releases explicitly on both exits. True negative.
func balanced(b *BufferPool, pg PageID, flush bool) error {
	if !b.Ref(pg) {
		return nil
	}
	if flush {
		_ = b.Unref(pg)
		return nil
	}
	return b.Unref(pg)
}

// leaky drops the ref on the flush path.
func leaky(b *BufferPool, pg PageID, flush bool) error {
	if b.Ref(pg) { // want "is not balanced by Unref"
		if flush {
			return nil
		}
		return b.Unref(pg)
	}
	return nil
}

// nested takes the ref twice and releases twice. True negative.
func nested(b *BufferPool, pg PageID) {
	if b.Ref(pg) {
		if b.Ref(pg) {
			_ = b.Unref(pg)
		}
		_ = b.Unref(pg)
	}
}

// renter takes the ref twice but releases once.
func renter(b *BufferPool, pg PageID) {
	if b.Ref(pg) { // want "is not balanced by Unref"
		if b.Ref(pg) {
			_ = b.Unref(pg)
		}
	}
}

// swapped stops tracking when the page variable is reassigned: the
// printed key no longer means the same page. No finding either way.
func swapped(b *BufferPool, pg PageID) {
	if b.Ref(pg) {
		pg = pg + 1
		_ = b.Unref(pg)
	}
}
