package lifecycle_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/lifecycle"
)

// TestWALStore pins the state machine on the concrete store shape:
// checkpoint-over-staged, poison without a check, and the err-checked
// commit loop from the crash-test workload.
func TestWALStore(t *testing.T) {
	analysistest.Run(t, "testdata/src/wal", lifecycle.Analyzer, "example.com/internal/storage/disk")
}

// TestWALBackend pins the same protocol through the interface the engine,
// simulator, and heap log through — including the dropped-commit seeded
// regression.
func TestWALBackend(t *testing.T) {
	analysistest.Run(t, "testdata/src/backend", lifecycle.Analyzer, "example.com/internal/storage")
}

// TestSpanPairing pins Start/Finish pairing: consume-on-escape, nil-guard
// branches, the abandoned-span regression, and the type gate.
func TestSpanPairing(t *testing.T) {
	analysistest.Run(t, "testdata/src/spans", lifecycle.Analyzer, "example.com/internal/obs/span")
}

// TestRefPairing pins Ref/Unref balance on the buffer-pool shape,
// including conditional acquires and nested re-refs.
func TestRefPairing(t *testing.T) {
	analysistest.Run(t, "testdata/src/buffer", lifecycle.Analyzer, "example.com/internal/storage")
}

// TestUnreasonedAllowRejected pins the suppression contract: an allow
// without a reason is itself a finding and suppresses nothing.
func TestUnreasonedAllowRejected(t *testing.T) {
	dir := t.TempDir()
	src := `package span

type Span struct{ Start int64 }

type Recorder struct{ spans []*Span }

func (r *Recorder) Start(op string, t int64) *Span { return &Span{Start: t} }

func (r *Recorder) Finish(sp *Span, end int64, outcome string) {
	r.spans = append(r.spans, sp)
}

func leak(r *Recorder, t int64, early bool) {
	//lint:allow lifecycle
	sp := r.Start("req", t)
	if early {
		return
	}
	r.Finish(sp, t+1, "ok")
}
`
	if err := os.WriteFile(filepath.Join(dir, "span.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := analysistest.LoadPackage(t, dir, "example.com/internal/obs/span")
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{lifecycle.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawFinding bool
	for _, f := range findings {
		if f.Analyzer == "allow" && strings.Contains(f.Message, "no reason") {
			sawMalformed = true
		}
		if f.Analyzer == "lifecycle" {
			sawFinding = true
		}
	}
	if !sawMalformed {
		t.Errorf("unreasoned //lint:allow not reported as malformed; findings: %v", findings)
	}
	if !sawFinding {
		t.Errorf("unreasoned //lint:allow suppressed the lifecycle finding; findings: %v", findings)
	}
}
