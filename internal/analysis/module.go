package analysis

import (
	"go/token"
	"strings"
)

// Module is the whole-program view a dataflow analyzer sees: every package
// the driver loaded for this run, plus lazily built module-wide artifacts
// (the call graph, sink indexes) shared across analyzers through Memo.
//
// Single-package runs — the analysistest harness, a driver invocation on one
// directory — get a Module containing just that package, so interprocedural
// analyzers degrade gracefully to intra-package analysis instead of needing
// a separate code path.
type Module struct {
	Packages []*Package

	memo   map[string]any
	allows map[allowKey]map[string]bool
}

// NewModule wraps the loaded packages for module-wide analysis.
func NewModule(pkgs []*Package) *Module {
	return &Module{Packages: pkgs, memo: make(map[string]any)}
}

// Memo returns the cached artifact under key, building it on first use.
// Analyzers use it to share one call graph (or other whole-module indexes)
// across the analyzer suite instead of rebuilding per pass.
func (m *Module) Memo(key string, build func() (any, error)) (any, error) {
	if v, ok := m.memo[key]; ok {
		return v, nil
	}
	v, err := build()
	if err != nil {
		return nil, err
	}
	m.memo[key] = v
	return v, nil
}

// Memoized reports whether key already has a cached artifact — batch
// prewarmers use it to skip work another path already did.
func (m *Module) Memoized(key string) bool {
	_, ok := m.memo[key]
	return ok
}

// AllowedAt reports whether a well-formed //lint:allow comment for the named
// analyzer covers pos, looking across every package of the module. Unlike
// the per-package suppression filter applied to findings, this lets a
// transitive analyzer honor a suppression at its *sink*: a wall-clock read
// annotated //lint:allow detrand stops being a forbidden endpoint for
// detrand-transitive's whole-chain search, so one reasoned allow covers
// every caller instead of demanding one per chain.
func (m *Module) AllowedAt(analyzer string, pos token.Position) bool {
	if m.allows == nil {
		m.allows = make(map[allowKey]map[string]bool)
		for _, pkg := range m.Packages {
			for _, f := range pkg.Files {
				for _, cg := range f.Comments {
					for _, c := range cg.List {
						text := strings.TrimSpace(c.Text)
						if !strings.HasPrefix(text, AllowPrefix) {
							continue
						}
						fields := strings.Fields(strings.TrimPrefix(text, AllowPrefix))
						if len(fields) < 2 {
							continue // unreasoned; never suppresses
						}
						p := pkg.Fset.Position(c.End())
						k := allowKey{file: p.Filename, line: p.Line}
						if m.allows[k] == nil {
							m.allows[k] = make(map[string]bool)
						}
						m.allows[k][fields[0]] = true
					}
				}
			}
		}
	}
	if m.allows[allowKey{pos.Filename, pos.Line}][analyzer] {
		return true
	}
	return m.allows[allowKey{pos.Filename, pos.Line - 1}][analyzer]
}
