package analysis

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
	"sort"
)

// Package is one loaded, parsed, typechecked package of the module.
type Package struct {
	PkgPath string
	Name    string
	Dir     string
	Fset    *token.FileSet
	Files   []*ast.File
	Types   *types.Package
	Info    *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Standard   bool
	DepOnly    bool
}

// Load lists the packages matching patterns under dir (a directory inside
// the module), parses their non-test Go files, and typechecks them. Module
// packages are typechecked from source; imports outside the module (the
// standard library) are resolved with the stdlib source importer, so no
// external tooling beyond the go command itself is required.
//
// Only packages directly matched by the patterns are returned; their
// intra-module dependencies are loaded as needed but not analyzed.
func Load(fset *token.FileSet, dir string, patterns []string) ([]*Package, error) {
	args := append([]string{"list", "-e", "-json", "-deps", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return nil, fmt.Errorf("analysis: go list %v: %v\n%s", patterns, err, stderr.String())
	}

	ld := &loader{
		fset:  fset,
		meta:  make(map[string]*listedPackage),
		built: make(map[string]*Package),
		busy:  make(map[string]bool),
	}
	ld.std = importer.ForCompiler(fset, "source", nil).(types.ImporterFrom)

	var roots []string
	dec := json.NewDecoder(&stdout)
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("analysis: decoding go list output: %v", err)
		}
		if lp.Standard || len(lp.GoFiles) == 0 {
			continue
		}
		p := lp
		ld.meta[p.ImportPath] = &p
		if !p.DepOnly {
			roots = append(roots, p.ImportPath)
		}
	}
	sort.Strings(roots)

	var out []*Package
	for _, path := range roots {
		pkg, err := ld.load(path)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	return out, nil
}

// loader typechecks module packages on demand, in dependency order, sharing
// one file set and one stdlib importer across the whole run.
type loader struct {
	fset  *token.FileSet
	std   types.ImporterFrom
	meta  map[string]*listedPackage
	built map[string]*Package
	busy  map[string]bool
}

func (l *loader) load(path string) (*Package, error) {
	if p, ok := l.built[path]; ok {
		return p, nil
	}
	if l.busy[path] {
		return nil, fmt.Errorf("analysis: import cycle through %s", path)
	}
	l.busy[path] = true
	defer delete(l.busy, path)

	m := l.meta[path]
	var files []*ast.File
	for _, name := range m.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(m.Dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("analysis: parsing %s: %v", name, err)
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: l}
	tpkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("analysis: typechecking %s: %v", path, err)
	}
	p := &Package{
		PkgPath: path,
		Name:    m.Name,
		Dir:     m.Dir,
		Fset:    l.fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}
	l.built[path] = p
	return p, nil
}

// Import implements types.Importer.
func (l *loader) Import(path string) (*types.Package, error) {
	return l.ImportFrom(path, "", 0)
}

// ImportFrom implements types.ImporterFrom: module packages are typechecked
// by the loader itself, everything else falls through to the source
// importer.
func (l *loader) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if _, ok := l.meta[path]; ok {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.Types, nil
	}
	return l.std.ImportFrom(path, srcDir, mode)
}
