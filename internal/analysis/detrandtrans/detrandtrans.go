// Package detrandtrans extends detrand through the module call graph:
// a deterministic package must not reach unseeded randomness, the wall
// clock, or the environment through ANY chain of calls, not just directly.
// detrand catches `time.Now()` written inside internal/sim; this analyzer
// catches internal/sim calling a helper in an uncovered package that calls
// `time.Now()` three frames down.
//
// Findings point at the first call of the chain — the line inside the
// deterministic package where determinism leaks out — and name the chain
// and the sink, so the fix site (thread the value, or annotate the sink)
// is visible from the diagnostic alone.
//
// Suppression composes with detrand's: a sink annotated with a reasoned
// //lint:allow detrand (or detrand-transitive) stops being a forbidden
// endpoint for the whole-chain search, so one allow at the sink covers
// every caller instead of demanding one per chain. Chains of length zero
// (the forbidden call in the function's own body) are detrand's job and
// are not re-reported here.
package detrandtrans

import (
	"fmt"
	"go/ast"
	"go/types"
	"strings"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/callgraph"
	"odbgc/internal/analysis/detrand"
)

// Analyzer is the detrand-transitive check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand-transitive",
	Doc:  "forbid call chains from deterministic packages to randomness, clocks, or the environment",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	if !detrand.Covered(pass.Pkg.Path()) {
		return nil
	}
	graph := callgraph.For(pass.Module)
	sinks := sinkIndex(pass.Module, graph)
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			path := graph.PathTo(fn, func(n *callgraph.Node) bool {
				return len(sinks[n]) > 0
			})
			if path == nil {
				continue
			}
			var chain []string
			for _, e := range path {
				chain = append(chain, e.Callee.Func.Name())
			}
			sink := sinks[path[len(path)-1].Callee][0]
			pass.Reportf(path[0].Pos(),
				"deterministic package reaches %s via %s; thread the value through the config or add //lint:allow detrand at the sink",
				sink, strings.Join(chain, " -> "))
		}
	}
	return nil
}

// sinkMemoKey namespaces the sink index in the module memo.
const sinkMemoKey = "detrandtrans.sinks"

// sinkIndex maps each module function to the forbidden calls its own body
// makes, computed once per run. Sinks carrying a reasoned //lint:allow for
// detrand or detrand-transitive are dropped here, which is what lets one
// annotation at the sink silence every chain that reaches it.
func sinkIndex(mod *analysis.Module, graph *callgraph.Graph) map[*callgraph.Node][]string {
	v, _ := mod.Memo(sinkMemoKey, func() (any, error) {
		sinks := make(map[*callgraph.Node][]string)
		for _, n := range graph.Nodes() {
			node := n
			ast.Inspect(node.Decl, func(x ast.Node) bool {
				call, ok := x.(*ast.CallExpr)
				if !ok {
					return true
				}
				desc, ok := detrand.Forbidden(node.Pkg.Info, call)
				if !ok {
					return true
				}
				pos := node.Pkg.Fset.Position(call.Pos())
				if mod.AllowedAt("detrand", pos) || mod.AllowedAt("detrand-transitive", pos) {
					return true
				}
				sinks[node] = append(sinks[node], fmt.Sprintf("%s at %s:%d", desc, pos.Filename, pos.Line))
				return true
			})
		}
		return sinks, nil
	})
	return v.(map[*callgraph.Node][]string)
}
