package detrandtrans_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/detrandtrans"
)

func TestChains(t *testing.T) {
	analysistest.Run(t, "testdata/src/sched", detrandtrans.Analyzer, "example.com/internal/sim/sched")
}

// TestUncoveredPackageExempt reruns the same fixture under an uncovered
// import path: chains out of non-deterministic packages are fine, so the
// fixture's want comments must NOT match — which analysistest enforces by
// failing on unmatched wants. A dedicated fixture-free check keeps this
// direct instead.
func TestUncoveredPackageExempt(t *testing.T) {
	pkg := analysistest.LoadPackage(t, "testdata/src/sched", "example.com/internal/report")
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{detrandtrans.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	for _, f := range findings {
		if f.Analyzer == "detrand-transitive" {
			t.Errorf("finding in uncovered package: %v", f)
		}
	}
}

// TestUnreasonedAllowRejected pins the suppression contract at the sink: an
// allow without a reason neither silences the chain nor passes itself.
func TestUnreasonedAllowRejected(t *testing.T) {
	dir := t.TempDir()
	src := `package sched

import "time"

func sink() time.Time {
	//lint:allow detrand-transitive
	return time.Now()
}

func Chain() time.Time {
	return sink()
}
`
	if err := os.WriteFile(filepath.Join(dir, "sched.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := analysistest.LoadPackage(t, dir, "example.com/internal/sim/sched")
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{detrandtrans.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawFinding bool
	for _, f := range findings {
		if f.Analyzer == "allow" && strings.Contains(f.Message, "no reason") {
			sawMalformed = true
		}
		if f.Analyzer == "detrand-transitive" {
			sawFinding = true
		}
	}
	if !sawMalformed {
		t.Errorf("unreasoned //lint:allow not reported as malformed; findings: %v", findings)
	}
	if !sawFinding {
		t.Errorf("unreasoned //lint:allow at the sink suppressed the chain finding; findings: %v", findings)
	}
}
