// Package sched exercises the detrand-transitive chain search: forbidden
// endpoints reached through one and two call hops, a sink silenced by a
// reasoned allow, and pure code that must stay silent.
package sched

import (
	"math/rand"
	"time"
)

// wallClock makes the direct forbidden call. The direct call is detrand's
// finding, not this analyzer's — chains here start at length one.
func wallClock() int64 {
	return time.Now().UnixNano()
}

func viaHelper() int64 {
	return wallClock() // want "reaches time.Now \\(wall clock\\) at .* via wallClock"
}

func Schedule() int64 {
	return viaHelper() // want "reaches time.Now \\(wall clock\\) at .* via viaHelper -> wallClock"
}

func roll() int {
	return rand.Intn(6)
}

func Jitter() int {
	return roll() // want "reaches rand.Intn \\(unseeded randomness\\) at .* via roll"
}

// Seeded draws from a generator the caller seeded: legal everywhere.
func Seeded(r *rand.Rand) int {
	return seededRoll(r)
}

func seededRoll(r *rand.Rand) int {
	return r.Intn(6)
}

// guardTimer's wall-clock read carries a reasoned allow, so no chain that
// ends here is a finding.
func guardTimer() time.Time {
	//lint:allow detrand-transitive watchdog deadline is wall-clock by design
	return time.Now()
}

func Guard() time.Time {
	return guardTimer()
}
