package hotdefer

import (
	"path/filepath"
	"testing"

	"odbgc/internal/analysis/analysistest"
)

func TestHotdefer(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "deferpkg"), Analyzer, "example.com/deferpkg")
}
