// Package deferpkg is the hotdefer fixture: a defer directly inside a hot
// loop is a finding; a defer scoped to a func literal inside the loop, a
// defer outside loops, and defers in cold functions are not.
package deferpkg

import (
	"sync"
	"testing"
)

var mu sync.Mutex
var count int

func BenchmarkWork(b *testing.B) {
	for i := 0; i < b.N; i++ {
		work(8)
		tail(8)
	}
}

func work(n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		defer mu.Unlock() // want "defer inside hot loop"
		count++
	}
	for i := 0; i < n; i++ {
		func() {
			mu.Lock()
			defer mu.Unlock() // scoped to the func literal: no finding
			count++
		}()
	}
	for i := 0; i < n; i++ {
		mu.Lock()
		defer cleanup() //lint:allow hotdefer fixture demonstrates a reasoned suppression
	}
}

func cleanup() {
	count = 0
	mu.Unlock()
}

// tail defers outside any loop: no finding.
func tail(n int) {
	mu.Lock()
	defer mu.Unlock()
	count += n
}

// cold is unreachable from the benchmark: its loop defer is legal.
func cold(n int) {
	for i := 0; i < n; i++ {
		mu.Lock()
		defer mu.Unlock()
	}
}

var _ = cold
