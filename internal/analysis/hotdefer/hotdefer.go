// Package hotdefer reports defer statements inside hot loops. A defer in a
// loop body runs its bookkeeping — and often an allocation for the deferred
// frame — on every iteration, and the deferred calls pile up until the
// *function* returns, not the iteration: a classic latency and memory trap
// in event loops. The fix is to hoist the defer out of the loop or inline
// the cleanup at the end of the iteration; a deliberate per-iteration defer
// (e.g. scoping a lock inside a func literal) takes a reasoned
// //lint:allow hotdefer.
//
// Purely syntactic — it needs no compiler facts, so it works even where the
// escape table is unavailable.
package hotdefer

import (
	"go/ast"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/cfg"
	"odbgc/internal/analysis/hotpath"
)

// Analyzer is the defer-in-hot-loop check.
var Analyzer = &analysis.Analyzer{
	Name: "hotdefer",
	Doc:  "forbid defer statements inside hot loops",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	region := hotpath.For(pass.Module)
	for _, hd := range hotpath.HotDecls(pass) {
		seen := make(map[*ast.DeferStmt]bool)
		for _, loop := range cfg.New(hd.Decl.Body).Loops {
			ast.Inspect(loop.Stmt, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.FuncLit:
					// A defer inside a func literal scopes to the literal,
					// not the loop: it releases every call, so the pile-up
					// hazard is gone (the allocation, if any, is hotalloc's
					// to report).
					return false
				case *ast.DeferStmt:
					if seen[n] {
						return true
					}
					seen[n] = true
					pass.Reportf(n.Pos(),
						"defer inside hot loop runs once per iteration and releases only at function return (hot via %s); hoist it or inline the cleanup, or add //lint:allow hotdefer <reason>",
						region.Chain(hd.Func))
				}
				return true
			})
		}
	}
	return nil
}
