// Package libpkg is a nopanic fixture: a library package where aborting
// the process is a finding.
package libpkg

import (
	"errors"
	"log"
	"os"
)

func doPanic() {
	panic("boom") // want "panic in library package"
}

func doFatal() {
	log.Fatalf("bad state %d", 1) // want "log.Fatalf aborts the process from a library package"
}

func doExit() {
	os.Exit(1) // want "os.Exit in library package"
}

func propagates() error {
	return errors.New("handled by the caller")
}

func allowed() {
	panic("unreachable") //lint:allow nopanic guarded by Params.Validate, cannot fire
}
