// Command mainpkg is a nopanic fixture: package main may abort freely.
package main

import (
	"log"
	"os"
)

func main() {
	if len(os.Args) > 2 {
		log.Fatal("usage: mainpkg [arg]")
	}
	if len(os.Args) > 1 {
		os.Exit(2)
	}
	panic("top level may panic")
}
