// Package superpkg is a nopanic fixture shaped like the batch supervisor:
// worker goroutines must convert panics into classified errors, never abort
// the batch. A panic inside a worker body is a finding even though the
// supervisor would only lose one run to it.
package superpkg

import (
	"fmt"
	"log"
)

// runWorkers fans jobs out to a bounded pool. Workers report over channels;
// aborting the process from inside one would drop every other in-flight run.
func runWorkers(jobs <-chan int, results chan<- error) {
	for range [4]struct{}{} {
		go func() {
			for j := range jobs {
				if j < 0 {
					panic("negative job index") // want "panic in library package"
				}
				results <- work(j)
			}
		}()
	}
}

// work is the guarded attempt: the recover boundary turns a panicking run
// into an error the supervisor can classify and retry.
func work(j int) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("run %d panicked: %v", j, r)
		}
	}()
	return step(j)
}

func step(j int) error {
	if j == 0 {
		log.Fatal("wedged run") // want "log.Fatal aborts the process from a library package"
	}
	return nil
}
