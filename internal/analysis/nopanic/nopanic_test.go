package nopanic_test

import (
	"testing"

	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/nopanic"
)

func TestLibraryPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/libpkg", nopanic.Analyzer, "example.com/internal/foo")
}

func TestMainPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src/mainpkg", nopanic.Analyzer, "example.com/cmd/mainpkg")
}

// TestSupervisorPackage checks the batch-supervisor shape: panics inside
// worker goroutines are findings, while the recover boundary that converts
// a panicking run into a classified error is the sanctioned pattern.
func TestSupervisorPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/superpkg", nopanic.Analyzer, "example.com/internal/super")
}
