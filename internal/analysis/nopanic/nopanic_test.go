package nopanic_test

import (
	"testing"

	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/nopanic"
)

func TestLibraryPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/libpkg", nopanic.Analyzer, "example.com/internal/foo")
}

func TestMainPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src/mainpkg", nopanic.Analyzer, "example.com/cmd/mainpkg")
}
