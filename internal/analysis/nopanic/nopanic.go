// Package nopanic forbids panic, log.Fatal*, and os.Exit in library
// packages, completing the panic-free-boundary work of the fault-injection
// PR as an enforced rule: a hostile trace, a corrupted checkpoint, or a
// simulated storage fault must surface as an error the caller can handle,
// never as a process abort from deep inside a library.
//
// Commands (any package main — cmd/..., examples/...) and _test.go files
// are exempt: a binary's top level is exactly where errors become exits.
package nopanic

import (
	"go/ast"
	"go/types"

	"odbgc/internal/analysis"
)

// Analyzer is the nopanic check.
var Analyzer = &analysis.Analyzer{
	Name: "nopanic",
	Doc:  "forbid panic, log.Fatal*, and os.Exit outside package main and tests",
	Run:  run,
}

var logFatal = map[string]bool{
	"Fatal":   true,
	"Fatalf":  true,
	"Fatalln": true,
	"Panic":   true,
	"Panicf":  true,
	"Panicln": true,
}

func run(pass *analysis.Pass) error {
	if pass.Pkg.Name() == "main" {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := call.Fun.(type) {
			case *ast.Ident:
				if fun.Name != "panic" {
					return true
				}
				if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); isBuiltin {
					pass.Reportf(call.Pos(),
						"panic in library package; return an error through the existing error-propagating signatures")
				}
			case *ast.SelectorExpr:
				ident, ok := fun.X.(*ast.Ident)
				if !ok {
					return true
				}
				pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
				if !ok {
					return true
				}
				name := fun.Sel.Name
				switch pkgName.Imported().Path() {
				case "log":
					if logFatal[name] {
						pass.Reportf(call.Pos(),
							"log.%s aborts the process from a library package; return an error instead", name)
					}
				case "os":
					if name == "Exit" {
						pass.Reportf(call.Pos(),
							"os.Exit in library package; only package main may choose the process exit code")
					}
				}
			}
			return true
		})
	}
	return nil
}
