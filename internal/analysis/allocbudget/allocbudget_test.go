package allocbudget

import (
	"path/filepath"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
)

func computeFixture(t *testing.T) *Budget {
	t.Helper()
	dir := filepath.Join("..", "hotalloc", "testdata", "src", "hotpkg")
	pkg := analysistest.LoadPackage(t, dir, "example.com/hotpkg")
	b, err := Compute(analysis.NewModule([]*analysis.Package{pkg}))
	if err != nil {
		t.Skipf("escape facts unavailable: %v", err)
	}
	return b
}

func TestCompute(t *testing.T) {
	b := computeFixture(t)
	// process allocates on two lines (the loop literal and the hoisted
	// `once`); emit and allowed on one each; cold is not hot, consume does
	// not allocate — both absent.
	want := map[string]int{
		"example.com/hotpkg.process": 2,
		"example.com/hotpkg.emit":    1,
		"example.com/hotpkg.allowed": 1,
	}
	for fn, n := range want {
		if b.Functions[fn] != n {
			t.Errorf("Functions[%s] = %d, want %d", fn, b.Functions[fn], n)
		}
	}
	for _, absent := range []string{"example.com/hotpkg.cold", "example.com/hotpkg.consume"} {
		if _, ok := b.Functions[absent]; ok {
			t.Errorf("%s budgeted but should be absent", absent)
		}
	}
}

func TestDiffAndRoundtrip(t *testing.T) {
	b := computeFixture(t)

	if regs := Diff(b, b); len(regs) != 0 {
		t.Fatalf("self-diff reported regressions: %v", regs)
	}

	// Tightening a recorded count turns the current state into a
	// regression; a function missing from the record is budget zero.
	tight := &Budget{Version: Version, Functions: map[string]int{}}
	for fn, n := range b.Functions {
		tight.Functions[fn] = n
	}
	tight.Functions["example.com/hotpkg.emit"] = 0
	delete(tight.Functions, "example.com/hotpkg.process")
	regs := Diff(tight, b)
	if len(regs) != 2 {
		t.Fatalf("got %d regressions, want 2: %v", len(regs), regs)
	}
	if regs[0].Func != "example.com/hotpkg.emit" || regs[0].New != 1 || regs[0].Old != 0 {
		t.Errorf("unexpected regression %+v", regs[0])
	}
	if regs[1].Func != "example.com/hotpkg.process" || regs[1].Old != 0 || regs[1].New != 2 {
		t.Errorf("unexpected regression %+v", regs[1])
	}

	// Growth in the record (a fixed allocation) is never a regression.
	loose := &Budget{Version: Version, Functions: map[string]int{"example.com/hotpkg.gone": 9}}
	for fn, n := range b.Functions {
		loose.Functions[fn] = n + 1
	}
	if regs := Diff(loose, b); len(regs) != 0 {
		t.Errorf("shrinkage reported as regression: %v", regs)
	}

	path := filepath.Join(t.TempDir(), "allocbudget.json")
	if err := b.Write(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Functions) != len(b.Functions) {
		t.Fatalf("roundtrip lost functions: %d vs %d", len(back.Functions), len(b.Functions))
	}
	for fn, n := range b.Functions {
		if back.Functions[fn] != n {
			t.Errorf("roundtrip Functions[%s] = %d, want %d", fn, back.Functions[fn], n)
		}
	}
}
