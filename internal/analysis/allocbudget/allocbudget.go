// Package allocbudget turns the escape fact table into a CI gate: a JSON
// budget (lint/allocbudget.json) records, per hot function, how many source
// lines the compiler proves to allocate on the heap. `odbglint -allocbudget`
// recomputes the counts and fails when any hot function allocates on more
// lines than its recorded budget — so a new hot-path allocation becomes a
// lint failure even when it hides outside a loop (where hotalloc would not
// fire). Shrinking is always legal; `odbglint -write-allocbudget` (or
// `make lint-allocbudget`) re-baselines after deliberate changes.
//
// Counting distinct allocating lines, not raw facts, keeps the budget
// stable against the compiler describing one allocation with several
// diagnostics, and against formatting-only churn within a line.
package allocbudget

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/callgraph"
	"odbgc/internal/analysis/escape"
	"odbgc/internal/analysis/hotpath"
)

// Budget is the persisted form: hot function full name → count of distinct
// heap-allocating lines in its body. Functions with zero allocations are
// omitted.
type Budget struct {
	Version   int            `json:"version"`
	Functions map[string]int `json:"functions"`
}

// Version is the current budget schema version.
const Version = 1

// Compute builds the current budget for the module's hot region. It errors
// when the compiler's escape facts are unavailable for a package that
// contains hot functions — a silent zero would read as improvement.
func Compute(mod *analysis.Module) (*Budget, error) {
	g := callgraph.For(mod)
	region := hotpath.For(mod)
	b := &Budget{Version: Version, Functions: make(map[string]int)}
	missing := make(map[string]bool)
	for _, n := range region.Functions(g) {
		facts := escape.For(mod, n.Pkg)
		if !facts.Available {
			missing[n.Pkg.PkgPath] = true
			continue
		}
		cold := hotpath.ColdSpans(n.Pkg.Info, n.Decl)
		lines := make(map[int]bool)
		for _, f := range facts.HeapFactsBetween(n.Pkg.Fset, n.Decl.Pos(), n.Decl.End()) {
			if hotpath.InSpans(cold, escape.Pos(n.Pkg.Fset, n.Decl.Pos(), f)) {
				continue
			}
			lines[f.Line] = true
		}
		if len(lines) > 0 {
			b.Functions[n.Func.FullName()] = len(lines)
		}
	}
	if len(missing) > 0 {
		pkgs := make([]string, 0, len(missing))
		for p := range missing {
			pkgs = append(pkgs, p)
		}
		sort.Strings(pkgs)
		return nil, fmt.Errorf("escape facts unavailable for hot packages (build failed?): %s", strings.Join(pkgs, ", "))
	}
	return b, nil
}

// Load reads a budget file.
func Load(path string) (*Budget, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Budget
	if err := json.Unmarshal(data, &b); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	if b.Version != Version {
		return nil, fmt.Errorf("%s: budget version %d, want %d (regenerate with -write-allocbudget)", path, b.Version, Version)
	}
	if b.Functions == nil {
		b.Functions = make(map[string]int)
	}
	return &b, nil
}

// Write persists the budget with stable formatting (sorted keys, indented)
// so regeneration diffs cleanly. The parent directory is created if absent.
func (b *Budget) Write(path string) error {
	data, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return err
	}
	if dir := filepath.Dir(path); dir != "." {
		if err := os.MkdirAll(dir, 0o755); err != nil {
			return err
		}
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}

// Regression is one hot function allocating on more lines than budgeted.
type Regression struct {
	Func string
	Old  int // 0 for a newly hot or newly allocating function
	New  int
}

func (r Regression) String() string {
	return fmt.Sprintf("allocbudget: %s: %d allocating line(s), budget %d", r.Func, r.New, r.Old)
}

// Diff lists the current budget's regressions against the recorded one,
// sorted by function name. Shrinkage and disappearances are not reported.
func Diff(recorded, current *Budget) []Regression {
	var out []Regression
	for fn, n := range current.Functions {
		if o := recorded.Functions[fn]; n > o {
			out = append(out, Regression{Func: fn, Old: o, New: n})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Func < out[j].Func })
	return out
}
