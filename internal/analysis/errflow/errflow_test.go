package errflow_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/errflow"
)

func TestErrflow(t *testing.T) {
	analysistest.Run(t, "testdata/src/errs", errflow.Analyzer, "example.com/internal/pipe")
}

// TestUnreasonedAllowRejected pins the suppression contract: an allow
// without a reason is itself a finding and suppresses nothing.
func TestUnreasonedAllowRejected(t *testing.T) {
	dir := t.TempDir()
	src := `package pipe

import "errors"

var ErrStall = errors.New("stall")

func step() error { return ErrStall }

func Fire() {
	//lint:allow errflow
	step()
}
`
	if err := os.WriteFile(filepath.Join(dir, "pipe.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := analysistest.LoadPackage(t, dir, "example.com/internal/pipe")
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{errflow.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawFinding bool
	for _, f := range findings {
		if f.Analyzer == "allow" && strings.Contains(f.Message, "no reason") {
			sawMalformed = true
		}
		if f.Analyzer == "errflow" {
			sawFinding = true
		}
	}
	if !sawMalformed {
		t.Errorf("unreasoned //lint:allow not reported as malformed; findings: %v", findings)
	}
	if !sawFinding {
		t.Errorf("unreasoned //lint:allow suppressed the errflow finding; findings: %v", findings)
	}
}
