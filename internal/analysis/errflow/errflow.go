// Package errflow enforces the error discipline the simerr taxonomy
// depends on, on every path through the module:
//
//   - no call may silently discard an error result — a bare call statement
//     or deferred call whose trailing error vanishes is a finding, while an
//     explicit `_ =` records that the discard was a decision (functions
//     documented never to fail — the fmt print family, bytes.Buffer,
//     strings.Builder, hash.Hash — are exempt);
//   - sentinel errors must be compared with errors.Is, never == or !=,
//     because classified errors arrive wrapped;
//   - a function that can see a classified error (it references a sentinel
//     or, per the module call graph, transitively calls something that
//     does) must wrap errors with %w — formatting one with %v or %s breaks
//     errors.Is and simerr.Classify for every caller above it.
//
// The third rule is the interprocedural one: the set of "classification
// capable" functions is computed once per run over the whole-module call
// graph and shared through the module memo.
package errflow

import (
	"go/ast"
	"go/token"
	"go/types"
	"strconv"
	"strings"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/callgraph"
)

// Analyzer is the errflow check.
var Analyzer = &analysis.Analyzer{
	Name: "errflow",
	Doc:  "forbid discarded errors, ==/!= sentinel comparisons, and non-%w wrapping of classified errors",
	Run:  run,
}

var errorType = types.Universe.Lookup("error").Type()

func isErrorType(t types.Type) bool {
	return t != nil && types.Identical(t, errorType)
}

func run(pass *analysis.Pass) error {
	info := pass.TypesInfo
	caps := capableSet(pass.Module)
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.ExprStmt:
				if call, ok := s.X.(*ast.CallExpr); ok && discardsError(info, call) {
					pass.Reportf(call.Pos(),
						"result of %s includes an error that is silently discarded; handle it or assign it to _", types.ExprString(call.Fun))
				}
			case *ast.DeferStmt:
				if discardsError(info, s.Call) {
					pass.Reportf(s.Call.Pos(),
						"deferred %s discards its error; hoist it into the function's error return or acknowledge it with _ in a wrapper", types.ExprString(s.Call.Fun))
				}
			case *ast.BinaryExpr:
				if (s.Op == token.EQL || s.Op == token.NEQ) && sentinelComparison(info, s) {
					pass.Reportf(s.Pos(),
						"error compared with %s; use errors.Is so wrapped and classified chains still match", s.Op)
				}
			}
			return true
		})
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok || !caps[fn] {
				continue
			}
			checkWraps(pass, fd)
		}
	}
	return nil
}

// discardsError reports whether the statement-level call returns an error
// (alone or as the trailing result) that nothing receives.
func discardsError(info *types.Info, call *ast.CallExpr) bool {
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		return false // conversion, not a call
	}
	tv, ok := info.Types[call]
	if !ok {
		return false
	}
	t := tv.Type
	if tuple, ok := t.(*types.Tuple); ok {
		if tuple.Len() == 0 {
			return false
		}
		t = tuple.At(tuple.Len() - 1).Type()
	}
	if !isErrorType(t) {
		return false
	}
	return !neverFails(info, call)
}

// neverFails exempts the callees whose error results are documented to
// always be nil: the fmt print family and the in-memory writers.
func neverFails(info *types.Info, call *ast.CallExpr) bool {
	callee := callgraph.Callee(info, call)
	if callee == nil {
		return false
	}
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		name := callee.Name()
		if strings.HasPrefix(name, "Print") || strings.HasPrefix(name, "Fprint") {
			return true
		}
	}
	sig, ok := callee.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "bytes" && obj.Name() == "Buffer":
		return true
	case obj.Pkg().Path() == "strings" && obj.Name() == "Builder":
		return true
	case obj.Pkg().Path() == "hash":
		return true
	}
	return false
}

// sentinelComparison reports whether both operands are errors and neither
// is the nil literal.
func sentinelComparison(info *types.Info, b *ast.BinaryExpr) bool {
	for _, e := range []ast.Expr{b.X, b.Y} {
		tv, ok := info.Types[e]
		if !ok || tv.IsNil() || !isErrorType(tv.Type) {
			return false
		}
	}
	return true
}

// capableSet computes, once per module, the functions through which a
// sentinel error can flow: those whose bodies reference a package-level
// Err* error variable (outside errors.Is/As checks), plus everything that
// transitively calls one.
func capableSet(mod *analysis.Module) map[*types.Func]bool {
	v, _ := mod.Memo("errflow.capable", func() (any, error) {
		g := callgraph.For(mod)
		caps := make(map[*types.Func]bool)
		for _, n := range g.Nodes() {
			if referencesSentinel(n) {
				caps[n.Func] = true
			}
		}
		for changed := true; changed; {
			changed = false
			for _, n := range g.Nodes() {
				if caps[n.Func] {
					continue
				}
				for _, e := range n.Out {
					if caps[e.Callee.Func] {
						caps[n.Func] = true
						changed = true
						break
					}
				}
			}
		}
		return caps, nil
	})
	return v.(map[*types.Func]bool)
}

// referencesSentinel reports whether the function's body mentions a
// package-level error variable named Err*. Mentions inside errors.Is and
// errors.As argument lists do not count: checking for a sentinel is not the
// same as producing one.
func referencesSentinel(n *callgraph.Node) bool {
	info := n.Pkg.Info
	found := false
	ast.Inspect(n.Decl, func(node ast.Node) bool {
		if found {
			return false
		}
		if call, ok := node.(*ast.CallExpr); ok && isErrorsCheck(info, call) {
			return false
		}
		ident, ok := node.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[ident].(*types.Var)
		if !ok || !isErrorType(v.Type()) || !strings.HasPrefix(v.Name(), "Err") {
			return true
		}
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			found = true
			return false
		}
		return true
	})
	return found
}

func isErrorsCheck(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "errors" {
		return false
	}
	return sel.Sel.Name == "Is" || sel.Sel.Name == "As"
}

// checkWraps reports fmt.Errorf calls in fd that format an error argument
// with a verb other than %w.
func checkWraps(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || !isFmtErrorf(info, call) || len(call.Args) < 2 {
			return true
		}
		lit, ok := call.Args[0].(*ast.BasicLit)
		if !ok || lit.Kind != token.STRING {
			return true
		}
		format, err := strconv.Unquote(lit.Value)
		if err != nil {
			return true
		}
		for arg, verb := range verbArgs(format, call.Args[1:]) {
			if verb == 'w' {
				continue
			}
			if tv, ok := info.Types[arg]; ok && isErrorType(tv.Type) {
				pass.Reportf(arg.Pos(),
					"error formatted with %%%c loses the sentinel for errors.Is and simerr.Classify; wrap with %%w", verb)
			}
		}
		return true
	})
}

func isFmtErrorf(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Errorf" {
		return false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	return ok && pkgName.Imported().Path() == "fmt"
}

// verbArgs pairs each formatting verb in format with its argument, in
// order. A * width or precision consumes an argument of its own; %% binds
// nothing. Explicit argument indexes are rare enough in this codebase that
// they are not modeled; a format using them simply pairs conservatively.
func verbArgs(format string, args []ast.Expr) map[ast.Expr]byte {
	m := make(map[ast.Expr]byte)
	ai := 0
	for i := 0; i < len(format); i++ {
		if format[i] != '%' {
			continue
		}
		i++
		for i < len(format) {
			c := format[i]
			if c == '*' {
				ai++
				i++
				continue
			}
			if c == '+' || c == '-' || c == '#' || c == ' ' || c == '0' || c == '.' || (c >= '1' && c <= '9') {
				i++
				continue
			}
			break
		}
		if i >= len(format) {
			break
		}
		if format[i] == '%' {
			continue
		}
		if ai < len(args) {
			m[args[ai]] = format[i]
			ai++
		}
	}
	return m
}
