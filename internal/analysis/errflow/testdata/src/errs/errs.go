// Package pipe exercises the errflow rules: discarded results, deferred
// discards, == sentinel comparisons, and non-%w wrapping in functions a
// classified error can flow through.
package pipe

import (
	"bytes"
	"errors"
	"fmt"
	"os"
)

// ErrStall is the package's sentinel; referencing it makes a function
// classification capable.
var ErrStall = errors.New("pipeline stalled")

func step() error { return ErrStall }

func Discard() {
	step()     // want "silently discarded"
	_ = step() // deliberate discard is acknowledged
}

func DeferDiscard(f *os.File) {
	defer f.Close() // want "deferred f.Close discards its error"
}

func DeferAcknowledged(f *os.File) {
	defer func() { _ = f.Close() }()
}

func Compare(err error) bool {
	if err == ErrStall { // want "use errors.Is"
		return true
	}
	return errors.Is(err, ErrStall)
}

func CompareNeq(err error) bool {
	return err != ErrStall // want "use errors.Is"
}

func NilChecksStayLegal(err error) bool {
	return err == nil || nil != err
}

// Wrap sees ErrStall through step, so %v breaks classification upstream.
func Wrap() error {
	if err := step(); err != nil {
		return fmt.Errorf("step failed: %v", err) // want "wrap with %w"
	}
	return nil
}

func WrapKeepsChain() error {
	if err := step(); err != nil {
		return fmt.Errorf("step failed: %w", err)
	}
	return nil
}

// TransitiveWrap never names the sentinel but reaches it through the call
// graph: Wrap -> step -> ErrStall.
func TransitiveWrap() error {
	if err := WrapKeepsChain(); err != nil {
		return fmt.Errorf("run: %s", err) // want "wrap with %w"
	}
	return nil
}

// opaque builds a fresh, unclassified error; checkOnly merely tests for the
// sentinel with errors.Is, which does not make it capable.
func opaque() error { return errors.New("opaque") }

func checkOnly(err error) bool { return errors.Is(err, ErrStall) }

// WrapUnclassified wraps an error no sentinel can flow into; %v is legal
// here (if regrettable), so the call-graph gate must keep this silent.
func WrapUnclassified() error {
	if err := opaque(); err != nil {
		return fmt.Errorf("opaque: %v", err)
	}
	return nil
}

func PrintFamilyExempt(buf *bytes.Buffer) {
	fmt.Println("progress")
	fmt.Fprintf(buf, "x=%d", 1)
	buf.WriteByte('\n')
}

func Allowed() {
	//lint:allow errflow best-effort cache warm; a miss only costs time
	step()
}

// Durability discipline: on a write path, Sync is the durability point and
// Close is the last chance to hear about a failed writeback — dropping
// either error silently turns "committed" into "maybe".

func SyncDiscard(f *os.File) {
	f.Sync() // want "silently discarded"
}

func CloseSwallowed(f *os.File) error {
	if _, err := f.Write([]byte("x")); err != nil {
		return err
	}
	f.Close() // want "silently discarded"
	return nil
}

func SyncThenCloseProper(f *os.File) error {
	if err := f.Sync(); err != nil {
		return fmt.Errorf("sync: %w", err)
	}
	return f.Close()
}

// On an error path a best-effort close is legal, acknowledged with _;
// the success path still propagates Close.
func CloseBestEffortOnError(f *os.File, err error) error {
	if err != nil {
		_ = f.Close()
		return err
	}
	return f.Close()
}
