package hotpath

import (
	"go/types"
	"path/filepath"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
)

// fn resolves a fixture function by name ("helper") or method ("Sim.Step").
func fn(t *testing.T, pkg *analysis.Package, name string) *types.Func {
	t.Helper()
	for ident, obj := range pkg.Info.Defs {
		f, ok := obj.(*types.Func)
		if !ok {
			continue
		}
		if funcName(f) == name || ident.Name == name {
			return f
		}
	}
	t.Fatalf("fixture function %q not found", name)
	return nil
}

func TestBenchmarkSeedAndLoopHot(t *testing.T) {
	dir := filepath.Join("..", "hotalloc", "testdata", "src", "hotpkg")
	pkg := analysistest.LoadPackage(t, dir, "example.com/hotpkg")
	mod := analysis.NewModule([]*analysis.Package{pkg})
	r := For(mod)

	for _, name := range []string{"BenchmarkProcess", "process", "emit", "consume", "allowed", "failing"} {
		if !r.Hot(fn(t, pkg, name)) {
			t.Errorf("%s not hot", name)
		}
	}
	if r.Hot(fn(t, pkg, "cold")) {
		t.Error("cold marked hot")
	}
	// errOnly is called from process's hot loop, but only inside the body of
	// an `err != nil` check: the closure must not propagate hotness through
	// the cold call site.
	if r.Hot(fn(t, pkg, "errOnly")) {
		t.Error("errOnly hot despite being reachable only through an error path")
	}

	// The b.N loop is harness, not workload: process is measured once per
	// sample, so it is hot but not loop-hot; emit, called from process's
	// own loop, is.
	if r.LoopHot(fn(t, pkg, "process")) {
		t.Error("process loop-hot through the b.N harness loop")
	}
	if !r.LoopHot(fn(t, pkg, "emit")) {
		t.Error("emit not loop-hot despite being called from process's loop")
	}
	if r.LoopHot(fn(t, pkg, "allowed")) {
		t.Error("allowed loop-hot despite being called outside process's loops")
	}

	if got, want := r.Chain(fn(t, pkg, "emit")), "BenchmarkProcess -> process -> emit"; got != want {
		t.Errorf("Chain(emit) = %q, want %q", got, want)
	}
	if got, want := r.Why(fn(t, pkg, "emit")), "benchmark BenchmarkProcess"; got != want {
		t.Errorf("Why(emit) = %q, want %q", got, want)
	}
	if r.Chain(fn(t, pkg, "cold")) != "" {
		t.Error("Chain(cold) nonempty")
	}

	// Memoized per module.
	if For(mod) != r {
		t.Error("For rebuilt the region instead of hitting the module memo")
	}
}

func TestCuratedRootSeed(t *testing.T) {
	dir := filepath.Join("testdata", "src", "simroot")
	pkg := analysistest.LoadPackage(t, dir, "example.com/internal/sim")
	r := For(analysis.NewModule([]*analysis.Package{pkg}))

	step := fn(t, pkg, "Sim.Step")
	if !r.Hot(step) {
		t.Fatal("Sim.Step not hot despite the curated internal/sim root table")
	}
	if got, want := r.Why(step), "hot root Sim.Step"; got != want {
		t.Errorf("Why(Step) = %q, want %q", got, want)
	}
	if !r.Hot(fn(t, pkg, "Sim.helper")) {
		t.Error("helper not hot transitively from Step")
	}
	if !r.LoopHot(fn(t, pkg, "Sim.helper")) {
		t.Error("helper not loop-hot despite being called from Step's loop")
	}
	if r.Hot(fn(t, pkg, "Sim.setup")) {
		t.Error("setup marked hot")
	}
}

func TestUnboundedLoopSeed(t *testing.T) {
	dir := filepath.Join("testdata", "src", "obsloop")
	pkg := analysistest.LoadPackage(t, dir, "example.com/internal/obs")
	r := For(analysis.NewModule([]*analysis.Package{pkg}))

	pump := fn(t, pkg, "queue.pump")
	if !r.Hot(pump) {
		t.Fatal("pump not hot despite its unbounded loop in a hot package")
	}
	if got, want := r.Why(pump), "unbounded loop in queue.pump"; got != want {
		t.Errorf("Why(pump) = %q, want %q", got, want)
	}
	if !r.LoopHot(fn(t, pkg, "queue.consume")) {
		t.Error("consume not loop-hot from pump's loop")
	}
	if r.Hot(fn(t, pkg, "queue.report")) {
		t.Error("report marked hot")
	}
}

// TestUncoveredPackageStaysCold pins that the same shapes outside the hot
// package list seed nothing.
func TestUncoveredPackageStaysCold(t *testing.T) {
	dir := filepath.Join("testdata", "src", "obsloop")
	pkg := analysistest.LoadPackage(t, dir, "example.com/util")
	r := For(analysis.NewModule([]*analysis.Package{pkg}))
	for _, name := range []string{"queue.pump", "queue.consume", "queue.report"} {
		if r.Hot(fn(t, pkg, name)) {
			t.Errorf("%s hot in an uncovered package", name)
		}
	}
}
