package hotpath

import (
	"go/ast"
	"go/types"

	"odbgc/internal/analysis"
)

// HotDecl pairs a hot function's syntax with its type-checked identity —
// the unit the perf analyzers iterate.
type HotDecl struct {
	Decl *ast.FuncDecl
	Func *types.Func
}

// HotDecls returns the pass's function declarations that fall in the hot
// region, in source order.
func HotDecls(pass *analysis.Pass) []HotDecl {
	region := For(pass.Module)
	var out []HotDecl
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			if region.Hot(fn) {
				out = append(out, HotDecl{Decl: fd, Func: fn})
			}
		}
	}
	return out
}
