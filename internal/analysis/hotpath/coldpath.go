package hotpath

// Cold-path detection. A hot function's body is not uniformly hot: the
// blocks behind an `err != nil` guard and the return statements that
// construct an error run only when something already went wrong, and an
// allocation there costs nothing per successful iteration. Treating those
// spans as hot would bury the real findings under fmt.Errorf boxing — every
// `return Placement{}, fmt.Errorf(...)` guard boxes its operands — so the
// perf analyzers, the allocation budget, and the region closure itself all
// carve them out. The closure carving matters most: a helper reachable only
// from error returns (an error-formatting String method, a corrupt-input
// describer) never enters the hot region at all.
//
// The detection is deliberately syntactic and conservative: only
// nil-comparisons of error-typed operands and calls to the module's known
// error constructors (fmt.Errorf, errors.New/Join, the simerr taxonomy)
// mark spans cold. A tail call that merely *propagates* an error — `return
// w.flush()` — stays hot, because flush itself is success-path work.

import (
	"go/ast"
	"go/token"
	"go/types"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/callgraph"
)

// Span is a half-open position interval [Pos, End) inside one file.
type Span struct {
	Pos, End token.Pos
}

// InSpans reports whether pos falls inside any span.
func InSpans(spans []Span, pos token.Pos) bool {
	for _, s := range spans {
		if s.Pos <= pos && pos < s.End {
			return true
		}
	}
	return false
}

// ColdSpans collects decl's error-path spans:
//
//   - the body of `if <err-compare> != nil`, and the else branch of
//     `if <err-compare> == nil`;
//   - any simple statement (return, assignment, expression, var decl) that
//     calls an error constructor.
//
// Control statements are never marked directly — their inner statements are
// classified individually — so an `if size <= 0` guard marks only its
// error-constructing return, not sibling statements.
func ColdSpans(info *types.Info, decl *ast.FuncDecl) []Span {
	if decl == nil || decl.Body == nil {
		return nil
	}
	var spans []Span
	ast.Inspect(decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.IfStmt:
			switch errCompare(info, n.Cond) {
			case token.NEQ:
				spans = append(spans, Span{n.Body.Pos(), n.Body.End()})
			case token.EQL:
				if n.Else != nil {
					spans = append(spans, Span{n.Else.Pos(), n.Else.End()})
				}
			}
		case *ast.ReturnStmt, *ast.AssignStmt, *ast.ExprStmt, *ast.DeclStmt:
			if stmtConstructsError(info, n.(ast.Stmt)) {
				spans = append(spans, Span{n.Pos(), n.End()})
			}
		}
		return true
	})
	return spans
}

// errCompare classifies cond: token.NEQ when it (or any operand of a
// boolean combination) compares an error-typed value against nil with !=,
// token.EQL for ==, and token.ILLEGAL otherwise.
func errCompare(info *types.Info, cond ast.Expr) token.Token {
	found := token.ILLEGAL
	ast.Inspect(cond, func(n ast.Node) bool {
		b, ok := n.(*ast.BinaryExpr)
		if !ok || (b.Op != token.NEQ && b.Op != token.EQL) {
			return true
		}
		var other ast.Expr
		switch {
		case isNil(info, b.Y):
			other = b.X
		case isNil(info, b.X):
			other = b.Y
		default:
			return true
		}
		if isErrorType(info.TypeOf(other)) {
			found = b.Op
			return false
		}
		return true
	})
	return found
}

// stmtConstructsError reports whether stmt contains a call to a known
// error constructor.
func stmtConstructsError(info *types.Info, stmt ast.Stmt) bool {
	cold := false
	ast.Inspect(stmt, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if isErrorConstructor(info, call) {
			cold = true
			return false
		}
		return true
	})
	return cold
}

// errConstructors names the stdlib error-constructing functions.
var errConstructors = map[string]map[string]bool{
	"fmt":    {"Errorf": true},
	"errors": {"New": true, "Join": true},
}

// errConstructorPkgs lists module packages whose every exported function
// builds or wraps errors — the failure taxonomy.
var errConstructorPkgs = []string{"internal/simerr"}

// isErrorConstructor resolves call's static callee and matches it against
// the constructor tables.
func isErrorConstructor(info *types.Info, call *ast.CallExpr) bool {
	fn := callgraph.Callee(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if names, ok := errConstructors[path]; ok && names[fn.Name()] {
		return true
	}
	return analysis.PathCovered(path, errConstructorPkgs)
}

// isNil reports whether expr is the predeclared nil.
func isNil(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	return ok && tv.IsNil()
}

// isErrorType reports whether t (or *t) implements error.
var errIface = types.Universe.Lookup("error").Type().Underlying().(*types.Interface)

func isErrorType(t types.Type) bool {
	if t == nil {
		return false
	}
	if types.Implements(t, errIface) {
		return true
	}
	if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
		return types.Implements(types.NewPointer(t), errIface)
	}
	return false
}
