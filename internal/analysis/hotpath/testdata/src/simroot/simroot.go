// Package simroot poses as internal/sim (via its pretended import path) to
// pin the curated-root seeding: Step is a hot root by name, helper becomes
// hot transitively, and setup stays cold.
package simroot

type Sim struct{ n int }

func (s *Sim) Step() {
	for i := 0; i < 4; i++ {
		s.helper()
	}
}

func (s *Sim) helper() { s.n++ }

func (s *Sim) setup() { s.n = 0 }

var _ = (*Sim).setup
