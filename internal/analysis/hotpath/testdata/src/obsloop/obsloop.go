// Package obsloop poses as internal/obs to pin the unbounded-loop seeding:
// pump's `for {` makes it hot without appearing in any curated table, and
// consume — called from that loop — is loop-hot.
package obsloop

type queue struct {
	ch   chan int
	seen int
}

func (q *queue) pump() {
	for {
		v, ok := <-q.ch
		if !ok {
			return
		}
		q.consume(v)
	}
}

func (q *queue) consume(v int) { q.seen += v }

func (q *queue) report() int { return q.seen }

var _ = (*queue).report
