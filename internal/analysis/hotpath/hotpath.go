// Package hotpath marks the module's hot region: the set of functions whose
// per-event or per-iteration cost shows up in the benchmarks the roadmap
// tracks. The region is seeded three ways and closed transitively over the
// module call graph:
//
//  1. Benchmark bodies — any `BenchmarkX(b *testing.B)` function. The
//     module loader skips _test.go files, so in the real repo this seed
//     fires only for fixtures, but it makes the marker self-describing:
//     whatever a benchmark exercises is, by definition, measured.
//  2. A curated root table naming the simulator, trace-codec, generator and
//     server entry points whose inner loops dominate BenchmarkSimulate*,
//     BenchmarkTraceCodec and BenchmarkTraceGeneration.
//  3. The cfg loop inventory — any function in a hot package containing an
//     unbounded `for {` loop (server engine loop, stream decoders, observer
//     flushers): an unbounded loop in serving code is a hot loop whether or
//     not a benchmark reaches it yet.
//
// Everything a seed can transitively call is hot too, mirroring how cost
// flows at run time. The perf analyzers (hotalloc, hotbox, hotdefer,
// prealloc) and the allocation-budget gate consult this region so a heap
// allocation in setup code stays legal while the same line inside
// Simulator.Step is a finding.
package hotpath

import (
	"go/types"
	"strings"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/callgraph"
	"odbgc/internal/analysis/cfg"
)

// roots curates the non-benchmark hot entry points, keyed by package path
// tail (matched with analysis.PathCovered so the module prefix and fixture
// pseudo-paths both resolve). Names are plain function or method names
// within that package.
var roots = map[string][]string{
	"internal/sim":      {"Run", "RunContext", "RunStream", "RunStreamContext", "Step"},
	"internal/trace":    {"Read", "Write", "ReadAll", "ReadAllLenient", "WriteAll"},
	"internal/oo7":      {"FullTrace", "GenDB"},
	"internal/server":   {"Run", "process", "apply"},
	"internal/obs/span": {"Start", "Finish", "PinID"},
	// The durable write path runs once per logical mutation (WAL record
	// staging and group commit) or once per flushed page (checksum seal
	// and verify); both are billed to requests, so both must stay lean.
	"internal/storage/disk": {
		"LogAlloc", "LogSet", "LogRoot", "LogReclaim", "Commit",
		"sealPage", "openPage",
	},
}

// loopPkgs lists the packages whose unbounded `for {` loops seed the region
// (source 3). Deliberately the serving/decoding surface, not cmd/ main
// loops, whose iterations are human-scale.
var loopPkgs = []string{
	"internal/sim", "internal/trace", "internal/oo7",
	"internal/server", "internal/obs", "internal/gc",
}

// Region answers "is this function hot, and why" for one module load.
type Region struct {
	marks map[*types.Func]*mark
	// loopHot marks the subset of the region whose every call is a
	// per-iteration cost: functions invoked from inside a loop of a hot
	// function, closed transitively through all their call sites. An
	// allocation anywhere in a loop-hot function happens once per hot
	// iteration even though the function body itself has no loop — the
	// per-event observer emit and trace Read are the canonical cases.
	loopHot map[*types.Func]bool
	// cold caches each marked function's error-path spans (see coldpath.go);
	// the closure refuses to propagate hotness through a call site inside
	// one, so error-formatting helpers stay out of the region.
	cold map[*types.Func][]Span
}

// mark records how a function entered the region: seeds carry a reason and
// no via edge; transitively-marked functions carry the edge that reached
// them first (BFS order, so chains are shortest and deterministic).
type mark struct {
	reason string
	via    *callgraph.Edge
	prev   *types.Func
}

// memoKey namespaces the region in the module memo.
const memoKey = "hotpath"

// For returns the module's hot region, building it on first use and sharing
// it across analyzers through the module memo.
func For(mod *analysis.Module) *Region {
	v, _ := mod.Memo(memoKey, func() (any, error) {
		return build(mod), nil
	})
	return v.(*Region)
}

// Hot reports whether fn is in the hot region.
func (r *Region) Hot(fn *types.Func) bool {
	if r == nil || fn == nil {
		return false
	}
	_, ok := r.marks[fn]
	return ok
}

// LoopHot reports whether fn runs once per hot-loop iteration: it is called
// from inside a loop of a hot function, directly or through any chain of
// further calls. hotalloc and hotbox treat a loop-hot function's whole body
// as loop territory.
func (r *Region) LoopHot(fn *types.Func) bool {
	if r == nil || fn == nil {
		return false
	}
	return r.loopHot[fn]
}

// Why returns the seed reason that made fn hot (following the chain back to
// its seed), or "" when fn is not hot.
func (r *Region) Why(fn *types.Func) string {
	m, ok := r.marks[fn]
	if !ok {
		return ""
	}
	for m.via != nil {
		m = r.marks[m.prev]
	}
	return m.reason
}

// Chain renders the call chain from fn's seed down to fn, e.g.
// "Simulator.Run -> Simulator.Step -> Heap.Create", for diagnostics. A seed
// renders as its own name.
func (r *Region) Chain(fn *types.Func) string {
	m, ok := r.marks[fn]
	if !ok {
		return ""
	}
	names := []string{funcName(fn)}
	for m.via != nil {
		names = append([]string{funcName(m.prev)}, names...)
		m = r.marks[m.prev]
	}
	return strings.Join(names, " -> ")
}

// Functions lists the hot functions in deterministic (marking) order —
// the allocation budget iterates this.
func (r *Region) Functions(g *callgraph.Graph) []*callgraph.Node {
	var out []*callgraph.Node
	for _, n := range g.Nodes() {
		if r.Hot(n.Func) {
			out = append(out, n)
		}
	}
	return out
}

// funcName renders Type.Method or Func without the package qualifier.
func funcName(fn *types.Func) string {
	if recv := fn.Type().(*types.Signature).Recv(); recv != nil {
		t := recv.Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if named, ok := t.(*types.Named); ok {
			return named.Obj().Name() + "." + fn.Name()
		}
	}
	return fn.Name()
}

func build(mod *analysis.Module) *Region {
	g := callgraph.For(mod)
	r := &Region{
		marks:   make(map[*types.Func]*mark),
		loopHot: make(map[*types.Func]bool),
		cold:    make(map[*types.Func][]Span),
	}
	for _, n := range g.Nodes() {
		reason, ok := seedReason(n)
		if !ok {
			continue
		}
		if _, seen := r.marks[n.Func]; seen {
			continue
		}
		r.marks[n.Func] = &mark{reason: reason}
		r.close(n)
	}
	r.closeLoops(g)
	return r
}

// closeLoops computes the loop-hot subset: callees of call sites inside a
// hot function's loops seed it, and because every call of a loop-hot
// function is itself per-iteration work, all its own callees follow.
func (r *Region) closeLoops(g *callgraph.Graph) {
	var work []*callgraph.Node
	markNode := func(n *callgraph.Node) {
		if !r.loopHot[n.Func] {
			r.loopHot[n.Func] = true
			work = append(work, n)
		}
	}
	for _, n := range g.Nodes() {
		if !r.Hot(n.Func) || n.Decl == nil || n.Decl.Body == nil {
			continue
		}
		// A benchmark's b.N loop is the measurement harness, not workload:
		// the function it measures runs once per sample, so the measured
		// callee is hot but not per-iteration inside itself.
		if isBenchmark(n.Func) {
			continue
		}
		loops := cfg.New(n.Decl.Body).Loops
		if len(loops) == 0 {
			continue
		}
		for _, e := range n.Out {
			pos := e.Site.Pos()
			if InSpans(r.coldOf(n), pos) {
				continue
			}
			for _, loop := range loops {
				if loop.Stmt.Pos() <= pos && pos < loop.Stmt.End() {
					markNode(e.Callee)
					break
				}
			}
		}
	}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, e := range n.Out {
			if InSpans(r.coldOf(n), e.Site.Pos()) {
				continue
			}
			markNode(e.Callee)
		}
	}
}

// coldOf caches ColdSpans per function across the two closures.
func (r *Region) coldOf(n *callgraph.Node) []Span {
	if spans, ok := r.cold[n.Func]; ok {
		return spans
	}
	var spans []Span
	if n.Decl != nil {
		spans = ColdSpans(n.Pkg.Info, n.Decl)
	}
	r.cold[n.Func] = spans
	return spans
}

// close BFS-marks everything reachable from seed that is not already hot,
// refusing to follow call sites on cold (error-path) spans: a function
// reachable only from error handling is not hot.
func (r *Region) close(seed *callgraph.Node) {
	work := []*callgraph.Node{seed}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, e := range n.Out {
			if _, seen := r.marks[e.Callee.Func]; seen {
				continue
			}
			if InSpans(r.coldOf(n), e.Site.Pos()) {
				continue
			}
			r.marks[e.Callee.Func] = &mark{via: e, prev: n.Func}
			work = append(work, e.Callee)
		}
	}
}

// seedReason decides whether a declared function seeds the hot region.
func seedReason(n *callgraph.Node) (string, bool) {
	if isBenchmark(n.Func) {
		return "benchmark " + n.Func.Name(), true
	}
	pkgPath := n.Pkg.PkgPath
	for tail, names := range roots {
		if !analysis.PathCovered(pkgPath, []string{tail}) {
			continue
		}
		for _, name := range names {
			if n.Func.Name() == name {
				return "hot root " + funcName(n.Func), true
			}
		}
	}
	if analysis.PathCovered(pkgPath, loopPkgs) && hasUnboundedLoop(n) {
		return "unbounded loop in " + funcName(n.Func), true
	}
	return "", false
}

// isBenchmark recognizes BenchmarkX(b *testing.B).
func isBenchmark(fn *types.Func) bool {
	if !strings.HasPrefix(fn.Name(), "Benchmark") {
		return false
	}
	sig := fn.Type().(*types.Signature)
	if sig.Recv() != nil || sig.Params().Len() != 1 {
		return false
	}
	ptr, ok := sig.Params().At(0).Type().(*types.Pointer)
	if !ok {
		return false
	}
	named, ok := ptr.Elem().(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "B" && obj.Pkg() != nil && obj.Pkg().Path() == "testing"
}

// hasUnboundedLoop consults the function's CFG loop inventory.
func hasUnboundedLoop(n *callgraph.Node) bool {
	if n.Decl == nil || n.Decl.Body == nil {
		return false
	}
	for _, loop := range cfg.New(n.Decl.Body).Loops {
		if loop.Unbounded {
			return true
		}
	}
	return false
}
