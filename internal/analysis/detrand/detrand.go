// Package detrand forbids nondeterministic inputs — unseeded global
// randomness, wall-clock reads, environment-driven behavior — inside the
// packages whose output the simulator promises to reproduce bit for bit.
//
// The trace-driven simulation is only replayable (and PR 1's checkpoint
// resume only bit-identical) because every random choice flows from a seed
// threaded through a constructor and nothing consults the clock or the
// process environment. detrand turns that convention into a build-time
// error: inside the deterministic packages, calls to the global math/rand
// functions, to time.Now and friends, and to os.Getenv-style lookups are
// findings. Seeded *rand.Rand construction (rand.New, rand.NewSource,
// rand.NewZipf) stays legal.
package detrand

import (
	"fmt"
	"go/ast"
	"go/types"

	"odbgc/internal/analysis"
)

// Analyzer is the detrand check.
var Analyzer = &analysis.Analyzer{
	Name: "detrand",
	Doc:  "forbid unseeded randomness, wall-clock reads, and env lookups in deterministic packages",
	Run:  run,
}

// DeterministicDirs names the package directories (relative to the module
// root) that must stay deterministic. A package is covered when one of
// these appears as a complete path-segment run inside its import path.
var DeterministicDirs = []string{
	"internal/core",
	"internal/gc",
	"internal/sim",
	"internal/oo7",
	"internal/trace",
	"internal/workload",
	"internal/fault",
	"internal/objstore",
	"internal/storage",
	"internal/obs",
	"internal/simerr",
}

// Covered reports whether pkgPath is one of the deterministic packages or a
// subpackage of one. The detrand-transitive analyzer shares it, so the two
// checks always agree on which packages carry the determinism contract.
func Covered(pkgPath string) bool {
	return analysis.PathCovered(pkgPath, DeterministicDirs)
}

// randConstructors are the math/rand and math/rand/v2 functions that build
// seeded generators; everything else at package level draws from the shared
// unseeded source.
var randConstructors = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
}

// timeForbidden are the time functions that read or depend on the wall
// clock. Pure conversions and constants (time.Duration, time.Millisecond)
// remain fine.
var timeForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// osForbidden are the os functions that read the process environment.
var osForbidden = map[string]bool{
	"Getenv":    true,
	"LookupEnv": true,
	"Environ":   true,
	"ExpandEnv": true,
}

// Forbidden classifies a call against the nondeterminism rules. When the
// call is one of the forbidden endpoints it returns a short description
// ("time.Now (wall clock)") and true; otherwise "", false. detrand reports
// these directly inside the deterministic packages; detrand-transitive
// treats them as the sinks of its whole-module chain search.
func Forbidden(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	if !ok {
		return "", false
	}
	name := sel.Sel.Name
	switch pkgName.Imported().Path() {
	case "math/rand", "math/rand/v2":
		if !randConstructors[name] {
			return fmt.Sprintf("%s.%s (unseeded randomness)", pkgName.Imported().Name(), name), true
		}
	case "time":
		if timeForbidden[name] {
			return fmt.Sprintf("time.%s (wall clock)", name), true
		}
	case "os":
		if osForbidden[name] {
			return fmt.Sprintf("os.%s (environment)", name), true
		}
	}
	return "", false
}

func run(pass *analysis.Pass) error {
	if !Covered(pass.Pkg.Path()) {
		return nil
	}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			ident, ok := sel.X.(*ast.Ident)
			if !ok {
				return true
			}
			pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName)
			if !ok {
				return true
			}
			name := sel.Sel.Name
			switch pkgName.Imported().Path() {
			case "math/rand", "math/rand/v2":
				if !randConstructors[name] {
					pass.Reportf(call.Pos(),
						"call to global %s.%s in deterministic package; use a seeded *rand.Rand threaded through the constructor", pkgName.Imported().Name(), name)
				}
			case "time":
				if timeForbidden[name] {
					pass.Reportf(call.Pos(),
						"time.%s reads the wall clock in a deterministic package; simulated time must come from the trace", name)
				}
			case "os":
				if osForbidden[name] {
					pass.Reportf(call.Pos(),
						"os.%s makes behavior depend on the environment in a deterministic package; pass configuration explicitly", name)
				}
			}
			return true
		})
	}
	return nil
}
