package detrand_test

import (
	"testing"

	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/detrand"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/detpkg", detrand.Analyzer, "example.com/internal/sim")
}

func TestSubpackageOfDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/detpkg", detrand.Analyzer, "example.com/internal/gc/regional")
}

func TestUncoveredPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/freepkg", detrand.Analyzer, "example.com/internal/plot")
}
