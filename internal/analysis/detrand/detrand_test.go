package detrand_test

import (
	"testing"

	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/detrand"
)

func TestDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/detpkg", detrand.Analyzer, "example.com/internal/sim")
}

func TestSubpackageOfDeterministicPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/detpkg", detrand.Analyzer, "example.com/internal/gc/regional")
}

func TestUncoveredPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/freepkg", detrand.Analyzer, "example.com/internal/plot")
}

// TestObservabilityPackage checks that internal/obs is held to the
// deterministic-package rules, with //lint:allow carving out the wall-clock
// reads at the HTTP serving boundary.
func TestObservabilityPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/obspkg", detrand.Analyzer, "example.com/internal/obs")
}

// TestSimerrPackage checks that the failure-taxonomy package is covered:
// error classification drives retries and resume, so it must stay free of
// clock and environment reads.
func TestSimerrPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/simerrpkg", detrand.Analyzer, "example.com/internal/simerr")
}
