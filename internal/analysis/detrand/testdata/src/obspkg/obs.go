// Package obspkg is a detrand fixture posing as the observability package:
// deterministic like the simulator core, except for explicitly allowed
// wall-clock reads at the HTTP serving boundary.
package obspkg

import "time"

func eventTimestamp() int64 {
	return time.Now().UnixNano() // want "time.Now reads the wall clock"
}

func serveBoundary() float64 {
	//lint:allow detrand uptime on the status endpoint is operator-facing HTTP metadata
	started := time.Now()
	//lint:allow detrand uptime on the status endpoint is operator-facing HTTP metadata
	return time.Since(started).Seconds()
}
