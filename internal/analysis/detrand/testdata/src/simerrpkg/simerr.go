// Package simerrpkg is a detrand fixture posing as the failure-taxonomy
// package: error classification feeds retry decisions and batch resume, so
// it must not consult the clock or the environment.
package simerrpkg

import (
	"errors"
	"os"
	"time"
)

var errTimeout = errors.New("simerr: run exceeded its deadline")

// classify is the deterministic shape: pure inspection of the error chain.
func classify(err error) string {
	if errors.Is(err, errTimeout) {
		return "timeout"
	}
	return "failed"
}

func stampFailure(err error) string {
	return classify(err) + time.Now().Format(time.RFC3339) // want "time.Now reads the wall clock"
}

func retryBudgetFromEnv() string {
	return os.Getenv("ODBGC_RETRIES") // want "os.Getenv makes behavior depend on the environment"
}
