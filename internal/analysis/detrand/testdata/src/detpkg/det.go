// Package detpkg is a detrand fixture posing as a deterministic package.
package detpkg

import (
	"math/rand"
	"os"
	"time"
)

func bad() {
	_ = rand.Intn(10)            // want "call to global rand.Intn in deterministic package"
	_ = rand.Float64()           // want "call to global rand.Float64 in deterministic package"
	_ = time.Now()               // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond) // want "time.Sleep reads the wall clock"
	_ = os.Getenv("ODBGC_MODE")  // want "os.Getenv makes behavior depend on the environment"
}

func good(seed int64) int {
	rng := rand.New(rand.NewSource(seed))
	d := 5 * time.Millisecond
	_ = d
	return rng.Intn(10)
}

func allowed() {
	t := time.NewTimer(time.Second) //lint:allow detrand watchdog timer measures real wall-clock time
	t.Stop()
}
