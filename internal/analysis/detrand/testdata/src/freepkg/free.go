// Package freepkg is a detrand fixture for a package outside the
// deterministic set: the same calls draw no findings here.
package freepkg

import (
	"math/rand"
	"os"
	"time"
)

func unconstrained() {
	_ = rand.Intn(10)
	_ = time.Now()
	_ = os.Getenv("ODBGC_MODE")
}
