package maporder_test

import (
	"testing"

	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/maporder"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/fixture", maporder.Analyzer, "example.com/maporder/fixture")
}
