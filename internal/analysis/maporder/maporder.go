// Package maporder flags range-over-map loops whose iteration order can
// leak into observable output: appends building slices, writes to writers,
// hashes, or encoders, and string accumulation. Go randomizes map iteration
// per run, so any of these turns bit-identical replay and reproducible
// experiment CSVs into a coin flip — exactly the class of bug that breaks
// checkpoint/resume equivalence silently.
//
// The check is heuristic in the direction of safety: a loop that appends to
// a slice is fine when the slice is later passed to a sort (sort.Slice,
// sort.Strings, a local sortXxx helper — any call whose name contains
// "sort" taking the slice), which is the collect-then-sort idiom used
// throughout the snapshot encoders. Writes to maps and numeric integer
// accumulation are commutative and not flagged.
package maporder

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"

	"odbgc/internal/analysis"
)

// Analyzer is the maporder check.
var Analyzer = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "flag map iteration whose order leaks into slices, output, or encoders without a sort",
	Run:  run,
}

// outputNames are method names that emit bytes somewhere order-sensitive:
// writers, hashes, and encoders.
var outputNames = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
}

// printNames are the fmt package's printing functions.
var printNames = map[string]bool{
	"Fprint": true, "Fprintf": true, "Fprintln": true,
	"Print": true, "Printf": true, "Println": true,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body)
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		rs, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rs.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		checkMapRange(pass, body, rs)
		return true
	})
}

func checkMapRange(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch stmt := n.(type) {
		case *ast.AssignStmt:
			// x = append(x, ...) — order-sensitive unless sorted later.
			for i, rhs := range stmt.Rhs {
				call, ok := rhs.(*ast.CallExpr)
				if !ok || !isBuiltinAppend(pass, call) || i >= len(stmt.Lhs) {
					continue
				}
				target := render(pass.Fset, stmt.Lhs[i])
				if !sortedAfter(pass, funcBody, rs, target) {
					pass.Reportf(stmt.Pos(),
						"append to %s inside range over map without a later sort; map iteration order leaks into the slice", target)
				}
			}
			// s += ... on strings accumulates in iteration order.
			if stmt.Tok == token.ADD_ASSIGN && len(stmt.Lhs) == 1 {
				if tv, ok := pass.TypesInfo.Types[stmt.Lhs[0]]; ok {
					if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsString != 0 {
						pass.Reportf(stmt.Pos(),
							"string concatenation inside range over map; iteration order leaks into the result")
					}
				}
			}
		case *ast.CallExpr:
			reportOutputCall(pass, stmt)
		}
		return true
	})
}

// reportOutputCall flags writer/encoder/fmt calls made directly inside a
// map-range body.
func reportOutputCall(pass *analysis.Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if ident, ok := sel.X.(*ast.Ident); ok {
		if pkgName, ok := pass.TypesInfo.Uses[ident].(*types.PkgName); ok {
			if pkgName.Imported().Path() == "fmt" && printNames[name] {
				pass.Reportf(call.Pos(),
					"fmt.%s inside range over map writes in nondeterministic order; sort the keys first", name)
			}
			return
		}
	}
	if outputNames[name] {
		pass.Reportf(call.Pos(),
			"%s inside range over map emits in nondeterministic order; sort the keys first", name)
	}
}

// sortedAfter reports whether, after the range loop, the function calls
// something sort-like on the appended slice.
func sortedAfter(pass *analysis.Pass, funcBody *ast.BlockStmt, rs *ast.RangeStmt, target string) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() <= rs.End() {
			return true
		}
		funName := strings.ToLower(render(pass.Fset, call.Fun))
		if !strings.Contains(funName, "sort") {
			return true
		}
		for _, arg := range call.Args {
			if render(pass.Fset, arg) == target {
				found = true
				return false
			}
			// Sorting a sub-slice of the target — slices.Sort(dst[start:]),
			// the append-to-scratch idiom — still fixes the order of every
			// element the loop appended.
			if se, ok := arg.(*ast.SliceExpr); ok && render(pass.Fset, se.X) == target {
				found = true
				return false
			}
		}
		return true
	})
	return found
}

func isBuiltinAppend(pass *analysis.Pass, call *ast.CallExpr) bool {
	ident, ok := call.Fun.(*ast.Ident)
	if !ok || ident.Name != "append" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[ident].(*types.Builtin)
	return isBuiltin
}

func render(fset *token.FileSet, n ast.Node) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, n); err != nil {
		return ""
	}
	return buf.String()
}
