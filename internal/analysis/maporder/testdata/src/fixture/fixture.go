// Package fixture exercises maporder: order leaks are flagged, the
// collect-then-sort idiom and commutative accumulation are not.
package fixture

import (
	"fmt"
	"sort"
	"strings"
)

func leakAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want "append to keys inside range over map without a later sort"
	}
	return keys
}

func sortedAppend(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func helperSorted(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	sortInts(out)
	return out
}

// subsliceSorted is the append-to-scratch idiom: only the tail the loop
// appended needs sorting, and sorting dst[start:] fixes its order.
func subsliceSorted(m map[string]int, dst []string) []string {
	start := len(dst)
	for k := range m {
		dst = append(dst, k)
	}
	sort.Strings(dst[start:])
	return dst
}

func sortInts(v []int) { sort.Ints(v) }

func leakPrint(m map[string]int, b *strings.Builder) {
	for k := range m {
		fmt.Fprintf(b, "%s\n", k) // want "fmt.Fprintf inside range over map writes in nondeterministic order"
	}
}

func leakWrite(m map[string]int, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) // want "WriteString inside range over map emits in nondeterministic order"
	}
}

func leakConcat(m map[string]int) string {
	s := ""
	for k := range m {
		s += k // want "string concatenation inside range over map"
	}
	return s
}

func commutativeSum(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}

func mapToMap(m map[string]int) map[int]string {
	out := make(map[int]string, len(m))
	for k, v := range m {
		out[v] = k
	}
	return out
}

func overSlice(vs []string, b *strings.Builder) {
	for _, v := range vs {
		b.WriteString(v)
	}
}

func allowed(m map[string]bool, b *strings.Builder) {
	for k := range m {
		b.WriteString(k) //lint:allow maporder debug dump, ordering is irrelevant here
	}
}
