package lockcheck_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/lockcheck"
)

// TestDiscipline pins the unconditional rules — unlock-on-all-paths,
// double-lock, lock copies — in a package outside the concurrent set.
func TestDiscipline(t *testing.T) {
	analysistest.Run(t, "testdata/src/discipline", lockcheck.Analyzer, "example.com/internal/sim/pool")
}

// TestBlockingCovered pins the blocking-while-held rule inside a concurrent
// package, including the transitive call-graph case.
func TestBlockingCovered(t *testing.T) {
	analysistest.Run(t, "testdata/src/blocking", lockcheck.Analyzer, "example.com/internal/server/fix")
}

// TestBlockingUncoveredExempt runs blocking-under-lock code that lives
// outside the concurrent directories: no findings.
func TestBlockingUncoveredExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src/uncovered", lockcheck.Analyzer, "example.com/internal/report")
}

// TestEngineRegression pins the seeded regression: an engine-shaped
// track/untrack pair where untrack lost its defer mu.Unlock().
func TestEngineRegression(t *testing.T) {
	analysistest.Run(t, "testdata/src/engine", lockcheck.Analyzer, "example.com/odbgc/internal/server")
}

// TestUnreasonedAllowRejected pins the suppression contract: an allow
// without a reason is itself a finding and suppresses nothing.
func TestUnreasonedAllowRejected(t *testing.T) {
	dir := t.TempDir()
	src := `package pool

import "sync"

type box struct {
	mu sync.Mutex
	n  int
}

func (b *box) leak(v int) int {
	//lint:allow lockcheck
	b.mu.Lock()
	if v < 0 {
		return b.n
	}
	b.mu.Unlock()
	return b.n
}
`
	if err := os.WriteFile(filepath.Join(dir, "pool.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := analysistest.LoadPackage(t, dir, "example.com/internal/sim/pool")
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{lockcheck.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawFinding bool
	for _, f := range findings {
		if f.Analyzer == "allow" && strings.Contains(f.Message, "no reason") {
			sawMalformed = true
		}
		if f.Analyzer == "lockcheck" {
			sawFinding = true
		}
	}
	if !sawMalformed {
		t.Errorf("unreasoned //lint:allow not reported as malformed; findings: %v", findings)
	}
	if !sawFinding {
		t.Errorf("unreasoned //lint:allow suppressed the lockcheck finding; findings: %v", findings)
	}
}
