// Package uncovered blocks under a lock but lives outside the concurrent
// directories, so the blocking-while-held rule does not apply: no findings.
// (The unconditional discipline rules still hold — the lock is balanced.)
package uncovered

import (
	"sync"
	"time"
)

type report struct {
	mu sync.Mutex
	ch chan int
	n  int
}

func (r *report) publish(v int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ch <- v
	time.Sleep(time.Millisecond)
	r.n++
}
