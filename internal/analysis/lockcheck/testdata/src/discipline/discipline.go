// Package discipline exercises the path-sensitive rules that hold in every
// package: unlock-on-all-paths, double-lock, and lock copies. It pretends
// to live outside the concurrent directories, so the blocking-while-held
// rule stays off here (see the blocking fixture for that).
package discipline

import "sync"

type counter struct {
	mu sync.Mutex
	rw sync.RWMutex
	n  int
}

// inc is the canonical discipline: defer covers every path. True negative.
func (c *counter) inc() {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
}

// add releases manually on both the early return and the fallthrough path.
// True negative.
func (c *counter) add(v int) int {
	c.mu.Lock()
	if v < 0 {
		c.mu.Unlock()
		return c.n
	}
	c.n += v
	c.mu.Unlock()
	return c.n
}

// bySwitch releases on every switch arm. True negative.
func (c *counter) bySwitch(v int) {
	c.mu.Lock()
	switch {
	case v > 0:
		c.n += v
		c.mu.Unlock()
	default:
		c.mu.Unlock()
	}
}

// leaky forgets the unlock on the early-return path.
func (c *counter) leaky(v int) int {
	c.mu.Lock() // want "not released on every path"
	if v < 0 {
		return c.n
	}
	c.n += v
	c.mu.Unlock()
	return c.n
}

// double re-acquires a mutex it already holds.
func (c *counter) double() {
	c.mu.Lock()
	c.n++
	c.mu.Lock() // want "locked again"
	c.n++
	c.mu.Unlock()
}

// upgrade tries a read-lock while holding the write lock: self-deadlock.
func (c *counter) upgrade() {
	c.rw.Lock()
	defer c.rw.Unlock()
	c.rw.RLock() // want "locked again"
	c.n++
	c.rw.RUnlock()
}

// readers re-enters a read lock, which is legal. True negative.
func (c *counter) readers() int {
	c.rw.RLock()
	defer c.rw.RUnlock()
	c.rw.RLock()
	n := c.n
	c.rw.RUnlock()
	return n
}

// spin locks every loop iteration and never releases: the back edge makes
// it both a double-lock and a leak.
func (c *counter) spin(vs []int) {
	for range vs {
		c.mu.Lock() // want "locked again" "not released on every path"
		c.n++
	}
}

// handoff intentionally leaves the lock held for its caller; the reasoned
// allow keeps it out of the findings.
func (c *counter) handoff() {
	//lint:allow lockcheck the matching Unlock is in release, pinned by counter_test
	c.mu.Lock()
}

type boxed struct {
	mu sync.Mutex
	v  int
}

func sink(v any) { _ = v }

// byValue copies the mutex at every call.
func byValue(b boxed) int { // want "passes a mutex-bearing value by value"
	return b.v
}

// get copies the mutex into the receiver.
func (b boxed) get() int { // want "value receiver whose type contains a mutex"
	return b.v
}

// snapshot copies a live lock twice: once into a local, once into a call.
func snapshot(b *boxed) int {
	c := *b  // want "assignment copies a value containing a mutex"
	sink(*b) // want "passes a value containing a mutex by value"
	return c.v
}

// byPointer shares the mutex instead of copying it. True negative.
func byPointer(b *boxed) int {
	sink(b)
	return b.v
}
