// Package engine mirrors the real serving engine's connection-tracking
// shape: Server.track/untrack guard a conns map with s.mu using the
// defer-unlock idiom. untrack is the seeded regression — track's sibling
// with the defer dropped, the exact bug lint must keep catching if a
// refactor loses one.
package engine

import "sync"

type conn interface{ Close() error }

type server struct {
	mu       sync.Mutex
	conns    map[conn]struct{}
	draining bool
}

// track mirrors the real Server.track. True negative.
func (s *server) track(c conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.draining {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

// untrack is track with the defer removed: the early return leaks the lock.
func (s *server) untrack(c conn) bool {
	s.mu.Lock() // want "not released on every path"
	if s.draining {
		return false
	}
	delete(s.conns, c)
	s.mu.Unlock()
	return true
}
