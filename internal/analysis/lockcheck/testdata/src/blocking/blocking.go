// Package blocking exercises the blocking-while-held rule, which is active
// because this fixture pretends to live under internal/server. Channel
// operations, sleeps, waits, and external writes under a held mutex are
// findings; buffered rendering, post-unlock sends, non-blocking selects,
// and go statements are not.
package blocking

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"
)

type srv struct {
	mu    sync.Mutex
	out   io.Writer
	queue chan int
	n     int
}

// enqueue sends on a channel while holding s.mu: a slow consumer stalls
// every other lock holder.
func (s *srv) enqueue(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.queue <- v // want "channel send while s.mu is held"
}

// enqueueAfter releases before sending. True negative.
func (s *srv) enqueueAfter(v int) {
	s.mu.Lock()
	s.n++
	s.mu.Unlock()
	s.queue <- v
}

// tryEnqueue uses a select with default, which never blocks. True negative.
func (s *srv) tryEnqueue(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.queue <- v:
	default:
		s.n++
	}
}

// await receives while holding the lock.
func (s *srv) await() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return <-s.queue // want "channel receive while s.mu is held"
}

// dump writes to an external writer while locked.
func (s *srv) dump() {
	s.mu.Lock()
	defer s.mu.Unlock()
	fmt.Fprintf(s.out, "n=%d\n", s.n) // want "writes to an external io.Writer"
}

// render builds the text into an in-memory buffer under the lock and lets
// the caller write it out: the sanctioned shape. True negative.
func (s *srv) render() string {
	var buf bytes.Buffer
	s.mu.Lock()
	fmt.Fprintf(&buf, "n=%d\n", s.n)
	s.mu.Unlock()
	return buf.String()
}

// nap sleeps under the lock.
func (s *srv) nap() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "blocks in time.Sleep"
}

// flushAll waits for a group under the lock.
func (s *srv) flushAll(wg *sync.WaitGroup) {
	s.mu.Lock()
	defer s.mu.Unlock()
	wg.Wait() // want "blocks in sync.WaitGroup.Wait"
}

// slowPath blocks transitively: the helper it calls sleeps. The finding
// carries the call chain.
func (s *srv) slowPath() {
	s.mu.Lock()
	s.backoff() // want "call to backoff which blocks in time.Sleep"
	s.mu.Unlock()
}

func (s *srv) backoff() {
	time.Sleep(time.Millisecond)
}

// spawn launches the blocking helper on its own goroutine, which does not
// block the lock holder. True negative.
func (s *srv) spawn() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go s.backoff()
	s.n++
}
