// Package lockcheck enforces mutex discipline over the intra-procedural
// control-flow graph, the static counterpart to the -race runs in CI (which
// only see executed interleavings):
//
//   - every sync.Mutex/RWMutex Lock must reach a matching Unlock on every
//     path to the function exit — a `defer mu.Unlock()` satisfies all paths
//     at once, a manual Unlock must appear on each branch;
//   - no path may Lock a mutex it already holds (Lock-Lock, Lock-RLock, and
//     RLock-Lock on the same receiver all self-deadlock; RLock-RLock is
//     left alone — legal, if inadvisable);
//   - a lock value must never be copied: value receivers, by-value
//     parameters, assignments, and call arguments whose type contains a
//     mutex are all findings (a copied mutex is a different mutex);
//   - in the concurrent packages (analysis.ConcurrentDirs — the serving
//     engine, the buffer pool + WAL, the observability stack) no blocking
//     operation may run while a mutex is held: channel sends and receives,
//     WaitGroup/Cond waits, sleeps, and I/O writes to external writers,
//     found directly or through the module call graph (the finding then
//     carries the call chain to the sink).
//
// The path analysis is a DFS over the CFG with a (held, deferred) state per
// lock site, so early returns, branch-specific unlocks, and loops are all
// walked exactly as control flow allows.
package lockcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/callgraph"
	"odbgc/internal/analysis/cfg"
)

// Analyzer is the lockcheck check.
var Analyzer = &analysis.Analyzer{
	Name: "lockcheck",
	Doc:  "require Unlock on all paths, forbid double-lock, lock copies, and blocking calls under a hot-package mutex",
	Run:  run,
}

type evKind int

const (
	evLock evKind = iota
	evRLock
	evUnlock
	evRUnlock
	evDeferUnlock
	evDeferRUnlock
	evBlocking
)

// event is one lock-relevant operation inside a basic block, in source
// order. key identifies the mutex by its access path (e.g. "s.mu"); for
// evBlocking it is unused and desc/chain describe the sink instead.
type event struct {
	kind  evKind
	key   string
	pos   token.Pos
	desc  string
	chain []string
}

func run(pass *analysis.Pass) error {
	covered := analysis.PathCovered(pass.Pkg.Path(), analysis.ConcurrentDirs)
	var facts map[*types.Func]*blockFact
	if covered {
		facts = blockingFacts(pass.Module)
	}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			checkCopies(pass, fd)
			if fd.Body == nil {
				continue
			}
			checkFunc(pass, fd.Body, covered, facts)
			// Function literals get their own CFG: a closure runs on its
			// own schedule, so its lock discipline is checked separately.
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				if lit, ok := n.(*ast.FuncLit); ok {
					checkFunc(pass, lit.Body, covered, facts)
				}
				return true
			})
		}
	}
	return nil
}

// checkFunc walks one body's CFG, extracting lock events per block and
// simulating every Lock site forward.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt, covered bool, facts map[*types.Func]*blockFact) {
	flow := cfg.New(body)
	exempt := nonBlockingComms(body)
	events := make(map[*cfg.Block][]event)
	any := false
	for _, b := range flow.Blocks {
		evs := extractEvents(pass, b, covered, facts, exempt)
		if len(evs) > 0 {
			events[b] = evs
			any = true
		}
	}
	if !any {
		return
	}
	for _, b := range flow.Blocks {
		for i, ev := range events[b] {
			if ev.kind == evLock || ev.kind == evRLock {
				simulate(pass, flow, events, b, i, ev)
			}
		}
	}
}

// simulate runs a DFS from just after the lock event, tracking whether the
// lock is still held and whether a deferred unlock will release it at exit.
func simulate(pass *analysis.Pass, flow *cfg.Graph, events map[*cfg.Block][]event, start *cfg.Block, idx int, lock event) {
	read := lock.kind == evRLock
	type frame struct {
		block    *cfg.Block
		idx      int // first event index to process
		deferred bool
	}
	type visitKey struct {
		block    *cfg.Block
		deferred bool
	}
	visited := map[visitKey]bool{}
	reported := map[token.Pos]bool{}
	leaked := false
	stack := []frame{{block: start, idx: idx + 1, deferred: false}}
	for len(stack) > 0 {
		f := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		deferred := f.deferred
		released := false
		for _, ev := range events[f.block][f.idx:] {
			if ev.kind == evBlocking {
				if !reported[ev.pos] {
					reported[ev.pos] = true
					msg := ev.desc + " while " + lock.key + " is held; release the lock first or move the operation out of the critical section"
					pass.Report(analysis.Diagnostic{Pos: ev.pos, Message: msg, Chain: ev.chain})
				}
				continue
			}
			if ev.key != lock.key {
				continue
			}
			switch ev.kind {
			case evLock, evRLock:
				// RLock-RLock is legal; every other re-acquire self-deadlocks.
				if !(read && ev.kind == evRLock) {
					if !reported[ev.pos] {
						reported[ev.pos] = true
						pass.Reportf(ev.pos, "%s is locked again on a path where it is already held (locked at line %d); this deadlocks",
							lock.key, pass.Fset.Position(lock.pos).Line)
					}
					released = true // stop this path; the report covers it
				}
			case evUnlock:
				if !read {
					released = true
				}
			case evRUnlock:
				if read {
					released = true
				}
			case evDeferUnlock:
				if !read {
					deferred = true
				}
			case evDeferRUnlock:
				if read {
					deferred = true
				}
			}
			if released {
				break
			}
		}
		if released {
			continue
		}
		for _, succ := range f.block.Succs {
			if succ == flow.Exit {
				if !deferred && !leaked {
					leaked = true
					pass.Reportf(lock.pos, "%s is locked here but not released on every path to return; add the missing Unlock or use defer", lock.key)
				}
				continue
			}
			k := visitKey{block: succ, deferred: deferred}
			if !visited[k] {
				visited[k] = true
				stack = append(stack, frame{block: succ, idx: 0, deferred: deferred})
			}
		}
	}
}

// extractEvents lists the lock-relevant operations of one block in source
// order, not descending into function literals (they have their own CFG).
func extractEvents(pass *analysis.Pass, b *cfg.Block, covered bool, facts map[*types.Func]*blockFact, exempt map[ast.Node]bool) []event {
	var evs []event
	for _, node := range b.Nodes {
		if rs, ok := node.(*ast.RangeStmt); ok {
			// The range-head block carries the whole statement, but only
			// the ranged expression evaluates here — the body has its own
			// blocks. Ranging over a channel is a blocking receive.
			if covered {
				if tv, ok := pass.TypesInfo.Types[rs.X]; ok {
					if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
						evs = append(evs, event{kind: evBlocking, pos: rs.X.Pos(), desc: "channel receive (range)"})
					}
				}
			}
			node = rs.X
		}
		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.GoStmt:
				return false // the spawned call does not run inline
			case *ast.DeferStmt:
				if key, kind, ok := mutexCall(pass.TypesInfo, n.Call); ok {
					switch kind {
					case evUnlock:
						evs = append(evs, event{kind: evDeferUnlock, key: key, pos: n.Pos()})
					case evRUnlock:
						evs = append(evs, event{kind: evDeferRUnlock, key: key, pos: n.Pos()})
					}
				}
				return false // deferred work runs at return, not here
			case *ast.SendStmt:
				if covered && !exempt[n] {
					evs = append(evs, event{kind: evBlocking, pos: n.Pos(), desc: "channel send"})
				}
			case *ast.UnaryExpr:
				if n.Op == token.ARROW && covered && !exempt[n] {
					evs = append(evs, event{kind: evBlocking, pos: n.Pos(), desc: "channel receive"})
				}
			case *ast.CallExpr:
				if key, kind, ok := mutexCall(pass.TypesInfo, n); ok {
					evs = append(evs, event{kind: kind, key: key, pos: n.Pos()})
					return true
				}
				if !covered {
					return true
				}
				callee := callgraph.Callee(pass.TypesInfo, n)
				if callee == nil {
					return true
				}
				if desc, ok := builtinBlocking(pass.TypesInfo, callee, n); ok {
					evs = append(evs, event{kind: evBlocking, pos: n.Pos(), desc: desc})
					return true
				}
				if bf := facts[callee]; bf != nil {
					evs = append(evs, event{
						kind:  evBlocking,
						pos:   n.Pos(),
						desc:  "call to " + callee.Name() + " which " + bf.desc + " (via " + strings.Join(bf.chain, " -> ") + ")",
						chain: bf.chain,
					})
				}
			}
			return true
		})
	}
	return evs
}

// nonBlockingComms collects the comm statements and receive expressions of
// every select that has a default clause: such a select never blocks, so
// its cases are not blocking operations.
func nonBlockingComms(body *ast.BlockStmt) map[ast.Node]bool {
	exempt := map[ast.Node]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectStmt)
		if !ok {
			return true
		}
		hasDefault := false
		for _, cs := range sel.Body.List {
			if cc, ok := cs.(*ast.CommClause); ok && cc.Comm == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			return true
		}
		for _, cs := range sel.Body.List {
			cc, ok := cs.(*ast.CommClause)
			if !ok || cc.Comm == nil {
				continue
			}
			exempt[cc.Comm] = true
			ast.Inspect(cc.Comm, func(m ast.Node) bool {
				if u, ok := m.(*ast.UnaryExpr); ok && u.Op == token.ARROW {
					exempt[u] = true
				}
				return true
			})
		}
		return true
	})
	return exempt
}

// mutexCall classifies a call as a sync.Mutex/RWMutex lock operation and
// returns the receiver's access path as the lock key.
func mutexCall(info *types.Info, call *ast.CallExpr) (string, evKind, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", 0, false
	}
	fn := callgraph.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", 0, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", 0, false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return "", 0, false
	}
	tn := named.Obj().Name()
	if tn != "Mutex" && tn != "RWMutex" {
		return "", 0, false
	}
	var kind evKind
	switch fn.Name() {
	case "Lock":
		kind = evLock
	case "RLock":
		kind = evRLock
	case "Unlock":
		kind = evUnlock
	case "RUnlock":
		kind = evRUnlock
	default:
		return "", 0, false
	}
	return types.ExprString(sel.X), kind, true
}

// builtinBlocking classifies calls whose callee is known to block: waits,
// sleeps, and writes that leave the process. fmt.Fprint* into an in-memory
// buffer is exempt — that is the sanctioned way to render under a lock.
func builtinBlocking(info *types.Info, fn *types.Func, call *ast.CallExpr) (string, bool) {
	pkg := fn.Pkg()
	if pkg == nil {
		return "", false
	}
	switch pkg.Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "blocks in time.Sleep", true
		}
	case "sync":
		if fn.Name() == "Wait" {
			return "blocks in sync." + recvTypeName(fn) + ".Wait", true
		}
	case "fmt":
		if strings.HasPrefix(fn.Name(), "Fprint") && len(call.Args) > 0 && !inMemoryWriter(info, call.Args[0]) {
			return "writes to an external io.Writer via fmt." + fn.Name(), true
		}
	case "io":
		if fn.Name() == "Copy" || fn.Name() == "WriteString" {
			return "performs I/O via io." + fn.Name(), true
		}
	case "net":
		return "performs network I/O via net." + recvTypeName(fn) + "." + fn.Name(), true
	case "os":
		if recvTypeName(fn) == "File" {
			switch fn.Name() {
			case "Read", "ReadAt", "Write", "WriteAt", "WriteString", "Sync":
				return "performs file I/O via os.File." + fn.Name(), true
			}
		}
	}
	return "", false
}

func recvTypeName(fn *types.Func) string {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// inMemoryWriter reports whether the expression's type is a purely
// in-memory writer (*bytes.Buffer or *strings.Builder).
func inMemoryWriter(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok {
		return false
	}
	t := tv.Type
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return false
	}
	switch {
	case obj.Pkg().Path() == "bytes" && obj.Name() == "Buffer":
		return true
	case obj.Pkg().Path() == "strings" && obj.Name() == "Builder":
		return true
	}
	return false
}

// blockFact records, for a declared function, the evidence that calling it
// can block: a one-line description of the sink and the call chain from the
// function down to it (the function itself first, sink description last).
type blockFact struct {
	desc  string
	chain []string
}

// blockingFacts computes, once per module, the set of declared functions
// that can block: those whose own bodies (outside function literals)
// contain a blocking operation, plus everything that reaches one through
// ordinary (non-go) call edges in the module call graph.
func blockingFacts(mod *analysis.Module) map[*types.Func]*blockFact {
	v, _ := mod.Memo("lockcheck.blocking", func() (any, error) {
		g := callgraph.For(mod)
		// Call sites under a go statement do not block the caller.
		goSites := map[*ast.CallExpr]bool{}
		for _, n := range g.Nodes() {
			ast.Inspect(n.Decl, func(node ast.Node) bool {
				if gs, ok := node.(*ast.GoStmt); ok {
					goSites[gs.Call] = true
				}
				return true
			})
		}
		facts := map[*types.Func]*blockFact{}
		for _, n := range g.Nodes() {
			if desc, ok := directBlocking(n); ok {
				facts[n.Func] = &blockFact{desc: desc, chain: []string{n.Func.Name(), desc}}
			}
		}
		for changed := true; changed; {
			changed = false
			for _, n := range g.Nodes() {
				if facts[n.Func] != nil {
					continue
				}
				for _, e := range n.Out {
					if goSites[e.Site] {
						continue
					}
					bf := facts[e.Callee.Func]
					if bf == nil {
						continue
					}
					facts[n.Func] = &blockFact{
						desc:  bf.desc,
						chain: append([]string{n.Func.Name()}, bf.chain...),
					}
					changed = true
					break
				}
			}
		}
		return facts, nil
	})
	return v.(map[*types.Func]*blockFact)
}

// directBlocking reports whether the function's own body, outside function
// literals and go statements, contains a blocking operation.
func directBlocking(n *callgraph.Node) (string, bool) {
	if n.Decl.Body == nil {
		return "", false
	}
	info := n.Pkg.Info
	exempt := nonBlockingComms(n.Decl.Body)
	desc, found := "", false
	ast.Inspect(n.Decl.Body, func(node ast.Node) bool {
		if found {
			return false
		}
		switch node := node.(type) {
		case *ast.FuncLit, *ast.GoStmt:
			return false
		case *ast.RangeStmt:
			if tv, ok := info.Types[node.X]; ok {
				if _, isChan := tv.Type.Underlying().(*types.Chan); isChan {
					desc, found = "receives from a channel", true
				}
			}
		case *ast.SendStmt:
			if !exempt[node] {
				desc, found = "sends on a channel", true
			}
		case *ast.UnaryExpr:
			if node.Op == token.ARROW && !exempt[node] {
				desc, found = "receives from a channel", true
			}
		case *ast.CallExpr:
			if fn := callgraph.Callee(info, node); fn != nil {
				if d, ok := builtinBlocking(info, fn, node); ok {
					desc, found = d, true
				}
			}
		}
		return !found
	})
	return desc, found
}

// checkCopies reports lock values copied by value: value receivers and
// parameters whose type contains a mutex, assignments that copy an existing
// lock-bearing value, and call arguments passing one by value.
func checkCopies(pass *analysis.Pass, fd *ast.FuncDecl) {
	// The seen map is a cycle guard, so every query starts fresh.
	contains := func(t types.Type) bool { return containsLock(t, map[types.Type]bool{}) }

	if fd.Recv != nil {
		for _, f := range fd.Recv.List {
			if t := pass.TypesInfo.TypeOf(f.Type); t != nil && contains(t) {
				pass.Reportf(f.Pos(), "method %s has a value receiver whose type contains a mutex; a copied mutex is a different mutex — use a pointer receiver", fd.Name.Name)
			}
		}
	}
	if fd.Type.Params != nil {
		for _, f := range fd.Type.Params.List {
			if t := pass.TypesInfo.TypeOf(f.Type); t != nil && contains(t) {
				pass.Reportf(f.Pos(), "parameter of %s passes a mutex-bearing value by value; pass a pointer", fd.Name.Name)
			}
		}
	}
	if fd.Body == nil {
		return
	}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, rhs := range n.Rhs {
				if copiesLockValue(pass.TypesInfo, rhs, contains) {
					pass.Reportf(rhs.Pos(), "assignment copies a value containing a mutex; take a pointer instead")
				}
			}
		case *ast.CallExpr:
			if _, _, ok := mutexCall(pass.TypesInfo, n); ok {
				return true
			}
			for _, arg := range n.Args {
				if copiesLockValue(pass.TypesInfo, arg, contains) {
					pass.Reportf(arg.Pos(), "call passes a value containing a mutex by value; pass a pointer")
				}
			}
		}
		return true
	})
}

// copiesLockValue reports whether evaluating e copies an existing
// lock-bearing value: e reads a variable, field, element, or dereference of
// non-pointer type containing a mutex. Fresh values (composite literals,
// call results) and pointers are fine.
func copiesLockValue(info *types.Info, e ast.Expr, contains func(types.Type) bool) bool {
	switch ast.Unparen(e).(type) {
	case *ast.Ident, *ast.SelectorExpr, *ast.StarExpr, *ast.IndexExpr:
	default:
		return false
	}
	tv, ok := info.Types[e]
	if !ok || tv.Type == nil {
		return false
	}
	if _, isPtr := tv.Type.(*types.Pointer); isPtr {
		return false
	}
	return contains(tv.Type)
}

// containsLock reports whether t contains a sync.Mutex or sync.RWMutex,
// directly or through struct fields and array elements.
func containsLock(t types.Type, seen map[types.Type]bool) bool {
	if t == nil || seen[t] {
		return false
	}
	seen[t] = true
	if named, ok := t.(*types.Named); ok {
		obj := named.Obj()
		if obj.Pkg() != nil && obj.Pkg().Path() == "sync" && (obj.Name() == "Mutex" || obj.Name() == "RWMutex") {
			return true
		}
		return containsLock(named.Underlying(), seen)
	}
	switch t := t.(type) {
	case *types.Struct:
		for i := 0; i < t.NumFields(); i++ {
			if containsLock(t.Field(i).Type(), seen) {
				return true
			}
		}
	case *types.Array:
		return containsLock(t.Elem(), seen)
	}
	return false
}
