// Package obsseed reproduces, in miniature, the real findings this layer
// was built to catch (and which PR7 fixed in internal/obs and
// internal/trace): an envelope struct moved to the heap on every emitted
// event in a JSONL-style writer, and a per-event dead-slice make in a
// stream decoder's Read. Neither allocation sits in a loop of its own
// function — both are loop-hot, reached from an upstream drain loop.
package obsseed

import "testing"

type envelope struct {
	Seq  uint64
	Type string
}

type writer struct {
	out  []byte
	seq  uint64
	last *envelope
}

func BenchmarkSeed(b *testing.B) {
	w := &writer{}
	r := &reader{n: 64}
	for i := 0; i < b.N; i++ {
		w.drain(64)
		r.readAll()
	}
}

func (w *writer) drain(n int) {
	for i := 0; i < n; i++ {
		w.emit("event")
	}
}

// emit mirrors JSONLWriter.emit: the envelope escapes through the
// marshal-style pointer handoff, once per event.
func (w *writer) emit(typ string) {
	env := envelope{Seq: w.seq, Type: typ} // want "hot-path heap allocation in per-iteration function"
	w.seq++
	w.last = &env
	w.out = append(w.out, byte(len(typ)))
}

type event struct{ dead []int }

type reader struct {
	n    int
	keep []event
}

func (r *reader) readAll() {
	for {
		ev, ok := r.read()
		if !ok {
			return
		}
		r.keep = append(r.keep, ev)
	}
}

// read mirrors trace.Reader.Read: a fresh dead-objects slice per event.
func (r *reader) read() (event, bool) {
	if r.n == 0 {
		return event{}, false
	}
	r.n--
	dead := make([]int, 4) // want "hot-path heap allocation in per-iteration function"
	dead[0] = r.n
	return event{dead: dead}, true
}
