// Package hotpkg is the hotalloc fixture. BenchmarkProcess seeds the hot
// region; process is hot (measured once per sample, so its own body is not
// loop territory); emit is loop-hot (called from process's loop, so its
// whole body is per-iteration work). The fixture compiles with the real
// toolchain — the escape facts the analyzer joins against are genuine
// compiler verdicts, not mocks.
package hotpkg

import (
	"fmt"
	"testing"
)

type Event struct {
	ID   int
	Note string
}

var sink *Event

func BenchmarkProcess(b *testing.B) {
	for i := 0; i < b.N; i++ {
		process(64)
	}
}

func process(n int) {
	for i := 0; i < n; i++ {
		e := &Event{ID: i} // want "hot-path heap allocation in loop"
		sink = e
		emit(i)
	}
	for i := 0; i < n; i++ {
		local := Event{ID: i} // compiler proves this stack-safe: no finding
		consume(local)
	}
	once := &Event{ID: -1} // heap, but outside any loop: no finding
	sink = once
	allowed(n)
	for i := 0; i < n; i++ {
		if err := failing(i, n); err != nil {
			errOnly(err, n) // cold call site: errOnly never becomes hot
		}
	}
}

// failing is loop-hot, but its error construction sits on the cold error
// path: the fmt.Errorf boxing and formatting allocations are not findings.
func failing(i, n int) error {
	if i >= n {
		return fmt.Errorf("overflow at %d", i) // error constructor: no finding
	}
	return nil
}

// errOnly is reachable only through the cold arm of an error check; the
// region closure must leave it cold despite the per-iteration allocation.
func errOnly(err error, n int) {
	for i := 0; i < n; i++ {
		sink = &Event{ID: i, Note: err.Error()}
	}
}

// emit is loop-hot via process's first loop: the allocation is a finding
// even though emit has no loop of its own.
func emit(id int) {
	e := &Event{ID: id} // want "hot-path heap allocation in per-iteration function"
	sink = e
}

func consume(e Event) int { return e.ID }

// allowed is hot (called by process outside its loops); its per-iteration
// allocation is deliberate and carries a reasoned suppression.
func allowed(n int) {
	for i := 0; i < n; i++ {
		sink = &Event{ID: i} //lint:allow hotalloc fixture keeps a deliberate per-iteration arena handoff
	}
}

// cold is unreachable from the benchmark: its loop allocation is legal.
func cold(n int) {
	for i := 0; i < n; i++ {
		sink = &Event{ID: i}
	}
}

var _ = cold
