// Package unreasoned pins the suppression discipline: a bare
// //lint:allow hotalloc with no reason does not suppress — the driver
// reports both the malformed allow and the underlying finding. (This
// fixture is driven by a direct RunPackage test rather than want comments,
// because the unreasoned allow occupies the comment slot of its line.)
package unreasoned

import "testing"

type box struct{ v int }

var sink *box

func BenchmarkSpin(b *testing.B) {
	for i := 0; i < b.N; i++ {
		spin(4)
	}
}

func spin(n int) {
	for i := 0; i < n; i++ {
		//lint:allow hotalloc
		sink = &box{v: i}
	}
}
