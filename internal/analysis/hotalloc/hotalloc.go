// Package hotalloc reports compiler-confirmed heap allocations that execute
// once per hot-loop iteration: an allocation inside a loop of a hot
// function, or anywhere in a loop-hot function (one reached from inside a
// hot loop — its whole body is per-iteration work; see hotpath).
//
// The facts come from the compiler's own escape analysis (escape package),
// so an `&Event{...}` the backend proves stack-safe is never reported — the
// analyzer flags exactly the sites `-benchmem` would count. Findings print
// the call chain from the hot seed, like detrand-transitive, so the
// diagnostic alone shows why the site is hot. Suppress a deliberate
// allocation with a reasoned //lint:allow hotalloc comment, or budget it in
// lint/allocbudget.json.
package hotalloc

import (
	"odbgc/internal/analysis"
	"odbgc/internal/analysis/cfg"
	"odbgc/internal/analysis/escape"
	"odbgc/internal/analysis/hotpath"
)

// Analyzer is the hot-path heap allocation check.
var Analyzer = &analysis.Analyzer{
	Name: "hotalloc",
	Doc:  "forbid compiler-confirmed heap allocations on hot loop paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	facts := escape.ForPass(pass)
	if !facts.Available {
		return nil
	}
	region := hotpath.For(pass.Module)
	for _, hd := range hotpath.HotDecls(pass) {
		cold := hotpath.ColdSpans(pass.TypesInfo, hd.Decl)
		// One finding per line: the compiler describes a single allocation
		// with up to two facts ("moved to heap: x" plus "&x escapes"), and
		// nested loops revisit the same span.
		type lineKey struct {
			file string
			line int
		}
		seen := make(map[lineKey]bool)
		report := func(fact escape.Fact, where string) {
			// Error-path allocations are free on the success path.
			if hotpath.InSpans(cold, escape.Pos(pass.Fset, hd.Decl.Pos(), fact)) {
				return
			}
			k := lineKey{fact.File, fact.Line}
			if seen[k] {
				return
			}
			seen[k] = true
			pass.Reportf(escape.LinePos(pass.Fset, hd.Decl.Pos(), fact),
				"hot-path heap allocation %s: %s (hot via %s); hoist it, reuse a buffer, or add //lint:allow hotalloc <reason>",
				where, fact.Text, region.Chain(hd.Func))
		}
		if region.LoopHot(hd.Func) {
			// The whole body is per-iteration work for some hot loop
			// upstream.
			for _, fact := range facts.HeapFactsBetween(pass.Fset, hd.Decl.Pos(), hd.Decl.End()) {
				report(fact, "in per-iteration function")
			}
			continue
		}
		for _, loop := range cfg.New(hd.Decl.Body).Loops {
			for _, fact := range facts.HeapFactsBetween(pass.Fset, loop.Stmt.Pos(), loop.Stmt.End()) {
				report(fact, "in loop")
			}
		}
	}
	return nil
}
