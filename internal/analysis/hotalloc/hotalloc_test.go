package hotalloc

import (
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
)

func TestHotalloc(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "hotpkg"), Analyzer, "example.com/hotpkg")
}

// TestObsTraceRegressionSeed pins the miniature reproduction of the real
// internal/obs (per-event envelope escape) and internal/trace (per-event
// dead-slice make) findings this PR fixed.
func TestObsTraceRegressionSeed(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "obsseed"), Analyzer, "example.com/obsseed")
}

// TestUnreasonedAllowRejected drives the fixture directly: an unreasoned
// //lint:allow hotalloc must not suppress — the driver reports both the
// malformed allow and the underlying allocation.
func TestUnreasonedAllowRejected(t *testing.T) {
	pkg := analysistest.LoadPackage(t, filepath.Join("testdata", "src", "unreasoned"), "example.com/unreasoned")
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var gotAllow, gotAlloc bool
	for _, f := range findings {
		switch f.Analyzer {
		case "allow":
			if strings.Contains(f.Message, "has no reason") {
				gotAllow = true
			}
		case "hotalloc":
			gotAlloc = true
		}
	}
	if !gotAllow {
		t.Errorf("missing malformed-allow finding; got %v", findings)
	}
	if !gotAlloc {
		t.Errorf("unreasoned allow suppressed the hotalloc finding; got %v", findings)
	}
}
