// Package analysis is a minimal, dependency-free reimplementation of the
// golang.org/x/tools/go/analysis surface that the odbglint suite needs.
//
// The repository builds on the standard library only, so the real x/tools
// module is deliberately not imported; this package mirrors its shape
// (Analyzer, Pass, Diagnostic, a multichecker-style driver, and an
// analysistest-style fixture harness in the sibling analysistest package) so
// that the analyzers could be ported to the upstream API by changing imports
// alone. The simulator's reproducibility contract — seeded randomness only,
// no wall-clock reads, no map-iteration-order leaks, panic-free library
// boundaries, complete snapshot coverage — is enforced by the analyzers
// under internal/analysis/{detrand,maporder,nopanic,snapcover}.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// Analyzer describes one static check. It mirrors x/tools' analysis.Analyzer:
// Name appears in findings and in //lint:allow comments, Doc is the one-line
// description shown by the driver, and Run inspects a single package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass) error
}

// Pass carries one package's syntax and type information to an analyzer,
// plus the Report callback that records findings. Module widens the view to
// every package of the run for the interprocedural analyzers; it is never
// nil (single-package runs get a one-package module).
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	Module    *Module
	Report    func(Diagnostic)
}

// Diagnostic is a single finding at a source position. Chain, when set,
// names the call path an interprocedural analyzer followed to the sink
// (caller first); the driver's -json output carries it so CI artifacts keep
// the evidence, not just the verdict.
type Diagnostic struct {
	Pos     token.Pos
	Message string
	Chain   []string
}

// Reportf reports a formatted finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.Report(Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finding is a resolved diagnostic: a concrete file position plus the
// analyzer that produced it. The driver and the test harness both work in
// findings so suppression and sorting behave identically everywhere.
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Chain is the call path to the sink for interprocedural findings
	// (caller first, sink last); empty for local findings.
	Chain []string
}

// String formats the finding the way the driver prints it.
func (f Finding) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", f.Pos.Filename, f.Pos.Line, f.Pos.Column, f.Analyzer, f.Message)
}
