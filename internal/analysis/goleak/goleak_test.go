package goleak_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/goleak"
)

func TestGoleak(t *testing.T) {
	analysistest.Run(t, "testdata/src/workers", goleak.Analyzer, "example.com/internal/sim/workers")
}

// TestUnreasonedAllowRejected pins the suppression contract: an allow
// without a reason is itself a finding and suppresses nothing.
func TestUnreasonedAllowRejected(t *testing.T) {
	dir := t.TempDir()
	src := `package workers

func Spin(beat chan int) {
	//lint:allow goleak
	go func() {
		for {
			beat <- 1
		}
	}()
}
`
	if err := os.WriteFile(filepath.Join(dir, "workers.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := analysistest.LoadPackage(t, dir, "example.com/internal/sim/workers")
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{goleak.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawFinding bool
	for _, f := range findings {
		if f.Analyzer == "allow" && strings.Contains(f.Message, "no reason") {
			sawMalformed = true
		}
		if f.Analyzer == "goleak" {
			sawFinding = true
		}
	}
	if !sawMalformed {
		t.Errorf("unreasoned //lint:allow not reported as malformed; findings: %v", findings)
	}
	if !sawFinding {
		t.Errorf("unreasoned //lint:allow suppressed the goleak finding; findings: %v", findings)
	}
}
