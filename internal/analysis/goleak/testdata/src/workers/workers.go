// Package workers exercises the goleak rules: unbounded goroutine loops
// with and without cancellation points, in literals and named functions.
package workers

import "context"

func process(int) {}

func RangeOverChannel(jobs chan int) {
	go func() {
		for v := range jobs {
			process(v)
		}
	}()
}

func CtxSelect(ctx context.Context, jobs chan int) {
	go func() {
		for {
			select {
			case v := <-jobs:
				process(v)
			case <-ctx.Done():
				return
			}
		}
	}()
}

func DoneChannel(jobs chan int, done chan struct{}) {
	go func() {
		for {
			select {
			case v := <-jobs:
				process(v)
			case <-done:
				return
			}
		}
	}()
}

func ErrPoll(ctx context.Context, jobs chan int) {
	go func() {
		for {
			if ctx.Err() != nil {
				return
			}
			process(<-jobs)
		}
	}()
}

func BoundedWork(n int) {
	go func() {
		for i := 0; i < n; i++ {
			process(i)
		}
	}()
}

func StraightLine(v int) {
	go process(v)
}

func drainForever(jobs chan int) {
	for {
		process(<-jobs)
	}
}

// NamedLeak resolves the goroutine body through the call graph.
func NamedLeak(jobs chan int) {
	go drainForever(jobs) // want "unbounded loop"
}

func Heartbeat(beat chan int) {
	//lint:allow goleak heartbeat runs for the process lifetime by design
	go func() {
		for {
			beat <- 1
		}
	}()
}
