package workers

import "context"

// Leak seeds the regression the analyzer must catch: PR 4's worker pools
// range over the jobs channel so closing it releases every worker. This
// revert swaps the range for a bare receive inside for{}, so the goroutine
// survives both channel close and context cancellation.
func Leak(ctx context.Context, jobs chan int) {
	go func() { // want "unbounded loop"
		for {
			v := <-jobs
			process(v)
		}
	}()
}
