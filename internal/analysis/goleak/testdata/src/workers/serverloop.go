// serverloop.go exercises goleak on the shapes a TCP server grows: an
// accept loop spawning per-session goroutines, session read loops, and a
// watcher. Seeded from internal/server's accept/session/watcher structure
// so the analyzer keeps passing judgment on the loops we actually ship.
package workers

import "context"

// listener and conn stand in for net.Listener / net.Conn; goleak only
// cares about the loop structure, not the I/O.
type listener interface {
	Accept() (conn, error)
}

type conn interface {
	Read([]byte) (int, error)
	Close() error
}

func handle(conn) {}

// AcceptLoop is the server's shape: the accept loop re-checks ctx at every
// iteration, and each session goroutine does the same. Both pass.
func AcceptLoop(ctx context.Context, ln listener) {
	go func() {
		for ctx.Err() == nil {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go func() {
				for ctx.Err() == nil {
					buf := make([]byte, 1)
					if _, err := c.Read(buf); err != nil {
						return
					}
				}
			}()
		}
	}()
}

// AcceptLoopLeaks is the same loop with the cancellation check dropped:
// nothing ever stops it, so a hung Accept pins the goroutine forever.
func AcceptLoopLeaks(ln listener) {
	go func() { // want "unbounded loop"
		for {
			c, err := ln.Accept()
			if err != nil {
				continue
			}
			handle(c)
		}
	}()
}

// SessionWatcher drains a done channel per session — the range makes the
// loop bounded by channel closure.
func SessionWatcher(sessions chan conn) {
	go func() {
		for c := range sessions {
			handle(c)
		}
	}()
}
