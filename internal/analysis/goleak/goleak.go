// Package goleak requires every goroutine the module starts to be
// cancelable: a `go` statement whose body spins in an unbounded loop with
// no way to observe shutdown outlives the run that spawned it, holds its
// resources forever, and — under the batch engine's two-stage shutdown —
// turns graceful drain into a hang.
//
// For each `go` statement the analyzer builds the control-flow graph of
// the goroutine's body (a function literal in place, or the declaration a
// named call resolves to through the module call graph) and demands that
// every `for {}` loop can end: by ranging over a channel a close() ends,
// by checking ctx.Err()/ctx.Done(), or by receiving on a channel from a
// block that escapes the loop (the done-channel idiom). Bounded loops and
// straight-line goroutines pass untouched; goroutines whose target cannot
// be resolved statically are skipped rather than guessed at.
package goleak

import (
	"go/ast"
	"go/types"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/callgraph"
	"odbgc/internal/analysis/cfg"
)

// Analyzer is the goleak check.
var Analyzer = &analysis.Analyzer{
	Name: "goleak",
	Doc:  "require every go statement's goroutine to reach a cancellation point",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			g, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			body, info := goroutineBody(pass, g)
			if body == nil {
				return true
			}
			flow := cfg.New(body)
			for _, l := range flow.Loops {
				if l.Unbounded && !flow.LoopCancelable(l, info) {
					pos := pass.Fset.Position(l.Stmt.Pos())
					pass.Reportf(g.Pos(),
						"goroutine spins in an unbounded loop (%s line %d) with no cancellation point; range over a closable channel or select on ctx.Done()",
						pos.Filename, pos.Line)
				}
			}
			return true
		})
	}
	return nil
}

// goroutineBody resolves the body the go statement will run: the literal's
// own body, or the declaration behind a named call when the module call
// graph can see it. The types.Info returned belongs to the package that
// declared the body, which may differ from the pass's package.
func goroutineBody(pass *analysis.Pass, g *ast.GoStmt) (*ast.BlockStmt, *types.Info) {
	if lit, ok := g.Call.Fun.(*ast.FuncLit); ok {
		return lit.Body, pass.TypesInfo
	}
	callee := callgraph.Callee(pass.TypesInfo, g.Call)
	if callee == nil {
		return nil, nil
	}
	node := callgraph.For(pass.Module).Lookup(callee)
	if node == nil || node.Decl == nil || node.Decl.Body == nil {
		return nil, nil
	}
	return node.Decl.Body, node.Pkg.Info
}
