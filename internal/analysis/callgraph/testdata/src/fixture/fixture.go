// Package fixture is a small call web for the callgraph tests: fan-out,
// shared callees, a method call, a closure, a cycle, and a dynamic call
// that must produce no edge.
package fixture

func A() {
	B()
	C()
}

func B() {
	C()
}

func C() {}

// D reaches everything through A.
func D() {
	A()
}

// Closure calls helper from inside a function literal; the edge belongs to
// Closure.
func Closure() {
	f := func() {
		helper()
	}
	f()
}

func helper() {}

type T struct{}

func (T) M() {
	helper()
}

// CallsMethod resolves a concrete method call.
func CallsMethod() {
	T{}.M()
}

// Dynamic calls through a function value: no static edge.
func Dynamic(f func()) {
	f()
}

// Cycle1 and Cycle2 call each other.
func Cycle1() {
	Cycle2()
}

func Cycle2() {
	Cycle1()
}
