package callgraph_test

import (
	"go/types"
	"sort"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/callgraph"
)

func buildFixture(t *testing.T) (*callgraph.Graph, *analysis.Package) {
	t.Helper()
	pkg := analysistest.LoadPackage(t, "testdata/src/fixture", "example.com/fixture")
	g := callgraph.For(analysis.NewModule([]*analysis.Package{pkg}))
	return g, pkg
}

// fn looks a function or method up by name ("A", "T.M") in the fixture.
func fn(t *testing.T, pkg *analysis.Package, name string) *types.Func {
	t.Helper()
	for _, n := range []string{name} {
		if obj := pkg.Types.Scope().Lookup(n); obj != nil {
			if f, ok := obj.(*types.Func); ok {
				return f
			}
		}
	}
	// Method form: Recv.Name.
	for i := 0; i < len(name); i++ {
		if name[i] != '.' {
			continue
		}
		recv, meth := name[:i], name[i+1:]
		obj := pkg.Types.Scope().Lookup(recv)
		named, ok := obj.Type().(*types.Named)
		if !ok {
			break
		}
		for j := 0; j < named.NumMethods(); j++ {
			if named.Method(j).Name() == meth {
				return named.Method(j)
			}
		}
	}
	t.Fatalf("fixture has no function %q", name)
	return nil
}

func calleeNames(g *callgraph.Graph, f *types.Func) []string {
	var out []string
	for _, n := range g.TransitiveCallees(f) {
		out = append(out, n.Func.Name())
	}
	sort.Strings(out)
	return out
}

func TestTransitiveCallees(t *testing.T) {
	g, pkg := buildFixture(t)
	tests := []struct {
		fn   string
		want []string
	}{
		{"A", []string{"B", "C"}},
		{"B", []string{"C"}},
		{"C", nil},
		{"D", []string{"A", "B", "C"}},
		{"Closure", []string{"helper"}},
		{"CallsMethod", []string{"M", "helper"}},
		{"Dynamic", nil},
		{"Cycle1", []string{"Cycle1", "Cycle2"}},
	}
	for _, tt := range tests {
		t.Run(tt.fn, func(t *testing.T) {
			got := calleeNames(g, fn(t, pkg, tt.fn))
			if len(got) != len(tt.want) {
				t.Fatalf("TransitiveCallees(%s) = %v, want %v", tt.fn, got, tt.want)
			}
			for i := range got {
				if got[i] != tt.want[i] {
					t.Fatalf("TransitiveCallees(%s) = %v, want %v", tt.fn, got, tt.want)
				}
			}
		})
	}
}

func TestDirectEdgesAreSourceOrdered(t *testing.T) {
	g, pkg := buildFixture(t)
	n := g.Lookup(fn(t, pkg, "A"))
	if n == nil {
		t.Fatal("no node for A")
	}
	var got []string
	for _, e := range n.Out {
		got = append(got, e.Callee.Func.Name())
	}
	want := []string{"B", "C"}
	if len(got) != len(want) {
		t.Fatalf("A's edges = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("A's edges = %v, want %v", got, want)
		}
	}
}

func TestPathTo(t *testing.T) {
	g, pkg := buildFixture(t)
	isC := func(n *callgraph.Node) bool { return n.Func.Name() == "C" }

	path := g.PathTo(fn(t, pkg, "D"), isC)
	if path == nil {
		t.Fatal("no path from D to C")
	}
	// Shortest chain is D -> A -> C (A calls C directly).
	var names []string
	for _, e := range path {
		names = append(names, e.Callee.Func.Name())
	}
	if len(names) != 2 || names[0] != "A" || names[1] != "C" {
		t.Fatalf("path D=>C = %v, want [A C]", names)
	}
	for _, e := range path {
		if !e.Pos().IsValid() {
			t.Error("edge has no valid source position")
		}
	}

	if p := g.PathTo(fn(t, pkg, "Dynamic"), isC); p != nil {
		t.Fatalf("Dynamic should reach nothing, got path of %d edges", len(p))
	}
}

func TestMethodResolution(t *testing.T) {
	g, pkg := buildFixture(t)
	m := fn(t, pkg, "T.M")
	got := calleeNames(g, m)
	if len(got) != 1 || got[0] != "helper" {
		t.Fatalf("T.M callees = %v, want [helper]", got)
	}
}
