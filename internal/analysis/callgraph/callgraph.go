// Package callgraph builds a static call graph over the packages of one
// analysis run, resolved through go/types: an edge exists from function F
// to function G when F's body (including its function literals) contains a
// call that the type checker resolves to G. Dynamic calls — through
// function values, interface methods without a syntactic receiver type —
// have no edge; the graph under-approximates, which is the right direction
// for analyzers that report findings (no false positives from impossible
// chains).
//
// Calls inside a function literal are attributed to the enclosing declared
// function: for "does F transitively reach X" questions a closure's body is
// work F can trigger, no matter when the closure actually runs.
//
// The module's packages are walked in load order and each body in source
// order, so node and edge order — and therefore every query answer — is
// deterministic across runs.
package callgraph

import (
	"go/ast"
	"go/token"
	"go/types"

	"odbgc/internal/analysis"
)

// Graph is the static call graph of one module load.
type Graph struct {
	nodes map[*types.Func]*Node
	// order lists nodes with bodies in deterministic (package, source)
	// order.
	order []*Node
}

// Node is one function: declared in the module (Decl non-nil) or an
// external callee we only see as a target (Decl nil, no out-edges).
type Node struct {
	Func *types.Func
	// Decl is the function's syntax when it was declared in an analyzed
	// package; nil for callees outside the loaded set (stdlib functions,
	// interface methods).
	Decl *ast.FuncDecl
	// Pkg is the analyzed package that declared the function, nil when
	// Decl is nil.
	Pkg *analysis.Package
	// Out lists the node's call edges in source order.
	Out []*Edge
}

// Edge is one resolved call site.
type Edge struct {
	Caller, Callee *Node
	// Site is the call expression, in the caller's body.
	Site *ast.CallExpr
}

// Pos returns the call site's position token.
func (e *Edge) Pos() token.Pos { return e.Site.Pos() }

// memoKey namespaces the graph in analysis.Module.Memo.
const memoKey = "callgraph"

// For returns the module's call graph, building it on first use and
// sharing it across analyzers through the module's memo.
func For(mod *analysis.Module) *Graph {
	v, _ := mod.Memo(memoKey, func() (any, error) {
		return build(mod.Packages), nil
	})
	return v.(*Graph)
}

func build(pkgs []*analysis.Package) *Graph {
	g := &Graph{nodes: make(map[*types.Func]*Node)}
	for _, pkg := range pkgs {
		for _, file := range pkg.Files {
			for _, decl := range file.Decls {
				fd, ok := decl.(*ast.FuncDecl)
				if !ok {
					continue
				}
				fn, ok := pkg.Info.Defs[fd.Name].(*types.Func)
				if !ok {
					continue
				}
				n := g.intern(fn)
				n.Decl, n.Pkg = fd, pkg
				g.order = append(g.order, n)
			}
		}
	}
	for _, n := range g.order {
		caller := n
		ast.Inspect(n.Decl, func(node ast.Node) bool {
			call, ok := node.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := Callee(caller.Pkg.Info, call)
			if callee == nil {
				return true
			}
			target := g.intern(callee)
			caller.Out = append(caller.Out, &Edge{Caller: caller, Callee: target, Site: call})
			return true
		})
	}
	return g
}

func (g *Graph) intern(fn *types.Func) *Node {
	if n, ok := g.nodes[fn]; ok {
		return n
	}
	n := &Node{Func: fn}
	g.nodes[fn] = n
	return n
}

// Callee resolves a call expression to the *types.Func it statically
// invokes: a plain function, a method (through a concrete or interface
// receiver), or a qualified pkg.Func. Calls through function-typed values,
// type conversions, and builtins resolve to nil.
func Callee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if fn, ok := sel.Obj().(*types.Func); ok {
				return fn
			}
			return nil
		}
		// Qualified identifier: pkg.Func.
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// Lookup returns the node for fn, or nil when fn never appears in the
// graph (neither declared nor called).
func (g *Graph) Lookup(fn *types.Func) *Node { return g.nodes[fn] }

// Nodes lists every declared function's node in deterministic order.
func (g *Graph) Nodes() []*Node { return g.order }

// TransitiveCallees returns every function reachable from fn through call
// edges (fn itself excluded unless it is in a call cycle), in deterministic
// BFS order.
func (g *Graph) TransitiveCallees(fn *types.Func) []*Node {
	start := g.nodes[fn]
	if start == nil {
		return nil
	}
	var out []*Node
	seen := map[*Node]bool{}
	work := []*Node{start}
	for len(work) > 0 {
		n := work[0]
		work = work[1:]
		for _, e := range n.Out {
			if !seen[e.Callee] {
				seen[e.Callee] = true
				out = append(out, e.Callee)
				work = append(work, e.Callee)
			}
		}
	}
	return out
}

// PathTo returns a shortest chain of edges from fn to some node satisfying
// pred, or nil when none is reachable. Ties break toward earlier call
// sites, so the answer is deterministic and points at real source.
func (g *Graph) PathTo(fn *types.Func, pred func(*Node) bool) []*Edge {
	start := g.nodes[fn]
	if start == nil {
		return nil
	}
	type visit struct {
		node *Node
		via  *Edge
		prev *visit
	}
	seen := map[*Node]bool{start: true}
	queue := []*visit{{node: start}}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, e := range v.node.Out {
			if seen[e.Callee] {
				continue
			}
			next := &visit{node: e.Callee, via: e, prev: v}
			if pred(e.Callee) {
				var path []*Edge
				for w := next; w.via != nil; w = w.prev {
					path = append([]*Edge{w.via}, path...)
				}
				return path
			}
			seen[e.Callee] = true
			queue = append(queue, next)
		}
	}
	return nil
}
