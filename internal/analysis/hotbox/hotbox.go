// Package hotbox reports interface-conversion allocations (boxing) on hot
// paths: a concrete value passed to an interface parameter, converted to an
// interface type, or assigned to an interface variable inside a hot loop —
// per-event observer dispatch and fmt-style variadic boxing being the
// motivating cases. A syntactic conversion alone is not enough: the site is
// reported only when the compiler's escape analysis confirms a heap
// allocation on the line, so conversions the backend optimizes away (nil,
// zero-size values, stack-proved temporaries) stay silent.
package hotbox

import (
	"go/ast"
	"go/types"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/cfg"
	"odbgc/internal/analysis/escape"
	"odbgc/internal/analysis/hotpath"
)

// Analyzer is the hot-path interface-boxing check.
var Analyzer = &analysis.Analyzer{
	Name: "hotbox",
	Doc:  "forbid allocating interface conversions on hot loop paths",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	facts := escape.ForPass(pass)
	if !facts.Available {
		return nil
	}
	region := hotpath.For(pass.Module)
	for _, hd := range hotpath.HotDecls(pass) {
		var spans []ast.Node
		if region.LoopHot(hd.Func) {
			spans = []ast.Node{hd.Decl}
		} else {
			for _, loop := range cfg.New(hd.Decl.Body).Loops {
				spans = append(spans, loop.Stmt)
			}
		}
		cold := hotpath.ColdSpans(pass.TypesInfo, hd.Decl)
		seen := make(map[siteKey]bool)
		for _, span := range spans {
			ast.Inspect(span, func(n ast.Node) bool {
				expr, iface, ok := boxing(pass.TypesInfo, n)
				if !ok {
					return true
				}
				// Boxing on an error path costs nothing per iteration.
				if hotpath.InSpans(cold, expr.Pos()) {
					return true
				}
				pos := pass.Fset.Position(expr.Pos())
				if _, confirmed := facts.HeapEscapeAt(pos); !confirmed {
					return true
				}
				key := siteKey{pos.Filename, pos.Line, pos.Column}
				if seen[key] {
					return true
				}
				seen[key] = true
				pass.Reportf(expr.Pos(),
					"interface conversion allocates on hot path: %s boxed as %s (hot via %s); pass the concrete type or add //lint:allow hotbox <reason>",
					types.TypeString(pass.TypesInfo.TypeOf(expr), types.RelativeTo(pass.Pkg)),
					types.TypeString(iface, types.RelativeTo(pass.Pkg)),
					region.Chain(hd.Func))
				return true
			})
		}
	}
	return nil
}

type siteKey struct {
	file      string
	line, col int
}

// boxing reports whether node converts a concrete value to an interface:
// the boxed expression and the target interface type. Handled forms are
// call arguments (fixed and variadic interface parameters), explicit
// conversions I(x), and assignments/definitions into interface-typed
// variables.
func boxing(info *types.Info, node ast.Node) (ast.Expr, types.Type, bool) {
	switch n := node.(type) {
	case *ast.CallExpr:
		if tv, ok := info.Types[n.Fun]; ok && tv.IsType() {
			// Explicit conversion I(x).
			if types.IsInterface(tv.Type) && len(n.Args) == 1 && boxable(info, n.Args[0]) {
				return n.Args[0], tv.Type, true
			}
			return nil, nil, false
		}
		sig, ok := signatureOf(info, n.Fun)
		if !ok {
			return nil, nil, false
		}
		for i, arg := range n.Args {
			pt, ok := paramType(sig, i, n.Ellipsis.IsValid())
			if !ok || !types.IsInterface(pt) || !boxable(info, arg) {
				continue
			}
			return arg, pt, true
		}
	case *ast.AssignStmt:
		for i, rhs := range n.Rhs {
			if i >= len(n.Lhs) || len(n.Rhs) != len(n.Lhs) {
				break
			}
			lt := info.TypeOf(n.Lhs[i])
			if lt != nil && types.IsInterface(lt) && boxable(info, rhs) {
				return rhs, lt, true
			}
		}
	}
	return nil, nil, false
}

// signatureOf resolves a call's function expression to its signature;
// builtins and type expressions have none.
func signatureOf(info *types.Info, fun ast.Expr) (*types.Signature, bool) {
	t := info.TypeOf(fun)
	if t == nil {
		return nil, false
	}
	sig, ok := t.Underlying().(*types.Signature)
	return sig, ok
}

// paramType returns the declared type of argument i; for a variadic
// parameter the element type, unless the caller spreads with `...` (then
// the slice is passed through and nothing is boxed).
func paramType(sig *types.Signature, i int, spread bool) (types.Type, bool) {
	params := sig.Params()
	if sig.Variadic() && i >= params.Len()-1 {
		if spread {
			return nil, false
		}
		sl, ok := params.At(params.Len() - 1).Type().(*types.Slice)
		if !ok {
			return nil, false
		}
		return sl.Elem(), true
	}
	if i < params.Len() {
		return params.At(i).Type(), true
	}
	return nil, false
}

// boxable reports whether expr is a concrete (non-interface, non-nil)
// value — the only kind whose interface conversion can allocate.
func boxable(info *types.Info, expr ast.Expr) bool {
	t := info.TypeOf(expr)
	if t == nil || types.IsInterface(t) {
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UntypedNil {
		return false
	}
	return true
}
