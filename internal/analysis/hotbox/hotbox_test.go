package hotbox

import (
	"path/filepath"
	"testing"

	"odbgc/internal/analysis/analysistest"
)

func TestHotbox(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "boxpkg"), Analyzer, "example.com/boxpkg")
}
