// Package boxpkg is the hotbox fixture: interface conversions inside the
// hot loop allocate (confirmed by the compiler) and are findings; the
// concrete-typed call and the conversions outside the hot region are not.
package boxpkg

import "testing"

type metric struct {
	v int64
	s string
}

var out []any
var sum int64
var anySink any

func BenchmarkDispatch(b *testing.B) {
	for i := 0; i < b.N; i++ {
		dispatch(64)
	}
}

func dispatch(n int) {
	for i := 0; i < n; i++ {
		record(metric{v: int64(i)}) // want "interface conversion allocates on hot path"
	}
	for i := 0; i < n; i++ {
		keep(metric{v: int64(i)}) // concrete parameter: no boxing, no finding
	}
	for i := 0; i < n; i++ {
		anySink = metric{v: int64(i)} // want "interface conversion allocates on hot path"
	}
	for i := 0; i < n; i++ {
		record(metric{v: 7}) //lint:allow hotbox fixture demonstrates a reasoned suppression
	}
	record(metric{v: int64(n)}) // outside any loop: no finding
}

func record(v any) { out = append(out, v) }

func keep(m metric) { sum += m.v }

// cold boxes in a loop but is unreachable from the benchmark: no finding.
func cold(n int) {
	for i := 0; i < n; i++ {
		record(metric{v: int64(i)})
	}
}

var _ = cold
