package analysis

import "strings"

// ConcurrentDirs lists the module-relative directories whose packages are
// mutex- and goroutine-heavy: the live serving engine, the shared buffer
// pool and WAL, and the observability/flight-recorder stack. The
// concurrency-safety analyzers (lockcheck's blocking-while-held rule,
// guarded's field inference, lifecycle's protocol specs) all gate on this
// one list so their notion of "concurrent code" cannot drift apart.
var ConcurrentDirs = []string{
	"internal/server",
	"internal/storage",
	"internal/obs",
}

// PathCovered reports whether pkgPath is one of the module-relative
// directories in dirs or a subpackage of one. A directory matches when it
// appears as a complete path-segment run inside the import path, so
// "internal/sim" covers "odbgc/internal/sim" and "odbgc/internal/sim/replay"
// but not "odbgc/internal/simulator". The analyzers that gate on package
// location (detrand, detrand-transitive, ctxflow) all share this predicate
// so their notions of coverage cannot drift apart.
func PathCovered(pkgPath string, dirs []string) bool {
	for _, d := range dirs {
		if pkgPath == d ||
			strings.HasSuffix(pkgPath, "/"+d) ||
			strings.HasPrefix(pkgPath, d+"/") ||
			strings.Contains(pkgPath, "/"+d+"/") {
			return true
		}
	}
	return false
}
