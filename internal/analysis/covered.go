package analysis

import "strings"

// PathCovered reports whether pkgPath is one of the module-relative
// directories in dirs or a subpackage of one. A directory matches when it
// appears as a complete path-segment run inside the import path, so
// "internal/sim" covers "odbgc/internal/sim" and "odbgc/internal/sim/replay"
// but not "odbgc/internal/simulator". The analyzers that gate on package
// location (detrand, detrand-transitive, ctxflow) all share this predicate
// so their notions of coverage cannot drift apart.
func PathCovered(pkgPath string, dirs []string) bool {
	for _, d := range dirs {
		if pkgPath == d ||
			strings.HasSuffix(pkgPath, "/"+d) ||
			strings.HasPrefix(pkgPath, d+"/") ||
			strings.Contains(pkgPath, "/"+d+"/") {
			return true
		}
	}
	return false
}
