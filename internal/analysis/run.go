package analysis

import (
	"sort"
)

// RunPackage applies the analyzers to one loaded package, filters the
// results through the package's //lint:allow comments, and returns the
// surviving findings sorted by position. Malformed allow comments are
// themselves findings, so a suppression can never silently rot. The package
// is analyzed as a one-package module; use RunPackages for whole-module
// dataflow.
func RunPackage(pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	return runPackage(NewModule([]*Package{pkg}), pkg, analyzers)
}

// KnownAllowNames extends the analyzer-name set //lint:allow directives may
// reference. A driver running a filtered subset of a larger suite (odbglint
// -only) registers the full suite here so a suppression for an unselected
// analyzer is not misreported as unknown.
var KnownAllowNames []string

func runPackage(mod *Module, pkg *Package, analyzers []*Analyzer) ([]Finding, error) {
	known := make(map[string]bool, len(analyzers)+len(KnownAllowNames))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	for _, name := range KnownAllowNames {
		known[name] = true
	}
	fset := pkg.Fset
	sup := CollectSuppressions(fset, pkg.Files, known)

	var out []Finding
	out = append(out, sup.Malformed()...)
	for _, a := range analyzers {
		var diags []Diagnostic
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			Module:    mod,
			Report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		if err := a.Run(pass); err != nil {
			return nil, err
		}
		for _, d := range diags {
			pos := fset.Position(d.Pos)
			if sup.Allowed(a.Name, pos) {
				continue
			}
			out = append(out, Finding{Pos: pos, Analyzer: a.Name, Message: d.Message, Chain: d.Chain})
		}
	}
	sortFindings(out)
	return out, nil
}

// RunPackages applies the analyzers to every package and concatenates the
// findings in deterministic order. All packages share one Module, so the
// interprocedural analyzers (errflow's wrap discipline, detrand-transitive's
// chain search) see the complete call graph of the run.
func RunPackages(pkgs []*Package, analyzers []*Analyzer) ([]Finding, error) {
	return RunModule(NewModule(pkgs), analyzers)
}

// RunModule is RunPackages over a caller-built module — the driver uses it
// to prewarm module-wide artifacts (escape fact tables) into the same memo
// the analyzers will read.
func RunModule(mod *Module, analyzers []*Analyzer) ([]Finding, error) {
	var out []Finding
	for _, pkg := range mod.Packages {
		fs, err := runPackage(mod, pkg, analyzers)
		if err != nil {
			return nil, err
		}
		out = append(out, fs...)
	}
	sortFindings(out)
	return out, nil
}

func sortFindings(fs []Finding) {
	sort.Slice(fs, func(i, j int) bool {
		a, b := fs[i], fs[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}
