// Package prepkg is the prealloc fixture: growing an uncapacitated slice
// inside a hot range loop over a measurable source is a finding; reserving
// capacity, ranging over an unmeasurable source, or growing outside the hot
// region is not.
package prepkg

import "testing"

var keep []int

func BenchmarkCollect(b *testing.B) {
	src := make([]int, 100)
	for i := 0; i < b.N; i++ {
		collect(src)
	}
}

func collect(src []int) {
	var out []int
	for _, v := range src {
		out = append(out, v*2) // want "append grows out per iteration of a hot range loop"
	}
	keep = out

	sized := make([]int, 0, len(src))
	for _, v := range src {
		sized = append(sized, v) // capacity reserved up front: no finding
	}
	keep = sized

	grown := []int{}
	for _, v := range src {
		grown = append(grown, v) //lint:allow prealloc fixture demonstrates a reasoned suppression
	}
	keep = grown

	var tail []int
	for len(tail) < len(src) { // not a range loop: final length not derivable here
		tail = append(tail, 1)
	}
	keep = tail

	var inner []int
	for _, v := range produce() { // call result: len unavailable without evaluation
		inner = append(inner, v)
	}
	keep = inner
}

func produce() []int { return keep }

// cold grows in a range loop but is unreachable from the benchmark.
func cold(src []int) {
	var out []int
	for _, v := range src {
		out = append(out, v)
	}
	keep = out
}

var _ = cold
