// Package prealloc reports append-growth in hot range loops when the final
// length is derivable in scope: `for _, x := range src { out = append(out, f(x)) }`
// grows out through O(log n) reallocations and copies, all avoidable with
// `out := make([]T, 0, len(src))`. Only clear-cut cases are reported —
// the destination must be declared in the same function, visibly without a
// capacity (plain `var`, empty literal, or two-argument make), and the
// range source must be a length-measurable expression. Anything murkier
// (parameters, package vars, conditional appends sizing differently) is
// left alone.
package prealloc

import (
	"go/ast"
	"go/types"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/cfg"
	"odbgc/internal/analysis/hotpath"
)

// Analyzer is the hot-loop append-growth check.
var Analyzer = &analysis.Analyzer{
	Name: "prealloc",
	Doc:  "require capacity hints for append-growth in hot range loops",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	region := hotpath.For(pass.Module)
	for _, hd := range hotpath.HotDecls(pass) {
		for _, loop := range cfg.New(hd.Decl.Body).Loops {
			rng, ok := loop.Stmt.(*ast.RangeStmt)
			if !ok || !measurable(pass.TypesInfo, rng.X) {
				continue
			}
			ast.Inspect(rng.Body, func(n ast.Node) bool {
				if _, ok := n.(*ast.FuncLit); ok {
					return false
				}
				assign, ok := n.(*ast.AssignStmt)
				if !ok {
					return true
				}
				dst, ok := appendGrowth(pass.TypesInfo, assign)
				if !ok {
					return true
				}
				obj, ok := pass.TypesInfo.Uses[dst].(*types.Var)
				if !ok {
					return true
				}
				// The range source itself is never a candidate: appending
				// to what you range over is a different bug.
				if src, ok := ast.Unparen(rng.X).(*ast.Ident); ok && pass.TypesInfo.Uses[src] == obj {
					return true
				}
				decl, ok := findDecl(hd.Decl, pass.TypesInfo, obj)
				if !ok || decl.Pos() >= rng.Pos() || hasCapacity(decl) {
					return true
				}
				pass.Reportf(assign.Pos(),
					"append grows %s per iteration of a hot range loop (hot via %s); declare it with make(%s, 0, len(%s)) or add //lint:allow prealloc <reason>",
					dst.Name, region.Chain(hd.Func),
					types.TypeString(obj.Type(), types.RelativeTo(pass.Pkg)),
					types.ExprString(rng.X))
				return true
			})
		}
	}
	return nil
}

// appendGrowth matches `dst = append(dst, ...)` with a plain identifier
// destination and returns it.
func appendGrowth(info *types.Info, assign *ast.AssignStmt) (*ast.Ident, bool) {
	if len(assign.Lhs) != 1 || len(assign.Rhs) != 1 {
		return nil, false
	}
	lhs, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return nil, false
	}
	call, ok := assign.Rhs[0].(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	fun, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil, false
	}
	if b, ok := info.Uses[fun].(*types.Builtin); !ok || b.Name() != "append" {
		return nil, false
	}
	arg0, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok || info.Uses[arg0] != info.Uses[lhs] {
		return nil, false
	}
	return lhs, true
}

// measurable reports whether len(expr) is available in scope: a plain
// identifier or field selection of a slice, array, map, string, or channel.
func measurable(info *types.Info, expr ast.Expr) bool {
	switch ast.Unparen(expr).(type) {
	case *ast.Ident, *ast.SelectorExpr:
	default:
		return false
	}
	t := info.TypeOf(expr)
	if t == nil {
		return false
	}
	switch u := t.Underlying().(type) {
	case *types.Slice, *types.Array, *types.Map:
		return true
	case *types.Pointer:
		_, ok := u.Elem().Underlying().(*types.Array)
		return ok
	case *types.Basic:
		return u.Info()&types.IsString != 0
	}
	return false
}

// findDecl locates obj's declaration inside fn: the ValueSpec of a var
// declaration or the := assignment that defines it.
func findDecl(fn *ast.FuncDecl, info *types.Info, obj *types.Var) (ast.Node, bool) {
	var decl ast.Node
	ast.Inspect(fn, func(n ast.Node) bool {
		if decl != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.ValueSpec:
			for _, name := range n.Names {
				if info.Defs[name] == obj {
					decl = n
					return false
				}
			}
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok && info.Defs[id] == obj {
					decl = n
					return false
				}
			}
		}
		return true
	})
	return decl, decl != nil
}

// hasCapacity reports whether the declaration visibly reserves capacity: a
// three-argument make, or initialization from a non-empty composite
// literal or another expression we cannot see through (a call result, a
// slice of something) — only the plainly capacity-free forms return false.
func hasCapacity(decl ast.Node) bool {
	var values []ast.Expr
	switch d := decl.(type) {
	case *ast.ValueSpec:
		values = d.Values
	case *ast.AssignStmt:
		values = d.Rhs
	}
	if len(values) == 0 {
		return false // var s []T
	}
	for _, v := range values {
		switch v := ast.Unparen(v).(type) {
		case *ast.CompositeLit:
			if len(v.Elts) > 0 {
				return true
			}
		case *ast.CallExpr:
			fun, ok := ast.Unparen(v.Fun).(*ast.Ident)
			if ok && fun.Name == "make" {
				if len(v.Args) >= 3 {
					return true
				}
				continue // make([]T, 0): length only, still grows
			}
			return true // unknown call result: assume sized
		case *ast.Ident:
			if v.Name == "nil" {
				continue
			}
			return true
		default:
			return true
		}
	}
	return false
}
