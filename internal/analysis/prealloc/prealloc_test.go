package prealloc

import (
	"path/filepath"
	"testing"

	"odbgc/internal/analysis/analysistest"
)

func TestPrealloc(t *testing.T) {
	analysistest.Run(t, filepath.Join("testdata", "src", "prepkg"), Analyzer, "example.com/prepkg")
}
