package escape

import (
	"go/token"
	"path/filepath"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
)

const canned = `# example/pkg
pkg.go:10:6: cannot inline Grow: function too complex: cost 154 exceeds budget 80
pkg.go:12:13: make([]int, n) escapes to heap:
  flow: {heap} = &{storage for make([]int, n)}:
    from make([]int, n) (spill) at pkg.go:12:13
pkg.go:15:2: moved to heap: buf
pkg.go:20:10: &Event{...} does not escape
pkg.go:22:14: ... argument does not escape
pkg.go:25:9: inlining call to helper
pkg.go:27:6: can inline helper with cost 3 as: func() int { return 1 }
not a position line
pkg.go:bad:1: skipped
`

func TestParse(t *testing.T) {
	f := Parse(canned, "/mod/example")
	if !f.Available {
		t.Fatal("parsed table not Available")
	}
	if got, want := len(f.All()), 7; got != want {
		t.Fatalf("parsed %d facts, want %d: %+v", got, want, f.All())
	}
	file := canonFile("/mod/example/pkg.go")

	kindAt := func(line int) []Kind {
		var ks []Kind
		for _, fact := range f.AtLine(token.Position{Filename: file, Line: line}) {
			ks = append(ks, fact.Kind)
		}
		return ks
	}
	cases := []struct {
		line int
		want Kind
	}{
		{10, CannotInline},
		{12, EscapesToHeap},
		{15, MovedToHeap},
		{20, DoesNotEscape},
		{22, DoesNotEscape},
		{25, InliningCall},
		{27, CanInline},
	}
	for _, c := range cases {
		ks := kindAt(c.line)
		if len(ks) != 1 || ks[0] != c.want {
			t.Errorf("line %d: got kinds %v, want [%v]", c.line, ks, c.want)
		}
	}

	// The flow-explanation continuation lines must not become facts.
	if got := f.AtLine(token.Position{Filename: file, Line: 13}); len(got) != 0 {
		t.Errorf("flow continuation line produced facts: %+v", got)
	}

	if _, ok := f.HeapEscapeAt(token.Position{Filename: file, Line: 12}); !ok {
		t.Error("no heap escape reported at line 12")
	}
	if _, ok := f.HeapEscapeAt(token.Position{Filename: file, Line: 20}); ok {
		t.Error("does-not-escape line 20 misreported as heap escape")
	}
	if !f.ProvedStackAt(token.Position{Filename: file, Line: 20}) {
		t.Error("line 20 not proved stack-safe")
	}
	if f.ProvedStackAt(token.Position{Filename: file, Line: 15}) {
		t.Error("moved-to-heap line 15 proved stack-safe")
	}
}

func TestHeapFactsBetween(t *testing.T) {
	f := Parse(canned, "/mod/example")
	fset := token.NewFileSet()
	tf := fset.AddFile(canonFile("/mod/example/pkg.go"), -1, 1000)
	for i := 0; i < 40; i++ {
		tf.AddLine(i * 25)
	}
	pos := func(line, col int) token.Pos { return tf.LineStart(line) + token.Pos(col-1) }

	got := f.HeapFactsBetween(fset, pos(11, 1), pos(16, 1))
	if len(got) != 2 {
		t.Fatalf("span 11-16: got %d heap facts, want 2 (escape + moved): %+v", len(got), got)
	}
	if got := f.HeapFactsBetween(fset, pos(13, 1), pos(14, 1)); len(got) != 0 {
		t.Errorf("empty span returned facts: %+v", got)
	}
	// Column bounds apply on the boundary lines.
	if got := f.HeapFactsBetween(fset, pos(12, 20), pos(16, 1)); len(got) != 1 {
		t.Errorf("column-excluded start still matched: %+v", got)
	}
}

func TestSplitPosLine(t *testing.T) {
	cases := []struct {
		in   string
		file string
		ln   int
		col  int
		msg  string
		ok   bool
	}{
		{"a.go:1:2: moved to heap: x", "a.go", 1, 2, "moved to heap: x", true},
		{"dir/b.go:10:20: x escapes to heap:", "dir/b.go", 10, 20, "x escapes to heap:", true},
		{"no position here", "", 0, 0, "", false},
		{"a.go:xx:2: msg", "", 0, 0, "", false},
		{"a.go:1: msg", "", 0, 0, "", false},
	}
	for _, c := range cases {
		file, ln, col, msg, ok := splitPosLine(c.in)
		if ok != c.ok || file != c.file || ln != c.ln || col != c.col || msg != c.msg {
			t.Errorf("splitPosLine(%q) = %q,%d,%d,%q,%v; want %q,%d,%d,%q,%v",
				c.in, file, ln, col, msg, ok, c.file, c.ln, c.col, c.msg, c.ok)
		}
	}
}

// TestForRealPackage runs the actual compiler over the hotalloc testdata
// fixture and checks that compiler-confirmed facts come back — the
// integration path the driver and the analyzer fixtures rely on.
func TestForRealPackage(t *testing.T) {
	dir := filepath.Join("..", "hotalloc", "testdata", "src", "hotpkg")
	pkg := analysistest.LoadPackage(t, dir, "example.com/hotpkg")
	mod := analysis.NewModule([]*analysis.Package{pkg})
	facts := For(mod, pkg)
	if !facts.Available {
		t.Skip("compiler diagnostics unavailable in this environment")
	}
	heap := 0
	for _, fact := range facts.All() {
		if fact.Kind == EscapesToHeap || fact.Kind == MovedToHeap {
			heap++
		}
	}
	if heap == 0 {
		t.Fatalf("no heap facts for fixture package; got %d facts total", len(facts.All()))
	}
	// Memoization: a second call must return the identical table.
	if again := For(mod, pkg); again != facts {
		t.Error("For rebuilt facts instead of hitting the module memo")
	}
}
