// Package escape turns the Go compiler's own escape-analysis and inlining
// diagnostics (`go build -gcflags=-m=2`) into a typed, position-indexed fact
// table the performance analyzers can query. The compiler is the single
// source of truth for "does this expression allocate on the heap": rather
// than re-deriving escape analysis syntactically (and drifting from the real
// toolchain), the suite runs one ordinary build per package and parses the
// diagnostics the backend already emits.
//
// Facts are memoized per package in the module memo, like the call graph, so
// the four perf analyzers (hotalloc, hotbox, hotdefer, prealloc) and the
// allocation-budget gate share one compiler run per package. Prewarm builds
// the whole module's tables with bounded parallelism so a full odbglint run
// pays wall-clock for the slowest package, not the sum.
//
// Fixture packages under testdata compile too (they live inside the module
// and import only the standard library), so analysistest fixtures exercise
// the same compiler-confirmed path as the real driver — no mock facts.
package escape

import (
	"bufio"
	"bytes"
	"fmt"
	"go/token"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"

	"odbgc/internal/analysis"
)

// Kind classifies one compiler diagnostic.
type Kind int

// The diagnostic kinds the parser distinguishes. Anything else the compiler
// prints (leaking params, flow explanations, devirtualization notes) is
// dropped: the analyzers only reason about allocations and inlining.
const (
	// EscapesToHeap marks an expression the compiler allocates on the heap:
	// "x escapes to heap", "&T{...} escapes to heap", "func literal escapes
	// to heap". Interface conversions that allocate surface as this kind at
	// the conversion's position.
	EscapesToHeap Kind = iota
	// MovedToHeap marks a local variable the compiler relocated to the heap
	// ("moved to heap: x"): every execution of its declaration allocates.
	MovedToHeap
	// DoesNotEscape marks an allocation site the compiler proved stack-safe
	// ("&T{...} does not escape", "make([]T, n) does not escape", "...
	// argument does not escape").
	DoesNotEscape
	// CanInline / CannotInline / InliningCall record the inliner's verdicts
	// on declarations and call sites.
	CanInline
	CannotInline
	InliningCall
)

// String names the kind for diagnostics and budget files.
func (k Kind) String() string {
	switch k {
	case EscapesToHeap:
		return "escapes-to-heap"
	case MovedToHeap:
		return "moved-to-heap"
	case DoesNotEscape:
		return "does-not-escape"
	case CanInline:
		return "can-inline"
	case CannotInline:
		return "cannot-inline"
	case InliningCall:
		return "inlining-call"
	}
	return fmt.Sprintf("kind(%d)", int(k))
}

// Fact is one parsed compiler diagnostic.
type Fact struct {
	// File is the absolute path of the source file.
	File string
	Line int
	Col  int
	Kind Kind
	// Text is the compiler's message with the position prefix stripped,
	// e.g. "moved to heap: buf" or "&Event{...} escapes to heap".
	Text string
}

// Facts is the position-indexed fact table of one package.
type Facts struct {
	// Available reports whether the compiler ran successfully; when false
	// (no go toolchain, package failed to build) every query returns empty
	// and the analyzers degrade to silence rather than guessing.
	Available bool
	byLine    map[lineKey][]Fact
	all       []Fact
}

type lineKey struct {
	file string
	line int
}

// All returns every fact in compiler output order.
func (f *Facts) All() []Fact {
	if f == nil {
		return nil
	}
	return f.all
}

// AtLine returns the facts recorded for pos's line, any column. Compiler
// columns point at tokens (the `&` of a literal, the name of a variable)
// that do not always coincide with an AST node's Pos, so line granularity is
// the reliable join key; callers disambiguate by kind and text.
func (f *Facts) AtLine(pos token.Position) []Fact {
	if f == nil || f.byLine == nil {
		return nil
	}
	return f.byLine[lineKey{file: canonFile(pos.Filename), line: pos.Line}]
}

// HeapFactsBetween returns the heap-allocation facts (EscapesToHeap and
// MovedToHeap) whose position falls inside [start, end], both resolved
// through fset. This is the span query hotalloc and the allocation budget
// use to attribute allocations to loops and functions.
func (f *Facts) HeapFactsBetween(fset *token.FileSet, start, end token.Pos) []Fact {
	if f == nil {
		return nil
	}
	sp, ep := fset.Position(start), fset.Position(end)
	file := canonFile(sp.Filename)
	var out []Fact
	for _, fact := range f.all {
		if fact.Kind != EscapesToHeap && fact.Kind != MovedToHeap {
			continue
		}
		if fact.File != file {
			continue
		}
		if fact.Line < sp.Line || fact.Line > ep.Line {
			continue
		}
		if fact.Line == sp.Line && fact.Col < sp.Column {
			continue
		}
		if fact.Line == ep.Line && fact.Col > ep.Column {
			continue
		}
		out = append(out, fact)
	}
	return out
}

// HeapEscapeAt reports whether the compiler recorded a heap allocation
// (EscapesToHeap or MovedToHeap) on pos's line.
func (f *Facts) HeapEscapeAt(pos token.Position) (Fact, bool) {
	for _, fact := range f.AtLine(pos) {
		if fact.Kind == EscapesToHeap || fact.Kind == MovedToHeap {
			return fact, true
		}
	}
	return Fact{}, false
}

// ProvedStackAt reports whether the compiler proved an allocation site on
// pos's line stays off the heap (a DoesNotEscape fact with no contradicting
// heap fact on the same line).
func (f *Facts) ProvedStackAt(pos token.Position) bool {
	proved := false
	for _, fact := range f.AtLine(pos) {
		switch fact.Kind {
		case EscapesToHeap, MovedToHeap:
			return false
		case DoesNotEscape:
			proved = true
		}
	}
	return proved
}

// memoKey namespaces per-package fact tables in the module memo.
func memoKey(pkgPath string) string { return "escape:" + pkgPath }

// For returns pkg's fact table, running the compiler on first use and
// caching the result in the module memo. A package that fails to build
// yields an unavailable (empty) table, never an error: the perf analyzers
// are advisory and must not wedge the whole lint run on one bad directory.
func For(mod *analysis.Module, pkg *analysis.Package) *Facts {
	v, _ := mod.Memo(memoKey(pkg.PkgPath), func() (any, error) {
		return compute(pkg), nil
	})
	return v.(*Facts)
}

// ForPass resolves the pass's package inside its module and returns the
// package's fact table. When the pass's package cannot be found (never the
// case for packages loaded by the driver or the fixture harness) an
// unavailable table comes back and the caller goes quiet.
func ForPass(pass *analysis.Pass) *Facts {
	for _, p := range pass.Module.Packages {
		if p.Types == pass.Pkg {
			return For(pass.Module, p)
		}
	}
	return &Facts{}
}

// LinePos converts a fact to a reportable token.Pos in the file containing
// sameFile (the start of the fact's line), so findings derived from
// compiler diagnostics sort and suppress like any other finding. Falls back
// to sameFile when the fact's line is out of range.
func LinePos(fset *token.FileSet, sameFile token.Pos, fact Fact) token.Pos {
	tf := fset.File(sameFile)
	if tf == nil || fact.Line < 1 || fact.Line > tf.LineCount() {
		return sameFile
	}
	return tf.LineStart(fact.Line)
}

// Pos maps fact to its exact source position — line start plus the
// compiler-reported column — so callers can test it against AST spans
// (cold-path carve-outs need column precision: a guard and its body share a
// line in `if err != nil { return err }`). Falls back like LinePos when the
// fact is outside the file.
func Pos(fset *token.FileSet, sameFile token.Pos, fact Fact) token.Pos {
	tf := fset.File(sameFile)
	if tf == nil || fact.Line < 1 || fact.Line > tf.LineCount() {
		return sameFile
	}
	p := tf.LineStart(fact.Line)
	if fact.Col > 1 {
		p += token.Pos(fact.Col - 1)
	}
	if max := token.Pos(tf.Base() + tf.Size()); p > max {
		p = max
	}
	return p
}

// Prewarm computes fact tables for the given packages (typically just the
// ones containing hot functions) with up to workers concurrent compiler
// invocations, then installs them in the module memo. Analyzer passes that
// follow hit the cache; without Prewarm they fall back to building tables
// one at a time on demand. Packages already in the memo are skipped.
func Prewarm(mod *analysis.Module, pkgs []*analysis.Package, workers int) {
	var todo []*analysis.Package
	for _, pkg := range pkgs {
		if !mod.Memoized(memoKey(pkg.PkgPath)) {
			todo = append(todo, pkg)
		}
	}
	if len(todo) == 0 {
		return
	}
	if workers < 1 {
		workers = 1
	}
	type result struct {
		idx   int
		facts *Facts
	}
	jobs := make(chan int)
	results := make(chan result)
	for w := 0; w < workers; w++ {
		go func() {
			// Drains to completion when jobs closes; no cancellation needed
			// for a bounded batch of compiles.
			for i := range jobs {
				results <- result{idx: i, facts: compute(todo[i])}
			}
		}()
	}
	go func() {
		for i := range todo {
			jobs <- i
		}
		close(jobs)
	}()
	tables := make([]*Facts, len(todo))
	for range todo {
		r := <-results
		tables[r.idx] = r.facts
	}
	for i, pkg := range todo {
		facts := tables[i]
		_, _ = mod.Memo(memoKey(pkg.PkgPath), func() (any, error) {
			return facts, nil
		})
	}
}

// compute runs the compiler over one package directory and parses its
// escape/inline diagnostics.
func compute(pkg *analysis.Package) *Facts {
	if pkg.Dir == "" {
		return &Facts{}
	}
	// -l disables inlining for the diagnostic build: with inlining on, the
	// compiler re-reports an inlined callee's escape verdicts at every call
	// site, which would smear one allocation across its callers' lines.
	// The cost is mild conservatism — an allocation the inliner would
	// eliminate in the real build can still surface as a fact; deliberate
	// cases take a reasoned //lint:allow. Inline-decision facts (can
	// inline, inlining call to) appear only when a caller parses output
	// from an inlining-enabled build.
	args := []string{"build", "-gcflags=-m=2 -l"}
	if pkg.Name == "main" {
		// A bare `go build .` in a main package drops the binary into the
		// package directory; route it to a throwaway path instead.
		out, err := os.CreateTemp("", "odbglint-escape-*")
		if err != nil {
			return &Facts{}
		}
		name := out.Name()
		_ = out.Close()
		defer func() { _ = os.Remove(name) }()
		args = append(args, "-o", name)
	}
	args = append(args, ".")
	cmd := exec.Command("go", args...)
	cmd.Dir = pkg.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		return &Facts{}
	}
	return Parse(stderr.String(), pkg.Dir)
}

// Parse builds a fact table from raw `-m=2` compiler output whose relative
// positions resolve against dir. Exposed for tests over canned output.
func Parse(output, dir string) *Facts {
	f := &Facts{Available: true, byLine: make(map[lineKey][]Fact)}
	sc := bufio.NewScanner(strings.NewReader(output))
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		// Skip package banners ("# odbgc/internal/sim") and the indented
		// flow-explanation lines -m=2 appends under each escape verdict.
		if line == "" || line[0] == '#' || line[0] == ' ' || line[0] == '\t' {
			continue
		}
		file, ln, col, msg, ok := splitPosLine(line)
		if !ok {
			continue
		}
		kind, ok := classify(msg)
		if !ok {
			continue
		}
		if !filepath.IsAbs(file) {
			file = filepath.Join(dir, file)
		}
		fact := Fact{File: canonFile(file), Line: ln, Col: col, Kind: kind, Text: strings.TrimSuffix(msg, ":")}
		f.all = append(f.all, fact)
		k := lineKey{file: fact.File, line: fact.Line}
		f.byLine[k] = append(f.byLine[k], fact)
	}
	return f
}

// splitPosLine splits "path.go:12:34: message" into its parts, scanning
// left to right for the first ":<line>:<col>: " run so colons later in the
// message cannot confuse the split.
func splitPosLine(line string) (file string, ln, col int, msg string, ok bool) {
	for i := 0; i < len(line); i++ {
		if line[i] != ':' {
			continue
		}
		tail := line[i+1:]
		j := strings.IndexByte(tail, ':')
		if j <= 0 {
			continue
		}
		lnv, err := strconv.Atoi(tail[:j])
		if err != nil {
			continue
		}
		rest := tail[j+1:]
		k := strings.Index(rest, ": ")
		if k <= 0 {
			continue
		}
		colv, err := strconv.Atoi(rest[:k])
		if err != nil {
			continue
		}
		return line[:i], lnv, colv, rest[k+2:], true
	}
	return "", 0, 0, "", false
}

// classify maps a diagnostic message to its kind.
func classify(msg string) (Kind, bool) {
	switch {
	case strings.HasPrefix(msg, "moved to heap: "):
		return MovedToHeap, true
	case strings.HasSuffix(msg, "escapes to heap") || strings.HasSuffix(msg, "escapes to heap:"):
		return EscapesToHeap, true
	case strings.HasSuffix(msg, "does not escape"):
		return DoesNotEscape, true
	case strings.HasPrefix(msg, "can inline "):
		return CanInline, true
	case strings.HasPrefix(msg, "cannot inline "):
		return CannotInline, true
	case strings.HasPrefix(msg, "inlining call to "):
		return InliningCall, true
	}
	return 0, false
}

// canonFile canonicalizes a filename for index lookups: absolute and
// symlink-free where resolvable.
func canonFile(name string) string {
	if !filepath.IsAbs(name) {
		if abs, err := filepath.Abs(name); err == nil {
			name = abs
		}
	}
	if resolved, err := filepath.EvalSymlinks(name); err == nil {
		name = resolved
	}
	return name
}
