// Package analysistest runs an analyzer over a fixture package and checks
// its findings against // want comments, mirroring the x/tools package of
// the same name. A fixture line expecting a finding carries a trailing
// comment of the form
//
//	code() // want "regexp"
//
// (several quoted regexps may follow one want). Every finding must match a
// want on its line and every want must be matched by a finding, so fixtures
// pin both the positives and the negatives of each analyzer. //lint:allow
// suppression runs before matching, exactly as in the real driver, which
// lets fixtures assert the escape hatch too.
package analysistest

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"odbgc/internal/analysis"
)

var wantRe = regexp.MustCompile(`//\s*want\s+(.*)$`)

// Run analyzes the fixture package in dir (all non-test .go files), checking
// the findings that survive //lint:allow filtering against the fixture's
// want comments. pkgPath is the import path the fixture package pretends to
// have — analyzers that gate on package paths (detrand's deterministic
// package list, nopanic's cmd exemption) see this value.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()

	pkg := LoadPackage(t, dir, pkgPath)
	fset := pkg.Fset
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, fset, pkg.Files)
	for _, f := range findings {
		key := wantKey{file: f.Pos.Filename, line: f.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.re.MatchString(f.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding at %s:%d: %s: %s", filepath.Base(f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("no finding matched want %q at %s:%d", w.re, filepath.Base(key.file), key.line)
			}
		}
	}
}

type wantKey struct {
	file string
	line int
}

type want struct {
	re   *regexp.Regexp
	used bool
}

func collectWants(t *testing.T, fset *token.FileSet, files []*ast.File) map[wantKey][]*want {
	t.Helper()
	wants := make(map[wantKey][]*want)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				m := wantRe.FindStringSubmatch(c.Text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				rest := strings.TrimSpace(m[1])
				for len(rest) > 0 {
					q, tail, err := nextQuoted(rest)
					if err != nil {
						t.Fatalf("%s:%d: bad want comment: %v", filepath.Base(pos.Filename), pos.Line, err)
					}
					re, err := regexp.Compile(q)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", filepath.Base(pos.Filename), pos.Line, q, err)
					}
					key := wantKey{file: pos.Filename, line: pos.Line}
					wants[key] = append(wants[key], &want{re: re})
					rest = strings.TrimSpace(tail)
				}
			}
		}
	}
	return wants
}

// nextQuoted splits one leading Go-quoted string off s.
func nextQuoted(s string) (string, string, error) {
	if !strings.HasPrefix(s, `"`) {
		return "", "", strconv.ErrSyntax
	}
	for i := 1; i < len(s); i++ {
		if s[i] == '\\' {
			i++
			continue
		}
		if s[i] == '"' {
			q, err := strconv.Unquote(s[:i+1])
			return q, s[i+1:], err
		}
	}
	return "", "", strconv.ErrSyntax
}

// LoadPackage parses and typechecks one fixture package (all non-test .go
// files in dir) under the pretended import path pkgPath, failing the test on
// any error. The cfg and callgraph test suites share it to load their
// fixture functions.
func LoadPackage(t *testing.T, dir string, pkgPath string) *analysis.Package {
	t.Helper()
	pkg, err := loadFixture(token.NewFileSet(), dir, pkgPath)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	return pkg
}

// loadFixture parses and typechecks the fixture package. Fixture files may
// import only the standard library.
func loadFixture(fset *token.FileSet, dir string, pkgPath string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var names []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names)

	var files []*ast.File
	for _, name := range names {
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		return nil, err
	}
	return &analysis.Package{
		PkgPath: pkgPath,
		Name:    tpkg.Name(),
		Dir:     dir,
		Fset:    fset,
		Files:   files,
		Types:   tpkg,
		Info:    info,
	}, nil
}
