// Package guarded infers, RacerD-style, which mutex guards each struct
// field in the concurrent packages (analysis.ConcurrentDirs) and reports
// the accesses that break the inferred discipline:
//
//   - a field whose accesses mostly happen with one receiver mutex held
//     (at least two guarded accesses, strict majority) is considered
//     guarded by that mutex; an access without it, in code that can run
//     concurrently — a goroutine body, or anything a `go` statement
//     reaches through the module call graph — is a finding;
//   - a field accessed both through sync/atomic calls and directly is a
//     finding regardless of reachability: mixing the two disciplines
//     publishes torn state.
//
// Lock state is tracked path-sensitively over the control-flow graph
// (must-held: intersection at merges), and "caller holds the lock" helper
// methods are handled interprocedurally: an unexported method's entry
// state is the intersection of the lock sets at its intra-package call
// sites, so the documented `// Caller holds r.mu` idiom needs no
// annotations. Code that only runs before any goroutine starts
// (constructors, single-threaded setup) is deliberately not reported.
package guarded

import (
	"go/ast"
	"go/token"
	"go/types"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/callgraph"
	"odbgc/internal/analysis/cfg"
)

// Analyzer is the guarded check.
var Analyzer = &analysis.Analyzer{
	Name: "guarded",
	Doc:  "infer each struct field's guarding mutex and report unguarded concurrent accesses and atomic/direct mixing",
	Run:  run,
}

type opKind int

const (
	opLock opKind = iota
	opUnlock
	opAccess
	opCall
)

// op is one lock-relevant operation in source order inside a basic block.
type op struct {
	kind opKind
	// key is the mutex access path ("s.mu") for opLock/opUnlock.
	key string
	// field, base, atomic describe an opAccess: which struct field, through
	// which base expression ("s"), and whether via a sync/atomic call.
	field  *types.Var
	base   string
	atomic bool
	// callee and base describe an opCall to a local struct method; goCall
	// marks `go recv.m()`, whose goroutine starts with no locks held.
	callee *types.Func
	goCall bool
	pos    token.Pos
}

// structInfo is one struct type declared in this package.
type structInfo struct {
	named  *types.Named
	fields []*types.Var
	// mutexes lists the sync.Mutex/RWMutex fields — the guard candidates.
	mutexes []*types.Var
}

// unit is one analyzed body: a declared function/method, or the function
// literal of a go statement (which starts on a fresh goroutine with no
// locks held).
type unit struct {
	fn    *types.Func // enclosing declared function
	body  *ast.BlockStmt
	flow  *cfg.Graph
	ops   map[*cfg.Block][]op
	recv  string // receiver ident name, "" when none
	goLit bool
	goPos token.Pos // the go statement, when goLit
}

// access is one recorded field access with the lock state at that point.
type access struct {
	field  *types.Var
	base   string
	held   map[string]bool
	fn     *types.Func
	goLit  bool
	goPos  token.Pos
	atomic bool
	pos    token.Pos
}

func run(pass *analysis.Pass) error {
	if !analysis.PathCovered(pass.Pkg.Path(), analysis.ConcurrentDirs) {
		return nil
	}
	structs, fieldOwner := localStructs(pass)
	if len(structs) == 0 {
		return nil
	}
	units := collectUnits(pass, structs, fieldOwner)
	entry := entryFixpoint(pass, structs, units)

	var accesses []access
	for _, u := range units {
		in := u.dataflow(entryKeys(u, entry, structs))
		u.replay(in, func(o op, held map[string]bool) {
			if o.kind != opAccess {
				return
			}
			h := make(map[string]bool, len(held))
			for k := range held {
				h[k] = true
			}
			accesses = append(accesses, access{
				field: o.field, base: o.base, held: h, fn: u.fn,
				goLit: u.goLit, goPos: u.goPos, atomic: o.atomic, pos: o.pos,
			})
		})
	}
	report(pass, structs, fieldOwner, accesses)
	return nil
}

// localStructs collects the named struct types declared in this package and
// a field → owner index for them.
func localStructs(pass *analysis.Pass) ([]*structInfo, map[*types.Var]*structInfo) {
	var out []*structInfo
	owner := map[*types.Var]*structInfo{}
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
				if !ok {
					continue
				}
				named, ok := tn.Type().(*types.Named)
				if !ok {
					continue
				}
				st, ok := named.Underlying().(*types.Struct)
				if !ok {
					continue
				}
				si := &structInfo{named: named}
				for i := 0; i < st.NumFields(); i++ {
					f := st.Field(i)
					if isMutex(f.Type()) {
						si.mutexes = append(si.mutexes, f)
						continue
					}
					if fromPkg(f.Type(), "sync") || fromPkg(f.Type(), "sync/atomic") {
						// WaitGroups, Onces, and atomic-typed fields carry
						// their own discipline; they are not data.
						continue
					}
					si.fields = append(si.fields, f)
					owner[f] = si
				}
				out = append(out, si)
			}
		}
	}
	return out, owner
}

func isMutex(t types.Type) bool {
	return fromPkg(t, "sync") && (typeName(t) == "Mutex" || typeName(t) == "RWMutex")
}

func fromPkg(t types.Type, path string) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == path
}

func typeName(t types.Type) string {
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// collectUnits builds one unit per declared function plus one per
// go-statement function literal (other literals — callbacks, deferred
// closures — are skipped: when they run is unknown, so charging them with
// the enclosing lock state would guess).
func collectUnits(pass *analysis.Pass, structs []*structInfo, fieldOwner map[*types.Var]*structInfo) []*unit {
	var units []*unit
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			u := &unit{fn: fn, body: fd.Body, recv: recvName(fd)}
			u.build(pass, fieldOwner)
			units = append(units, u)
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				gs, ok := n.(*ast.GoStmt)
				if !ok {
					return true
				}
				if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
					gu := &unit{fn: fn, body: lit.Body, goLit: true, goPos: gs.Pos()}
					gu.build(pass, fieldOwner)
					units = append(units, gu)
				}
				return true
			})
		}
	}
	return units
}

func recvName(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 || len(fd.Recv.List[0].Names) == 0 {
		return ""
	}
	return fd.Recv.List[0].Names[0].Name
}

// build constructs the unit's CFG and per-block op lists.
func (u *unit) build(pass *analysis.Pass, fieldOwner map[*types.Var]*structInfo) {
	u.flow = cfg.New(u.body)
	u.ops = make(map[*cfg.Block][]op)
	for _, b := range u.flow.Blocks {
		ops := extractOps(pass, b, fieldOwner)
		if len(ops) > 0 {
			u.ops[b] = ops
		}
	}
}

// extractOps lists one block's operations in source order: lock/unlock
// calls, field accesses (plain or atomic), and calls to local struct
// methods. Function literals are skipped — go literals get their own unit.
func extractOps(pass *analysis.Pass, b *cfg.Block, fieldOwner map[*types.Var]*structInfo) []op {
	info := pass.TypesInfo
	var ops []op
	// handled marks selector expressions consumed by a containing
	// construct (an atomic call's &field argument, a lock receiver).
	handled := map[ast.Expr]bool{}
	for _, node := range b.Nodes {
		if rs, ok := node.(*ast.RangeStmt); ok {
			node = rs.X // only the ranged expression evaluates at the head
		}
		ast.Inspect(node, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncLit:
				return false
			case *ast.DeferStmt:
				// A deferred Unlock releases at return, not here: skipping
				// the statement keeps the lock held for the rest of the
				// function, which is exactly the defer-unlock idiom.
				return false
			case *ast.GoStmt:
				// The goroutine starts with no locks held; record the call
				// site so a named target's entry state drops to empty.
				if fn := callgraph.Callee(info, n.Call); fn != nil && methodStruct(fn, fieldOwner) != nil {
					ops = append(ops, op{kind: opCall, callee: fn, goCall: true, pos: n.Pos()})
				}
				return false
			case *ast.CallExpr:
				if key, locks, isLock := lockOp(info, n); isLock {
					kind := opUnlock
					if locks {
						kind = opLock
					}
					ops = append(ops, op{kind: kind, key: key, pos: n.Pos()})
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						markSelectors(sel.X, handled)
					}
					return true
				}
				if sels := atomicArgs(info, n); len(sels) > 0 {
					for _, sel := range sels {
						if o, ok := fieldAccess(info, sel, fieldOwner); ok {
							o.atomic = true
							ops = append(ops, o)
						}
						handled[sel] = true
					}
					return true
				}
				if fn := callgraph.Callee(info, n); fn != nil && methodStruct(fn, fieldOwner) != nil {
					if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok {
						ops = append(ops, op{kind: opCall, callee: fn, base: types.ExprString(sel.X), pos: n.Pos()})
					}
				}
			case *ast.SelectorExpr:
				if handled[n] {
					return false
				}
				if o, ok := fieldAccess(info, n, fieldOwner); ok {
					ops = append(ops, o)
				}
			}
			return true
		})
	}
	return ops
}

// markSelectors marks e and its nested selectors as consumed, so a lock
// receiver path is not itself recorded as a field access.
func markSelectors(e ast.Expr, handled map[ast.Expr]bool) {
	ast.Inspect(e, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			handled[sel] = true
		}
		return true
	})
}

// lockOp classifies a call as a mutex Lock/RLock (locks=true) or
// Unlock/RUnlock (locks=false) and returns the mutex path as key.
func lockOp(info *types.Info, call *ast.CallExpr) (key string, locks, isLock bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false, false
	}
	fn := callgraph.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false, false
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", false, false
	}
	recv := sig.Recv().Type()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	if tn := typeName(recv); tn != "Mutex" && tn != "RWMutex" {
		return "", false, false
	}
	switch fn.Name() {
	case "Lock", "RLock":
		return types.ExprString(sel.X), true, true
	case "Unlock", "RUnlock":
		return types.ExprString(sel.X), false, true
	}
	return "", false, false
}

// atomicArgs returns the field selectors a sync/atomic call reads or
// writes through &field arguments.
func atomicArgs(info *types.Info, call *ast.CallExpr) []*ast.SelectorExpr {
	fn := callgraph.Callee(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return nil
	}
	var out []*ast.SelectorExpr
	for _, arg := range call.Args {
		u, ok := ast.Unparen(arg).(*ast.UnaryExpr)
		if !ok || u.Op != token.AND {
			continue
		}
		if sel, ok := ast.Unparen(u.X).(*ast.SelectorExpr); ok {
			out = append(out, sel)
		}
	}
	return out
}

// fieldAccess classifies a selector as an access to a local struct field.
func fieldAccess(info *types.Info, sel *ast.SelectorExpr, fieldOwner map[*types.Var]*structInfo) (op, bool) {
	v, ok := info.Uses[sel.Sel].(*types.Var)
	if !ok || !v.IsField() || fieldOwner[v] == nil {
		return op{}, false
	}
	return op{kind: opAccess, field: v, base: types.ExprString(sel.X), pos: sel.Sel.Pos()}, true
}

// methodStruct returns the local struct a function is a method of, nil
// otherwise.
func methodStruct(fn *types.Func, fieldOwner map[*types.Var]*structInfo) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	for f, si := range fieldOwner {
		_ = f
		if si.named == named {
			return named
		}
	}
	return nil
}

// dataflow computes, for each reachable block, the set of mutex paths that
// are held on entry to the block on every path from the function entry
// (must-analysis: intersection at merges). entry seeds the function's
// entry block.
func (u *unit) dataflow(entry map[string]bool) map[*cfg.Block]map[string]bool {
	preds := map[*cfg.Block][]*cfg.Block{}
	for _, b := range u.flow.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	in := map[*cfg.Block]map[string]bool{u.flow.Entry: entry}
	work := []*cfg.Block{u.flow.Entry}
	for len(work) > 0 {
		b := work[len(work)-1]
		work = work[:len(work)-1]
		out := u.transfer(b, in[b])
		for _, s := range b.Succs {
			next, seeded := intersectInto(in[s], out, s == u.flow.Entry)
			if seeded {
				in[s] = next
				work = append(work, s)
			}
		}
	}
	return in
}

// intersectInto merges a predecessor's out-set into a successor's in-set.
// A successor never seen keeps the whole out-set; otherwise the in-set
// shrinks to the intersection. seeded reports whether the in-set changed.
func intersectInto(cur, out map[string]bool, isEntry bool) (map[string]bool, bool) {
	if isEntry {
		return cur, false // the entry's in-set is fixed
	}
	if cur == nil {
		next := make(map[string]bool, len(out))
		for k := range out {
			next[k] = true
		}
		return next, true
	}
	changed := false
	for k := range cur {
		if !out[k] {
			delete(cur, k)
			changed = true
		}
	}
	return cur, changed
}

// transfer applies one block's lock/unlock ops to a held-set copy.
func (u *unit) transfer(b *cfg.Block, held map[string]bool) map[string]bool {
	out := make(map[string]bool, len(held))
	for k := range held {
		out[k] = true
	}
	for _, o := range u.ops[b] {
		switch o.kind {
		case opLock:
			out[o.key] = true
		case opUnlock:
			delete(out, o.key)
		}
	}
	return out
}

// replay walks every reachable block's ops in order with the current held
// set, invoking visit on each op.
func (u *unit) replay(in map[*cfg.Block]map[string]bool, visit func(op, map[string]bool)) {
	for _, b := range u.flow.Blocks {
		held, ok := in[b]
		if !ok {
			continue // unreachable
		}
		cur := make(map[string]bool, len(held))
		for k := range held {
			cur[k] = true
		}
		for _, o := range u.ops[b] {
			switch o.kind {
			case opLock:
				cur[o.key] = true
			case opUnlock:
				delete(cur, o.key)
			default:
				visit(o, cur)
			}
		}
	}
}

// entryKeys converts a method's entry lock-field set into the unit's held
// keys ("recv.mu"); embedded mutexes also match the bare receiver.
func entryKeys(u *unit, entry map[*types.Func]map[string]bool, structs []*structInfo) map[string]bool {
	keys := map[string]bool{}
	if u.goLit || u.recv == "" {
		return keys
	}
	fields := entry[u.fn]
	if fields == nil {
		return keys
	}
	named := methodStructOf(u.fn)
	for _, si := range structs {
		if si.named != named {
			continue
		}
		for _, m := range si.mutexes {
			if !fields[m.Name()] {
				continue
			}
			keys[u.recv+"."+m.Name()] = true
			if m.Embedded() {
				keys[u.recv] = true
			}
		}
	}
	return keys
}

func methodStructOf(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// entryFixpoint computes each local method's entry lock state: the
// intersection of the lock sets at its intra-package call sites.
// Unexported methods start optimistic (all receiver mutexes held — the
// "caller holds the lock" documentation idiom) and are knocked down by
// call sites; exported methods start and stay empty, since unseen external
// callers hold nothing.
func entryFixpoint(pass *analysis.Pass, structs []*structInfo, units []*unit) map[*types.Func]map[string]bool {
	structOf := map[*types.Named]*structInfo{}
	for _, si := range structs {
		structOf[si.named] = si
	}
	entry := map[*types.Func]map[string]bool{}
	var methods []*types.Func
	for _, u := range units {
		if u.goLit || u.recv == "" {
			continue
		}
		named := methodStructOf(u.fn)
		si := structOf[named]
		if si == nil {
			continue
		}
		fields := map[string]bool{}
		if !u.fn.Exported() {
			for _, m := range si.mutexes {
				fields[m.Name()] = true
			}
		}
		entry[u.fn] = fields
		methods = append(methods, u.fn)
	}

	for changed := true; changed; {
		changed = false
		sites := map[*types.Func][]map[string]bool{}
		for _, u := range units {
			in := u.dataflow(entryKeys(u, entry, structs))
			u.replay(in, func(o op, held map[string]bool) {
				if o.kind != opCall {
					return
				}
				if _, tracked := entry[o.callee]; !tracked {
					return
				}
				named := methodStructOf(o.callee)
				si := structOf[named]
				fields := map[string]bool{}
				if !o.goCall {
					for _, m := range si.mutexes {
						if held[o.base+"."+m.Name()] || (m.Embedded() && held[o.base]) {
							fields[m.Name()] = true
						}
					}
				}
				sites[o.callee] = append(sites[o.callee], fields)
			})
		}
		for _, fn := range methods {
			if fn.Exported() {
				continue
			}
			ss := sites[fn]
			if len(ss) == 0 {
				continue // never called intra-package: unreachable, keep optimistic
			}
			next := map[string]bool{}
			for k := range ss[0] {
				next[k] = true
			}
			for _, s := range ss[1:] {
				for k := range next {
					if !s[k] {
						delete(next, k)
					}
				}
			}
			if len(next) != len(entry[fn]) {
				entry[fn] = next
				changed = true
			}
		}
	}
	return entry
}

// report infers each field's guard from the access census and reports the
// violations.
func report(pass *analysis.Pass, structs []*structInfo, fieldOwner map[*types.Var]*structInfo, accesses []access) {
	byField := map[*types.Var][]access{}
	for _, a := range accesses {
		byField[a.field] = append(byField[a.field], a)
	}
	concurrent := concurrentFuncs(pass.Module)
	for _, si := range structs {
		for _, f := range si.fields {
			accs := byField[f]
			if len(accs) == 0 {
				continue
			}
			reportMixed(pass, si, f, accs)
			reportUnguarded(pass, si, f, accs, concurrent)
		}
	}
}

// reportMixed flags a field touched both through sync/atomic and directly.
func reportMixed(pass *analysis.Pass, si *structInfo, f *types.Var, accs []access) {
	hasAtomic := false
	for _, a := range accs {
		if a.atomic {
			hasAtomic = true
			break
		}
	}
	if !hasAtomic {
		return
	}
	for _, a := range accs {
		if !a.atomic {
			pass.Reportf(a.pos, "field %s of %s mixes sync/atomic and direct access; every access must go through sync/atomic once any does",
				f.Name(), si.named.Obj().Name())
		}
	}
}

// reportUnguarded infers the field's guard (majority of non-atomic
// accesses, at least two guarded) and flags guard-free accesses in code
// that can run concurrently.
func reportUnguarded(pass *analysis.Pass, si *structInfo, f *types.Var, accs []access, concurrent map[*types.Func]token.Position) {
	guardedBy := func(a access, m *types.Var) bool {
		return a.held[a.base+"."+m.Name()] || (m.Embedded() && a.held[a.base])
	}
	var guard *types.Var
	best, total := 0, 0
	for _, a := range accs {
		if !a.atomic {
			total++
		}
	}
	for _, m := range si.mutexes {
		n := 0
		for _, a := range accs {
			if !a.atomic && guardedBy(a, m) {
				n++
			}
		}
		if n > best {
			best, guard = n, m
		}
	}
	if guard == nil || best < 2 || best*2 <= total {
		return
	}
	for _, a := range accs {
		if a.atomic || guardedBy(a, guard) {
			continue
		}
		var goPos token.Position
		switch {
		case a.goLit:
			goPos = pass.Fset.Position(a.goPos)
		default:
			p, ok := concurrent[a.fn]
			if !ok {
				continue // runs before any goroutine exists; not a race
			}
			goPos = p
		}
		pass.Reportf(a.pos, "field %s of %s is guarded by %s on %d of %d accesses but not here, and this code runs concurrently (go statement at %s:%d); hold %s",
			f.Name(), si.named.Obj().Name(), guard.Name(), best, total, goPos.Filename, goPos.Line, guard.Name())
	}
}

// concurrentFuncs computes, once per module, every declared function that
// can run off the main goroutine: the resolved targets of go statements
// (including calls made directly inside `go func(){...}` literals), closed
// transitively over the module call graph. The value is the position of
// the go statement that makes the function concurrent.
func concurrentFuncs(mod *analysis.Module) map[*types.Func]token.Position {
	v, _ := mod.Memo("guarded.concurrent", func() (any, error) {
		g := callgraph.For(mod)
		out := map[*types.Func]token.Position{}
		var queue []*types.Func
		add := func(fn *types.Func, pos token.Position) {
			if _, ok := out[fn]; !ok {
				out[fn] = pos
				queue = append(queue, fn)
			}
		}
		for _, n := range g.Nodes() {
			info, fset := n.Pkg.Info, n.Pkg.Fset
			ast.Inspect(n.Decl, func(node ast.Node) bool {
				gs, ok := node.(*ast.GoStmt)
				if !ok {
					return true
				}
				pos := fset.Position(gs.Pos())
				if lit, ok := gs.Call.Fun.(*ast.FuncLit); ok {
					ast.Inspect(lit, func(m ast.Node) bool {
						if call, ok := m.(*ast.CallExpr); ok {
							if fn := callgraph.Callee(info, call); fn != nil {
								add(fn, pos)
							}
						}
						return true
					})
				} else if fn := callgraph.Callee(info, gs.Call); fn != nil {
					add(fn, pos)
				}
				return true
			})
		}
		for len(queue) > 0 {
			fn := queue[0]
			queue = queue[1:]
			node := g.Lookup(fn)
			if node == nil {
				continue
			}
			for _, e := range node.Out {
				add(e.Callee.Func, out[fn])
			}
		}
		return out, nil
	})
	return v.(map[*types.Func]token.Position)
}
