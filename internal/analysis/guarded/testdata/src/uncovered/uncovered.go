// Package uncovered repeats the violating shapes outside the concurrent
// directories: the analyzer does not apply, so no findings.
package uncovered

import "sync"

type stats struct {
	mu sync.Mutex
	n  int
}

func (s *stats) add(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n += v
}

func (s *stats) get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *stats) peek() int {
	return s.n
}

func (s *stats) Watch() {
	go func() {
		_ = s.peek()
	}()
}
