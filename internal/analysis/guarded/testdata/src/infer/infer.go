// Package infer exercises guard inference in a covered (concurrent)
// package: majority-guarded fields, the caller-holds-the-lock helper
// idiom, goroutine reachability, and atomic/direct mixing.
package infer

import (
	"sync"
	"sync/atomic"
)

type stats struct {
	mu sync.Mutex
	n  int
	m  map[string]int
}

// newStats writes n before any goroutine can see the value: no finding.
func newStats() *stats {
	s := &stats{m: make(map[string]int)}
	s.n = 1
	return s
}

// add and get establish mu as n's guard.
func (s *stats) add(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n += v
}

func (s *stats) get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

// bump is a caller-holds-s.mu helper: every call site holds the lock, so
// the inferred entry state keeps it clean. True negative.
func (s *stats) bump() { s.n++ }

func (s *stats) incr() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump()
}

// peek reads n without the guard; Watch makes it run on a goroutine.
func (s *stats) peek() int {
	return s.n // want "guarded by mu"
}

// Watch launches the unguarded reader.
func (s *stats) Watch() {
	go s.watch()
}

func (s *stats) watch() {
	_ = s.peek()
	_ = s.get()
}

// ServeLocked locks inside the goroutine body. True negative.
func (s *stats) ServeLocked() {
	go func() {
		s.mu.Lock()
		defer s.mu.Unlock()
		s.n++
	}()
}

// ServeUnlocked writes the guarded field from a goroutine with no lock:
// the seeded-regression shape.
func (s *stats) ServeUnlocked() {
	go func() {
		s.n++ // want "guarded by mu"
	}()
}

type table struct {
	rw   sync.RWMutex
	rows map[string]int
}

// insert and lookup establish rw (write- and read-locked) as rows' guard.
func (t *table) insert(k string) {
	t.rw.Lock()
	defer t.rw.Unlock()
	t.rows[k]++
}

func (t *table) lookup(k string) int {
	t.rw.RLock()
	defer t.rw.RUnlock()
	return t.rows[k]
}

// scan walks the map with no lock and runs concurrently via Monitor.
func (t *table) scan() int {
	total := 0
	for _, v := range t.rows { // want "guarded by rw"
		total += v
	}
	return total
}

// Monitor reaches scan from inside a go literal.
func (t *table) Monitor(out chan<- int) {
	go func() {
		out <- t.scan()
	}()
}

type flags struct {
	ready int64
	spare int64
}

// set uses sync/atomic on ready; sloppy reads it directly: mixing finding,
// no goroutine required.
func (f *flags) set() {
	atomic.StoreInt64(&f.ready, 1)
}

func (f *flags) sloppy() int64 {
	return f.ready // want "mixes sync/atomic and direct access"
}

// consistent only ever touches spare directly: no finding.
func (f *flags) consistent() int64 {
	f.spare++
	return f.spare
}
