package guarded_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/guarded"
)

// TestInference pins guard inference, the caller-holds helper idiom,
// goroutine reachability, and atomic/direct mixing in a covered package.
func TestInference(t *testing.T) {
	analysistest.Run(t, "testdata/src/infer", guarded.Analyzer, "example.com/internal/obs/reg")
}

// TestUncoveredPackageExempt runs the same shapes outside the concurrent
// directories: no findings.
func TestUncoveredPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src/uncovered", guarded.Analyzer, "example.com/internal/report")
}

// TestUnreasonedAllowRejected pins the suppression contract: an allow
// without a reason is itself a finding and suppresses nothing.
func TestUnreasonedAllowRejected(t *testing.T) {
	dir := t.TempDir()
	src := `package reg

import "sync"

type stats struct {
	mu sync.Mutex
	n  int
}

func (s *stats) add(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.n += v
}

func (s *stats) get() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.n
}

func (s *stats) Watch() {
	go func() {
		//lint:allow guarded
		s.n++
	}()
}
`
	if err := os.WriteFile(filepath.Join(dir, "reg.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := analysistest.LoadPackage(t, dir, "example.com/internal/obs/reg")
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{guarded.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawFinding bool
	for _, f := range findings {
		if f.Analyzer == "allow" && strings.Contains(f.Message, "no reason") {
			sawMalformed = true
		}
		if f.Analyzer == "guarded" {
			sawFinding = true
		}
	}
	if !sawMalformed {
		t.Errorf("unreasoned //lint:allow not reported as malformed; findings: %v", findings)
	}
	if !sawFinding {
		t.Errorf("unreasoned //lint:allow suppressed the guarded finding; findings: %v", findings)
	}
}
