package pool

import "context"

// PoolWorker seeds the regression the analyzer must catch: PR 4's worker
// pools range over the jobs channel so that closing it stops every worker,
// and the select consults ctx.Done. This revert swaps the range for a bare
// receive inside for{}, so neither closing the channel nor canceling the
// context ends the loop.
func PoolWorker(ctx context.Context, jobs chan int) {
	for { // want "unbounded loop"
		v := <-jobs
		process(ctx, v)
	}
}
