// Package pool exercises the ctxflow rules: struct-field stashing,
// parameter position, exported loops without a context, unbounded loops
// that never observe cancellation, and fresh contexts shadowing a threaded
// one.
package pool

import "context"

type holder struct {
	ctx context.Context // want "struct field"
	n   int
}

type clean struct {
	n int
}

// BadOrder buries the context behind a value parameter.
func BadOrder(n int, ctx context.Context) { // want "first parameter"
	process(ctx, n)
}

// process is a context-accepting callee for the loop checks.
func process(ctx context.Context, v int) {}

// step has a Context sibling, the Run/RunContext delegation shape.
func step() {}

func stepContext(ctx context.Context) {}

// Drain loops over work calling a context-accepting callee but gives its
// callers no way to cancel the loop.
func Drain(vs []int) { // want "takes no context.Context"
	for _, v := range vs {
		process(context.Background(), v)
	}
}

// Pump loops calling step although stepContext exists.
func Pump(n int) { // want "takes no context.Context"
	for i := 0; i < n; i++ {
		step()
	}
}

// DrainContext is the compliant shape: ctx first, threaded to the callee.
func DrainContext(ctx context.Context, vs []int) {
	for _, v := range vs {
		process(ctx, v)
	}
}

// Wrap delegates once with a fresh context — the sanctioned non-ctx entry
// point. A single call is not a loop, so no finding.
func Wrap(vs []int) {
	DrainContext(context.Background(), vs)
}

// Relay accepts a context and then abandons it.
func Relay(ctx context.Context, vs []int) {
	for _, v := range vs {
		process(context.Background(), v) // want "context.Background passed while ctx is in scope"
	}
}

// Once drops its context outside any loop; still a detached callee.
func Once(ctx context.Context) {
	process(context.TODO(), 1) // want "context.TODO passed while ctx is in scope"
}

// Spin holds a context it never consults.
func Spin(ctx context.Context, ch chan int) {
	for { // want "unbounded loop"
		<-ch
	}
}

// SpinSelect observes cancellation through ctx.Done.
func SpinSelect(ctx context.Context, ch chan int) {
	for {
		select {
		case v := <-ch:
			process(ctx, v)
		case <-ctx.Done():
			return
		}
	}
}

// SpinErr observes cancellation through the loop condition.
func SpinErr(ctx context.Context, ch chan int) {
	for ctx.Err() == nil {
		process(ctx, <-ch)
	}
}

// RangeChan ends when the channel closes; close is the cancellation.
func RangeChan(ctx context.Context, ch chan int) {
	for v := range ch {
		process(ctx, v)
	}
}

// Detached pins the escape hatch: a reasoned allow suppresses the finding.
func Detached(ctx context.Context) {
	//lint:allow ctxflow checkpoint flush must complete even after cancellation
	process(context.Background(), 0)
}
