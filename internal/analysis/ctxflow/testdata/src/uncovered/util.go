// Package util would trip every ctxflow rule — but it pretends to live
// outside the covered directories, where the threading convention is not
// enforced, so the analyzer must stay silent.
package util

import "context"

type holder struct {
	ctx context.Context
}

func process(ctx context.Context, v int) {}

func Drain(vs []int) {
	for _, v := range vs {
		process(context.Background(), v)
	}
}
