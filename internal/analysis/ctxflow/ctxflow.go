// Package ctxflow enforces the context-propagation discipline the
// cancellation PR established across the simulation driver: cancellation
// must flow as an explicit context.Context argument from the CLI down to
// every loop that does real work.
//
// Inside the covered packages (internal/sim, internal/experiments,
// internal/fault) the analyzer reports:
//
//   - a context.Context stored in a struct field — stashing ctx hides the
//     cancellation path and outlives the call it belongs to;
//   - a function whose context.Context parameter is not first, breaking the
//     convention every caller in the tree relies on;
//   - an exported function that loops over work and calls context-accepting
//     callees (or callees with a <name>Context sibling) without accepting a
//     context itself, which forces the loop body to invent one;
//   - an unbounded loop in a context-accepting function that never checks
//     ctx.Err() or selects on ctx.Done(), so cancellation cannot interrupt
//     it (checked on the function's control-flow graph);
//   - context.Background()/context.TODO() passed while a ctx parameter is
//     in scope, which silently detaches the callee from cancellation.
//
// Single-call delegation wrappers (Run calling RunContext with a fresh
// Background) remain legal: only loops demand a threaded context.
package ctxflow

import (
	"go/ast"
	"go/types"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/callgraph"
	"odbgc/internal/analysis/cfg"
)

// Analyzer is the ctxflow check.
var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "require context.Context threading: first parameter, never a struct field, checked in unbounded loops",
	Run:  run,
}

// CoveredDirs names the package directories whose call paths must thread
// contexts. These are the packages between the CLI's signal handler and the
// batch engine's workers — the chain PR 4's graceful shutdown depends on.
var CoveredDirs = []string{
	"internal/sim",
	"internal/experiments",
	"internal/fault",
	"internal/server",
}

func run(pass *analysis.Pass) error {
	if !analysis.PathCovered(pass.Pkg.Path(), CoveredDirs) {
		return nil
	}
	info := pass.TypesInfo
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if cfg.IsContextType(info.TypeOf(field.Type)) {
					pass.Reportf(field.Pos(),
						"context.Context stored in a struct field; pass ctx as the first argument through the call path instead")
				}
			}
			return true
		})
		for _, decl := range file.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkFunc(pass, fd)
			}
		}
	}
	return nil
}

func checkFunc(pass *analysis.Pass, fd *ast.FuncDecl) {
	info := pass.TypesInfo
	ctxPos, ctxField := ctxParam(info, fd)
	hasCtx := ctxField != nil
	if hasCtx && ctxPos != 0 {
		pass.Reportf(ctxField.Pos(),
			"context.Context must be the first parameter of %s", fd.Name.Name)
	}
	if hasCtx {
		g := cfg.New(fd.Body)
		for _, l := range g.Loops {
			if l.Unbounded && !g.LoopCancelable(l, info) {
				pass.Reportf(l.Stmt.Pos(),
					"unbounded loop in %s never observes ctx cancellation; check ctx.Err() or select on ctx.Done() each iteration", fd.Name.Name)
			}
		}
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if name, ok := freshContextCall(info, call); ok {
				pass.Reportf(call.Pos(),
					"context.%s passed while ctx is in scope in %s; thread the caller's ctx instead", name, fd.Name.Name)
			}
			return true
		})
		return
	}
	if !fd.Name.IsExported() {
		return
	}
	// Exported entry point with no context: if some loop in its body calls
	// a context-accepting callee (or one with a <name>Context sibling), the
	// function is looping over cancelable work without a way to cancel it.
	reported := false
	for _, n := range loopBodies(fd.Body) {
		if reported {
			break
		}
		ast.Inspect(n, func(n ast.Node) bool {
			if reported {
				return false
			}
			if _, ok := n.(*ast.FuncLit); ok {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			callee := callgraph.Callee(info, call)
			if callee == nil {
				return true
			}
			if target, ok := wantsContext(callee); ok {
				pass.Reportf(fd.Name.Pos(),
					"exported %s loops over work but takes no context.Context; accept ctx as the first parameter and thread it to %s", fd.Name.Name, target)
				reported = true
				return false
			}
			return true
		})
	}
}

// ctxParam returns the flattened position of the first context.Context
// parameter of fd and its field, or (-1, nil).
func ctxParam(info *types.Info, fd *ast.FuncDecl) (int, *ast.Field) {
	pos := 0
	for _, field := range fd.Type.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if cfg.IsContextType(info.TypeOf(field.Type)) {
			return pos, field
		}
		pos += n
	}
	return -1, nil
}

// freshContextCall matches context.Background() / context.TODO().
func freshContextCall(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	ident, ok := sel.X.(*ast.Ident)
	if !ok {
		return "", false
	}
	pkgName, ok := info.Uses[ident].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "context" {
		return "", false
	}
	if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
		return sel.Sel.Name, true
	}
	return "", false
}

// loopBodies collects the bodies of every for/range statement in body,
// without descending into function literals (their loops run on their own
// schedule and are goleak's concern).
func loopBodies(body *ast.BlockStmt) []*ast.BlockStmt {
	var out []*ast.BlockStmt
	ast.Inspect(body, func(n ast.Node) bool {
		switch s := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.ForStmt:
			out = append(out, s.Body)
		case *ast.RangeStmt:
			out = append(out, s.Body)
		}
		return true
	})
	return out
}

// wantsContext reports whether callee takes a context.Context first, or has
// a package-level sibling named <callee>Context that does. The returned
// name is the function the caller should thread ctx to.
func wantsContext(callee *types.Func) (string, bool) {
	if firstParamIsContext(callee) {
		return callee.Name(), true
	}
	if pkg := callee.Pkg(); pkg != nil {
		if sib, ok := pkg.Scope().Lookup(callee.Name() + "Context").(*types.Func); ok && firstParamIsContext(sib) {
			return sib.Name(), true
		}
	}
	return "", false
}

func firstParamIsContext(fn *types.Func) bool {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Params().Len() == 0 {
		return false
	}
	return cfg.IsContextType(sig.Params().At(0).Type())
}
