package ctxflow_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"odbgc/internal/analysis"
	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/ctxflow"
)

func TestCoveredPackage(t *testing.T) {
	analysistest.Run(t, "testdata/src/ctx", ctxflow.Analyzer, "example.com/internal/sim/pool")
}

// TestUncoveredPackageExempt runs the analyzer over code that violates every
// rule but lives outside the covered directories: no findings.
func TestUncoveredPackageExempt(t *testing.T) {
	analysistest.Run(t, "testdata/src/uncovered", ctxflow.Analyzer, "example.com/internal/report")
}

// TestUnreasonedAllowRejected pins the suppression contract: an allow
// without a reason is itself a finding and suppresses nothing.
func TestUnreasonedAllowRejected(t *testing.T) {
	dir := t.TempDir()
	src := `package pool

import "context"

func process(ctx context.Context, v int) {}

func Drain(vs []int) {
	//lint:allow ctxflow
	for _, v := range vs {
		process(context.Background(), v)
	}
}
`
	if err := os.WriteFile(filepath.Join(dir, "pool.go"), []byte(src), 0o644); err != nil {
		t.Fatal(err)
	}
	pkg := analysistest.LoadPackage(t, dir, "example.com/internal/sim/pool")
	findings, err := analysis.RunPackage(pkg, []*analysis.Analyzer{ctxflow.Analyzer})
	if err != nil {
		t.Fatal(err)
	}
	var sawMalformed, sawFinding bool
	for _, f := range findings {
		if f.Analyzer == "allow" && strings.Contains(f.Message, "no reason") {
			sawMalformed = true
		}
		if f.Analyzer == "ctxflow" {
			sawFinding = true
		}
	}
	if !sawMalformed {
		t.Errorf("unreasoned //lint:allow not reported as malformed; findings: %v", findings)
	}
	if !sawFinding {
		t.Errorf("unreasoned //lint:allow suppressed the ctxflow finding; findings: %v", findings)
	}
}
