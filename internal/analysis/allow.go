package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// AllowPrefix introduces a suppression comment. The full form is
//
//	//lint:allow <analyzer> <reason...>
//
// and it suppresses findings of the named analyzer on the comment's own line
// and on the line directly below it, so both trailing comments and
// own-line comments above the offending statement work. A reason is
// mandatory: a suppression that cannot say why it exists is itself reported
// as a finding.
const AllowPrefix = "//lint:allow"

type allowKey struct {
	file string
	line int
}

// Suppressions indexes the //lint:allow comments of one package.
type Suppressions struct {
	byLine    map[allowKey]map[string]bool
	malformed []Finding
}

// CollectSuppressions scans the package's comments for //lint:allow
// directives. known maps valid analyzer names; directives naming an unknown
// analyzer or missing a reason are recorded as malformed and surface as
// findings of the pseudo-analyzer "allow".
func CollectSuppressions(fset *token.FileSet, files []*ast.File, known map[string]bool) *Suppressions {
	s := &Suppressions{byLine: make(map[allowKey]map[string]bool)}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(c.Text)
				if !strings.HasPrefix(text, AllowPrefix) {
					continue
				}
				pos := fset.Position(c.End())
				fields := strings.Fields(strings.TrimPrefix(text, AllowPrefix))
				switch {
				case len(fields) == 0:
					s.malformed = append(s.malformed, Finding{
						Pos: pos, Analyzer: "allow",
						Message: "malformed //lint:allow: missing analyzer name and reason",
					})
					continue
				case !known[fields[0]]:
					s.malformed = append(s.malformed, Finding{
						Pos: pos, Analyzer: "allow",
						Message: fmt.Sprintf("//lint:allow names unknown analyzer %q", fields[0]),
					})
					continue
				case len(fields) < 2:
					s.malformed = append(s.malformed, Finding{
						Pos: pos, Analyzer: "allow",
						Message: fmt.Sprintf("//lint:allow %s has no reason; say why the violation is intended", fields[0]),
					})
					continue
				}
				k := allowKey{file: pos.Filename, line: pos.Line}
				if s.byLine[k] == nil {
					s.byLine[k] = make(map[string]bool)
				}
				s.byLine[k][fields[0]] = true
			}
		}
	}
	return s
}

// Allowed reports whether a finding of the named analyzer at pos is
// suppressed by an //lint:allow comment on the same or the preceding line.
func (s *Suppressions) Allowed(analyzer string, pos token.Position) bool {
	if s == nil {
		return false
	}
	if s.byLine[allowKey{pos.Filename, pos.Line}][analyzer] {
		return true
	}
	return s.byLine[allowKey{pos.Filename, pos.Line - 1}][analyzer]
}

// Malformed returns the findings for broken //lint:allow comments.
func (s *Suppressions) Malformed() []Finding {
	return s.malformed
}
