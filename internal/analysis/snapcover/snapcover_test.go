package snapcover_test

import (
	"testing"

	"odbgc/internal/analysis/analysistest"
	"odbgc/internal/analysis/snapcover"
)

func TestFixture(t *testing.T) {
	analysistest.Run(t, "testdata/src/fixture", snapcover.Analyzer, "example.com/snapcover/fixture")
}
