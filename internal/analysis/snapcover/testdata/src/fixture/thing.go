package fixture

// Thing is the live object; it is declared outside snapshot.go, so its own
// fields are not subject to the coverage check.
type Thing struct {
	a       int
	b       []byte
	kept    int
	dropped int
	ignored int
}
