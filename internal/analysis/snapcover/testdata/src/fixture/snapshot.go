// Package fixture exercises snapcover: state structs declared in
// snapshot.go must have every field written by an encoder and read by a
// decoder somewhere in the package.
package fixture

// FullState round-trips completely: no findings.
type FullState struct {
	A int
	B []byte
}

// PairState is populated through an unkeyed literal: still complete.
type PairState struct {
	X int
	Y int
}

// PartialState simulates the silent-resume-corruption bug: one field the
// encoder forgot, one the decoder forgot, and one deliberately retired
// field kept only for wire compatibility.
type PartialState struct {
	Kept    int
	Dropped int // want "field PartialState.Dropped is never populated by a snapshot encoder"
	Ignored int // want "field PartialState.Ignored is never consumed by a snapshot decoder"
	Legacy  int //lint:allow snapcover retired field kept so old gob streams still decode
}

func (t *Thing) Snapshot() *FullState {
	return &FullState{A: t.a, B: t.b}
}

func RestoreThing(st *FullState) *Thing {
	return &Thing{a: st.A, b: st.B}
}

func encodePair(x, y int) PairState { return PairState{x, y} }

func decodePair(p PairState) (int, int) { return p.X, p.Y }

func (t *Thing) SnapshotPartial() *PartialState {
	st := &PartialState{Kept: t.kept}
	st.Ignored = t.ignored
	return st
}

func RestorePartial(t *Thing, st *PartialState) {
	t.kept = st.Kept
	t.dropped = st.Dropped
}
