// Package snapcover cross-checks snapshot completeness: every field of
// every state struct declared in a snapshot.go or checkpoint.go file must
// be populated by an encoder and consumed by a decoder somewhere in the
// same package. The convention throughout the simulator is that
// checkpointable components keep their wire image in such a struct
// (gc.HeapSnapshot, storage.ManagerState, the core policy states,
// sim.Checkpoint); adding a field to the live object means adding it to the
// state struct, the snapshot method, and the restore function together.
// Forgetting either half used to be a silent resume corruption — the gob
// round-trip happily drops what nobody writes and nobody reads. snapcover
// makes it a build-time error at the field's declaration.
package snapcover

import (
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"

	"odbgc/internal/analysis"
)

// Analyzer is the snapcover check.
var Analyzer = &analysis.Analyzer{
	Name: "snapcover",
	Doc:  "require every field of snapshot/checkpoint state structs to be encoded and decoded",
	Run:  run,
}

// snapshotFiles are the base names whose struct declarations are treated as
// checkpoint state images.
var snapshotFiles = map[string]bool{
	"snapshot.go":   true,
	"checkpoint.go": true,
}

// fieldState tracks one struct field's coverage.
type fieldState struct {
	structName string
	fieldName  string
	pos        token.Pos
	written    bool
	read       bool
}

func run(pass *analysis.Pass) error {
	// Pass 1: collect the state structs declared in snapshot/checkpoint
	// files, keyed by the types.Var of each field, plus the named types so
	// unkeyed composite literals can be resolved.
	fields := make(map[*types.Var]*fieldState)
	structFields := make(map[*types.TypeName][]*types.Var)
	var order []*fieldState

	for _, file := range pass.Files {
		base := filepath.Base(pass.Fset.Position(file.Pos()).Filename)
		if !snapshotFiles[base] {
			continue
		}
		ast.Inspect(file, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			tn, ok := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
			if !ok {
				return true
			}
			for _, fld := range st.Fields.List {
				for _, name := range fld.Names {
					if name.Name == "_" {
						continue
					}
					v, ok := pass.TypesInfo.Defs[name].(*types.Var)
					if !ok {
						continue
					}
					fs := &fieldState{structName: ts.Name.Name, fieldName: name.Name, pos: name.Pos()}
					fields[v] = fs
					structFields[tn] = append(structFields[tn], v)
					order = append(order, fs)
				}
			}
			return true
		})
	}
	if len(fields) == 0 {
		return nil
	}

	// Pass 2: scan the whole package for reads and writes of those fields.
	for _, file := range pass.Files {
		// Selectors appearing as assignment targets are writes (and also
		// reads for compound assignment); everything else is a read.
		writeSel := make(map[*ast.SelectorExpr]token.Token)
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range stmt.Lhs {
					if sel, ok := lhs.(*ast.SelectorExpr); ok {
						writeSel[sel] = stmt.Tok
					}
				}
			case *ast.IncDecStmt:
				if sel, ok := stmt.X.(*ast.SelectorExpr); ok {
					writeSel[sel] = token.ADD_ASSIGN
				}
			}
			return true
		})

		ast.Inspect(file, func(n ast.Node) bool {
			switch node := n.(type) {
			case *ast.SelectorExpr:
				selection, ok := pass.TypesInfo.Selections[node]
				if !ok || selection.Kind() != types.FieldVal {
					return true
				}
				v, ok := selection.Obj().(*types.Var)
				if !ok {
					return true
				}
				fs, tracked := fields[v]
				if !tracked {
					return true
				}
				if tok, isWrite := writeSel[node]; isWrite {
					fs.written = true
					if tok != token.ASSIGN {
						fs.read = true
					}
				} else {
					fs.read = true
				}
			case *ast.CompositeLit:
				markCompositeLit(pass, node, fields, structFields)
			}
			return true
		})
	}

	for _, fs := range order {
		if !fs.written {
			pass.Reportf(fs.pos,
				"field %s.%s is never populated by a snapshot encoder in this package; checkpoints will silently drop it", fs.structName, fs.fieldName)
		}
		if !fs.read {
			pass.Reportf(fs.pos,
				"field %s.%s is never consumed by a snapshot decoder in this package; resume will silently ignore it", fs.structName, fs.fieldName)
		}
	}
	return nil
}

// markCompositeLit records field writes made through struct literals:
// keyed elements write the named fields, unkeyed literals of a state struct
// write every field.
func markCompositeLit(pass *analysis.Pass, lit *ast.CompositeLit, fields map[*types.Var]*fieldState, structFields map[*types.TypeName][]*types.Var) {
	keyed := false
	for _, elt := range lit.Elts {
		kv, ok := elt.(*ast.KeyValueExpr)
		if !ok {
			continue
		}
		keyed = true
		key, ok := kv.Key.(*ast.Ident)
		if !ok {
			continue
		}
		if v, ok := pass.TypesInfo.Uses[key].(*types.Var); ok {
			if fs, tracked := fields[v]; tracked {
				fs.written = true
			}
		}
	}
	if keyed || len(lit.Elts) == 0 {
		return
	}
	// Unkeyed literal: resolve the literal's type and mark all fields.
	tv, ok := pass.TypesInfo.Types[lit]
	if !ok {
		return
	}
	t := tv.Type
	if ptr, isPtr := t.Underlying().(*types.Pointer); isPtr {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return
	}
	for _, v := range structFields[named.Obj()] {
		if fs, tracked := fields[v]; tracked {
			fs.written = true
		}
	}
}
