package oo7

import (
	"fmt"
	"sort"
	"strings"

	"odbgc/internal/objstore"
)

// Info summarizes the generated database structure: the derived quantities
// the paper reports around Table 1 (database size in the 3.7–7.9 MB band
// across connectivities, mean object size, mean connectivity ≈ 4).
type Info struct {
	Params        Params
	Objects       int
	Bytes         int
	AvgObjectSize float64
	// AvgInDegree is the mean number of pointers referencing an object,
	// over all objects (the paper's "connectivity").
	AvgInDegree float64
	// AvgAtomicInDegree restricts the mean to atomic parts (≈ 1 composite
	// reference + NumConnPerAtomic incoming connections).
	AvgAtomicInDegree float64
	ByClass           map[objstore.Class]objstore.ClassStats
}

// Info computes structure statistics from the generator's mirror graph.
// Call after GenDB for the freshly generated database, or later for the
// current state (including garbage not yet collected).
func (g *Generator) Info() Info {
	st := g.st.Stats()
	in := g.st.InDegrees()
	var total, atomicTotal, atomicCount int
	g.st.ForEach(func(o *objstore.Object) {
		total += in[o.OID]
		if o.Class == objstore.ClassAtomicPart {
			atomicTotal += in[o.OID]
			atomicCount++
		}
	})
	info := Info{
		Params:        g.p,
		Objects:       st.Objects,
		Bytes:         st.TotalBytes,
		AvgObjectSize: g.st.AverageObjectSize(),
		ByClass:       st.ByClass,
	}
	if st.Objects > 0 {
		info.AvgInDegree = float64(total) / float64(st.Objects)
	}
	if atomicCount > 0 {
		info.AvgAtomicInDegree = float64(atomicTotal) / float64(atomicCount)
	}
	return info
}

// String renders the info as a small report.
func (i Info) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "OO7 database: %d objects, %.2f MB, avg object %.1f B\n",
		i.Objects, float64(i.Bytes)/(1<<20), i.AvgObjectSize)
	fmt.Fprintf(&b, "connectivity: avg in-degree %.2f (atomic parts %.2f)\n",
		i.AvgInDegree, i.AvgAtomicInDegree)
	classes := make([]objstore.Class, 0, len(i.ByClass))
	for c := range i.ByClass {
		classes = append(classes, c)
	}
	sort.Slice(classes, func(a, b int) bool { return classes[a] < classes[b] })
	for _, c := range classes {
		cs := i.ByClass[c]
		fmt.Fprintf(&b, "  %-12s %6d objects %10d bytes\n", c.String(), cs.Count, cs.Bytes)
	}
	return b.String()
}
