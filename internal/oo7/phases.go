package oo7

import (
	"fmt"

	"odbgc/internal/objstore"
)

// deletion records what a delete-half pass vacated in one composite, so the
// reinsertion pass can refill exactly those slots.
type deletion struct {
	comp      *compositeState
	partSlots []int // vacated part indices (composite slot = index+1)
	rewires   []connSlot
}

// connSlot identifies a vacated connection slot of a surviving atomic part.
type connSlot struct {
	part objstore.OID
	slot int
}

// Reorg1 deletes half the atomic parts of every composite and reinserts
// them composite by composite, so each composite's replacement parts are
// allocated together (clustering preserved).
func (g *Generator) Reorg1() error {
	return g.reorg(PhaseReorg1, true)
}

// Reorg2 deletes half the atomic parts of every composite, then reinserts
// them round-robin across composites, breaking the co-location of a
// composite's parts (the paper's declustering reorganization).
func (g *Generator) Reorg2() error {
	return g.reorg(PhaseReorg2, false)
}

func (g *Generator) reorg(label string, clustered bool) error {
	if !g.built[PhaseGenDB] {
		return fmt.Errorf("oo7: %s requires GenDB first", label)
	}
	if g.built[label] {
		return fmt.Errorf("oo7: %s already generated", label)
	}
	g.built[label] = true
	g.emitPhase(label)

	if clustered {
		for _, mod := range g.modules {
			for _, c := range mod.composites {
				d := g.deleteHalf(c)
				for _, slot := range d.partSlots {
					g.insertPart(c, slot)
				}
				g.rewire(d)
			}
		}
		return g.err
	}

	// Declustered: process composites in batches — delete across the whole
	// batch, then interleave reinsertions round-robin so consecutive
	// allocations belong to different composites and a composite's
	// replacement parts scatter over partitions.
	all := make([]*compositeState, 0, len(g.modules)*g.p.NumCompPerModule)
	for _, mod := range g.modules {
		all = append(all, mod.composites...)
	}
	batch := g.p.declusterBatch()
	for start := 0; start < len(all); start += batch {
		end := start + batch
		if end > len(all) {
			end = len(all)
		}
		var dels []deletion
		maxSlots := 0
		for _, c := range all[start:end] {
			d := g.deleteHalf(c)
			dels = append(dels, d)
			if len(d.partSlots) > maxSlots {
				maxSlots = len(d.partSlots)
			}
		}
		for round := 0; round < maxSlots; round++ {
			for _, d := range dels {
				if round < len(d.partSlots) {
					g.insertPart(d.comp, d.partSlots[round])
				}
			}
		}
		for _, d := range dels {
			g.rewire(d)
		}
	}
	return g.err
}

// deleteHalf removes half of a composite's current atomic parts: the
// composite's slots to the victims are overwritten to nil, and surviving
// parts' connections that target victims are severed. Victims, their owned
// connections, and the severed connections become garbage — often as
// clusters released by a single final overwrite, reproducing the paper's
// observation that individual overwrites can detach large structures.
func (g *Generator) deleteHalf(c *compositeState) deletion {
	d := deletion{comp: c}

	// Optionally replace the document: one overwrite disconnecting one
	// large object (or segment chain, in larger configurations).
	if g.p.DocReplaceProb > 0 && g.rng.Float64() < g.p.DocReplaceProb {
		c.doc = g.createDocument(c, func(head objstore.OID) {
			g.overwrite(c.oid, 0, head, c)
		})
	}

	//lint:allow hotalloc sized exactly per delete pass, bounded by parts-per-composite
	current := make([]int, 0, len(c.parts))
	for i, p := range c.parts {
		if !p.IsNil() {
			current = append(current, i)
		}
	}
	k := len(current) / 2
	if k == 0 {
		return d
	}
	g.rng.Shuffle(len(current), func(i, j int) { current[i], current[j] = current[j], current[i] })
	victims := current[:k]
	victimSet := make(map[objstore.OID]struct{}, k)
	victimOIDs := g.victimScratch[:0]
	for _, idx := range victims {
		victimSet[c.parts[idx]] = struct{}{}
		victimOIDs = append(victimOIDs, c.parts[idx])
	}
	g.victimScratch = victimOIDs

	// Deletion order matters: all stores into a victim must happen while it
	// is still reachable (the application's delete traversal holds it),
	// and the composite-slot overwrite comes last, releasing each victim
	// cluster in one final severing store.
	//
	// First, sever victims' connections to other victims. The application's
	// delete of a part disconnects it fully; without this, declustered
	// victims form dead cycles spanning partitions, which a partitioned
	// collector can never reclaim (pointers leaving the collected partition
	// are not traversed, and each side of the cycle keeps the other's
	// remembered-set entry alive). Victims' connections to surviving parts
	// are left in place — they die with their owner and point only at live
	// objects, so they pin nothing.
	for _, victim := range victimOIDs {
		slots := g.obj(victim).Slots
		for s, conn := range slots {
			if conn.IsNil() {
				continue
			}
			target := g.slot(conn, 0)
			if _, dead := victimSet[target]; dead {
				g.overwrite(victim, s, objstore.NilOID, c)
			}
		}
	}
	// Second, sever survivors' connections into the victim set; those
	// slots are refilled by the reinsertion pass.
	for _, p := range c.parts {
		if p.IsNil() {
			continue
		}
		if _, dead := victimSet[p]; dead {
			continue
		}
		slots := g.obj(p).Slots
		for s, conn := range slots {
			if conn.IsNil() {
				continue
			}
			target := g.slot(conn, 0)
			if _, dead := victimSet[target]; dead {
				g.overwrite(p, s, objstore.NilOID, c)
				d.rewires = append(d.rewires, connSlot{part: p, slot: s})
			}
		}
	}
	// Finally, detach victims from the composite. Each overwrite may
	// release a whole cluster (the part plus its remaining connections).
	for _, idx := range victims {
		g.overwrite(c.oid, 1+idx, objstore.NilOID, c)
		c.parts[idx] = objstore.NilOID
		d.partSlots = append(d.partSlots, idx)
	}
	return d
}

// insertPart creates a replacement atomic part in the given composite slot,
// with a full set of outgoing connections to random current parts.
func (g *Generator) insertPart(c *compositeState, slot int) {
	part := g.create(objstore.ClassAtomicPart, g.p.AtomicBytes, g.p.NumConnPerAtomic)
	g.overwrite(c.oid, 1+slot, part, nil)
	c.parts[slot] = part
	c.scope[part] = struct{}{}
	for k := 0; k < g.p.NumConnPerAtomic; k++ {
		target := g.randCurrentPartExcept(c, part)
		conn := g.create(objstore.ClassConnection, g.p.ConnBytes, 1)
		g.initStore(conn, 0, target)
		g.initStore(part, k, conn)
		c.scope[conn] = struct{}{}
	}
}

// rewire restores the out-degree of surviving parts whose connections were
// severed, pointing new connections at random current parts.
func (g *Generator) rewire(d deletion) {
	c := d.comp
	for _, r := range d.rewires {
		target := g.randCurrentPartExcept(c, r.part)
		conn := g.create(objstore.ClassConnection, g.p.ConnBytes, 1)
		g.initStore(conn, 0, target)
		g.overwrite(r.part, r.slot, conn, nil)
		c.scope[conn] = struct{}{}
	}
}

// Traverse emits the read-only depth-first traversal over all atomic parts:
// down the assembly hierarchy, then within each composite following
// connections from its first part, finally touching any parts unreachable
// via connections. No pointers are modified, so the SAGA clock does not
// advance during this phase — no garbage can be created (§4.1.2).
func (g *Generator) Traverse() error {
	if !g.built[PhaseGenDB] {
		return fmt.Errorf("oo7: Traverse requires GenDB first")
	}
	if g.built[PhaseTraverse] {
		return fmt.Errorf("oo7: Traverse already generated")
	}
	g.built[PhaseTraverse] = true
	g.emitPhase(PhaseTraverse)

	visitedComp := make(map[objstore.OID]bool)
	sinceUpdate := 0
	for _, mod := range g.modules {
		g.access(mod.oid)
		compByOID := make(map[objstore.OID]*compositeState, len(mod.composites))
		for _, c := range mod.composites {
			compByOID[c.oid] = c
		}
		// DFS over the assembly hierarchy.
		root := g.slot(mod.oid, 1)
		stack := []objstore.OID{root}
		for len(stack) > 0 {
			oid := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.access(oid)
			for i := len(g.obj(oid).Slots) - 1; i >= 0; i-- {
				child := g.obj(oid).Slots[i]
				if child.IsNil() {
					continue
				}
				if c, isComp := compByOID[child]; isComp {
					if !visitedComp[child] {
						visitedComp[child] = true
						g.traverseComposite(c, &sinceUpdate)
					}
					continue
				}
				stack = append(stack, child)
			}
		}
	}
	return g.err
}

func (g *Generator) traverseComposite(c *compositeState, sinceUpdate *int) {
	g.access(c.oid)
	visited := make(map[objstore.OID]bool)
	visitPart := func(p objstore.OID) {
		g.access(p)
		if g.p.TraverseUpdateEvery > 0 {
			*sinceUpdate++
			if *sinceUpdate >= g.p.TraverseUpdateEvery {
				*sinceUpdate = 0
				g.update(p)
			}
		}
	}
	var dfs func(p objstore.OID)
	dfs = func(p objstore.OID) {
		visited[p] = true
		visitPart(p)
		for _, conn := range g.obj(p).Slots {
			if conn.IsNil() {
				continue
			}
			g.access(conn)
			if t := g.slot(conn, 0); !t.IsNil() && !visited[t] {
				dfs(t)
			}
		}
	}
	for _, p := range c.parts {
		if !p.IsNil() && !visited[p] {
			dfs(p)
		}
	}
}
