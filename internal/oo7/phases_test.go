package oo7

import (
	"strings"
	"testing"
	"testing/quick"

	"odbgc/internal/objstore"
	"odbgc/internal/trace"
)

// mustGet fetches an object the test knows exists, failing the test if not.
func mustGet(t *testing.T, st *objstore.Store, oid objstore.OID) *objstore.Object {
	t.Helper()
	o := st.Get(oid)
	if o == nil {
		t.Fatalf("no object %v in store", oid)
	}
	return o
}

func TestPhaseOrderEnforced(t *testing.T) {
	g, err := NewGenerator(SmallPrime(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Reorg1(); err == nil {
		t.Error("Reorg1 before GenDB accepted")
	}
	if err := g.Traverse(); err == nil {
		t.Error("Traverse before GenDB accepted")
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err == nil {
		t.Error("double GenDB accepted")
	}
	if err := g.Reorg1(); err != nil {
		t.Fatal(err)
	}
	if err := g.Reorg1(); err == nil {
		t.Error("double Reorg1 accepted")
	}
}

func TestParamsValidation(t *testing.T) {
	bad := []func(*Params){
		func(p *Params) { p.NumModules = 0 },
		func(p *Params) { p.NumAtomicPerComp = 1 },
		func(p *Params) { p.NumConnPerAtomic = 0 },
		func(p *Params) { p.NumConnPerAtomic = p.NumAtomicPerComp },
		func(p *Params) { p.NumCompPerModule = 0 },
		func(p *Params) { p.NumAssmPerAssm = 0 },
		func(p *Params) { p.NumAssmLevels = 0 },
		func(p *Params) { p.NumCompPerAssm = 0 },
		func(p *Params) { p.DocumentBytes = 0 },
		func(p *Params) { p.AtomicBytes = -1 },
		func(p *Params) { p.DocReplaceProb = 1.5 },
		func(p *Params) { p.TraverseUpdateEvery = -1 },
		func(p *Params) { p.DeclusterBatch = -1 },
		func(p *Params) { p.IdleBetweenPhases = -1 },
		// Too few base-assembly slots to reference every composite.
		func(p *Params) { p.NumAssmLevels = 2; p.NumCompPerModule = 10 },
	}
	for i, mutate := range bad {
		p := SmallPrime(3)
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("bad params #%d accepted", i)
		}
	}
	for _, conn := range []int{3, 6, 9} {
		if err := SmallPrime(conn).Validate(); err != nil {
			t.Errorf("SmallPrime(%d) invalid: %v", conn, err)
		}
		if err := Small(conn).Validate(); err != nil {
			t.Errorf("Small(%d) invalid: %v", conn, err)
		}
	}
}

func TestDerivedCounts(t *testing.T) {
	p := SmallPrime(3)
	if got := p.NumComplexAssemblies(); got != 121 { // 1+3+9+27+81
		t.Errorf("complex assemblies = %d, want 121", got)
	}
	if got := p.NumBaseAssemblies(); got != 243 { // 3^5
		t.Errorf("base assemblies = %d, want 243", got)
	}
	if got := p.ManualSegments(); got != 13 {
		t.Errorf("manual segments = %d, want 13", got)
	}
	s := Small(3)
	if got := s.NumBaseAssemblies(); got != 729 { // 3^6
		t.Errorf("Small base assemblies = %d, want 729", got)
	}
}

func TestSmallVariantBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("Small database is 3.3x larger")
	}
	g, err := NewGenerator(Small(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	info := g.Info()
	if info.ByClass[objstore.ClassCompositePart].Count != 500 {
		t.Errorf("Small composites = %d", info.ByClass[objstore.ClassCompositePart].Count)
	}
	if garb := g.Store().GarbageBytes(); garb != 0 {
		t.Errorf("fresh Small database has %d garbage bytes", garb)
	}
}

// structureInvariants checks the structural properties that must hold after
// any phase: every live atomic part has full out-degree, every composite has
// exactly NumAtomicPerComp live parts, every connection targets a live part
// of the same composite.
func structureInvariants(t *testing.T, g *Generator) {
	t.Helper()
	p := g.Params()
	st := g.Store()
	live := st.Reachable()
	for _, mod := range g.modules {
		for ci, c := range mod.composites {
			liveParts := 0
			for _, part := range c.parts {
				if part.IsNil() {
					continue
				}
				liveParts++
				if _, ok := live[part]; !ok {
					t.Fatalf("composite %d: tracked part %v not reachable", ci, part)
				}
				po := mustGet(t, st, part)
				conns := 0
				for _, conn := range po.Slots {
					if conn.IsNil() {
						t.Fatalf("composite %d: part %v has a vacant connection slot after reorg", ci, part)
					}
					conns++
					target := mustGet(t, st, conn).Slots[0]
					if target.IsNil() {
						t.Fatalf("connection %v has nil target", conn)
					}
					if _, ok := live[target]; !ok {
						t.Fatalf("connection %v targets dead part %v", conn, target)
					}
					if _, inScope := c.scope[target]; !inScope {
						t.Fatalf("connection %v escapes its composite", conn)
					}
				}
				if conns != p.NumConnPerAtomic {
					t.Fatalf("part %v out-degree %d, want %d", part, conns, p.NumConnPerAtomic)
				}
			}
			if liveParts != p.NumAtomicPerComp {
				t.Fatalf("composite %d has %d live parts, want %d", ci, liveParts, p.NumAtomicPerComp)
			}
		}
	}
}

func TestStructureInvariantsAfterEachPhase(t *testing.T) {
	g, err := NewGenerator(SmallPrime(3), 17)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	structureInvariants(t, g)
	if err := g.Reorg1(); err != nil {
		t.Fatal(err)
	}
	structureInvariants(t, g)
	if err := g.Traverse(); err != nil {
		t.Fatal(err)
	}
	structureInvariants(t, g)
	if err := g.Reorg2(); err != nil {
		t.Fatal(err)
	}
	structureInvariants(t, g)
}

// TestReorgConservesLiveSize: reorganizations delete and reinsert the same
// number of parts, so live bytes are unchanged (modulo replaced documents,
// which swap equal sizes).
func TestReorgConservesLiveSize(t *testing.T) {
	g, err := NewGenerator(SmallPrime(3), 23)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	liveBytes := func() int {
		live := g.Store().Reachable()
		n := 0
		for oid := range live {
			n += mustGet(t, g.Store(), oid).Size
		}
		return n
	}
	before := liveBytes()
	if err := g.Reorg1(); err != nil {
		t.Fatal(err)
	}
	after := liveBytes()
	if before != after {
		t.Errorf("live bytes changed across Reorg1: %d -> %d", before, after)
	}
}

func TestTraverseIsReadOnly(t *testing.T) {
	g, err := NewGenerator(SmallPrime(3), 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	mark := g.Trace().Len()
	if err := g.Traverse(); err != nil {
		t.Fatal(err)
	}
	for _, e := range g.Trace().Events[mark:] {
		switch e.Kind {
		case trace.KindAccess, trace.KindPhase:
		default:
			t.Fatalf("Traverse emitted a %v event", e.Kind)
		}
	}
}

func TestTraverseCoversAllParts(t *testing.T) {
	g, err := NewGenerator(SmallPrime(3), 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	mark := g.Trace().Len()
	if err := g.Traverse(); err != nil {
		t.Fatal(err)
	}
	accessed := make(map[objstore.OID]bool)
	for _, e := range g.Trace().Events[mark:] {
		if e.Kind == trace.KindAccess {
			accessed[e.OID] = true
		}
	}
	missing := 0
	g.Store().ForEach(func(o *objstore.Object) {
		if o.Class == objstore.ClassAtomicPart && !accessed[o.OID] {
			missing++
		}
	})
	if missing > 0 {
		t.Errorf("Traverse missed %d atomic parts", missing)
	}
}

func TestTraverseUpdates(t *testing.T) {
	p := SmallPrime(3)
	p.TraverseUpdateEvery = 10
	g, err := NewGenerator(p, 9)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	if err := g.Traverse(); err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(g.Trace())
	if s.Updates == 0 {
		t.Error("TraverseUpdateEvery produced no update events")
	}
}

func TestDocReplaceProbZeroAndOne(t *testing.T) {
	countDocs := func(prob float64) int {
		p := SmallPrime(3)
		p.DocReplaceProb = prob
		g, err := NewGenerator(p, 33)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.GenDB(); err != nil {
			t.Fatal(err)
		}
		if err := g.Reorg1(); err != nil {
			t.Fatal(err)
		}
		docs := 0
		for _, e := range g.Trace().Events {
			if e.Kind == trace.KindOverwrite {
				for _, d := range e.Dead {
					if mustGet(t, g.Store(), d.OID).Class == objstore.ClassDocument {
						docs++
					}
				}
			}
		}
		return docs
	}
	if n := countDocs(0); n != 0 {
		t.Errorf("prob 0 replaced %d documents", n)
	}
	if n := countDocs(1); n != 150 {
		t.Errorf("prob 1 replaced %d documents, want 150", n)
	}
}

func TestDeclusterBatchAffectsLayout(t *testing.T) {
	// With batch 1, Reorg2 degenerates to per-composite processing
	// (clustered); with a large batch the interleaving must differ.
	run := func(batch int) string {
		p := SmallPrime(3)
		p.DeclusterBatch = batch
		g, err := NewGenerator(p, 5)
		if err != nil {
			t.Fatal(err)
		}
		if err := g.GenDB(); err != nil {
			t.Fatal(err)
		}
		if err := g.Reorg2(); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		for _, e := range g.Trace().Events {
			if e.Kind == trace.KindCreate {
				sb.WriteString(e.OID.String())
				sb.WriteByte(',')
			}
		}
		return sb.String()
	}
	if run(1) == run(50) {
		t.Error("batch size has no effect on creation order")
	}
}

// Property: the full trace validates for random parameter variations.
func TestRandomParamsProperty(t *testing.T) {
	f := func(seed int64, connSel, atomics uint8) bool {
		p := SmallPrime(3)
		p.NumAtomicPerComp = 4 + int(atomics%8)
		p.NumConnPerAtomic = 1 + int(connSel)%(p.NumAtomicPerComp-1)
		p.NumCompPerModule = 10
		p.NumAssmLevels = 3
		tr, err := FullTrace(p, seed)
		if err != nil {
			t.Logf("generate: %v", err)
			return false
		}
		if err := trace.Validate(tr); err != nil {
			t.Logf("validate: %v", err)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Error(err)
	}
}

func TestMediumParamsAndSegmentedDocuments(t *testing.T) {
	m := Medium(3)
	if err := m.Validate(); err != nil {
		t.Fatalf("Medium invalid: %v", err)
	}
	if m.DocSegments() < 2 {
		t.Fatalf("Medium documents should need multiple segments, got %d", m.DocSegments())
	}
	// A scaled-down configuration with multi-segment documents must
	// generate, validate, and keep its structure.
	p := SmallPrime(3)
	p.DocumentBytes = 20000 // 3 segments of 7900
	p.NumCompPerModule = 12
	p.NumAssmLevels = 3
	p.DocReplaceProb = 1.0
	g, err := NewGenerator(p, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	info := g.Info()
	if got, want := info.ByClass[objstore.ClassDocument].Count, 12*p.DocSegments(); got != want {
		t.Errorf("document segments = %d, want %d", got, want)
	}
	if info.Objects != p.ExpectedObjects() {
		t.Errorf("objects = %d, want %d", info.Objects, p.ExpectedObjects())
	}
	if err := g.Reorg1(); err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(g.Trace()); err != nil {
		t.Fatalf("segmented-document trace invalid: %v", err)
	}
	// Every composite's document chain was replaced (prob 1): each old
	// chain (3 segments x ~6.7KB) must appear as dead bytes.
	s := trace.ComputeStats(g.Trace())
	if s.GarbageBytes < 12*20000 {
		t.Errorf("garbage %d too small for 12 replaced 20KB documents", s.GarbageBytes)
	}
}

func TestMultiModuleDatabase(t *testing.T) {
	p := SmallPrime(3)
	p.NumModules = 2
	p.NumCompPerModule = 15
	p.NumAssmLevels = 3
	tr, err := FullTrace(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(tr); err != nil {
		t.Fatalf("multi-module trace invalid: %v", err)
	}
	g, err := NewGenerator(p, 6)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	info := g.Info()
	if got := info.ByClass[objstore.ClassModule].Count; got != 2 {
		t.Errorf("modules = %d, want 2", got)
	}
	if got := info.ByClass[objstore.ClassCompositePart].Count; got != 30 {
		t.Errorf("composites = %d, want 30", got)
	}
	if len(g.Store().Roots()) != 2 {
		t.Errorf("roots = %d, want one per module", len(g.Store().Roots()))
	}
}

func TestMediumBuilds(t *testing.T) {
	if testing.Short() {
		t.Skip("Medium database is ~100 MB")
	}
	g, err := NewGenerator(Medium(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	info := g.Info()
	t.Logf("Medium: %d objects, %.1f MB", info.Objects, float64(info.Bytes)/(1<<20))
	if info.Objects != Medium(3).ExpectedObjects() {
		t.Errorf("objects = %d, want %d", info.Objects, Medium(3).ExpectedObjects())
	}
	if mb := float64(info.Bytes) / (1 << 20); mb < 80 || mb > 150 {
		t.Errorf("Medium size %.1f MB outside the expected ~100 MB band", mb)
	}
	if garb := info.Objects - len(g.Store().Reachable()); garb != 0 {
		t.Errorf("fresh Medium database has %d unreachable objects", garb)
	}
}
