package oo7

// This file implements the broader OO7 operation suite (Carey, DeWitt,
// Naughton, SIGMOD'93) beyond the four-phase application the paper
// evaluates: update traversals (T2a/b/c), the sparse traversal T6,
// query-class operations (Q1 lookups, Q4 document lookups, Q7 scan), the
// manual scan (T8), and structural composite replacement. They let users
// compose custom workloads from standard OO7 building blocks; each may be
// invoked repeatedly after GenDB, in any order.

import (
	"fmt"
	"sort"

	"odbgc/internal/objstore"
	"odbgc/internal/trace"
)

// traceOverwrite builds a plain overwrite event.
func traceOverwrite(src objstore.OID, slot int, old, dst objstore.OID) trace.Event {
	return trace.Event{Kind: trace.KindOverwrite, OID: src, Slot: slot, Old: old, New: dst}
}

// deadObject builds one oracle annotation entry.
func deadObject(oid objstore.OID, size int) trace.DeadObject {
	return trace.DeadObject{OID: oid, Size: size}
}

// T2Variant selects the update pattern of a T2 traversal.
type T2Variant byte

// T2 variants, per the OO7 specification.
const (
	// T2A updates one atomic part per composite part.
	T2A T2Variant = 'a'
	// T2B updates every atomic part.
	T2B T2Variant = 'b'
	// T2C updates every atomic part four times.
	T2C T2Variant = 'c'
)

// requireBuilt guards operations that need the database.
func (g *Generator) requireBuilt(op string) error {
	if g.err != nil {
		return g.err
	}
	if !g.built[PhaseGenDB] {
		return fmt.Errorf("oo7: %s requires GenDB first", op)
	}
	return nil
}

// liveComposites returns every composite currently tracked, in slice order.
func (g *Generator) liveComposites() []*compositeState {
	var out []*compositeState
	for _, mod := range g.modules {
		out = append(out, mod.composites...)
	}
	return out
}

// T2 performs the OO7 update traversal: the full T1 walk with non-pointer
// updates to atomic parts per the chosen variant. Updates dirty pages and
// count as application I/O but create no garbage.
func (g *Generator) T2(variant T2Variant) error {
	if err := g.requireBuilt("T2"); err != nil {
		return err
	}
	switch variant {
	case T2A, T2B, T2C:
	default:
		return fmt.Errorf("oo7: unknown T2 variant %q (have a, b, c)", variant)
	}
	g.emitPhase("T2" + string(variant))
	for _, c := range g.liveComposites() {
		g.access(c.oid)
		first := true
		for _, part := range c.parts {
			if part.IsNil() {
				continue
			}
			g.access(part)
			switch {
			case variant == T2A && first:
				g.update(part)
			case variant == T2B:
				g.update(part)
			case variant == T2C:
				for i := 0; i < 4; i++ {
					g.update(part)
				}
			}
			first = false
		}
	}
	return g.err
}

// T6 performs the sparse traversal: the assembly hierarchy down to each
// composite part and its first atomic part only.
func (g *Generator) T6() error {
	if err := g.requireBuilt("T6"); err != nil {
		return err
	}
	g.emitPhase("T6")
	for _, mod := range g.modules {
		g.access(mod.oid)
		root := g.slot(mod.oid, 1)
		stack := []objstore.OID{root}
		visitedComp := make(map[objstore.OID]bool)
		compByOID := make(map[objstore.OID]*compositeState, len(mod.composites))
		for _, c := range mod.composites {
			compByOID[c.oid] = c
		}
		for len(stack) > 0 {
			oid := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			g.access(oid)
			for i := len(g.obj(oid).Slots) - 1; i >= 0; i-- {
				child := g.obj(oid).Slots[i]
				if child.IsNil() {
					continue
				}
				if c, isComp := compByOID[child]; isComp {
					if !visitedComp[child] {
						visitedComp[child] = true
						g.access(c.oid)
						for _, part := range c.parts {
							if !part.IsNil() {
								g.access(part) // root part only
								break
							}
						}
					}
					continue
				}
				stack = append(stack, child)
			}
		}
	}
	return g.err
}

// Q1 performs n exact-match lookups of random atomic parts.
func (g *Generator) Q1(n int) error {
	if err := g.requireBuilt("Q1"); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("oo7: Q1 count %d must be >= 0", n)
	}
	g.emitPhase("Q1")
	comps := g.liveComposites()
	for i := 0; i < n; i++ {
		c := comps[g.rng.Intn(len(comps))]
		g.access(c.parts[g.randPartIndexExcept(c, -1)])
	}
	return g.err
}

// Q4 performs n random document lookups, each touching the document and
// its composite part.
func (g *Generator) Q4(n int) error {
	if err := g.requireBuilt("Q4"); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("oo7: Q4 count %d must be >= 0", n)
	}
	g.emitPhase("Q4")
	comps := g.liveComposites()
	for i := 0; i < n; i++ {
		c := comps[g.rng.Intn(len(comps))]
		g.access(c.doc)
		g.access(c.oid)
	}
	return g.err
}

// Q7 scans every atomic part in the database.
func (g *Generator) Q7() error {
	if err := g.requireBuilt("Q7"); err != nil {
		return err
	}
	g.emitPhase("Q7")
	for _, c := range g.liveComposites() {
		for _, part := range c.parts {
			if !part.IsNil() {
				g.access(part)
			}
		}
	}
	return g.err
}

// ScanManual reads the module manuals segment by segment (OO7's T8).
func (g *Generator) ScanManual() error {
	if err := g.requireBuilt("ScanManual"); err != nil {
		return err
	}
	g.emitPhase("T8")
	for _, mod := range g.modules {
		seg := g.slot(mod.oid, 0)
		for !seg.IsNil() {
			g.access(seg)
			seg = g.slot(seg, 0)
		}
	}
	return g.err
}

// ReplaceComposites performs n structural replacements: a random
// base-assembly slot is repointed at a freshly built composite part. The
// displaced composite loses that reference; when its last reference goes,
// the whole subtree — composite, document, atomic parts, connections —
// becomes garbage in that single overwrite, the largest single-overwrite
// detachment OO7 can produce.
func (g *Generator) ReplaceComposites(n int) error {
	if err := g.requireBuilt("ReplaceComposites"); err != nil {
		return err
	}
	if n < 0 {
		return fmt.Errorf("oo7: ReplaceComposites count %d must be >= 0", n)
	}
	g.emitPhase("Replace")
	for i := 0; i < n; i++ {
		mod := g.modules[g.rng.Intn(len(g.modules))]
		// Pick a random referenced composite and one of its referencing
		// slots, deterministically ordered.
		comps := mod.composites
		old := comps[g.rng.Intn(len(comps))]
		refs := mod.refs[old]
		if len(refs) == 0 {
			continue // already fully displaced earlier this phase
		}
		ref := refs[g.rng.Intn(len(refs))]

		// Sever: the last reference takes the whole subtree with it.
		g.severCompositeRef(mod, old, ref)

		// Build the replacement into the vacated slot.
		nc := g.genComposite(ref.obj, ref.slot)
		mod.refs[nc] = append(mod.refs[nc], ref)
		mod.composites = append(mod.composites, nc)
	}
	return g.err
}

// severCompositeRef overwrites one base-assembly slot referencing c to nil,
// annotating the event with the full subtree when it was the last
// reference, and drops fully-dead composites from the module's tracking.
func (g *Generator) severCompositeRef(mod *moduleState, c *compositeState, ref slotRef) {
	if g.err != nil {
		return
	}
	refs := mod.refs[c]
	kept := refs[:0]
	for _, r := range refs {
		if r != ref {
			kept = append(kept, r)
		}
	}
	mod.refs[c] = kept

	old, err := g.st.SetSlot(ref.obj, ref.slot, objstore.NilOID)
	if err != nil {
		g.setErr(err)
		return
	}
	if old != c.oid {
		g.setErr(fmt.Errorf("oo7: ref bookkeeping out of sync: slot holds %v, expected %v", old, c.oid))
		return
	}
	ev := traceOverwrite(ref.obj, ref.slot, old, objstore.NilOID)
	if len(kept) == 0 {
		// Last reference: composite plus its whole private scope die.
		deadOIDs := make([]objstore.OID, 0, len(c.scope)+1)
		deadOIDs = append(deadOIDs, c.oid)
		for oid := range c.scope {
			deadOIDs = append(deadOIDs, oid)
		}
		sort.Slice(deadOIDs, func(i, j int) bool { return deadOIDs[i] < deadOIDs[j] })
		for _, oid := range deadOIDs {
			ev.Dead = append(ev.Dead, deadObject(oid, g.obj(oid).Size))
		}
		c.scope = map[objstore.OID]struct{}{}
		delete(mod.refs, c)
		for i, cc := range mod.composites {
			if cc == c {
				mod.composites = append(mod.composites[:i], mod.composites[i+1:]...)
				break
			}
		}
	}
	g.tr.Append(ev)
}
