package oo7

import (
	"testing"

	"odbgc/internal/objstore"
	"odbgc/internal/trace"
)

func TestFullTraceValidates(t *testing.T) {
	for _, conn := range []int{3, 6, 9} {
		tr, err := FullTrace(SmallPrime(conn), 1)
		if err != nil {
			t.Fatalf("conn=%d: FullTrace: %v", conn, err)
		}
		if err := trace.Validate(tr); err != nil {
			t.Fatalf("conn=%d: invalid trace: %v", conn, err)
		}
	}
}

func TestTraceStatsShape(t *testing.T) {
	p := SmallPrime(3)
	tr, err := FullTrace(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	s := trace.ComputeStats(tr)
	t.Logf("events=%d creates=%d accesses=%d overwrites=%d init=%d garbage=%dB (%d objects) B/ow=%.1f",
		s.Events, s.Creates, s.Accesses, s.Overwrites, s.InitStores,
		s.GarbageBytes, s.GarbageObjects, s.BytesPerOverwrite)
	if got, want := len(s.Phases), 4; got != want {
		t.Fatalf("phases = %v, want 4", s.Phases)
	}
	for i, want := range Phases {
		if s.Phases[i] != want {
			t.Errorf("phase %d = %q, want %q", i, s.Phases[i], want)
		}
	}
	if s.Overwrites == 0 || s.GarbageBytes == 0 {
		t.Fatalf("trace has no overwrites or garbage: %+v", s)
	}
	// The paper's central §2.1 observation: garbage per overwrite is several
	// times larger than average-object-size/average-connectivity would
	// predict. Check the naive prediction underestimates by at least 2x.
	g, err := NewGenerator(p, 7)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	// §2.1 computes the naive rate from the atomic-part connectivity of
	// ~4: one object's worth of garbage every ~4 overwrites.
	info := g.Info()
	naive := info.AvgObjectSize / info.AvgAtomicInDegree
	if s.BytesPerOverwrite < 2*naive {
		t.Errorf("garbage/overwrite %.1f not >= 2x naive prediction %.1f", s.BytesPerOverwrite, naive)
	}
}

func TestDatabaseInfo(t *testing.T) {
	g, err := NewGenerator(SmallPrime(3), 42)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	info := g.Info()
	t.Logf("\n%s", info)
	if info.Objects != SmallPrime(3).ExpectedObjects() {
		t.Errorf("objects = %d, want %d", info.Objects, SmallPrime(3).ExpectedObjects())
	}
	if info.Bytes != SmallPrime(3).ExpectedBytes() {
		t.Errorf("bytes = %d, want %d", info.Bytes, SmallPrime(3).ExpectedBytes())
	}
	// Atomic parts should have in-degree ≈ 1 + NumConnPerAtomic ≈ 4.
	if info.AvgAtomicInDegree < 3.5 || info.AvgAtomicInDegree > 4.5 {
		t.Errorf("atomic in-degree = %.2f, want ≈ 4", info.AvgAtomicInDegree)
	}
	// Everything must be reachable right after GenDB.
	if garb := g.Store().GarbageBytes(); garb != 0 {
		t.Errorf("fresh database has %d garbage bytes", garb)
	}
	for _, cs := range []struct {
		class objstore.Class
		count int
	}{
		{objstore.ClassModule, 1},
		{objstore.ClassCompositePart, 150},
		{objstore.ClassAtomicPart, 3000},
		{objstore.ClassConnection, 9000},
		{objstore.ClassDocument, 150},
		{objstore.ClassAssembly, 121 + 243},
	} {
		if got := info.ByClass[cs.class].Count; got != cs.count {
			t.Errorf("%v count = %d, want %d", cs.class, got, cs.count)
		}
	}
}

func TestDeterminism(t *testing.T) {
	a, err := FullTrace(SmallPrime(3), 99)
	if err != nil {
		t.Fatal(err)
	}
	b, err := FullTrace(SmallPrime(3), 99)
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != b.Len() {
		t.Fatalf("lengths differ: %d vs %d", a.Len(), b.Len())
	}
	for i := range a.Events {
		ea, eb := a.Events[i], b.Events[i]
		if ea.Kind != eb.Kind || ea.OID != eb.OID || ea.Slot != eb.Slot ||
			ea.Old != eb.Old || ea.New != eb.New || len(ea.Dead) != len(eb.Dead) {
			t.Fatalf("event %d differs: %v vs %v", i, ea.String(), eb.String())
		}
	}
	c, err := FullTrace(SmallPrime(3), 100)
	if err != nil {
		t.Fatal(err)
	}
	same := c.Len() == a.Len()
	if same {
		for i := range a.Events {
			if a.Events[i].String() != c.Events[i].String() {
				same = false
				break
			}
		}
	}
	if same {
		t.Error("different seeds produced identical traces")
	}
}
