package oo7

import (
	"testing"

	"odbgc/internal/objstore"
	"odbgc/internal/trace"
)

// builtGenerator returns a generator with a small database built.
func builtGenerator(t *testing.T) *Generator {
	t.Helper()
	p := SmallPrime(3)
	p.NumCompPerModule = 20
	p.NumAssmLevels = 4
	g, err := NewGenerator(p, 11)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.GenDB(); err != nil {
		t.Fatal(err)
	}
	return g
}

// opStats summarizes the events emitted after a mark.
func opStats(g *Generator, mark int) trace.Stats {
	sub := &trace.Trace{Events: g.Trace().Events[mark:]}
	return trace.ComputeStats(sub)
}

func TestOpsRequireGenDB(t *testing.T) {
	g, err := NewGenerator(SmallPrime(3), 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.T2(T2A); err == nil {
		t.Error("T2 before GenDB accepted")
	}
	if err := g.Q1(5); err == nil {
		t.Error("Q1 before GenDB accepted")
	}
	if err := g.ReplaceComposites(1); err == nil {
		t.Error("ReplaceComposites before GenDB accepted")
	}
}

func TestT2Variants(t *testing.T) {
	g := builtGenerator(t)
	nComps := 20
	nParts := nComps * g.Params().NumAtomicPerComp

	for _, tc := range []struct {
		variant     T2Variant
		wantUpdates int
	}{
		{T2A, nComps},
		{T2B, nParts},
		{T2C, 4 * nParts},
	} {
		mark := g.Trace().Len()
		if err := g.T2(tc.variant); err != nil {
			t.Fatal(err)
		}
		s := opStats(g, mark)
		if s.Updates != tc.wantUpdates {
			t.Errorf("T2%c updates = %d, want %d", tc.variant, s.Updates, tc.wantUpdates)
		}
		if s.Overwrites != 0 || s.GarbageBytes != 0 {
			t.Errorf("T2%c mutated pointers", tc.variant)
		}
	}
	if err := g.T2('z'); err == nil {
		t.Error("unknown T2 variant accepted")
	}
}

func TestT6TouchesRootPartsOnly(t *testing.T) {
	g := builtGenerator(t)
	mark := g.Trace().Len()
	if err := g.T6(); err != nil {
		t.Fatal(err)
	}
	s := opStats(g, mark)
	// module + assemblies + per composite (access + one part). Far fewer
	// accesses than a full traversal.
	if s.Updates != 0 || s.Overwrites != 0 {
		t.Error("T6 performed writes")
	}
	full := builtGenerator(t)
	fmark := full.Trace().Len()
	if err := full.Traverse(); err != nil {
		t.Fatal(err)
	}
	fs := opStats(full, fmark)
	if s.Accesses >= fs.Accesses/3 {
		t.Errorf("T6 accesses (%d) not sparse vs full traversal (%d)", s.Accesses, fs.Accesses)
	}
}

func TestQueries(t *testing.T) {
	g := builtGenerator(t)

	mark := g.Trace().Len()
	if err := g.Q1(25); err != nil {
		t.Fatal(err)
	}
	if s := opStats(g, mark); s.Accesses != 25 {
		t.Errorf("Q1 accesses = %d, want 25", s.Accesses)
	}

	mark = g.Trace().Len()
	if err := g.Q4(10); err != nil {
		t.Fatal(err)
	}
	if s := opStats(g, mark); s.Accesses != 20 { // doc + composite each
		t.Errorf("Q4 accesses = %d, want 20", s.Accesses)
	}

	mark = g.Trace().Len()
	if err := g.Q7(); err != nil {
		t.Fatal(err)
	}
	if s := opStats(g, mark); s.Accesses != 20*g.Params().NumAtomicPerComp {
		t.Errorf("Q7 accesses = %d, want %d", s.Accesses, 20*g.Params().NumAtomicPerComp)
	}

	mark = g.Trace().Len()
	if err := g.ScanManual(); err != nil {
		t.Fatal(err)
	}
	if s := opStats(g, mark); s.Accesses != g.Params().ManualSegments() {
		t.Errorf("T8 accesses = %d, want %d segments", s.Accesses, g.Params().ManualSegments())
	}

	if err := g.Q1(-1); err == nil {
		t.Error("negative Q1 count accepted")
	}
	if err := g.Q4(-1); err == nil {
		t.Error("negative Q4 count accepted")
	}
}

func TestReplaceCompositesCreatesSubtreeGarbage(t *testing.T) {
	g := builtGenerator(t)
	mark := g.Trace().Len()
	if err := g.ReplaceComposites(30); err != nil {
		t.Fatal(err)
	}
	s := opStats(g, mark)
	if s.GarbageBytes == 0 {
		t.Fatal("replacements created no garbage")
	}
	// Some displacement must have severed a composite's last reference,
	// releasing a whole subtree (> 10 KB) in one overwrite.
	foundBig := false
	for _, e := range g.Trace().Events[mark:] {
		if e.Kind == trace.KindOverwrite && e.DeadBytes() > 10000 {
			foundBig = true
			// The dead set must include exactly one composite part object.
			comps := 0
			for _, d := range e.Dead {
				if mustGet(t, g.Store(), d.OID).Class == objstore.ClassCompositePart {
					comps++
				}
			}
			if comps != 1 {
				t.Errorf("big detachment contains %d composite objects", comps)
			}
		}
	}
	if !foundBig {
		t.Error("no single-overwrite subtree detachment observed over 30 replacements")
	}
	// The whole trace, including structural churn, must stay consistent.
	if err := trace.Validate(g.Trace()); err != nil {
		t.Fatalf("trace invalid after replacements: %v", err)
	}
}

func TestOpsComposeWithPhases(t *testing.T) {
	g := builtGenerator(t)
	if err := g.ReplaceComposites(10); err != nil {
		t.Fatal(err)
	}
	if err := g.Reorg1(); err != nil {
		t.Fatal(err)
	}
	if err := g.T2(T2A); err != nil {
		t.Fatal(err)
	}
	if err := g.Traverse(); err != nil {
		t.Fatal(err)
	}
	if err := g.ReplaceComposites(10); err != nil {
		t.Fatal(err)
	}
	if err := g.Reorg2(); err != nil {
		t.Fatal(err)
	}
	if err := trace.Validate(g.Trace()); err != nil {
		t.Fatalf("composed workload invalid: %v", err)
	}
	structureInvariants(t, g)
}
