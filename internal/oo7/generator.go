package oo7

import (
	"fmt"
	"math/rand"
	"slices"

	"odbgc/internal/objstore"
	"odbgc/internal/trace"
)

// Slot layout per class:
//
//	module:     [0] manual head, [1] root assembly
//	manual seg: [0] next segment (nil for last)
//	complex assembly: [0..NumAssmPerAssm)  child assemblies
//	base assembly:    [0..NumCompPerAssm)  composite parts
//	composite:  [0] document, [1..NumAtomicPerComp] atomic parts
//	atomic:     [0..NumConnPerAtomic) owned connections
//	connection: [0] target atomic part
//	document:   no slots

// Phase labels emitted in the trace, in application order (Figure 2).
const (
	PhaseGenDB    = "GenDB"
	PhaseReorg1   = "Reorg1"
	PhaseTraverse = "Traverse"
	PhaseReorg2   = "Reorg2"
)

// Phases lists the four phases in order.
var Phases = []string{PhaseGenDB, PhaseReorg1, PhaseTraverse, PhaseReorg2}

// Generator synthesizes the OO7 application trace. It maintains an exact
// mirror of the object graph so every overwrite event carries the precise
// set of objects it disconnected.
//
// The generator emits events in strict top-down construction order: every
// new object is wired to an already-reachable parent by the event(s)
// immediately following its creation, so the only moments the graph is
// inconsistent are directly after a create or initializing store. The
// simulator treats those moments as collection-unsafe.
type Generator struct {
	p   Params
	rng *rand.Rand
	tr  *trace.Trace
	st  *objstore.Store

	modules []*moduleState
	built   map[string]bool // phases already generated

	// err records the first internal-consistency failure (a store refusing
	// an operation the generator believed legal, bookkeeping out of sync).
	// Once set, the emission helpers become no-ops and the phase method in
	// progress returns the error; the trace generated so far must be
	// discarded.
	err error

	// deadScratch is scopeDead's reusable dead-OID buffer; victimScratch is
	// deleteHalf's reusable victim list. They are distinct because deleteHalf
	// emits overwrites (which run scopeDead) while its victim list is live.
	deadScratch   []objstore.OID
	victimScratch []objstore.OID
}

type moduleState struct {
	oid        objstore.OID
	composites []*compositeState
	// refs tracks which base-assembly slots reference each composite, so
	// structural operations (ReplaceComposites) can sever them and detect
	// when a composite becomes unreachable.
	refs map[*compositeState][]slotRef
}

// slotRef identifies one pointer slot of one object.
type slotRef struct {
	obj  objstore.OID
	slot int
}

type compositeState struct {
	oid   objstore.OID
	doc   objstore.OID
	parts []objstore.OID // index i ↔ composite slot i+1; nil = vacant
	// scope holds the composite's private objects (document, atomic parts,
	// connections) that have not yet been declared garbage. Reachability
	// within the composite is decidable locally because private objects
	// are only ever referenced from within the composite.
	scope map[objstore.OID]struct{}
}

// NewGenerator returns a generator for the given parameters and seed.
func NewGenerator(p Params, seed int64) (*Generator, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return &Generator{
		p:     p,
		rng:   rand.New(rand.NewSource(seed)),
		tr:    &trace.Trace{},
		st:    objstore.NewStore(),
		built: make(map[string]bool),
	}, nil
}

// Trace returns the trace generated so far.
func (g *Generator) Trace() *trace.Trace { return g.tr }

// Store exposes the generator's mirror object graph (for tests and stats).
func (g *Generator) Store() *objstore.Store { return g.st }

// Params returns the generator's parameters.
func (g *Generator) Params() Params { return g.p }

// Err returns the first internal-consistency error the generator hit, or
// nil. Every phase method also returns it, so callers that check phase
// errors never need Err directly.
func (g *Generator) Err() error { return g.err }

// setErr records the first failure; later calls keep the original.
func (g *Generator) setErr(err error) {
	if g.err == nil && err != nil {
		g.err = err
	}
}

// obj returns the generator's mirror object for oid. A missing object is a
// generator bug: the error is recorded and an empty object returned so the
// caller proceeds harmlessly until the phase method surfaces the error.
func (g *Generator) obj(oid objstore.OID) *objstore.Object {
	if o := g.st.Get(oid); o != nil {
		return o
	}
	g.setErr(fmt.Errorf("oo7: no object %v in generator mirror", oid))
	return &emptyObject
}

// emptyObject is the shared harmless stand-in obj returns after recording a
// missing-object error; callers only read it.
var emptyObject objstore.Object

// slot returns slot i of oid's mirror object, recording an error and
// returning NilOID when the object or slot is missing. Traversal loops stop
// naturally on NilOID, so a recorded error unwinds without further damage.
func (g *Generator) slot(oid objstore.OID, i int) objstore.OID {
	o := g.obj(oid)
	if i < 0 || i >= len(o.Slots) {
		g.setErr(fmt.Errorf("oo7: object %v has no slot %d", oid, i))
		return objstore.NilOID
	}
	return o.Slots[i]
}

// FullTrace runs all four phases and returns the trace.
func FullTrace(p Params, seed int64) (*trace.Trace, error) {
	g, err := NewGenerator(p, seed)
	if err != nil {
		return nil, err
	}
	if err := g.GenDB(); err != nil {
		return nil, err
	}
	if err := g.Reorg1(); err != nil {
		return nil, err
	}
	if err := g.Traverse(); err != nil {
		return nil, err
	}
	if err := g.Reorg2(); err != nil {
		return nil, err
	}
	return g.Trace(), nil
}

// --- event emission helpers -------------------------------------------------

func (g *Generator) emitPhase(label string) {
	// Quiescence precedes every phase after the first, modeling the idle
	// window between workload phases.
	if g.p.IdleBetweenPhases > 0 && label != PhaseGenDB {
		g.tr.Append(trace.Event{Kind: trace.KindIdle, Size: g.p.IdleBetweenPhases})
	}
	g.tr.Append(trace.Event{Kind: trace.KindPhase, Label: label})
}

func (g *Generator) create(class objstore.Class, size, nslots int) objstore.OID {
	if g.err != nil {
		return objstore.NilOID
	}
	o, err := g.st.Create(class, size, nslots)
	if err != nil {
		// Generator bug: sizes and slot counts are generator-computed.
		g.setErr(err)
		return objstore.NilOID
	}
	g.tr.Append(trace.Event{
		Kind: trace.KindCreate, OID: o.OID, Class: class, Size: size, Slots: nslots,
	})
	return o.OID
}

func (g *Generator) access(oid objstore.OID) {
	if g.err != nil {
		return
	}
	g.tr.Append(trace.Event{Kind: trace.KindAccess, OID: oid})
}

func (g *Generator) update(oid objstore.OID) {
	if g.err != nil {
		return
	}
	g.tr.Append(trace.Event{Kind: trace.KindUpdate, OID: oid})
}

func (g *Generator) addRoot(oid objstore.OID) {
	if g.err != nil {
		return
	}
	if err := g.st.AddRoot(oid); err != nil {
		// Generator bug: rooting an object it did not create.
		g.setErr(err)
		return
	}
	g.tr.Append(trace.Event{Kind: trace.KindRoot, OID: oid, Size: 1})
}

// initStore wires a slot during construction of new structure. The old
// value must be nil and no garbage can result.
func (g *Generator) initStore(src objstore.OID, slot int, dst objstore.OID) {
	if g.err != nil {
		return
	}
	old, err := g.st.SetSlot(src, slot, dst)
	if err != nil {
		g.setErr(err)
		return
	}
	if !old.IsNil() {
		g.setErr(fmt.Errorf("oo7: init store over non-nil slot %v[%d]", src, slot))
		return
	}
	g.tr.Append(trace.Event{
		Kind: trace.KindOverwrite, OID: src, Slot: slot, Old: objstore.NilOID, New: dst, Init: true,
	})
}

// overwrite performs a real pointer overwrite. If scope is non-nil the
// overwrite may disconnect objects private to that composite; the newly
// unreachable ones are computed exactly and attached as the oracle
// annotation.
func (g *Generator) overwrite(src objstore.OID, slot int, dst objstore.OID, scope *compositeState) {
	if g.err != nil {
		return
	}
	old, err := g.st.SetSlot(src, slot, dst)
	if err != nil {
		g.setErr(err)
		return
	}
	e := trace.Event{Kind: trace.KindOverwrite, OID: src, Slot: slot, Old: old, New: dst}
	if scope != nil {
		e.Dead = g.scopeDead(scope)
	}
	g.tr.Append(e)
}

// scopeDead recomputes reachability of the composite's private objects and
// returns (and retires) the ones that just became unreachable.
func (g *Generator) scopeDead(c *compositeState) []trace.DeadObject {
	visited := map[objstore.OID]struct{}{c.oid: {}}
	stack := []objstore.OID{c.oid}
	for len(stack) > 0 {
		oid := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, t := range g.obj(oid).Slots {
			if t.IsNil() {
				continue
			}
			if _, inScope := c.scope[t]; !inScope {
				continue
			}
			if _, seen := visited[t]; seen {
				continue
			}
			visited[t] = struct{}{}
			stack = append(stack, t)
		}
	}
	deadOIDs := g.deadScratch[:0]
	for oid := range c.scope {
		if _, ok := visited[oid]; !ok {
			deadOIDs = append(deadOIDs, oid)
		}
	}
	g.deadScratch = deadOIDs
	if len(deadOIDs) == 0 {
		return nil
	}
	slices.Sort(deadOIDs)
	//lint:allow hotalloc the dead list is retained by the emitted trace event
	dead := make([]trace.DeadObject, len(deadOIDs))
	for i, oid := range deadOIDs {
		dead[i] = trace.DeadObject{OID: oid, Size: g.obj(oid).Size}
		delete(c.scope, oid)
	}
	return dead
}

// --- GenDB -------------------------------------------------------------------

// GenDB generates the initial database: modules, manuals, assembly
// hierarchies, and composite parts with their atomic parts, connections and
// documents. Construction is strictly top-down from the rooted module.
func (g *Generator) GenDB() error {
	if g.built[PhaseGenDB] {
		return fmt.Errorf("oo7: GenDB already generated")
	}
	g.built[PhaseGenDB] = true
	g.emitPhase(PhaseGenDB)

	for m := 0; m < g.p.NumModules; m++ {
		g.modules = append(g.modules, g.genModule())
	}
	return g.err
}

func (g *Generator) genModule() *moduleState {
	//lint:allow hotalloc module state is retained for the life of the generated database
	mod := &moduleState{refs: make(map[*compositeState][]slotRef)}
	mod.oid = g.create(objstore.ClassModule, g.p.ModuleBytes, 2)
	g.addRoot(mod.oid)

	g.genManual(mod.oid)

	// Assign composite parts to base assembly slots before building: the
	// first NumCompPerModule slots cover every composite index once (so no
	// composite is born garbage), the rest are uniform random.
	nBase := g.p.NumBaseAssemblies()
	slots := nBase * g.p.NumCompPerAssm // >= NumCompPerModule, per Params.Validate
	//lint:allow hotalloc one assignment table per module; modules are few
	assign := make([]int, slots)
	for i := range assign {
		if i < g.p.NumCompPerModule {
			assign[i] = i
		} else {
			assign[i] = g.rng.Intn(g.p.NumCompPerModule)
		}
	}
	g.rng.Shuffle(len(assign), func(i, j int) { assign[i], assign[j] = assign[j], assign[i] })

	//lint:allow hotalloc retained for the life of the generated database
	mod.composites = make([]*compositeState, g.p.NumCompPerModule)

	// Build the assembly tree top-down, breadth-first. Complex assemblies
	// occupy levels 1..NumAssmLevels-1; the last level is base assemblies.
	root := g.create(objstore.ClassAssembly, g.p.AssemblyBytes, g.assemblySlots(1))
	g.overwrite(mod.oid, 1, root, nil)
	frontier := []objstore.OID{root}
	nextSlot := 0
	for level := 2; level <= g.p.NumAssmLevels; level++ {
		//lint:allow hotalloc one exactly-sized frontier per assembly level; levels are few
		next := make([]objstore.OID, 0, len(frontier)*g.p.NumAssmPerAssm)
		for _, parent := range frontier {
			for k := 0; k < g.p.NumAssmPerAssm; k++ {
				child := g.create(objstore.ClassAssembly, g.p.AssemblyBytes, g.assemblySlots(level))
				g.overwrite(parent, k, child, nil)
				next = append(next, child)
			}
		}
		frontier = next
	}
	if g.p.NumAssmLevels == 1 {
		// Degenerate single-level hierarchy: the root is the sole base.
		frontier = []objstore.OID{root}
	}
	// frontier now holds the base assemblies; wire composites, building
	// each composite at its first reference.
	for _, base := range frontier {
		for k := 0; k < g.p.NumCompPerAssm; k++ {
			idx := assign[nextSlot]
			nextSlot++
			if mod.composites[idx] == nil {
				mod.composites[idx] = g.genComposite(base, k)
			} else {
				g.overwrite(base, k, mod.composites[idx].oid, nil)
			}
			mod.refs[mod.composites[idx]] = append(mod.refs[mod.composites[idx]],
				slotRef{obj: base, slot: k})
		}
	}
	return mod
}

// assemblySlots returns the slot count of an assembly at the given level
// (1-based; the deepest level holds base assemblies).
func (g *Generator) assemblySlots(level int) int {
	if level == g.p.NumAssmLevels {
		return g.p.NumCompPerAssm
	}
	return g.p.NumAssmPerAssm
}

func (g *Generator) genManual(module objstore.OID) {
	segs := g.p.ManualSegments()
	remaining := g.p.ManualBytes
	var prev objstore.OID
	for i := 0; i < segs; i++ {
		size := g.p.ManualSegBytes
		if size > remaining {
			size = remaining
		}
		remaining -= size
		seg := g.create(objstore.ClassManual, size, 1)
		if i == 0 {
			g.overwrite(module, 0, seg, nil)
		} else {
			g.overwrite(prev, 0, seg, nil)
		}
		prev = seg
	}
}

// genComposite builds one composite part top-down, immediately wired into
// base assembly slot k. All internal wiring is initializing stores.
func (g *Generator) genComposite(base objstore.OID, k int) *compositeState {
	//lint:allow hotalloc composite state is retained for the life of the generated database
	c := &compositeState{
		//lint:allow hotalloc retained with the composite state
		parts: make([]objstore.OID, g.p.NumAtomicPerComp),
		//lint:allow hotalloc retained with the composite state
		scope: make(map[objstore.OID]struct{}),
	}
	c.oid = g.create(objstore.ClassCompositePart, g.p.CompositeBytes, 1+g.p.NumAtomicPerComp)
	g.overwrite(base, k, c.oid, nil)

	c.doc = g.createDocument(c, func(head objstore.OID) {
		g.initStore(c.oid, 0, head)
	})

	for i := 0; i < g.p.NumAtomicPerComp; i++ {
		part := g.create(objstore.ClassAtomicPart, g.p.AtomicBytes, g.p.NumConnPerAtomic)
		g.initStore(c.oid, 1+i, part)
		c.parts[i] = part
		c.scope[part] = struct{}{}
	}
	for i := 0; i < g.p.NumAtomicPerComp; i++ {
		for k := 0; k < g.p.NumConnPerAtomic; k++ {
			target := c.parts[g.randPartIndexExcept(c, i)]
			conn := g.create(objstore.ClassConnection, g.p.ConnBytes, 1)
			g.initStore(conn, 0, target)
			g.initStore(c.parts[i], k, conn)
			c.scope[conn] = struct{}{}
		}
	}
	return c
}

// createDocument creates a composite's document as a chain of page-sized
// segments (larger OO7 configurations have documents exceeding a page), all
// registered in the composite's scope. wireHead attaches the head segment
// to its reachable parent immediately after creation; subsequent segments
// chain off the previous one. Returns the head segment.
func (g *Generator) createDocument(c *compositeState, wireHead func(objstore.OID)) objstore.OID {
	segBytes := g.p.ManualSegBytes
	remaining := g.p.DocumentBytes
	var head, prev objstore.OID
	for remaining > 0 {
		size := segBytes
		if size > remaining {
			size = remaining
		}
		remaining -= size
		seg := g.create(objstore.ClassDocument, size, 1)
		c.scope[seg] = struct{}{}
		if head.IsNil() {
			head = seg
			wireHead(head)
		} else {
			g.initStore(prev, 0, seg)
		}
		prev = seg
	}
	return head
}

// randPartIndexExcept returns a random index of a non-vacant part slot,
// excluding index self (no self-connections). Params.Validate guarantees at
// least two parts, so rejection sampling converges fast; the deterministic
// scan afterwards only fires — and records an error — if every other slot
// is vacant, which would be a generator bug.
func (g *Generator) randPartIndexExcept(c *compositeState, self int) int {
	for tries := 0; tries < 1000; tries++ {
		i := g.rng.Intn(len(c.parts))
		if i != self && !c.parts[i].IsNil() {
			return i
		}
	}
	for i := range c.parts {
		if i != self && !c.parts[i].IsNil() {
			return i
		}
	}
	g.setErr(fmt.Errorf("oo7: no connectable atomic part found"))
	return 0
}

// randCurrentPartExcept returns a random live part OID, excluding the given
// one. Same convergence argument as randPartIndexExcept.
func (g *Generator) randCurrentPartExcept(c *compositeState, self objstore.OID) objstore.OID {
	for tries := 0; tries < 1000; tries++ {
		i := g.rng.Intn(len(c.parts))
		if !c.parts[i].IsNil() && c.parts[i] != self {
			return c.parts[i]
		}
	}
	for i := range c.parts {
		if !c.parts[i].IsNil() && c.parts[i] != self {
			return c.parts[i]
		}
	}
	g.setErr(fmt.Errorf("oo7: no connectable atomic part found"))
	return objstore.NilOID
}
