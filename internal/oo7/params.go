// Package oo7 synthesizes traces of the OO7 benchmark application used in
// the paper's evaluation: the Small' database of Table 1 driven through the
// four phases of Figure 2 (GenDB, Reorg1, Traverse, Reorg2), the workload
// of Yong, Naughton, Yu with the paper's two modifications (phases 2 and 3
// swapped; Reorg2 deletes half rather than all atomic parts).
//
// The generator maintains its own exact object graph, so every pointer
// overwrite it emits carries the precise set of objects the overwrite made
// unreachable. That oracle channel feeds the simulator's ground-truth
// garbage accounting and the paper's "perfect estimator"; the simulated
// collector never sees it.
package oo7

import "fmt"

// Params are the OO7 database parameters (Table 1) plus the object sizes
// and workload knobs this reproduction adds. All sizes are bytes.
type Params struct {
	// Table 1 parameters.
	NumAtomicPerComp int // atomic parts per composite part
	NumConnPerAtomic int // outgoing connections per atomic part (3/6/9)
	DocumentBytes    int // document size (2000)
	ManualBytes      int // manual size (100 KB)
	NumCompPerModule int // composite parts per module (150 in Small')
	NumAssmPerAssm   int // fan-out of complex assemblies (3)
	NumAssmLevels    int // assembly levels including base level (6 in Small')
	NumCompPerAssm   int // composite parts referenced per base assembly (3)
	NumModules       int // modules (1)

	// Object sizes. Chosen so the Small' database lands near the paper's
	// reported size band with a mean object size near the reported 133
	// bytes; see EXPERIMENTS.md for the calibration.
	AtomicBytes    int
	ConnBytes      int
	CompositeBytes int
	AssemblyBytes  int
	ModuleBytes    int
	ManualSegBytes int // the manual is stored as a chain of segments

	// DocReplaceProb is the probability that a reorganization replaces a
	// composite part's document, modeling the paper's observation that a
	// single overwrite may disconnect very large objects such as OO7
	// document nodes.
	DocReplaceProb float64

	// TraverseUpdateEvery, when > 0, makes the Traverse phase issue an
	// update (non-pointer write) on every Nth atomic part it visits, akin
	// to OO7's T2 traversals. 0 keeps Traverse read-only as in the paper.
	TraverseUpdateEvery int

	// IdleBetweenPhases, when > 0, emits that many quiescence ticks at
	// each phase boundary after GenDB, modeling the idle windows between
	// workload phases that §5's opportunistic extension exploits. 0 (the
	// default) reproduces the paper's always-active workload.
	IdleBetweenPhases int

	// DeclusterBatch controls Reorg2: composites are processed in batches
	// of this size — delete half the parts of every composite in the
	// batch, then reinsert round-robin across the batch, so replacement
	// parts of different composites interleave in allocation order and
	// clustering is broken. Larger batches decluster more but create
	// bigger garbage bursts. Defaults to 10 if zero.
	DeclusterBatch int
}

// SmallPrime returns the paper's Small' parameters (Table 1, first column)
// with the given atomic-part connectivity (3, 6, or 9).
func SmallPrime(connectivity int) Params {
	return Params{
		NumAtomicPerComp: 20,
		NumConnPerAtomic: connectivity,
		DocumentBytes:    2000,
		ManualBytes:      100 * 1024,
		NumCompPerModule: 150,
		NumAssmPerAssm:   3,
		NumAssmLevels:    6,
		NumCompPerAssm:   3,
		NumModules:       1,

		AtomicBytes:    300,
		ConnBytes:      220,
		CompositeBytes: 400,
		AssemblyBytes:  200,
		ModuleBytes:    300,
		ManualSegBytes: 7900,

		DocReplaceProb: 0.2,
	}
}

// Small returns the original OO7 Small parameters (Table 1, second column):
// 500 composite parts per module and 7 assembly levels.
func Small(connectivity int) Params {
	p := SmallPrime(connectivity)
	p.NumCompPerModule = 500
	p.NumAssmLevels = 7
	return p
}

// Medium returns the OO7 Medium parameters (Carey, DeWitt, Naughton,
// SIGMOD'93): 200 atomic parts per composite and 20000-byte documents.
// Roughly 40x the Small' data volume; traces take correspondingly longer to
// generate and replay.
func Medium(connectivity int) Params {
	p := Small(connectivity)
	p.NumAtomicPerComp = 200
	p.DocumentBytes = 20000
	p.ManualBytes = 1 << 20
	return p
}

// Validate checks the parameters for consistency.
func (p Params) Validate() error {
	switch {
	case p.NumModules < 1:
		return fmt.Errorf("oo7: NumModules %d must be >= 1", p.NumModules)
	case p.NumAtomicPerComp < 2:
		return fmt.Errorf("oo7: NumAtomicPerComp %d must be >= 2", p.NumAtomicPerComp)
	case p.NumConnPerAtomic < 1:
		return fmt.Errorf("oo7: NumConnPerAtomic %d must be >= 1", p.NumConnPerAtomic)
	case p.NumConnPerAtomic >= p.NumAtomicPerComp:
		return fmt.Errorf("oo7: NumConnPerAtomic %d must be < NumAtomicPerComp %d (no self-connections)",
			p.NumConnPerAtomic, p.NumAtomicPerComp)
	case p.NumCompPerModule < 1:
		return fmt.Errorf("oo7: NumCompPerModule %d must be >= 1", p.NumCompPerModule)
	case p.NumAssmPerAssm < 1:
		return fmt.Errorf("oo7: NumAssmPerAssm %d must be >= 1", p.NumAssmPerAssm)
	case p.NumAssmLevels < 1:
		return fmt.Errorf("oo7: NumAssmLevels %d must be >= 1", p.NumAssmLevels)
	case p.NumCompPerAssm < 1:
		return fmt.Errorf("oo7: NumCompPerAssm %d must be >= 1", p.NumCompPerAssm)
	case p.DocumentBytes <= 0 || p.ManualBytes <= 0:
		return fmt.Errorf("oo7: document/manual sizes must be positive")
	case p.AtomicBytes <= 0 || p.ConnBytes <= 0 || p.CompositeBytes <= 0 ||
		p.AssemblyBytes <= 0 || p.ModuleBytes <= 0 || p.ManualSegBytes <= 0:
		return fmt.Errorf("oo7: object sizes must be positive")
	case p.DocReplaceProb < 0 || p.DocReplaceProb > 1:
		return fmt.Errorf("oo7: DocReplaceProb %.3f must be in [0,1]", p.DocReplaceProb)
	case p.TraverseUpdateEvery < 0:
		return fmt.Errorf("oo7: TraverseUpdateEvery %d must be >= 0", p.TraverseUpdateEvery)
	case p.DeclusterBatch < 0:
		return fmt.Errorf("oo7: DeclusterBatch %d must be >= 0", p.DeclusterBatch)
	case p.IdleBetweenPhases < 0:
		return fmt.Errorf("oo7: IdleBetweenPhases %d must be >= 0", p.IdleBetweenPhases)
	}
	if slots := p.NumBaseAssemblies() * p.NumCompPerAssm; slots < p.NumCompPerModule {
		return fmt.Errorf("oo7: %d base-assembly slots cannot reference all %d composite parts; raise NumAssmLevels/NumAssmPerAssm/NumCompPerAssm or lower NumCompPerModule",
			slots, p.NumCompPerModule)
	}
	return nil
}

// declusterBatch returns the effective Reorg2 batch size.
func (p Params) declusterBatch() int {
	if p.DeclusterBatch == 0 {
		return 10
	}
	return p.DeclusterBatch
}

// NumComplexAssemblies returns the count of complex (non-leaf) assemblies
// per module: a full k-ary tree of NumAssmLevels-1 internal levels.
func (p Params) NumComplexAssemblies() int {
	n, lvl := 0, 1
	for i := 0; i < p.NumAssmLevels-1; i++ {
		n += lvl
		lvl *= p.NumAssmPerAssm
	}
	return n
}

// NumBaseAssemblies returns the count of base (leaf) assemblies per module.
func (p Params) NumBaseAssemblies() int {
	n := 1
	for i := 0; i < p.NumAssmLevels-1; i++ {
		n *= p.NumAssmPerAssm
	}
	return n
}

// ManualSegments returns how many chained segments store the manual.
func (p Params) ManualSegments() int {
	return (p.ManualBytes + p.ManualSegBytes - 1) / p.ManualSegBytes
}

// DocSegments returns how many chained segments store one document (1 for
// Small'/Small; more in Medium, whose documents exceed a page).
func (p Params) DocSegments() int {
	return (p.DocumentBytes + p.ManualSegBytes - 1) / p.ManualSegBytes
}

// ExpectedObjects returns the object count of a freshly generated database.
func (p Params) ExpectedObjects() int {
	atoms := p.NumCompPerModule * p.NumAtomicPerComp
	conns := atoms * p.NumConnPerAtomic
	perModule := 1 + p.ManualSegments() + p.NumComplexAssemblies() + p.NumBaseAssemblies() +
		p.NumCompPerModule + // composite parts
		p.NumCompPerModule*p.DocSegments() + // document segment chains
		atoms + conns
	return p.NumModules * perModule
}

// ExpectedBytes returns the byte size of a freshly generated database.
func (p Params) ExpectedBytes() int {
	atoms := p.NumCompPerModule * p.NumAtomicPerComp
	conns := atoms * p.NumConnPerAtomic
	segs := p.ManualSegments()
	lastSeg := p.ManualBytes - (segs-1)*p.ManualSegBytes
	perModule := p.ModuleBytes +
		(segs-1)*p.ManualSegBytes + lastSeg +
		(p.NumComplexAssemblies()+p.NumBaseAssemblies())*p.AssemblyBytes +
		p.NumCompPerModule*(p.CompositeBytes+p.DocumentBytes) +
		atoms*p.AtomicBytes + conns*p.ConnBytes
	return p.NumModules * perModule
}
