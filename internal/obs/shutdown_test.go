package obs

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"odbgc/internal/simerr"
)

func TestShutdownStages(t *testing.T) {
	sd := NewShutdown(context.Background())

	select {
	case <-sd.Draining():
		t.Fatal("draining before any interrupt")
	default:
	}
	if err := sd.Context().Err(); err != nil {
		t.Fatalf("hard context dead before any interrupt: %v", err)
	}

	if stage := sd.Interrupt(); stage != 1 {
		t.Fatalf("first interrupt entered stage %d, want 1", stage)
	}
	select {
	case <-sd.Draining():
	default:
		t.Fatal("first interrupt did not close Draining")
	}
	if err := sd.Context().Err(); err != nil {
		t.Fatalf("first interrupt cancelled the hard context: %v", err)
	}

	if stage := sd.Interrupt(); stage != 2 {
		t.Fatalf("second interrupt entered stage %d, want 2", stage)
	}
	if err := sd.Context().Err(); err == nil {
		t.Fatal("second interrupt did not cancel the hard context")
	}
	// A third interrupt stays at stage 2 rather than panicking on a
	// re-close or re-cancel.
	if stage := sd.Interrupt(); stage != 2 {
		t.Fatalf("third interrupt entered stage %d, want 2", stage)
	}
}

func TestShutdownParentCancel(t *testing.T) {
	parent, cancel := context.WithCancel(context.Background())
	sd := NewShutdown(parent)
	cancel()
	<-sd.Context().Done()
	if c := simerr.Classify(simerr.FromContext(sd.Context().Err())); c != simerr.ClassCanceled {
		t.Fatalf("parent cancellation classified as %s", c)
	}
}

func TestHealthzDraining(t *testing.T) {
	live := NewLive()
	srv := httptest.NewServer(Handler(live))
	defer srv.Close()

	code, _, body := get(t, srv, "/healthz")
	if code != http.StatusOK || body != "ok\n" {
		t.Fatalf("/healthz before drain: %d %q", code, body)
	}

	live.SetDraining(true)
	code, _, body = get(t, srv, "/healthz")
	if code != http.StatusServiceUnavailable || body != "draining\n" {
		t.Fatalf("/healthz while draining: %d %q", code, body)
	}
	if !live.Draining() {
		t.Fatal("Draining() false after SetDraining(true)")
	}

	_, _, metrics := get(t, srv, "/metrics")
	if !strings.Contains(metrics, MetricDraining+" 1") {
		t.Errorf("/metrics missing %s 1:\n%s", MetricDraining, metrics)
	}

	_, _, statusz := get(t, srv, "/statusz")
	if !strings.Contains(statusz, `"draining": true`) {
		t.Errorf("/statusz missing draining flag:\n%s", statusz)
	}
}

func TestObserveRunFailureCounters(t *testing.T) {
	live := NewLive()
	live.ObserveRunFailure(simerr.ClassTimeout)
	live.ObserveRunFailure(simerr.ClassTimeout)
	live.ObserveRunFailure(simerr.ClassCorruptCheckpoint)

	srv := httptest.NewServer(Handler(live))
	defer srv.Close()
	_, _, body := get(t, srv, "/metrics")
	for _, want := range []string{
		MetricRunFailures + " 3",
		RunFailureMetric(simerr.ClassTimeout) + " 2",
		RunFailureMetric(simerr.ClassCorruptCheckpoint) + " 1",
		RunFailureMetric(simerr.ClassCanceled) + " 0",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
}
