package obs

import (
	"encoding/json"
	"net"
	"net/http"
	"net/http/pprof"
	"time"
)

// Handler serves the observability endpoints over a Live observer:
//
//	/metrics        Prometheus text-format exposition of the registry
//	/healthz        liveness probe ("ok", or "draining" with a 503 once
//	                graceful shutdown begins, so balancers stop routing here)
//	/statusz        JSON run status (live progress in simulated time)
//	/debug/pprof/*  the standard Go profiling endpoints
//
// The handler is safe to serve while the simulation runs; Live does the
// locking. Extra routes (e.g. a flight recorder's /debug/traces) mount on
// the same mux.
func Handler(live *Live, extra ...Route) http.Handler {
	//lint:allow detrand the status endpoint reports real elapsed wall time to operators; it never feeds simulation state
	started := time.Now()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		if live.Draining() {
			w.WriteHeader(http.StatusServiceUnavailable)
			_, _ = w.Write([]byte("draining\n"))
			return
		}
		_, _ = w.Write([]byte("ok\n"))
	})
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		_ = live.Registry().WriteText(w)
	})
	mux.HandleFunc("/statusz", func(w http.ResponseWriter, r *http.Request) {
		st := live.Status()
		doc := struct {
			Status
			UptimeSeconds float64 `json:"uptime_seconds"`
		}{Status: st}
		//lint:allow detrand wall-clock uptime is operator-facing HTTP metadata outside the deterministic core
		doc.UptimeSeconds = time.Since(started).Seconds()
		w.Header().Set("Content-Type", "application/json")
		enc := json.NewEncoder(w)
		enc.SetIndent("", "  ")
		_ = enc.Encode(doc)
	})
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	for _, rt := range extra {
		mux.Handle(rt.Pattern, rt.Handler)
	}
	return mux
}

// Route is one extra endpoint mounted on the observability mux by Handler
// and ListenAndServe, so subsystems (like the span flight recorder) can
// expose themselves without obs importing them.
type Route struct {
	Pattern string
	Handler http.Handler
}

// ListenAndServe binds addr (port 0 picks an ephemeral port), serves
// Handler(live) in the background, and returns the bound address plus a
// stop function. It returns once the listener is accepting, so callers can
// scrape immediately; errors after startup are discarded — the endpoint is
// best-effort diagnostics, never load-bearing for the simulation.
func ListenAndServe(addr string, live *Live, extra ...Route) (bound string, stop func(), err error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", nil, err
	}
	srv := &http.Server{Handler: Handler(live, extra...)}
	done := make(chan struct{})
	go func() {
		_ = srv.Serve(ln)
		close(done)
	}()
	return ln.Addr().String(), func() {
		_ = srv.Close()
		<-done
	}, nil
}
