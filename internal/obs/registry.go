package obs

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"sort"
	"strconv"
	"sync"

	"odbgc/internal/metrics"
)

// Registry is a small in-process metrics registry: named counters, gauges,
// and histograms with Prometheus text-format exposition. It is safe for
// concurrent use (the simulation goroutine updates while an HTTP scraper
// reads). Metric names follow Prometheus conventions
// ([a-zA-Z_:][a-zA-Z0-9_:]*); Register* reports invalid names as errors.
type Registry struct {
	mu     sync.Mutex
	order  []string // registration order is irrelevant; exposition sorts
	kinds  map[string]string
	help   map[string]string
	counts map[string]float64
	gauges map[string]float64
	hists  map[string]*metrics.Histogram
	// exemplars holds, per histogram, the most recent (span ID, value) seen
	// in each bucket index; the inner maps are preallocated at registration
	// so ObserveExemplar never allocates on the hot path.
	exemplars map[string]map[int]exemplar
}

// exemplar ties a histogram bucket to the span that last landed in it,
// stored raw (formatting happens only at exposition time).
type exemplar struct {
	id uint64
	v  float64
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		kinds:     make(map[string]string),
		help:      make(map[string]string),
		counts:    make(map[string]float64),
		gauges:    make(map[string]float64),
		hists:     make(map[string]*metrics.Histogram),
		exemplars: make(map[string]map[int]exemplar),
	}
}

func validName(name string) bool {
	if name == "" {
		return false
	}
	for i, r := range name {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r == '_', r == ':':
		case r >= '0' && r <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

func (r *Registry) register(name, kind, help string) error {
	if !validName(name) {
		return fmt.Errorf("obs: invalid metric name %q", name)
	}
	if prev, ok := r.kinds[name]; ok {
		if prev != kind {
			return fmt.Errorf("obs: metric %q already registered as %s", name, prev)
		}
		return nil
	}
	r.kinds[name] = kind
	r.help[name] = help
	r.order = append(r.order, name)
	return nil
}

// RegisterCounter declares a monotonically increasing counter.
func (r *Registry) RegisterCounter(name, help string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.register(name, "counter", help)
}

// RegisterGauge declares a gauge.
func (r *Registry) RegisterGauge(name, help string) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.register(name, "gauge", help)
}

// RegisterHistogram declares a histogram with n fixed-width buckets over
// [min, max); samples outside the range land in the implicit edge buckets.
func (r *Registry) RegisterHistogram(name, help string, min, max float64, n int) error {
	r.mu.Lock()
	defer r.mu.Unlock()
	if err := r.register(name, "histogram", help); err != nil {
		return err
	}
	if r.hists[name] == nil {
		h, err := metrics.NewHistogram(min, max, n)
		if err != nil {
			delete(r.kinds, name)
			delete(r.help, name)
			r.order = r.order[:len(r.order)-1]
			return err
		}
		r.hists[name] = h
		r.exemplars[name] = make(map[int]exemplar, n+2)
	}
	return nil
}

// Add increments a registered counter by v (negative v is ignored: counters
// only go up). Unregistered names are ignored so hot paths need no error
// handling.
func (r *Registry) Add(name string, v float64) {
	if v < 0 || math.IsNaN(v) {
		return
	}
	r.mu.Lock()
	if r.kinds[name] == "counter" {
		r.counts[name] += v
	}
	r.mu.Unlock()
}

// Set updates a registered gauge. NaN clears it to zero so exposition never
// emits unparsable values.
func (r *Registry) Set(name string, v float64) {
	if math.IsNaN(v) {
		v = 0
	}
	r.mu.Lock()
	if r.kinds[name] == "gauge" {
		r.gauges[name] = v
	}
	r.mu.Unlock()
}

// Observe records a sample into a registered histogram.
func (r *Registry) Observe(name string, v float64) {
	if math.IsNaN(v) {
		return
	}
	r.mu.Lock()
	if h := r.hists[name]; h != nil {
		h.Add(v)
	}
	r.mu.Unlock()
}

// ObserveExemplar records a sample into a registered histogram and, when
// id is nonzero, remembers it as the bucket's exemplar — the span ID
// rendered next to that bucket in WriteText, so an operator can jump from a
// latency bucket to the exact trace that landed there. Allocation-free:
// the inner map is preallocated and bounded by the bucket count.
func (r *Registry) ObserveExemplar(name string, v float64, id uint64) {
	if math.IsNaN(v) {
		return
	}
	r.mu.Lock()
	if h := r.hists[name]; h != nil {
		h.Add(v)
		if id != 0 {
			r.exemplars[name][h.Index(v)] = exemplar{id: id, v: v}
		}
	}
	r.mu.Unlock()
}

// Counter returns a counter's current value (zero when absent).
func (r *Registry) Counter(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.counts[name]
}

// Gauge returns a gauge's current value (zero when absent).
func (r *Registry) Gauge(name string) float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.gauges[name]
}

// fmtValue renders a sample value the way Prometheus expects.
func fmtValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// WriteText renders the registry in the Prometheus text exposition format,
// metrics sorted by name so output is deterministic. Rendering happens into
// an in-memory buffer under the lock and the single write to w happens
// after release: WriteText serves scrapes over HTTP, and a slow scraper
// must not stall every metric update behind r.mu.
func (r *Registry) WriteText(w io.Writer) error {
	var buf bytes.Buffer
	r.mu.Lock()
	names := append([]string(nil), r.order...)
	sort.Strings(names)
	for _, name := range names {
		kind := r.kinds[name]
		if help := r.help[name]; help != "" {
			fmt.Fprintf(&buf, "# HELP %s %s\n", name, help)
		}
		fmt.Fprintf(&buf, "# TYPE %s %s\n", name, kind)
		switch kind {
		case "counter":
			fmt.Fprintf(&buf, "%s %s\n", name, fmtValue(r.counts[name]))
		case "gauge":
			fmt.Fprintf(&buf, "%s %s\n", name, fmtValue(r.gauges[name]))
		case "histogram":
			writeHistogram(&buf, name, r.hists[name], r.exemplars[name])
		}
	}
	r.mu.Unlock()
	_, err := w.Write(buf.Bytes())
	return err
}

// writeHistogram renders one histogram as cumulative le-labelled buckets
// plus _sum and _count, mapping the underflow bucket into the first bound
// and the overflow bucket into +Inf, per the Prometheus data model. Buckets
// with a recorded exemplar get an OpenMetrics-style exemplar suffix
// (`# {span_id="…"} value`) naming the last span that landed there; the
// underflow exemplar rides on the first bucket, the overflow one on +Inf.
// The buffer parameter (not an io.Writer) keeps the rendering loop free of
// real I/O, so it is safe to run while the registry lock is held.
func writeHistogram(buf *bytes.Buffer, name string, h *metrics.Histogram, exs map[int]exemplar) {
	suffix := func(i int) string {
		ex, ok := exs[i]
		if !ok && i == 0 {
			ex, ok = exs[-1]
		}
		if !ok {
			return ""
		}
		return fmt.Sprintf(" # {span_id=\"%016x\"} %s", ex.id, fmtValue(ex.v))
	}
	under, _ := h.Outliers()
	cum := under
	for i := 0; i < h.Buckets(); i++ {
		c, _, hi := h.Bucket(i)
		cum += c
		fmt.Fprintf(buf, "%s_bucket{le=%q} %d%s\n", name, fmtValue(hi), cum, suffix(i))
	}
	fmt.Fprintf(buf, "%s_bucket{le=\"+Inf\"} %d%s\n", name, h.N(), suffix(h.Buckets()))
	sum := 0.0
	if h.N() > 0 {
		sum = h.Mean() * float64(h.N())
	}
	fmt.Fprintf(buf, "%s_sum %s\n", name, fmtValue(sum))
	fmt.Fprintf(buf, "%s_count %d\n", name, h.N())
}
