package obs

import (
	"bytes"
	"math"
	"strings"
	"testing"
)

func TestRegistryCountersAndGauges(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterCounter("events_total", "events seen"); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterGauge("db_bytes", "database size"); err != nil {
		t.Fatal(err)
	}

	r.Add("events_total", 3)
	r.Add("events_total", 2)
	r.Add("events_total", -5)         // counters only go up
	r.Add("events_total", math.NaN()) // ignored
	if got := r.Counter("events_total"); got != 5 {
		t.Errorf("counter = %v, want 5", got)
	}

	r.Set("db_bytes", 1024)
	if got := r.Gauge("db_bytes"); got != 1024 {
		t.Errorf("gauge = %v, want 1024", got)
	}
	r.Set("db_bytes", math.NaN()) // NaN clears to zero
	if got := r.Gauge("db_bytes"); got != 0 {
		t.Errorf("gauge after NaN = %v, want 0", got)
	}

	// Cross-kind updates are ignored, not misapplied.
	r.Add("db_bytes", 7)
	r.Set("events_total", 99)
	if r.Gauge("db_bytes") != 0 || r.Counter("events_total") != 5 {
		t.Error("cross-kind update leaked through")
	}
	// Unregistered names are silently ignored.
	r.Add("nope", 1)
	r.Set("nope", 1)
	r.Observe("nope", 1)
}

func TestRegistryRejectsBadRegistrations(t *testing.T) {
	r := NewRegistry()
	for _, name := range []string{"", "9lives", "has-dash", "sp ace", "ünicode"} {
		if err := r.RegisterCounter(name, ""); err == nil {
			t.Errorf("name %q accepted", name)
		}
	}
	if err := r.RegisterCounter("x", ""); err != nil {
		t.Fatal(err)
	}
	// Re-registering the same kind is idempotent; a different kind errors.
	if err := r.RegisterCounter("x", ""); err != nil {
		t.Errorf("idempotent re-register failed: %v", err)
	}
	if err := r.RegisterGauge("x", ""); err == nil {
		t.Error("kind change accepted")
	}
	// A bad histogram range must not leave a half-registered name behind.
	if err := r.RegisterHistogram("h", "", 5, 5, 10); err == nil {
		t.Error("empty histogram range accepted")
	}
	if err := r.RegisterGauge("h", ""); err != nil {
		t.Errorf("name not released after failed histogram registration: %v", err)
	}
}

func TestRegistryWriteText(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterGauge("zgauge", "a gauge"); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterCounter("acounter", "a counter"); err != nil {
		t.Fatal(err)
	}
	if err := r.RegisterHistogram("mhist", "a histogram", 0, 10, 2); err != nil {
		t.Fatal(err)
	}
	r.Add("acounter", 4)
	r.Set("zgauge", 2.5)
	for _, v := range []float64{-1, 1, 6, 100} { // underflow, both halves, overflow
		r.Observe("mhist", v)
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := strings.Join([]string{
		"# HELP acounter a counter",
		"# TYPE acounter counter",
		"acounter 4",
		"# HELP mhist a histogram",
		"# TYPE mhist histogram",
		`mhist_bucket{le="5"} 2`,
		`mhist_bucket{le="10"} 3`,
		`mhist_bucket{le="+Inf"} 4`,
		"mhist_sum 106",
		"mhist_count 4",
		"# HELP zgauge a gauge",
		"# TYPE zgauge gauge",
		"zgauge 2.5",
		"",
	}, "\n")
	if got != want {
		t.Errorf("exposition mismatch:\n--- got ---\n%s--- want ---\n%s", got, want)
	}

	// Deterministic: a second render is byte-identical.
	var again bytes.Buffer
	if err := r.WriteText(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != got {
		t.Error("repeated WriteText differs")
	}
}

func TestRegistryEmptyHistogramExposition(t *testing.T) {
	r := NewRegistry()
	if err := r.RegisterHistogram("empty", "", 0, 10, 2); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "NaN") {
		t.Errorf("empty histogram leaked NaN:\n%s", buf.String())
	}
	if !strings.Contains(buf.String(), "empty_sum 0\n") {
		t.Errorf("empty histogram sum not zero:\n%s", buf.String())
	}
}
